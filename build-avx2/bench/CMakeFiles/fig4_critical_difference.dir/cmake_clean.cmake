file(REMOVE_RECURSE
  "CMakeFiles/fig4_critical_difference.dir/fig4_critical_difference.cc.o"
  "CMakeFiles/fig4_critical_difference.dir/fig4_critical_difference.cc.o.d"
  "fig4_critical_difference"
  "fig4_critical_difference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_critical_difference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
