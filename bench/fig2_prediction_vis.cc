// Figure 2: visualization of anomaly prediction — the test series, TranAD's
// anomaly score, the POT threshold, and predicted vs true labels, emitted
// as a CSV series ready for plotting.
#include "bench/bench_util.h"

#include "core/tranad_detector.h"
#include "eval/metrics.h"
#include "eval/pot.h"

namespace tranad::bench {
namespace {

int Main() {
  const Dataset& ds = BenchDataset("MBA");
  TranADConfig config;
  TrainOptions train;
  train.max_epochs = DefaultEpochs();
  TranADDetector det(config, train);
  det.Fit(ds.train);

  const std::vector<double> calibration =
      DetectionScores(det.Score(ds.train));
  const std::vector<double> scores = DetectionScores(det.Score(ds.test));
  const double threshold =
      PotThreshold(calibration, PotParamsForDataset("MBA"));
  const auto pred =
      PointAdjust(ApplyThreshold(scores, threshold), ds.test.labels);

  std::vector<std::vector<double>> csv;
  for (int64_t t = 0; t < ds.test.length(); ++t) {
    csv.push_back({static_cast<double>(t), ds.test.values.At({t, 0}),
                   scores[static_cast<size_t>(t)], threshold,
                   static_cast<double>(pred[static_cast<size_t>(t)]),
                   static_cast<double>(
                       ds.test.labels[static_cast<size_t>(t)])});
  }
  const auto path = WriteBenchCsv(
      "fig2_prediction_vis",
      {"t", "value_dim0", "score", "threshold", "predicted", "truth"}, csv);

  const auto c = CountConfusion(pred, ds.test.labels);
  std::printf("Figure 2 (MBA): POT threshold = %.6f\n", threshold);
  std::printf("  predicted anomalous timestamps: %lld / %lld\n",
              static_cast<long long>(c.tp + c.fp),
              static_cast<long long>(ds.test.length()));
  std::printf("  detection P=%.4f R=%.4f F1=%.4f\n", PrecisionOf(c),
              RecallOf(c), F1Of(c));
  std::printf("CSV series: %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
