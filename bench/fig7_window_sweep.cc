// Figure 7: sensitivity to the window size K — F1, AUC and training time of
// TranAD and its ablated variants for K in {5, 10, 20, 40}.
#include "bench/bench_util.h"

namespace tranad::bench {
namespace {

int Main() {
  const auto variants = AblationMethodNames();
  const std::vector<int64_t> windows{5, 10, 20, 40};
  const std::vector<std::string> datasets{"NAB", "SMD", "MSDS"};
  const int64_t epochs = DefaultEpochs();

  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<double>> csv;
  for (const auto& variant : variants) {
    for (int64_t k : windows) {
      double f1 = 0.0;
      double auc = 0.0;
      double fit_time = 0.0;
      for (const auto& dataset_name : datasets) {
        const Dataset& ds = BenchDataset(dataset_name);
        DetectorOptions options;
        options.epochs = epochs;
        options.window = k;
        auto det = CreateDetector(variant, options);
        TRANAD_CHECK(det.ok());
        const EvalOutcome out = EvaluateDetector(det->get(), ds);
        f1 += out.detection.f1;
        auc += out.detection.roc_auc;
        fit_time += out.fit_seconds;
      }
      const double n = static_cast<double>(datasets.size());
      rows.push_back({variant, std::to_string(k), Fmt4(f1 / n),
                      Fmt4(auc / n), Fmt2(fit_time)});
      csv.push_back({static_cast<double>(k), f1 / n, auc / n, fit_time});
      std::fflush(stdout);
    }
  }
  PrintTable("Figure 7: F1 / AUC / training time vs window size "
             "(averaged over NAB, SMD, MSDS)",
             {"Method", "K", "F1", "AUC", "Train s"}, rows);
  const auto path = WriteBenchCsv(
      "fig7_window", {"window", "f1", "auc", "train_seconds"}, csv);
  std::printf("\nCSV: %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
