#include "common/rng.h"

#include "common/check.h"

namespace tranad {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  has_cached_normal_ = false;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t n) {
  TRANAD_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform.
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = n; i > 1; --i) {
    size_t j = UniformInt(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::Split() { return Rng(NextU64()); }

Rng::State Rng::ExportState() const {
  State state{};
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::RestoreState(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace tranad
