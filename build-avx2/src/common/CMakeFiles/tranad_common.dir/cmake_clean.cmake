file(REMOVE_RECURSE
  "CMakeFiles/tranad_common.dir/check.cc.o"
  "CMakeFiles/tranad_common.dir/check.cc.o.d"
  "CMakeFiles/tranad_common.dir/csv.cc.o"
  "CMakeFiles/tranad_common.dir/csv.cc.o.d"
  "CMakeFiles/tranad_common.dir/env.cc.o"
  "CMakeFiles/tranad_common.dir/env.cc.o.d"
  "CMakeFiles/tranad_common.dir/failpoint.cc.o"
  "CMakeFiles/tranad_common.dir/failpoint.cc.o.d"
  "CMakeFiles/tranad_common.dir/logging.cc.o"
  "CMakeFiles/tranad_common.dir/logging.cc.o.d"
  "CMakeFiles/tranad_common.dir/rng.cc.o"
  "CMakeFiles/tranad_common.dir/rng.cc.o.d"
  "CMakeFiles/tranad_common.dir/status.cc.o"
  "CMakeFiles/tranad_common.dir/status.cc.o.d"
  "CMakeFiles/tranad_common.dir/string_util.cc.o"
  "CMakeFiles/tranad_common.dir/string_util.cc.o.d"
  "CMakeFiles/tranad_common.dir/thread_pool.cc.o"
  "CMakeFiles/tranad_common.dir/thread_pool.cc.o.d"
  "libtranad_common.a"
  "libtranad_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tranad_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
