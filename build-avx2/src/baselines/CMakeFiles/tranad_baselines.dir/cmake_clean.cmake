file(REMOVE_RECURSE
  "CMakeFiles/tranad_baselines.dir/cae_m.cc.o"
  "CMakeFiles/tranad_baselines.dir/cae_m.cc.o.d"
  "CMakeFiles/tranad_baselines.dir/common.cc.o"
  "CMakeFiles/tranad_baselines.dir/common.cc.o.d"
  "CMakeFiles/tranad_baselines.dir/dagmm.cc.o"
  "CMakeFiles/tranad_baselines.dir/dagmm.cc.o.d"
  "CMakeFiles/tranad_baselines.dir/gdn.cc.o"
  "CMakeFiles/tranad_baselines.dir/gdn.cc.o.d"
  "CMakeFiles/tranad_baselines.dir/gmm.cc.o"
  "CMakeFiles/tranad_baselines.dir/gmm.cc.o.d"
  "CMakeFiles/tranad_baselines.dir/isolation_forest.cc.o"
  "CMakeFiles/tranad_baselines.dir/isolation_forest.cc.o.d"
  "CMakeFiles/tranad_baselines.dir/lstm_ndt.cc.o"
  "CMakeFiles/tranad_baselines.dir/lstm_ndt.cc.o.d"
  "CMakeFiles/tranad_baselines.dir/mad_gan.cc.o"
  "CMakeFiles/tranad_baselines.dir/mad_gan.cc.o.d"
  "CMakeFiles/tranad_baselines.dir/merlin.cc.o"
  "CMakeFiles/tranad_baselines.dir/merlin.cc.o.d"
  "CMakeFiles/tranad_baselines.dir/mscred.cc.o"
  "CMakeFiles/tranad_baselines.dir/mscred.cc.o.d"
  "CMakeFiles/tranad_baselines.dir/mtad_gat.cc.o"
  "CMakeFiles/tranad_baselines.dir/mtad_gat.cc.o.d"
  "CMakeFiles/tranad_baselines.dir/omni_anomaly.cc.o"
  "CMakeFiles/tranad_baselines.dir/omni_anomaly.cc.o.d"
  "CMakeFiles/tranad_baselines.dir/registry.cc.o"
  "CMakeFiles/tranad_baselines.dir/registry.cc.o.d"
  "CMakeFiles/tranad_baselines.dir/usad.cc.o"
  "CMakeFiles/tranad_baselines.dir/usad.cc.o.d"
  "libtranad_baselines.a"
  "libtranad_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tranad_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
