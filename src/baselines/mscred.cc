#include "baselines/mscred.h"

#include "tensor/autograd_ops.h"

namespace tranad {

MscredDetector::MscredDetector(int64_t window, int64_t epochs, uint64_t seed)
    : WindowedDetector("MSCRED", window, epochs, 64), seed_(seed) {}

void MscredDetector::BuildModel(int64_t dims) {
  Rng rng(seed_);
  // Nested sub-window scales (the original uses {10, 30, 60}; scaled to K).
  scales_ = {std::max<int64_t>(2, window_ / 4),
             std::max<int64_t>(3, window_ / 2), window_};
  sig_dim_ = static_cast<int64_t>(scales_.size()) * dims * dims;
  const int64_t hidden = std::max<int64_t>(16, sig_dim_ / 4);
  const int64_t latent = std::max<int64_t>(8, sig_dim_ / 16);
  enc1_ = std::make_unique<nn::Linear>(sig_dim_, hidden, &rng);
  enc2_ = std::make_unique<nn::Linear>(hidden, latent, &rng);
  dec1_ = std::make_unique<nn::Linear>(latent, hidden, &rng);
  dec2_ = std::make_unique<nn::Linear>(hidden, sig_dim_, &rng);
  std::vector<Variable> params;
  for (auto* m : {enc1_.get(), enc2_.get(), dec1_.get(), dec2_.get()}) {
    auto p = m->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  opt_ = std::make_unique<nn::Adam>(params, 0.003f);
}

Tensor MscredDetector::SignatureMatrices(const Tensor& batch) const {
  const int64_t b = batch.size(0);
  const int64_t k = batch.size(1);
  const int64_t m = batch.size(2);
  Tensor sig({b, sig_dim_});
  const float* pb = batch.data();
  float* ps = sig.data();
  for (int64_t i = 0; i < b; ++i) {
    int64_t off = 0;
    for (int64_t scale : scales_) {
      const int64_t start = k - scale;
      for (int64_t r = 0; r < m; ++r) {
        for (int64_t c = 0; c < m; ++c) {
          double dot = 0.0;
          for (int64_t t = start; t < k; ++t) {
            dot += static_cast<double>(pb[(i * k + t) * m + r]) *
                   pb[(i * k + t) * m + c];
          }
          ps[i * sig_dim_ + off + r * m + c] =
              static_cast<float>(dot / static_cast<double>(scale));
        }
      }
      off += m * m;
    }
  }
  return sig;
}

Variable MscredDetector::Reconstruct(const Variable& sig) const {
  Variable z = ag::Relu(enc2_->Forward(ag::Relu(enc1_->Forward(sig))));
  return dec2_->Forward(ag::Relu(dec1_->Forward(z)));
}

double MscredDetector::TrainBatch(const Tensor& batch, double /*progress*/) {
  const Tensor sig = SignatureMatrices(batch);
  Variable recon = Reconstruct(Variable(sig));
  Variable loss = ag::MseLoss(recon, sig);
  opt_->ZeroGrad();
  loss.Backward();
  opt_->ClipGradNorm(5.0f);
  opt_->Step();
  return loss.value().Item();
}

Tensor MscredDetector::ScoreBatch(const Tensor& batch) {
  const int64_t b = batch.size(0);
  const int64_t m = dims_;
  const Tensor sig = SignatureMatrices(batch);
  const Tensor recon = Reconstruct(Variable(sig)).value();
  // Row-wise residual energy of the largest-scale signature matrix is the
  // per-dimension score.
  const int64_t off = (static_cast<int64_t>(scales_.size()) - 1) * m * m;
  Tensor out({b, m});
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t r = 0; r < m; ++r) {
      double e = 0.0;
      for (int64_t c = 0; c < m; ++c) {
        const int64_t idx = i * sig_dim_ + off + r * m + c;
        const double d = recon.data()[idx] - sig.data()[idx];
        e += d * d;
      }
      out.At({i, r}) = static_cast<float>(e / static_cast<double>(m));
    }
  }
  return out;
}

}  // namespace tranad
