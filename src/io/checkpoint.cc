#include "io/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/check.h"
#include "common/failpoint.h"

namespace tranad::io {

namespace {

struct Header {
  uint32_t magic;
  uint32_t version;
  uint32_t endian;
  uint32_t reserved;
  uint64_t entry_count;
  uint64_t payload_len;
};
static_assert(sizeof(Header) == 32, "header layout is part of the format");

void AppendRaw(std::vector<uint8_t>* out, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  out->insert(out->end(), p, p + n);
}

template <typename T>
void AppendPod(std::vector<uint8_t>* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

// Bounds-checked reads from the payload buffer during parsing.
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Read(T* out) {
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool Skip(size_t n) {
    if (size_ - pos_ < n) return false;
    pos_ += n;
    return true;
  }

  bool ReadString(size_t n, std::string* out) {
    if (size_ - pos_ < n) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  size_t pos() const { return pos_; }
  bool done() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

size_t ElementSize(EntryType type) {
  switch (type) {
    case EntryType::kTensorF32:
      return sizeof(float);
    case EntryType::kF64Array:
      return sizeof(double);
    case EntryType::kI64Array:
      return sizeof(int64_t);
    case EntryType::kBytes:
      return 1;
  }
  return 0;
}

Status WriteFileDurably(const std::string& path, const uint8_t* data,
                        size_t size) {
  if (auto fp = TRANAD_FAILPOINT("io.checkpoint.open"); fp.is_error()) {
    return fp.ToStatus("open " + path);
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + " for writing: " +
                           std::strerror(errno));
  }
  if (auto fp = TRANAD_FAILPOINT("io.checkpoint.write"); fp.active()) {
    if (fp.is_truncate()) {
      // Simulate a torn write (power cut / disk full mid-stream): only a
      // prefix reaches the disk and the tmp file is left behind, exactly as
      // a crash would leave it. The caller's rename never happens, so the
      // previous checkpoint must survive intact.
      const size_t partial =
          std::min(size, static_cast<size_t>(fp.truncate_bytes));
      size_t torn = 0;
      while (torn < partial) {
        const ssize_t n = ::write(fd, data + torn, partial - torn);
        if (n <= 0) break;
        torn += static_cast<size_t>(n);
      }
      ::close(fd);
      return fp.ToStatus("write " + path + " (torn after " +
                         std::to_string(torn) + " bytes)");
    }
    if (fp.is_error()) {
      ::close(fd);
      ::unlink(path.c_str());
      return fp.ToStatus("write " + path);
    }
  }
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      ::unlink(path.c_str());
      return Status::IoError("short write to " + path + ": " + err);
    }
    written += static_cast<size_t>(n);
  }
  if (auto fp = TRANAD_FAILPOINT("io.checkpoint.fsync"); fp.is_error()) {
    ::close(fd);
    ::unlink(path.c_str());
    return fp.ToStatus("fsync " + path);
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    return Status::IoError("fsync " + path + ": " + err);
  }
  if (::close(fd) != 0) {
    return Status::IoError("close " + path + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

// fsync the directory containing `path` so the rename itself is durable.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);  // best effort; the data file itself is already synced
    ::close(fd);
  }
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  // IEEE CRC32, table-driven; the table is built once.
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = ~seed;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

void CheckpointWriter::Add(std::string name, EntryType type, Shape shape,
                           std::vector<uint8_t> bytes) {
  TRANAD_CHECK(!name.empty());
  for (const auto& e : entries_) {
    TRANAD_CHECK_MSG(e.name != name, "duplicate checkpoint entry name");
  }
  entries_.push_back(Entry{std::move(name), type, std::move(shape),
                           std::move(bytes)});
}

void CheckpointWriter::PutTensor(const std::string& name, const Tensor& t) {
  std::vector<uint8_t> bytes(static_cast<size_t>(t.numel()) * sizeof(float));
  std::memcpy(bytes.data(), t.data(), bytes.size());
  Add(name, EntryType::kTensorF32, t.shape(), std::move(bytes));
}

void CheckpointWriter::PutF64Array(const std::string& name,
                                   const std::vector<double>& v) {
  std::vector<uint8_t> bytes(v.size() * sizeof(double));
  if (!v.empty()) std::memcpy(bytes.data(), v.data(), bytes.size());
  Add(name, EntryType::kF64Array, {static_cast<int64_t>(v.size())},
      std::move(bytes));
}

void CheckpointWriter::PutI64Array(const std::string& name,
                                   const std::vector<int64_t>& v) {
  std::vector<uint8_t> bytes(v.size() * sizeof(int64_t));
  if (!v.empty()) std::memcpy(bytes.data(), v.data(), bytes.size());
  Add(name, EntryType::kI64Array, {static_cast<int64_t>(v.size())},
      std::move(bytes));
}

void CheckpointWriter::PutString(const std::string& name,
                                 const std::string& v) {
  std::vector<uint8_t> bytes(v.begin(), v.end());
  Add(name, EntryType::kBytes, {static_cast<int64_t>(v.size())},
      std::move(bytes));
}

void CheckpointWriter::PutScalar(const std::string& name, double v) {
  PutF64Array(name, {v});
}

void CheckpointWriter::PutInt(const std::string& name, int64_t v) {
  PutI64Array(name, {v});
}

Status CheckpointWriter::WriteAtomic(const std::string& path) const {
  std::vector<uint8_t> payload;
  for (const auto& e : entries_) {
    AppendPod<uint32_t>(&payload, static_cast<uint32_t>(e.name.size()));
    AppendRaw(&payload, e.name.data(), e.name.size());
    AppendPod<uint32_t>(&payload, static_cast<uint32_t>(e.type));
    AppendPod<uint32_t>(&payload, static_cast<uint32_t>(e.shape.size()));
    for (int64_t d : e.shape) AppendPod<int64_t>(&payload, d);
    AppendPod<uint64_t>(&payload, static_cast<uint64_t>(e.bytes.size()));
    AppendRaw(&payload, e.bytes.data(), e.bytes.size());
  }

  std::vector<uint8_t> file;
  file.reserve(sizeof(Header) + payload.size() + sizeof(uint32_t));
  Header header{};
  header.magic = kCheckpointMagic;
  header.version = kCheckpointVersion;
  header.endian = kCheckpointEndianGuard;
  header.reserved = 0;
  header.entry_count = entries_.size();
  header.payload_len = payload.size();
  AppendRaw(&file, &header, sizeof(header));
  AppendRaw(&file, payload.data(), payload.size());
  AppendPod<uint32_t>(&file, Crc32(payload.data(), payload.size()));

  // Crash-safety protocol: durable tmp write, then atomic rename.
  const std::string tmp = path + ".tmp";
  TRANAD_RETURN_IF_ERROR(WriteFileDurably(tmp, file.data(), file.size()));
  if (auto fp = TRANAD_FAILPOINT("io.checkpoint.rename"); fp.is_error()) {
    ::unlink(tmp.c_str());
    return fp.ToStatus("rename " + tmp + " -> " + path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " + path + ": " + err);
  }
  SyncParentDir(path);
  return Status::Ok();
}

Result<CheckpointReader> CheckpointReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  if (size < static_cast<std::streamsize>(sizeof(Header) + sizeof(uint32_t))) {
    return Status::IoError(path + ": truncated checkpoint (shorter than header)");
  }
  std::vector<uint8_t> file(static_cast<size_t>(size));
  if (!in.read(reinterpret_cast<char*>(file.data()), size)) {
    return Status::IoError(path + ": read failed");
  }

  Header header{};
  std::memcpy(&header, file.data(), sizeof(header));
  if (header.magic != kCheckpointMagic) {
    return Status::InvalidArgument(path + ": not a TranAD checkpoint");
  }
  if (header.endian != kCheckpointEndianGuard) {
    return Status::InvalidArgument(path +
                                   ": checkpoint written on a foreign byte order");
  }
  if (header.version != kCheckpointVersion) {
    return Status::InvalidArgument(
        path + ": unsupported checkpoint format version " +
        std::to_string(header.version) + " (expected " +
        std::to_string(kCheckpointVersion) + ")");
  }
  const size_t expected =
      sizeof(Header) + header.payload_len + sizeof(uint32_t);
  if (header.payload_len > file.size() || expected != file.size()) {
    return Status::IoError(path + ": truncated checkpoint payload");
  }

  const uint8_t* payload = file.data() + sizeof(Header);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, payload + header.payload_len, sizeof(stored_crc));
  const uint32_t actual_crc =
      Crc32(payload, static_cast<size_t>(header.payload_len));
  if (stored_crc != actual_crc) {
    return Status::IoError(path + ": CRC mismatch (corrupt or torn checkpoint)");
  }

  CheckpointReader reader;
  reader.version_ = header.version;
  reader.payload_.assign(payload, payload + header.payload_len);

  Cursor cursor(reader.payload_.data(), reader.payload_.size());
  for (uint64_t i = 0; i < header.entry_count; ++i) {
    CheckpointEntry entry;
    uint32_t name_len = 0;
    uint32_t type = 0;
    uint32_t ndim = 0;
    if (!cursor.Read(&name_len) || !cursor.ReadString(name_len, &entry.name) ||
        !cursor.Read(&type) || !cursor.Read(&ndim)) {
      return Status::IoError(path + ": malformed entry header");
    }
    if (type < 1 || type > 4) {
      return Status::InvalidArgument(path + ": unknown entry type " +
                                     std::to_string(type) + " for '" +
                                     entry.name + "'");
    }
    entry.type = static_cast<EntryType>(type);
    entry.shape.resize(ndim);
    int64_t numel = 1;
    for (uint32_t d = 0; d < ndim; ++d) {
      if (!cursor.Read(&entry.shape[d])) {
        return Status::IoError(path + ": malformed entry dims");
      }
      if (entry.shape[d] < 0) {
        return Status::IoError(path + ": negative dimension");
      }
      numel *= entry.shape[d];
    }
    if (!cursor.Read(&entry.byte_len)) {
      return Status::IoError(path + ": malformed entry length");
    }
    if (entry.byte_len !=
        static_cast<uint64_t>(numel) * ElementSize(entry.type)) {
      return Status::IoError(path + ": entry '" + entry.name +
                             "' byte length disagrees with its shape");
    }
    entry.offset = cursor.pos();
    if (!cursor.Skip(entry.byte_len)) {
      return Status::IoError(path + ": entry '" + entry.name +
                             "' overruns the payload");
    }
    if (reader.index_.count(entry.name) != 0) {
      return Status::InvalidArgument(path + ": duplicate entry '" +
                                     entry.name + "'");
    }
    reader.index_.emplace(entry.name, reader.entries_.size());
    reader.entries_.push_back(std::move(entry));
  }
  if (!cursor.done()) {
    return Status::IoError(path + ": trailing bytes after last entry");
  }
  return reader;
}

const CheckpointEntry* CheckpointReader::Find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  return &entries_[it->second];
}

bool CheckpointReader::Has(const std::string& name) const {
  return Find(name) != nullptr;
}

Result<Tensor> CheckpointReader::GetTensor(const std::string& name) const {
  const CheckpointEntry* e = Find(name);
  if (e == nullptr) return Status::NotFound("no checkpoint entry '" + name + "'");
  if (e->type != EntryType::kTensorF32) {
    return Status::InvalidArgument("entry '" + name + "' is not a tensor");
  }
  Tensor t(e->shape);
  std::memcpy(t.data(), payload_.data() + e->offset, e->byte_len);
  return t;
}

Result<std::vector<double>> CheckpointReader::GetF64Array(
    const std::string& name) const {
  const CheckpointEntry* e = Find(name);
  if (e == nullptr) return Status::NotFound("no checkpoint entry '" + name + "'");
  if (e->type != EntryType::kF64Array) {
    return Status::InvalidArgument("entry '" + name + "' is not an f64 array");
  }
  std::vector<double> out(e->byte_len / sizeof(double));
  if (!out.empty()) {
    std::memcpy(out.data(), payload_.data() + e->offset, e->byte_len);
  }
  return out;
}

Result<std::vector<int64_t>> CheckpointReader::GetI64Array(
    const std::string& name) const {
  const CheckpointEntry* e = Find(name);
  if (e == nullptr) return Status::NotFound("no checkpoint entry '" + name + "'");
  if (e->type != EntryType::kI64Array) {
    return Status::InvalidArgument("entry '" + name + "' is not an i64 array");
  }
  std::vector<int64_t> out(e->byte_len / sizeof(int64_t));
  if (!out.empty()) {
    std::memcpy(out.data(), payload_.data() + e->offset, e->byte_len);
  }
  return out;
}

Result<std::string> CheckpointReader::GetString(const std::string& name) const {
  const CheckpointEntry* e = Find(name);
  if (e == nullptr) return Status::NotFound("no checkpoint entry '" + name + "'");
  if (e->type != EntryType::kBytes) {
    return Status::InvalidArgument("entry '" + name + "' is not a byte string");
  }
  return std::string(reinterpret_cast<const char*>(payload_.data() + e->offset),
                     e->byte_len);
}

Result<double> CheckpointReader::GetScalar(const std::string& name) const {
  TRANAD_ASSIGN_OR_RETURN(std::vector<double> v, GetF64Array(name));
  if (v.size() != 1) {
    return Status::InvalidArgument("entry '" + name + "' is not a scalar");
  }
  return v[0];
}

Result<int64_t> CheckpointReader::GetInt(const std::string& name) const {
  TRANAD_ASSIGN_OR_RETURN(std::vector<int64_t> v, GetI64Array(name));
  if (v.size() != 1) {
    return Status::InvalidArgument("entry '" + name + "' is not a scalar");
  }
  return v[0];
}

uint32_t CheckpointReader::EntryCrc(const CheckpointEntry& entry) const {
  return Crc32(payload_.data() + entry.offset,
               static_cast<size_t>(entry.byte_len));
}

}  // namespace tranad::io
