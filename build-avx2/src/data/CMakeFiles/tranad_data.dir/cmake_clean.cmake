file(REMOVE_RECURSE
  "CMakeFiles/tranad_data.dir/preprocess.cc.o"
  "CMakeFiles/tranad_data.dir/preprocess.cc.o.d"
  "CMakeFiles/tranad_data.dir/synthetic.cc.o"
  "CMakeFiles/tranad_data.dir/synthetic.cc.o.d"
  "CMakeFiles/tranad_data.dir/time_series.cc.o"
  "CMakeFiles/tranad_data.dir/time_series.cc.o.d"
  "libtranad_data.a"
  "libtranad_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tranad_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
