#ifndef TRANAD_COMMON_CHECK_H_
#define TRANAD_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tranad::internal {

/// Prints the failure message and aborts. Out-of-line so the macro body
/// stays small and branch-predictable.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);

}  // namespace tranad::internal

/// Fatal invariant check. Used for programmer errors (shape mismatches deep
/// inside kernels, broken internal state), never for recoverable conditions —
/// those return Status. Enabled in all build types: the cost is negligible
/// next to the tensor math and silent corruption is far worse.
#define TRANAD_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::tranad::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                   \
  } while (0)

#define TRANAD_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream _oss;                                          \
      _oss << msg;                                                      \
      ::tranad::internal::CheckFailed(__FILE__, __LINE__, #cond,        \
                                      _oss.str());                      \
    }                                                                   \
  } while (0)

#define TRANAD_CHECK_OP(op, a, b)                                       \
  do {                                                                  \
    auto _va = (a);                                                     \
    auto _vb = (b);                                                     \
    if (!(_va op _vb)) {                                                \
      std::ostringstream _oss;                                          \
      _oss << "(" << _va << " " #op " " << _vb << ")";                  \
      ::tranad::internal::CheckFailed(__FILE__, __LINE__, #a " " #op " " #b, \
                                      _oss.str());                      \
    }                                                                   \
  } while (0)

#define TRANAD_CHECK_EQ(a, b) TRANAD_CHECK_OP(==, a, b)
#define TRANAD_CHECK_NE(a, b) TRANAD_CHECK_OP(!=, a, b)
#define TRANAD_CHECK_LT(a, b) TRANAD_CHECK_OP(<, a, b)
#define TRANAD_CHECK_LE(a, b) TRANAD_CHECK_OP(<=, a, b)
#define TRANAD_CHECK_GT(a, b) TRANAD_CHECK_OP(>, a, b)
#define TRANAD_CHECK_GE(a, b) TRANAD_CHECK_OP(>=, a, b)

#endif  // TRANAD_COMMON_CHECK_H_
