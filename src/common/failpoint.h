#ifndef TRANAD_COMMON_FAILPOINT_H_
#define TRANAD_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace tranad::failpoint {

/// Deterministic fault-injection framework. Production code marks the
/// places that can fail (an fsync, a rename, a worker scoring pass) with a
/// named failpoint:
///
///   if (auto fp = TRANAD_FAILPOINT("io.checkpoint.fsync"); fp.is_error()) {
///     return fp.ToStatus("fsync " + path);
///   }
///
/// Tests (or an operator, via the TRANAD_FAILPOINTS environment variable)
/// arm a site with an action and a deterministic activation schedule —
/// fire on the Nth hit, every K-th hit, a fixed hit list, or every hit —
/// and the site misbehaves exactly on those evaluations. When nothing is
/// armed anywhere, TRANAD_FAILPOINT compiles down to a single relaxed
/// atomic load, so the hooks are free on the happy path.
///
/// Spec syntax (environment variable or ArmFromSpec):
///
///   TRANAD_FAILPOINTS="io.checkpoint.fsync=err@3;serve.worker.score=delay:5000@every2"
///
///   spec     := entry (';' entry)*
///   entry    := site '=' action ['@' schedule]
///   action   := 'err' [':' code] | 'delay' ':' micros | 'trunc' ':' bytes
///   code     := 'io' | 'internal' | 'unavailable' | 'deadline' |
///               'invalid' | 'notfound' | 'resource' | 'precondition'
///   schedule := 'always' | 'once' | 'every' K | N | N (',' N)*
///
/// Hits are counted per site starting at 1 from the moment it is armed;
/// '@3' fires only on the third evaluation, '@every2' on every second one,
/// '@2,5,7' on exactly those. All registry operations are thread-safe and
/// the framework is TSan-clean: schedule evaluation is serialized under one
/// mutex, and the fast path is a relaxed atomic read.

/// What an armed failpoint does when its schedule selects a hit.
enum class ActionKind : uint8_t {
  kNone = 0,  // not armed / schedule did not select this hit
  kError,     // site should fail with the injected Status
  kDelay,     // Hit() sleeps delay_us in place (stall injection)
  kTruncate,  // IO site should short-write truncate_bytes then fail
};

struct Action {
  ActionKind kind = ActionKind::kNone;
  /// Injected status code for kError (and for the failure a kTruncate site
  /// reports after the short write).
  StatusCode code = StatusCode::kIoError;
  int64_t delay_us = 0;        // kDelay: microseconds slept inside Hit()
  int64_t truncate_bytes = 0;  // kTruncate: bytes actually written

  bool active() const { return kind != ActionKind::kNone; }
  explicit operator bool() const { return active(); }
  bool is_error() const { return kind == ActionKind::kError; }
  bool is_delay() const { return kind == ActionKind::kDelay; }
  bool is_truncate() const { return kind == ActionKind::kTruncate; }

  /// The status an error (or post-truncation) site should surface:
  /// "<code>: injected failure at <context>".
  Status ToStatus(const std::string& context) const;

  static Action Error(StatusCode code = StatusCode::kIoError);
  static Action Delay(int64_t micros);
  static Action Truncate(int64_t bytes);
};

/// Deterministic activation schedule over a site's 1-based hit counter.
struct Schedule {
  /// every_k > 0: fire when hit % every_k == 0. Ignored if `hits` is set.
  int64_t every_k = 0;
  /// Non-empty: fire exactly on these hit indices.
  std::vector<int64_t> hits;
  // Both unset: fire on every hit.

  static Schedule Always() { return {}; }
  static Schedule OnHit(int64_t n) { return Schedule{0, {n}}; }
  static Schedule EveryK(int64_t k) { return Schedule{k, {}}; }
  static Schedule HitList(std::vector<int64_t> hit_list) {
    return Schedule{0, std::move(hit_list)};
  }
};

namespace internal {
extern std::atomic<int64_t> g_armed_sites;
}  // namespace internal

/// True when at least one failpoint is armed anywhere in the process.
/// Single relaxed atomic load — the entire cost of an inactive failpoint.
inline bool AnyActive() {
  return internal::g_armed_sites.load(std::memory_order_relaxed) > 0;
}

/// Arms (or re-arms, resetting the hit counter of) a named site.
void Arm(const std::string& site, Action action,
         Schedule schedule = Schedule::Always());

/// Disarms one site; returns false if it was not armed.
bool Disarm(const std::string& site);

/// Disarms everything (test teardown).
void DisarmAll();

/// Evaluations at `site` since it was armed (0 if not armed).
int64_t HitCount(const std::string& site);

/// Selected (fired) evaluations at `site` since it was armed.
int64_t FireCount(const std::string& site);

/// Parses the TRANAD_FAILPOINTS spec syntax and arms every entry. On a
/// malformed spec nothing is armed and InvalidArgument names the bad entry.
Status ArmFromSpec(const std::string& spec);

/// Arms from the TRANAD_FAILPOINTS environment variable; no-op when unset.
Status ArmFromEnv();

/// Evaluates one hit at `site`: bumps the hit counter and, when the
/// schedule selects this hit, returns the armed action (after sleeping in
/// place for kDelay). Call through TRANAD_FAILPOINT so the unarmed process
/// pays only the relaxed load.
Action Hit(const char* site);

/// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, Action action,
                  Schedule schedule = Schedule::Always())
      : site_(std::move(site)) {
    Arm(site_, action, std::move(schedule));
  }
  ~ScopedFailpoint() { Disarm(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

}  // namespace tranad::failpoint

/// Evaluates the named failpoint site. Yields an inactive Action (one
/// relaxed atomic load, no lock) unless some failpoint is armed in the
/// process and this site's schedule selects the current hit.
#define TRANAD_FAILPOINT(site)              \
  (::tranad::failpoint::AnyActive()         \
       ? ::tranad::failpoint::Hit(site)     \
       : ::tranad::failpoint::Action{})

#endif  // TRANAD_COMMON_FAILPOINT_H_
