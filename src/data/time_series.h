#ifndef TRANAD_DATA_TIME_SERIES_H_
#define TRANAD_DATA_TIME_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace tranad {

/// A multivariate time series T = {x_1, ..., x_T}, x_t in R^m (§3.1),
/// with optional anomaly ground truth for evaluation:
///  - `labels[t]`    : 1 if timestamp t is anomalous (detection truth),
///  - `dim_labels`   : [T, m] per-dimension truth (diagnosis truth).
struct TimeSeries {
  std::string name;
  Tensor values;                 // [T, m]
  std::vector<uint8_t> labels;   // size T, or empty when unlabeled
  Tensor dim_labels;             // [T, m] of {0,1}, or empty (numel==1)

  int64_t length() const { return values.ndim() == 2 ? values.size(0) : 0; }
  int64_t dims() const { return values.ndim() == 2 ? values.size(1) : 0; }
  bool has_labels() const { return !labels.empty(); }
  bool has_dim_labels() const { return dim_labels.ndim() == 2; }

  /// Fraction of labeled-anomalous timestamps (0 when unlabeled).
  double AnomalyRate() const;

  /// Validates internal consistency (label sizes vs values).
  Status Validate() const;
};

/// A benchmark dataset: an (assumed normal) training series plus a labeled
/// test series of the same modality.
struct Dataset {
  std::string name;
  TimeSeries train;
  TimeSeries test;

  int64_t dims() const { return train.dims(); }
  Status Validate() const;
};

/// Loads a dataset from three CSVs: train values, test values, and test
/// labels (either one 0/1 column for detection truth or m columns for
/// per-dimension truth; with m columns the detection label is their OR).
Result<Dataset> LoadDatasetCsv(const std::string& name,
                               const std::string& train_path,
                               const std::string& test_path,
                               const std::string& labels_path);

/// Writes a series (and labels, when present) to CSV for external plotting.
Status SaveTimeSeriesCsv(const TimeSeries& series, const std::string& path);

}  // namespace tranad

#endif  // TRANAD_DATA_TIME_SERIES_H_
