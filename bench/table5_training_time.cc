// Table 5: training time in seconds per epoch for every method on every
// dataset. MERLIN (training-free) reports its discovery time on the test
// data, as in the paper.
#include <sstream>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "tensor/arena.h"

namespace tranad::bench {
namespace {

int Main() {
  const auto methods = PaperMethodNames();
  // Two epochs suffice for a stable per-epoch time.
  const int64_t epochs = 2;
  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<double>> csv;
  const auto datasets = DatasetNames();
  TensorArena::Global().ResetStatsForTesting();
  Stopwatch wall;

  std::ostringstream cells;
  for (const auto& method : methods) {
    std::vector<std::string> row{method};
    std::vector<double> csv_row;
    for (const auto& dataset_name : datasets) {
      const Dataset& ds = BenchDataset(dataset_name);
      DetectorOptions options;
      options.epochs = epochs;
      auto det = CreateDetector(method, options);
      TRANAD_CHECK(det.ok());
      (*det)->Fit(ds.train);
      double sec = (*det)->seconds_per_epoch();
      if (method == "MERLIN") {
        Stopwatch timer;
        (*det)->Score(ds.test);
        sec = timer.ElapsedSeconds();
      }
      row.push_back(Fmt2(sec));
      csv_row.push_back(sec);
      if (cells.tellp() > 0) cells << ", ";
      cells << "{\"method\": \"" << method << "\", \"dataset\": \""
            << dataset_name << "\", \"seconds_per_epoch\": " << sec << "}";
      std::fflush(stdout);
    }
    rows.push_back(std::move(row));
    csv.push_back(std::move(csv_row));
  }

  std::vector<std::string> header{"Method"};
  header.insert(header.end(), datasets.begin(), datasets.end());
  PrintTable("Table 5: training times (seconds per epoch)", header, rows);
  const auto path = WriteBenchCsv("table5_training_time", datasets, csv);
  std::printf("\nCSV: %s\n", path.c_str());
  std::printf("wall-clock %.2fs at %lld compute threads\n",
              wall.ElapsedSeconds(),
              static_cast<long long>(NumComputeThreads()));
  const ArenaStats arena = TensorArena::Global().stats();
  std::printf("arena: %lld hits / %lld misses, peak live %.1f MB\n",
              static_cast<long long>(arena.hits),
              static_cast<long long>(arena.misses),
              static_cast<double>(arena.bytes_peak_live) / (1 << 20));

  std::ostringstream json;
  json << "{\"bench\": \"table5_training_time\", \"epochs\": " << epochs
       << ", \"wall_seconds\": " << wall.ElapsedSeconds() << ", "
       << ComputeBackendJsonFields() << ", \"cells\": [" << cells.str()
       << "]}";
  std::printf("JSON: %s\n",
              WriteBenchJson("table5_training_time", json.str()).c_str());
  return 0;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
