file(REMOVE_RECURSE
  "CMakeFiles/train_throughput.dir/train_throughput.cc.o"
  "CMakeFiles/train_throughput.dir/train_throughput.cc.o.d"
  "train_throughput"
  "train_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
