file(REMOVE_RECURSE
  "CMakeFiles/tranad_eval.dir/critdiff.cc.o"
  "CMakeFiles/tranad_eval.dir/critdiff.cc.o.d"
  "CMakeFiles/tranad_eval.dir/diagnosis.cc.o"
  "CMakeFiles/tranad_eval.dir/diagnosis.cc.o.d"
  "CMakeFiles/tranad_eval.dir/metrics.cc.o"
  "CMakeFiles/tranad_eval.dir/metrics.cc.o.d"
  "CMakeFiles/tranad_eval.dir/pot.cc.o"
  "CMakeFiles/tranad_eval.dir/pot.cc.o.d"
  "CMakeFiles/tranad_eval.dir/score_utils.cc.o"
  "CMakeFiles/tranad_eval.dir/score_utils.cc.o.d"
  "libtranad_eval.a"
  "libtranad_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tranad_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
