#include "baselines/common.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "tensor/tensor_ops.h"

namespace tranad {

WindowedDetector::WindowedDetector(std::string name, int64_t window,
                                   int64_t epochs, int64_t batch_size)
    : window_(window),
      epochs_(epochs),
      batch_size_(batch_size),
      name_(std::move(name)) {}

void WindowedDetector::Fit(const TimeSeries& train) {
  TRANAD_CHECK_GT(train.length(), 0);
  dims_ = train.dims();
  BuildModel(dims_);
  normalizer_.Fit(train.values);
  const Tensor normalized =
      normalizer_.Transform(train.values, kBaselineNormClip);
  const Tensor windows = MakeWindows(normalized, window_);
  const int64_t n = windows.size(0);

  Stopwatch timer;
  SetEval(false);
  for (int64_t epoch = 0; epoch < epochs_; ++epoch) {
    for (int64_t start = 0; start < n; start += batch_size_) {
      const int64_t len = std::min(batch_size_, n - start);
      const double progress =
          (static_cast<double>(epoch) +
           static_cast<double>(start) / static_cast<double>(n)) /
          static_cast<double>(epochs_);
      TrainBatch(SliceAxis(windows, 0, start, len), progress);
    }
  }
  PostTrain(windows);
  epochs_run_ = epochs_;
  seconds_per_epoch_ =
      epochs_ > 0 ? timer.ElapsedSeconds() / static_cast<double>(epochs_)
                  : timer.ElapsedSeconds();
  SetEval(true);
}

Tensor WindowedDetector::Score(const TimeSeries& series) {
  TRANAD_CHECK_EQ(series.dims(), dims_);
  SetEval(true);
  const Tensor normalized =
      normalizer_.Transform(series.values, kBaselineNormClip);
  const Tensor windows = MakeWindows(normalized, window_);
  const int64_t t = windows.size(0);
  Tensor scores({t, dims_});
  constexpr int64_t kBatch = 256;
  for (int64_t start = 0; start < t; start += kBatch) {
    const int64_t len = std::min<int64_t>(kBatch, t - start);
    const Tensor batch_scores = ScoreBatch(SliceAxis(windows, 0, start, len));
    TRANAD_CHECK_EQ(batch_scores.size(0), len);
    TRANAD_CHECK_EQ(batch_scores.size(1), dims_);
    std::copy(batch_scores.data(), batch_scores.data() + len * dims_,
              scores.data() + start * dims_);
  }
  return scores;
}

}  // namespace tranad
