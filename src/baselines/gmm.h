#ifndef TRANAD_BASELINES_GMM_H_
#define TRANAD_BASELINES_GMM_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace tranad {

/// Diagonal-covariance Gaussian mixture fitted with EM — the density model
/// behind the DAGMM baseline's energy score. (The original uses full
/// covariances estimated by a network; a diagonal EM fit on the same
/// [latent, reconstruction-error] features preserves the energy-scoring
/// mechanism; see DESIGN.md.)
class DiagonalGmm {
 public:
  DiagonalGmm(int64_t components, int64_t dims);

  /// Fits on rows of `features` [N, dims] with k-means++-style seeding.
  void Fit(const Tensor& features, Rng* rng, int64_t max_iters = 50);

  /// Sample energy E(x) = -log sum_k pi_k N(x; mu_k, sigma_k) for one row.
  double Energy(const float* x) const;

  /// Energies for all rows of [N, dims].
  std::vector<double> Energies(const Tensor& features) const;

  bool fitted() const { return fitted_; }
  int64_t components() const { return k_; }
  const std::vector<double>& weights() const { return weight_; }

 private:
  double LogComponentDensity(int64_t k, const float* x) const;

  int64_t k_;
  int64_t d_;
  bool fitted_ = false;
  std::vector<double> weight_;             // [k]
  std::vector<std::vector<double>> mean_;  // [k][d]
  std::vector<std::vector<double>> var_;   // [k][d]
};

}  // namespace tranad

#endif  // TRANAD_BASELINES_GMM_H_
