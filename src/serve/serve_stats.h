#ifndef TRANAD_SERVE_SERVE_STATS_H_
#define TRANAD_SERVE_SERVE_STATS_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"

namespace tranad::serve {

/// Fixed log-spaced latency histogram geometry, shared by every engine so
/// per-shard histograms merge bucket-by-bucket. Bucket 0 covers
/// (0, kLatencyHistMinMs]; bucket i >= 1 covers
/// (kLatencyHistMinMs * r^(i-1), kLatencyHistMinMs * r^i] with
/// r = kLatencyHistRatio; the last bucket absorbs everything above
/// (~64 s). ~15% relative resolution — coarse enough to stay tiny, fine
/// enough that a fleet p99 derived from merged buckets is honest.
inline constexpr int kLatencyHistBuckets = 64;
inline constexpr double kLatencyHistMinMs = 0.001;  // 1 microsecond
inline constexpr double kLatencyHistRatio = 1.33;

/// Bucket index for one latency (see geometry above).
int LatencyBucketIndex(double latency_ms);

/// Representative latency (geometric bucket midpoint) for percentile
/// estimates read back out of a histogram.
double LatencyBucketMidpointMs(int bucket);

/// Exclusive-rank percentile estimate over a bucket-count histogram
/// (any vector sized kLatencyHistBuckets). Returns 0 for an empty one.
double LatencyHistPercentileMs(const std::vector<int64_t>& hist, double q);

/// Point-in-time view of the serving counters; everything the throughput
/// bench needs to report scaling curves.
struct ServeStatsSnapshot {
  int64_t submitted = 0;   // admitted observations
  int64_t rejected = 0;    // refused with ResourceExhausted (queue full)
  int64_t completed = 0;   // scored verdicts delivered (status Ok)
  int64_t anomalies = 0;   // completed verdicts flagged anomalous
  /// Resilience counters: admitted submissions completed with a non-OK
  /// status, by cause. failed is the total; the others are disjoint causes
  /// (deadline expiry, shed-oldest eviction, injected/worker fault or
  /// watchdog unwedge).
  int64_t failed = 0;
  int64_t deadline_expired = 0;  // completed with DeadlineExceeded
  int64_t shed = 0;              // evicted oldest under overload (Unavailable)
  int64_t non_finite_rejected = 0;  // refused at Submit (poisoned input)
  int64_t quarantined_streams = 0;  // streams put into quarantine (lifetime)
  int64_t watchdog_stalls = 0;      // watchdog fired and unwedged the queue
  int64_t reloads = 0;              // successful ReloadModel swaps
  int64_t reload_failures = 0;      // ReloadModel attempts rolled back
  /// Fault-tolerance counters. A ServeEngine never sets these itself: the
  /// ShardRouter folds its failover tallies into the fleet snapshot, the
  /// NetServer adds its dedup-cache hits to the Stats reply, and a NetClient
  /// merges its own reconnect/dedup counts client-side. They ride in the
  /// snapshot so one MergeFrom rollup covers the whole fleet.
  int64_t shards_failed = 0;     // shards tripped down and failed over
  int64_t streams_migrated = 0;  // sessions rehydrated on a live shard
  int64_t reconnects = 0;        // client reconnects after connection loss
  int64_t retries_deduped = 0;   // duplicate idempotent submits suppressed
  int64_t batches = 0;     // scored micro-batches
  int64_t batched_observations = 0;  // sum of scored batch sizes
  double mean_batch_size = 0.0;
  /// batch_size_hist[s] = number of scored batches holding s observations;
  /// index 0 is unused (batches are never empty).
  std::vector<int64_t> batch_size_hist;
  int64_t queue_depth = 0;  // submission queue depth at snapshot time
  double p50_latency_ms = 0.0;  // submit-to-verdict, over a recent window
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  /// Full-lifetime latency histogram (kLatencyHistBuckets log buckets, see
  /// LatencyBucketIndex). Unlike the reservoir percentiles above this is
  /// lossless under merging: fleet percentiles come from summed buckets,
  /// never from averaging per-shard percentiles (averaging a p99 across
  /// shards is statistically meaningless — one slow shard's tail vanishes
  /// into the mean).
  std::vector<int64_t> latency_hist;
  /// Snapshots merged into this one (1 for a single engine's snapshot).
  int64_t shards = 1;
  double elapsed_seconds = 0.0;     // since engine start
  double throughput_per_sec = 0.0;  // completed / elapsed

  /// Folds another shard's snapshot into this one: counters and histograms
  /// add, elapsed takes the max (shards run concurrently), throughput and
  /// mean batch size are recomputed from the merged sums, and p50/p99 are
  /// re-derived from the merged latency *histogram* (after the first merge
  /// the reservoir-exact per-shard values are gone — by design).
  void MergeFrom(const ServeStatsSnapshot& other);
};

/// Mutex-guarded metrics collector. Latency percentiles come from a sliding
/// reservoir of the most recent completions (exact within the window), so a
/// long-running engine reports current behavior, not lifetime averages; the
/// parallel log-bucketed histogram is what rolls up across shards.
/// Snapshot() reads everything under one mutex hold, so a snapshot is an
/// atomic, mutually consistent view — a fleet rollup merges N such views,
/// never a torn mix of counters from different instants.
class ServeStats {
 public:
  explicit ServeStats(int64_t max_batch, int64_t reservoir_size = 8192);

  void RecordSubmitted();
  void RecordRejected();
  void RecordBatch(int64_t batch_size);
  void RecordCompletion(double latency_ms, bool anomalous);
  /// An admitted submission completed with a non-OK status. `code` selects
  /// the per-cause counter (DeadlineExceeded / Unavailable / other).
  void RecordFailure(StatusCode code);
  void RecordNonFiniteRejected();
  void RecordQuarantined();
  void RecordWatchdogStall();
  void RecordReload(bool ok);

  ServeStatsSnapshot Snapshot(int64_t queue_depth) const;

 private:
  mutable std::mutex mu_;
  Stopwatch started_;
  int64_t submitted_ = 0;
  int64_t rejected_ = 0;
  int64_t completed_ = 0;
  int64_t anomalies_ = 0;
  int64_t failed_ = 0;
  int64_t deadline_expired_ = 0;
  int64_t shed_ = 0;
  int64_t non_finite_rejected_ = 0;
  int64_t quarantined_streams_ = 0;
  int64_t watchdog_stalls_ = 0;
  int64_t reloads_ = 0;
  int64_t reload_failures_ = 0;
  int64_t batches_ = 0;
  int64_t batched_observations_ = 0;
  std::vector<int64_t> batch_size_hist_;
  int64_t reservoir_capacity_ = 0;
  std::vector<double> latency_reservoir_;  // ring of most recent latencies
  std::vector<int64_t> latency_hist_;      // lifetime, log-bucketed
  double max_latency_ms_ = 0.0;
};

}  // namespace tranad::serve

#endif  // TRANAD_SERVE_SERVE_STATS_H_
