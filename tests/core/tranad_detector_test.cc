#include "core/tranad_detector.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace tranad {
namespace {

TranADConfig SmallModel() {
  TranADConfig c;
  c.window = 8;
  c.d_ff = 16;
  c.seed = 11;
  return c;
}

TrainOptions FastTrain() {
  TrainOptions o;
  o.max_epochs = 5;
  o.batch_size = 32;
  return o;
}

class TranADDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Separable spike-heavy variant: these tests verify mechanics, not
    // benchmark difficulty.
    auto config = NabConfig(0.25);
    config.anomaly_magnitude = 1.8;
    config.benign_rate = 0.0;
    dataset_ = GenerateSynthetic(config);
  }
  Dataset dataset_;
};

TEST_F(TranADDetectorTest, ScoreShapeMatchesSeries) {
  TranADDetector det(SmallModel(), FastTrain());
  det.Fit(dataset_.train);
  const Tensor scores = det.Score(dataset_.test);
  EXPECT_EQ(scores.shape(),
            Shape({dataset_.test.length(), dataset_.test.dims()}));
}

TEST_F(TranADDetectorTest, ScoresNonNegativeAndFinite) {
  TranADDetector det(SmallModel(), FastTrain());
  det.Fit(dataset_.train);
  const Tensor scores = det.Score(dataset_.test);
  for (int64_t i = 0; i < scores.numel(); ++i) {
    EXPECT_GE(scores[i], 0.0f);
    EXPECT_TRUE(std::isfinite(scores[i]));
  }
}

TEST_F(TranADDetectorTest, AnomalousRegionsScoreHigher) {
  TranADDetector det(SmallModel(), FastTrain());
  det.Fit(dataset_.train);
  const Tensor scores = det.Score(dataset_.test);
  double anom_mean = 0.0;
  double norm_mean = 0.0;
  int64_t n_anom = 0;
  int64_t n_norm = 0;
  for (int64_t t = 0; t < dataset_.test.length(); ++t) {
    const double s = scores.At({t, 0});
    if (dataset_.test.labels[static_cast<size_t>(t)] != 0) {
      anom_mean += s;
      ++n_anom;
    } else {
      norm_mean += s;
      ++n_norm;
    }
  }
  ASSERT_GT(n_anom, 0);
  EXPECT_GT(anom_mean / n_anom, norm_mean / n_norm);
}

TEST_F(TranADDetectorTest, FitRecordsStats) {
  TranADDetector det(SmallModel(), FastTrain());
  det.Fit(dataset_.train);
  EXPECT_GT(det.seconds_per_epoch(), 0.0);
  EXPECT_GT(det.epochs_run(), 0);
  EXPECT_TRUE(det.normalizer().fitted());
  EXPECT_EQ(det.name(), "TranAD");
}

TEST_F(TranADDetectorTest, ScoreBeforeFitDies) {
  TranADDetector det(SmallModel(), FastTrain());
  EXPECT_DEATH(det.Score(dataset_.test), "CHECK");
}

TEST_F(TranADDetectorTest, FocusAndAttentionCaptured) {
  TranADDetector det(SmallModel(), FastTrain());
  det.Fit(dataset_.train);
  det.Score(dataset_.test);
  EXPECT_EQ(det.last_focus().shape(),
            Shape({dataset_.test.length(), dataset_.test.dims()}));
  EXPECT_EQ(det.last_attention().shape(),
            Shape({dataset_.test.length(), SmallModel().window}));
  // Attention rows are probability vectors from the final window position.
  for (int64_t t = 0; t < 5; ++t) {
    float sum = 0.0f;
    for (int64_t j = 0; j < SmallModel().window; ++j) {
      sum += det.last_attention().At({t, j});
    }
    EXPECT_NEAR(sum, 1.0f, 1e-3);
  }
}

TEST_F(TranADDetectorTest, CustomDisplayName) {
  TranADDetector det(SmallModel(), FastTrain(), "TranAD-variant");
  EXPECT_EQ(det.name(), "TranAD-variant");
}

TEST_F(TranADDetectorTest, MultivariateFitAndScore) {
  Dataset multi = GenerateSynthetic(MsdsConfig(0.1));
  TranADDetector det(SmallModel(), FastTrain());
  det.Fit(multi.train);
  const Tensor scores = det.Score(multi.test);
  EXPECT_EQ(scores.size(1), multi.dims());
}

TEST_F(TranADDetectorTest, ModelCheckpointRoundTrip) {
  TranADDetector det(SmallModel(), FastTrain());
  det.Fit(dataset_.train);
  const std::string path = ::testing::TempDir() + "/tranad.ckpt";
  ASSERT_TRUE(det.model()->Save(path).ok());
  const Tensor before = det.Score(dataset_.test);

  TranADDetector det2(SmallModel(), FastTrain());
  TrainOptions zero;
  zero.max_epochs = 1;
  // Fit once to build the architecture + normalizer, then load weights.
  det2.Fit(dataset_.train);
  ASSERT_TRUE(det2.model()->Load(path).ok());
  const Tensor after = det2.Score(dataset_.test);
  EXPECT_TRUE(before.AllClose(after, 1e-4f));
}

}  // namespace
}  // namespace tranad
