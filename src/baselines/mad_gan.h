#ifndef TRANAD_BASELINES_MAD_GAN_H_
#define TRANAD_BASELINES_MAD_GAN_H_

#include <memory>

#include "baselines/common.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "nn/rnn.h"

namespace tranad {

/// MAD-GAN (Li et al., ICANN'19): an LSTM generator/discriminator pair.
/// The generator here is an LSTM autoencoder over windows (avoiding the
/// original's expensive test-time latent inversion — see DESIGN.md); the
/// LSTM discriminator classifies real windows against reconstructions. The
/// anomaly score combines reconstruction error and discriminator suspicion:
///   s = lambda |G(W)-W|^2 + (1-lambda) (1 - D(W)).
class MadGanDetector : public WindowedDetector {
 public:
  explicit MadGanDetector(int64_t window = 10, int64_t epochs = 5,
                          int64_t hidden = 32, uint64_t seed = 15);

 protected:
  void BuildModel(int64_t dims) override;
  double TrainBatch(const Tensor& batch, double progress) override;
  Tensor ScoreBatch(const Tensor& batch) override;

 private:
  Variable Generate(const Variable& seq) const;      // [B,K,m] -> [B,K,m]
  Variable Discriminate(const Variable& seq) const;  // [B,K,m] -> [B,1]

  int64_t hidden_;
  uint64_t seed_;
  std::unique_ptr<nn::LstmCell> gen_lstm_;
  std::unique_ptr<nn::Linear> gen_out_;
  std::unique_ptr<nn::LstmCell> disc_lstm_;
  std::unique_ptr<nn::Linear> disc_out_;
  std::unique_ptr<nn::Adam> gen_opt_;
  std::unique_ptr<nn::Adam> disc_opt_;
};

}  // namespace tranad

#endif  // TRANAD_BASELINES_MAD_GAN_H_
