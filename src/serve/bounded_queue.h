#ifndef TRANAD_SERVE_BOUNDED_QUEUE_H_
#define TRANAD_SERVE_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace tranad::serve {

/// Thread-safe bounded FIFO queue with backpressure. Producers either get an
/// immediate ResourceExhausted status when the queue is full (TryPush, the
/// admission-control path) or block until space frees (Push, used between
/// pipeline stages whose upstream must stall rather than drop). Closing the
/// queue rejects further pushes while consumers drain the remaining items;
/// Pop returns nullopt only once the queue is both closed and empty.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(int64_t capacity) : capacity_(capacity) {
    TRANAD_CHECK_GT(capacity, 0);
  }

  /// Non-blocking admission: ResourceExhausted when full, FailedPrecondition
  /// when closed.
  Status TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return Status::FailedPrecondition("queue is closed");
      }
      if (static_cast<int64_t>(items_.size()) >= capacity_) {
        return Status::ResourceExhausted("queue is full");
      }
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return Status::Ok();
  }

  /// Admission under a shed-oldest overload policy: always accepts `item`
  /// (unless closed — FailedPrecondition), evicting the oldest queued item
  /// into `*evicted` when the queue is full so the caller can complete it
  /// with an Unavailable status. Eviction and push are one atomic step.
  Status PushEvictOldest(T item, std::optional<T>* evicted) {
    evicted->reset();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return Status::FailedPrecondition("queue is closed");
      }
      if (static_cast<int64_t>(items_.size()) >= capacity_) {
        evicted->emplace(std::move(items_.front()));
        items_.pop_front();
      }
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return Status::Ok();
  }

  /// Atomically removes and returns everything currently queued (the
  /// watchdog's unwedge path). Consumers blocked in Pop simply keep
  /// waiting; producers see the freed space.
  std::vector<T> TryDrain() {
    std::vector<T> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      out.reserve(items_.size());
      while (!items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    not_full_.notify_all();
    return out;
  }

  /// Blocking push: waits for space. Returns false (item dropped) if the
  /// queue is closed before space frees.
  bool Push(T item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [&] {
        return closed_ || static_cast<int64_t>(items_.size()) < capacity_;
      });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop: waits for an item; nullopt once closed and drained.
  std::optional<T> Pop() {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Pop with a deadline: nullopt on timeout or once closed and drained. A
  /// deadline in the past degrades to a non-blocking poll.
  std::optional<T> PopBefore(std::chrono::steady_clock::time_point deadline) {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait_until(lock, deadline,
                            [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Rejects further pushes and wakes every waiter; queued items remain
  /// poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  int64_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(items_.size());
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  int64_t capacity() const { return capacity_; }

 private:
  const int64_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace tranad::serve

#endif  // TRANAD_SERVE_BOUNDED_QUEUE_H_
