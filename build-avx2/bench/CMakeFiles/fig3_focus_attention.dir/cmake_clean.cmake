file(REMOVE_RECURSE
  "CMakeFiles/fig3_focus_attention.dir/fig3_focus_attention.cc.o"
  "CMakeFiles/fig3_focus_attention.dir/fig3_focus_attention.cc.o.d"
  "fig3_focus_attention"
  "fig3_focus_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_focus_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
