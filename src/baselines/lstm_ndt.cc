#include "baselines/lstm_ndt.h"

#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad {

LstmNdtDetector::LstmNdtDetector(int64_t window, int64_t epochs,
                                 int64_t hidden, uint64_t seed)
    : WindowedDetector("LSTM-NDT", window, epochs, 128),
      hidden_(hidden),
      seed_(seed) {}

void LstmNdtDetector::BuildModel(int64_t dims) {
  Rng rng(seed_);
  lstm_ = std::make_unique<nn::LstmCell>(dims, hidden_, &rng);
  readout_ = std::make_unique<nn::Linear>(hidden_, dims, &rng);
  std::vector<Variable> params = lstm_->Parameters();
  auto rp = readout_->Parameters();
  params.insert(params.end(), rp.begin(), rp.end());
  opt_ = std::make_unique<nn::Adam>(params, 0.003f);
}

Variable LstmNdtDetector::Forecast(const Variable& prefix) const {
  Variable h = RunLstmLast(*lstm_, prefix);
  return readout_->Forward(h);  // [B, m]
}

double LstmNdtDetector::TrainBatch(const Tensor& batch, double /*progress*/) {
  const int64_t b = batch.size(0);
  Variable windows(batch);
  Variable prefix = ag::SliceAxis(windows, 1, 0, window_ - 1);
  Tensor target = SliceAxis(batch, 1, window_ - 1, 1)
                      .Reshape({b, dims_});
  Variable pred = Forecast(prefix);
  Variable loss = ag::MseLoss(pred, target);
  opt_->ZeroGrad();
  loss.Backward();
  opt_->ClipGradNorm(5.0f);
  opt_->Step();
  return loss.value().Item();
}

Tensor LstmNdtDetector::ScoreBatch(const Tensor& batch) {
  const int64_t b = batch.size(0);
  Variable windows(batch);
  Variable prefix = ag::SliceAxis(windows, 1, 0, window_ - 1);
  const Tensor target =
      SliceAxis(batch, 1, window_ - 1, 1).Reshape({b, dims_});
  const Tensor pred = Forecast(prefix).value();
  Tensor out({b, dims_});
  for (int64_t i = 0; i < b * dims_; ++i) {
    const float e = pred.data()[i] - target.data()[i];
    out.data()[i] = e * e;
  }
  return out;
}

}  // namespace tranad
