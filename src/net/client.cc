#include "net/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace tranad::net {

NetClient::NetClient(ClientOptions options) : options_(std::move(options)) {}

NetClient::~NetClient() { Close(); }

Status NetClient::Connect(const std::string& host, uint16_t port) {
  if (connected()) return Status::FailedPrecondition("already connected");
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IoError("resolve " + host + ": " + gai_strerror(rc));
  }
  int fd = -1;
  Status last = Status::IoError("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
    close(fd);
    fd = -1;
  }
  freeaddrinfo(res);
  if (fd < 0) return last;
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    conn_status_ = Status::Ok();
    rpc_active_ = false;
    rpc_done_ = false;
  }
  fd_.store(fd, std::memory_order_release);
  reader_ = std::thread([this] { ReaderThread(); });
  return Status::Ok();
}

void NetClient::Close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) shutdown(fd, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  if (fd >= 0) close(fd);
}

Status NetClient::SendBytes(const std::vector<uint8_t>& bytes) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return Status::Unavailable("not connected");
  std::lock_guard<std::mutex> lock(send_mu_);
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send: ") +
                                 std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status NetClient::Submit(uint64_t stream_key, uint64_t tag,
                         const float* values, int64_t dims) {
  if (dims <= 0) return Status::InvalidArgument("dims must be positive");
  WireSubmit submit;
  submit.stream_key = stream_key;
  submit.tag = tag;
  submit.values.assign(values, values + dims);
  std::vector<uint8_t> bytes;
  submit.EncodeTo(&bytes);
  return SendBytes(bytes);
}

Status NetClient::Rpc(const std::vector<uint8_t>& bytes, FrameType expect,
                      OwnedFrame* reply) {
  std::lock_guard<std::mutex> rpc_lock(rpc_mu_);
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    if (!conn_status_.ok()) return conn_status_;
    rpc_active_ = true;
    rpc_expect_ = expect;
    rpc_done_ = false;
  }
  const Status sent = SendBytes(bytes);
  if (!sent.ok()) {
    std::lock_guard<std::mutex> lock(wait_mu_);
    rpc_active_ = false;
    return sent;
  }
  std::unique_lock<std::mutex> lock(wait_mu_);
  const bool done = wait_cv_.wait_for(
      lock, std::chrono::milliseconds(options_.rpc_timeout_ms),
      [this] { return rpc_done_ || !conn_status_.ok(); });
  rpc_active_ = false;
  if (rpc_done_) {
    *reply = std::move(rpc_reply_);
    return Status::Ok();
  }
  if (!conn_status_.ok()) return conn_status_;
  return done ? Status::Internal("rpc woke without reply")
              : Status::DeadlineExceeded("rpc timed out");
}

Status NetClient::CreateStream(uint64_t stream_key,
                               const Tensor& calibration) {
  if (calibration.ndim() != 2 || calibration.size(0) <= 0 ||
      calibration.size(1) <= 0) {
    return Status::InvalidArgument("calibration must be [rows, dims]");
  }
  WireCreateStream req;
  req.stream_key = stream_key;
  req.rows = calibration.size(0);
  req.dims = calibration.size(1);
  req.values.assign(calibration.data(),
                    calibration.data() + calibration.numel());
  std::vector<uint8_t> bytes;
  req.EncodeTo(&bytes);
  OwnedFrame reply;
  TRANAD_RETURN_IF_ERROR(Rpc(bytes, FrameType::kCreateStreamAck, &reply));
  WireAck ack;
  FrameView view{reply.type, reply.payload.data(), reply.payload.size()};
  TRANAD_RETURN_IF_ERROR(WireAck::Decode(view, &ack));
  return ack.status;
}

Status NetClient::CloseStream(uint64_t stream_key) {
  WireCloseStream req;
  req.stream_key = stream_key;
  std::vector<uint8_t> bytes;
  req.EncodeTo(&bytes);
  OwnedFrame reply;
  TRANAD_RETURN_IF_ERROR(Rpc(bytes, FrameType::kCloseStreamAck, &reply));
  WireAck ack;
  FrameView view{reply.type, reply.payload.data(), reply.payload.size()};
  TRANAD_RETURN_IF_ERROR(WireAck::Decode(view, &ack));
  return ack.status;
}

Result<serve::ServeStatsSnapshot> NetClient::Stats() {
  WireStatsRequest req;
  std::vector<uint8_t> bytes;
  req.EncodeTo(&bytes);
  OwnedFrame reply;
  TRANAD_RETURN_IF_ERROR(Rpc(bytes, FrameType::kStatsReply, &reply));
  WireStatsReply stats;
  FrameView view{reply.type, reply.payload.data(), reply.payload.size()};
  TRANAD_RETURN_IF_ERROR(WireStatsReply::Decode(view, &stats));
  return stats.snapshot;
}

Status NetClient::Reload(const std::string& path) {
  WireReload req;
  req.path = path;
  std::vector<uint8_t> bytes;
  req.EncodeTo(&bytes);
  OwnedFrame reply;
  TRANAD_RETURN_IF_ERROR(Rpc(bytes, FrameType::kReloadAck, &reply));
  WireAck ack;
  FrameView view{reply.type, reply.payload.data(), reply.payload.size()};
  TRANAD_RETURN_IF_ERROR(WireAck::Decode(view, &ack));
  return ack.status;
}

Status NetClient::Ping() {
  WirePing ping;
  ping.token = 0x70696e67;  // arbitrary echo payload
  std::vector<uint8_t> bytes;
  ping.EncodeTo(&bytes, FrameType::kPing);
  OwnedFrame reply;
  TRANAD_RETURN_IF_ERROR(Rpc(bytes, FrameType::kPong, &reply));
  WirePing pong;
  FrameView view{reply.type, reply.payload.data(), reply.payload.size()};
  TRANAD_RETURN_IF_ERROR(WirePing::Decode(view, &pong));
  if (pong.token != ping.token) {
    return Status::Internal("pong token mismatch");
  }
  return Status::Ok();
}

void NetClient::FailPending(const Status& status) {
  std::lock_guard<std::mutex> lock(wait_mu_);
  if (conn_status_.ok()) conn_status_ = status;
  wait_cv_.notify_all();
}

void NetClient::ReaderThread() {
  FrameReader reader(options_.max_frame_payload);
  std::vector<uint8_t> buf(64 * 1024);
  for (;;) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) {
      FailPending(Status::Unavailable("connection closed"));
      return;
    }
    const size_t want = std::min(buf.size(), reader.writable());
    const ssize_t n = read(fd, buf.data(), want);
    if (n == 0) {
      FailPending(Status::Unavailable("server closed the connection"));
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      FailPending(Status::Unavailable(std::string("read: ") +
                                      std::strerror(errno)));
      return;
    }
    if (!reader.Feed(buf.data(), static_cast<size_t>(n)).ok()) {
      FailPending(Status::Internal("client reader overfed its buffer"));
      return;
    }
    for (;;) {
      FrameView frame;
      bool got = false;
      const Status st = reader.Next(&frame, &got);
      if (!st.ok()) {
        FailPending(st);
        return;
      }
      if (!got) break;
      if (frame.type == FrameType::kVerdict) {
        WireVerdict verdict;
        if (WireVerdict::Decode(frame, &verdict).ok() && handler_) {
          handler_(verdict);
        }
        continue;
      }
      if (frame.type == FrameType::kError) {
        WireAck error;
        const Status decoded = WireAck::Decode(frame, &error);
        FailPending(decoded.ok()
                        ? (error.status.ok()
                               ? Status::Internal("server sent empty error")
                               : error.status)
                        : decoded);
        return;
      }
      std::lock_guard<std::mutex> lock(wait_mu_);
      if (rpc_active_ && !rpc_done_ && frame.type == rpc_expect_) {
        rpc_reply_.type = frame.type;
        rpc_reply_.payload.assign(frame.payload,
                                  frame.payload + frame.payload_len);
        rpc_done_ = true;
        wait_cv_.notify_all();
      }
      // A reply nobody is waiting for (e.g. a ReloadAck after the RPC
      // timed out) is dropped by design.
    }
  }
}

}  // namespace tranad::net
