#ifndef TRANAD_NN_MODULE_H_
#define TRANAD_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "io/checkpoint.h"
#include "tensor/variable.h"

namespace tranad::nn {

/// Base class for neural-network building blocks. A Module owns named
/// parameters (leaf Variables with requires_grad) and registers child
/// modules, forming a tree whose parameters can be collected, zeroed,
/// snapshotted and (de)serialized — the machinery the optimizers and the
/// MAML outer loop rely on.
class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its descendants, in registration
  /// order (stable across runs — serialization depends on it).
  std::vector<Variable> Parameters() const;

  /// Dotted parameter names parallel to Parameters().
  std::vector<std::string> ParameterNames() const;

  /// Total scalar parameter count.
  int64_t NumParameters() const;

  /// Clears gradients on every parameter.
  void ZeroGrad();

  /// Train/eval mode toggle (controls dropout etc.).
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Copies of all parameter values (for MAML save/restore and Reptile).
  std::vector<Tensor> SnapshotParameters() const;

  /// Restores parameter values from a snapshot taken on an identically
  /// structured module.
  void RestoreParameters(const std::vector<Tensor>& snapshot);

  /// Adds every parameter to `writer` as "<prefix><dotted name>" tensor
  /// entries, so callers can pack model state alongside optimizer/POT/
  /// normalizer state in one checkpoint.
  void SaveTo(io::CheckpointWriter* writer, const std::string& prefix) const;

  /// Restores every parameter from `reader` entries named
  /// "<prefix><dotted name>". Validates all names and shapes before writing
  /// anything, so a failed load leaves the module untouched.
  Status LoadFrom(const io::CheckpointReader& reader,
                  const std::string& prefix);

  /// Standalone whole-module (de)serialization over the crash-safe
  /// checkpoint container: Save writes tmp+fsync+rename, Load rejects torn
  /// or corrupt files with a Status.
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 protected:
  /// Registers a parameter; returns a handle sharing the stored node.
  Variable RegisterParameter(std::string name, Tensor init);

  /// Registers a child (not owned; the derived class holds it as a member).
  void RegisterModule(std::string name, Module* child);

 private:
  void Collect(const std::string& prefix, std::vector<Variable>* params,
               std::vector<std::string>* names) const;

  bool training_ = true;
  std::vector<std::pair<std::string, Variable>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace tranad::nn

#endif  // TRANAD_NN_MODULE_H_
