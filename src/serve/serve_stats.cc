#include "serve/serve_stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tranad::serve {

int LatencyBucketIndex(double latency_ms) {
  if (!(latency_ms > kLatencyHistMinMs)) return 0;
  const int idx = 1 + static_cast<int>(std::floor(
                          std::log(latency_ms / kLatencyHistMinMs) /
                          std::log(kLatencyHistRatio)));
  return std::min(idx, kLatencyHistBuckets - 1);
}

double LatencyBucketMidpointMs(int bucket) {
  if (bucket <= 0) return kLatencyHistMinMs * 0.5;
  // Bucket i covers (min * r^(i-1), min * r^i]; geometric midpoint.
  return kLatencyHistMinMs *
         std::pow(kLatencyHistRatio, static_cast<double>(bucket) - 0.5);
}

double LatencyHistPercentileMs(const std::vector<int64_t>& hist, double q) {
  int64_t total = 0;
  for (int64_t c : hist) total += c;
  if (total <= 0) return 0.0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  // Rank of the percentile observation (1-based, nearest-rank).
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(clamped * static_cast<double>(total))));
  int64_t cumulative = 0;
  for (size_t b = 0; b < hist.size(); ++b) {
    cumulative += hist[b];
    if (cumulative >= rank) return LatencyBucketMidpointMs(static_cast<int>(b));
  }
  return LatencyBucketMidpointMs(static_cast<int>(hist.size()) - 1);
}

void ServeStatsSnapshot::MergeFrom(const ServeStatsSnapshot& other) {
  submitted += other.submitted;
  rejected += other.rejected;
  completed += other.completed;
  anomalies += other.anomalies;
  failed += other.failed;
  deadline_expired += other.deadline_expired;
  shed += other.shed;
  non_finite_rejected += other.non_finite_rejected;
  quarantined_streams += other.quarantined_streams;
  watchdog_stalls += other.watchdog_stalls;
  reloads += other.reloads;
  reload_failures += other.reload_failures;
  shards_failed += other.shards_failed;
  streams_migrated += other.streams_migrated;
  reconnects += other.reconnects;
  retries_deduped += other.retries_deduped;
  batches += other.batches;
  batched_observations += other.batched_observations;
  mean_batch_size = batches == 0 ? 0.0
                                 : static_cast<double>(batched_observations) /
                                       static_cast<double>(batches);
  if (batch_size_hist.size() < other.batch_size_hist.size()) {
    batch_size_hist.resize(other.batch_size_hist.size(), 0);
  }
  for (size_t b = 0; b < other.batch_size_hist.size(); ++b) {
    batch_size_hist[b] += other.batch_size_hist[b];
  }
  queue_depth += other.queue_depth;
  if (latency_hist.empty()) {
    latency_hist.assign(static_cast<size_t>(kLatencyHistBuckets), 0);
  }
  for (size_t b = 0; b < other.latency_hist.size() && b < latency_hist.size();
       ++b) {
    latency_hist[b] += other.latency_hist[b];
  }
  max_latency_ms = std::max(max_latency_ms, other.max_latency_ms);
  shards += other.shards;
  // Shards serve concurrently: fleet elapsed is the longest-lived shard,
  // and fleet throughput is total completions over that wall clock.
  elapsed_seconds = std::max(elapsed_seconds, other.elapsed_seconds);
  throughput_per_sec = elapsed_seconds <= 0.0
                           ? 0.0
                           : static_cast<double>(completed) / elapsed_seconds;
  // True fleet percentiles from the merged histogram — never an average of
  // per-shard percentiles.
  p50_latency_ms = LatencyHistPercentileMs(latency_hist, 0.50);
  p99_latency_ms = LatencyHistPercentileMs(latency_hist, 0.99);
}

ServeStats::ServeStats(int64_t max_batch, int64_t reservoir_size) {
  TRANAD_CHECK_GT(max_batch, 0);
  TRANAD_CHECK_GT(reservoir_size, 0);
  batch_size_hist_.assign(static_cast<size_t>(max_batch) + 1, 0);
  latency_reservoir_.reserve(static_cast<size_t>(reservoir_size));
  latency_hist_.assign(static_cast<size_t>(kLatencyHistBuckets), 0);
  reservoir_capacity_ = reservoir_size;
}

void ServeStats::RecordSubmitted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
}

void ServeStats::RecordRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++rejected_;
}

void ServeStats::RecordBatch(int64_t batch_size) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  batched_observations_ += batch_size;
  if (batch_size >= 0 &&
      batch_size < static_cast<int64_t>(batch_size_hist_.size())) {
    ++batch_size_hist_[static_cast<size_t>(batch_size)];
  }
}

void ServeStats::RecordCompletion(double latency_ms, bool anomalous) {
  std::lock_guard<std::mutex> lock(mu_);
  if (anomalous) ++anomalies_;
  ++latency_hist_[static_cast<size_t>(LatencyBucketIndex(latency_ms))];
  max_latency_ms_ = std::max(max_latency_ms_, latency_ms);
  if (static_cast<int64_t>(latency_reservoir_.size()) < reservoir_capacity_) {
    latency_reservoir_.push_back(latency_ms);
  } else {
    latency_reservoir_[static_cast<size_t>(completed_ % reservoir_capacity_)] =
        latency_ms;
  }
  ++completed_;
}

void ServeStats::RecordFailure(StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  ++failed_;
  if (code == StatusCode::kDeadlineExceeded) ++deadline_expired_;
  if (code == StatusCode::kUnavailable) ++shed_;
}

void ServeStats::RecordNonFiniteRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++non_finite_rejected_;
}

void ServeStats::RecordQuarantined() {
  std::lock_guard<std::mutex> lock(mu_);
  ++quarantined_streams_;
}

void ServeStats::RecordWatchdogStall() {
  std::lock_guard<std::mutex> lock(mu_);
  ++watchdog_stalls_;
}

void ServeStats::RecordReload(bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ok) {
    ++reloads_;
  } else {
    ++reload_failures_;
  }
}

ServeStatsSnapshot ServeStats::Snapshot(int64_t queue_depth) const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeStatsSnapshot s;
  s.submitted = submitted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.anomalies = anomalies_;
  s.failed = failed_;
  s.deadline_expired = deadline_expired_;
  s.shed = shed_;
  s.non_finite_rejected = non_finite_rejected_;
  s.quarantined_streams = quarantined_streams_;
  s.watchdog_stalls = watchdog_stalls_;
  s.reloads = reloads_;
  s.reload_failures = reload_failures_;
  s.batches = batches_;
  s.batched_observations = batched_observations_;
  s.mean_batch_size =
      batches_ == 0 ? 0.0
                    : static_cast<double>(batched_observations_) /
                          static_cast<double>(batches_);
  s.batch_size_hist = batch_size_hist_;
  s.queue_depth = queue_depth;
  s.latency_hist = latency_hist_;
  s.max_latency_ms = max_latency_ms_;
  s.elapsed_seconds = started_.ElapsedSeconds();
  s.throughput_per_sec =
      s.elapsed_seconds <= 0.0
          ? 0.0
          : static_cast<double>(completed_) / s.elapsed_seconds;
  if (!latency_reservoir_.empty()) {
    std::vector<double> sorted = latency_reservoir_;
    std::sort(sorted.begin(), sorted.end());
    const auto at = [&](double q) {
      const size_t idx = static_cast<size_t>(
          q * static_cast<double>(sorted.size() - 1) + 0.5);
      return sorted[std::min(idx, sorted.size() - 1)];
    };
    s.p50_latency_ms = at(0.50);
    s.p99_latency_ms = at(0.99);
  }
  return s;
}

}  // namespace tranad::serve
