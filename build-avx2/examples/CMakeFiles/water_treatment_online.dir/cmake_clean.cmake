file(REMOVE_RECURSE
  "CMakeFiles/water_treatment_online.dir/water_treatment_online.cpp.o"
  "CMakeFiles/water_treatment_online.dir/water_treatment_online.cpp.o.d"
  "water_treatment_online"
  "water_treatment_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/water_treatment_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
