// Figure 3: visualization of focus scores and attention weights on SMD —
// per-dimension series, the model's focus scores, and the head-averaged
// attention weight mass on recent timestamps, as CSV.
#include "bench/bench_util.h"

#include <algorithm>

#include "core/tranad_detector.h"

namespace tranad::bench {
namespace {

int Main() {
  const Dataset& ds = BenchDataset("SMD");
  TranADConfig config;
  TrainOptions train;
  train.max_epochs = DefaultEpochs();
  TranADDetector det(config, train);
  det.Fit(ds.train);
  det.Score(ds.test);

  const Tensor& focus = det.last_focus();          // [T, m]
  const Tensor& attention = det.last_attention();  // [T, K]
  const int64_t dims = std::min<int64_t>(6, ds.dims());
  const int64_t k = attention.size(1);

  std::vector<std::string> header{"t"};
  for (int64_t d = 0; d < dims; ++d) {
    header.push_back("value" + std::to_string(d));
    header.push_back("focus" + std::to_string(d));
  }
  header.push_back("attention_recent");  // weight on the last 3 positions

  std::vector<std::vector<double>> csv;
  for (int64_t t = 0; t < ds.test.length(); ++t) {
    std::vector<double> row{static_cast<double>(t)};
    for (int64_t d = 0; d < dims; ++d) {
      row.push_back(ds.test.values.At({t, d}));
      row.push_back(focus.At({t, d}));
    }
    double recent = 0.0;
    for (int64_t j = std::max<int64_t>(0, k - 3); j < k; ++j) {
      recent += attention.At({t, j});
    }
    row.push_back(recent);
    csv.push_back(std::move(row));
  }
  const auto path = WriteBenchCsv("fig3_focus_attention", header, csv);

  // Quantify the paper's observation: focus scores correlate with labeled
  // anomalies (they spike where the data deviates).
  double focus_anom = 0.0, focus_norm = 0.0;
  int64_t n_anom = 0, n_norm = 0;
  for (int64_t t = 0; t < ds.test.length(); ++t) {
    double f = 0.0;
    for (int64_t d = 0; d < ds.dims(); ++d) f += focus.At({t, d});
    if (ds.test.labels[static_cast<size_t>(t)] != 0) {
      focus_anom += f;
      ++n_anom;
    } else {
      focus_norm += f;
      ++n_norm;
    }
  }
  std::printf("Figure 3 (SMD): mean focus score on anomalies %.6f vs "
              "normal %.6f (ratio %.2f)\n",
              focus_anom / std::max<int64_t>(1, n_anom),
              focus_norm / std::max<int64_t>(1, n_norm),
              (focus_anom / std::max<int64_t>(1, n_anom)) /
                  std::max(1e-12, focus_norm / std::max<int64_t>(1, n_norm)));
  std::printf("CSV series: %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
