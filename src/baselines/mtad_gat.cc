#include "baselines/mtad_gat.h"

#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad {

MtadGatDetector::MtadGatDetector(int64_t window, int64_t epochs,
                                 int64_t hidden, uint64_t seed)
    : WindowedDetector("MTAD-GAT", window, epochs, 64),
      hidden_(hidden),
      seed_(seed) {}

void MtadGatDetector::BuildModel(int64_t dims) {
  Rng rng(seed_);
  // Feature-oriented attention: dimensions are tokens with K-length traces.
  feature_attn_ =
      std::make_unique<nn::MultiHeadAttention>(window_, 1, &rng);
  // Time-oriented attention: timestamps are tokens with m-length vectors.
  temporal_attn_ = std::make_unique<nn::MultiHeadAttention>(dims, 1, &rng);
  gru_ = std::make_unique<nn::GruCell>(3 * dims, hidden_, &rng);
  forecast_head_ = std::make_unique<nn::Linear>(hidden_, dims, &rng);
  recon_head_ = std::make_unique<nn::Linear>(hidden_, dims, &rng);
  std::vector<Variable> params;
  for (auto* m : std::initializer_list<nn::Module*>{
           feature_attn_.get(), temporal_attn_.get(), gru_.get(),
           forecast_head_.get(), recon_head_.get()}) {
    auto p = m->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  opt_ = std::make_unique<nn::Adam>(params, 0.003f);
}

MtadGatDetector::Heads MtadGatDetector::Forward(const Tensor& batch) const {
  const int64_t b = batch.size(0);
  Variable seq(batch);  // [B, K, m]

  // Feature attention on [B, m, K] (dims as tokens), back to [B, K, m].
  Variable dims_as_tokens = ag::TransposeLast2(seq);
  Variable feat =
      feature_attn_->Forward(dims_as_tokens, dims_as_tokens, dims_as_tokens);
  feat = ag::TransposeLast2(feat);

  // Temporal attention on [B, K, m].
  Variable temp = temporal_attn_->Forward(seq, seq, seq);

  Variable fused = ag::Concat({seq, feat, temp}, 2);  // [B, K, 3m]
  Variable h = RunGruLast(*gru_, fused);              // [B, hidden]

  Heads heads;
  heads.forecast = forecast_head_->Forward(h);
  heads.recon = ag::Sigmoid(recon_head_->Forward(h));
  (void)b;
  return heads;
}

double MtadGatDetector::TrainBatch(const Tensor& batch, double /*progress*/) {
  const int64_t b = batch.size(0);
  // Forecast target: last timestamp, predicted from the prefix; we train
  // both heads on the full window's final observation.
  const Tensor target =
      SliceAxis(batch, 1, window_ - 1, 1).Reshape({b, dims_});
  Heads heads = Forward(batch);
  Variable loss = ag::Add(ag::MseLoss(heads.forecast, target),
                          ag::MseLoss(heads.recon, target));
  opt_->ZeroGrad();
  loss.Backward();
  opt_->ClipGradNorm(5.0f);
  opt_->Step();
  return loss.value().Item();
}

Tensor MtadGatDetector::ScoreBatch(const Tensor& batch) {
  const int64_t b = batch.size(0);
  const Tensor target =
      SliceAxis(batch, 1, window_ - 1, 1).Reshape({b, dims_});
  Heads heads = Forward(batch);
  constexpr float kGamma = 0.5f;
  Tensor out({b, dims_});
  const float* pf = heads.forecast.value().data();
  const float* pr = heads.recon.value().data();
  const float* pt = target.data();
  for (int64_t i = 0; i < b * dims_; ++i) {
    const float ef = pf[i] - pt[i];
    const float er = pr[i] - pt[i];
    out.data()[i] = kGamma * ef * ef + (1.0f - kGamma) * er * er;
  }
  return out;
}

}  // namespace tranad
