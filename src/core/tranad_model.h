#ifndef TRANAD_CORE_TRANAD_MODEL_H_
#define TRANAD_CORE_TRANAD_MODEL_H_

#include <memory>
#include <utility>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"
#include "nn/positional_encoding.h"
#include "nn/transformer.h"

namespace tranad {

/// Hyperparameters of the TranAD network (§4, "we use the following
/// hyperparameter values"). The four `use_*` switches produce the ablated
/// variants of Table 6.
struct TranADConfig {
  int64_t dims = 1;        // m, dataset modality
  int64_t window = 10;     // K, local context window
  int64_t num_layers = 1;  // transformer encoder layers
  int64_t d_ff = 64;       // hidden units in encoder layers
  int64_t num_heads = 0;   // 0 => one head per dataset dimension (paper)
  float dropout = 0.1f;
  int64_t max_len = 512;   // positional-encoding horizon (>= window)

  /// §6 future-work extension: bidirectional window self-attention
  /// (drops the Eq. 5 causal mask). Off by default — the paper's model is
  /// causal.
  bool bidirectional = false;

  // Ablation switches (Table 6).
  bool use_transformer = true;        // false: feed-forward encoder instead
  bool use_self_conditioning = true;  // false: focus score fixed to 0
  bool use_adversarial = true;        // false: single-phase reconstruction
  bool use_maml = true;               // false: no meta-learning step

  uint64_t seed = 7;
};

/// The TranAD network of Fig. 1: a transformer encoder over the focus-score-
/// conditioned input, a window encoder with masked self-attention and
/// cross-attention to the context encoding (Eq. 4-5), and two feed-forward
/// sigmoid decoders (Eq. 6). Input windows are [B, K, m]; the model operates
/// at d_model = 2m (window concatenated with the broadcast focus score).
class TranADModel : public nn::Module {
 public:
  explicit TranADModel(const TranADConfig& config);

  /// Encodes a window W [B, K, m] with focus score F [B, K, m] into the
  /// latent I2_3 [B, K, 2m] (Eq. 4-5).
  Variable Encode(const Variable& window, const Variable& focus);

  /// Decoder i in {1, 2}: O_i = Sigmoid(FeedForward(latent_K)) in [B, m] —
  /// as in the reference implementation, the decoders reconstruct the
  /// *current* timestamp (the window's final element) from the encoded
  /// window's final latent.
  Variable Decode1(const Variable& latent);
  Variable Decode2(const Variable& latent);

  /// Phase 1 (Alg. 1 line 5): O1, O2 in [B, m] from a zero focus score.
  std::pair<Variable, Variable> ForwardPhase1(const Variable& window);

  /// Phase 2 (Alg. 1 line 6): O_hat_2 in [B, m] from the self-conditioned
  /// focus F = (O1 - x_t)^2 (broadcast over the window, as the reference
  /// implementation repeats it). Honors use_self_conditioning.
  Variable ForwardPhase2(const Variable& window, const Variable& focus);

  /// Const, inference-only two-phase pass for the serving path: windows
  /// [B, K, m] (already normalized) -> (O1, O_hat_2), both [B, m]. Runs
  /// under NoGrad (no tape, no attention recording, no dropout) and touches
  /// no mutable model state, so it is safe to call concurrently from many
  /// threads on a frozen model. Precondition: !training(). The phase-2
  /// focus is computed internally as (O1 - x_t)^2 against the window's
  /// final timestamp, exactly as TranADDetector::Score does.
  std::pair<Tensor, Tensor> TwoPhaseInference(const Tensor& windows) const;

  /// Broadcasts a [B, m] focus score over the window length: [B, K, m].
  Variable BroadcastFocus(const Variable& focus, int64_t window_len) const;

  /// Parameter groups for the adversarial update routing (encoder shared,
  /// decoders adversaries).
  std::vector<Variable> EncoderParameters() const;
  std::vector<Variable> Decoder1Parameters() const;
  std::vector<Variable> Decoder2Parameters() const;

  const TranADConfig& config() const { return config_; }

  /// Average self-attention weights of the context encoder from the most
  /// recent forward pass (Fig. 3 visualization); [B, K, K].
  Tensor LastEncoderAttention() const;

  /// RNG used for dropout; exposed so training is reproducible per seed.
  Rng* rng() { return &rng_; }

 private:
  Variable EncodeTransformer(const Variable& input, Rng* rng) const;
  Variable EncodeFeedForward(const Variable& input, Rng* rng) const;
  Variable EncodeWith(const Variable& window, const Variable& focus,
                      Rng* rng) const;
  Variable Decode1With(const Variable& latent, Rng* rng) const;
  Variable Decode2With(const Variable& latent, Rng* rng) const;

  TranADConfig config_;
  Rng rng_;
  int64_t d_model_;

  // Transformer path.
  std::unique_ptr<nn::PositionalEncoding> pos_;
  std::unique_ptr<nn::TransformerEncoder> encoder_;
  std::unique_ptr<nn::WindowEncoderLayer> window_encoder_;
  // Feed-forward ablation path ("w/o transformer").
  std::unique_ptr<nn::FeedForward> ff_encoder_;
  std::unique_ptr<nn::FeedForward> ff_encoder2_;
  // Decoders.
  std::unique_ptr<nn::FeedForward> decoder1_;
  std::unique_ptr<nn::FeedForward> decoder2_;
};

}  // namespace tranad

#endif  // TRANAD_CORE_TRANAD_MODEL_H_
