# Empty compiler generated dependencies file for table5_training_time.
# This may be replaced when dependencies are built.
