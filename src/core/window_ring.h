#ifndef TRANAD_CORE_WINDOW_RING_H_
#define TRANAD_CORE_WINDOW_RING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace tranad {

/// Fixed-capacity ring buffer of *normalized* observations that assembles
/// TranAD scoring windows in O(K m) without re-normalizing or re-copying the
/// trailing history on every step. Shared by the single-stream OnlineTranAD
/// front end and the serve engine's per-stream sessions so both produce
/// bit-identical windows: a window is {x_{t-K+1}, ..., x_t} with the oldest
/// buffered row replicated in front while fewer than K observations exist
/// (the MakeWindows cold-start padding).
class WindowRing {
 public:
  WindowRing() = default;
  WindowRing(int64_t window, int64_t dims) { Reset(window, dims); }

  /// (Re)configures capacity and clears all rows.
  void Reset(int64_t window, int64_t dims);

  /// Appends one normalized observation [m], evicting the oldest row once
  /// K rows are held.
  void Push(const Tensor& normalized_row);

  /// Same, from a raw pointer to m contiguous floats (a row of an already
  /// normalized batch) — no per-row Tensor required.
  void PushRow(const float* normalized_row);

  /// Appends every row of a normalized [T, m] tail (seeding from
  /// calibration data); only the last K survive.
  void Seed(const Tensor& normalized_tail);

  /// Copies the current window into `dst` (K*m floats, row-major [K, m]).
  void AssembleInto(float* dst) const;

  /// The current window as a [1, K, m] tensor ready for ScoreWindows.
  Tensor Window() const;

  /// The buffered rows in logical (oldest -> newest) order, size()*dims()
  /// floats. Together with Restore this is the failover handoff surface: a
  /// ring restored from an export assembles bit-identical windows, because
  /// a window is a pure function of the logical row sequence (head_ and the
  /// physical slot layout are representation, not state).
  std::vector<float> ExportRows() const;

  /// Rebuilds the ring from an ExportRows payload: Reset(window, dims) then
  /// re-push every row. InvalidArgument when `rows` is not a whole number
  /// of dims-sized rows or holds more than `window` rows.
  Status Restore(int64_t window, int64_t dims, const std::vector<float>& rows);

  int64_t window() const { return k_; }
  int64_t dims() const { return m_; }
  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  int64_t k_ = 0;
  int64_t m_ = 0;
  int64_t size_ = 0;  // valid rows, <= k_
  int64_t head_ = 0;  // slot of the oldest row
  std::vector<float> rows_;  // k_ * m_ storage
};

}  // namespace tranad

#endif  // TRANAD_CORE_WINDOW_RING_H_
