#include "baselines/merlin.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace tranad {
namespace {

std::vector<double> SineWithDiscord(int64_t n, int64_t anomaly_at,
                                    int64_t anomaly_len) {
  std::vector<double> s(static_cast<size_t>(n));
  Rng rng(5);
  for (int64_t i = 0; i < n; ++i) {
    s[static_cast<size_t>(i)] =
        std::sin(2.0 * M_PI * i / 25.0) + 0.02 * rng.Normal();
  }
  for (int64_t i = anomaly_at; i < anomaly_at + anomaly_len; ++i) {
    s[static_cast<size_t>(i)] = 1.8;  // flat plateau breaks the period
  }
  return s;
}

TEST(DiscordFinderTest, DistanceIsSymmetricAndZeroOnSelfSimilar) {
  std::vector<double> s(200);
  for (size_t i = 0; i < s.size(); ++i) {
    s[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 20.0);
  }
  DiscordFinder finder(s);
  EXPECT_NEAR(finder.Distance(10, 50, 20), finder.Distance(50, 10, 20),
              1e-9);
  // Subsequences exactly one period apart are z-normalized identical.
  EXPECT_NEAR(finder.Distance(10, 30, 20), 0.0, 1e-4);
}

TEST(DiscordFinderTest, DistanceBoundedBy2SqrtL) {
  Rng rng(6);
  std::vector<double> s(300);
  for (auto& v : s) v = rng.Normal();
  DiscordFinder finder(s);
  const double bound = 2.0 * std::sqrt(16.0) + 1e-6;
  for (int i = 0; i < 50; ++i) {
    const int64_t a = static_cast<int64_t>(rng.UniformInt(280));
    const int64_t b = static_cast<int64_t>(rng.UniformInt(280));
    EXPECT_LE(finder.Distance(a, b, 16), bound);
  }
}

TEST(DiscordFinderTest, NaiveFindsPlantedDiscord) {
  const auto s = SineWithDiscord(400, 211, 18);
  DiscordFinder finder(s);
  const Discord d = finder.FindDiscordNaive(20);
  ASSERT_GE(d.position, 0);
  EXPECT_NEAR(static_cast<double>(d.position), 211.0, 25.0);
  EXPECT_GT(d.distance, 0.0);
}

TEST(DiscordFinderTest, DragMatchesNaiveDiscordDistance) {
  const auto s = SineWithDiscord(400, 137, 15);
  DiscordFinder finder(s);
  const Discord naive = finder.FindDiscordNaive(20);
  const Discord drag = finder.FindDiscord(20);
  ASSERT_GE(drag.position, 0);
  // DRAG is exact: same discord (or an overlapping one with equal
  // distance).
  EXPECT_NEAR(drag.distance, naive.distance, 1e-6);
  EXPECT_NEAR(static_cast<double>(drag.position),
              static_cast<double>(naive.position), 5.0);
}

TEST(DiscordFinderTest, MultipleLengthsAllFindAnomaly) {
  const auto s = SineWithDiscord(500, 300, 20);
  DiscordFinder finder(s);
  const auto discords = finder.FindDiscords(10, 30, 10);
  ASSERT_GE(discords.size(), 2u);
  for (const auto& d : discords) {
    EXPECT_GE(d.position, 0);
    // Every length's discord overlaps the planted plateau.
    EXPECT_LT(std::llabs(d.position - 300), 40) << "length " << d.length;
  }
}

TEST(DiscordFinderTest, ConstantSeriesSafe) {
  std::vector<double> s(100, 1.0);
  DiscordFinder finder(s);
  const Discord d = finder.FindDiscord(10);
  // No meaningful discord, but no crash / NaN either.
  EXPECT_TRUE(std::isfinite(d.distance));
}

TEST(MerlinDetectorTest, ScoresPeakAtAnomaly) {
  const auto raw = SineWithDiscord(400, 250, 16);
  TimeSeries series;
  series.values = Tensor({400, 1});
  for (int64_t i = 0; i < 400; ++i) {
    series.values.At({i, 0}) = static_cast<float>(raw[static_cast<size_t>(i)]);
  }
  MerlinDetector det;
  det.Fit(series);  // no-op
  const Tensor scores = det.Score(series);
  // Mean score inside the planted window beats the outside mean.
  double inside = 0.0, outside = 0.0;
  int64_t n_in = 0, n_out = 0;
  for (int64_t t = 0; t < 400; ++t) {
    if (t >= 245 && t < 275) {
      inside += scores.At({t, 0});
      ++n_in;
    } else {
      outside += scores.At({t, 0});
      ++n_out;
    }
  }
  EXPECT_GT(inside / n_in, outside / n_out);
  EXPECT_GT(det.seconds_per_epoch(), 0.0);  // discovery time recorded
}

TEST(MerlinDetectorTest, NaiveVariantNamed) {
  MerlinDetector naive(8, 32, 8, /*naive=*/true);
  EXPECT_EQ(naive.name(), "MERLIN(naive)");
  MerlinDetector fast;
  EXPECT_EQ(fast.name(), "MERLIN");
}

}  // namespace
}  // namespace tranad
