# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-avx2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-avx2/tests/common_test[1]_include.cmake")
include("/root/repo/build-avx2/tests/tensor_test[1]_include.cmake")
include("/root/repo/build-avx2/tests/nn_test[1]_include.cmake")
include("/root/repo/build-avx2/tests/io_test[1]_include.cmake")
include("/root/repo/build-avx2/tests/data_test[1]_include.cmake")
include("/root/repo/build-avx2/tests/eval_test[1]_include.cmake")
include("/root/repo/build-avx2/tests/core_test[1]_include.cmake")
include("/root/repo/build-avx2/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-avx2/tests/serve_test[1]_include.cmake")
include("/root/repo/build-avx2/tests/net_test[1]_include.cmake")
include("/root/repo/build-avx2/tests/integration_test[1]_include.cmake")
