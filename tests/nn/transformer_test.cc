#include "nn/transformer.h"

#include <gtest/gtest.h>

#include "nn/positional_encoding.h"
#include "tensor/autograd_ops.h"

namespace tranad::nn {
namespace {

TEST(PositionalEncodingTest, TableMatchesVaswaniFormula) {
  PositionalEncoding pe(4, 16);
  const Tensor& table = pe.table();
  EXPECT_NEAR(table.At({0, 0}), 0.0f, 1e-6);  // sin(0)
  EXPECT_NEAR(table.At({0, 1}), 1.0f, 1e-6);  // cos(0)
  EXPECT_NEAR(table.At({1, 0}), std::sin(1.0), 1e-5);
  EXPECT_NEAR(table.At({1, 1}), std::cos(1.0), 1e-5);
  // Second frequency pair: omega = 10000^(-2/4).
  const double omega = std::pow(10000.0, -2.0 / 4.0);
  EXPECT_NEAR(table.At({3, 2}), std::sin(3.0 * omega), 1e-5);
  EXPECT_NEAR(table.At({3, 3}), std::cos(3.0 * omega), 1e-5);
}

TEST(PositionalEncodingTest, DistinguishesPositions) {
  PositionalEncoding pe(8, 32);
  const Tensor& t = pe.table();
  // No two positions share an identical encoding row.
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = i + 1; j < 8; ++j) {
      bool same = true;
      for (int64_t k = 0; k < 8; ++k) {
        if (std::fabs(t.At({i, k}) - t.At({j, k})) > 1e-5) {
          same = false;
          break;
        }
      }
      EXPECT_FALSE(same) << "positions " << i << " and " << j;
    }
  }
}

TEST(PositionalEncodingTest, ForwardAddsTable) {
  PositionalEncoding pe(4, 8, /*dropout=*/0.0f);
  pe.SetTraining(false);
  Rng rng(1);
  Variable x(Tensor::Zeros({1, 3, 4}));
  Variable y = pe.Forward(x, &rng);
  for (int64_t t = 0; t < 3; ++t) {
    for (int64_t d = 0; d < 4; ++d) {
      EXPECT_NEAR(y.value().At({0, t, d}), pe.table().At({t, d}), 1e-6);
    }
  }
}

TEST(PositionalEncodingTest, TooLongSequenceDies) {
  PositionalEncoding pe(4, 8);
  Rng rng(2);
  EXPECT_DEATH(pe.Forward(Variable(Tensor::Zeros({1, 9, 4})), &rng),
               "CHECK");
}

TEST(FeedForwardTest, ShapeAndGrad) {
  Rng rng(3);
  FeedForward ff(6, 16, 4, 0.0f, &rng);
  ff.SetTraining(false);
  Variable x(Tensor::Randn({2, 5, 6}, &rng));
  Variable y = ff.Forward(x, &rng);
  EXPECT_EQ(y.shape(), Shape({2, 5, 4}));
  ag::SumAll(y).Backward();
  for (const auto& p : ff.Parameters()) {
    EXPECT_EQ(p.grad().shape(), p.value().shape());
  }
}

TEST(TransformerEncoderLayerTest, PreservesShape) {
  Rng rng(4);
  TransformerEncoderLayer layer(8, 2, 16, 0.0f, &rng);
  layer.SetTraining(false);
  Variable x(Tensor::Randn({3, 7, 8}, &rng));
  EXPECT_EQ(layer.Forward(x, &rng).shape(), Shape({3, 7, 8}));
}

TEST(TransformerEncoderLayerTest, OutputIsLayerNormalized) {
  Rng rng(5);
  TransformerEncoderLayer layer(8, 2, 16, 0.0f, &rng);
  layer.SetTraining(false);
  Variable x(Tensor::Randn({1, 4, 8}, &rng, 2.0f));
  Variable y = layer.Forward(x, &rng);
  // Post-norm design: each output row has near-zero mean (gain/bias at
  // init are identity).
  for (int64_t t = 0; t < 4; ++t) {
    float mean = 0.0f;
    for (int64_t d = 0; d < 8; ++d) mean += y.value().At({0, t, d});
    EXPECT_NEAR(mean / 8.0f, 0.0f, 1e-4);
  }
}

TEST(TransformerEncoderTest, StacksLayers) {
  Rng rng(6);
  TransformerEncoder enc(3, 8, 2, 16, 0.0f, &rng);
  enc.SetTraining(false);
  EXPECT_EQ(enc.num_layers(), 3);
  Variable x(Tensor::Randn({2, 5, 8}, &rng));
  EXPECT_EQ(enc.Forward(x, &rng).shape(), Shape({2, 5, 8}));
  // Parameter count = 3x single layer.
  TransformerEncoder single(1, 8, 2, 16, 0.0f, &rng);
  EXPECT_EQ(enc.NumParameters(), 3 * single.NumParameters());
}

TEST(WindowEncoderLayerTest, CrossAttendsContext) {
  Rng rng(7);
  WindowEncoderLayer layer(8, 2, 16, 0.0f, &rng);
  layer.SetTraining(false);
  Variable window(Tensor::Randn({2, 4, 8}, &rng));
  Variable context(Tensor::Randn({2, 6, 8}, &rng));
  Variable y = layer.Forward(window, context, &rng);
  EXPECT_EQ(y.shape(), Shape({2, 4, 8}));
  // Changing the context must change the output (cross-attention works).
  Variable context2(Tensor::Randn({2, 6, 8}, &rng));
  Variable y2 = layer.Forward(window, context2, &rng);
  EXPECT_FALSE(y.value().AllClose(y2.value(), 1e-6f));
}

TEST(WindowEncoderLayerTest, SelfAttentionIsCausal) {
  Rng rng(8);
  WindowEncoderLayer layer(4, 2, 8, 0.0f, &rng);
  layer.SetTraining(false);
  Variable w(Tensor::Randn({1, 5, 4}, &rng));
  layer.Forward(w, w, &rng);
  const Tensor& attn = layer.self_attention().last_attention();
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = i + 1; j < 5; ++j) {
      EXPECT_NEAR(attn.At({0, i, j}), 0.0f, 1e-6);
    }
  }
}

TEST(TransformerEncoderLayerTest, DropoutChangesTrainingOutput) {
  Rng rng(9);
  TransformerEncoderLayer layer(8, 2, 16, 0.5f, &rng);
  Variable x(Tensor::Randn({1, 4, 8}, &rng));
  layer.SetTraining(true);
  const Tensor y1 = layer.Forward(x, &rng).value();
  const Tensor y2 = layer.Forward(x, &rng).value();
  EXPECT_FALSE(y1.AllClose(y2, 1e-6f));  // different dropout masks
  layer.SetTraining(false);
  const Tensor e1 = layer.Forward(x, &rng).value();
  const Tensor e2 = layer.Forward(x, &rng).value();
  EXPECT_TRUE(e1.AllClose(e2, 1e-6f));  // eval is deterministic
}

}  // namespace
}  // namespace tranad::nn
