# Empty dependencies file for fig4_critical_difference.
# This may be replaced when dependencies are built.
