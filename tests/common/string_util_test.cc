#include "common/string_util.h"

#include <gtest/gtest.h>

namespace tranad {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, EmptyStringOneField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s", "str"), "str");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(ParseDoubleTest, ValidNumbers) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_TRUE(ParseDouble("  42 ", &v));
  EXPECT_DOUBLE_EQ(v, 42.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("   ", &v));
}

TEST(PadTest, PadLeftRight) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");  // no truncation
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace tranad
