// Property-based metric tests on random inputs: invariants that must hold
// for any scores/labels, not just hand-picked cases.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "eval/metrics.h"

namespace tranad {
namespace {

struct RandomCase {
  std::vector<double> scores;
  std::vector<uint8_t> truth;
};

RandomCase MakeRandomCase(uint64_t seed, size_t n = 400) {
  Rng rng(seed);
  RandomCase c;
  c.scores.reserve(n);
  c.truth.reserve(n);
  bool in_segment = false;
  for (size_t i = 0; i < n; ++i) {
    if (!in_segment && rng.Bernoulli(0.02)) in_segment = true;
    if (in_segment && rng.Bernoulli(0.2)) in_segment = false;
    c.truth.push_back(in_segment ? 1 : 0);
    c.scores.push_back(rng.Uniform() + (in_segment ? rng.Uniform() : 0.0));
  }
  return c;
}

class MetricsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsPropertyTest, PointAdjustNeverShrinksPredictions) {
  const RandomCase c = MakeRandomCase(GetParam());
  const auto pred = ApplyThreshold(c.scores, 1.0);
  const auto adjusted = PointAdjust(pred, c.truth);
  for (size_t i = 0; i < pred.size(); ++i) {
    // Adjustment can only add positives inside true segments.
    if (pred[i] != 0) EXPECT_NE(adjusted[i], 0);
    if (adjusted[i] != 0 && pred[i] == 0) EXPECT_NE(c.truth[i], 0);
  }
}

TEST_P(MetricsPropertyTest, PointAdjustIsIdempotent) {
  const RandomCase c = MakeRandomCase(GetParam() ^ 0xABCD);
  const auto pred = ApplyThreshold(c.scores, 1.2);
  const auto once = PointAdjust(pred, c.truth);
  const auto twice = PointAdjust(once, c.truth);
  EXPECT_EQ(once, twice);
}

TEST_P(MetricsPropertyTest, AdjustedF1AtLeastRawF1) {
  const RandomCase c = MakeRandomCase(GetParam() ^ 0x1234);
  const auto pred = ApplyThreshold(c.scores, 1.1);
  const auto raw = CountConfusion(pred, c.truth);
  const auto adj = CountConfusion(PointAdjust(pred, c.truth), c.truth);
  EXPECT_GE(F1Of(adj), F1Of(raw) - 1e-12);
}

TEST_P(MetricsPropertyTest, AucInvariantUnderMonotoneTransform) {
  const RandomCase c = MakeRandomCase(GetParam() ^ 0x9999);
  std::vector<double> transformed(c.scores.size());
  for (size_t i = 0; i < c.scores.size(); ++i) {
    transformed[i] = std::exp(2.0 * c.scores[i]) + 5.0;
  }
  EXPECT_NEAR(RocAuc(c.scores, c.truth), RocAuc(transformed, c.truth),
              1e-12);
}

TEST_P(MetricsPropertyTest, AucComplementOnNegatedScores) {
  const RandomCase c = MakeRandomCase(GetParam() ^ 0x7777);
  std::vector<double> negated(c.scores.size());
  for (size_t i = 0; i < c.scores.size(); ++i) negated[i] = -c.scores[i];
  EXPECT_NEAR(RocAuc(c.scores, c.truth) + RocAuc(negated, c.truth), 1.0,
              1e-12);
}

TEST_P(MetricsPropertyTest, BestF1DominatesFixedThresholds) {
  const RandomCase c = MakeRandomCase(GetParam() ^ 0x4242);
  const auto best = EvaluateBestF1(c.scores, c.truth);
  for (double thr : {0.5, 1.0, 1.5}) {
    const auto fixed = EvaluateAtThreshold(c.scores, c.truth, thr);
    EXPECT_GE(best.f1, fixed.f1 - 1e-9);
  }
}

TEST_P(MetricsPropertyTest, ConfusionCountsSumToN) {
  const RandomCase c = MakeRandomCase(GetParam() ^ 0x2468);
  const auto pred = ApplyThreshold(c.scores, 0.9);
  const auto counts = CountConfusion(pred, c.truth);
  EXPECT_EQ(counts.tp + counts.fp + counts.tn + counts.fn,
            static_cast<int64_t>(c.scores.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace tranad
