#ifndef TRANAD_CORE_ONLINE_DETECTOR_H_
#define TRANAD_CORE_ONLINE_DETECTOR_H_

#include <deque>
#include <memory>

#include "core/tranad_detector.h"
#include "eval/pot.h"

namespace tranad {

/// One streamed observation's verdict.
struct OnlineVerdict {
  /// Detection score s of Eq. (13) aggregated over dimensions.
  double score = 0.0;
  /// Per-dimension scores s_i (diagnosis ranking).
  Tensor dim_scores;  // [m]
  /// y = 1(s >= POT threshold), Eq. (14) with the streaming SPOT update.
  bool anomalous = false;
  /// The current dynamic threshold.
  double threshold = 0.0;
};

/// Stateful online front end for Alg. 2: wraps a *trained* TranADDetector,
/// keeps the trailing window of observations in a ring buffer, scores each
/// arriving observation with the two-phase inference, and thresholds it
/// with a streaming POT whose tail model updates as normal peaks arrive.
///
/// Usage:
///   TranADDetector detector;  detector.Fit(train);
///   OnlineTranAD online(&detector);
///   online.Calibrate(train);                 // threshold calibration
///   for (each new observation x) {
///     OnlineVerdict v = online.Observe(x);   // O(window) per step
///     if (v.anomalous) ...
///   }
class OnlineTranAD {
 public:
  /// `detector` must outlive this object and already be fitted.
  explicit OnlineTranAD(TranADDetector* detector, PotParams pot = {});

  /// Fits the streaming threshold from a calibration series (typically the
  /// training data). Also seeds the ring buffer with the series' tail.
  void Calibrate(const TimeSeries& calibration);

  /// Processes one observation x_t in R^m.
  OnlineVerdict Observe(const Tensor& observation);

  /// Number of observations streamed so far.
  int64_t observed() const { return observed_; }
  double threshold() const { return spot_.threshold(); }

 private:
  TranADDetector* detector_;
  StreamingPot spot_;
  std::deque<Tensor> buffer_;  // last K raw observations
  int64_t observed_ = 0;
};

}  // namespace tranad

#endif  // TRANAD_CORE_ONLINE_DETECTOR_H_
