#include "baselines/gmm.h"

#include <gtest/gtest.h>

namespace tranad {
namespace {

Tensor TwoClusters(int64_t n_per, uint64_t seed) {
  Rng rng(seed);
  Tensor data({2 * n_per, 2});
  for (int64_t i = 0; i < n_per; ++i) {
    data.At({i, 0}) = static_cast<float>(rng.Normal(-3.0, 0.4));
    data.At({i, 1}) = static_cast<float>(rng.Normal(-3.0, 0.4));
    data.At({n_per + i, 0}) = static_cast<float>(rng.Normal(3.0, 0.4));
    data.At({n_per + i, 1}) = static_cast<float>(rng.Normal(3.0, 0.4));
  }
  return data;
}

TEST(GmmTest, FitsTwoClusters) {
  DiagonalGmm gmm(2, 2);
  Rng rng(1);
  gmm.Fit(TwoClusters(300, 2), &rng);
  ASSERT_TRUE(gmm.fitted());
  // Balanced weights.
  EXPECT_NEAR(gmm.weights()[0], 0.5, 0.1);
  EXPECT_NEAR(gmm.weights()[1], 0.5, 0.1);
}

TEST(GmmTest, EnergyLowInClusterHighOutside) {
  DiagonalGmm gmm(2, 2);
  Rng rng(3);
  gmm.Fit(TwoClusters(300, 4), &rng);
  const float in_cluster[2] = {-3.0f, -3.0f};
  const float between[2] = {0.0f, 0.0f};
  const float far_away[2] = {20.0f, -20.0f};
  EXPECT_LT(gmm.Energy(in_cluster), gmm.Energy(between));
  EXPECT_LT(gmm.Energy(between), gmm.Energy(far_away));
}

TEST(GmmTest, EnergiesBatchMatchesSingle) {
  DiagonalGmm gmm(2, 2);
  Rng rng(5);
  const Tensor data = TwoClusters(100, 6);
  gmm.Fit(data, &rng);
  const auto energies = gmm.Energies(data);
  ASSERT_EQ(energies.size(), 200u);
  EXPECT_NEAR(energies[0], gmm.Energy(data.data()), 1e-9);
}

TEST(GmmTest, SingleComponentMatchesMoments) {
  Rng data_rng(7);
  Tensor data({1000, 1});
  for (int64_t i = 0; i < 1000; ++i) {
    data.At({i, 0}) = static_cast<float>(data_rng.Normal(2.0, 1.5));
  }
  DiagonalGmm gmm(1, 1);
  Rng rng(8);
  gmm.Fit(data, &rng);
  // Energy at the mean < energy two sigmas out.
  const float at_mean[1] = {2.0f};
  const float out[1] = {5.0f};
  EXPECT_LT(gmm.Energy(at_mean), gmm.Energy(out));
}

TEST(GmmTest, EnergyBeforeFitDies) {
  DiagonalGmm gmm(2, 2);
  const float x[2] = {0, 0};
  EXPECT_DEATH(gmm.Energy(x), "CHECK");
}

TEST(GmmTest, DegenerateDataSafe) {
  Tensor data({50, 2});  // all zeros
  DiagonalGmm gmm(2, 2);
  Rng rng(9);
  gmm.Fit(data, &rng);
  const float x[2] = {0, 0};
  EXPECT_TRUE(std::isfinite(gmm.Energy(x)));
}

}  // namespace
}  // namespace tranad
