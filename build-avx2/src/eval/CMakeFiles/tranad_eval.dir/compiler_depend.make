# Empty compiler generated dependencies file for tranad_eval.
# This may be replaced when dependencies are built.
