# Empty compiler generated dependencies file for tranad_bench_util.
# This may be replaced when dependencies are built.
