
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/tranad_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/tranad_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/conv.cc" "src/nn/CMakeFiles/tranad_nn.dir/conv.cc.o" "gcc" "src/nn/CMakeFiles/tranad_nn.dir/conv.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/tranad_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/tranad_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/nn/CMakeFiles/tranad_nn.dir/layer_norm.cc.o" "gcc" "src/nn/CMakeFiles/tranad_nn.dir/layer_norm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/tranad_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/tranad_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/tranad_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/tranad_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/tranad_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/tranad_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/positional_encoding.cc" "src/nn/CMakeFiles/tranad_nn.dir/positional_encoding.cc.o" "gcc" "src/nn/CMakeFiles/tranad_nn.dir/positional_encoding.cc.o.d"
  "/root/repo/src/nn/rnn.cc" "src/nn/CMakeFiles/tranad_nn.dir/rnn.cc.o" "gcc" "src/nn/CMakeFiles/tranad_nn.dir/rnn.cc.o.d"
  "/root/repo/src/nn/transformer.cc" "src/nn/CMakeFiles/tranad_nn.dir/transformer.cc.o" "gcc" "src/nn/CMakeFiles/tranad_nn.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-avx2/src/tensor/CMakeFiles/tranad_tensor.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/common/CMakeFiles/tranad_common.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/io/CMakeFiles/tranad_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
