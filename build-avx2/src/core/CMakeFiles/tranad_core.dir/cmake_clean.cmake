file(REMOVE_RECURSE
  "CMakeFiles/tranad_core.dir/online_detector.cc.o"
  "CMakeFiles/tranad_core.dir/online_detector.cc.o.d"
  "CMakeFiles/tranad_core.dir/pipeline.cc.o"
  "CMakeFiles/tranad_core.dir/pipeline.cc.o.d"
  "CMakeFiles/tranad_core.dir/tranad_detector.cc.o"
  "CMakeFiles/tranad_core.dir/tranad_detector.cc.o.d"
  "CMakeFiles/tranad_core.dir/tranad_model.cc.o"
  "CMakeFiles/tranad_core.dir/tranad_model.cc.o.d"
  "CMakeFiles/tranad_core.dir/tranad_trainer.cc.o"
  "CMakeFiles/tranad_core.dir/tranad_trainer.cc.o.d"
  "CMakeFiles/tranad_core.dir/window_ring.cc.o"
  "CMakeFiles/tranad_core.dir/window_ring.cc.o.d"
  "libtranad_core.a"
  "libtranad_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tranad_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
