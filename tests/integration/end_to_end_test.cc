// Full-stack integration tests: synthetic data -> normalization ->
// windows -> TranAD training -> two-phase scoring -> POT thresholding ->
// detection + diagnosis metrics — the complete Alg. 1 + Alg. 2 pipeline.
#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "core/pipeline.h"
#include "core/tranad_detector.h"
#include "data/synthetic.h"
#include "eval/critdiff.h"
#include "eval/pot.h"

namespace tranad {
namespace {

TEST(EndToEndTest, TranADBeatsWeakBaselineOnSmd) {
  // Scale 0.3 is the smallest size with enough anomaly segments for stable
  // F1 (tiny scales leave only 1-2 events and metric noise dominates).
  auto config = SmdConfig(0.3);
  Dataset ds = GenerateSynthetic(config);

  DetectorOptions opts;
  opts.epochs = 4;
  auto tranad = CreateDetector("TranAD", opts);
  auto iforest = CreateDetector("IsolationForest", opts);
  ASSERT_TRUE(tranad.ok() && iforest.ok());

  const EvalOutcome a = EvaluateDetector(tranad->get(), ds);
  const EvalOutcome b = EvaluateDetector(iforest->get(), ds);
  EXPECT_GT(a.detection.f1, 0.6);
  EXPECT_GE(a.detection.f1, b.detection.f1 - 0.05);
}

TEST(EndToEndTest, AblationOrderingOnWadi) {
  // Table 6's strongest effect: removing the transformer hurts most on
  // large, noisy datasets (the paper reports a 56% drop on WADI).
  Dataset ds = GenerateSynthetic(WadiConfig(0.08));
  DetectorOptions opts;
  opts.epochs = 3;
  auto full = CreateDetector("TranAD", opts);
  auto no_transformer = CreateDetector("TranAD-w/o-transformer", opts);
  ASSERT_TRUE(full.ok() && no_transformer.ok());
  const EvalOutcome a = EvaluateDetector(full->get(), ds);
  const EvalOutcome b = EvaluateDetector(no_transformer->get(), ds);
  // The full model should not lose; allow slack for the tiny scale.
  EXPECT_GE(a.detection.f1 + 0.1, b.detection.f1);
}

TEST(EndToEndTest, OnlineInferenceMatchesBatchScores) {
  // Alg. 2 is sequential/online; our batched scorer must produce the same
  // scores as feeding one window at a time.
  Dataset ds = GenerateSynthetic(NabConfig(0.4));
  TranADConfig mc;
  mc.window = 8;
  mc.d_ff = 16;
  TrainOptions to;
  to.max_epochs = 2;
  TranADDetector det(mc, to);
  det.Fit(ds.train);
  const Tensor batch_scores = det.Score(ds.test);

  // Chunked "online" pass: score the prefix stream in pieces and compare
  // the overlap (windows only look backwards, so scores are causal).
  const int64_t prefix_len = std::min<int64_t>(100, ds.test.length());
  TimeSeries prefix;
  prefix.values = Tensor({prefix_len, 1});
  std::copy(ds.test.values.data(), ds.test.values.data() + prefix_len,
            prefix.values.data());
  const Tensor prefix_scores = det.Score(prefix);
  for (int64_t t = 0; t < prefix_len; ++t) {
    EXPECT_NEAR(prefix_scores.At({t, 0}), batch_scores.At({t, 0}), 1e-4)
        << "score at t=" << t << " depends on future data";
  }
}

TEST(EndToEndTest, StreamingPotOnTranADScores) {
  auto config = SmapConfig(0.25);
  config.anomaly_magnitude = 1.5;
  Dataset ds = GenerateSynthetic(config);
  TranADConfig mc;
  mc.window = 8;
  mc.d_ff = 16;
  TrainOptions to;
  to.max_epochs = 3;
  TranADDetector det(mc, to);
  det.Fit(ds.train);

  const std::vector<double> calib =
      DetectionScores(det.Score(ds.train));
  const std::vector<double> stream =
      DetectionScores(det.Score(ds.test));

  StreamingPot spot(PotParamsForDataset("SMAP"));
  spot.Initialize(calib);
  std::vector<uint8_t> pred;
  pred.reserve(stream.size());
  for (double s : stream) pred.push_back(spot.Observe(s) ? 1 : 0);
  const auto adjusted = PointAdjust(pred, ds.test.labels);
  const auto c = CountConfusion(adjusted, ds.test.labels);
  // The streaming detector catches at least part of the anomalies without
  // drowning in false positives.
  EXPECT_GT(RecallOf(c), 0.2);
  EXPECT_GT(PrecisionOf(c), 0.2);
}

TEST(EndToEndTest, CriticalDifferencePipelineRuns) {
  // Mini Fig. 4: three methods, four datasets, full statistical pipeline.
  std::vector<std::string> methods{"TranAD", "USAD", "IsolationForest"};
  std::vector<std::vector<double>> f1(methods.size());
  DetectorOptions opts;
  opts.epochs = 2;
  for (const char* data : {"NAB", "MBA", "SMD", "MSDS"}) {
    auto ds = GenerateDatasetByName(data, 0.06);
    ASSERT_TRUE(ds.ok());
    for (size_t i = 0; i < methods.size(); ++i) {
      auto det = CreateDetector(methods[i], opts);
      ASSERT_TRUE(det.ok());
      f1[i].push_back(EvaluateDetector(det->get(), *ds).detection.f1);
    }
  }
  const auto cd = CriticalDifference(methods, f1);
  EXPECT_EQ(cd.entries.size(), 3u);
  const std::string rendered = RenderCritDiff(cd);
  EXPECT_NE(rendered.find("TranAD"), std::string::npos);
}

TEST(EndToEndTest, LimitedDataStillLearns) {
  // The F1* protocol: 20% of training data.
  Dataset ds = GenerateSynthetic(SmdConfig(0.15));
  Rng rng(9);
  TimeSeries small = SubsampleTrain(ds.train, 0.2, &rng);
  TranADConfig mc;
  mc.d_ff = 16;
  TrainOptions to;
  to.max_epochs = 4;
  TranADDetector det(mc, to);
  det.Fit(small);
  const EvalOutcome out = [&] {
    // Score manually since Fit already happened.
    EvalOutcome o;
    const Tensor scores = det.Score(ds.test);
    o.detection = EvaluateBestF1(DetectionScores(scores), ds.test.labels);
    return o;
  }();
  EXPECT_GT(out.detection.f1, 0.4);
}

}  // namespace
}  // namespace tranad
