#ifndef TRANAD_BASELINES_MSCRED_H_
#define TRANAD_BASELINES_MSCRED_H_

#include <memory>
#include <vector>

#include "baselines/common.h"
#include "nn/linear.h"
#include "nn/optimizer.h"

namespace tranad {

/// MSCRED (Zhang et al., AAAI'19): converts each window into multi-scale
/// *signature matrices* (pairwise inner products of the dimensions over
/// nested sub-windows) and reconstructs them with a convolutional
/// encoder-decoder; the residual of the largest-scale matrix yields the
/// anomaly score. The ConvLSTM of the original is replaced by a dense
/// encoder-decoder over the flattened signature stack (see DESIGN.md);
/// the signature-matrix representation — the method's defining idea — is
/// kept exactly.
class MscredDetector : public WindowedDetector {
 public:
  explicit MscredDetector(int64_t window = 10, int64_t epochs = 5,
                          uint64_t seed = 16);

  /// Multi-scale signature matrices for a window batch [B, K, m]:
  /// [B, scales * m * m].
  Tensor SignatureMatrices(const Tensor& batch) const;

 protected:
  void BuildModel(int64_t dims) override;
  double TrainBatch(const Tensor& batch, double progress) override;
  Tensor ScoreBatch(const Tensor& batch) override;

 private:
  Variable Reconstruct(const Variable& sig) const;

  uint64_t seed_;
  std::vector<int64_t> scales_;
  int64_t sig_dim_ = 0;
  std::unique_ptr<nn::Linear> enc1_, enc2_, dec1_, dec2_;
  std::unique_ptr<nn::Adam> opt_;
};

}  // namespace tranad

#endif  // TRANAD_BASELINES_MSCRED_H_
