file(REMOVE_RECURSE
  "CMakeFiles/table3_limited.dir/table3_limited.cc.o"
  "CMakeFiles/table3_limited.dir/table3_limited.cc.o.d"
  "table3_limited"
  "table3_limited.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_limited.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
