#ifndef TRANAD_CORE_ONLINE_DETECTOR_H_
#define TRANAD_CORE_ONLINE_DETECTOR_H_

#include <memory>

#include "core/tranad_detector.h"
#include "core/window_ring.h"
#include "eval/pot.h"

namespace tranad {

/// One streamed observation's verdict.
struct OnlineVerdict {
  /// Detection score s of Eq. (13) aggregated over dimensions.
  double score = 0.0;
  /// Per-dimension scores s_i (diagnosis ranking).
  Tensor dim_scores;  // [m]
  /// y = 1(s >= POT threshold), Eq. (14) with the streaming SPOT update.
  bool anomalous = false;
  /// The current dynamic threshold.
  double threshold = 0.0;
  /// Ok for a scored verdict. The serve engine completes submissions it
  /// could not score (deadline expired, load shed, injected fault, stalled
  /// pipeline) with a non-OK status here; score/threshold are then
  /// meaningless and the observation never touched the stream's POT state.
  Status status;
};

/// Stateful online front end for Alg. 2: wraps a *trained* TranADDetector,
/// keeps the trailing window of observations in a normalized ring buffer,
/// scores each arriving observation with the two-phase inference, and
/// thresholds it with a streaming POT whose tail model updates as normal
/// peaks arrive.
///
/// Each observation is normalized once on arrival and the K-length window is
/// assembled directly from the ring (O(K m) per step), then scored through
/// the NoGrad inference path — no re-normalization of the trailing history
/// and no autograd tape on the hot path. The serve engine's per-stream
/// sessions follow exactly this recipe, so a single-worker serve run is
/// bit-for-bit identical to this class.
///
/// Usage:
///   TranADDetector detector;  detector.Fit(train);
///   OnlineTranAD online(&detector);
///   online.Calibrate(train);                 // threshold calibration
///   for (each new observation x) {
///     OnlineVerdict v = online.Observe(x);   // O(window) per step
///     if (v.anomalous) ...
///   }
class OnlineTranAD {
 public:
  /// `detector` must outlive this object and already be fitted.
  explicit OnlineTranAD(TranADDetector* detector, PotParams pot = {});

  /// Fits the streaming threshold from a calibration series (typically the
  /// training data). Also seeds the ring buffer with the series' tail.
  void Calibrate(const TimeSeries& calibration);

  /// Processes one observation x_t in R^m.
  OnlineVerdict Observe(const Tensor& observation);

  /// Number of observations streamed so far.
  int64_t observed() const { return observed_; }
  double threshold() const { return spot_.threshold(); }

 private:
  TranADDetector* detector_;
  StreamingPot spot_;
  WindowRing ring_;  // last K observations, already normalized
  int64_t observed_ = 0;
};

}  // namespace tranad

#endif  // TRANAD_CORE_ONLINE_DETECTOR_H_
