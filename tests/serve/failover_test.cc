#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/online_detector.h"
#include "core/pipeline.h"
#include "data/synthetic.h"
#include "serve/shard_router.h"
#include "serve/stream_session.h"

namespace tranad::serve {
namespace {

using failpoint::Action;
using failpoint::Schedule;
using failpoint::ScopedFailpoint;

// Failover suite: shard death (injected via shard.* failpoints or driven by
// worker-fault streaks) must migrate every victim stream's session state to
// a live shard with zero verdict drift — the post-migration verdict stream
// is bit-for-bit the sequential OnlineTranAD replay of the observations
// that were actually scored.
class FailoverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = SmapConfig(0.2);
    config.anomaly_magnitude = 1.6;
    for (uint64_t s = 0; s < kNumStreams; ++s) {
      config.seed = 511 + s;
      datasets_->push_back(GenerateSynthetic(config));
    }
    TranADConfig model_config;
    model_config.window = 8;
    model_config.d_ff = 16;
    TrainOptions train;
    train.max_epochs = 2;
    detector_ = new TranADDetector(model_config, train);
    detector_->Fit((*datasets_)[0].train);
  }

  static void TearDownTestSuite() {
    delete detector_;
    detector_ = nullptr;
    datasets_->clear();
  }

  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }

  static Tensor Observation(const TimeSeries& series, int64_t t) {
    Tensor row({series.dims()});
    for (int64_t d = 0; d < series.dims(); ++d) {
      row[d] = series.values.At({t, d});
    }
    return row;
  }

  static ShardRouterOptions FastOptions(int64_t shards) {
    ShardRouterOptions options;
    options.num_shards = shards;
    options.shard.num_workers = 1;
    options.shard.max_batch = 4;
    options.shard.max_wait_us = 100;
    options.shard.pot = PotParamsForDataset("SMAP");
    return options;
  }

  static void SubmitRetrying(ShardRouter* router, uint64_t key,
                             const Tensor& obs, VerdictCallback cb) {
    Status st = Status::Ok();
    do {
      st = router->Submit(key, obs, cb);
    } while (st.code() == StatusCode::kResourceExhausted);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  struct RecordedVerdict {
    int64_t seq = 0;
    OnlineVerdict verdict;
  };

  struct VerdictLog {
    std::mutex mu;
    std::map<StreamId, std::vector<RecordedVerdict>> by_stream;
    std::atomic<int64_t> total{0};

    VerdictCallback Callback() {
      return [this](StreamId stream, int64_t seq, const OnlineVerdict& v) {
        std::lock_guard<std::mutex> lock(mu);
        by_stream[stream].push_back({seq, v});
        total.fetch_add(1, std::memory_order_relaxed);
      };
    }
  };

  static constexpr uint64_t kNumStreams = 3;
  static TranADDetector* detector_;
  static std::vector<Dataset>* datasets_;
};

TranADDetector* FailoverTest::detector_ = nullptr;
std::vector<Dataset>* FailoverTest::datasets_ = new std::vector<Dataset>();

// The tentpole parity test: kill a shard mid-traffic via shard.kill, let
// the failover thread migrate its streams, keep submitting — and every
// stream's complete verdict sequence (across the migration boundary) is
// bit-for-bit what a sequential OnlineTranAD run over the same scored
// observations produces. Exported ring + POT state IS the scored history.
TEST_F(FailoverTest, ShardKillMigratesStreamsBitExact) {
  const int64_t steps = 24;
  const int64_t boundary = steps / 2;
  const PotParams pot = PotParamsForDataset("SMAP");

  std::vector<std::vector<OnlineVerdict>> expected(kNumStreams);
  for (uint64_t s = 0; s < kNumStreams; ++s) {
    OnlineTranAD online(detector_, pot);
    online.Calibrate((*datasets_)[s].train);
    for (int64_t t = 0; t < steps; ++t) {
      expected[s].push_back(
          online.Observe(Observation((*datasets_)[s].test, t)));
    }
  }

  ShardRouter router(detector_, FastOptions(3));
  const uint64_t keys[kNumStreams] = {1000, 2000, 3000};
  for (uint64_t s = 0; s < kNumStreams; ++s) {
    ASSERT_TRUE(router.CreateStream(keys[s], (*datasets_)[s].train).ok());
  }

  VerdictLog log;
  for (int64_t t = 0; t < boundary; ++t) {
    for (uint64_t s = 0; s < kNumStreams; ++s) {
      SubmitRetrying(&router, keys[s], Observation((*datasets_)[s].test, t),
                     log.Callback());
    }
  }
  router.Flush();  // phase 1 fully scored: nothing is queued at the kill

  // The next Submit routes stream 0 — the failpoint trips its shard.
  const int64_t victim = router.ShardOf(keys[0]);
  int64_t migrated = 0;
  for (uint64_t s = 0; s < kNumStreams; ++s) {
    if (router.ShardOf(keys[s]) == victim) ++migrated;
  }
  {
    ScopedFailpoint kill("shard.kill", Action::Error(StatusCode::kUnavailable),
                         Schedule::OnHit(1));
    const Status st = router.Submit(
        keys[0], Observation((*datasets_)[0].test, boundary), log.Callback());
    EXPECT_EQ(st.code(), StatusCode::kUnavailable)
        << "the killed submission must be refused, not silently dropped";
  }
  router.WaitForFailovers();

  EXPECT_EQ(router.shard_health(victim), ShardHealth::kDown);
  EXPECT_EQ(router.shards_failed(), 1);
  EXPECT_EQ(router.streams_migrated(), migrated);

  // Phase 2: the refused observation is resubmitted (client retry), then
  // traffic continues exactly where it left off — on the live shards.
  for (int64_t t = boundary; t < steps; ++t) {
    for (uint64_t s = 0; s < kNumStreams; ++s) {
      SubmitRetrying(&router, keys[s], Observation((*datasets_)[s].test, t),
                     log.Callback());
    }
  }
  router.Flush();

  for (uint64_t s = 0; s < kNumStreams; ++s) {
    const auto& got = log.by_stream[keys[s]];
    ASSERT_EQ(got.size(), static_cast<size_t>(steps)) << "stream " << s;
    for (int64_t t = 0; t < steps; ++t) {
      const auto& g = got[static_cast<size_t>(t)];
      const auto& e = expected[s][static_cast<size_t>(t)];
      ASSERT_EQ(g.seq, t) << "per-stream sequence broken across migration";
      ASSERT_TRUE(g.verdict.status.ok()) << g.verdict.status.ToString();
      ASSERT_EQ(g.verdict.score, e.score) << "stream " << s << " t=" << t;
      ASSERT_EQ(g.verdict.threshold, e.threshold)
          << "stream " << s << " t=" << t;
      ASSERT_EQ(g.verdict.anomalous, e.anomalous)
          << "stream " << s << " t=" << t;
    }
  }

  // The merged fleet snapshot exposes the failover counters.
  const ServeStatsSnapshot stats = router.stats();
  EXPECT_EQ(stats.shards_failed, 1);
  EXPECT_EQ(stats.streams_migrated, migrated);
}

// Submissions still queued when their shard is killed complete exactly once
// with Unavailable — never lost, never double-completed, and (because they
// were queued, not scored) they leave no trace in the migrated state.
TEST_F(FailoverTest, QueuedSubmissionsCompleteExactlyOnceUnavailable) {
  ShardRouterOptions options = FastOptions(2);
  ShardRouter router(detector_, options);
  ASSERT_TRUE(router.CreateStream(1, (*datasets_)[0].train).ok());

  // Stall the batcher's first wakeup so every submission is still sitting
  // in the shard queue — not in a forming batch — when the kill lands.
  ScopedFailpoint stall("serve.batcher.wakeup", Action::Delay(300'000),
                        Schedule::OnHit(1));
  VerdictLog log;
  const int64_t queued = 8;
  for (int64_t t = 0; t < queued; ++t) {
    SubmitRetrying(&router, 1, Observation((*datasets_)[0].test, t),
                   log.Callback());
  }
  {
    ScopedFailpoint kill("shard.kill", Action::Error(StatusCode::kUnavailable),
                         Schedule::OnHit(1));
    EXPECT_EQ(router
                  .Submit(1, Observation((*datasets_)[0].test, queued),
                          log.Callback())
                  .code(),
              StatusCode::kUnavailable);
  }
  router.WaitForFailovers();
  router.Flush();

  EXPECT_EQ(log.total.load(), queued)
      << "a queued submission was lost or double-completed by the kill";
  int64_t failed = 0;
  for (const auto& r : log.by_stream[1]) {
    if (!r.verdict.status.ok()) {
      ASSERT_EQ(r.verdict.status.code(), StatusCode::kUnavailable);
      EXPECT_NE(r.verdict.status.message().find("migrated"),
                std::string::npos)
          << "the failure verdict should tell the client to retry";
      ++failed;
    }
  }
  EXPECT_GT(failed, 0) << "200ms batch window absorbed 8 instant submissions";
  const ServeStatsSnapshot stats = router.stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.failed);

  // The stream migrated and keeps serving: queued-but-unscored work never
  // advanced its state, so the fleet is immediately usable.
  SubmitRetrying(&router, 1, Observation((*datasets_)[0].test, 0),
                 log.Callback());
  router.Flush();
  EXPECT_TRUE(log.by_stream[1].back().verdict.status.ok());
}

// The health machine: consecutive worker-fault completions walk a shard
// healthy -> degraded -> down, the down shard fails over, and the stream
// keeps serving on its new home once the fault clears.
TEST_F(FailoverTest, WorkerFaultStreakTripsHealthMachine) {
  ShardRouterOptions options = FastOptions(2);
  options.shard.max_batch = 1;
  options.shard.max_wait_us = 0;
  options.degraded_after = 2;
  options.down_after = 4;
  ShardRouter router(detector_, options);
  ASSERT_TRUE(router.CreateStream(9, (*datasets_)[0].train).ok());
  const int64_t home = router.ShardOf(9);
  EXPECT_EQ(router.shard_health(home), ShardHealth::kHealthy);

  VerdictLog log;
  {
    ScopedFailpoint fault("serve.worker.score",
                          Action::Error(StatusCode::kInternal));
    for (int64_t t = 0; t < 2; ++t) {
      SubmitRetrying(&router, 9, Observation((*datasets_)[0].test, t),
                     log.Callback());
      router.Flush();
    }
    EXPECT_EQ(router.shard_health(home), ShardHealth::kDegraded)
        << "two consecutive faults must mark the shard degraded";

    for (int64_t t = 2; t < 4; ++t) {
      SubmitRetrying(&router, 9, Observation((*datasets_)[0].test, t),
                     log.Callback());
      router.Flush();
    }
  }
  router.WaitForFailovers();
  EXPECT_EQ(router.shard_health(home), ShardHealth::kDown)
      << "the streak crossed down_after; the shard must trip";
  EXPECT_EQ(router.shards_failed(), 1);
  EXPECT_EQ(router.streams_migrated(), 1);

  // Fault cleared: the migrated stream scores normally on the other shard.
  SubmitRetrying(&router, 9, Observation((*datasets_)[0].test, 4),
                 log.Callback());
  router.Flush();
  ASSERT_FALSE(log.by_stream[9].empty());
  EXPECT_TRUE(log.by_stream[9].back().verdict.status.ok());
}

// An Ok completion resets the failure streak: alternating fault/success
// never reaches down_after, and the shard stays serving.
TEST_F(FailoverTest, OkCompletionResetsFailureStreak) {
  ShardRouterOptions options = FastOptions(2);
  options.shard.max_batch = 1;
  options.shard.max_wait_us = 0;
  options.degraded_after = 2;
  options.down_after = 2;
  ShardRouter router(detector_, options);
  ASSERT_TRUE(router.CreateStream(4, (*datasets_)[0].train).ok());
  const int64_t home = router.ShardOf(4);

  for (int round = 0; round < 3; ++round) {
    {
      ScopedFailpoint fault("serve.worker.score",
                            Action::Error(StatusCode::kInternal),
                            Schedule::OnHit(1));
      SubmitRetrying(&router, 4,
                     Observation((*datasets_)[0].test, round), nullptr);
      router.Flush();
    }
    SubmitRetrying(&router, 4,
                   Observation((*datasets_)[0].test, round), nullptr);
    router.Flush();
  }
  EXPECT_EQ(router.shard_health(home), ShardHealth::kHealthy)
      << "an interleaved Ok must reset the streak";
  EXPECT_EQ(router.shards_failed(), 0);
}

// The last live shard is never killed: a trip against it pins it at
// degraded and the fleet keeps serving (a cluster that executes its own
// last engine has turned a partial outage into a total one).
TEST_F(FailoverTest, LastLiveShardIsPinnedDegraded) {
  ShardRouter router(detector_, FastOptions(1));
  ASSERT_TRUE(router.CreateStream(2, (*datasets_)[0].train).ok());

  {
    ScopedFailpoint kill("shard.kill", Action::Error(StatusCode::kUnavailable),
                         Schedule::OnHit(1));
    EXPECT_EQ(
        router.Submit(2, Observation((*datasets_)[0].test, 0), nullptr).code(),
        StatusCode::kUnavailable);
  }
  router.WaitForFailovers();
  EXPECT_EQ(router.shard_health(0), ShardHealth::kDegraded)
      << "the last live shard must be pinned, not killed";
  EXPECT_EQ(router.shards_failed(), 0);
  EXPECT_EQ(router.streams_migrated(), 0);

  VerdictLog log;
  SubmitRetrying(&router, 2, Observation((*datasets_)[0].test, 0),
                 log.Callback());
  router.Flush();
  ASSERT_EQ(log.by_stream[2].size(), 1u);
  EXPECT_TRUE(log.by_stream[2][0].verdict.status.ok());
}

// Quarantine is part of the exported session state: a quarantined stream
// stays quarantined across a migration, release works through the router
// on the new shard, and the verdict after release is bit-exact vs the
// sequential replay of the observations that were actually scored.
TEST_F(FailoverTest, QuarantineSurvivesMigrationBitExact) {
  const PotParams pot = PotParamsForDataset("SMAP");
  const int64_t scored = 5;

  OnlineTranAD online(detector_, pot);
  online.Calibrate((*datasets_)[0].train);
  std::vector<OnlineVerdict> expected;
  for (int64_t t = 0; t <= scored; ++t) {
    expected.push_back(online.Observe(Observation((*datasets_)[0].test, t)));
  }

  ShardRouterOptions options = FastOptions(2);
  options.shard.quarantine_after = 1;
  ShardRouter router(detector_, options);
  ASSERT_TRUE(router.CreateStream(6, (*datasets_)[0].train).ok());
  const int64_t home = router.ShardOf(6);

  VerdictLog log;
  for (int64_t t = 0; t < scored; ++t) {
    SubmitRetrying(&router, 6, Observation((*datasets_)[0].test, t),
                   log.Callback());
  }
  router.Flush();

  Tensor poisoned({(*datasets_)[0].dims()});
  poisoned[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(router.Submit(6, poisoned, nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(router.Submit(6, Observation((*datasets_)[0].test, scored),
                          nullptr)
                .code(),
            StatusCode::kFailedPrecondition)
      << "stream must be quarantined before the kill";

  {
    ScopedFailpoint kill("shard.kill", Action::Error(StatusCode::kUnavailable),
                         Schedule::OnHit(1));
    EXPECT_EQ(router.Submit(6, poisoned, nullptr).code(),
              StatusCode::kUnavailable);
  }
  router.WaitForFailovers();
  EXPECT_EQ(router.shard_health(home), ShardHealth::kDown);
  EXPECT_EQ(router.streams_migrated(), 1);

  // Quarantine migrated with the stream; release routes to the new shard.
  EXPECT_EQ(router.Submit(6, Observation((*datasets_)[0].test, scored),
                          nullptr)
                .code(),
            StatusCode::kFailedPrecondition)
      << "quarantine must survive the migration";
  ASSERT_TRUE(router.ReleaseQuarantine(6).ok());
  SubmitRetrying(&router, 6, Observation((*datasets_)[0].test, scored),
                 log.Callback());
  router.Flush();

  const auto& got = log.by_stream[6];
  ASSERT_EQ(got.size(), static_cast<size_t>(scored) + 1);
  const auto& last = got.back();
  EXPECT_EQ(last.seq, scored);
  ASSERT_TRUE(last.verdict.status.ok());
  // Rejected junk never touched ring/POT state, so the post-release verdict
  // on the NEW shard equals the sequential run's next observation exactly.
  EXPECT_EQ(last.verdict.score, expected[static_cast<size_t>(scored)].score);
  EXPECT_EQ(last.verdict.threshold,
            expected[static_cast<size_t>(scored)].threshold);
}

// An injected migration fault (shard.migrate) must drop the victim stream
// rather than wedge the failover: the fleet stays serving, the dropped key
// reports NotFound (a client re-creates it), and siblings are unaffected.
TEST_F(FailoverTest, MigrationFaultDropsStreamWithoutWedging) {
  ShardRouter router(detector_, FastOptions(2));
  ASSERT_TRUE(router.CreateStream(21, (*datasets_)[0].train).ok());
  const int64_t home = router.ShardOf(21);
  // A sibling on the other shard must be untouched by the failover.
  uint64_t sibling = 22;
  while (router.ShardOf(sibling) == home) ++sibling;
  ASSERT_TRUE(router.CreateStream(sibling, (*datasets_)[1].train).ok());

  {
    ScopedFailpoint kill("shard.kill", Action::Error(StatusCode::kUnavailable),
                         Schedule::OnHit(1));
    ScopedFailpoint migrate("shard.migrate",
                            Action::Error(StatusCode::kInternal));
    EXPECT_EQ(
        router.Submit(21, Observation((*datasets_)[0].test, 0), nullptr)
            .code(),
        StatusCode::kUnavailable);
    router.WaitForFailovers();
  }

  EXPECT_EQ(router.shards_failed(), 1);
  EXPECT_EQ(router.streams_migrated(), 0);
  EXPECT_EQ(
      router.Submit(21, Observation((*datasets_)[0].test, 0), nullptr).code(),
      StatusCode::kNotFound)
      << "a stream whose migration failed must be dropped, not wedged";

  // The key is re-creatable and the sibling never noticed.
  ASSERT_TRUE(router.CreateStream(21, (*datasets_)[0].train).ok());
  VerdictLog log;
  SubmitRetrying(&router, sibling, Observation((*datasets_)[1].test, 0),
                 log.Callback());
  router.Flush();
  ASSERT_EQ(log.by_stream[sibling].size(), 1u);
  EXPECT_TRUE(log.by_stream[sibling][0].verdict.status.ok());
}

// Engine-level handoff primitive: ExportStream on a quiesced engine +
// ImportStream on a live one continues the verdict stream bit-exactly.
TEST_F(FailoverTest, EngineExportImportRoundTripBitExact) {
  const int64_t steps = 16;
  const int64_t cut = 7;
  const PotParams pot = PotParamsForDataset("SMAP");

  OnlineTranAD online(detector_, pot);
  online.Calibrate((*datasets_)[0].train);
  std::vector<OnlineVerdict> expected;
  for (int64_t t = 0; t < steps; ++t) {
    expected.push_back(online.Observe(Observation((*datasets_)[0].test, t)));
  }

  ServeOptions options;
  options.num_workers = 1;
  options.max_batch = 4;
  options.pot = pot;

  StreamSessionState exported;
  std::vector<RecordedVerdict> first_half;
  {
    ServeEngine source(detector_, options);
    auto created = source.CreateStream((*datasets_)[0].train);
    ASSERT_TRUE(created.ok());
    std::mutex mu;
    for (int64_t t = 0; t < cut; ++t) {
      Status st = Status::Ok();
      do {
        st = source.Submit(
            created.value(), Observation((*datasets_)[0].test, t),
            [&](StreamId, int64_t seq, const OnlineVerdict& v) {
              std::lock_guard<std::mutex> lock(mu);
              first_half.push_back({seq, v});
            });
      } while (st.code() == StatusCode::kResourceExhausted);
      ASSERT_TRUE(st.ok());
    }
    source.Flush();
    source.Stop();  // quiesce: the export contract
    auto state = source.ExportStream(created.value());
    ASSERT_TRUE(state.ok()) << state.status().ToString();
    exported = state.value();
  }
  EXPECT_EQ(exported.next_seq, cut);

  ServeEngine target(detector_, options);
  auto imported = target.ImportStream(exported);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  std::mutex mu;
  std::vector<RecordedVerdict> second_half;
  for (int64_t t = cut; t < steps; ++t) {
    Status st = Status::Ok();
    do {
      st = target.Submit(imported.value(),
                         Observation((*datasets_)[0].test, t),
                         [&](StreamId, int64_t seq, const OnlineVerdict& v) {
                           std::lock_guard<std::mutex> lock(mu);
                           second_half.push_back({seq, v});
                         });
    } while (st.code() == StatusCode::kResourceExhausted);
    ASSERT_TRUE(st.ok());
  }
  target.Flush();

  ASSERT_EQ(first_half.size(), static_cast<size_t>(cut));
  ASSERT_EQ(second_half.size(), static_cast<size_t>(steps - cut));
  for (int64_t t = 0; t < steps; ++t) {
    const auto& g = t < cut ? first_half[static_cast<size_t>(t)]
                            : second_half[static_cast<size_t>(t - cut)];
    const auto& e = expected[static_cast<size_t>(t)];
    ASSERT_EQ(g.seq, t) << "sequence must continue across the handoff";
    ASSERT_EQ(g.verdict.score, e.score) << "t=" << t;
    ASSERT_EQ(g.verdict.threshold, e.threshold) << "t=" << t;
    ASSERT_EQ(g.verdict.anomalous, e.anomalous) << "t=" << t;
  }
}

// Session-level state: quarantine flags and the non-finite streak ride the
// export, and the sequence counter continues rather than restarting.
TEST_F(FailoverTest, SessionStateCarriesQuarantineAndStreak) {
  const PotParams pot = PotParamsForDataset("SMAP");
  StreamSession session(1, pot);
  session.Calibrate(*detector_, (*datasets_)[0].train);
  session.NextSeq();
  session.NextSeq();
  session.NextSeq();
  session.RecordNonFinite();
  session.RecordNonFinite();
  ASSERT_TRUE(session.MarkQuarantined());

  const StreamSessionState state = session.ExportState();
  EXPECT_EQ(state.next_seq, 3);
  EXPECT_EQ(state.non_finite_streak, 2);
  EXPECT_TRUE(state.quarantined);

  StreamSession restored(2, pot);
  ASSERT_TRUE(restored.RestoreState(state).ok());
  EXPECT_TRUE(restored.quarantined());
  EXPECT_EQ(restored.non_finite_streak(), 2);
  EXPECT_EQ(restored.NextSeq(), 3) << "sequence must not restart at zero";
  EXPECT_EQ(restored.spot()->threshold(), session.spot()->threshold());
}

}  // namespace
}  // namespace tranad::serve
