#ifndef TRANAD_NET_CLIENT_H_
#define TRANAD_NET_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/wire.h"
#include "tensor/tensor.h"

namespace tranad::net {

struct ClientOptions {
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// How long a synchronous RPC (CreateStream/CloseStream/Stats/Reload/
  /// Ping) waits for its reply before giving up with DeadlineExceeded.
  int64_t rpc_timeout_ms = 120'000;
};

/// Blocking TCP client for the serving wire protocol. One background
/// reader thread demultiplexes incoming frames: Verdict frames go to the
/// verdict handler (Submit is fire-and-forget, correlated by the echoed
/// tag), everything else answers the single outstanding synchronous RPC.
/// Submit() may be called from any thread; RPCs serialize among
/// themselves. The verdict handler runs on the reader thread — keep it
/// cheap and do not call back into the client's RPCs from inside it.
class NetClient {
 public:
  using VerdictHandler = std::function<void(const WireVerdict&)>;

  explicit NetClient(ClientOptions options = {});
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Must be set before Connect (the reader thread reads it unguarded).
  void set_verdict_handler(VerdictHandler handler) {
    handler_ = std::move(handler);
  }

  Status Connect(const std::string& host, uint16_t port);
  /// Shuts the socket down and joins the reader. Idempotent.
  void Close();
  bool connected() const { return fd_.load(std::memory_order_acquire) >= 0; }

  /// Fire-and-forget: one observation for `stream_key`. The verdict (or
  /// the admission failure, seq=-1) arrives at the verdict handler with
  /// `tag` echoed. Fails only on transport errors.
  Status Submit(uint64_t stream_key, uint64_t tag, const float* values,
                int64_t dims);

  /// Registers + calibrates a stream on the fleet. `calibration` is
  /// [rows, dims]. Returns the server's ack status.
  Status CreateStream(uint64_t stream_key, const Tensor& calibration);
  Status CloseStream(uint64_t stream_key);
  Result<serve::ServeStatsSnapshot> Stats();
  /// Rolling fleet reload; blocks until the server finishes (or rpc
  /// timeout — the reload itself may still complete server-side).
  Status Reload(const std::string& path);
  Status Ping();

 private:
  /// A reply frame captured for the RPC waiter (payload copied out of the
  /// reader's buffer, since the buffer rolls forward immediately).
  struct OwnedFrame {
    FrameType type = FrameType::kPing;
    std::vector<uint8_t> payload;
  };

  Status SendBytes(const std::vector<uint8_t>& bytes);
  /// Sends `bytes`, waits for a frame of type `expect` (or kError), and
  /// copies it to *reply.
  Status Rpc(const std::vector<uint8_t>& bytes, FrameType expect,
             OwnedFrame* reply);
  void ReaderThread();
  /// Fails any RPC in flight and marks the connection dead.
  void FailPending(const Status& status);

  ClientOptions options_;
  VerdictHandler handler_;
  std::atomic<int> fd_{-1};
  std::thread reader_;

  std::mutex send_mu_;  // serializes socket writes (frames stay whole)
  std::mutex rpc_mu_;   // one outstanding synchronous RPC at a time

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  bool rpc_active_ = false;
  FrameType rpc_expect_ = FrameType::kPing;
  bool rpc_done_ = false;
  OwnedFrame rpc_reply_;
  Status conn_status_;  // first transport/protocol failure, sticky
};

}  // namespace tranad::net

#endif  // TRANAD_NET_CLIENT_H_
