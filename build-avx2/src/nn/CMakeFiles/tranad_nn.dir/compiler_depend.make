# Empty compiler generated dependencies file for tranad_nn.
# This may be replaced when dependencies are built.
