# Empty compiler generated dependencies file for tranad_core.
# This may be replaced when dependencies are built.
