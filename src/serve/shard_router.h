#ifndef TRANAD_SERVE_SHARD_ROUTER_H_
#define TRANAD_SERVE_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/serve_engine.h"

namespace tranad::serve {

struct ShardRouterOptions {
  /// Independent ServeEngine shards, each with its own batcher, worker
  /// pool, submission queue, and stream registry. Aggregate throughput
  /// scales with shards because nothing — no queue, no mutex, no batcher —
  /// is shared between them on the hot path.
  int64_t num_shards = 4;
  /// Virtual nodes per shard on the consistent-hash ring. More vnodes ->
  /// smoother stream distribution (the classic consistent-hashing variance
  /// argument); 64 keeps the worst shard within a few percent of mean for
  /// fleet-sized stream counts.
  int64_t vnodes_per_shard = 64;
  /// Engine options applied to every shard (workers *per shard*, queue
  /// capacity per shard, batching and resilience knobs).
  ServeOptions shard;
};

/// Scale-out front end over N ServeEngine shards: client-chosen stream keys
/// (uint64) map to shards by consistent hashing, so the mapping is a pure
/// function of (key, ring) — stable across runs, processes, and machines,
/// and minimally disturbed if the shard count ever changes. Each stream
/// lives wholly on one shard, which preserves every single-engine
/// invariant per stream (FIFO order, POT sequencing, bit-exact verdicts vs
/// the sequential OnlineTranAD path).
///
/// The router is intentionally thin on the hot path: Submit is one ring
/// lookup (read-only after construction) + one route-table read + the
/// engine's own admission. All engines score through the same frozen
/// detector's const surface (see ServeEngine's detector contract).
///
/// Fleet semantics:
///   - stats() merges per-shard atomic snapshots: counters add, latency
///     *histograms* merge, and fleet p50/p99 are re-derived from the merged
///     buckets (never averaged across shards).
///   - ReloadModel is a *rolling* reload: shards swap one at a time, so at
///     every instant N-1 shards are serving at full speed — the fleet is
///     never globally paused. A shard that fails to swap rolls itself back
///     (ServeEngine's contract); shards already swapped are then rolled
///     back to the previous checkpoint (best effort) so the fleet converges
///     to one model version.
class ShardRouter {
 public:
  /// `detector` must be fitted and must outlive the router; it is frozen
  /// for inference and shared by every shard's const scoring path.
  explicit ShardRouter(TranADDetector* detector, ShardRouterOptions options);

  /// Calls Stop().
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Stops every shard (graceful drain; see ServeEngine::Stop). Idempotent.
  void Stop();

  /// Registers stream `key` on its consistent-hash shard and calibrates it
  /// there. FailedPrecondition if the key is already registered.
  Status CreateStream(uint64_t key, const TimeSeries& calibration);

  /// Unregisters stream `key`; in-flight observations still complete.
  Status CloseStream(uint64_t key);

  /// Admits one observation for stream `key`. The callback receives `key`
  /// (not the shard-local id) plus the shard engine's per-stream sequence
  /// number; all ServeEngine::Submit admission statuses pass through
  /// (NotFound / InvalidArgument / FailedPrecondition / ResourceExhausted).
  Status Submit(uint64_t key, const Tensor& observation,
                VerdictCallback callback);

  /// Lifts quarantine on stream `key` (see ServeEngine::ReleaseQuarantine).
  Status ReleaseQuarantine(uint64_t key);

  /// Rolling fleet reload from a TranADDetector::SaveCheckpoint file.
  /// Shards swap one at a time; traffic keeps flowing on every shard not
  /// currently at its own micro-batch-boundary swap, and no queued
  /// submission is dropped anywhere. On a mid-fleet failure the failing
  /// shard has already rolled itself back, and shards swapped earlier are
  /// re-reloaded from the previous checkpoint path when one is known; the
  /// returned status describes the rollback. Concurrent calls serialize.
  Status ReloadModel(const std::string& path);

  /// Blocks until every admitted observation on every shard has completed.
  void Flush();

  /// Merged fleet snapshot (see ServeStatsSnapshot::MergeFrom): true fleet
  /// percentiles from merged latency histograms, summed counters,
  /// `shards` = num_shards().
  ServeStatsSnapshot stats() const;

  /// One shard's own snapshot (reservoir-exact percentiles).
  ServeStatsSnapshot shard_stats(int64_t shard) const;

  /// Consistent-hash shard index for a stream key (pure function; exposed
  /// for tests, placement debugging, and client-side shard awareness).
  int64_t ShardOf(uint64_t key) const;

  int64_t num_shards() const {
    return static_cast<int64_t>(shards_.size());
  }
  int64_t num_streams() const;

 private:
  struct Route {
    int64_t shard = 0;
    StreamId local = 0;  // shard-engine stream id
  };

  Result<Route> FindRoute(uint64_t key) const;

  std::vector<std::unique_ptr<ServeEngine>> shards_;
  /// Consistent-hash ring: (point, shard), sorted by point. Immutable
  /// after construction, so lookups are lock-free.
  std::vector<std::pair<uint64_t, int64_t>> ring_;

  mutable std::mutex routes_mu_;
  std::unordered_map<uint64_t, Route> routes_;

  /// Serializes rolling reloads and remembers the last committed
  /// checkpoint path (the rollback target for partially applied fleets).
  std::mutex reload_mu_;
  std::string model_path_;
};

}  // namespace tranad::serve

#endif  // TRANAD_SERVE_SHARD_ROUTER_H_
