#include "nn/module.h"

#include <cstdint>

#include "common/check.h"

namespace tranad::nn {

Variable Module::RegisterParameter(std::string name, Tensor init) {
  Variable v(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), v);
  return v;
}

void Module::RegisterModule(std::string name, Module* child) {
  TRANAD_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

void Module::Collect(const std::string& prefix, std::vector<Variable>* params,
                     std::vector<std::string>* names) const {
  for (const auto& [name, v] : params_) {
    params->push_back(v);
    if (names != nullptr) names->push_back(prefix + name);
  }
  for (const auto& [name, child] : children_) {
    child->Collect(prefix + name + ".", params, names);
  }
}

std::vector<Variable> Module::Parameters() const {
  std::vector<Variable> out;
  Collect("", &out, nullptr);
  return out;
}

std::vector<std::string> Module::ParameterNames() const {
  std::vector<Variable> params;
  std::vector<std::string> names;
  Collect("", &params, &names);
  return names;
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const auto& p : Parameters()) n += p.value().numel();
  return n;
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

std::vector<Tensor> Module::SnapshotParameters() const {
  std::vector<Tensor> out;
  for (const auto& p : Parameters()) out.push_back(p.value());
  return out;
}

void Module::RestoreParameters(const std::vector<Tensor>& snapshot) {
  auto params = Parameters();
  TRANAD_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    TRANAD_CHECK(params[i].value().shape() == snapshot[i].shape());
    *params[i].mutable_value() = snapshot[i];
  }
}

void Module::SaveTo(io::CheckpointWriter* writer,
                    const std::string& prefix) const {
  std::vector<Variable> params;
  std::vector<std::string> names;
  Collect("", &params, &names);
  for (size_t i = 0; i < params.size(); ++i) {
    writer->PutTensor(prefix + names[i], params[i].value());
  }
}

Status Module::LoadFrom(const io::CheckpointReader& reader,
                        const std::string& prefix) {
  std::vector<Variable> params;
  std::vector<std::string> names;
  Collect("", &params, &names);
  // Two passes: validate every entry first, then commit, so a mismatched
  // checkpoint cannot leave the module half-restored.
  std::vector<Tensor> loaded;
  loaded.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    TRANAD_ASSIGN_OR_RETURN(Tensor t, reader.GetTensor(prefix + names[i]));
    if (t.shape() != params[i].value().shape()) {
      return Status::InvalidArgument("parameter '" + prefix + names[i] +
                                     "' shape mismatch");
    }
    loaded.push_back(std::move(t));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    *params[i].mutable_value() = std::move(loaded[i]);
  }
  return Status::Ok();
}

Status Module::Save(const std::string& path) const {
  io::CheckpointWriter writer;
  SaveTo(&writer, "model/");
  return writer.WriteAtomic(path);
}

Status Module::Load(const std::string& path) {
  TRANAD_ASSIGN_OR_RETURN(io::CheckpointReader reader,
                          io::CheckpointReader::Open(path));
  return LoadFrom(reader, "model/");
}

}  // namespace tranad::nn
