// Finite-difference gradient certification for the recurrent cells: the
// GRU/LSTM backward passes are compositions of many primitive ops; this
// verifies the whole backpropagation-through-time chain numerically.
#include <gtest/gtest.h>

#include "nn/rnn.h"
#include "tensor/grad_check.h"

namespace tranad::nn {
namespace {

TEST(RnnGradCheckTest, GruThroughTime) {
  Rng rng(21);
  GruCell cell(2, 3, &rng);
  auto fn = [&cell](const std::vector<Variable>& in) {
    return ag::MeanAll(ag::Square(RunGruLast(cell, in[0])));
  };
  const auto result =
      CheckGradients(fn, {Tensor::Rand({2, 4, 2}, &rng, -1.0f, 1.0f)});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(RnnGradCheckTest, LstmThroughTime) {
  Rng rng(22);
  LstmCell cell(2, 3, &rng);
  auto fn = [&cell](const std::vector<Variable>& in) {
    return ag::MeanAll(ag::Square(RunLstmLast(cell, in[0])));
  };
  const auto result =
      CheckGradients(fn, {Tensor::Rand({2, 4, 2}, &rng, -1.0f, 1.0f)});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(RnnGradCheckTest, GruFullSequenceOutput) {
  Rng rng(23);
  GruCell cell(2, 2, &rng);
  auto fn = [&cell](const std::vector<Variable>& in) {
    return ag::MeanAll(ag::Square(RunGru(cell, in[0])));
  };
  const auto result =
      CheckGradients(fn, {Tensor::Rand({1, 5, 2}, &rng, -1.0f, 1.0f)});
  EXPECT_TRUE(result.ok) << result.detail;
}

}  // namespace
}  // namespace tranad::nn
