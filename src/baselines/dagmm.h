#ifndef TRANAD_BASELINES_DAGMM_H_
#define TRANAD_BASELINES_DAGMM_H_

#include <memory>

#include "baselines/common.h"
#include "baselines/gmm.h"
#include "nn/linear.h"
#include "nn/optimizer.h"

namespace tranad {

/// DAGMM (Zong et al., ICLR'18): a deep autoencoder compresses each window
/// into a low-dimensional latent; a Gaussian mixture over
/// [latent, reconstruction error] yields the sample energy used as the
/// anomaly score. This implementation trains the AE by reconstruction and
/// fits the mixture by EM after training (decoupled, per the paper's
/// robustness argument; the original couples them through an estimation
/// network — see DESIGN.md for the substitution note).
class DagmmDetector : public WindowedDetector {
 public:
  explicit DagmmDetector(int64_t window = 10, int64_t epochs = 5,
                         int64_t latent = 3, int64_t mixtures = 3,
                         uint64_t seed = 13);

 protected:
  void BuildModel(int64_t dims) override;
  double TrainBatch(const Tensor& batch, double progress) override;
  Tensor ScoreBatch(const Tensor& batch) override;
  void PostTrain(const Tensor& windows) override;

 private:
  Variable Encode(const Variable& flat) const;
  Variable Decode(const Variable& z) const;
  /// [latent..., recon_error] feature rows for GMM fitting/energy.
  Tensor Features(const Tensor& batch, Tensor* per_dim_err) const;

  int64_t latent_;
  int64_t mixtures_;
  uint64_t seed_;
  int64_t flat_dim_ = 0;
  std::unique_ptr<nn::Linear> enc1_, enc2_, dec1_, dec2_;
  std::unique_ptr<nn::Adam> opt_;
  std::unique_ptr<DiagonalGmm> gmm_;
  Rng gmm_rng_{99};
};

}  // namespace tranad

#endif  // TRANAD_BASELINES_DAGMM_H_
