file(REMOVE_RECURSE
  "CMakeFiles/ablation_thresholding.dir/ablation_thresholding.cc.o"
  "CMakeFiles/ablation_thresholding.dir/ablation_thresholding.cc.o.d"
  "ablation_thresholding"
  "ablation_thresholding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_thresholding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
