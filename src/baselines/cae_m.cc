#include "baselines/cae_m.h"

#include "tensor/autograd_ops.h"

namespace tranad {

CaeMDetector::CaeMDetector(int64_t window, int64_t epochs, int64_t hidden,
                           uint64_t seed)
    : WindowedDetector("CAE-M", window, epochs, 64),
      hidden_(hidden),
      seed_(seed) {}

void CaeMDetector::BuildModel(int64_t dims) {
  Rng rng(seed_);
  const int64_t channels = std::max<int64_t>(8, dims);
  conv1_ = std::make_unique<nn::Conv1d>(dims, channels, 3, true, &rng);
  conv2_ = std::make_unique<nn::Conv1d>(channels, channels, 3, true, &rng);
  fwd_ = std::make_unique<nn::LstmCell>(channels, hidden_, &rng);
  bwd_ = std::make_unique<nn::LstmCell>(channels, hidden_, &rng);
  out_ = std::make_unique<nn::Linear>(2 * hidden_, dims, &rng);
  std::vector<Variable> params;
  for (auto* m : std::initializer_list<nn::Module*>{
           conv1_.get(), conv2_.get(), fwd_.get(), bwd_.get(), out_.get()}) {
    auto p = m->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  opt_ = std::make_unique<nn::Adam>(params, 0.003f);
}

Variable CaeMDetector::BiLstm(const Variable& seq) const {
  const int64_t k = seq.value().size(1);
  Variable forward = RunLstm(*fwd_, seq);  // [B, K, h]
  // Reverse the time axis, run the backward cell, reverse the output back.
  std::vector<Variable> rev;
  rev.reserve(static_cast<size_t>(k));
  for (int64_t t = k - 1; t >= 0; --t) {
    rev.push_back(ag::SliceAxis(seq, 1, t, 1));
  }
  Variable reversed = ag::Concat(rev, 1);
  Variable backward_rev = RunLstm(*bwd_, reversed);  // [B, K, h] (reversed)
  std::vector<Variable> unrev;
  unrev.reserve(static_cast<size_t>(k));
  for (int64_t t = k - 1; t >= 0; --t) {
    unrev.push_back(ag::SliceAxis(backward_rev, 1, t, 1));
  }
  Variable backward = ag::Concat(unrev, 1);
  return ag::Concat({forward, backward}, 2);  // [B, K, 2h]
}

Variable CaeMDetector::Reconstruct(const Variable& seq) const {
  Variable c = ag::Relu(conv1_->Forward(seq));
  c = ag::Relu(conv2_->Forward(c));
  Variable h = BiLstm(c);
  return ag::Sigmoid(out_->Forward(h));  // [B, K, m]
}

double CaeMDetector::TrainBatch(const Tensor& batch, double /*progress*/) {
  Variable recon = Reconstruct(Variable(batch));
  Variable loss = ag::MseLoss(recon, batch);
  opt_->ZeroGrad();
  loss.Backward();
  opt_->ClipGradNorm(5.0f);
  opt_->Step();
  return loss.value().Item();
}

Tensor CaeMDetector::ScoreBatch(const Tensor& batch) {
  const int64_t b = batch.size(0);
  const Tensor recon = Reconstruct(Variable(batch)).value();
  Tensor out({b, dims_});
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t d = 0; d < dims_; ++d) {
      const int64_t idx = (i * window_ + (window_ - 1)) * dims_ + d;
      const float e = recon.data()[idx] - batch.data()[idx];
      out.At({i, d}) = e * e;
    }
  }
  return out;
}

}  // namespace tranad
