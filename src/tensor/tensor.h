#ifndef TRANAD_TENSOR_TENSOR_H_
#define TRANAD_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/arena.h"

namespace tranad {

/// Shape of a tensor; empty shape denotes a scalar-like 0-d tensor.
using Shape = std::vector<int64_t>;

/// Returns the number of elements implied by a shape (1 for scalars).
int64_t NumElements(const Shape& shape);

/// Row-major strides for a contiguous tensor of the given shape.
std::vector<int64_t> ContiguousStrides(const Shape& shape);

/// Renders a shape as "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

/// Dense, contiguous, row-major float32 tensor. Value semantics: copying a
/// Tensor copies its buffer; moves are cheap. All neural-network state and
/// time-series buffers in the library are Tensors. Storage lives in the
/// process-wide TensorArena (arena.h), so the forward+backward tape's churn
/// of identically-shaped intermediates recycles buffers instead of hitting
/// malloc.
///
/// Performance note: every element access in hot loops goes through raw
/// data() pointers inside the kernels in tensor_ops.cc; the indexed At()
/// accessor is for tests and debugging only.
class Tensor {
 public:
  /// Empty 0-d tensor holding a single zero.
  Tensor() : shape_(), data_(ArenaBuffer::Zeroed(1)) {}

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(ArenaBuffer::Zeroed(NumElements(shape_))) {}

  /// Tensor copying the given flat buffer; sizes must agree.
  Tensor(Shape shape, std::vector<float> data);

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Ones(Shape shape) { return Full(std::move(shape), 1.0f); }
  static Tensor Full(Shape shape, float value);
  /// Tensor whose contents are unspecified. Strictly for kernels that
  /// overwrite every element before the tensor escapes; skips the zero-fill
  /// pass of Tensor(shape).
  static Tensor Uninitialized(Shape shape);
  /// 0-d tensor holding a single value.
  static Tensor Scalar(float value);
  /// I.i.d. normal entries with the given standard deviation.
  static Tensor Randn(Shape shape, Rng* rng, float stddev = 1.0f);
  /// I.i.d. uniform entries in [lo, hi).
  static Tensor Rand(Shape shape, Rng* rng, float lo = 0.0f, float hi = 1.0f);
  /// 1-d tensor [start, start+step, ...] of length n.
  static Tensor Arange(int64_t n, float start = 0.0f, float step = 1.0f);

  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  const Shape& shape() const { return shape_; }
  /// Size along `axis`; negative axes count from the back.
  int64_t size(int64_t axis) const;
  int64_t numel() const { return data_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Flat element access.
  float& operator[](int64_t i) { return data_[i]; }
  float operator[](int64_t i) const { return data_[i]; }

  /// Multi-index element access (slow; tests/debugging).
  float& At(std::initializer_list<int64_t> idx);
  float At(std::initializer_list<int64_t> idx) const;

  /// Returns a reshaped copy-free view is impossible with value semantics;
  /// this returns a tensor sharing no storage but reusing the buffer via
  /// move when called on an rvalue. Element count must be preserved. One
  /// axis may be -1 (inferred).
  Tensor Reshape(Shape new_shape) const&;
  Tensor Reshape(Shape new_shape) &&;

  /// Fills every element with `value`.
  void Fill(float value);

  /// The single value of a 0-d or 1-element tensor.
  float Item() const;

  /// True if shapes and all elements match exactly.
  bool Equals(const Tensor& other) const;
  /// True if shapes match and elements differ by at most `atol`.
  bool AllClose(const Tensor& other, float atol = 1e-5f) const;

  /// Renders shape and (for small tensors) contents.
  std::string ToString() const;

 private:
  Shape ResolveReshape(Shape new_shape) const;

  Shape shape_;
  ArenaBuffer data_;
};

}  // namespace tranad

#endif  // TRANAD_TENSOR_TENSOR_H_
