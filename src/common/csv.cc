#include "common/csv.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace tranad {

namespace {

// Splits one logical CSV line into fields, tolerating CRLF line endings
// (getline leaves the '\r') and a single trailing delimiter (a common
// exporter artifact that would otherwise read as a spurious empty cell).
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::string_view body(line);
  if (!body.empty() && body.back() == '\r') body.remove_suffix(1);
  auto fields = Split(body, ',');
  if (fields.size() > 1 && Trim(fields.back()).empty()) fields.pop_back();
  return fields;
}

}  // namespace

Result<CsvTable> ReadCsv(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  CsvTable table;
  std::string line;
  bool first = true;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    auto fields = SplitCsvLine(line);
    if (first && has_header) {
      for (auto& f : fields) table.header.emplace_back(Trim(f));
      first = false;
      continue;
    }
    first = false;
    std::vector<double> row;
    row.reserve(fields.size());
    for (const auto& f : fields) {
      double v = 0.0;
      if (!ParseDouble(f, &v)) {
        return Status::InvalidArgument(
            StrFormat("%s:%zu: non-numeric cell '%s'", path.c_str(), line_no,
                      f.c_str()));
      }
      // strtod happily parses "nan"/"inf"; a non-finite cell would poison
      // every downstream normalizer fit and loss, so reject it here.
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            StrFormat("%s:%zu: non-finite cell '%s'", path.c_str(), line_no,
                      f.c_str()));
      }
      row.push_back(v);
    }
    if (!table.rows.empty() && row.size() != table.rows.front().size()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: ragged row (%zu vs %zu cells)", path.c_str(),
                    line_no, row.size(), table.rows.front().size()));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

Status WriteCsv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  if (!table.header.empty()) {
    out << Join(table.header, ",") << "\n";
  }
  std::ostringstream oss;
  for (const auto& row : table.rows) {
    oss.str("");
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) oss << ",";
      oss << row[i];
    }
    out << oss.str() << "\n";
  }
  if (!out) return Status::IoError("short write to " + path);
  return Status::Ok();
}

}  // namespace tranad
