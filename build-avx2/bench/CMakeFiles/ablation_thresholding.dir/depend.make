# Empty dependencies file for ablation_thresholding.
# This may be replaced when dependencies are built.
