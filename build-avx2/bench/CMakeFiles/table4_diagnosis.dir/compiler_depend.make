# Empty compiler generated dependencies file for table4_diagnosis.
# This may be replaced when dependencies are built.
