// Quickstart: train TranAD on a synthetic machine-metrics dataset, score
// the test split, pick a POT threshold, and report detection quality.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/pipeline.h"
#include "core/tranad_detector.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "eval/pot.h"

int main() {
  using namespace tranad;

  // 1. Get data: a 8-dimensional server-machine-style dataset with labeled
  //    anomalies in the test split. (Load your own series with
  //    LoadDatasetCsv("name", train_csv, test_csv, labels_csv) instead.)
  Dataset dataset = GenerateSynthetic(SmdConfig(/*scale=*/0.4));
  std::printf("dataset %s: train %lld x %lld, test %lld (%.1f%% anomalous)\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.train.length()),
              static_cast<long long>(dataset.dims()),
              static_cast<long long>(dataset.test.length()),
              100.0 * dataset.test.AnomalyRate());

  // 2. Configure the model (paper defaults: window 10, 1 encoder layer,
  //    64 feed-forward units, one attention head per dimension).
  TranADConfig model_config;
  TrainOptions train_options;
  train_options.max_epochs = 5;
  train_options.verbose = true;

  // 3. Train. The detector normalizes with Eq. (1), windows per §3.2 and
  //    runs the two-phase adversarial + MAML loop of Alg. 1.
  TranADDetector detector(model_config, train_options);
  detector.Fit(dataset.train);
  std::printf("trained %lld epochs, %.3f s/epoch, %lld parameters\n",
              static_cast<long long>(detector.epochs_run()),
              detector.seconds_per_epoch(),
              static_cast<long long>(detector.model()->NumParameters()));

  // 4. Score: s = 1/2 |O1 - W|^2 + 1/2 |O2_hat - W|^2 per timestamp and
  //    dimension (Alg. 2 / Eq. 13).
  const Tensor test_scores = detector.Score(dataset.test);
  const std::vector<double> series = DetectionScores(test_scores);

  // 5. Threshold automatically with POT calibrated on training scores.
  const std::vector<double> calibration =
      DetectionScores(detector.Score(dataset.train));
  const double threshold =
      PotThreshold(calibration, PotParamsForDataset(dataset.name));

  // 6. Evaluate with the standard point-adjusted protocol.
  const DetectionMetrics at_pot =
      EvaluateAtThreshold(series, dataset.test.labels, threshold);
  const DetectionMetrics best =
      EvaluateBestF1(series, dataset.test.labels);
  std::printf("POT threshold %.5f -> P=%.4f R=%.4f F1=%.4f (AUC %.4f)\n",
              threshold, at_pot.precision, at_pot.recall, at_pot.f1,
              at_pot.roc_auc);
  std::printf("best-F1 sweep          -> P=%.4f R=%.4f F1=%.4f\n",
              best.precision, best.recall, best.f1);
  return 0;
}
