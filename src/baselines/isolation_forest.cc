#include "baselines/isolation_forest.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stopwatch.h"

namespace tranad {
namespace {

// Average path length of an unsuccessful BST search over n points.
double HarmonicPathNorm(int64_t n) {
  if (n <= 1) return 0.0;
  const double nf = static_cast<double>(n);
  return 2.0 * (std::log(nf - 1.0) + 0.5772156649) - 2.0 * (nf - 1.0) / nf;
}

}  // namespace

IsolationForest::IsolationForest(int64_t num_trees, int64_t sample_size,
                                 uint64_t seed)
    : num_trees_(num_trees), sample_size_(sample_size), rng_(seed) {}

int32_t IsolationForest::BuildNode(Tree* tree, std::vector<int64_t>* rows,
                                   int64_t begin, int64_t end, int64_t depth,
                                   int64_t max_depth, const Tensor& features) {
  const int32_t idx = static_cast<int32_t>(tree->nodes.size());
  tree->nodes.emplace_back();
  const int64_t count = end - begin;
  if (count <= 1 || depth >= max_depth) {
    tree->nodes[static_cast<size_t>(idx)].size =
        static_cast<int32_t>(count);
    return idx;
  }
  const int64_t d = features.size(1);
  // Pick a feature with spread; give up after a few attempts.
  int32_t feat = -1;
  float lo = 0.0f;
  float hi = 0.0f;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int32_t f = static_cast<int32_t>(rng_.UniformInt(
        static_cast<uint64_t>(d)));
    lo = features.data()[(*rows)[static_cast<size_t>(begin)] * d + f];
    hi = lo;
    for (int64_t i = begin; i < end; ++i) {
      const float v =
          features.data()[(*rows)[static_cast<size_t>(i)] * d + f];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi > lo) {
      feat = f;
      break;
    }
  }
  if (feat < 0) {
    tree->nodes[static_cast<size_t>(idx)].size =
        static_cast<int32_t>(count);
    return idx;
  }
  const float split =
      lo + static_cast<float>(rng_.Uniform()) * (hi - lo);
  auto mid_it = std::partition(
      rows->begin() + begin, rows->begin() + end, [&](int64_t r) {
        return features.data()[r * features.size(1) + feat] < split;
      });
  int64_t mid = mid_it - rows->begin();
  if (mid == begin || mid == end) mid = begin + count / 2;  // degenerate

  const int32_t left =
      BuildNode(tree, rows, begin, mid, depth + 1, max_depth, features);
  const int32_t right =
      BuildNode(tree, rows, mid, end, depth + 1, max_depth, features);
  Node& node = tree->nodes[static_cast<size_t>(idx)];
  node.feature = feat;
  node.threshold = split;
  node.left = left;
  node.right = right;
  return idx;
}

void IsolationForest::Fit(const Tensor& features) {
  TRANAD_CHECK_EQ(features.ndim(), 2);
  const int64_t n = features.size(0);
  dims_ = features.size(1);
  const int64_t sample = std::min(sample_size_, n);
  const int64_t max_depth =
      static_cast<int64_t>(std::ceil(std::log2(std::max<int64_t>(2, sample))));
  c_norm_ = HarmonicPathNorm(sample);
  trees_.clear();
  trees_.reserve(static_cast<size_t>(num_trees_));
  for (int64_t t = 0; t < num_trees_; ++t) {
    std::vector<int64_t> rows(static_cast<size_t>(sample));
    for (auto& r : rows) {
      r = static_cast<int64_t>(rng_.UniformInt(static_cast<uint64_t>(n)));
    }
    Tree tree;
    BuildNode(&tree, &rows, 0, sample, 0, max_depth, features);
    trees_.push_back(std::move(tree));
  }
}

double IsolationForest::PathLength(const Tree& tree, const float* row) const {
  int32_t idx = 0;
  double depth = 0.0;
  for (;;) {
    const Node& node = tree.nodes[static_cast<size_t>(idx)];
    if (node.feature < 0) {
      return depth + HarmonicPathNorm(node.size);
    }
    idx = row[node.feature] < node.threshold ? node.left : node.right;
    depth += 1.0;
  }
}

double IsolationForest::ScoreRow(const float* row) const {
  TRANAD_CHECK(fitted());
  double total = 0.0;
  for (const auto& tree : trees_) total += PathLength(tree, row);
  const double avg = total / static_cast<double>(trees_.size());
  return std::pow(2.0, -avg / std::max(c_norm_, 1e-9));
}

IsolationForestDetector::IsolationForestDetector(int64_t num_trees,
                                                 int64_t sample_size,
                                                 uint64_t seed)
    : num_trees_(num_trees), sample_size_(sample_size), seed_(seed) {}

Tensor IsolationForestDetector::MakeFeatures(const TimeSeries& series,
                                             int64_t dim) const {
  const int64_t t = series.length();
  Tensor features({t, 3});
  constexpr int64_t kLocal = 16;
  double rolling = 0.0;
  for (int64_t i = 0; i < t; ++i) {
    const float v = series.values.At({i, dim});
    const float prev = i > 0 ? series.values.At({i - 1, dim}) : v;
    const int64_t lo = std::max<int64_t>(0, i - kLocal);
    rolling = 0.0;
    for (int64_t j = lo; j < i + 1; ++j) {
      rolling += series.values.At({j, dim});
    }
    rolling /= static_cast<double>(i + 1 - lo);
    features.At({i, 0}) = v;
    features.At({i, 1}) = v - prev;
    features.At({i, 2}) = v - static_cast<float>(rolling);
  }
  return features;
}

void IsolationForestDetector::Fit(const TimeSeries& train) {
  Stopwatch timer;
  dims_ = train.dims();
  forests_.clear();
  for (int64_t d = 0; d < dims_; ++d) {
    forests_.emplace_back(num_trees_, sample_size_,
                          seed_ + static_cast<uint64_t>(d) * 7919);
    forests_.back().Fit(MakeFeatures(train, d));
  }
  fit_seconds_ = timer.ElapsedSeconds();
}

Tensor IsolationForestDetector::Score(const TimeSeries& series) {
  TRANAD_CHECK_EQ(series.dims(), dims_);
  const int64_t t = series.length();
  Tensor scores({t, dims_});
  for (int64_t d = 0; d < dims_; ++d) {
    const Tensor features = MakeFeatures(series, d);
    for (int64_t i = 0; i < t; ++i) {
      scores.At({i, d}) = static_cast<float>(
          forests_[static_cast<size_t>(d)].ScoreRow(features.data() + i * 3));
    }
  }
  return scores;
}

}  // namespace tranad
