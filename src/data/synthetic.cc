#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tranad {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;

/// Latent-factor signal model: each dimension is a loading-weighted mixture
/// of shared seasonal factors plus a private harmonic, a slow trend and
/// AR(1) observation noise. Actuator dimensions follow square-wave regimes
/// derived from a latent factor's sign, mimicking valve/pump channels.
class SignalModel {
 public:
  SignalModel(const SyntheticConfig& config, Rng* rng)
      : config_(config), rng_(rng) {
    const int64_t f = std::max<int64_t>(1, config.latent_factors);
    factor_period_.resize(static_cast<size_t>(f));
    factor_phase_.resize(static_cast<size_t>(f));
    for (int64_t i = 0; i < f; ++i) {
      factor_period_[static_cast<size_t>(i)] =
          config.period * (1.0 + 0.5 * rng->Uniform(-0.5, 1.0));
      factor_phase_[static_cast<size_t>(i)] = rng->Uniform(0.0, kTwoPi);
    }
    loadings_.resize(static_cast<size_t>(config.dims));
    private_period_.resize(static_cast<size_t>(config.dims));
    private_phase_.resize(static_cast<size_t>(config.dims));
    offset_.resize(static_cast<size_t>(config.dims));
    amplitude_.resize(static_cast<size_t>(config.dims));
    is_actuator_.resize(static_cast<size_t>(config.dims));
    for (int64_t d = 0; d < config.dims; ++d) {
      const size_t ud = static_cast<size_t>(d);
      loadings_[ud].resize(static_cast<size_t>(f));
      for (auto& l : loadings_[ud]) l = rng->Uniform(-1.0, 1.0);
      private_period_[ud] = config.period / rng->Uniform(1.5, 4.0);
      private_phase_[ud] = rng->Uniform(0.0, kTwoPi);
      offset_[ud] = rng->Uniform(-0.5, 0.5);
      amplitude_[ud] = rng->Uniform(0.5, 1.5);
      is_actuator_[ud] = rng->Bernoulli(config.actuator_fraction);
    }
  }

  /// Clean (noise-free) value of dimension d at time t; `phase_shift` and
  /// `period_scale` support contextual/frequency anomalies.
  double Clean(int64_t d, int64_t t, double phase_shift = 0.0,
               double period_scale = 1.0) const {
    const size_t ud = static_cast<size_t>(d);
    double factor_sum = 0.0;
    for (size_t i = 0; i < factor_period_.size(); ++i) {
      const double angle = kTwoPi * static_cast<double>(t) /
                               (factor_period_[i] * period_scale) +
                           factor_phase_[i] + phase_shift;
      factor_sum += loadings_[ud][i] * std::sin(angle);
    }
    if (is_actuator_[ud]) {
      // Discrete two-level regime driven by the latent factors.
      return factor_sum > 0.0 ? 1.0 : 0.0;
    }
    const double priv =
        0.4 * std::sin(kTwoPi * static_cast<double>(t) /
                           (private_period_[ud] * period_scale) +
                       private_phase_[ud] + phase_shift);
    const double total_t =
        static_cast<double>(config_.train_len + config_.test_len);
    const double drift =
        config_.trend * static_cast<double>(t) / total_t;
    return offset_[ud] + amplitude_[ud] * factor_sum + priv + drift;
  }

  bool is_actuator(int64_t d) const {
    return is_actuator_[static_cast<size_t>(d)];
  }

 private:
  const SyntheticConfig& config_;
  Rng* rng_;
  std::vector<double> factor_period_;
  std::vector<double> factor_phase_;
  std::vector<std::vector<double>> loadings_;
  std::vector<double> private_period_;
  std::vector<double> private_phase_;
  std::vector<double> offset_;
  std::vector<double> amplitude_;
  std::vector<bool> is_actuator_;
};

// One injected anomaly segment.
struct Segment {
  AnomalyKind kind;
  int64_t start = 0;
  int64_t len = 0;
  std::vector<int64_t> dims;  // affected dimensions (first = root cause)
  double magnitude = 0.0;
  double sign = 1.0;
  int64_t cascade_lag = 0;
};

AnomalyKind SampleKind(const SyntheticConfig& config, Rng* rng) {
  TRANAD_CHECK(!config.anomaly_mix.empty());
  double total = 0.0;
  for (const auto& [kind, w] : config.anomaly_mix) total += w;
  double u = rng->Uniform(0.0, total);
  for (const auto& [kind, w] : config.anomaly_mix) {
    if (u < w) return kind;
    u -= w;
  }
  return config.anomaly_mix.back().first;
}

int64_t SegmentLength(AnomalyKind kind, const SyntheticConfig& config,
                      Rng* rng) {
  switch (kind) {
    case AnomalyKind::kSpike:
      return 1 + static_cast<int64_t>(rng->UniformInt(3));
    case AnomalyKind::kLevelShift:
    case AnomalyKind::kDropout:
      return 10 + static_cast<int64_t>(rng->UniformInt(30));
    case AnomalyKind::kContextual:
    case AnomalyKind::kFrequency:
      return std::max<int64_t>(8, config.period / 2 +
                                      static_cast<int64_t>(rng->UniformInt(
                                          static_cast<uint64_t>(
                                              std::max<int64_t>(
                                                  1, config.period)))));
    case AnomalyKind::kMild:
      return 15 + static_cast<int64_t>(rng->UniformInt(40));
    case AnomalyKind::kCascade:
      return 20 + static_cast<int64_t>(rng->UniformInt(40));
  }
  return 10;
}

std::vector<int64_t> SampleDims(int64_t m, AnomalyKind kind, Rng* rng) {
  // How many dimensions an anomaly touches depends on its kind: spikes and
  // mild offsets are usually local, cascades by construction spread wide.
  int64_t count = 1;
  switch (kind) {
    case AnomalyKind::kSpike:
    case AnomalyKind::kMild:
    case AnomalyKind::kDropout:
      count = 1 + static_cast<int64_t>(rng->UniformInt(
                      static_cast<uint64_t>(std::max<int64_t>(1, m / 4))));
      break;
    case AnomalyKind::kLevelShift:
    case AnomalyKind::kContextual:
    case AnomalyKind::kFrequency:
      count = 1 + static_cast<int64_t>(rng->UniformInt(
                      static_cast<uint64_t>(std::max<int64_t>(1, m / 2))));
      break;
    case AnomalyKind::kCascade:
      count = std::max<int64_t>(2, m / 2);
      break;
  }
  count = std::min(count, m);
  auto perm = rng->Permutation(static_cast<size_t>(m));
  std::vector<int64_t> dims;
  dims.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    dims.push_back(static_cast<int64_t>(perm[static_cast<size_t>(i)]));
  }
  return dims;
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticConfig& config) {
  TRANAD_CHECK_GT(config.dims, 0);
  TRANAD_CHECK_GT(config.train_len, 1);
  TRANAD_CHECK_GT(config.test_len, 1);
  Rng rng(config.seed);
  SignalModel model(config, &rng);

  const int64_t m = config.dims;
  const int64_t total = config.train_len + config.test_len;

  // Clean signal + AR(1) noise over the whole horizon (train then test so
  // the test continues the same process, as in the real benchmarks).
  Tensor all({total, m});
  std::vector<double> ar_state(static_cast<size_t>(m), 0.0);
  const double innovation =
      config.noise * std::sqrt(1.0 - config.ar_coeff * config.ar_coeff);
  for (int64_t t = 0; t < total; ++t) {
    for (int64_t d = 0; d < m; ++d) {
      const size_t ud = static_cast<size_t>(d);
      ar_state[ud] =
          config.ar_coeff * ar_state[ud] + rng.Normal(0.0, innovation);
      double noise = ar_state[ud];
      if (model.is_actuator(d)) noise *= 0.1;  // actuators are near-discrete
      all.At({t, d}) = static_cast<float>(model.Clean(d, t) + noise);
    }
  }

  // ---- anomaly injection on the test span ----
  const int64_t t0 = config.train_len;
  Tensor dim_labels({config.test_len, m});
  std::vector<uint8_t> labels(static_cast<size_t>(config.test_len), 0);

  const int64_t target =
      static_cast<int64_t>(config.anomaly_rate * config.test_len);
  int64_t injected = 0;
  int64_t guard = 0;
  while (injected < target && guard < 10000) {
    ++guard;
    Segment seg;
    seg.kind = SampleKind(config, &rng);
    seg.len = std::min<int64_t>(SegmentLength(seg.kind, config, &rng),
                                std::max<int64_t>(1, target - injected +
                                                         seg.len / 4));
    if (seg.len < 1) seg.len = 1;
    if (seg.len >= config.test_len) seg.len = config.test_len / 4;
    seg.start = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(config.test_len - seg.len)));
    // Avoid stacking anomalies on already-anomalous spans.
    bool overlaps = false;
    for (int64_t i = seg.start; i < seg.start + seg.len; ++i) {
      if (labels[static_cast<size_t>(i)] != 0) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;
    seg.dims = SampleDims(m, seg.kind, &rng);
    seg.sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    seg.cascade_lag = 2 + static_cast<int64_t>(rng.UniformInt(4));
    switch (seg.kind) {
      case AnomalyKind::kSpike:
        seg.magnitude = rng.Uniform(0.8, 2.0);
        break;
      case AnomalyKind::kLevelShift:
        seg.magnitude = rng.Uniform(0.4, 1.1);
        break;
      case AnomalyKind::kMild:
        // Barely above the noise floor — the "mild anomalies" of SMD.
        seg.magnitude = config.noise * rng.Uniform(3.0, 5.0);
        break;
      case AnomalyKind::kCascade:
        seg.magnitude = rng.Uniform(0.4, 1.0);
        break;
      default:
        seg.magnitude = rng.Uniform(0.5, 1.0);
        break;
    }
    seg.magnitude *= config.anomaly_magnitude;

    for (size_t di = 0; di < seg.dims.size(); ++di) {
      const int64_t d = seg.dims[di];
      // Cascades reach later dimensions with a lag, shrinking amplitude.
      const int64_t lag = seg.kind == AnomalyKind::kCascade
                              ? static_cast<int64_t>(di) * seg.cascade_lag
                              : 0;
      const double atten =
          seg.kind == AnomalyKind::kCascade
              ? std::pow(0.85, static_cast<double>(di))
              : 1.0;
      const int64_t seg_end = std::min(seg.start + seg.len, config.test_len);
      for (int64_t i = seg.start + lag; i < seg_end; ++i) {
        const int64_t gt = t0 + i;  // global time index
        float& cell = all.At({gt, d});
        // Anomalies keep their sharp onsets (faults, saturations and
        // spikes in the real traces are abrupt); only the tail ramps out
        // to avoid an artificial cliff at segment end. The benign
        // distractors below are fully smooth and smaller — telling the two
        // apart is the modelling task.
        const double span = static_cast<double>(seg_end - seg.start - lag);
        const double prog =
            span <= 1.0 ? 0.0
                        : static_cast<double>(i - seg.start - lag) / span;
        const double envelope =
            seg.kind == AnomalyKind::kSpike
                ? 1.0
                : std::min(1.0, 4.0 * (1.0 - std::clamp(prog, 0.0, 1.0)));
        switch (seg.kind) {
          case AnomalyKind::kSpike:
          case AnomalyKind::kLevelShift:
          case AnomalyKind::kMild:
          case AnomalyKind::kCascade:
            cell +=
                static_cast<float>(seg.sign * seg.magnitude * atten * envelope);
            break;
          case AnomalyKind::kContextual:
            // Phase-inverted seasonal value: plausible range, wrong time.
            cell = static_cast<float>(model.Clean(d, gt, M_PI) +
                                      rng.Normal(0.0, config.noise));
            break;
          case AnomalyKind::kFrequency:
            cell = static_cast<float>(
                model.Clean(d, gt, 0.0, 0.35) +
                rng.Normal(0.0, config.noise));
            break;
          case AnomalyKind::kDropout:
            cell = static_cast<float>(seg.magnitude * 0.1);
            break;
        }
        dim_labels.At({i, d}) = 1.0f;
        if (labels[static_cast<size_t>(i)] == 0) {
          labels[static_cast<size_t>(i)] = 1;
          ++injected;
        }
      }
    }
  }

  // ---- benign distractor events over the whole horizon ----
  // Same event machinery at sub-anomalous magnitude, never labeled: models
  // must tolerate them (false-positive pressure, as in the real traces).
  if (config.benign_rate > 0.0) {
    const int64_t benign_target =
        static_cast<int64_t>(config.benign_rate * total);
    int64_t benign_injected = 0;
    int64_t benign_guard = 0;
    while (benign_injected < benign_target && benign_guard < 10000) {
      ++benign_guard;
      const AnomalyKind kind =
          rng.Bernoulli(0.6) ? AnomalyKind::kMild : AnomalyKind::kLevelShift;
      const int64_t len = 8 + static_cast<int64_t>(rng.UniformInt(24));
      if (len >= total) break;
      const int64_t start = static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(total - len)));
      // Skip spans overlapping labeled anomalies so labels stay exact.
      bool overlaps = false;
      for (int64_t i = start; i < start + len; ++i) {
        if (i >= t0 && labels[static_cast<size_t>(i - t0)] != 0) {
          overlaps = true;
          break;
        }
      }
      if (overlaps) continue;
      // Benign events mirror the anomaly footprint (multiple dimensions,
      // near-anomalous magnitude) but also occur inside the *training* span
      // — a model that learns the normal repertoire in context can dismiss
      // them; a weak one raises false alarms.
      const auto dims = SampleDims(m, kind, &rng);
      const double mag =
          (kind == AnomalyKind::kMild ? config.noise * rng.Uniform(0.8, 1.6)
                                      : rng.Uniform(0.1, 0.25)) *
          config.anomaly_magnitude;
      const double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
      for (int64_t d : dims) {
        for (int64_t i = start; i < start + len; ++i) {
          const double prog = static_cast<double>(i - start + 1) /
                              static_cast<double>(len + 1);
          all.At({i, d}) +=
              static_cast<float>(sign * mag * std::sin(M_PI * prog));
        }
      }
      benign_injected += len;
    }
  }

  Dataset ds;
  ds.name = config.name;
  ds.train.name = config.name + "/train";
  ds.train.values = Tensor({config.train_len, m});
  std::copy(all.data(), all.data() + config.train_len * m,
            ds.train.values.data());
  ds.test.name = config.name + "/test";
  ds.test.values = Tensor({config.test_len, m});
  std::copy(all.data() + config.train_len * m,
            all.data() + total * m, ds.test.values.data());
  ds.test.labels = std::move(labels);
  ds.test.dim_labels = std::move(dim_labels);
  TRANAD_CHECK(ds.Validate().ok());
  return ds;
}

namespace {

int64_t Scaled(int64_t base, double scale) {
  return std::max<int64_t>(64, static_cast<int64_t>(base * scale));
}

}  // namespace

SyntheticConfig NabConfig(double scale) {
  SyntheticConfig c;
  c.name = "NAB";
  c.dims = 1;
  c.train_len = Scaled(2400, scale);
  c.test_len = Scaled(2400, scale);
  c.anomaly_rate = 0.02;
  c.noise = 0.06;
  c.period = 60;
  c.latent_factors = 1;
  c.trend = 0.3;  // cloud-metric style drift
  c.anomaly_mix = {{AnomalyKind::kSpike, 0.5},
                   {AnomalyKind::kLevelShift, 0.3},
                   {AnomalyKind::kContextual, 0.2}};
  c.anomaly_magnitude = 0.9;
  c.benign_rate = 0.04;
  c.seed = 1001;
  return c;
}

SyntheticConfig UcrConfig(double scale) {
  SyntheticConfig c;
  c.name = "UCR";
  c.dims = 1;
  c.train_len = Scaled(1500, scale);
  c.test_len = Scaled(3400, scale);
  c.anomaly_rate = 0.019;
  c.noise = 0.03;  // ECG-like: clean periodic signal
  c.period = 40;
  c.latent_factors = 1;
  c.anomaly_mix = {{AnomalyKind::kFrequency, 0.5},
                   {AnomalyKind::kContextual, 0.3},
                   {AnomalyKind::kSpike, 0.2}};
  c.anomaly_magnitude = 0.8;
  c.benign_rate = 0.03;
  c.seed = 1002;
  return c;
}

SyntheticConfig MbaConfig(double scale) {
  SyntheticConfig c;
  c.name = "MBA";
  c.dims = 2;
  c.train_len = Scaled(4200, scale);
  c.test_len = Scaled(4200, scale);
  c.anomaly_rate = 0.01;  // rare supraventricular/premature beats
  c.noise = 0.04;
  c.period = 36;  // heartbeat period
  c.latent_factors = 1;  // both ECG leads share the cardiac cycle
  c.anomaly_mix = {{AnomalyKind::kFrequency, 0.45},
                   {AnomalyKind::kSpike, 0.35},
                   {AnomalyKind::kContextual, 0.2}};
  c.anomaly_magnitude = 1.0;
  c.benign_rate = 0.02;
  c.seed = 1003;
  return c;
}

SyntheticConfig SmapConfig(double scale) {
  SyntheticConfig c;
  c.name = "SMAP";
  c.dims = 8;  // scaled from 25
  c.train_len = Scaled(2600, scale);
  c.test_len = Scaled(3400, scale);
  c.anomaly_rate = 0.13;
  c.noise = 0.05;
  c.period = 80;
  c.latent_factors = 2;
  c.actuator_fraction = 0.4;  // telemetry has many discrete command channels
  c.anomaly_mix = {{AnomalyKind::kLevelShift, 0.4},
                   {AnomalyKind::kDropout, 0.25},
                   {AnomalyKind::kSpike, 0.2},
                   {AnomalyKind::kContextual, 0.15}};
  c.anomaly_magnitude = 0.8;
  c.benign_rate = 0.05;
  c.seed = 1004;
  return c;
}

SyntheticConfig MslConfig(double scale) {
  SyntheticConfig c;
  c.name = "MSL";
  c.dims = 12;  // scaled from 55
  c.train_len = Scaled(2000, scale);
  c.test_len = Scaled(2600, scale);
  c.anomaly_rate = 0.107;
  c.noise = 0.06;
  c.period = 70;
  c.latent_factors = 3;
  c.actuator_fraction = 0.5;
  c.anomaly_mix = {{AnomalyKind::kLevelShift, 0.35},
                   {AnomalyKind::kSpike, 0.25},
                   {AnomalyKind::kDropout, 0.2},
                   {AnomalyKind::kContextual, 0.2}};
  c.anomaly_magnitude = 0.9;
  c.benign_rate = 0.04;
  c.seed = 1005;
  return c;
}

SyntheticConfig SwatConfig(double scale) {
  SyntheticConfig c;
  c.name = "SWaT";
  c.dims = 10;  // scaled from 51
  c.train_len = Scaled(3200, scale);
  c.test_len = Scaled(2800, scale);
  c.anomaly_rate = 0.12;
  c.noise = 0.03;  // industrial sensors: slow, clean dynamics
  c.period = 160;
  c.latent_factors = 2;
  c.actuator_fraction = 0.5;  // valves and pumps
  c.ar_coeff = 0.85;
  c.anomaly_mix = {{AnomalyKind::kLevelShift, 0.55},
                   {AnomalyKind::kDropout, 0.25},
                   {AnomalyKind::kCascade, 0.2}};
  c.anomaly_magnitude = 0.55;
  c.benign_rate = 0.06;
  c.seed = 1006;
  return c;
}

SyntheticConfig WadiConfig(double scale) {
  SyntheticConfig c;
  c.name = "WADI";
  c.dims = 16;  // scaled from 123: the widest benchmark
  c.train_len = Scaled(4200, scale);
  c.test_len = Scaled(2000, scale);
  c.anomaly_rate = 0.06;
  c.noise = 0.12;  // §4.3: WADI is the noisiest, hardest dataset
  c.ar_coeff = 0.8;
  c.period = 180;
  c.latent_factors = 3;
  c.actuator_fraction = 0.4;
  c.trend = 0.4;
  c.anomaly_mix = {{AnomalyKind::kLevelShift, 0.35},
                   {AnomalyKind::kMild, 0.3},
                   {AnomalyKind::kCascade, 0.2},
                   {AnomalyKind::kDropout, 0.15}};
  c.anomaly_magnitude = 0.35;
  c.benign_rate = 0.10;
  c.seed = 1007;
  return c;
}

SyntheticConfig SmdConfig(double scale) {
  SyntheticConfig c;
  c.name = "SMD";
  c.dims = 8;  // scaled from 38
  c.train_len = Scaled(4200, scale);
  c.test_len = Scaled(4200, scale);
  c.anomaly_rate = 0.042;
  c.noise = 0.05;
  c.period = 100;
  c.latent_factors = 2;
  c.trend = 0.2;
  // §4.3: "in datasets like SMD, anomalous data is not very far from
  // normal data" — the mix is dominated by mild anomalies.
  c.anomaly_mix = {{AnomalyKind::kMild, 0.6},
                   {AnomalyKind::kLevelShift, 0.2},
                   {AnomalyKind::kSpike, 0.2}};
  c.anomaly_magnitude = 0.9;
  c.benign_rate = 0.04;
  c.seed = 1008;
  return c;
}

SyntheticConfig MsdsConfig(double scale) {
  SyntheticConfig c;
  c.name = "MSDS";
  c.dims = 10;
  c.train_len = Scaled(3200, scale);
  c.test_len = Scaled(3200, scale);
  c.anomaly_rate = 0.054;
  c.noise = 0.05;
  c.period = 90;
  c.latent_factors = 3;
  // §4.3 / Fig. 5: distributed-system faults cascade across modes.
  c.anomaly_mix = {{AnomalyKind::kCascade, 0.6},
                   {AnomalyKind::kLevelShift, 0.25},
                   {AnomalyKind::kSpike, 0.15}};
  c.anomaly_magnitude = 0.8;
  c.benign_rate = 0.04;
  c.seed = 1009;
  return c;
}

std::vector<SyntheticConfig> AllDatasetConfigs(double scale) {
  return {NabConfig(scale),  UcrConfig(scale),  MbaConfig(scale),
          SmapConfig(scale), MslConfig(scale),  SwatConfig(scale),
          WadiConfig(scale), SmdConfig(scale),  MsdsConfig(scale)};
}

Result<Dataset> GenerateDatasetByName(const std::string& name, double scale,
                                      uint64_t seed) {
  for (auto& config : AllDatasetConfigs(scale)) {
    if (config.name == name) {
      config.seed ^= seed * 0x9E3779B97F4A7C15ULL;
      if (seed != 42) config.seed += seed;
      return GenerateSynthetic(config);
    }
  }
  return Status::NotFound("unknown dataset: " + name);
}

}  // namespace tranad
