// The determinism contract of the parallel compute backend: every kernel,
// gradient, and full training run must produce bit-identical floats whether
// ParallelFor uses 1 thread or several. Chunking may only change which
// thread runs an index, never the arithmetic the index performs.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/thread_pool.h"
#include "core/tranad_trainer.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "tensor/autograd_ops.h"
#include "tensor/grad_check.h"
#include "tensor/kernels.h"
#include "tensor/tensor_ops.h"

namespace tranad {
namespace {

class ThreadCountRestorer {
 public:
  ThreadCountRestorer() : saved_(NumComputeThreads()) {}
  ~ThreadCountRestorer() { SetNumComputeThreads(saved_); }

 private:
  int64_t saved_;
};

// Runs `fn` at 1 thread and at 4 threads and asserts the outputs are
// bit-identical (Tensor::Equals is exact float equality).
void ExpectBitIdentical(const std::function<std::vector<Tensor>()>& fn,
                        const char* what) {
  ThreadCountRestorer restore;
  SetNumComputeThreads(1);
  const std::vector<Tensor> serial = fn();
  SetNumComputeThreads(4);
  const std::vector<Tensor> parallel = fn();
  ASSERT_EQ(serial.size(), parallel.size()) << what;
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].Equals(parallel[i]))
        << what << " output " << i << " differs between 1 and 4 threads";
  }
}

Tensor RandInput(Shape shape, uint64_t seed, float lo = -2.0f,
                 float hi = 2.0f) {
  Rng rng(seed);
  return Tensor::Rand(std::move(shape), &rng, lo, hi);
}

TEST(DeterminismTest, MatMulForward) {
  // Odd sizes so chunks never align with rows; batched + broadcast cases.
  const Tensor a = RandInput({7, 45, 33}, 1);
  const Tensor b = RandInput({7, 33, 29}, 2);
  const Tensor b2 = RandInput({33, 29}, 3);
  ExpectBitIdentical(
      [&] {
        return std::vector<Tensor>{MatMul(a, b), MatMul(a, b2)};
      },
      "MatMul");
}

TEST(DeterminismTest, SoftmaxAndLayerNormForward) {
  const Tensor x = RandInput({5, 37, 41}, 4);
  ExpectBitIdentical(
      [&] {
        return std::vector<Tensor>{SoftmaxLastDim(x),
                                   LayerNormLastDim(x, 1e-5f)};
      },
      "Softmax/LayerNorm");
}

TEST(DeterminismTest, BroadcastFamily) {
  const Tensor x = RandInput({6, 31, 17}, 5);
  const Tensor same = RandInput({6, 31, 17}, 6);
  const Tensor scalar = RandInput({}, 7);
  const Tensor rowwise = RandInput({6, 31, 1}, 8);
  const Tensor tail = RandInput({17}, 9);
  const Tensor general = RandInput({6, 1, 17}, 10);
  ExpectBitIdentical(
      [&] {
        return std::vector<Tensor>{
            Add(x, same),    Mul(x, scalar), Div(x, rowwise),
            Add(x, tail),    Sub(x, general), Maximum(general, rowwise),
        };
      },
      "BinaryBroadcast");
}

TEST(DeterminismTest, UnaryAndReductions) {
  const Tensor x = RandInput({9, 23, 15}, 11, 0.5f, 3.0f);
  ExpectBitIdentical(
      [&] {
        return std::vector<Tensor>{
            Gelu(x),
            Sigmoid(x),
            Sum(x, 1, /*keepdims=*/false),
            Mean(x, 2, /*keepdims=*/true),
            Max(x, 0, /*keepdims=*/false),
            TransposeLast2(x),
            SliceAxis(x, 1, 3, 11),
        };
      },
      "Unary/Reduce");
}

TEST(DeterminismTest, BackwardGradients) {
  // A composite graph exercising matmul, layernorm, softmax, gelu, and
  // broadcast backward closures; leaf gradients must match bitwise.
  const Tensor wx = RandInput({19, 21}, 12, -0.5f, 0.5f);
  const Tensor wb = RandInput({21}, 13, -0.5f, 0.5f);
  const Tensor in = RandInput({11, 19}, 14);
  ExpectBitIdentical(
      [&] {
        Variable w(wx, /*requires_grad=*/true);
        Variable b(wb, /*requires_grad=*/true);
        Variable x(in, /*requires_grad=*/true);
        Variable h = ag::Add(ag::MatMul(x, w), b);
        h = ag::LayerNormLastDim(h, 1e-5f);
        h = ag::Gelu(h);
        h = ag::SoftmaxLastDim(h);
        ag::MeanAll(ag::Square(h)).Backward();
        return std::vector<Tensor>{w.grad(), b.grad(), x.grad()};
      },
      "Backward");
}

TEST(DeterminismTest, GradCheckPassesUnderParallelBackend) {
  ThreadCountRestorer restore;
  SetNumComputeThreads(4);
  Rng rng(0xD15C0);
  const auto result = CheckGradients(
      [](const std::vector<Variable>& in) {
        Variable h = ag::MatMul(in[0], in[1]);
        h = ag::LayerNormLastDim(h, 1e-5f);
        return ag::MeanAll(ag::Square(ag::SoftmaxLastDim(h)));
      },
      {Tensor::Rand({4, 5}, &rng, -1.0f, 1.0f),
       Tensor::Rand({5, 6}, &rng, -1.0f, 1.0f)});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(DeterminismTest, FullTrainingRunIsThreadCountInvariant) {
  Dataset ds = GenerateSynthetic(SmdConfig(0.05));
  MinMaxNormalizer norm;
  norm.Fit(ds.train.values);
  const Tensor windows = MakeWindows(norm.Transform(ds.train.values), 6);

  auto train_once = [&] {
    TranADConfig c;
    c.dims = 8;
    c.window = 6;
    c.d_ff = 16;
    c.seed = 3;
    TranADModel model(c);
    TrainOptions opts;
    opts.max_epochs = 2;
    opts.batch_size = 64;
    opts.early_stop_patience = 10;
    TrainTranAD(&model, windows, opts);
    return model.SnapshotParameters();
  };
  ExpectBitIdentical(train_once, "TrainTranAD");
}

TEST(DeterminismTest, TrainingThreadInvariantUnderBothKernelConfigs) {
  // The thread-count invariance contract holds at every kernel config, not
  // just the default: pin TRANAD_KERNEL to scalar and to simd in turn and
  // re-run the full training bitwise comparison under each.
  Dataset ds = GenerateSynthetic(SmdConfig(0.05));
  MinMaxNormalizer norm;
  norm.Fit(ds.train.values);
  const Tensor windows = MakeWindows(norm.Transform(ds.train.values), 6);

  auto train_once = [&] {
    TranADConfig c;
    c.dims = 8;
    c.window = 6;
    c.d_ff = 16;
    c.seed = 3;
    TranADModel model(c);
    TrainOptions opts;
    opts.max_epochs = 2;
    opts.batch_size = 64;
    opts.early_stop_patience = 10;
    TrainTranAD(&model, windows, opts);
    return model.SnapshotParameters();
  };
  const kernels::KernelMode saved = kernels::CurrentKernelMode();
  for (auto mode :
       {kernels::KernelMode::kScalar, kernels::KernelMode::kSimd}) {
    kernels::SetKernelModeForTesting(mode);
    ExpectBitIdentical(train_once, mode == kernels::KernelMode::kScalar
                                       ? "TrainTranAD[scalar]"
                                       : "TrainTranAD[simd]");
  }
  kernels::SetKernelModeForTesting(saved);
}

TEST(DeterminismTest, NoGradParallelOpsRecordNoTapeNodes) {
  ThreadCountRestorer restore;
  SetNumComputeThreads(4);
  const Tensor wx = RandInput({33, 35}, 15);
  Variable w(wx, /*requires_grad=*/true);
  const Tensor in = RandInput({41, 33}, 16);
  NoGradGuard guard;
  const int64_t before = TapeNodesCreatedForTesting();
  Variable h = ag::MatMul(Variable(in), w);
  h = ag::SoftmaxLastDim(ag::LayerNormLastDim(h, 1e-5f));
  ag::MeanAll(h);
  EXPECT_EQ(TapeNodesCreatedForTesting(), before)
      << "guarded forward pass must allocate zero tape nodes, even with "
         "parallel kernels";
}

}  // namespace
}  // namespace tranad
