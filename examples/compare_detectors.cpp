// Model bake-off on your scenario: run TranAD against several baselines
// from the registry on a distributed-system (MSDS-style) workload and
// rank them — the decision a platform team makes before deploying one.
#include <cstdio>

#include "baselines/registry.h"
#include "core/pipeline.h"
#include "data/synthetic.h"

int main() {
  using namespace tranad;

  Dataset dataset = GenerateSynthetic(MsdsConfig(/*scale=*/0.35));
  std::printf("MSDS-style distributed system: %lld services, cascading "
              "faults, %.1f%% anomalous\n",
              static_cast<long long>(dataset.dims()),
              100.0 * dataset.test.AnomalyRate());

  const std::vector<std::string> candidates{
      "TranAD", "USAD", "OmniAnomaly", "GDN", "IsolationForest"};

  std::printf("\n%-16s %8s %8s %8s %10s %10s\n", "method", "F1", "AUC",
              "H@150%", "train s/ep", "score s");
  for (const auto& name : candidates) {
    DetectorOptions options;
    options.epochs = 5;
    auto detector = CreateDetector(name, options);
    if (!detector.ok()) {
      std::printf("%-16s unavailable: %s\n", name.c_str(),
                  detector.status().ToString().c_str());
      continue;
    }
    const EvalOutcome out = EvaluateDetector(detector->get(), dataset);
    std::printf("%-16s %8.4f %8.4f %8.4f %10.3f %10.3f\n", name.c_str(),
                out.detection.f1, out.detection.roc_auc,
                out.diagnosis.hitrate_150, out.seconds_per_epoch,
                out.score_seconds);
  }
  std::printf("\n(Each method uses its paper-faithful window/capacity; see "
              "DESIGN.md.)\n");
  return 0;
}
