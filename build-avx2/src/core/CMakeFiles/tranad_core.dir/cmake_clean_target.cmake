file(REMOVE_RECURSE
  "libtranad_core.a"
)
