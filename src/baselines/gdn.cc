#include "baselines/gdn.h"

#include <cmath>

#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad {

/// Internal module holding GDN's parameters: per-dimension embeddings, the
/// window-trace projection, and the forecasting MLP.
class GdnDetector::GdnModule : public nn::Module {
 public:
  GdnModule(int64_t dims, int64_t window, int64_t embed, Rng* rng)
      : dims_(dims), embed_(embed) {
    embeddings_ = RegisterParameter(
        "embeddings", Tensor::Randn({dims, embed}, rng,
                                    1.0f / std::sqrt(static_cast<float>(embed))));
    trace_proj_ = std::make_unique<nn::Linear>(window, embed, rng);
    out1_ = std::make_unique<nn::Linear>(embed, embed, rng);
    out2_ = std::make_unique<nn::Linear>(embed, 1, rng);
    RegisterModule("trace_proj", trace_proj_.get());
    RegisterModule("out1", out1_.get());
    RegisterModule("out2", out2_.get());
  }

  // batch: [B, K, m] -> forecast [B, m] of the final timestamp from the
  // prefix [B, K-1, m].
  Variable Forward(const Tensor& batch) const {
    const int64_t b = batch.size(0);
    const int64_t k = batch.size(1);
    Variable seq(batch);
    Variable prefix = ag::SliceAxis(seq, 1, 0, k - 1);   // [B, K-1, m]
    Variable traces = ag::TransposeLast2(prefix);        // [B, m, K-1]
    Variable u = ag::Relu(trace_proj_->Forward(traces));  // [B, m, e]

    // Attention graph from embedding similarity (row softmax).
    Variable logits = ag::MulScalar(
        ag::MatMul(embeddings_, ag::TransposeLast2(
                                    ag::Reshape(embeddings_,
                                                {dims_, embed_}))),
        1.0f / std::sqrt(static_cast<float>(embed_)));
    Variable graph = ag::SoftmaxLastDim(logits);  // [m, m]

    Variable agg = ag::MatMul(graph, u);  // [B, m, e] via broadcast
    // Element-wise modulation by the node's own embedding, then MLP.
    Variable modulated = ag::Mul(agg, embeddings_);
    Variable h = ag::Relu(out1_->Forward(modulated));
    Variable y = out2_->Forward(h);            // [B, m, 1]
    return ag::Reshape(y, {b, dims_});
  }

  Tensor Graph() const {
    Tensor logits = MatMul(embeddings_.value(),
                           TransposeLast2(embeddings_.value()));
    return SoftmaxLastDim(
        MulScalar(logits, 1.0f / std::sqrt(static_cast<float>(embed_))));
  }

  // Linear(K-1 -> e) requires the window prefix length; store K at build.
  static constexpr int64_t kUnused = 0;

 private:
  int64_t dims_;
  int64_t embed_;
  Variable embeddings_;
  std::unique_ptr<nn::Linear> trace_proj_;
  std::unique_ptr<nn::Linear> out1_;
  std::unique_ptr<nn::Linear> out2_;
};

GdnDetector::GdnDetector(int64_t window, int64_t epochs, int64_t embed,
                         uint64_t seed)
    : WindowedDetector("GDN", window, epochs, 128),
      embed_(embed),
      seed_(seed) {}

GdnDetector::~GdnDetector() = default;

void GdnDetector::BuildModel(int64_t dims) {
  Rng rng(seed_);
  net_ = std::make_unique<GdnModule>(dims, window_ - 1, embed_, &rng);
  opt_ = std::make_unique<nn::Adam>(net_->Parameters(), 0.003f);
}

Tensor GdnDetector::AttentionGraph() const {
  TRANAD_CHECK(net_ != nullptr);
  return net_->Graph();
}

Variable GdnDetector::Forecast(const Tensor& batch) const {
  return net_->Forward(batch);
}

double GdnDetector::TrainBatch(const Tensor& batch, double /*progress*/) {
  const int64_t b = batch.size(0);
  const Tensor target =
      SliceAxis(batch, 1, window_ - 1, 1).Reshape({b, dims_});
  Variable pred = Forecast(batch);
  Variable loss = ag::MseLoss(pred, target);
  opt_->ZeroGrad();
  loss.Backward();
  opt_->ClipGradNorm(5.0f);
  opt_->Step();
  return loss.value().Item();
}

Tensor GdnDetector::ScoreBatch(const Tensor& batch) {
  const int64_t b = batch.size(0);
  const Tensor target =
      SliceAxis(batch, 1, window_ - 1, 1).Reshape({b, dims_});
  const Tensor pred = Forecast(batch).value();
  Tensor out({b, dims_});
  for (int64_t i = 0; i < b * dims_; ++i) {
    const float e = pred.data()[i] - target.data()[i];
    out.data()[i] = e * e;
  }
  return out;
}

}  // namespace tranad
