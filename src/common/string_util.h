#ifndef TRANAD_COMMON_STRING_UTIL_H_
#define TRANAD_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tranad {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Joins the pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);

/// Left/right pads `s` with spaces to `width` (for table rendering).
std::string PadLeft(std::string s, size_t width);
std::string PadRight(std::string s, size_t width);

}  // namespace tranad

#endif  // TRANAD_COMMON_STRING_UTIL_H_
