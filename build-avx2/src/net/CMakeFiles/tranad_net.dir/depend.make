# Empty dependencies file for tranad_net.
# This may be replaced when dependencies are built.
