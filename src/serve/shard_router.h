#ifndef TRANAD_SERVE_SHARD_ROUTER_H_
#define TRANAD_SERVE_SHARD_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/serve_engine.h"

namespace tranad::serve {

/// Per-shard health, driven by the router's consecutive-failure counters
/// (and `shard.*` failpoints). healthy -> degraded -> down is one-way per
/// shard: a down shard is failed over and never restarted in-process.
enum class ShardHealth {
  kHealthy = 0,
  kDegraded = 1,  // failures accumulating; still serving
  kDown = 2,      // tripped; streams migrated to live shards
};

struct ShardRouterOptions {
  /// Independent ServeEngine shards, each with its own batcher, worker
  /// pool, submission queue, and stream registry. Aggregate throughput
  /// scales with shards because nothing — no queue, no mutex, no batcher —
  /// is shared between them on the hot path.
  int64_t num_shards = 4;
  /// Virtual nodes per shard on the consistent-hash ring. More vnodes ->
  /// smoother stream distribution (the classic consistent-hashing variance
  /// argument); 64 keeps the worst shard within a few percent of mean for
  /// fleet-sized stream counts.
  int64_t vnodes_per_shard = 64;
  /// Engine options applied to every shard (workers *per shard*, queue
  /// capacity per shard, batching and resilience knobs).
  ServeOptions shard;

  // ---- Failover knobs (default off, per the resilience convention: with
  // both thresholds 0 the health machine never trips on its own, and only
  // an explicit `shard.kill` failpoint can take a shard down). ----

  /// Mark a shard degraded after this many *consecutive* shard-fault
  /// completions (Internal / IoError — worker faults and watchdog trips;
  /// per-request statuses like InvalidArgument or DeadlineExceeded never
  /// count). Any Ok completion resets the streak. 0 disables.
  int64_t degraded_after = 0;
  /// Trip the shard down (kill + migrate every stream) at this streak.
  /// 0 disables automatic failover. The last live shard is never tripped:
  /// it is pinned at degraded so the fleet always keeps serving.
  int64_t down_after = 0;
};

/// Scale-out front end over N ServeEngine shards: client-chosen stream keys
/// (uint64) map to shards by consistent hashing, so the mapping is a pure
/// function of (key, ring) — stable across runs, processes, and machines,
/// and minimally disturbed if the shard count ever changes. Each stream
/// lives wholly on one shard, which preserves every single-engine
/// invariant per stream (FIFO order, POT sequencing, bit-exact verdicts vs
/// the sequential OnlineTranAD path).
///
/// The router is intentionally thin on the hot path: Submit is one ring
/// lookup (read-only after construction) + one route-table read + the
/// engine's own admission. All engines score through the same frozen
/// detector's const surface (see ServeEngine's detector contract).
///
/// Fleet semantics:
///   - stats() merges per-shard atomic snapshots: counters add, latency
///     *histograms* merge, and fleet p50/p99 are re-derived from the merged
///     buckets (never averaged across shards).
///   - ReloadModel is a *rolling* reload: shards swap one at a time, so at
///     every instant N-1 shards are serving at full speed — the fleet is
///     never globally paused. A shard that fails to swap rolls itself back
///     (ServeEngine's contract); shards already swapped are then rolled
///     back to the previous checkpoint (best effort) so the fleet converges
///     to one model version.
///   - Failover: every verdict feeds a per-shard health state machine
///     (healthy -> degraded -> down). When a shard trips — consecutive
///     worker faults / watchdog stalls past `down_after`, or an armed
///     `shard.kill` failpoint — a dedicated failover thread Kill()s the
///     engine (queued submissions complete exactly once with Unavailable),
///     exports every victim stream's session state (ring + POT + seq +
///     quarantine) and rehydrates it on the next live shard along the
///     consistent-hash ring. Scored history is ring/POT state and only Ok
///     verdicts advance it, so post-migration verdicts stay bit-exact vs a
///     sequential OnlineTranAD replay of the scored observations.
class ShardRouter {
 public:
  /// `detector` must be fitted and must outlive the router; it is frozen
  /// for inference and shared by every shard's const scoring path.
  explicit ShardRouter(TranADDetector* detector, ShardRouterOptions options);

  /// Calls Stop().
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Stops every shard (graceful drain; see ServeEngine::Stop). Idempotent.
  void Stop();

  /// Registers stream `key` on its consistent-hash shard and calibrates it
  /// there. FailedPrecondition if the key is already registered.
  Status CreateStream(uint64_t key, const TimeSeries& calibration);

  /// Unregisters stream `key`; in-flight observations still complete.
  Status CloseStream(uint64_t key);

  /// Admits one observation for stream `key`. The callback receives `key`
  /// (not the shard-local id) plus the shard engine's per-stream sequence
  /// number; all ServeEngine::Submit admission statuses pass through
  /// (NotFound / InvalidArgument / FailedPrecondition / ResourceExhausted).
  Status Submit(uint64_t key, const Tensor& observation,
                VerdictCallback callback);

  /// Lifts quarantine on stream `key` (see ServeEngine::ReleaseQuarantine).
  Status ReleaseQuarantine(uint64_t key);

  /// Rolling fleet reload from a TranADDetector::SaveCheckpoint file.
  /// Shards swap one at a time; traffic keeps flowing on every shard not
  /// currently at its own micro-batch-boundary swap, and no queued
  /// submission is dropped anywhere. On a mid-fleet failure the failing
  /// shard has already rolled itself back, and shards swapped earlier are
  /// re-reloaded from the previous checkpoint path when one is known; the
  /// returned status describes the rollback. Concurrent calls serialize.
  Status ReloadModel(const std::string& path);

  /// Blocks until every admitted observation on every shard has completed.
  void Flush();

  /// Merged fleet snapshot (see ServeStatsSnapshot::MergeFrom): true fleet
  /// percentiles from merged latency histograms, summed counters,
  /// `shards` = num_shards().
  ServeStatsSnapshot stats() const;

  /// One shard's own snapshot (reservoir-exact percentiles).
  ServeStatsSnapshot shard_stats(int64_t shard) const;

  /// Consistent-hash shard index for a stream key (pure function of the
  /// construction-time ring; exposed for tests, placement debugging, and
  /// client-side shard awareness). Ignores health: live placement — which
  /// skips down shards — is what CreateStream and failover actually use,
  /// and the two agree whenever every shard is up.
  int64_t ShardOf(uint64_t key) const;

  /// Current health of one shard.
  ShardHealth shard_health(int64_t shard) const;

  /// Blocks until every failover triggered so far has finished migrating
  /// (the failover thread runs asynchronously from the trip). Safe to call
  /// from tests and ops paths; do not call from a verdict callback.
  void WaitForFailovers();

  int64_t num_shards() const {
    return static_cast<int64_t>(shards_.size());
  }
  int64_t num_streams() const;
  int64_t shards_failed() const {
    return shards_failed_.load(std::memory_order_acquire);
  }
  int64_t streams_migrated() const {
    return streams_migrated_.load(std::memory_order_acquire);
  }

 private:
  struct Route {
    int64_t shard = 0;
    StreamId local = 0;  // shard-engine stream id
  };

  /// Health bookkeeping; transitions serialize under failover_mu_, reads
  /// on the verdict hot path are lock-free.
  struct ShardState {
    std::atomic<int64_t> consecutive_failures{0};
    std::atomic<int> health{static_cast<int>(ShardHealth::kHealthy)};
  };

  Result<Route> FindRoute(uint64_t key) const;
  /// First live (non-down) shard at or after the key's ring point — the
  /// failover-aware placement walk. Falls back to ShardOf when every shard
  /// reads down (cannot happen while the last-live guard holds).
  int64_t LiveShardOf(uint64_t key) const;
  /// Counts a completion against the shard's failure streak; trips the
  /// shard when the streak crosses down_after.
  void ObserveVerdict(int64_t shard, const Status& status);
  /// Marks the shard down and queues it for the failover thread. Returns
  /// false when the shard is already down or is the last live shard (which
  /// is pinned at degraded instead — the fleet never kills its own last
  /// engine). Never migrates inline: callers may be on worker threads.
  bool TripShard(int64_t shard);
  void FailoverLoop();
  /// Kills the dead shard and migrates every victim stream to its live
  /// ring successor. Runs on the failover thread only.
  void FailOverShard(int64_t dead);

  std::vector<std::unique_ptr<ServeEngine>> shards_;
  /// Consistent-hash ring: (point, shard), sorted by point. Immutable
  /// after construction, so lookups are lock-free.
  std::vector<std::pair<uint64_t, int64_t>> ring_;

  mutable std::mutex routes_mu_;
  std::unordered_map<uint64_t, Route> routes_;

  /// Serializes rolling reloads and remembers the last committed
  /// checkpoint path (the rollback target for partially applied fleets).
  std::mutex reload_mu_;
  std::string model_path_;

  ShardRouterOptions options_;
  std::vector<std::unique_ptr<ShardState>> shard_states_;
  std::atomic<int64_t> shards_failed_{0};
  std::atomic<int64_t> streams_migrated_{0};

  /// Failover queue + thread. Trips enqueue; the thread Kill()s and
  /// migrates, so no verdict callback ever joins engine threads (that
  /// would deadlock — the callback runs *on* one of them).
  std::mutex failover_mu_;
  std::condition_variable failover_cv_;
  std::deque<int64_t> failover_queue_;
  int64_t failovers_in_flight_ = 0;
  bool failover_stop_ = false;
  std::thread failover_;
};

}  // namespace tranad::serve

#endif  // TRANAD_SERVE_SHARD_ROUTER_H_
