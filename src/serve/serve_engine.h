#ifndef TRANAD_SERVE_SERVE_ENGINE_H_
#define TRANAD_SERVE_SERVE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/online_detector.h"
#include "core/tranad_detector.h"
#include "serve/bounded_queue.h"
#include "serve/micro_batcher.h"
#include "serve/serve_stats.h"
#include "serve/stream_session.h"

namespace tranad::serve {

struct ServeOptions {
  /// Worker threads running the batched two-phase forward pass.
  int64_t num_workers = 4;
  /// Submission-queue capacity; Submit rejects with ResourceExhausted
  /// beyond this (backpressure instead of unbounded buffering).
  int64_t queue_capacity = 1024;
  /// Micro-batch coalescing policy: dispatch when `max_batch` observations
  /// are pending or `max_wait_us` has elapsed since the first, whichever
  /// comes first. max_wait_us = 0 still drains everything already queued.
  int64_t max_batch = 32;
  int64_t max_wait_us = 200;
  /// Streaming-POT parameters applied to every created stream.
  PotParams pot;
};

/// Concurrent multi-stream serving engine: many independent time series
/// scored online through one shared, frozen TranADDetector (Alg. 2 at
/// serving scale). The pipeline is
///
///   Submit --admission--> [bounded queue] --batcher thread--> ring update +
///   window assembly --> [work queue] --worker pool--> batched NoGrad
///   two-phase forward --> ordered completion (POT update + callback)
///
/// Correctness invariants:
///   - Per-stream FIFO: admissions are sequenced, the single batcher thread
///     updates each stream's ring in admission order, and completions are
///     applied in batch order, so every stream sees its POT updates in
///     exactly submission order.
///   - Batching transparency: scoring is row-independent and windows are
///     functions of the ring alone, so verdicts are bit-for-bit identical
///     to a sequential OnlineTranAD run regardless of batch boundaries,
///     worker count, or timing.
///   - The detector is frozen at construction; workers only use its const
///     scoring surface, so no worker ever touches trainer/autograd state.
///   - Hot reload: ReloadModel() swaps in a checkpointed detector at a
///     micro-batch boundary — batch formation pauses, in-flight batches
///     drain, the frozen model pointer flips — without dropping a single
///     queued submission, so the concurrent==sequential guarantee holds on
///     both sides of the swap (each batch scores wholly under one model).
class ServeEngine {
 public:
  /// `detector` must be fitted and must outlive the engine. The engine
  /// freezes it for inference; do not call Fit()/Score() on it (or run
  /// another engine over it) while this engine is alive.
  explicit ServeEngine(TranADDetector* detector, ServeOptions options = {});

  /// Drains every admitted request (callbacks fire), then joins all
  /// threads.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Registers a new stream: calibrates its POT threshold from the series'
  /// scores and seeds its window ring with the series tail (exactly
  /// OnlineTranAD::Calibrate). Safe to call while traffic is flowing.
  Result<StreamId> CreateStream(const TimeSeries& calibration);

  /// Unregisters a stream. Already-admitted observations still complete
  /// (their callbacks fire); later Submits return NotFound.
  Status CloseStream(StreamId id);

  /// Admits one observation x_t in R^m for `stream`. Returns NotFound for
  /// an unknown stream, InvalidArgument on a dimension mismatch, and
  /// ResourceExhausted when the submission queue is full (shed load and
  /// retry later). On Ok, `callback` will be invoked exactly once.
  Status Submit(StreamId stream, const Tensor& observation,
                VerdictCallback callback);

  /// Blocks until every admitted observation has completed. Do not call
  /// from inside a verdict callback.
  void Flush();

  /// Hot-swaps the serving model from a TranADDetector::SaveCheckpoint
  /// file. The replacement must match the current model's geometry (dims
  /// and window); on any load/validation error the engine keeps serving the
  /// old model and returns the Status. Queued submissions are preserved:
  /// the swap happens between micro-batches, after in-flight batches drain.
  /// Safe to call while traffic is flowing (but not reentrantly).
  Status ReloadModel(const std::string& path);

  ServeStatsSnapshot stats() const;
  int64_t num_streams() const;

 private:
  struct WindowBatch {
    std::vector<ServeRequest> requests;
    Tensor windows;  // [B, K, m], normalized
    int64_t ticket = 0;
    /// The model snapshot this batch was normalized against; scoring uses
    /// the same snapshot, so a reload mid-pipeline never splits a batch
    /// across two models.
    std::shared_ptr<const TranADDetector> detector;
  };

  void BatcherLoop();
  void WorkerLoop();
  void DecrementPending(int64_t n);
  std::shared_ptr<const TranADDetector> CurrentDetector() const;

  /// The serving model. Read via CurrentDetector() (pointer swap guarded by
  /// detector_mu_); replaced only by ReloadModel() after the pipeline
  /// drains. The initial detector is borrowed (no-op deleter); reloaded
  /// ones are owned.
  std::shared_ptr<const TranADDetector> detector_;
  mutable std::mutex detector_mu_;
  /// Model geometry, fixed for the engine's lifetime (reloads must match).
  int64_t dims_ = 0;
  int64_t window_ = 0;

  ServeOptions options_;
  ServeStats stats_;
  BoundedQueue<ServeRequest> submit_queue_;
  BoundedQueue<WindowBatch> work_queue_;
  MicroBatcher batcher_policy_;

  mutable std::mutex sessions_mu_;
  std::unordered_map<StreamId, std::shared_ptr<StreamSession>> sessions_;
  StreamId next_stream_id_ = 1;

  // Serializes {seq assignment, queue push} so per-stream sequence numbers
  // agree with queue order even under concurrent same-stream submitters.
  std::mutex admit_mu_;

  // Ordered completion: workers score batches in parallel but apply POT
  // updates and callbacks strictly in ticket (batch) order.
  std::mutex completion_mu_;
  std::condition_variable completion_cv_;
  int64_t next_completion_ticket_ = 0;

  // Admitted-but-not-completed count. Lock-free on the hot paths; the
  // mutex/cv pair only serializes against a blocked Flush().
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::atomic<int64_t> pending_{0};

  // Reload coordination. pipeline_mu_ serializes batch formation against
  // ReloadModel (held by the batcher only around the normalize/ring/assemble
  // section, never while blocked pushing to the work queue). in_flight_
  // counts batches formed but not yet fully completed; ReloadModel waits
  // for it to reach zero before flipping the detector pointer.
  std::mutex pipeline_mu_;
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  int64_t in_flight_batches_ = 0;

  std::thread batcher_;
  std::vector<std::thread> workers_;
};

}  // namespace tranad::serve

#endif  // TRANAD_SERVE_SERVE_ENGINE_H_
