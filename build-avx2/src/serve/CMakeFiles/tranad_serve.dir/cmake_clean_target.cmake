file(REMOVE_RECURSE
  "libtranad_serve.a"
)
