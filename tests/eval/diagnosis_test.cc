#include "eval/diagnosis.h"

#include <gtest/gtest.h>

namespace tranad {
namespace {

TEST(DiagnosisTest, PerfectRankingScoresOne) {
  // 3 timestamps, 4 dims; scores rank true dims on top everywhere.
  Tensor truth({3, 4});
  Tensor scores({3, 4});
  truth.At({0, 1}) = 1.0f;
  scores.At({0, 1}) = 9.0f;
  truth.At({1, 0}) = 1.0f;
  truth.At({1, 2}) = 1.0f;
  scores.At({1, 0}) = 8.0f;
  scores.At({1, 2}) = 7.0f;
  truth.At({2, 3}) = 1.0f;
  scores.At({2, 3}) = 5.0f;
  const auto m = EvaluateDiagnosis(scores, truth);
  EXPECT_DOUBLE_EQ(m.hitrate_100, 1.0);
  EXPECT_DOUBLE_EQ(m.hitrate_150, 1.0);
  EXPECT_DOUBLE_EQ(m.ndcg_100, 1.0);
  EXPECT_DOUBLE_EQ(m.ndcg_150, 1.0);
  EXPECT_EQ(m.evaluated_timestamps, 3);
}

TEST(DiagnosisTest, WorstRankingScoresZeroAt100) {
  Tensor truth({1, 4});
  Tensor scores({1, 4});
  truth.At({0, 0}) = 1.0f;       // true dim is 0
  scores.At({0, 3}) = 3.0f;      // model ranks others higher
  scores.At({0, 2}) = 2.0f;
  scores.At({0, 1}) = 1.0f;
  const auto m = EvaluateDiagnosis(scores, truth);
  EXPECT_DOUBLE_EQ(m.hitrate_100, 0.0);
  EXPECT_DOUBLE_EQ(m.ndcg_100, 0.0);
}

TEST(DiagnosisTest, HitRate150ConsidersMoreCandidates) {
  // 2 true dims; model puts one at rank 1 and the other at rank 3.
  Tensor truth({1, 4});
  Tensor scores({1, 4});
  truth.At({0, 0}) = 1.0f;
  truth.At({0, 1}) = 1.0f;
  scores.At({0, 0}) = 9.0f;  // rank 1 (hit)
  scores.At({0, 2}) = 8.0f;  // rank 2 (miss)
  scores.At({0, 1}) = 7.0f;  // rank 3 (hit at 150%)
  const auto m = EvaluateDiagnosis(scores, truth);
  EXPECT_DOUBLE_EQ(m.hitrate_100, 0.5);  // top-2 contains 1 of 2
  EXPECT_DOUBLE_EQ(m.hitrate_150, 1.0);  // top-3 contains both
  EXPECT_GT(m.ndcg_150, m.ndcg_100);
}

TEST(DiagnosisTest, NormalTimestampsIgnored) {
  Tensor truth({5, 3});  // all zeros
  Tensor scores({5, 3});
  const auto m = EvaluateDiagnosis(scores, truth);
  EXPECT_EQ(m.evaluated_timestamps, 0);
  EXPECT_DOUBLE_EQ(m.hitrate_100, 0.0);
}

TEST(DiagnosisTest, AveragesAcrossTimestamps) {
  Tensor truth({2, 2});
  Tensor scores({2, 2});
  // t=0: perfect. t=1: wrong.
  truth.At({0, 0}) = 1.0f;
  scores.At({0, 0}) = 1.0f;
  truth.At({1, 1}) = 1.0f;
  scores.At({1, 0}) = 1.0f;
  const auto m = EvaluateDiagnosis(scores, truth);
  EXPECT_DOUBLE_EQ(m.hitrate_100, 0.5);
}

TEST(DiagnosisTest, AllDimsAnomalousAlwaysHit) {
  Tensor truth({1, 3});
  Tensor scores({1, 3});
  for (int64_t d = 0; d < 3; ++d) truth.At({0, d}) = 1.0f;
  const auto m = EvaluateDiagnosis(scores, truth);
  EXPECT_DOUBLE_EQ(m.hitrate_100, 1.0);  // top-3 of 3 necessarily hits all
}

TEST(DiagnosisTest, ShapeMismatchDies) {
  EXPECT_DEATH(EvaluateDiagnosis(Tensor({2, 3}), Tensor({2, 4})), "CHECK");
}

TEST(DiagnosisTest, NdcgPrefersTopRankedHits) {
  // Same hit count, different rank placement -> NDCG discriminates.
  Tensor truth({1, 4});
  truth.At({0, 0}) = 1.0f;
  truth.At({0, 1}) = 1.0f;
  Tensor good({1, 4});
  good.At({0, 0}) = 9.0f;  // hit at rank 1
  good.At({0, 2}) = 8.0f;
  good.At({0, 1}) = 7.0f;  // hit at rank 3
  Tensor bad({1, 4});
  bad.At({0, 2}) = 9.0f;   // miss at rank 1
  bad.At({0, 3}) = 8.0f;   // miss at rank 2
  bad.At({0, 0}) = 7.0f;   // hit at rank 3
  const auto mg = EvaluateDiagnosis(good, truth);
  const auto mb = EvaluateDiagnosis(bad, truth);
  EXPECT_GT(mg.ndcg_150, mb.ndcg_150);
}

}  // namespace
}  // namespace tranad
