#include "eval/score_utils.h"

#include <algorithm>

#include "common/check.h"
#include "eval/pot.h"

namespace tranad {

std::vector<double> EwmaSmooth(const std::vector<double>& scores,
                               double alpha) {
  TRANAD_CHECK(alpha > 0.0 && alpha <= 1.0);
  std::vector<double> out(scores.size());
  double state = scores.empty() ? 0.0 : scores.front();
  for (size_t i = 0; i < scores.size(); ++i) {
    state = alpha * scores[i] + (1.0 - alpha) * state;
    out[i] = state;
  }
  return out;
}

Tensor EwmaSmoothPerDim(const Tensor& scores, double alpha) {
  TRANAD_CHECK_EQ(scores.ndim(), 2);
  const int64_t t = scores.size(0);
  const int64_t m = scores.size(1);
  Tensor out(scores.shape());
  for (int64_t d = 0; d < m; ++d) {
    double state = t > 0 ? scores.At({0, d}) : 0.0;
    for (int64_t i = 0; i < t; ++i) {
      state = alpha * scores.At({i, d}) + (1.0 - alpha) * state;
      out.At({i, d}) = static_cast<float>(state);
    }
  }
  return out;
}

Tensor RobustStandardizePerDim(const Tensor& scores, float eps) {
  TRANAD_CHECK_EQ(scores.ndim(), 2);
  const int64_t t = scores.size(0);
  const int64_t m = scores.size(1);
  TRANAD_CHECK_GT(t, 0);
  Tensor out(scores.shape());
  std::vector<double> column(static_cast<size_t>(t));
  for (int64_t d = 0; d < m; ++d) {
    for (int64_t i = 0; i < t; ++i) {
      column[static_cast<size_t>(i)] = scores.At({i, d});
    }
    const double median = Quantile(column, 0.5);
    const double iqr = Quantile(column, 0.75) - Quantile(column, 0.25);
    const double denom = iqr + eps;
    for (int64_t i = 0; i < t; ++i) {
      out.At({i, d}) = static_cast<float>(
          (scores.At({i, d}) - median) / denom);
    }
  }
  return out;
}

std::vector<double> RollingMax(const std::vector<double>& scores,
                               int64_t window) {
  TRANAD_CHECK_GT(window, 0);
  std::vector<double> out(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    const size_t lo = i + 1 >= static_cast<size_t>(window)
                          ? i + 1 - static_cast<size_t>(window)
                          : 0;
    double mx = scores[lo];
    for (size_t j = lo; j <= i; ++j) mx = std::max(mx, scores[j]);
    out[i] = mx;
  }
  return out;
}

}  // namespace tranad
