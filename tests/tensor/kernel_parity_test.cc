// The TRANAD_KERNEL=scalar|simd bit-exactness contract: every vectorized or
// fused kernel must produce identical floats under both configs, on aligned
// spans, tail remainders, sub-vector sizes, broadcasts, and degenerate
// shapes; and every fused kernel must match the unfused chain it replaces
// where that identity is part of its contract (SquaredDiff, LayerNormAffine,
// MseAll, MatMul packing).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/autograd_ops.h"
#include "tensor/grad_check.h"
#include "tensor/kernels.h"
#include "tensor/tensor_ops.h"

namespace tranad {
namespace {

class KernelModeScope {
 public:
  explicit KernelModeScope(kernels::KernelMode m)
      : saved_(kernels::CurrentKernelMode()) {
    kernels::SetKernelModeForTesting(m);
  }
  ~KernelModeScope() { kernels::SetKernelModeForTesting(saved_); }

 private:
  kernels::KernelMode saved_;
};

// Runs `fn` under the scalar config and the simd config and asserts the
// outputs are bit-identical (Tensor::Equals is exact float equality).
void ExpectModeParity(const std::function<std::vector<Tensor>()>& fn,
                      const char* what) {
  std::vector<Tensor> scalar_out, simd_out;
  {
    KernelModeScope mode(kernels::KernelMode::kScalar);
    scalar_out = fn();
  }
  {
    KernelModeScope mode(kernels::KernelMode::kSimd);
    simd_out = fn();
  }
  ASSERT_EQ(scalar_out.size(), simd_out.size()) << what;
  for (size_t i = 0; i < scalar_out.size(); ++i) {
    EXPECT_TRUE(scalar_out[i].Equals(simd_out[i]))
        << what << " output " << i << " differs between kernel configs";
  }
}

Tensor RandInput(Shape shape, uint64_t seed, float lo = -2.0f,
                 float hi = 2.0f) {
  Rng rng(seed);
  return Tensor::Rand(std::move(shape), &rng, lo, hi);
}

// Span shapes covering every remainder path: vector-aligned (64 is a
// multiple of all supported lane widths), odd tail (67 = 16*4 + 3),
// sub-vector (3), single element, and empty.
const std::vector<Shape>& SpanShapes() {
  static const std::vector<Shape> kShapes = {
      {64, 64}, {67}, {3}, {1}, {0}};
  return kShapes;
}

TEST(KernelParityTest, BinarySameShape) {
  for (const Shape& s : SpanShapes()) {
    const Tensor a = RandInput(s, 1);
    const Tensor b = RandInput(s, 2, 0.5f, 2.0f);  // nonzero for Div
    ExpectModeParity(
        [&] {
          return std::vector<Tensor>{Add(a, b),     Sub(a, b),
                                     Mul(a, b),     Div(a, b),
                                     Maximum(a, b), SquaredDiff(a, b)};
        },
        "binary same-shape");
  }
}

TEST(KernelParityTest, BinaryBroadcastFamily) {
  const Tensor x = RandInput({2, 3, 68}, 3);
  const Tensor tail = RandInput({68}, 4, 0.5f, 2.0f);
  const Tensor rowwise = RandInput({2, 3, 1}, 5, 0.5f, 2.0f);
  const Tensor middle = RandInput({2, 1, 68}, 6, 0.5f, 2.0f);
  const Tensor scalar = RandInput({}, 7, 0.5f, 2.0f);
  const Tensor odo = RandInput({1, 3, 1}, 8, 0.5f, 2.0f);  // generic walker
  ExpectModeParity(
      [&] {
        return std::vector<Tensor>{
            Add(x, tail),           Sub(tail, x),
            Mul(x, rowwise),        Div(rowwise, x),
            Add(x, middle),         Sub(middle, x),
            Mul(x, scalar),         Div(scalar, x),
            Maximum(x, tail),       SquaredDiff(x, rowwise),
            Add(x, odo),            SquaredDiff(x, middle),
        };
      },
      "binary broadcast");
}

TEST(KernelParityTest, ScalarAffineAndScaledDiff) {
  for (const Shape& s : SpanShapes()) {
    const Tensor a = RandInput(s, 9);
    const Tensor b = RandInput(s, 10);
    ExpectModeParity(
        [&] {
          return std::vector<Tensor>{AddScalar(a, 0.37f), MulScalar(a, -1.7f),
                                     ScaledDiff(a, b, 0.625f)};
        },
        "scalar affine");
  }
}

TEST(KernelParityTest, UnarySpans) {
  for (const Shape& s : SpanShapes()) {
    const Tensor x = RandInput(s, 11);
    const Tensor pos = RandInput(s, 12, 0.1f, 4.0f);  // for Sqrt
    ExpectModeParity(
        [&] {
          return std::vector<Tensor>{Neg(x),       Abs(x),
                                     Square(x),    Sqrt(pos),
                                     Relu(x),      Exp(x),
                                     Tanh(x),      Sigmoid(x),
                                     Gelu(x),      LeakyRelu(x, 0.2f)};
        },
        "unary spans");
  }
}

TEST(KernelParityTest, TranscendentalEdgeValues) {
  // Exact-value anchors the poly implementations must hit in both configs,
  // plus saturation ranges (large |x|) where the exp clamp engages.
  Tensor x({7});
  const float vals[] = {0.0f, -0.0f, 1.0f, -30.0f, 30.0f, 88.0f, -95.0f};
  for (int i = 0; i < 7; ++i) x[i] = vals[i];
  ExpectModeParity(
      [&] {
        return std::vector<Tensor>{Exp(x), Tanh(x), Sigmoid(x), Gelu(x)};
      },
      "transcendental edges");
  EXPECT_EQ(Exp(x)[0], 1.0f);       // exp(0) exact
  EXPECT_EQ(Sigmoid(x)[0], 0.5f);   // sigmoid(0) exact
  EXPECT_EQ(Tanh(x)[0], 0.0f);      // tanh(0) exact
  EXPECT_EQ(Tanh(x)[4], 1.0f);      // saturates cleanly, not NaN
  EXPECT_EQ(Tanh(x)[5], 1.0f);      // beyond the exp clamp
  EXPECT_EQ(Tanh(x)[6], -1.0f);
}

TEST(KernelParityTest, FusedRowKernels) {
  // Row lengths spanning full-vector, tail, sub-vector, and size-1 rows.
  for (int64_t n : {64, 41, 3, 1}) {
    const Tensor x = RandInput({5, n}, 13);
    const Tensor gain = RandInput({n}, 14, 0.5f, 1.5f);
    const Tensor bias = RandInput({n}, 15);
    ExpectModeParity(
        [&] {
          return std::vector<Tensor>{
              SoftmaxLastDim(x), LayerNormLastDim(x, 1e-5f),
              LayerNormAffineLastDim(x, gain, bias, 1e-5f)};
        },
        "fused rows");
  }
}

TEST(KernelParityTest, MatMulShapes) {
  // (k, n) pairs covering 4-vector blocks, single-vector blocks, scalar
  // column tails, the 4-way p-group remainder, and the packed path
  // (b 2-d, n >= panel width, enough rows).
  const struct {
    int64_t m, k, n;
  } cases[] = {{5, 16, 64}, {5, 7, 33}, {3, 5, 3}, {1, 1, 1}, {4, 33, 67}};
  for (const auto& c : cases) {
    const Tensor a = RandInput({c.m, c.k}, 16);
    const Tensor b = RandInput({c.k, c.n}, 17);
    const Tensor ab = RandInput({3, c.m, c.k}, 18);  // batched, packed path
    ExpectModeParity(
        [&] {
          return std::vector<Tensor>{MatMul(a, b), MatMul(ab, b)};
        },
        "matmul");
  }
}

TEST(KernelParityTest, MatMulMatchesHistoricalOrderReference) {
  // The pre-kernel-layer accumulation order, element by element: ascending p
  // in groups of four chained (((acc+a0*b0)+a1*b1)+a2*b2)+a3*b3 with
  // all-zero groups skipped, then an ascending scalar tail. Both configs —
  // including the packed-B path — must reproduce it bit-for-bit.
  const int64_t m = 6, k = 37, n = 70;  // n >= panel width => packed path
  Tensor a = RandInput({m, k}, 19);
  const Tensor b = RandInput({k, n}, 20);
  for (int64_t i = 0; i < m * k; i += 5) a[i] = 0.0f;  // exercise zero-skip
  Tensor want({m, n});
  for (int64_t r = 0; r < m; ++r) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      int64_t p = 0;
      for (; p + 3 < k; p += 4) {
        const float a0 = a[r * k + p], a1 = a[r * k + p + 1];
        const float a2 = a[r * k + p + 2], a3 = a[r * k + p + 3];
        if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
        acc = acc + a0 * b[p * n + j];
        acc = acc + a1 * b[(p + 1) * n + j];
        acc = acc + a2 * b[(p + 2) * n + j];
        acc = acc + a3 * b[(p + 3) * n + j];
      }
      for (; p < k; ++p) {
        if (a[r * k + p] == 0.0f) continue;
        acc = acc + a[r * k + p] * b[p * n + j];
      }
      want[r * n + j] = acc;
    }
  }
  for (auto mode :
       {kernels::KernelMode::kScalar, kernels::KernelMode::kSimd}) {
    KernelModeScope scope(mode);
    EXPECT_TRUE(MatMul(a, b).Equals(want))
        << "mode " << static_cast<int>(mode);
  }
}

TEST(KernelParityTest, FusedEqualsUnfusedChains) {
  // Contract identities, checked in both configs: the fused ops replace
  // their unfused chains bit-for-bit at existing call sites.
  for (auto mode :
       {kernels::KernelMode::kScalar, kernels::KernelMode::kSimd}) {
    KernelModeScope scope(mode);
    const Tensor a = RandInput({4, 7, 35}, 21);
    const Tensor b = RandInput({4, 7, 35}, 22);
    const Tensor rowwise = RandInput({4, 7, 1}, 23);
    EXPECT_TRUE(SquaredDiff(a, b).Equals(Square(Sub(a, b))));
    EXPECT_TRUE(SquaredDiff(a, rowwise).Equals(Square(Sub(a, rowwise))));
    EXPECT_EQ(MseAll(a, b), MeanAll(Square(Sub(a, b))));

    const Tensor gain = RandInput({35}, 24, 0.5f, 1.5f);
    const Tensor bias = RandInput({35}, 25);
    const Tensor composed =
        Add(Mul(LayerNormLastDim(a, 1e-5f), gain), bias);
    EXPECT_TRUE(LayerNormAffineLastDim(a, gain, bias, 1e-5f).Equals(composed));
  }
}

TEST(KernelParityTest, BackwardClosuresMatchAcrossConfigs) {
  const Tensor xv = RandInput({6, 29}, 26);
  const Tensor tv = RandInput({6, 29}, 27);
  const Tensor gv = RandInput({29}, 28, 0.5f, 1.5f);
  const Tensor bv = RandInput({29}, 29);
  ExpectModeParity(
      [&] {
        Variable x(xv, /*requires_grad=*/true);
        Variable gain(gv, /*requires_grad=*/true);
        Variable bias(bv, /*requires_grad=*/true);
        Variable h = ag::LayerNormAffine(x, gain, bias, 1e-5f);
        h = ag::SoftmaxLastDim(h);
        Variable t(tv, /*requires_grad=*/true);
        Variable loss = ag::MseLossVar(ag::SquaredDiff(h, t), t);
        loss.Backward();
        return std::vector<Tensor>{loss.value(), x.grad(), gain.grad(),
                                   bias.grad(), t.grad()};
      },
      "fused backward");
}

TEST(KernelParityTest, SquaredDiffGradCheck) {
  Rng rng(0xACC);
  const auto result = CheckGradients(
      [](const std::vector<Variable>& in) {
        return ag::MeanAll(ag::SquaredDiff(in[0], in[1]));
      },
      {Tensor::Rand({5, 6}, &rng, -1.0f, 1.0f),
       Tensor::Rand({5, 6}, &rng, -1.0f, 1.0f)});
  EXPECT_TRUE(result.ok) << result.detail;
  // Broadcasting variant: [5,6] against [6].
  const auto bcast = CheckGradients(
      [](const std::vector<Variable>& in) {
        return ag::MeanAll(ag::SquaredDiff(in[0], in[1]));
      },
      {Tensor::Rand({5, 6}, &rng, -1.0f, 1.0f),
       Tensor::Rand({6}, &rng, -1.0f, 1.0f)});
  EXPECT_TRUE(bcast.ok) << bcast.detail;
}

TEST(KernelParityTest, LayerNormAffineGradCheck) {
  Rng rng(0xA11);
  const auto result = CheckGradients(
      [](const std::vector<Variable>& in) {
        return ag::MeanAll(
            ag::Square(ag::LayerNormAffine(in[0], in[1], in[2], 1e-5f)));
      },
      {Tensor::Rand({4, 7}, &rng, -1.0f, 1.0f),
       Tensor::Rand({7}, &rng, 0.5f, 1.5f),
       Tensor::Rand({7}, &rng, -0.5f, 0.5f)});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(KernelParityTest, MseLossMatchesUnfusedChain) {
  // Forward value and pred-gradient of the fused MseLoss equal the unfused
  // MeanAll(Square(Sub(..))) graph exactly, in both configs.
  for (auto mode :
       {kernels::KernelMode::kScalar, kernels::KernelMode::kSimd}) {
    KernelModeScope scope(mode);
    const Tensor pv = RandInput({8, 13}, 30);
    const Tensor tv = RandInput({8, 13}, 31);
    Variable fused_p(pv, /*requires_grad=*/true);
    Variable fused = ag::MseLoss(fused_p, tv);
    fused.Backward();
    Variable unfused_p(pv, /*requires_grad=*/true);
    Variable unfused =
        ag::MeanAll(ag::Square(ag::Sub(unfused_p, Variable(tv))));
    unfused.Backward();
    EXPECT_TRUE(fused.value().Equals(unfused.value()));
    EXPECT_TRUE(fused_p.grad().Equals(unfused_p.grad()));
  }
}

TEST(KernelParityTest, KernelConfigIntrospection) {
  EXPECT_GE(kernels::KernelLanes(), 4);
  const std::string isa = kernels::KernelIsaName();
  EXPECT_TRUE(isa == "avx2" || isa == "sse2" || isa == "neon" ||
              isa == "generic");
  {
    KernelModeScope scope(kernels::KernelMode::kScalar);
    EXPECT_STREQ(kernels::KernelModeName(), "scalar");
  }
  {
    KernelModeScope scope(kernels::KernelMode::kSimd);
    EXPECT_STREQ(kernels::KernelModeName(), "simd");
  }
}

}  // namespace
}  // namespace tranad
