#ifndef TRANAD_BASELINES_CAE_M_H_
#define TRANAD_BASELINES_CAE_M_H_

#include <memory>

#include "baselines/common.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "nn/rnn.h"

namespace tranad {

/// CAE-M (Zhang et al., TKDE'21): a convolutional autoencoding memory
/// network — a CNN encodes each window, bidirectional LSTMs capture
/// long-term temporal structure, and a decoder reconstructs the window;
/// the per-dimension reconstruction error is the anomaly score. Matches the
/// paper's characterisation as one of the most computation-heavy baselines
/// (conv + two LSTM passes per window).
class CaeMDetector : public WindowedDetector {
 public:
  explicit CaeMDetector(int64_t window = 10, int64_t epochs = 5,
                        int64_t hidden = 32, uint64_t seed = 17);

 protected:
  void BuildModel(int64_t dims) override;
  double TrainBatch(const Tensor& batch, double progress) override;
  Tensor ScoreBatch(const Tensor& batch) override;

 private:
  Variable Reconstruct(const Variable& seq) const;  // [B,K,m] -> [B,K,m]
  Variable BiLstm(const Variable& seq) const;       // [B,K,c] -> [B,K,2h]

  int64_t hidden_;
  uint64_t seed_;
  std::unique_ptr<nn::Conv1d> conv1_, conv2_;
  std::unique_ptr<nn::LstmCell> fwd_, bwd_;
  std::unique_ptr<nn::Linear> out_;
  std::unique_ptr<nn::Adam> opt_;
};

}  // namespace tranad

#endif  // TRANAD_BASELINES_CAE_M_H_
