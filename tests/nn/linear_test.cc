#include "nn/linear.h"

#include <gtest/gtest.h>

#include "nn/init.h"
#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad::nn {
namespace {

TEST(LinearTest, OutputShape2D) {
  Rng rng(1);
  Linear layer(4, 3, &rng);
  Variable y = layer.Forward(Variable(Tensor::Ones({5, 4})));
  EXPECT_EQ(y.shape(), Shape({5, 3}));
}

TEST(LinearTest, OutputShape3D) {
  Rng rng(1);
  Linear layer(4, 6, &rng);
  Variable y = layer.Forward(Variable(Tensor::Ones({2, 7, 4})));
  EXPECT_EQ(y.shape(), Shape({2, 7, 6}));
}

TEST(LinearTest, ZeroBiasInit) {
  Rng rng(2);
  Linear layer(3, 2, &rng);
  // y(0) = b = 0 at init.
  Variable y = layer.Forward(Variable(Tensor::Zeros({1, 3})));
  EXPECT_FLOAT_EQ(y.value()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.value()[1], 0.0f);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(3);
  Linear layer(3, 2, &rng, /*bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
}

TEST(LinearTest, ParametersRegistered) {
  Rng rng(4);
  Linear layer(3, 2, &rng);
  const auto params = layer.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].shape(), Shape({3, 2}));
  EXPECT_EQ(params[1].shape(), Shape({2}));
}

TEST(LinearTest, GradientsFlowToWeights) {
  Rng rng(5);
  Linear layer(3, 2, &rng);
  Variable y = layer.Forward(Variable(Tensor::Ones({4, 3})));
  ag::SumAll(y).Backward();
  const auto params = layer.Parameters();
  // dL/dW = sum over batch of x = 4 per entry; dL/db = 4.
  EXPECT_FLOAT_EQ(params[0].grad()[0], 4.0f);
  EXPECT_FLOAT_EQ(params[1].grad()[0], 4.0f);
}

TEST(LinearTest, LinearityProperty) {
  Rng rng(6);
  Linear layer(3, 3, &rng, /*bias=*/false);
  Tensor x({1, 3}, {1.0f, -2.0f, 0.5f});
  Variable y1 = layer.Forward(Variable(x));
  Variable y2 = layer.Forward(Variable(tranad::MulScalar(x, 2.0f)));
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(y2.value()[i], 2.0f * y1.value()[i], 1e-5);
  }
}

TEST(LinearTest, WrongInputDimDies) {
  Rng rng(7);
  Linear layer(3, 2, &rng);
  EXPECT_DEATH(layer.Forward(Variable(Tensor::Ones({1, 4}))), "CHECK");
}

TEST(XavierInitTest, BoundsRespectFanInOut) {
  Rng rng(8);
  Tensor w = XavierUniform(100, 100, &rng);
  const float bound = std::sqrt(6.0f / 200.0f);
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::fabs(w[i]), bound);
  }
}

TEST(KaimingInitTest, VarianceScale) {
  Rng rng(9);
  Tensor w = KaimingNormal(200, 50, &rng);
  double sum_sq = 0.0;
  for (int64_t i = 0; i < w.numel(); ++i) sum_sq += w[i] * w[i];
  EXPECT_NEAR(sum_sq / w.numel(), 2.0 / 200.0, 2e-3);
}

}  // namespace
}  // namespace tranad::nn
