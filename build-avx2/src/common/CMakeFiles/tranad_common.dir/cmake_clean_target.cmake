file(REMOVE_RECURSE
  "libtranad_common.a"
)
