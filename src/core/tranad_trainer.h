#ifndef TRANAD_CORE_TRANAD_TRAINER_H_
#define TRANAD_CORE_TRANAD_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/tranad_model.h"

namespace tranad {

/// Training hyperparameters (§4: AdamW, lr 0.01, meta lr 0.02, step
/// scheduler with factor 0.5; early stopping on the 80:20 validation
/// split). `epsilon` is the evolutionary weight base of Eq. (10) — a value
/// slightly above one so the adversarial weight 1 - epsilon^-n ramps up as
/// reconstructions stabilize.
struct TrainOptions {
  int64_t max_epochs = 10;
  int64_t batch_size = 32;
  float lr = 0.01f;
  float meta_lr = 0.02f;
  int64_t lr_step_epochs = 5;
  float lr_gamma = 0.5f;
  float epsilon = 1.25f;
  float grad_clip = 5.0f;
  double val_fraction = 0.2;
  int64_t early_stop_patience = 2;
  bool verbose = false;

  /// Crash-safe training checkpoints: when `checkpoint_path` is non-empty
  /// and `checkpoint_every` > 0, the full training state (model, optimizer
  /// moments, scheduler, RNG, early-stop bookkeeping) is written atomically
  /// every that many epochs. With `resume` set, an existing readable
  /// checkpoint at that path restarts training at the next epoch — and the
  /// resumed run is bitwise-identical to an uninterrupted one.
  std::string checkpoint_path;
  int64_t checkpoint_every = 0;
  bool resume = true;
};

/// Per-run training statistics (Table 5 consumes seconds_per_epoch).
struct TrainStats {
  std::vector<double> train_losses;
  std::vector<double> val_losses;
  double seconds_per_epoch = 0.0;
  int64_t epochs_run = 0;
  /// Batches whose loss or gradient norm went non-finite and whose
  /// optimizer step was therefore skipped (NaN-poisoning guard).
  int64_t skipped_non_finite = 0;
};

/// Offline two-phase adversarial training of Alg. 1 over precomputed
/// windows [N, K, m] (already normalized). Implements:
///  - evolving loss weights eps^-n (Eq. 10),
///  - gradient routing of the min-max objective (L1 updates encoder +
///    decoder1, L2 updates encoder + decoder2, with the adversarial term
///    entering L2 negatively),
///  - a first-order MAML step on a random batch at the end of each epoch
///    (Alg. 1 line 11, Eq. 11-12),
///  - StepLR scheduling and validation-loss early stopping.
TrainStats TrainTranAD(TranADModel* model, const Tensor& windows,
                       const TrainOptions& options);

}  // namespace tranad

#endif  // TRANAD_CORE_TRANAD_TRAINER_H_
