#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/online_detector.h"
#include "core/pipeline.h"
#include "data/synthetic.h"
#include "serve/serve_engine.h"

namespace tranad::serve {
namespace {

using failpoint::Action;
using failpoint::Schedule;
using failpoint::ScopedFailpoint;

// Chaos suite: every test arms a deterministic fault schedule against the
// serving pipeline and asserts the two invariants that define resilience —
// the engine always terminates (Flush/Stop return), and every admitted
// observation completes its callback exactly once with a definite status.
class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = SmapConfig(0.2);
    config.anomaly_magnitude = 1.6;
    for (uint64_t s = 0; s < 2; ++s) {
      config.seed = 77 + s;
      datasets_->push_back(GenerateSynthetic(config));
    }
    TranADConfig model_config;
    model_config.window = 8;
    model_config.d_ff = 16;
    TrainOptions train;
    train.max_epochs = 2;
    detector_ = new TranADDetector(model_config, train);
    detector_->Fit((*datasets_)[0].train);
  }

  static void TearDownTestSuite() {
    delete detector_;
    detector_ = nullptr;
    datasets_->clear();
  }

  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }

  static Tensor Observation(const TimeSeries& series, int64_t t) {
    Tensor row({series.dims()});
    for (int64_t d = 0; d < series.dims(); ++d) {
      row[d] = series.values.At({t, d});
    }
    return row;
  }

  struct RecordedVerdict {
    int64_t seq = 0;
    OnlineVerdict verdict;
  };

  /// Thread-safe per-stream verdict log; counts total deliveries so
  /// exactly-once can be asserted even across failure completions.
  struct VerdictLog {
    std::mutex mu;
    std::map<StreamId, std::vector<RecordedVerdict>> by_stream;
    std::atomic<int64_t> total{0};

    VerdictCallback Callback() {
      return [this](StreamId stream, int64_t seq, const OnlineVerdict& v) {
        std::lock_guard<std::mutex> lock(mu);
        by_stream[stream].push_back({seq, v});
        total.fetch_add(1, std::memory_order_relaxed);
      };
    }
  };

  static TranADDetector* detector_;
  static std::vector<Dataset>* datasets_;
};

TranADDetector* ChaosTest::detector_ = nullptr;
std::vector<Dataset>* ChaosTest::datasets_ = new std::vector<Dataset>();

// A worker that keeps stalling (delay schedule) slows the pipeline but must
// not change a single bit of the verdict stream: scores, thresholds and
// flags still match the sequential reference exactly.
TEST_F(ChaosTest, WorkerDelaysDoNotChangeVerdicts) {
  const int64_t steps = 20;
  const PotParams pot = PotParamsForDataset("SMAP");

  OnlineTranAD online(detector_, pot);
  online.Calibrate((*datasets_)[0].train);
  std::vector<OnlineVerdict> expected;
  for (int64_t t = 0; t < steps; ++t) {
    expected.push_back(online.Observe(Observation((*datasets_)[0].test, t)));
  }

  ScopedFailpoint stall("serve.worker.score", Action::Delay(2000),
                        Schedule::EveryK(3));
  ServeOptions options;
  options.num_workers = 2;
  options.max_batch = 4;
  options.pot = pot;
  ServeEngine engine(detector_, options);
  auto created = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(created.ok());

  VerdictLog log;
  for (int64_t t = 0; t < steps; ++t) {
    Status st = Status::Ok();
    do {
      st = engine.Submit(created.value(), Observation((*datasets_)[0].test, t),
                         log.Callback());
    } while (st.code() == StatusCode::kResourceExhausted);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  engine.Flush();

  EXPECT_GT(failpoint::FireCount("serve.worker.score"), 0);
  const auto& got = log.by_stream[created.value()];
  ASSERT_EQ(got.size(), static_cast<size_t>(steps));
  for (int64_t t = 0; t < steps; ++t) {
    const auto& g = got[static_cast<size_t>(t)].verdict;
    const auto& e = expected[static_cast<size_t>(t)];
    ASSERT_TRUE(g.status.ok());
    ASSERT_EQ(g.score, e.score) << "t=" << t;
    ASSERT_EQ(g.threshold, e.threshold) << "t=" << t;
    ASSERT_EQ(g.anomalous, e.anomalous) << "t=" << t;
  }
}

// An injected scoring fault fails its whole micro-batch with the injected
// status; other batches keep scoring, nothing hangs, and every submission
// still gets exactly one callback.
TEST_F(ChaosTest, WorkerFaultFailsBatchAndPipelineContinues) {
  ScopedFailpoint fault("serve.worker.score",
                        Action::Error(StatusCode::kInternal),
                        Schedule::OnHit(2));
  ServeOptions options;
  options.num_workers = 1;  // deterministic batch -> hit mapping
  options.max_batch = 1;
  options.max_wait_us = 0;
  ServeEngine engine(detector_, options);
  auto created = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(created.ok());

  VerdictLog log;
  const int64_t n = 5;
  for (int64_t t = 0; t < n; ++t) {
    Status st = Status::Ok();
    do {
      st = engine.Submit(created.value(), Observation((*datasets_)[0].test, t),
                         log.Callback());
    } while (st.code() == StatusCode::kResourceExhausted);
    ASSERT_TRUE(st.ok());
  }
  engine.Flush();

  const auto& got = log.by_stream[created.value()];
  ASSERT_EQ(got.size(), static_cast<size_t>(n)) << "a callback was dropped";
  int64_t failed = 0;
  for (const auto& r : got) {
    if (!r.verdict.status.ok()) {
      ++failed;
      EXPECT_EQ(r.verdict.status.code(), StatusCode::kInternal);
      EXPECT_NE(r.verdict.status.message().find("injected failure"),
                std::string::npos);
    }
  }
  EXPECT_EQ(failed, 1);  // exactly the 2nd batch
  const ServeStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.completed, n - 1);
}

// A submission that outlives its deadline while queued completes with
// DeadlineExceeded, never reaches a worker, and never touches POT state.
TEST_F(ChaosTest, DeadlineExpiryCompletesWithDeadlineExceeded) {
  // The batcher sleeps 30ms after picking up each batch; a 5ms deadline is
  // guaranteed to have passed by the time the expiry sweep runs.
  ScopedFailpoint stall("serve.batcher.wakeup", Action::Delay(30000));
  ServeOptions options;
  options.num_workers = 1;
  options.deadline_us = 5000;
  ServeEngine engine(detector_, options);
  auto created = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(created.ok());

  VerdictLog log;
  const int64_t n = 4;
  for (int64_t t = 0; t < n; ++t) {
    ASSERT_TRUE(engine
                    .Submit(created.value(),
                            Observation((*datasets_)[0].test, t),
                            log.Callback())
                    .ok());
  }
  engine.Flush();

  const auto& got = log.by_stream[created.value()];
  ASSERT_EQ(got.size(), static_cast<size_t>(n));
  for (const auto& r : got) {
    EXPECT_EQ(r.verdict.status.code(), StatusCode::kDeadlineExceeded);
  }
  const ServeStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.deadline_expired, n);
  EXPECT_EQ(stats.failed, n);
  EXPECT_EQ(stats.completed, 0);
}

// Under kShedOldest a full queue evicts the oldest queued submission with
// Unavailable instead of refusing the newest: Submit never reports
// ResourceExhausted, and admitted = completed + shed exactly.
TEST_F(ChaosTest, ShedOldestEvictsUnderOverload) {
  // Each scoring pass stalls 5ms so the tiny queue stays saturated.
  ScopedFailpoint stall("serve.worker.score", Action::Delay(5000));
  ServeOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  options.max_batch = 1;
  options.max_wait_us = 0;
  options.shed_policy = ShedPolicy::kShedOldest;
  ServeEngine engine(detector_, options);
  auto created = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(created.ok());

  VerdictLog log;
  const int64_t n = 40;
  for (int64_t t = 0; t < n; ++t) {
    const Status st = engine.Submit(
        created.value(), Observation((*datasets_)[0].test, 0), log.Callback());
    ASSERT_TRUE(st.ok()) << "shed-oldest must always admit: " << st.ToString();
  }
  engine.Flush();

  EXPECT_EQ(log.total.load(), n) << "a callback was dropped or duplicated";
  int64_t shed = 0;
  for (const auto& r : log.by_stream[created.value()]) {
    if (!r.verdict.status.ok()) {
      ASSERT_EQ(r.verdict.status.code(), StatusCode::kUnavailable);
      ++shed;
    }
  }
  EXPECT_GT(shed, 0) << "queue of 2 absorbed 40 instant submissions";
  const ServeStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.submitted, n);
  EXPECT_EQ(stats.completed + stats.failed, n);
  EXPECT_EQ(stats.rejected, 0);
}

// A stream feeding NaN/Inf gets its observations rejected at admission and
// is quarantined after the configured streak — while a sibling stream's
// verdicts stay bit-for-bit identical to a run where the poisoned stream
// never existed. Release lifts the quarantine with no state damage.
TEST_F(ChaosTest, QuarantineIsolatesPoisonedStream) {
  const int64_t steps = 12;
  const PotParams pot = PotParamsForDataset("SMAP");

  // Reference for the healthy stream: sequential, no sibling at all.
  OnlineTranAD online(detector_, pot);
  online.Calibrate((*datasets_)[1].train);
  std::vector<OnlineVerdict> expected;
  for (int64_t t = 0; t < steps; ++t) {
    expected.push_back(online.Observe(Observation((*datasets_)[1].test, t)));
  }

  ServeOptions options;
  options.num_workers = 2;
  options.pot = pot;
  options.quarantine_after = 3;
  ServeEngine engine(detector_, options);
  auto poisoned = engine.CreateStream((*datasets_)[0].train);
  auto healthy = engine.CreateStream((*datasets_)[1].train);
  ASSERT_TRUE(poisoned.ok());
  ASSERT_TRUE(healthy.ok());

  const int64_t m = detector_->model()->config().dims;
  Tensor nan_obs({m});
  for (int64_t d = 0; d < m; ++d) nan_obs[d] = 0.0f;
  nan_obs[m / 2] = std::numeric_limits<float>::quiet_NaN();

  VerdictLog log;
  for (int64_t t = 0; t < steps; ++t) {
    // Interleave: poison the first stream while the second serves normally.
    if (t < 3) {
      EXPECT_EQ(engine.Submit(poisoned.value(), nan_obs, log.Callback()).code(),
                StatusCode::kInvalidArgument);
    } else {
      EXPECT_EQ(engine.Submit(poisoned.value(), nan_obs, log.Callback()).code(),
                StatusCode::kFailedPrecondition)
          << "stream not quarantined after 3 consecutive non-finite";
    }
    Status st = Status::Ok();
    do {
      st = engine.Submit(healthy.value(), Observation((*datasets_)[1].test, t),
                         log.Callback());
    } while (st.code() == StatusCode::kResourceExhausted);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  engine.Flush();

  // The healthy sibling is bit-exact: the poisoned stream left no trace.
  const auto& got = log.by_stream[healthy.value()];
  ASSERT_EQ(got.size(), static_cast<size_t>(steps));
  for (int64_t t = 0; t < steps; ++t) {
    const auto& g = got[static_cast<size_t>(t)].verdict;
    const auto& e = expected[static_cast<size_t>(t)];
    ASSERT_EQ(g.score, e.score) << "t=" << t;
    ASSERT_EQ(g.threshold, e.threshold) << "t=" << t;
    ASSERT_EQ(g.anomalous, e.anomalous) << "t=" << t;
  }
  EXPECT_TRUE(log.by_stream[poisoned.value()].empty())
      << "rejected observations must not produce verdicts";

  const ServeStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.non_finite_rejected, 3);  // rejections before quarantine
  EXPECT_EQ(stats.quarantined_streams, 1);

  // Release: the stream scores again immediately (its ring/POT state was
  // never touched by the rejected junk).
  ASSERT_TRUE(engine.ReleaseQuarantine(poisoned.value()).ok());
  ASSERT_TRUE(engine
                  .Submit(poisoned.value(),
                          Observation((*datasets_)[0].test, 0), log.Callback())
                  .ok());
  engine.Flush();
  ASSERT_EQ(log.by_stream[poisoned.value()].size(), 1u);
  EXPECT_TRUE(log.by_stream[poisoned.value()][0].verdict.status.ok());
  EXPECT_EQ(engine.ReleaseQuarantine(12345).code(), StatusCode::kNotFound);
}

// An injected fault mid-swap rolls ReloadModel back: the engine keeps
// serving the OLD model bit-for-bit, and a later (clean) reload succeeds.
TEST_F(ChaosTest, ReloadRollsBackOnInjectedSwapFailure) {
  const PotParams pot = PotParamsForDataset("SMAP");
  // A different-weights checkpoint so success vs rollback is observable.
  TranADConfig config;
  config.window = 8;
  config.d_ff = 16;
  config.seed = 1234;
  TrainOptions quick;
  quick.max_epochs = 1;
  TranADDetector other(config, quick);
  other.Fit((*datasets_)[1].train);
  const std::string ckpt = ::testing::TempDir() + "/chaos_reload.ckpt";
  ASSERT_TRUE(other.SaveCheckpoint(ckpt).ok());

  // Sequential reference under the ORIGINAL model: three consecutive
  // observations. If the rollback works, the engine's first two verdicts
  // (before and after the failed reload) match this bit-for-bit; the third
  // (after a clean reload to different weights) must not.
  OnlineTranAD online(detector_, pot);
  online.Calibrate((*datasets_)[0].train);
  std::vector<OnlineVerdict> expected;
  for (int64_t t = 0; t < 3; ++t) {
    expected.push_back(online.Observe(Observation((*datasets_)[0].test, t)));
  }

  ServeOptions options;
  options.pot = pot;
  ServeEngine engine(detector_, options);
  auto created = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(created.ok());

  VerdictLog log;
  auto submit_one = [&](int64_t t) {
    Status st = Status::Ok();
    do {
      st = engine.Submit(created.value(), Observation((*datasets_)[0].test, t),
                         log.Callback());
    } while (st.code() == StatusCode::kResourceExhausted);
    ASSERT_TRUE(st.ok());
    engine.Flush();
  };

  submit_one(0);  // verdict under the original model
  {
    ScopedFailpoint fault("serve.reload.swap",
                          Action::Error(StatusCode::kInternal));
    const Status st = engine.ReloadModel(ckpt);
    EXPECT_EQ(st.code(), StatusCode::kInternal);
    EXPECT_NE(st.message().find("rolled back"), std::string::npos);
  }
  submit_one(1);  // must still be the original model, bit-for-bit

  const auto& got = log.by_stream[created.value()];
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].verdict.score, expected[0].score);
  EXPECT_EQ(got[1].verdict.score, expected[1].score)
      << "rollback left the engine half-swapped";

  // Fault disarmed: the same reload now commits and the weights change.
  ASSERT_TRUE(engine.ReloadModel(ckpt).ok());
  submit_one(2);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_NE(got[2].verdict.score, expected[2].score)
      << "clean reload after rollback did not take effect";

  const ServeStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.reload_failures, 1);
  EXPECT_EQ(stats.reloads, 1);
}

// A wedged batcher (long injected stall) must not hang the engine: the
// watchdog fails everything still in the submission queue with a
// diagnostic, Flush returns, and no callback is lost or duplicated.
TEST_F(ChaosTest, WatchdogUnwedgesStalledBatcher) {
  // First batch pickup stalls 300ms; the watchdog trips after 30ms of no
  // progress and drains the submissions stuck behind the stall.
  ScopedFailpoint stall("serve.batcher.wakeup", Action::Delay(300000),
                        Schedule::OnHit(1));
  ServeOptions options;
  options.num_workers = 1;
  options.max_batch = 1;
  options.max_wait_us = 0;
  options.watchdog_timeout_us = 30000;
  ServeEngine engine(detector_, options);
  auto created = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(created.ok());

  VerdictLog log;
  const int64_t n = 6;
  int64_t admitted = 0;
  for (int64_t t = 0; t < n; ++t) {
    if (engine
            .Submit(created.value(), Observation((*datasets_)[0].test, t),
                    log.Callback())
            .ok()) {
      ++admitted;
    }
  }
  engine.Flush();  // must return despite the 300ms wedge

  EXPECT_EQ(log.total.load(), admitted)
      << "watchdog dropped or duplicated a callback";
  int64_t watchdog_failed = 0;
  for (const auto& r : log.by_stream[created.value()]) {
    if (!r.verdict.status.ok()) {
      ASSERT_EQ(r.verdict.status.code(), StatusCode::kInternal);
      EXPECT_NE(r.verdict.status.message().find("watchdog"),
                std::string::npos);
      ++watchdog_failed;
    }
  }
  EXPECT_GT(watchdog_failed, 0) << "watchdog never fired";
  EXPECT_GE(engine.stats().watchdog_stalls, 1);
}

// CI matrix entry point: faults armed from the environment (exactly how the
// chaos CI job injects them) must leave the invariants intact — engine
// terminates, exactly one callback per admitted observation.
TEST_F(ChaosTest, EnvScheduleSoakTerminatesWithExactCallbacks) {
  const char* preset = std::getenv("TRANAD_FAILPOINTS");
  if (preset == nullptr || preset[0] == '\0') {
    // Standalone run: arm a representative mixed schedule ourselves.
    ::setenv("TRANAD_FAILPOINTS",
             "serve.worker.score=err:internal@13,29;"
             "serve.batcher.wakeup=delay:500@every7",
             1);
    ASSERT_TRUE(failpoint::ArmFromEnv().ok());
    ::unsetenv("TRANAD_FAILPOINTS");
  } else {
    ASSERT_TRUE(failpoint::ArmFromEnv().ok());
  }

  ServeOptions options;
  options.num_workers = 3;
  options.max_batch = 4;
  options.queue_capacity = 16;
  ServeEngine engine(detector_, options);
  auto created = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(created.ok());

  VerdictLog log;
  int64_t admitted = 0;
  for (int64_t t = 0; t < 120; ++t) {
    const Status st = engine.Submit(
        created.value(),
        Observation((*datasets_)[0].test, t % (*datasets_)[0].test.length()),
        log.Callback());
    if (st.ok()) ++admitted;
  }
  engine.Flush();
  engine.Stop();  // explicit stop after flush must also be clean

  EXPECT_EQ(log.total.load(), admitted);
  for (const auto& r : log.by_stream[created.value()]) {
    // Every completion has a definite status; injected failures carry the
    // injected code.
    if (!r.verdict.status.ok()) {
      EXPECT_EQ(r.verdict.status.code(), StatusCode::kInternal);
    }
  }
}

// Seeded soak: two deterministic-but-different schedules derived from small
// seeds; under both, the engine terminates and accounts for every callback.
TEST_F(ChaosTest, SeededScheduleSoak) {
  for (int seed = 1; seed <= 2; ++seed) {
    failpoint::DisarmAll();
    ASSERT_TRUE(
        failpoint::ArmFromSpec(
            "serve.worker.score=err:unavailable@" +
            std::to_string(7 + 3 * seed) +
            ";serve.batcher.wakeup=delay:" + std::to_string(500 * seed) +
            "@every" + std::to_string(3 + seed))
            .ok());

    ServeOptions options;
    options.num_workers = 2;
    options.max_batch = 3;
    ServeEngine engine(detector_, options);
    auto created = engine.CreateStream((*datasets_)[0].train);
    ASSERT_TRUE(created.ok());

    VerdictLog log;
    int64_t admitted = 0;
    for (int64_t t = 0; t < 60; ++t) {
      Status st = Status::Ok();
      do {
        st = engine.Submit(
            created.value(),
            Observation((*datasets_)[0].test,
                        t % (*datasets_)[0].test.length()),
            log.Callback());
      } while (st.code() == StatusCode::kResourceExhausted);
      ASSERT_TRUE(st.ok());
      ++admitted;
    }
    engine.Flush();
    EXPECT_EQ(log.total.load(), admitted) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tranad::serve
