#ifndef TRANAD_TENSOR_KERNELS_H_
#define TRANAD_TENSOR_KERNELS_H_

// Vectorized kernel layer sitting between tensor_ops/autograd_ops and the
// SIMD backends in simd.h. All functions operate on contiguous float spans
// or row-major row blocks; callers (tensor_ops.cc) own shape logic,
// broadcasting decomposition, and ParallelFor partitioning.
//
// Two kernel configs exist, selected once at startup from TRANAD_KERNEL
// (values: "simd" [default] | "scalar") or pinned via
// SetKernelModeForTesting. Both configs run the same templated kernels at
// the same vector width; the scalar config merely executes each lane with
// scalar arithmetic. Outputs are bit-for-bit identical between the two —
// see simd.h for why — so the knob exists for reproduction/debugging and
// perf attribution, never for correctness.
//
// Determinism: every kernel's result for element i depends only on its
// input fibers, never on span partitioning, so ParallelFor chunking across
// thread counts cannot change results. Row reductions (softmax/layernorm/
// backward dots) use a striped vector accumulator folded with a fixed
// halving tree plus an ordered scalar tail — deterministic for a fixed
// row length, identical in both configs.

#include <cstdint>

namespace tranad::kernels {

enum class KernelMode { kScalar, kSimd };

/// The active config. First call reads TRANAD_KERNEL; aborts via CHECK on
/// an unrecognized value.
KernelMode CurrentKernelMode();
/// Test hook: pin the mode (and re-resolve all dispatch tables).
void SetKernelModeForTesting(KernelMode mode);
/// "scalar" or "simd".
const char* KernelModeName();
/// Compile-time ISA behind the simd config: "avx2" | "sse2" | "neon" |
/// "generic".
const char* KernelIsaName();
/// Vector width in float lanes (identical for both configs).
int KernelLanes();

// --- elementwise spans -----------------------------------------------------

enum class BinOp { kAdd, kSub, kMul, kDiv, kMax, kSquaredDiff };
enum class UnOp {
  kNeg,
  kAbs,
  kSquare,
  kSqrt,
  kRelu,
  kExp,
  kTanh,
  kSigmoid,
  kGelu,
};

using BinSpanFn = void (*)(const float* a, const float* b, float* out,
                           int64_t n);
using BinSpanScalarFn = void (*)(const float* a, float b, float* out,
                                 int64_t n);
using UnSpanFn = void (*)(const float* a, float* out, int64_t n);

/// out[i] = op(a[i], b[i]).
BinSpanFn GetBinarySpan(BinOp op);
/// out[i] = op(a[i], s) — broadcast scalar on the right.
BinSpanScalarFn GetBinarySpanScalarRhs(BinOp op);
/// out[i] = op(s, a[i]) — broadcast scalar on the left.
BinSpanScalarFn GetBinarySpanScalarLhs(BinOp op);
/// out[i] = op(a[i]).
UnSpanFn GetUnarySpan(UnOp op);

/// out[i] = a[i] * scale + shift (used by MulScalar/AddScalar/affine maps).
void ScaleShiftSpan(const float* a, float scale, float shift, float* out,
                    int64_t n);
/// out[i] = a[i] > 0 ? a[i] : slope * a[i].
void LeakyReluSpan(const float* a, float slope, float* out, int64_t n);
/// out[i] = s * (a[i] - b[i]) (MSE backward: s = 2*g/n).
void ScaledDiffSpan(const float* a, const float* b, float s, float* out,
                    int64_t n);

// --- fused row kernels -----------------------------------------------------

/// Softmax over `rows` contiguous rows of length n, each row: shift by row
/// max, exp, normalize. Matches composing the unfused max/exp/sum/scale
/// steps with these kernels' reductions.
void SoftmaxRows(const float* x, float* out, int64_t rows, int64_t n);
/// Softmax backward: out = y * (g - dot(g, y)) per row.
void SoftmaxBackwardRows(const float* y, const float* g, float* out,
                         int64_t rows, int64_t n);

/// LayerNorm (no affine) over rows; writes 1/sqrt(var+eps) per row into
/// inv_std (may be null when the caller does not need it for backward).
void LayerNormRows(const float* x, float* out, float* inv_std, int64_t rows,
                   int64_t n, float eps);
/// Fused LayerNorm + affine: out = yhat * gain + bias where
/// yhat = (x - mean) * inv_std. Writes yhat (if non-null, for backward) and
/// inv_std (if non-null). Per-element arithmetic identical to composing
/// LayerNormRows then Mul then Add.
void LayerNormAffineRows(const float* x, const float* gain, const float* bias,
                         float* out, float* yhat, float* inv_std,
                         int64_t rows, int64_t n, float eps);
/// LayerNorm backward: dx = inv/n * (n*g - sum(g) - yhat*sum(g*yhat)).
void LayerNormBackwardRows(const float* yhat, const float* g,
                           const float* inv_std, float* out, int64_t rows,
                           int64_t n);
/// Affine-layernorm input gradient; folds the gain into g first
/// (gy = g * gain) then applies the plain layernorm backward.
void LayerNormAffineBackwardRows(const float* yhat, const float* g,
                                 const float* gain, const float* inv_std,
                                 float* out, int64_t rows, int64_t n);

/// sum_i (a[i]-b[i])^2 accumulated serially in double, in index order —
/// the deterministic full-reduction contract (same as SumAll). Fuses the
/// Sub+Square intermediates away but is intentionally NOT vectorized.
double SquaredDiffSumAll(const float* a, const float* b, int64_t n);

// --- matmul ----------------------------------------------------------------

/// One output row: out[j] = sum_p a[p] * b[p*n + j], accumulated in the
/// exact historical order (ascending p, 4-way unrolled sum chain with
/// all-zero-group skip). Vectorized across j; bit-identical to the
/// pre-kernel-layer scalar implementation.
void MatMulRowKernel(const float* a_row, const float* b, float* out,
                     int64_t k, int64_t n);

/// Panel width (in columns) used by PackB — a multiple of the vector width.
int64_t PackedPanelWidth();
/// Floats required for a packed image of b's full-panel region; columns
/// beyond the last full panel are left unpacked (computed direct from b).
int64_t NumPackedFloats(int64_t k, int64_t n);
/// Pack b's full NR-wide panels: panel-major, row-minor layout so the inner
/// product walks packed memory linearly. Pure data movement.
void PackB(const float* b, int64_t k, int64_t n, float* packed);
/// MatMulRowKernel against a packed image (full panels) + the original b
/// (tail columns). Same accumulation order as the direct kernel.
void MatMulRowPacked(const float* a_row, const float* packed, const float* b,
                     float* out, int64_t k, int64_t n);

}  // namespace tranad::kernels

#endif  // TRANAD_TENSOR_KERNELS_H_
