# Empty dependencies file for tranad_common.
# This may be replaced when dependencies are built.
