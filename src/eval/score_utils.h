#ifndef TRANAD_EVAL_SCORE_UTILS_H_
#define TRANAD_EVAL_SCORE_UTILS_H_

#include <vector>

#include "tensor/tensor.h"

namespace tranad {

/// Exponentially weighted moving average smoothing of an anomaly-score
/// series (the post-processing LSTM-NDT applies to its forecast errors
/// before thresholding): y_t = alpha x_t + (1 - alpha) y_{t-1}.
std::vector<double> EwmaSmooth(const std::vector<double>& scores,
                               double alpha);

/// Same smoothing applied per column of a [T, m] score tensor.
Tensor EwmaSmoothPerDim(const Tensor& scores, double alpha);

/// Per-dimension robust standardization of a [T, m] score tensor:
/// (s - median_d) / (IQR_d + eps). Puts heterogeneous dimensions' scores on
/// a common scale before the OR-aggregation of Eq. (14) — the calibration
/// GDN applies to its per-sensor deviations.
Tensor RobustStandardizePerDim(const Tensor& scores, float eps = 1e-6f);

/// Rolling maximum over a trailing window (widens short score spikes so a
/// threshold crossing marks the whole event).
std::vector<double> RollingMax(const std::vector<double>& scores,
                               int64_t window);

}  // namespace tranad

#endif  // TRANAD_EVAL_SCORE_UTILS_H_
