#ifndef TRANAD_BASELINES_REGISTRY_H_
#define TRANAD_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/detector.h"

namespace tranad {

/// Construction knobs shared by all detectors the registry can build.
struct DetectorOptions {
  int64_t window = 10;
  int64_t epochs = 5;
  uint64_t seed = 7;
};

/// Builds a detector by its paper-table name. Supported names:
/// "MERLIN", "LSTM-NDT", "DAGMM", "OmniAnomaly", "MSCRED", "MAD-GAN",
/// "USAD", "MTAD-GAT", "CAE-M", "GDN", "IsolationForest", "TranAD", and
/// the ablations "TranAD-w/o-transformer", "TranAD-w/o-self-cond",
/// "TranAD-w/o-adversarial", "TranAD-w/o-MAML".
Result<std::unique_ptr<AnomalyDetector>> CreateDetector(
    const std::string& name, const DetectorOptions& options = {});

/// The eleven methods of Tables 2-5, in the paper's row order
/// (TranAD last).
std::vector<std::string> PaperMethodNames();

/// TranAD plus its four ablations (Table 6 rows).
std::vector<std::string> AblationMethodNames();

}  // namespace tranad

#endif  // TRANAD_BASELINES_REGISTRY_H_
