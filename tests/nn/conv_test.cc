#include "nn/conv.h"

#include <gtest/gtest.h>

#include "tensor/autograd_ops.h"

namespace tranad::nn {
namespace {

TEST(Conv1dTest, ValidPaddingLength) {
  Rng rng(1);
  Conv1d conv(2, 4, 3, /*same_padding=*/false, &rng);
  Variable x(Tensor::Randn({2, 10, 2}, &rng));
  EXPECT_EQ(conv.Forward(x).shape(), Shape({2, 8, 4}));
}

TEST(Conv1dTest, SamePaddingKeepsLength) {
  Rng rng(2);
  Conv1d conv(2, 4, 3, /*same_padding=*/true, &rng);
  Variable x(Tensor::Randn({2, 10, 2}, &rng));
  EXPECT_EQ(conv.Forward(x).shape(), Shape({2, 10, 4}));
}

TEST(Conv1dTest, Kernel1IsPointwiseLinear) {
  Rng rng(3);
  Conv1d conv(3, 2, 1, false, &rng);
  Variable x(Tensor::Randn({1, 5, 3}, &rng));
  EXPECT_EQ(conv.Forward(x).shape(), Shape({1, 5, 2}));
}

TEST(Conv1dTest, TranslationEquivariance) {
  // A shifted input produces a shifted output (away from boundaries).
  Rng rng(4);
  Conv1d conv(1, 1, 3, false, &rng);
  Tensor x({1, 12, 1});
  for (int64_t t = 0; t < 12; ++t) {
    x.At({0, t, 0}) = static_cast<float>(std::sin(0.7 * t));
  }
  Tensor shifted({1, 12, 1});
  for (int64_t t = 1; t < 12; ++t) {
    shifted.At({0, t, 0}) = x.At({0, t - 1, 0});
  }
  shifted.At({0, 0, 0}) = 0.0f;
  const Tensor y = conv.Forward(Variable(x)).value();        // [1, 10, 1]
  const Tensor ys = conv.Forward(Variable(shifted)).value();  // [1, 10, 1]
  for (int64_t t = 1; t < 10; ++t) {
    EXPECT_NEAR(ys.At({0, t, 0}), y.At({0, t - 1, 0}), 1e-5);
  }
}

TEST(Conv1dTest, KnownKernelComputesMovingSum) {
  Rng rng(5);
  Conv1d conv(1, 1, 2, false, &rng);
  // Force weights to [1, 1] and bias 0: output = x_t + x_{t+1}.
  auto params = conv.Parameters();
  params[0].mutable_value()->Fill(1.0f);  // weight [2, 1]
  params[1].mutable_value()->Fill(0.0f);  // bias
  Tensor x({1, 4, 1}, {1, 2, 3, 4});
  const Tensor y = conv.Forward(Variable(x)).value();
  EXPECT_FLOAT_EQ(y.At({0, 0, 0}), 3.0f);
  EXPECT_FLOAT_EQ(y.At({0, 1, 0}), 5.0f);
  EXPECT_FLOAT_EQ(y.At({0, 2, 0}), 7.0f);
}

TEST(Conv1dTest, GradientsFlow) {
  Rng rng(6);
  Conv1d conv(2, 3, 3, true, &rng);
  Variable x(Tensor::Randn({1, 6, 2}, &rng), true);
  ag::SumAll(conv.Forward(x)).Backward();
  double norm = 0.0;
  for (int64_t i = 0; i < x.grad().numel(); ++i) {
    norm += std::fabs(x.grad()[i]);
  }
  EXPECT_GT(norm, 0.0);
}

TEST(Conv1dTest, WrongChannelsDies) {
  Rng rng(7);
  Conv1d conv(2, 3, 3, true, &rng);
  EXPECT_DEATH(conv.Forward(Variable(Tensor::Ones({1, 5, 4}))), "CHECK");
}

}  // namespace
}  // namespace tranad::nn
