#include "eval/critdiff.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace tranad {

double RegularizedGammaP(double a, double x) {
  TRANAD_CHECK_GT(a, 0.0);
  if (x <= 0.0) return 0.0;
  if (x < a + 1.0) {
    // Series expansion.
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-14) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
  }
  // Continued fraction for Q(a, x), then P = 1 - Q.
  double b = x + 1.0 - a;
  double c = 1e300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-14) break;
  }
  const double q = std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
  return 1.0 - q;
}

double ChiSquareSf(double x, int k) {
  if (x <= 0.0) return 1.0;
  return 1.0 - RegularizedGammaP(0.5 * k, 0.5 * x);
}

namespace {

// Ranks a row of scores descending (rank 1 = largest), ties averaged.
std::vector<double> RankDescending(const std::vector<double>& row) {
  const size_t n = row.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return row[a] > row[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && row[order[j + 1]] == row[order[i]]) ++j;
    const double avg = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double NormalSf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

}  // namespace

FriedmanResult FriedmanTest(const std::vector<std::vector<double>>& scores) {
  TRANAD_CHECK(!scores.empty());
  const size_t k = scores.size();           // methods
  const size_t n = scores.front().size();   // datasets
  for (const auto& row : scores) TRANAD_CHECK_EQ(row.size(), n);
  FriedmanResult out;
  out.avg_ranks.assign(k, 0.0);
  for (size_t j = 0; j < n; ++j) {
    std::vector<double> column(k);
    for (size_t i = 0; i < k; ++i) column[i] = scores[i][j];
    const auto ranks = RankDescending(column);
    for (size_t i = 0; i < k; ++i) out.avg_ranks[i] += ranks[i];
  }
  for (auto& r : out.avg_ranks) r /= static_cast<double>(n);

  double sum_sq = 0.0;
  const double mean_rank = (static_cast<double>(k) + 1.0) / 2.0;
  for (double r : out.avg_ranks) {
    sum_sq += (r - mean_rank) * (r - mean_rank);
  }
  out.statistic = 12.0 * static_cast<double>(n) /
                  (static_cast<double>(k) * (static_cast<double>(k) + 1.0)) *
                  sum_sq;
  out.p_value = ChiSquareSf(out.statistic, static_cast<int>(k) - 1);
  return out;
}

double WilcoxonSignedRankP(const std::vector<double>& a,
                           const std::vector<double>& b) {
  TRANAD_CHECK_EQ(a.size(), b.size());
  std::vector<double> diffs;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d != 0.0) diffs.push_back(d);
  }
  const size_t n = diffs.size();
  if (n == 0) return 1.0;
  // Rank |d|, ties averaged.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return std::fabs(diffs[x]) < std::fabs(diffs[y]);
  });
  std::vector<double> rank(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n &&
           std::fabs(diffs[order[j + 1]]) == std::fabs(diffs[order[i]])) {
      ++j;
    }
    const double avg = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = avg;
    i = j + 1;
  }
  double w_plus = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (diffs[k] > 0.0) w_plus += rank[k];
  }
  const double mean = static_cast<double>(n) * (n + 1) / 4.0;
  const double sd =
      std::sqrt(static_cast<double>(n) * (n + 1) * (2.0 * n + 1) / 24.0);
  if (sd == 0.0) return 1.0;
  const double z = (w_plus - mean - (w_plus > mean ? 0.5 : -0.5)) / sd;
  return 2.0 * NormalSf(std::fabs(z));
}

CritDiffResult CriticalDifference(
    const std::vector<std::string>& methods,
    const std::vector<std::vector<double>>& scores, double alpha) {
  TRANAD_CHECK_EQ(methods.size(), scores.size());
  CritDiffResult out;
  out.friedman = FriedmanTest(scores);
  const size_t k = methods.size();

  // Entries sorted by average rank (best first).
  std::vector<size_t> order(k);
  for (size_t i = 0; i < k; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return out.friedman.avg_ranks[a] < out.friedman.avg_ranks[b];
  });
  for (size_t i = 0; i < k; ++i) {
    CritDiffEntry e;
    e.method = methods[order[i]];
    e.avg_rank = out.friedman.avg_ranks[order[i]];
    out.entries.push_back(std::move(e));
  }

  // Pairwise non-significance matrix in sorted order.
  std::vector<std::vector<bool>> ns(k, std::vector<bool>(k, false));
  for (size_t i = 0; i < k; ++i) {
    ns[i][i] = true;
    for (size_t j = i + 1; j < k; ++j) {
      const double p =
          WilcoxonSignedRankP(scores[order[i]], scores[order[j]]);
      const bool not_sig = p >= alpha;
      ns[i][j] = not_sig;
      ns[j][i] = not_sig;
    }
  }

  // Maximal contiguous cliques along the rank ordering (standard CD-diagram
  // construction): [i, j] is a clique iff all pairs inside are
  // non-significant; keep only maximal ones of size >= 2.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i;
    while (j + 1 < k) {
      bool ok = true;
      for (size_t x = i; x <= j + 1 && ok; ++x) {
        for (size_t y = x + 1; y <= j + 1 && ok; ++y) {
          ok = ns[x][y];
        }
      }
      if (!ok) break;
      ++j;
    }
    if (j > i) {
      // Maximal only: skip if contained in a clique starting earlier.
      bool contained = false;
      for (const auto& c : out.cliques) {
        if (c.front() <= static_cast<int>(i) &&
            c.back() >= static_cast<int>(j)) {
          contained = true;
          break;
        }
      }
      if (!contained) {
        std::vector<int> clique;
        for (size_t x = i; x <= j; ++x) clique.push_back(static_cast<int>(x));
        out.cliques.push_back(std::move(clique));
      }
    }
  }
  for (size_t ci = 0; ci < out.cliques.size(); ++ci) {
    for (int idx : out.cliques[ci]) {
      out.entries[static_cast<size_t>(idx)].cliques.push_back(
          static_cast<int>(ci));
    }
  }
  return out;
}

std::string RenderCritDiff(const CritDiffResult& result) {
  std::ostringstream oss;
  oss << StrFormat("Friedman chi^2 = %.3f, p = %.4g%s\n",
                   result.friedman.statistic, result.friedman.p_value,
                   result.friedman.p_value < 0.05
                       ? " (null hypothesis rejected)"
                       : "");
  oss << "Average ranks (lower is better):\n";
  for (const auto& e : result.entries) {
    std::string bars;
    for (int c : e.cliques) bars += StrFormat(" [group %d]", c + 1);
    oss << "  " << PadRight(e.method, 14)
        << StrFormat("%6.3f", e.avg_rank) << bars << "\n";
  }
  if (result.cliques.empty()) {
    oss << "All pairwise differences significant.\n";
  } else {
    oss << "Groups joined by a bar are not significantly different "
           "(Wilcoxon signed-rank).\n";
  }
  return oss.str();
}

}  // namespace tranad
