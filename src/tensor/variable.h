#ifndef TRANAD_TENSOR_VARIABLE_H_
#define TRANAD_TENSOR_VARIABLE_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace tranad {

/// Scoped, thread-local inference mode. While a NoGradGuard is alive on the
/// current thread, MakeNode produces constant nodes with no tape edges and
/// no backward closures, so forward passes allocate no autograd state and
/// never mutate shared parameter nodes. Guards nest; each restores the
/// previous state on destruction. Being thread-local, one thread can train
/// while others run guarded inference over the same parameters.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// True while a NoGradGuard is alive on the current thread.
bool NoGradEnabled();

/// Process-wide count of tape nodes created with backward edges. Test-only:
/// sample before and after a region to prove it recorded no autograd state
/// (e.g. parallel kernels under a NoGradGuard).
int64_t TapeNodesCreatedForTesting();

/// A node in the reverse-mode autodiff tape. `Variable` is a cheap
/// shared-ownership handle to a Node; operations in autograd_ops.h build the
/// DAG by creating new nodes whose backward closures accumulate gradients
/// into their parents.
///
/// Lifetime: the graph lives as long as the output Variable of a forward
/// pass. After an optimizer step the loss Variable is dropped and the whole
/// tape is freed; parameters (leaf Variables with requires_grad) persist in
/// their Modules.
class Variable {
 public:
  /// Null handle.
  Variable() = default;

  /// Leaf node wrapping a value. Gradients accumulate into it only when
  /// `requires_grad` is set (parameters) — inputs stay cheap.
  explicit Variable(Tensor value, bool requires_grad = false);

  /// True when this handle refers to a node.
  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;
  /// Mutable access to the value of a *leaf*; used by optimizers for
  /// in-place parameter updates.
  Tensor* mutable_value();

  const Shape& shape() const { return value().shape(); }

  /// Accumulated gradient; zero tensor of the value's shape before any
  /// backward pass touches this node.
  const Tensor& grad() const;

  bool requires_grad() const;

  /// Clears the accumulated gradient (leaves the tape intact).
  void ZeroGrad();

  /// Runs reverse-mode accumulation from this node. The node must hold a
  /// single element (a scalar loss); the seed gradient is 1.
  void Backward();

  /// Backward with an explicit seed gradient of the node's shape.
  void Backward(const Tensor& seed);

  /// Returns a leaf Variable sharing this node's value but cut off from the
  /// tape (no gradient flows through it).
  Variable Detach() const;

  /// Clears the accumulated gradients of every node reachable from this one
  /// (interior nodes and leaves alike). Required between two Backward()
  /// passes over a shared graph — TranAD's adversarial trainer backpropagates
  /// the generator and discriminator losses through the same forward tape.
  void ClearTapeGradients();

  // --- graph construction API (used by autograd_ops) ---

  /// Gradient callback: receives the node's output gradient and must
  /// accumulate into parents via AccumulateGrad.
  using BackwardFn = std::function<void(const Tensor& out_grad)>;

  /// Creates an interior node. `parents` are recorded for topological
  /// ordering; `backward` is invoked exactly once per backward pass with the
  /// node's accumulated output gradient. If no parent requires grad the
  /// result is a constant node with no tape edge (backward never runs).
  static Variable MakeNode(Tensor value, const std::vector<Variable>& parents,
                           BackwardFn backward);

  /// Adds `g` into this node's gradient buffer (no-op for nodes that do not
  /// require grad).
  void AccumulateGrad(const Tensor& g);

  /// Identity for hashing/visited-sets in graph walks.
  const void* id() const { return node_.get(); }

 private:
  struct Node {
    Tensor value;
    Tensor grad;
    bool has_grad = false;
    bool requires_grad = false;
    std::vector<std::shared_ptr<Node>> parents;
    BackwardFn backward;
  };

  explicit Variable(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  std::shared_ptr<Node> node_;
};

}  // namespace tranad

#endif  // TRANAD_TENSOR_VARIABLE_H_
