file(REMOVE_RECURSE
  "libtranad_data.a"
)
