// Online detection for industrial control: a SWaT-style water-treatment
// plant monitored in streaming fashion — train offline (Alg. 1), then run
// Alg. 2 one observation at a time with a dynamically updating POT
// threshold (StreamingPot), as an operations deployment would.
#include <cstdio>

#include "core/pipeline.h"
#include "core/tranad_detector.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "eval/pot.h"

int main() {
  using namespace tranad;

  Dataset dataset = GenerateSynthetic(SwatConfig(/*scale=*/0.35));
  std::printf("SWaT-style plant: %lld sensors/actuators, %lld training "
              "samples\n",
              static_cast<long long>(dataset.dims()),
              static_cast<long long>(dataset.train.length()));

  // Offline training phase.
  TranADConfig config;
  TrainOptions train;
  train.max_epochs = 5;
  TranADDetector detector(config, train);
  detector.Fit(dataset.train);

  // Calibrate the streaming threshold on training scores.
  StreamingPot spot(PotParamsForDataset(dataset.name));
  spot.Initialize(DetectionScores(detector.Score(dataset.train)));
  std::printf("initial POT threshold: %.6f (from %lld calibration peaks)\n",
              spot.threshold(), static_cast<long long>(spot.num_peaks()));

  // Online phase: Alg. 2 processes the stream causally. Scoring windows
  // only look backwards, so chunked scoring is exactly the sequential
  // result; we feed scores to the SPOT detector one at a time.
  const Tensor scores = detector.Score(dataset.test);
  const std::vector<double> stream = DetectionScores(scores);
  std::vector<uint8_t> predictions;
  predictions.reserve(stream.size());
  int64_t alarms = 0;
  int64_t first_alarm = -1;
  for (size_t t = 0; t < stream.size(); ++t) {
    const bool alarm = spot.Observe(stream[t]);
    predictions.push_back(alarm ? 1 : 0);
    if (alarm) {
      ++alarms;
      if (first_alarm < 0) first_alarm = static_cast<int64_t>(t);
    }
  }

  const auto adjusted = PointAdjust(predictions, dataset.test.labels);
  const auto counts = CountConfusion(adjusted, dataset.test.labels);
  std::printf("streamed %zu observations: %lld alarms (first at t=%lld), "
              "final threshold %.6f\n",
              stream.size(), static_cast<long long>(alarms),
              static_cast<long long>(first_alarm), spot.threshold());
  std::printf("point-adjusted online detection: P=%.4f R=%.4f F1=%.4f\n",
              PrecisionOf(counts), RecallOf(counts), F1Of(counts));

  // Alarm latency: distance from each attack's onset to its first alarm.
  int64_t total_latency = 0;
  int64_t detected_segments = 0;
  int64_t segments = 0;
  size_t i = 0;
  const auto& truth = dataset.test.labels;
  while (i < truth.size()) {
    if (truth[i] == 0) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < truth.size() && truth[j] != 0) ++j;
    ++segments;
    for (size_t k = i; k < j; ++k) {
      if (predictions[k] != 0) {
        total_latency += static_cast<int64_t>(k - i);
        ++detected_segments;
        break;
      }
    }
    i = j;
  }
  std::printf("attacks detected: %lld / %lld, mean alarm latency %.1f "
              "samples\n",
              static_cast<long long>(detected_segments),
              static_cast<long long>(segments),
              detected_segments > 0
                  ? static_cast<double>(total_latency) / detected_segments
                  : -1.0);
  return 0;
}
