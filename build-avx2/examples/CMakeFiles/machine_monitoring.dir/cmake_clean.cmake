file(REMOVE_RECURSE
  "CMakeFiles/machine_monitoring.dir/machine_monitoring.cpp.o"
  "CMakeFiles/machine_monitoring.dir/machine_monitoring.cpp.o.d"
  "machine_monitoring"
  "machine_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
