# Empty dependencies file for tranad_tensor.
# This may be replaced when dependencies are built.
