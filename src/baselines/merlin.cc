#include "baselines/merlin.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stopwatch.h"

namespace tranad {

DiscordFinder::DiscordFinder(std::vector<double> series)
    : series_(std::move(series)) {
  const size_t n = series_.size();
  prefix_.resize(n + 1, 0.0);
  prefix_sq_.resize(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    prefix_[i + 1] = prefix_[i] + series_[i];
    prefix_sq_[i + 1] = prefix_sq_[i] + series_[i] * series_[i];
  }
}

void DiscordFinder::MeanStd(int64_t i, int64_t length, double* mean,
                            double* std) const {
  const double s = prefix_[static_cast<size_t>(i + length)] -
                   prefix_[static_cast<size_t>(i)];
  const double sq = prefix_sq_[static_cast<size_t>(i + length)] -
                    prefix_sq_[static_cast<size_t>(i)];
  *mean = s / static_cast<double>(length);
  const double var = sq / static_cast<double>(length) - *mean * *mean;
  *std = std::sqrt(std::max(var, 1e-12));
}

double DiscordFinder::Distance(int64_t i, int64_t j, int64_t length) const {
  double mi, si, mj, sj;
  MeanStd(i, length, &mi, &si);
  MeanStd(j, length, &mj, &sj);
  double dot = 0.0;
  for (int64_t k = 0; k < length; ++k) {
    dot += series_[static_cast<size_t>(i + k)] *
           series_[static_cast<size_t>(j + k)];
  }
  const double lf = static_cast<double>(length);
  // d^2 = 2L (1 - (dot - L mu_i mu_j) / (L s_i s_j)).
  const double corr = (dot - lf * mi * mj) / (lf * si * sj);
  const double d2 = 2.0 * lf * (1.0 - std::clamp(corr, -1.0, 1.0));
  return std::sqrt(std::max(d2, 0.0));
}

Discord DiscordFinder::FindDiscordNaive(int64_t length) const {
  const int64_t n = static_cast<int64_t>(series_.size()) - length + 1;
  Discord best;
  best.length = length;
  if (n <= 1) return best;
  for (int64_t i = 0; i < n; ++i) {
    double nn = std::numeric_limits<double>::infinity();
    for (int64_t j = 0; j < n; ++j) {
      if (std::llabs(i - j) < length) continue;  // overlap exclusion
      nn = std::min(nn, Distance(i, j, length));
      if (nn < best.distance) break;  // cannot become the discord
    }
    if (nn != std::numeric_limits<double>::infinity() && nn > best.distance) {
      best.distance = nn;
      best.position = i;
    }
  }
  return best;
}

Discord DiscordFinder::FindDiscord(int64_t length) const {
  const int64_t n = static_cast<int64_t>(series_.size()) - length + 1;
  Discord best;
  best.length = length;
  if (n <= 1) return best;

  // Adaptive radius: start near the theoretical max (2 sqrt(L)) and halve
  // until DRAG succeeds (MERLIN's key idea).
  double r = 2.0 * std::sqrt(static_cast<double>(length)) * 0.5;
  for (int attempt = 0; attempt < 24; ++attempt, r *= 0.5) {
    if (r < 1e-6) break;
    // --- DRAG phase 1: candidate selection ---
    std::vector<int64_t> candidates;
    for (int64_t j = 0; j < n; ++j) {
      bool is_candidate = true;
      for (auto it = candidates.begin(); it != candidates.end();) {
        if (std::llabs(*it - j) < length) {
          ++it;
          continue;
        }
        const double d = Distance(j, *it, length);
        if (d < r) {
          // Both the candidate and j have a neighbour within r.
          it = candidates.erase(it);
          is_candidate = false;
        } else {
          ++it;
        }
      }
      if (is_candidate) candidates.push_back(j);
    }
    if (candidates.empty()) continue;

    // --- DRAG phase 2: exact refinement of surviving candidates ---
    std::vector<double> nn_dist(candidates.size(),
                                std::numeric_limits<double>::infinity());
    std::vector<bool> alive(candidates.size(), true);
    for (int64_t j = 0; j < n; ++j) {
      for (size_t c = 0; c < candidates.size(); ++c) {
        if (!alive[c]) continue;
        if (std::llabs(candidates[c] - j) < length) continue;
        const double d = Distance(candidates[c], j, length);
        nn_dist[c] = std::min(nn_dist[c], d);
        if (nn_dist[c] < r) alive[c] = false;  // not a discord at radius r
      }
    }
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (!alive[c]) continue;
      if (nn_dist[c] != std::numeric_limits<double>::infinity() &&
          nn_dist[c] > best.distance) {
        best.distance = nn_dist[c];
        best.position = candidates[c];
      }
    }
    if (best.position >= 0) return best;
  }
  // Fallback (degenerate series): brute force.
  return FindDiscordNaive(length);
}

std::vector<Discord> DiscordFinder::FindDiscords(int64_t min_len,
                                                 int64_t max_len,
                                                 int64_t step) const {
  std::vector<Discord> out;
  for (int64_t len = min_len; len <= max_len; len += step) {
    if (len >= static_cast<int64_t>(series_.size()) / 2) break;
    out.push_back(FindDiscord(len));
  }
  return out;
}

MerlinDetector::MerlinDetector(int64_t min_len, int64_t max_len, int64_t step,
                               bool naive)
    : min_len_(min_len), max_len_(max_len), step_(step), naive_(naive) {}

void MerlinDetector::Fit(const TimeSeries& /*train*/) {
  // Parameter-free and training-free (§4.3: "does not require any
  // training data").
}

Tensor MerlinDetector::Score(const TimeSeries& series) {
  const int64_t t = series.length();
  const int64_t m = series.dims();
  Tensor scores({t, m});
  Stopwatch timer;
  Rng rng(321);
  for (int64_t d = 0; d < m; ++d) {
    std::vector<double> channel(static_cast<size_t>(t));
    for (int64_t i = 0; i < t; ++i) {
      channel[static_cast<size_t>(i)] = series.values.At({i, d});
    }
    DiscordFinder finder(channel);

    // Graded base score: approximate nearest-neighbour distance against a
    // random reference sample (cheap approximate matrix profile).
    const int64_t probe_len = std::min<int64_t>(min_len_, t / 4);
    if (probe_len >= 4) {
      const int64_t nsub = t - probe_len + 1;
      const int64_t samples = std::min<int64_t>(48, nsub);
      std::vector<int64_t> refs;
      refs.reserve(static_cast<size_t>(samples));
      for (int64_t s = 0; s < samples; ++s) {
        refs.push_back(static_cast<int64_t>(
            rng.UniformInt(static_cast<uint64_t>(nsub))));
      }
      for (int64_t i = 0; i < nsub; ++i) {
        double nn = std::numeric_limits<double>::infinity();
        for (int64_t ref : refs) {
          if (std::llabs(i - ref) < probe_len) continue;
          nn = std::min(nn, finder.Distance(i, ref, probe_len));
        }
        if (nn == std::numeric_limits<double>::infinity()) nn = 0.0;
        const float v = static_cast<float>(
            nn / (2.0 * std::sqrt(static_cast<double>(probe_len))));
        for (int64_t k = i; k < std::min(t, i + probe_len); ++k) {
          scores.At({k, d}) = std::max(scores.At({k, d}), v);
        }
      }
    }

    // Discords of every length in range mark strong anomalies.
    const auto discords =
        naive_ ? std::vector<Discord>{finder.FindDiscordNaive(
                     std::min(min_len_, t / 4))}
               : finder.FindDiscords(min_len_, std::min(max_len_, t / 4),
                                     step_);
    for (const auto& disc : discords) {
      if (disc.position < 0) continue;
      const float v = static_cast<float>(
          disc.distance /
          (2.0 * std::sqrt(static_cast<double>(disc.length))));
      for (int64_t k = disc.position;
           k < std::min(t, disc.position + disc.length); ++k) {
        scores.At({k, d}) = std::max(scores.At({k, d}), 1.0f + v);
      }
    }
  }
  discovery_seconds_ = timer.ElapsedSeconds();
  return scores;
}

}  // namespace tranad
