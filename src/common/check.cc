#include "common/check.h"

namespace tranad::internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "TRANAD_CHECK failed at %s:%d: %s %s\n", file, line,
               expr, extra.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace tranad::internal
