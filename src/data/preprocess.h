#ifndef TRANAD_DATA_PREPROCESS_H_
#define TRANAD_DATA_PREPROCESS_H_

#include <utility>

#include "common/rng.h"
#include "common/status.h"
#include "data/time_series.h"

namespace tranad {

/// Per-dimension min-max normalizer implementing Eq. (1): ranges are fitted
/// on the *training* series only and applied to both splits, mapping train
/// values into [0, 1).
class MinMaxNormalizer {
 public:
  /// Fits mode-wise min/max on a [T, m] tensor.
  void Fit(const Tensor& train);

  /// Applies Eq. (1). Values outside the fitted range (possible on test
  /// data) are clamped to [-clip, 1 + clip] to keep reconstruction targets
  /// bounded; clip defaults to 0 (hard clamp into [0, 1]).
  Tensor Transform(const Tensor& x, float clip = 0.0f) const;

  bool fitted() const { return fitted_; }
  const Tensor& min() const { return min_; }
  const Tensor& max() const { return max_; }

  /// Restores a previously fitted range (checkpoint load). Both tensors
  /// must be rank-1 and the same length.
  Status Restore(const Tensor& min, const Tensor& max);

 private:
  bool fitted_ = false;
  Tensor min_;  // [m]
  Tensor max_;  // [m]
};

/// Converts a [T, m] series into sliding windows [T, K, m] (§3.2):
/// W_t = {x_{t-K+1}, ..., x_t}, with replication padding (repeating the
/// first observation) for t < K so every timestamp has a K-length window.
Tensor MakeWindows(const Tensor& series, int64_t k);

/// Chronological train/validation split of a [N, ...] tensor along axis 0:
/// first (1 - val_frac) for training, rest for validation — the 80:20 split
/// used for early stopping in §4.
std::pair<Tensor, Tensor> SplitTrainVal(const Tensor& data, double val_frac);

/// Returns a random contiguous fraction of the training series (used for the
/// 20 %-data F1*/AUC* experiments of Table 3 and the Fig. 6 sweep).
TimeSeries SubsampleTrain(const TimeSeries& train, double fraction, Rng* rng);

}  // namespace tranad

#endif  // TRANAD_DATA_PREPROCESS_H_
