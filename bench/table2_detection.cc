// Table 2: P / R / AUC / F1 of all eleven methods on the complete training
// data of every dataset (point-adjusted best-F1 protocol; see
// EXPERIMENTS.md for the protocol note).
#include "bench/bench_util.h"

namespace tranad::bench {
namespace {

int Main() {
  const auto methods = PaperMethodNames();
  const int64_t epochs = DefaultEpochs();
  std::vector<std::vector<double>> csv;

  // Collect per-dataset blocks like the paper's three-row groups.
  const auto datasets = DatasetNames();
  for (size_t di = 0; di < datasets.size(); ++di) {
    const Dataset& ds = BenchDataset(datasets[di]);
    std::vector<std::vector<std::string>> rows;
    for (const auto& method : methods) {
      const EvalOutcome out = RunCell(method, ds, epochs);
      rows.push_back({method, Fmt4(out.detection.precision),
                      Fmt4(out.detection.recall),
                      Fmt4(out.detection.roc_auc),
                      Fmt4(out.detection.f1)});
      csv.push_back({static_cast<double>(di), out.detection.precision,
                     out.detection.recall, out.detection.roc_auc,
                     out.detection.f1});
      std::fflush(stdout);
    }
    PrintTable("Table 2 (" + datasets[di] + "): detection, full data",
               {"Method", "P", "R", "AUC", "F1"}, rows);
  }
  const auto path = WriteBenchCsv("table2_detection",
                                  {"dataset_idx", "precision", "recall",
                                   "auc", "f1"},
                                  csv);
  std::printf("\nCSV: %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
