#include "core/tranad_detector.h"

#include <algorithm>
#include <utility>

#include "io/checkpoint.h"
#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad {

namespace {
// Test data may exceed the training range (that excess *is* the anomaly
// signal, since the sigmoid decoders cannot reach it); allow a generous
// band instead of clamping to [0, 1].
constexpr float kNormClip = 4.0f;
}  // namespace

TranADDetector::TranADDetector(TranADConfig model_config,
                               TrainOptions train_options,
                               std::string display_name)
    : model_config_(model_config),
      train_options_(train_options),
      display_name_(std::move(display_name)) {}

void TranADDetector::Fit(const TimeSeries& train) {
  TRANAD_CHECK_GT(train.length(), 0);
  model_config_.dims = train.dims();
  model_ = std::make_unique<TranADModel>(model_config_);
  normalizer_.Fit(train.values);
  const Tensor normalized = normalizer_.Transform(train.values, kNormClip);
  const Tensor windows = MakeWindows(normalized, model_config_.window);
  stats_ = TrainTranAD(model_.get(), windows, train_options_);
}

Tensor TranADDetector::NormalizeForScoring(const Tensor& x) const {
  TRANAD_CHECK(normalizer_.fitted());
  return normalizer_.Transform(x, kNormClip);
}

Tensor TranADDetector::ScoreWindows(const Tensor& windows) const {
  TRANAD_CHECK(model_ != nullptr);
  const int64_t b = windows.size(0);
  const int64_t k = windows.size(1);
  const int64_t m = windows.size(2);
  TRANAD_CHECK_EQ(m, model_config_.dims);
  const auto [o1, o2hat] = model_->TwoPhaseInference(windows);
  const Tensor target = SliceAxis(windows, 1, k - 1, 1).Reshape({b, m});
  Tensor scores({b, m});
  const float* v1 = o1.data();
  const float* v2 = o2hat.data();
  const float* tgt = target.data();
  float* out = scores.data();
  for (int64_t i = 0; i < b * m; ++i) {
    const float e1 = v1[i] - tgt[i];
    const float e2 = v2[i] - tgt[i];
    out[i] = 0.5f * e1 * e1 + 0.5f * e2 * e2;
  }
  return scores;
}

Tensor TranADDetector::ScoreSeries(const TimeSeries& series) const {
  TRANAD_CHECK(model_ != nullptr);
  TRANAD_CHECK_EQ(series.dims(), model_config_.dims);
  const Tensor normalized = NormalizeForScoring(series.values);
  const Tensor windows = MakeWindows(normalized, model_config_.window);
  const int64_t t = windows.size(0);
  const int64_t m = model_config_.dims;
  Tensor scores({t, m});
  constexpr int64_t kBatch = 256;
  for (int64_t start = 0; start < t; start += kBatch) {
    const int64_t len = std::min<int64_t>(kBatch, t - start);
    const Tensor batch_scores =
        ScoreWindows(SliceAxis(windows, 0, start, len));
    std::copy(batch_scores.data(), batch_scores.data() + len * m,
              scores.data() + start * m);
  }
  return scores;
}

void TranADDetector::FreezeForInference() {
  TRANAD_CHECK(model_ != nullptr);
  model_->SetTraining(false);
}

Status TranADDetector::SaveCheckpoint(const std::string& path) const {
  if (model_ == nullptr || !normalizer_.fitted()) {
    return Status::FailedPrecondition(
        "detector is not fitted: nothing to checkpoint");
  }
  io::CheckpointWriter writer;
  writer.PutString("meta/kind", "tranad-detector");
  writer.PutString("meta/name", display_name_);
  const TranADConfig& c = model_->config();
  writer.PutI64Array("config/ints",
                     {c.dims, c.window, c.num_layers, c.d_ff, c.num_heads,
                      c.max_len, static_cast<int64_t>(c.seed),
                      c.bidirectional ? 1 : 0, c.use_transformer ? 1 : 0,
                      c.use_self_conditioning ? 1 : 0,
                      c.use_adversarial ? 1 : 0, c.use_maml ? 1 : 0});
  writer.PutScalar("config/dropout", static_cast<double>(c.dropout));
  model_->SaveTo(&writer, "model/");
  writer.PutTensor("norm/min", normalizer_.min());
  writer.PutTensor("norm/max", normalizer_.max());
  return writer.WriteAtomic(path);
}

Result<std::unique_ptr<TranADDetector>> TranADDetector::FromCheckpoint(
    const std::string& path) {
  TRANAD_ASSIGN_OR_RETURN(io::CheckpointReader reader,
                          io::CheckpointReader::Open(path));
  TRANAD_ASSIGN_OR_RETURN(std::string kind, reader.GetString("meta/kind"));
  if (kind != "tranad-detector") {
    return Status::InvalidArgument(path + ": not a detector checkpoint ('" +
                                   kind + "')");
  }
  TRANAD_ASSIGN_OR_RETURN(std::string name, reader.GetString("meta/name"));
  TRANAD_ASSIGN_OR_RETURN(std::vector<int64_t> ints,
                          reader.GetI64Array("config/ints"));
  if (ints.size() != 12) {
    return Status::InvalidArgument(path + ": malformed config/ints");
  }
  TRANAD_ASSIGN_OR_RETURN(double dropout, reader.GetScalar("config/dropout"));
  TranADConfig config;
  config.dims = ints[0];
  config.window = ints[1];
  config.num_layers = ints[2];
  config.d_ff = ints[3];
  config.num_heads = ints[4];
  config.max_len = ints[5];
  config.seed = static_cast<uint64_t>(ints[6]);
  config.bidirectional = ints[7] != 0;
  config.use_transformer = ints[8] != 0;
  config.use_self_conditioning = ints[9] != 0;
  config.use_adversarial = ints[10] != 0;
  config.use_maml = ints[11] != 0;
  config.dropout = static_cast<float>(dropout);
  if (config.dims <= 0 || config.window <= 0) {
    return Status::InvalidArgument(path + ": invalid model geometry");
  }

  auto detector = std::make_unique<TranADDetector>(config, TrainOptions{},
                                                   std::move(name));
  detector->model_ = std::make_unique<TranADModel>(config);
  TRANAD_RETURN_IF_ERROR(detector->model_->LoadFrom(reader, "model/"));
  TRANAD_ASSIGN_OR_RETURN(Tensor norm_min, reader.GetTensor("norm/min"));
  TRANAD_ASSIGN_OR_RETURN(Tensor norm_max, reader.GetTensor("norm/max"));
  if (norm_min.numel() != config.dims) {
    return Status::InvalidArgument(path +
                                   ": normalizer does not match model dims");
  }
  TRANAD_RETURN_IF_ERROR(detector->normalizer_.Restore(norm_min, norm_max));
  // A freshly constructed Module starts in training mode (dropout live);
  // force eval recursively so a restored detector scores deterministically.
  detector->model_->SetTraining(false);
  return detector;
}

Tensor TranADDetector::Score(const TimeSeries& series) {
  TRANAD_CHECK(model_ != nullptr);
  TRANAD_CHECK_EQ(series.dims(), model_config_.dims);
  model_->SetTraining(false);

  const Tensor normalized = normalizer_.Transform(series.values, kNormClip);
  const Tensor windows = MakeWindows(normalized, model_config_.window);
  const int64_t t = windows.size(0);
  const int64_t k = model_config_.window;
  const int64_t m = model_config_.dims;

  Tensor scores({t, m});
  last_focus_ = Tensor({t, m});
  last_attention_ = Tensor({t, k});

  constexpr int64_t kBatch = 256;
  for (int64_t start = 0; start < t; start += kBatch) {
    const int64_t len = std::min<int64_t>(kBatch, t - start);
    Tensor batch = SliceAxis(windows, 0, start, len);
    const Tensor target = SliceAxis(batch, 1, k - 1, 1).Reshape({len, m});
    Variable window(batch);
    // Alg. 2 lines 2-3: two-phase inference.
    auto [o1, o2] = model_->ForwardPhase1(window);
    Variable focus = ag::SquaredDiff(o1, Variable(target));
    const Tensor attn = model_->LastEncoderAttention();  // phase-1 attention
    Variable o2hat = model_->ForwardPhase2(window, focus);

    // Eq. (13) per dimension at the current timestamp; outputs are [B, m].
    const Tensor& v1 = o1.value();
    const Tensor& v2 = o2hat.value();
    const Tensor& fv = focus.value();
    for (int64_t b = 0; b < len; ++b) {
      for (int64_t d = 0; d < m; ++d) {
        const int64_t idx = b * m + d;
        const float tgt = target.data()[idx];
        const float e1 = v1.data()[idx] - tgt;
        const float e2 = v2.data()[idx] - tgt;
        scores.At({start + b, d}) = 0.5f * e1 * e1 + 0.5f * e2 * e2;
        last_focus_.At({start + b, d}) = fv.data()[idx];
      }
      if (attn.ndim() == 3) {
        // Attention row of the final timestamp, averaged over heads
        // already; [B, K, K] -> row (k-1).
        for (int64_t j = 0; j < k; ++j) {
          last_attention_.At({start + b, j}) =
              attn.data()[(b * k + (k - 1)) * k + j];
        }
      }
    }
  }
  return scores;
}

}  // namespace tranad
