#include "net/client.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace tranad::net {
namespace {

using Clock = std::chrono::steady_clock;

/// Completed (stream_key, tag) pairs remembered for duplicate-verdict
/// suppression. Bounds client memory the same way the server's dedup
/// cache bounds its own.
constexpr size_t kDoneTagsCap = 4096;

/// Echo payload shared by Ping() and the keepalive path, so a keepalive
/// pong that races a Ping() RPC still carries the expected token.
constexpr uint64_t kPingToken = 0x70696e67;

bool RetryableDial(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kIoError;
}

}  // namespace

int64_t BackoffDelayMs(int64_t attempt, int64_t initial_ms, int64_t max_ms,
                       uint64_t seed) {
  if (initial_ms <= 0) return 0;
  int64_t base = initial_ms;
  for (int64_t i = 0; i < attempt; ++i) {
    if (max_ms > 0 && base >= max_ms) break;
    base = base * 2;
  }
  if (max_ms > 0) base = std::min(base, max_ms);
  // SplitMix64 over (seed, attempt): full-avalanche, so nearby seeds and
  // attempts decorrelate — clients seeded differently never stampede on
  // the same schedule, and the same seed replays exactly (testable).
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL *
                          (static_cast<uint64_t>(attempt) + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  const int64_t half = std::max<int64_t>(1, base / 2);
  return half + static_cast<int64_t>(x % static_cast<uint64_t>(half));
}

NetClient::NetClient(ClientOptions options) : options_(std::move(options)) {}

NetClient::~NetClient() { Close(); }

Status NetClient::DialOnce(const std::string& host, uint16_t port,
                           int* out_fd) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IoError("resolve " + host + ": " + gai_strerror(rc));
  }
  int fd = -1;
  Status last = Status::IoError("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    // Non-blocking connect + poll: the kernel's default connect timeout is
    // minutes; a serving client needs its answer in connect_timeout_ms.
    const int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int crc = connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (crc != 0 && errno == EINPROGRESS) {
      pollfd p{fd, POLLOUT, 0};
      const int pr = poll(
          &p, 1, static_cast<int>(std::max<int64_t>(
                     1, options_.connect_timeout_ms)));
      if (pr == 0) {
        last = Status::DeadlineExceeded(
            "connect " + host + ":" + std::to_string(port) +
            " timed out after " + std::to_string(options_.connect_timeout_ms) +
            " ms");
        close(fd);
        fd = -1;
        continue;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      if (pr < 0 ||
          getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        err = errno;
      }
      if (err != 0) {
        last = Status::Unavailable("connect " + host + ":" +
                                   std::to_string(port) + ": " +
                                   std::strerror(err));
        close(fd);
        fd = -1;
        continue;
      }
    } else if (crc != 0) {
      last = Status::Unavailable("connect " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
      close(fd);
      fd = -1;
      continue;
    }
    fcntl(fd, F_SETFL, flags);  // back to blocking for the reader/sender
    break;
  }
  freeaddrinfo(res);
  if (fd < 0) return last;
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out_fd = fd;
  return Status::Ok();
}

void NetClient::AdoptSocket(int fd) {
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    conn_status_ = Status::Ok();
    rpc_active_ = false;
    rpc_done_ = false;
  }
  conn_dead_.store(false, std::memory_order_release);
  fd_.store(fd, std::memory_order_release);
  reader_ = std::thread([this] { ReaderThread(); });
}

Status NetClient::Connect(const std::string& host, uint16_t port) {
  std::lock_guard<std::mutex> lock(start_mu_);
  if (connected()) return Status::FailedPrecondition("already connected");
  if (reader_.joinable()) reader_.join();  // a previous connection's reader
  int fd = -1;
  TRANAD_RETURN_IF_ERROR(DialOnce(host, port, &fd));
  remote_host_ = host;
  remote_port_ = port;
  closing_ = false;
  drained_.store(false, std::memory_order_release);
  AdoptSocket(fd);
  if (!maintenance_.joinable()) {
    {
      std::lock_guard<std::mutex> maint_lock(maint_mu_);
      maint_stop_ = false;
      last_send_ = Clock::now();
    }
    maintenance_ = std::thread([this] { MaintenanceThread(); });
  }
  return Status::Ok();
}

Status NetClient::ConnectWithBackoff(const std::string& host, uint16_t port,
                                     int64_t max_attempts) {
  if (max_attempts <= 0) max_attempts = options_.reconnect_max_attempts;
  if (max_attempts <= 0) max_attempts = 1;
  Status last = Status::Unavailable("no connect attempt made");
  for (int64_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          BackoffDelayMs(attempt - 1, options_.backoff_initial_ms,
                         options_.backoff_max_ms, options_.backoff_seed)));
    }
    last = Connect(host, port);
    if (last.ok() || !RetryableDial(last)) return last;
  }
  return last;
}

void NetClient::Close() {
  {
    std::lock_guard<std::mutex> lock(start_mu_);
    closing_ = true;
  }
  {
    std::lock_guard<std::mutex> lock(maint_mu_);
    maint_stop_ = true;
  }
  maint_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
  std::lock_guard<std::mutex> lock(start_mu_);
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) shutdown(fd, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  if (fd >= 0) close(fd);
  AbortTracked(Status::Unavailable("client closed"));
}

Status NetClient::SendBytes(const std::vector<uint8_t>& bytes) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return Status::Unavailable("not connected");
  std::lock_guard<std::mutex> lock(send_mu_);
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send: ") +
                                 std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  {
    std::lock_guard<std::mutex> maint_lock(maint_mu_);
    last_send_ = Clock::now();
  }
  return Status::Ok();
}

Status NetClient::Submit(uint64_t stream_key, uint64_t tag,
                         const float* values, int64_t dims) {
  if (dims <= 0) return Status::InvalidArgument("dims must be positive");
  WireSubmit submit;
  submit.stream_key = stream_key;
  submit.tag = tag;
  submit.values.assign(values, values + dims);
  std::vector<uint8_t> bytes;
  submit.EncodeTo(&bytes);
  return SendBytes(bytes);
}

Status NetClient::SubmitTracked(uint64_t stream_key, uint64_t tag,
                                const float* values, int64_t dims) {
  if (dims <= 0) return Status::InvalidArgument("dims must be positive");
  if (drained()) {
    return Status::Unavailable("server is draining; submit elsewhere");
  }
  WireSubmit submit;
  submit.stream_key = stream_key;
  submit.tag = tag;
  submit.flags = kSubmitFlagIdempotent;
  submit.values.assign(values, values + dims);
  std::vector<uint8_t> bytes;
  submit.EncodeTo(&bytes);
  const TrackedKey id{stream_key, tag};
  {
    std::lock_guard<std::mutex> lock(tracked_mu_);
    if (tracked_.count(id) != 0) {
      return Status::FailedPrecondition(
          "tag " + std::to_string(tag) + " is already in flight on stream " +
          std::to_string(stream_key));
    }
    // Reusing a completed tag restarts its dedup life.
    done_tags_.erase(id);
    TrackedSubmit t;
    t.bytes = bytes;
    t.next_send = options_.submit_retry_ms > 0
                      ? Clock::now() + std::chrono::milliseconds(
                                           options_.submit_retry_ms)
                      : Clock::time_point::max();
    tracked_.emplace(id, std::move(t));
  }
  const Status sent = SendBytes(bytes);
  if (!sent.ok()) {
    if (options_.reconnect_max_attempts > 0 && !drained()) {
      // Queued: the reconnect path resends every pending tracked submit.
      return Status::Ok();
    }
    std::lock_guard<std::mutex> lock(tracked_mu_);
    tracked_.erase(id);
    return sent;
  }
  return Status::Ok();
}

int64_t NetClient::pending_tracked() const {
  std::lock_guard<std::mutex> lock(tracked_mu_);
  return static_cast<int64_t>(tracked_.size());
}

ClientCounters NetClient::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

Status NetClient::Rpc(const std::vector<uint8_t>& bytes, FrameType expect,
                      OwnedFrame* reply) {
  std::lock_guard<std::mutex> rpc_lock(rpc_mu_);
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    if (!conn_status_.ok()) return conn_status_;
    rpc_active_ = true;
    rpc_expect_ = expect;
    rpc_done_ = false;
  }
  const Status sent = SendBytes(bytes);
  if (!sent.ok()) {
    std::lock_guard<std::mutex> lock(wait_mu_);
    rpc_active_ = false;
    return sent;
  }
  std::unique_lock<std::mutex> lock(wait_mu_);
  const bool done = wait_cv_.wait_for(
      lock, std::chrono::milliseconds(options_.rpc_timeout_ms),
      [this] { return rpc_done_ || !conn_status_.ok(); });
  rpc_active_ = false;
  if (rpc_done_) {
    *reply = std::move(rpc_reply_);
    return Status::Ok();
  }
  if (!conn_status_.ok()) return conn_status_;
  return done ? Status::Internal("rpc woke without reply")
              : Status::DeadlineExceeded("rpc timed out");
}

Status NetClient::CreateStream(uint64_t stream_key,
                               const Tensor& calibration) {
  if (calibration.ndim() != 2 || calibration.size(0) <= 0 ||
      calibration.size(1) <= 0) {
    return Status::InvalidArgument("calibration must be [rows, dims]");
  }
  WireCreateStream req;
  req.stream_key = stream_key;
  req.rows = calibration.size(0);
  req.dims = calibration.size(1);
  req.values.assign(calibration.data(),
                    calibration.data() + calibration.numel());
  std::vector<uint8_t> bytes;
  req.EncodeTo(&bytes);
  OwnedFrame reply;
  TRANAD_RETURN_IF_ERROR(Rpc(bytes, FrameType::kCreateStreamAck, &reply));
  WireAck ack;
  FrameView view{reply.type, reply.payload.data(), reply.payload.size()};
  TRANAD_RETURN_IF_ERROR(WireAck::Decode(view, &ack));
  return ack.status;
}

Status NetClient::CloseStream(uint64_t stream_key) {
  WireCloseStream req;
  req.stream_key = stream_key;
  std::vector<uint8_t> bytes;
  req.EncodeTo(&bytes);
  OwnedFrame reply;
  TRANAD_RETURN_IF_ERROR(Rpc(bytes, FrameType::kCloseStreamAck, &reply));
  WireAck ack;
  FrameView view{reply.type, reply.payload.data(), reply.payload.size()};
  TRANAD_RETURN_IF_ERROR(WireAck::Decode(view, &ack));
  return ack.status;
}

Result<serve::ServeStatsSnapshot> NetClient::Stats() {
  WireStatsRequest req;
  std::vector<uint8_t> bytes;
  req.EncodeTo(&bytes);
  OwnedFrame reply;
  TRANAD_RETURN_IF_ERROR(Rpc(bytes, FrameType::kStatsReply, &reply));
  WireStatsReply stats;
  FrameView view{reply.type, reply.payload.data(), reply.payload.size()};
  TRANAD_RETURN_IF_ERROR(WireStatsReply::Decode(view, &stats));
  return stats.snapshot;
}

Status NetClient::Reload(const std::string& path) {
  WireReload req;
  req.path = path;
  std::vector<uint8_t> bytes;
  req.EncodeTo(&bytes);
  OwnedFrame reply;
  TRANAD_RETURN_IF_ERROR(Rpc(bytes, FrameType::kReloadAck, &reply));
  WireAck ack;
  FrameView view{reply.type, reply.payload.data(), reply.payload.size()};
  TRANAD_RETURN_IF_ERROR(WireAck::Decode(view, &ack));
  return ack.status;
}

Status NetClient::Ping() {
  WirePing ping;
  ping.token = kPingToken;
  std::vector<uint8_t> bytes;
  ping.EncodeTo(&bytes, FrameType::kPing);
  OwnedFrame reply;
  TRANAD_RETURN_IF_ERROR(Rpc(bytes, FrameType::kPong, &reply));
  WirePing pong;
  FrameView view{reply.type, reply.payload.data(), reply.payload.size()};
  TRANAD_RETURN_IF_ERROR(WirePing::Decode(view, &pong));
  if (pong.token != ping.token) {
    return Status::Internal("pong token mismatch");
  }
  return Status::Ok();
}

void NetClient::FailPending(const Status& status) {
  std::lock_guard<std::mutex> lock(wait_mu_);
  if (conn_status_.ok()) conn_status_ = status;
  wait_cv_.notify_all();
}

void NetClient::AbortTracked(const Status& status) {
  std::vector<WireVerdict> failed;
  {
    std::lock_guard<std::mutex> lock(tracked_mu_);
    for (const auto& [id, t] : tracked_) {
      WireVerdict v;
      v.stream_key = id.first;
      v.tag = id.second;
      v.seq = -1;
      v.status = status;
      failed.push_back(std::move(v));
      if (done_tags_.insert(id).second) done_tags_lru_.push_back(id);
    }
    tracked_.clear();
    while (done_tags_lru_.size() > kDoneTagsCap) {
      done_tags_.erase(done_tags_lru_.front());
      done_tags_lru_.pop_front();
    }
  }
  if (handler_) {
    for (const WireVerdict& v : failed) handler_(v);
  }
}

void NetClient::OnVerdict(const WireVerdict& verdict) {
  const TrackedKey id{verdict.stream_key, verdict.tag};
  {
    std::lock_guard<std::mutex> lock(tracked_mu_);
    auto it = tracked_.find(id);
    if (it == tracked_.end()) {
      if (done_tags_.count(id) != 0) {
        // The duplicate half of at-least-once delivery: a resend raced the
        // original verdict. Exactly-once = retry + this suppression.
        std::lock_guard<std::mutex> clock(counters_mu_);
        ++counters_.retries_deduped;
        return;
      }
      // Untracked (plain Submit) verdict: straight through.
    } else {
      const bool retryable =
          !verdict.status.ok() &&
          (verdict.status.code() == StatusCode::kUnavailable ||
           verdict.status.code() == StatusCode::kResourceExhausted);
      if (retryable && options_.submit_retry_ms > 0 && !drained() &&
          it->second.retries < options_.submit_max_retries) {
        // Suppress the failure and schedule a resend: by then a killed
        // shard's streams have migrated, so the retry scores on the new
        // shard and the caller only ever sees the final verdict.
        it->second.has_failure = true;
        it->second.last_failure = verdict;
        it->second.next_send =
            Clock::now() +
            std::chrono::milliseconds(options_.submit_retry_ms);
        return;
      }
      tracked_.erase(it);
      if (done_tags_.insert(id).second) done_tags_lru_.push_back(id);
      while (done_tags_lru_.size() > kDoneTagsCap) {
        done_tags_.erase(done_tags_lru_.front());
        done_tags_lru_.pop_front();
      }
    }
  }
  if (handler_) handler_(verdict);
}

void NetClient::ReaderThread() {
  FrameReader reader(options_.max_frame_payload);
  std::vector<uint8_t> buf(64 * 1024);
  const auto die = [this](const Status& status) {
    conn_dead_.store(true, std::memory_order_release);
    FailPending(status);
    maint_cv_.notify_all();  // wake the reconnect path promptly
  };
  for (;;) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) {
      die(Status::Unavailable("connection closed"));
      return;
    }
    const size_t want = std::min(buf.size(), reader.writable());
    const ssize_t n = read(fd, buf.data(), want);
    if (n == 0) {
      die(drained()
              ? Status::Unavailable("server drained and closed")
              : Status::Unavailable("server closed the connection"));
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      die(Status::Unavailable(std::string("read: ") + std::strerror(errno)));
      return;
    }
    if (!reader.Feed(buf.data(), static_cast<size_t>(n)).ok()) {
      die(Status::Internal("client reader overfed its buffer"));
      return;
    }
    for (;;) {
      FrameView frame;
      bool got = false;
      const Status st = reader.Next(&frame, &got);
      if (!st.ok()) {
        die(st);
        return;
      }
      if (!got) break;
      if (frame.type == FrameType::kVerdict) {
        WireVerdict verdict;
        if (WireVerdict::Decode(frame, &verdict).ok()) OnVerdict(verdict);
        continue;
      }
      if (frame.type == FrameType::kDrain) {
        // Graceful server shutdown: stop retrying/reconnecting, let the
        // in-flight verdicts land, treat the coming close as normal.
        drained_.store(true, std::memory_order_release);
        continue;
      }
      if (frame.type == FrameType::kError) {
        WireAck error;
        const Status decoded = WireAck::Decode(frame, &error);
        die(decoded.ok()
                ? (error.status.ok()
                       ? Status::Internal("server sent empty error")
                       : error.status)
                : decoded);
        return;
      }
      std::lock_guard<std::mutex> lock(wait_mu_);
      if (rpc_active_ && !rpc_done_ && frame.type == rpc_expect_) {
        rpc_reply_.type = frame.type;
        rpc_reply_.payload.assign(frame.payload,
                                  frame.payload + frame.payload_len);
        rpc_done_ = true;
        wait_cv_.notify_all();
      }
      // A reply nobody is waiting for (e.g. a ReloadAck after the RPC
      // timed out, or a keepalive pong) is dropped by design.
    }
  }
}

void NetClient::MaintenanceThread() {
  const bool any_timer = options_.keepalive_ms > 0 ||
                         options_.submit_retry_ms > 0 ||
                         options_.reconnect_max_attempts > 0;
  int64_t reconnect_attempt = 0;
  Clock::time_point next_reconnect = Clock::now();
  std::unique_lock<std::mutex> lock(maint_mu_);
  for (;;) {
    if (any_timer) {
      maint_cv_.wait_for(lock, std::chrono::milliseconds(10),
                         [this] { return maint_stop_; });
    } else {
      maint_cv_.wait(lock, [this] { return maint_stop_; });
    }
    if (maint_stop_) return;
    const Clock::time_point now = Clock::now();
    const Clock::time_point last_send = last_send_;
    lock.unlock();

    // ---- Reconnect a dead connection (resending pending tracked work).
    if (conn_dead_.load(std::memory_order_acquire)) {
      if (drained() || options_.reconnect_max_attempts <= 0) {
        // Nothing to reconnect to (graceful drain) or reconnect is off:
        // pending tracked submissions will never complete — fail them.
        conn_dead_.store(false, std::memory_order_release);
        AbortTracked(drained()
                         ? Status::Unavailable("server drained")
                         : Status::Unavailable("connection lost"));
      } else if (now >= next_reconnect) {
        std::vector<std::vector<uint8_t>> resend;
        bool adopted = false;
        {
          std::lock_guard<std::mutex> start_lock(start_mu_);
          if (!closing_ && conn_dead_.load(std::memory_order_acquire)) {
            const int old = fd_.exchange(-1, std::memory_order_acq_rel);
            if (old >= 0) shutdown(old, SHUT_RDWR);
            if (reader_.joinable()) reader_.join();
            if (old >= 0) close(old);
            int fd = -1;
            if (DialOnce(remote_host_, remote_port_, &fd).ok()) {
              AdoptSocket(fd);
              adopted = true;
              reconnect_attempt = 0;
              {
                std::lock_guard<std::mutex> clock_(counters_mu_);
                ++counters_.reconnects;
              }
              std::lock_guard<std::mutex> tlock(tracked_mu_);
              for (auto& [id, t] : tracked_) {
                resend.push_back(t.bytes);
                if (options_.submit_retry_ms > 0) {
                  t.next_send = now + std::chrono::milliseconds(
                                          options_.submit_retry_ms);
                }
              }
            } else {
              ++reconnect_attempt;
              next_reconnect =
                  now + std::chrono::milliseconds(BackoffDelayMs(
                            reconnect_attempt - 1, options_.backoff_initial_ms,
                            options_.backoff_max_ms, options_.backoff_seed));
            }
          }
        }
        if (adopted) {
          // The session-state handoff made the server side seamless; the
          // resends make the client side seamless too.
          for (const auto& bytes : resend) {
            (void)SendBytes(bytes);
            std::lock_guard<std::mutex> clock_(counters_mu_);
            ++counters_.retries_sent;
          }
        } else if (reconnect_attempt >= options_.reconnect_max_attempts) {
          conn_dead_.store(false, std::memory_order_release);
          AbortTracked(Status::Unavailable(
              "reconnect gave up after " +
              std::to_string(reconnect_attempt) + " attempts"));
          reconnect_attempt = 0;
        }
      }
    }

    // ---- Resend overdue tracked submits (and fail exhausted ones).
    if (options_.submit_retry_ms > 0 && connected() &&
        !conn_dead_.load(std::memory_order_acquire)) {
      std::vector<std::vector<uint8_t>> resend;
      std::vector<WireVerdict> exhausted;
      {
        std::lock_guard<std::mutex> tlock(tracked_mu_);
        for (auto it = tracked_.begin(); it != tracked_.end();) {
          TrackedSubmit& t = it->second;
          if (now < t.next_send) {
            ++it;
            continue;
          }
          if (t.retries >= options_.submit_max_retries) {
            WireVerdict v;
            if (t.has_failure) {
              v = t.last_failure;
            } else {
              v.stream_key = it->first.first;
              v.tag = it->first.second;
              v.seq = -1;
              v.status = Status::DeadlineExceeded(
                  "tracked submit exhausted " +
                  std::to_string(options_.submit_max_retries) + " retries");
            }
            exhausted.push_back(std::move(v));
            if (done_tags_.insert(it->first).second) {
              done_tags_lru_.push_back(it->first);
            }
            it = tracked_.erase(it);
            continue;
          }
          ++t.retries;
          t.next_send =
              now + std::chrono::milliseconds(options_.submit_retry_ms);
          resend.push_back(t.bytes);
          ++it;
        }
        while (done_tags_lru_.size() > kDoneTagsCap) {
          done_tags_.erase(done_tags_lru_.front());
          done_tags_lru_.pop_front();
        }
      }
      for (const auto& bytes : resend) {
        (void)SendBytes(bytes);
        std::lock_guard<std::mutex> clock_(counters_mu_);
        ++counters_.retries_sent;
      }
      if (handler_) {
        for (const WireVerdict& v : exhausted) handler_(v);
      }
    }

    // ---- Keepalive: ping an idle, healthy connection so silent peer
    // death surfaces as a read error instead of an eternal hang.
    if (options_.keepalive_ms > 0 && connected() &&
        !conn_dead_.load(std::memory_order_acquire) &&
        now - last_send >=
            std::chrono::milliseconds(options_.keepalive_ms)) {
      bool rpc_busy;
      {
        std::lock_guard<std::mutex> wlock(wait_mu_);
        rpc_busy = rpc_active_;
      }
      if (!rpc_busy) {
        WirePing ping;
        ping.token = kPingToken;
        std::vector<uint8_t> bytes;
        ping.EncodeTo(&bytes, FrameType::kPing);
        if (SendBytes(bytes).ok()) {
          std::lock_guard<std::mutex> clock_(counters_mu_);
          ++counters_.keepalive_pings;
        }
      }
    }

    lock.lock();
  }
}

}  // namespace tranad::net
