file(REMOVE_RECURSE
  "CMakeFiles/compare_detectors.dir/compare_detectors.cpp.o"
  "CMakeFiles/compare_detectors.dir/compare_detectors.cpp.o.d"
  "compare_detectors"
  "compare_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
