#ifndef TRANAD_DATA_SYNTHETIC_H_
#define TRANAD_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/time_series.h"

namespace tranad {

/// The anomaly taxonomy the generators can inject. The per-dataset mixes
/// mirror the characteristics the paper's analysis attributes each
/// benchmark's results to (e.g. SMD is dominated by *mild* anomalies close
/// to normal data; MSDS anomalies cascade across dimensions).
enum class AnomalyKind {
  kSpike,        // short extreme point anomalies
  kLevelShift,   // sustained collective offset on a dim subset
  kContextual,   // values plausible globally but wrong for their phase
  kMild,         // small-amplitude offsets barely above the noise floor
  kFrequency,    // seasonal-period change (ECG-arrhythmia-like)
  kCascade,      // fault starting in one dim propagating to others with lag
  kDropout,      // sensor flatlines at an arbitrary level
};

/// Recipe for one synthetic benchmark dataset.
struct SyntheticConfig {
  std::string name;
  int64_t dims = 1;
  int64_t train_len = 1000;
  int64_t test_len = 1000;
  /// Target fraction of anomalous timestamps in the test split.
  double anomaly_rate = 0.05;
  /// Observation-noise standard deviation (pre-normalization units).
  double noise = 0.05;
  /// AR(1) coefficient of the noise process (data volatility).
  double ar_coeff = 0.6;
  /// Dominant seasonal period in samples.
  int64_t period = 50;
  /// Number of shared latent factors driving inter-dimensional correlation.
  int64_t latent_factors = 2;
  /// Fraction of dimensions that behave like discrete actuators
  /// (square-wave regimes, as in SWaT/WADI) instead of smooth sensors.
  double actuator_fraction = 0.0;
  /// Linear drift magnitude over the whole series (non-stationarity).
  double trend = 0.0;
  /// Anomaly mix: kinds drawn proportionally to these weights.
  std::vector<std::pair<AnomalyKind, double>> anomaly_mix;
  /// Global multiplier on anomaly magnitudes (lower = harder dataset).
  double anomaly_magnitude = 1.0;
  /// Fraction of *test* timestamps covered by benign distractor events:
  /// unlabeled normal fluctuations of sub-anomalous magnitude that create
  /// false-positive pressure (real benchmarks are full of these).
  double benign_rate = 0.0;
  uint64_t seed = 42;
};

/// Generates a dataset from a recipe: a clean training series plus a test
/// series with injected, fully labeled anomalies (detection + per-dimension
/// diagnosis truth).
Dataset GenerateSynthetic(const SyntheticConfig& config);

/// Per-benchmark recipes, statistically matched to Table 1 of the paper
/// (dimensionality and length *ratios*, anomaly rate, and the qualitative
/// properties §4.3 discusses). `scale` multiplies series lengths.
SyntheticConfig NabConfig(double scale = 1.0);
SyntheticConfig UcrConfig(double scale = 1.0);
SyntheticConfig MbaConfig(double scale = 1.0);
SyntheticConfig SmapConfig(double scale = 1.0);
SyntheticConfig MslConfig(double scale = 1.0);
SyntheticConfig SwatConfig(double scale = 1.0);
SyntheticConfig WadiConfig(double scale = 1.0);
SyntheticConfig SmdConfig(double scale = 1.0);
SyntheticConfig MsdsConfig(double scale = 1.0);

/// All nine recipes in the paper's table order.
std::vector<SyntheticConfig> AllDatasetConfigs(double scale = 1.0);

/// Generates the named dataset ("NAB", "UCR", ..., case-sensitive).
Result<Dataset> GenerateDatasetByName(const std::string& name,
                                      double scale = 1.0, uint64_t seed = 42);

}  // namespace tranad

#endif  // TRANAD_DATA_SYNTHETIC_H_
