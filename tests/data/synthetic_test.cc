#include "data/synthetic.h"

#include <gtest/gtest.h>

namespace tranad {
namespace {

TEST(SyntheticTest, GeneratesValidDataset) {
  Dataset ds = GenerateSynthetic(SmdConfig(0.1));
  EXPECT_TRUE(ds.Validate().ok());
  EXPECT_TRUE(ds.test.has_dim_labels());
  EXPECT_EQ(ds.name, "SMD");
}

TEST(SyntheticTest, DeterministicForSeed) {
  Dataset a = GenerateSynthetic(NabConfig(0.2));
  Dataset b = GenerateSynthetic(NabConfig(0.2));
  EXPECT_TRUE(a.test.values.Equals(b.test.values));
  EXPECT_EQ(a.test.labels, b.test.labels);
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig c1 = NabConfig(0.2);
  SyntheticConfig c2 = NabConfig(0.2);
  c2.seed += 1;
  EXPECT_FALSE(GenerateSynthetic(c1).test.values.Equals(
      GenerateSynthetic(c2).test.values));
}

TEST(SyntheticTest, AnomalyRateApproximatesTarget) {
  Dataset ds = GenerateSynthetic(SmapConfig(0.5));
  const double target = SmapConfig(0.5).anomaly_rate;
  EXPECT_NEAR(ds.test.AnomalyRate(), target, target * 0.5);
  EXPECT_GT(ds.test.AnomalyRate(), 0.0);
}

TEST(SyntheticTest, TrainSplitIsUnlabeled) {
  Dataset ds = GenerateSynthetic(MbaConfig(0.2));
  EXPECT_FALSE(ds.train.has_labels());
}

TEST(SyntheticTest, DimLabelsConsistentWithDetectionLabels) {
  Dataset ds = GenerateSynthetic(MslConfig(0.3));
  for (int64_t t = 0; t < ds.test.length(); ++t) {
    bool any = false;
    for (int64_t d = 0; d < ds.dims(); ++d) {
      if (ds.test.dim_labels.At({t, d}) != 0.0f) any = true;
    }
    EXPECT_EQ(any, ds.test.labels[static_cast<size_t>(t)] != 0)
        << "timestamp " << t;
  }
}

class AllDatasetsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllDatasetsTest, GeneratesAndMatchesTable1Shape) {
  auto ds = GenerateDatasetByName(GetParam(), 0.1);
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ds->Validate().ok());
  EXPECT_GT(ds->test.AnomalyRate(), 0.0);
  // Dimensionality ordering of Table 1 (scaled): WADI widest, univariate
  // NAB/UCR, MBA bivariate.
  if (GetParam() == "NAB" || GetParam() == "UCR") {
    EXPECT_EQ(ds->dims(), 1);
  }
  if (GetParam() == "MBA") EXPECT_EQ(ds->dims(), 2);
  if (GetParam() == "WADI") EXPECT_GE(ds->dims(), 12);
}

INSTANTIATE_TEST_SUITE_P(PaperDatasets, AllDatasetsTest,
                         ::testing::Values("NAB", "UCR", "MBA", "SMAP",
                                           "MSL", "SWaT", "WADI", "SMD",
                                           "MSDS"));

TEST(AllDatasetConfigsTest, NineInPaperOrder) {
  const auto configs = AllDatasetConfigs();
  ASSERT_EQ(configs.size(), 9u);
  EXPECT_EQ(configs.front().name, "NAB");
  EXPECT_EQ(configs.back().name, "MSDS");
}

TEST(GenerateByNameTest, UnknownNameFails) {
  EXPECT_FALSE(GenerateDatasetByName("Yahoo").ok());
}

TEST(SyntheticTest, ScaleChangesLength) {
  Dataset small = GenerateSynthetic(SmdConfig(0.1));
  Dataset large = GenerateSynthetic(SmdConfig(0.2));
  EXPECT_GT(large.train.length(), small.train.length());
}

TEST(SyntheticTest, WadiIsNoisiest) {
  // §4.3 attributes WADI's difficulty to its noise; verify the recipe
  // encodes that.
  EXPECT_GT(WadiConfig().noise, SwatConfig().noise);
  EXPECT_GT(WadiConfig().noise, SmdConfig().noise);
}

TEST(SyntheticTest, MsdsCascadeTouchesMultipleDims) {
  Dataset ds = GenerateSynthetic(MsdsConfig(0.3));
  // Count anomalous timestamps where >= 2 dims are marked.
  int64_t multi = 0;
  int64_t any = 0;
  for (int64_t t = 0; t < ds.test.length(); ++t) {
    int64_t marked = 0;
    for (int64_t d = 0; d < ds.dims(); ++d) {
      marked += ds.test.dim_labels.At({t, d}) != 0.0f;
    }
    any += marked > 0;
    multi += marked >= 2;
  }
  ASSERT_GT(any, 0);
  EXPECT_GT(static_cast<double>(multi) / any, 0.3);
}

TEST(SyntheticTest, ValuesFinite) {
  for (const auto& config : AllDatasetConfigs(0.1)) {
    Dataset ds = GenerateSynthetic(config);
    for (int64_t i = 0; i < ds.test.values.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(ds.test.values[i])) << config.name;
    }
  }
}

TEST(SyntheticTest, MinimumLengthFloor) {
  // Tiny scales still produce usable datasets.
  Dataset ds = GenerateSynthetic(NabConfig(0.001));
  EXPECT_GE(ds.train.length(), 64);
  EXPECT_GE(ds.test.length(), 64);
}

}  // namespace
}  // namespace tranad
