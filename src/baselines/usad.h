#ifndef TRANAD_BASELINES_USAD_H_
#define TRANAD_BASELINES_USAD_H_

#include <memory>

#include "baselines/common.h"
#include "nn/linear.h"
#include "nn/optimizer.h"

namespace tranad {

/// USAD (Audibert et al., KDD'20): an autoencoder with one shared encoder
/// and two decoders trained adversarially —
///   L_AE1 = w |AE1(W)-W| + (1-w) |AE2(AE1(W))-W|
///   L_AE2 = w |AE2(W)-W| - (1-w) |AE2(AE1(W))-W|
/// with w = 1/n decaying over epochs; anomaly score
///   s = alpha |AE1(W)-W| + beta |AE2(AE1(W))-W|.
class UsadDetector : public WindowedDetector {
 public:
  explicit UsadDetector(int64_t window = 10, int64_t epochs = 5,
                        int64_t latent = 16, uint64_t seed = 11);

 protected:
  void BuildModel(int64_t dims) override;
  double TrainBatch(const Tensor& batch, double progress) override;
  Tensor ScoreBatch(const Tensor& batch) override;

 private:
  Variable Encode(const Variable& flat) const;
  Variable Decode1(const Variable& z) const;
  Variable Decode2(const Variable& z) const;

  int64_t latent_;
  uint64_t seed_;
  int64_t flat_dim_ = 0;
  std::unique_ptr<nn::Linear> enc1_, enc2_;
  std::unique_ptr<nn::Linear> dec1a_, dec1b_;
  std::unique_ptr<nn::Linear> dec2a_, dec2b_;
  std::unique_ptr<nn::AdamW> opt_;
  std::vector<Variable> params_ae1_, params_ae2_, all_params_;
};

}  // namespace tranad

#endif  // TRANAD_BASELINES_USAD_H_
