// Machine-fleet monitoring: the SMD scenario from the paper's motivation —
// detect anomalies in server metrics AND diagnose which metrics are the
// root cause (HitRate / NDCG), then persist the trained model and reload
// it, as a monitoring deployment would.
#include <cstdio>

#include "core/pipeline.h"
#include "core/tranad_detector.h"
#include "data/synthetic.h"
#include "eval/diagnosis.h"

int main() {
  using namespace tranad;

  Dataset dataset = GenerateSynthetic(SmdConfig(/*scale=*/0.4));
  std::printf("monitoring %lld metrics over %lld samples\n",
              static_cast<long long>(dataset.dims()),
              static_cast<long long>(dataset.train.length()));

  TranADConfig config;
  TrainOptions train;
  train.max_epochs = 5;
  TranADDetector detector(config, train);
  detector.Fit(dataset.train);

  // Detection + diagnosis in one call via the evaluation pipeline.
  // (EvaluateDetector would retrain; we already fitted, so score manually.)
  const Tensor scores = detector.Score(dataset.test);
  const DiagnosisMetrics diagnosis =
      EvaluateDiagnosis(scores, dataset.test.dim_labels);
  std::printf("diagnosis: HitRate@100%%=%.4f HitRate@150%%=%.4f "
              "NDCG@100%%=%.4f NDCG@150%%=%.4f over %lld anomalous steps\n",
              diagnosis.hitrate_100, diagnosis.hitrate_150,
              diagnosis.ndcg_100, diagnosis.ndcg_150,
              static_cast<long long>(diagnosis.evaluated_timestamps));

  // Root-cause report for the first few anomalous timestamps: rank the
  // metrics by anomaly score.
  int printed = 0;
  for (int64_t t = 0; t < dataset.test.length() && printed < 3; ++t) {
    if (dataset.test.labels[static_cast<size_t>(t)] == 0) continue;
    ++printed;
    int64_t worst = 0;
    for (int64_t d = 1; d < dataset.dims(); ++d) {
      if (scores.At({t, d}) > scores.At({t, worst})) worst = d;
    }
    std::printf("  t=%lld anomalous; suspected root cause: metric %lld "
                "(score %.5f)%s\n",
                static_cast<long long>(t), static_cast<long long>(worst),
                scores.At({t, worst}),
                dataset.test.dim_labels.At({t, worst}) != 0.0f
                    ? " [correct]"
                    : "");
  }

  // Persist + reload the trained model (deployment handoff).
  const std::string path = "/tmp/tranad_machine_monitoring.ckpt";
  if (!detector.model()->Save(path).ok()) {
    std::printf("failed to save checkpoint\n");
    return 1;
  }
  TranADConfig reload_config;
  reload_config.dims = dataset.dims();
  TranADModel reloaded(reload_config);
  if (!reloaded.Load(path).ok()) {
    std::printf("failed to reload checkpoint\n");
    return 1;
  }
  std::printf("checkpoint round-trip OK (%lld parameters) -> %s\n",
              static_cast<long long>(reloaded.NumParameters()),
              path.c_str());
  return 0;
}
