#ifndef TRANAD_NN_OPTIMIZER_H_
#define TRANAD_NN_OPTIMIZER_H_

#include <vector>

#include "common/status.h"
#include "tensor/variable.h"

namespace tranad::nn {

/// Base optimizer over a fixed parameter list. Step() applies one update
/// from the gradients currently stored on the parameters; ZeroGrad() clears
/// them for the next batch.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params, float lr);
  virtual ~Optimizer() = default;

  virtual void Step() = 0;
  void ZeroGrad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

  /// L2-norm gradient clipping across all parameters; returns the pre-clip
  /// norm. Applied by trainers before Step() when max_norm > 0.
  float ClipGradNorm(float max_norm);

 protected:
  std::vector<Variable> params_;
  float lr_;
};

/// Plain stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, float lr, float momentum = 0.0f);
  void Step() override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with optional *coupled* L2 regularisation.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

  /// Resumable state: step count plus per-parameter first/second moments,
  /// in parameter order.
  int64_t step_count() const { return t_; }
  const std::vector<Tensor>& moments1() const { return m_; }
  const std::vector<Tensor>& moments2() const { return v_; }

  /// Restores step count and moments (checkpoint resume). Moment vectors
  /// must match the parameter list in count and shapes.
  Status RestoreState(int64_t step_count, std::vector<Tensor> m,
                      std::vector<Tensor> v);

 protected:
  float beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  bool decoupled_ = false;
};

/// AdamW (Loshchilov & Hutter): Adam with decoupled weight decay — the
/// optimizer the paper trains TranAD with (lr 0.01).
class AdamW : public Adam {
 public:
  AdamW(std::vector<Variable> params, float lr, float beta1 = 0.9f,
        float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 1e-2f);
};

/// Multiplies the optimizer's learning rate by `gamma` every `step_size`
/// epochs — the paper's "step-scheduler with step size of 0.5".
class StepLr {
 public:
  StepLr(Optimizer* opt, int64_t step_size, float gamma);

  /// Call once per epoch.
  void Step();

  int64_t epoch() const { return epoch_; }
  /// Restores the epoch counter on resume; does NOT touch the optimizer's
  /// lr (the checkpoint stores the effective lr separately).
  void set_epoch(int64_t epoch) { epoch_ = epoch; }

 private:
  Optimizer* opt_;
  int64_t step_size_;
  float gamma_;
  int64_t epoch_ = 0;
};

}  // namespace tranad::nn

#endif  // TRANAD_NN_OPTIMIZER_H_
