#include "serve/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace tranad::serve {
namespace {

TEST(ServeBoundedQueueTest, TryPushRejectsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1).ok());
  EXPECT_TRUE(queue.TryPush(2).ok());
  const Status full = queue.TryPush(3);
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.size(), 2);

  // Popping frees a slot; admission resumes.
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_TRUE(queue.TryPush(3).ok());
}

TEST(ServeBoundedQueueTest, TryPushFailsAfterClose) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(1).ok());
  queue.Close();
  EXPECT_EQ(queue.TryPush(2).code(), StatusCode::kFailedPrecondition);
  // Items enqueued before the close still drain.
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(ServeBoundedQueueTest, PopBeforePastDeadlineIsNonBlockingPoll) {
  BoundedQueue<int> queue(4);
  const auto past = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.PopBefore(past).has_value());
  ASSERT_TRUE(queue.TryPush(7).ok());
  EXPECT_EQ(queue.PopBefore(past).value(), 7);
}

TEST(ServeBoundedQueueTest, PopBeforeTimesOutOnEmptyQueue) {
  BoundedQueue<int> queue(4);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(20);
  EXPECT_FALSE(queue.PopBefore(deadline).has_value());
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(ServeBoundedQueueTest, BlockingPushWaitsForConsumer) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(1).ok());
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // blocks until the consumer pops
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(ServeBoundedQueueTest, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2500;
  BoundedQueue<int> queue(16);

  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  for (auto& s : seen) s.store(0);

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.Pop()) {
        seen[static_cast<size_t>(*item)].fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();

  for (size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "item " << i;
  }
  EXPECT_EQ(queue.size(), 0);
}

}  // namespace
}  // namespace tranad::serve
