// Table 1: dataset statistics (train size, test size, dimensions, anomaly
// rate) for the nine synthetic benchmark stand-ins.
#include "bench/bench_util.h"

namespace tranad::bench {
namespace {

int Main() {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<double>> csv;
  for (const auto& name : DatasetNames()) {
    const Dataset& ds = BenchDataset(name);
    rows.push_back({name, std::to_string(ds.train.length()),
                    std::to_string(ds.test.length()),
                    std::to_string(ds.dims()),
                    Fmt2(100.0 * ds.test.AnomalyRate())});
    csv.push_back({static_cast<double>(ds.train.length()),
                   static_cast<double>(ds.test.length()),
                   static_cast<double>(ds.dims()),
                   100.0 * ds.test.AnomalyRate()});
  }
  PrintTable("Table 1: Dataset Statistics (synthetic stand-ins, scale=" +
                 Fmt2(DefaultScale()) + ")",
             {"Dataset", "Train", "Test", "Dimensions", "Anomalies (%)"},
             rows);
  const auto path = WriteBenchCsv(
      "table1_datasets", {"train", "test", "dims", "anomaly_pct"}, csv);
  std::printf("\nCSV: %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
