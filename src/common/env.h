#ifndef TRANAD_COMMON_ENV_H_
#define TRANAD_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace tranad {

/// Reads a double-valued environment knob, falling back to `def` when unset
/// or malformed. Benchmarks use TRANAD_SCALE / TRANAD_EPOCHS through this.
double EnvDouble(const char* name, double def);

/// Integer-valued environment knob.
int64_t EnvInt(const char* name, int64_t def);

/// String-valued environment knob.
std::string EnvString(const char* name, const std::string& def);

/// Global dataset-size multiplier for benchmarks (TRANAD_SCALE, default 1).
double BenchScale();

/// Global epoch override for benchmarks (TRANAD_EPOCHS, <=0 means per-bench
/// default).
int64_t BenchEpochs();

/// Requested compute-pool size (TRANAD_NUM_THREADS; <=0 or unset means
/// "auto": one lane per hardware thread). The pool reads this once, at
/// first use.
int64_t EnvNumThreads();

/// Tensor-arena cache ceiling in bytes (TRANAD_ARENA_MAX_MB, default 256).
/// Buffers released beyond the ceiling are freed instead of cached.
int64_t EnvArenaCapBytes();

}  // namespace tranad

#endif  // TRANAD_COMMON_ENV_H_
