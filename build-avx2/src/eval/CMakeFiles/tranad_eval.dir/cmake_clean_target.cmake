file(REMOVE_RECURSE
  "libtranad_eval.a"
)
