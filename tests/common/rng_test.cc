#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace tranad {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(8);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(10);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(12);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(14);
  const auto perm = rng.Permutation(50);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, PermutationShuffles) {
  Rng rng(15);
  const auto perm = rng.Permutation(100);
  int fixed = 0;
  for (size_t i = 0; i < perm.size(); ++i) fixed += perm[i] == i;
  EXPECT_LT(fixed, 10);
}

TEST(RngTest, SplitIndependentStreams) {
  Rng parent(16);
  Rng child = parent.Split();
  // Child and parent produce different streams.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.NextU64() == child.NextU64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedResetsStream) {
  Rng rng(17);
  const uint64_t first = rng.NextU64();
  rng.NextU64();
  rng.Seed(17);
  EXPECT_EQ(rng.NextU64(), first);
}

}  // namespace
}  // namespace tranad
