#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/thread_pool.h"

namespace tranad {
namespace {

// Parallel grain sizes: one chunk should amortize the scheduling overhead
// of shipping it to a pool worker. Elementwise work is ~1 flop/index;
// heavier per-index kernels scale the grain down by their inner size. Both
// are pure functions of the operand shapes, never of the thread count, so
// the per-index arithmetic (and therefore every output bit) is the same on
// 1 or N threads.
constexpr int64_t kElemGrain = 1 << 13;
constexpr int64_t kFlopGrain = 1 << 14;

int64_t RowGrain(int64_t row_len) {
  return std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, row_len));
}

// Applies `f` element-wise with numpy-style broadcasting. Every fast path
// parallelizes over self-contained output indices (an element, a row, or a
// tile), so chunk boundaries never touch the arithmetic.
template <typename F>
Tensor BinaryBroadcast(const Tensor& a, const Tensor& b, F f) {
  if (a.shape() == b.shape()) {
    Tensor out = Tensor::Uninitialized(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, a.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
    });
    return out;
  }
  if (b.numel() == 1) {
    Tensor out = Tensor::Uninitialized(a.shape());
    const float s = b.data()[0];
    const float* pa = a.data();
    float* po = out.data();
    ParallelFor(0, a.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], s);
    });
    return out;
  }
  if (a.numel() == 1) {
    Tensor out = Tensor::Uninitialized(b.shape());
    const float s = a.data()[0];
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, b.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = f(s, pb[i]);
    });
    return out;
  }
  // Fast path: one operand broadcasts along the last axis only, i.e. its
  // shape matches the other except for a trailing 1 ([..., K, 1] vs
  // [..., K, n] — LayerNorm's mean/var normalization). One scalar per row.
  auto last_dim_broadcast = [](const Tensor& full, const Tensor& rowwise) {
    if (full.ndim() != rowwise.ndim() || full.ndim() == 0) return false;
    const int64_t nd = full.ndim();
    if (rowwise.shape()[static_cast<size_t>(nd - 1)] != 1) return false;
    for (int64_t i = 0; i < nd - 1; ++i) {
      if (full.shape()[static_cast<size_t>(i)] !=
          rowwise.shape()[static_cast<size_t>(i)]) {
        return false;
      }
    }
    return true;
  };
  if (last_dim_broadcast(a, b)) {
    Tensor out = Tensor::Uninitialized(a.shape());
    const int64_t n = a.shape()[static_cast<size_t>(a.ndim() - 1)];
    const int64_t rows = b.numel();
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, rows, RowGrain(n), [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        const float s = pb[r];
        const float* row_a = pa + r * n;
        float* row_o = po + r * n;
        for (int64_t j = 0; j < n; ++j) row_o[j] = f(row_a[j], s);
      }
    });
    return out;
  }
  if (last_dim_broadcast(b, a)) {
    Tensor out = Tensor::Uninitialized(b.shape());
    const int64_t n = b.shape()[static_cast<size_t>(b.ndim() - 1)];
    const int64_t rows = a.numel();
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, rows, RowGrain(n), [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        const float s = pa[r];
        const float* row_b = pb + r * n;
        float* row_o = po + r * n;
        for (int64_t j = 0; j < n; ++j) row_o[j] = f(s, row_b[j]);
      }
    });
    return out;
  }
  // Fast path: one operand's shape equals the other's trailing dims (a bias
  // [n] added to [B, T, n], a mask [Tq, Tk] on [B, Tq, Tk]) — tiled loop.
  auto tail_broadcast = [](const Tensor& full, const Tensor& tail) {
    if (tail.ndim() >= full.ndim()) return false;
    const int64_t off = full.ndim() - tail.ndim();
    for (int64_t i = 0; i < tail.ndim(); ++i) {
      if (tail.shape()[static_cast<size_t>(i)] !=
          full.shape()[static_cast<size_t>(off + i)]) {
        return false;
      }
    }
    return true;
  };
  if (tail_broadcast(a, b)) {
    Tensor out = Tensor::Uninitialized(a.shape());
    const int64_t tile = b.numel();
    const int64_t reps = a.numel() / tile;
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, reps, RowGrain(tile), [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        const float* block_a = pa + r * tile;
        float* block_o = po + r * tile;
        for (int64_t j = 0; j < tile; ++j) block_o[j] = f(block_a[j], pb[j]);
      }
    });
    return out;
  }
  if (tail_broadcast(b, a)) {
    Tensor out = Tensor::Uninitialized(b.shape());
    const int64_t tile = a.numel();
    const int64_t reps = b.numel() / tile;
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, reps, RowGrain(tile), [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        const float* block_b = pb + r * tile;
        float* block_o = po + r * tile;
        for (int64_t j = 0; j < tile; ++j) block_o[j] = f(pa[j], block_b[j]);
      }
    });
    return out;
  }
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  Tensor out = Tensor::Uninitialized(out_shape);
  const int64_t nd = static_cast<int64_t>(out_shape.size());
  // Effective strides with 0 for broadcast axes.
  auto eff_strides = [&](const Tensor& t) {
    std::vector<int64_t> s(static_cast<size_t>(nd), 0);
    const auto ts = ContiguousStrides(t.shape());
    const int64_t off = nd - t.ndim();
    for (int64_t i = 0; i < t.ndim(); ++i) {
      if (t.shape()[static_cast<size_t>(i)] != 1) {
        s[static_cast<size_t>(off + i)] = ts[static_cast<size_t>(i)];
      }
    }
    return s;
  };
  const auto sa = eff_strides(a);
  const auto sb = eff_strides(b);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = out.numel();
  // Each chunk re-derives its odometer state from its first linear index,
  // then walks incrementally — identical element arithmetic to the serial
  // walk, just resumable at any index.
  ParallelFor(0, n, kElemGrain, [&](int64_t chunk_lo, int64_t chunk_hi) {
    std::vector<int64_t> idx(static_cast<size_t>(nd), 0);
    int64_t oa = 0;
    int64_t ob = 0;
    int64_t rem = chunk_lo;
    for (int64_t d = nd - 1; d >= 0; --d) {
      const size_t ud = static_cast<size_t>(d);
      const int64_t i_d = rem % out_shape[ud];
      rem /= out_shape[ud];
      idx[ud] = i_d;
      oa += i_d * sa[ud];
      ob += i_d * sb[ud];
    }
    for (int64_t lin = chunk_lo; lin < chunk_hi; ++lin) {
      po[lin] = f(pa[oa], pb[ob]);
      // Increment the multi-index (odometer), updating offsets
      // incrementally.
      for (int64_t d = nd - 1; d >= 0; --d) {
        const size_t ud = static_cast<size_t>(d);
        ++idx[ud];
        oa += sa[ud];
        ob += sb[ud];
        if (idx[ud] < out_shape[ud]) break;
        oa -= sa[ud] * out_shape[ud];
        ob -= sb[ud] * out_shape[ud];
        idx[ud] = 0;
      }
    }
  });
  return out;
}

template <typename F>
Tensor Unary(const Tensor& a, F f) {
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, a.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i]);
  });
  return out;
}

}  // namespace

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const size_t nd = std::max(a.size(), b.size());
  Shape out(nd, 1);
  for (size_t i = 0; i < nd; ++i) {
    const int64_t da = i < nd - a.size() ? 1 : a[i - (nd - a.size())];
    const int64_t db = i < nd - b.size() ? 1 : b[i - (nd - b.size())];
    TRANAD_CHECK_MSG(da == db || da == 1 || db == 1,
                     "cannot broadcast " << ShapeToString(a) << " with "
                                         << ShapeToString(b));
    out[i] = std::max(da, db);
  }
  return out;
}

Tensor ReduceTo(const Tensor& t, const Shape& target) {
  if (t.shape() == target) return t;
  Tensor cur = t;
  // Collapse extra leading axes first.
  while (cur.ndim() > static_cast<int64_t>(target.size())) {
    cur = Sum(cur, 0, /*keepdims=*/false);
  }
  // Then sum over axes where target has size 1.
  for (int64_t i = 0; i < cur.ndim(); ++i) {
    if (target[static_cast<size_t>(i)] == 1 && cur.size(i) != 1) {
      cur = Sum(cur, i, /*keepdims=*/true);
    }
  }
  TRANAD_CHECK_MSG(cur.shape() == target,
                   "ReduceTo " << ShapeToString(t.shape()) << " -> "
                               << ShapeToString(target));
  return cur;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, [](float x, float y) { return x / y; });
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, [](float x, float y) { return std::max(x, y); });
}

Tensor AddScalar(const Tensor& a, float s) {
  return Unary(a, [s](float x) { return x + s; });
}
Tensor MulScalar(const Tensor& a, float s) {
  return Unary(a, [s](float x) { return x * s; });
}

Tensor Neg(const Tensor& a) {
  return Unary(a, [](float x) { return -x; });
}
Tensor Exp(const Tensor& a) {
  return Unary(a, [](float x) { return std::exp(x); });
}
Tensor Log(const Tensor& a) {
  return Unary(a, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) {
  return Unary(a, [](float x) { return std::sqrt(x); });
}
Tensor Abs(const Tensor& a) {
  return Unary(a, [](float x) { return std::fabs(x); });
}
Tensor Square(const Tensor& a) {
  return Unary(a, [](float x) { return x * x; });
}
Tensor Tanh(const Tensor& a) {
  return Unary(a, [](float x) { return std::tanh(x); });
}
Tensor Sigmoid(const Tensor& a) {
  return Unary(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor Relu(const Tensor& a) {
  return Unary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor LeakyRelu(const Tensor& a, float slope) {
  return Unary(a, [slope](float x) { return x > 0.0f ? x : slope * x; });
}
Tensor Gelu(const Tensor& a) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  return Unary(a, [](float x) {
    const float inner = kC * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
  });
}

namespace {

// One output row of an (M,K)x(K,N) product: orow = arow @ b, accumulated
// from zero. Four k-rows per sweep over orow: quarters the store traffic.
// Each contribution is accumulated as its own rounding step (+= av0*...,
// then += av1*..., ...), i.e. ascending-p order, so results stay
// bit-identical to the scalar loop — and to any parallel schedule, since a
// row is always computed whole by one thread. All-zero groups (the zeroed
// focus half of the phase-1 input) are skipped wholesale.
void MatMulRow(const float* __restrict arow, const float* __restrict b,
               float* __restrict orow, int64_t k, int64_t n) {
  std::fill(orow, orow + n, 0.0f);
  int64_t p = 0;
  for (; p + 3 < k; p += 4) {
    const float av0 = arow[p];
    const float av1 = arow[p + 1];
    const float av2 = arow[p + 2];
    const float av3 = arow[p + 3];
    const float* __restrict brow0 = b + p * n;
    if (av0 == 0.0f && av1 == 0.0f && av2 == 0.0f && av3 == 0.0f) {
      continue;
    }
    for (int64_t j = 0; j < n; ++j) {
      float acc = orow[j] + av0 * brow0[j];
      acc += av1 * brow0[n + j];
      acc += av2 * brow0[2 * n + j];
      acc += av3 * brow0[3 * n + j];
      orow[j] = acc;
    }
  }
  for (; p < k; ++p) {
    const float av = arow[p];
    if (av == 0.0f) continue;
    const float* __restrict brow = b + p * n;
    for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TRANAD_CHECK_GE(a.ndim(), 2);
  TRANAD_CHECK_GE(b.ndim(), 2);
  const int64_t m = a.size(-2);
  const int64_t k = a.size(-1);
  TRANAD_CHECK_MSG(b.size(-2) == k, "matmul inner dim: "
                                        << ShapeToString(a.shape()) << " x "
                                        << ShapeToString(b.shape()));
  const int64_t n = b.size(-1);
  // Batch dims.
  Shape ba(a.shape().begin(), a.shape().end() - 2);
  Shape bb(b.shape().begin(), b.shape().end() - 2);
  const Shape batch = BroadcastShapes(ba, bb);
  const int64_t nbatch = NumElements(batch);
  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(n);
  Tensor out = Tensor::Uninitialized(out_shape);
  const int64_t a_batches = NumElements(ba);
  const int64_t b_batches = NumElements(bb);
  // Simple broadcast rule for batches: each operand either matches the
  // output batch count or has exactly one batch.
  TRANAD_CHECK(a_batches == nbatch || a_batches == 1);
  TRANAD_CHECK(b_batches == nbatch || b_batches == 1);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // Partition over batch x output-rows; each row is produced whole by one
  // thread, with k*n flops per index setting the grain.
  const int64_t row_grain =
      std::max<int64_t>(1, kFlopGrain / std::max<int64_t>(1, k * n));
  ParallelFor(0, nbatch * m, row_grain, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t bi = r / m;
      const int64_t i = r % m;
      const float* am = pa + (a_batches == 1 ? 0 : bi) * m * k + i * k;
      const float* bm = pb + (b_batches == 1 ? 0 : bi) * k * n;
      MatMulRow(am, bm, po + r * n, k, n);
    }
  });
  return out;
}

Tensor TransposeLast2(const Tensor& a) {
  TRANAD_CHECK_GE(a.ndim(), 2);
  const int64_t m = a.size(-2);
  const int64_t n = a.size(-1);
  Shape out_shape = a.shape();
  std::swap(out_shape[out_shape.size() - 1], out_shape[out_shape.size() - 2]);
  Tensor out = Tensor::Uninitialized(out_shape);
  const int64_t nbatch = a.numel() / (m * n);
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, nbatch, RowGrain(m * n), [&](int64_t lo, int64_t hi) {
    for (int64_t b = lo; b < hi; ++b) {
      const float* am = pa + b * m * n;
      float* om = po + b * m * n;
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) om[j * m + i] = am[i * n + j];
      }
    }
  });
  return out;
}

Tensor SwapAxes12(const Tensor& a) {
  TRANAD_CHECK_EQ(a.ndim(), 4);
  const int64_t n0 = a.size(0);
  const int64_t n1 = a.size(1);
  const int64_t n2 = a.size(2);
  const int64_t n3 = a.size(3);
  Tensor out = Tensor::Uninitialized({n0, n2, n1, n3});
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, n0 * n1, RowGrain(n2 * n3), [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t i0 = r / n1;
      const int64_t i1 = r % n1;
      for (int64_t i2 = 0; i2 < n2; ++i2) {
        std::copy(pa + ((i0 * n1 + i1) * n2 + i2) * n3,
                  pa + ((i0 * n1 + i1) * n2 + i2 + 1) * n3,
                  po + ((i0 * n2 + i2) * n1 + i1) * n3);
      }
    }
  });
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  TRANAD_CHECK(!parts.empty());
  const int64_t nd = parts.front().ndim();
  if (axis < 0) axis += nd;
  TRANAD_CHECK(axis >= 0 && axis < nd);
  Shape out_shape = parts.front().shape();
  int64_t total = 0;
  for (const auto& p : parts) {
    TRANAD_CHECK_EQ(p.ndim(), nd);
    for (int64_t i = 0; i < nd; ++i) {
      if (i != axis) TRANAD_CHECK_EQ(p.size(i), out_shape[static_cast<size_t>(i)]);
    }
    total += p.size(axis);
  }
  out_shape[static_cast<size_t>(axis)] = total;
  Tensor out = Tensor::Uninitialized(out_shape);
  // outer = product of dims before axis; inner = product after.
  int64_t outer = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= out_shape[static_cast<size_t>(i)];
  int64_t inner = 1;
  for (int64_t i = axis + 1; i < nd; ++i) {
    inner *= out_shape[static_cast<size_t>(i)];
  }
  float* po = out.data();
  const int64_t out_row = total * inner;
  int64_t col_off = 0;
  for (const auto& p : parts) {
    const int64_t len = p.size(axis);
    const float* pp = p.data();
    ParallelFor(0, outer, RowGrain(len * inner), [&](int64_t lo, int64_t hi) {
      for (int64_t o = lo; o < hi; ++o) {
        std::copy(pp + o * len * inner, pp + (o + 1) * len * inner,
                  po + o * out_row + col_off * inner);
      }
    });
    col_off += len;
  }
  return out;
}

Tensor SliceAxis(const Tensor& a, int64_t axis, int64_t start, int64_t len) {
  const int64_t nd = a.ndim();
  if (axis < 0) axis += nd;
  TRANAD_CHECK(axis >= 0 && axis < nd);
  TRANAD_CHECK(start >= 0 && len >= 0 && start + len <= a.size(axis));
  Shape out_shape = a.shape();
  out_shape[static_cast<size_t>(axis)] = len;
  Tensor out = Tensor::Uninitialized(out_shape);
  int64_t outer = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= a.size(i);
  int64_t inner = 1;
  for (int64_t i = axis + 1; i < nd; ++i) inner *= a.size(i);
  const int64_t in_row = a.size(axis) * inner;
  const int64_t out_row = len * inner;
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, outer, RowGrain(out_row), [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      std::copy(pa + o * in_row + start * inner,
                pa + o * in_row + (start + len) * inner, po + o * out_row);
    }
  });
  return out;
}

float SumAll(const Tensor& a) {
  // Serial on purpose: the ordered double accumulation is part of the
  // deterministic contract (a parallel tree reduction would round
  // differently), and full reductions are a negligible slice of runtime.
  double s = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) s += p[i];
  return static_cast<float>(s);
}

float MeanAll(const Tensor& a) {
  TRANAD_CHECK_GT(a.numel(), 0);
  return SumAll(a) / static_cast<float>(a.numel());
}

float MaxAll(const Tensor& a) {
  TRANAD_CHECK_GT(a.numel(), 0);
  float m = a.data()[0];
  for (int64_t i = 1; i < a.numel(); ++i) m = std::max(m, a.data()[i]);
  return m;
}

float MinAll(const Tensor& a) {
  TRANAD_CHECK_GT(a.numel(), 0);
  float m = a.data()[0];
  for (int64_t i = 1; i < a.numel(); ++i) m = std::min(m, a.data()[i]);
  return m;
}

namespace {

template <typename Init, typename Acc>
Tensor ReduceAxis(const Tensor& a, int64_t axis, bool keepdims, Init init,
                  Acc acc) {
  const int64_t nd = a.ndim();
  if (axis < 0) axis += nd;
  TRANAD_CHECK(axis >= 0 && axis < nd);
  const int64_t len = a.size(axis);
  int64_t outer = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= a.size(i);
  int64_t inner = 1;
  for (int64_t i = axis + 1; i < nd; ++i) inner *= a.size(i);
  Shape out_shape;
  for (int64_t i = 0; i < nd; ++i) {
    if (i == axis) {
      if (keepdims) out_shape.push_back(1);
    } else {
      out_shape.push_back(a.size(i));
    }
  }
  Tensor out = Tensor::Uninitialized(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  // Each output element reduces its own strided fiber sequentially (in
  // ascending axis order), so the accumulation order per output never
  // depends on the schedule.
  ParallelFor(0, outer * inner, RowGrain(len), [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      const int64_t o = t / inner;
      const int64_t in = t % inner;
      float v = init(pa[o * len * inner + in]);
      for (int64_t l = 1; l < len; ++l) {
        v = acc(v, pa[(o * len + l) * inner + in]);
      }
      po[o * inner + in] = v;
    }
  });
  return out;
}

}  // namespace

Tensor Sum(const Tensor& a, int64_t axis, bool keepdims) {
  return ReduceAxis(
      a, axis, keepdims, [](float x) { return x; },
      [](float v, float x) { return v + x; });
}

Tensor Mean(const Tensor& a, int64_t axis, bool keepdims) {
  const int64_t nd = a.ndim();
  const int64_t ax = axis < 0 ? axis + nd : axis;
  Tensor s = Sum(a, axis, keepdims);
  return MulScalar(s, 1.0f / static_cast<float>(a.size(ax)));
}

Tensor Max(const Tensor& a, int64_t axis, bool keepdims) {
  return ReduceAxis(
      a, axis, keepdims, [](float x) { return x; },
      [](float v, float x) { return std::max(v, x); });
}

Tensor SoftmaxLastDim(const Tensor& a) {
  TRANAD_CHECK_GE(a.ndim(), 1);
  const int64_t n = a.size(-1);
  const int64_t rows = a.numel() / n;
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, rows, RowGrain(n), [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* row = pa + r * n;
      float* orow = po + r * n;
      float mx = row[0];
      for (int64_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
      float denom = 0.0f;
      for (int64_t j = 0; j < n; ++j) {
        orow[j] = std::exp(row[j] - mx);
        denom += orow[j];
      }
      const float inv = 1.0f / denom;
      for (int64_t j = 0; j < n; ++j) orow[j] *= inv;
    }
  });
  return out;
}

Tensor LayerNormLastDim(const Tensor& a, float eps) {
  TRANAD_CHECK_GE(a.ndim(), 1);
  const int64_t n = a.size(-1);
  const int64_t rows = a.numel() / n;
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, rows, RowGrain(n), [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* row = pa + r * n;
      float* orow = po + r * n;
      float mean = 0.0f;
      for (int64_t j = 0; j < n; ++j) mean += row[j];
      mean /= static_cast<float>(n);
      float var = 0.0f;
      for (int64_t j = 0; j < n; ++j) {
        const float d = row[j] - mean;
        var += d * d;
      }
      var /= static_cast<float>(n);
      const float inv = 1.0f / std::sqrt(var + eps);
      for (int64_t j = 0; j < n; ++j) orow[j] = (row[j] - mean) * inv;
    }
  });
  return out;
}

}  // namespace tranad
