// Table 3: AUC* / F1* — detection quality when training on a random 20%
// slice of the training data, averaged over several slices (the paper uses
// five; override with TRANAD_SEEDS).
#include "bench/bench_util.h"

#include "common/env.h"
#include "data/preprocess.h"
#include "eval/metrics.h"

namespace tranad::bench {
namespace {

int Main() {
  const auto methods = PaperMethodNames();
  const int64_t epochs = DefaultEpochs();
  const int64_t seeds = EnvInt("TRANAD_SEEDS", 3);
  std::vector<std::vector<double>> csv;

  const auto datasets = DatasetNames();
  for (size_t di = 0; di < datasets.size(); ++di) {
    const Dataset& full = BenchDataset(datasets[di]);
    std::vector<std::vector<std::string>> rows;
    for (const auto& method : methods) {
      double auc = 0.0;
      double f1 = 0.0;
      // MERLIN is training-free: one run suffices (the paper likewise
      // reports its full-data scores as F1*/AUC*).
      const int64_t runs = method == "MERLIN" ? 1 : seeds;
      for (int64_t s = 0; s < runs; ++s) {
        Rng rng(1000 + static_cast<uint64_t>(s) * 77);
        Dataset limited;
        limited.name = full.name;
        limited.train = SubsampleTrain(full.train, 0.2, &rng);
        limited.test = full.test;
        DetectorOptions options;
        options.epochs = epochs;
        options.seed = 7 + static_cast<uint64_t>(s);
        auto det = CreateDetector(method, options);
        TRANAD_CHECK(det.ok());
        const EvalOutcome out = EvaluateDetector(det->get(), limited);
        auc += out.detection.roc_auc;
        f1 += out.detection.f1;
      }
      auc /= static_cast<double>(runs);
      f1 /= static_cast<double>(runs);
      rows.push_back({method, Fmt4(auc), Fmt4(f1)});
      csv.push_back({static_cast<double>(di), auc, f1});
      std::fflush(stdout);
    }
    PrintTable("Table 3 (" + datasets[di] + "): 20% training data",
               {"Method", "AUC*", "F1*"}, rows);
  }
  const auto path =
      WriteBenchCsv("table3_limited", {"dataset_idx", "auc_star", "f1_star"},
                    csv);
  std::printf("\nCSV: %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
