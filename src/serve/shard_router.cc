#include "serve/shard_router.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"

namespace tranad::serve {
namespace {

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer, so sequential
/// stream keys (1, 2, 3, ...) land uniformly on the ring instead of
/// clustering. Stable across platforms — placement is part of the
/// observable contract (clients may cache shard assignments).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Ring point for one (shard, vnode) virtual node.
uint64_t VnodePoint(int64_t shard, int64_t vnode) {
  return Mix64((static_cast<uint64_t>(shard) << 32) ^
               static_cast<uint64_t>(vnode) ^ 0x5ca1ab1edeadbeefULL);
}

}  // namespace

ShardRouter::ShardRouter(TranADDetector* detector, ShardRouterOptions options)
    : options_(std::move(options)) {
  TRANAD_CHECK(detector != nullptr);
  TRANAD_CHECK_GT(options_.num_shards, 0);
  TRANAD_CHECK_GT(options_.vnodes_per_shard, 0);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  shard_states_.reserve(static_cast<size_t>(options_.num_shards));
  for (int64_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<ServeEngine>(detector, options_.shard));
    shard_states_.push_back(std::make_unique<ShardState>());
  }
  ring_.reserve(
      static_cast<size_t>(options_.num_shards * options_.vnodes_per_shard));
  for (int64_t s = 0; s < options_.num_shards; ++s) {
    for (int64_t v = 0; v < options_.vnodes_per_shard; ++v) {
      ring_.emplace_back(VnodePoint(s, v), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
  // The failover thread exists even with the health machine off: a
  // `shard.kill` failpoint can trip a shard regardless of thresholds, and
  // an idle thread parked on a condition variable costs nothing.
  failover_ = std::thread([this] { FailoverLoop(); });
}

ShardRouter::~ShardRouter() { Stop(); }

void ShardRouter::Stop() {
  {
    std::lock_guard<std::mutex> lock(failover_mu_);
    failover_stop_ = true;
  }
  failover_cv_.notify_all();
  if (failover_.joinable()) failover_.join();
  for (auto& shard : shards_) shard->Stop();
}

int64_t ShardRouter::ShardOf(uint64_t key) const {
  const uint64_t h = Mix64(key);
  // First ring point at or after h, wrapping to the start (the classic
  // consistent-hash successor walk).
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, int64_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

int64_t ShardRouter::LiveShardOf(uint64_t key) const {
  const uint64_t h = Mix64(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, int64_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  // Successor walk skipping vnodes of down shards: the failover placement
  // rule ("next live shard on the ring"). Bounded by one full lap.
  for (size_t step = 0; step < ring_.size(); ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    const int64_t shard = it->second;
    if (shard_states_[static_cast<size_t>(shard)]->health.load(
            std::memory_order_acquire) !=
        static_cast<int>(ShardHealth::kDown)) {
      return shard;
    }
  }
  return ShardOf(key);  // every shard down: unreachable under the guard
}

ShardHealth ShardRouter::shard_health(int64_t shard) const {
  TRANAD_CHECK_GE(shard, 0);
  TRANAD_CHECK_LT(shard, num_shards());
  return static_cast<ShardHealth>(
      shard_states_[static_cast<size_t>(shard)]->health.load(
          std::memory_order_acquire));
}

Status ShardRouter::CreateStream(uint64_t key, const TimeSeries& calibration) {
  const int64_t shard = LiveShardOf(key);
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    if (routes_.count(key) != 0) {
      return Status::FailedPrecondition("stream key " + std::to_string(key) +
                                        " is already registered");
    }
  }
  // Calibration (a full scoring pass) runs outside routes_mu_ so other
  // streams keep routing; the insert below re-checks for a racing create.
  Result<StreamId> local =
      shards_[static_cast<size_t>(shard)]->CreateStream(calibration);
  if (!local.ok()) return local.status();
  std::lock_guard<std::mutex> lock(routes_mu_);
  auto [it, inserted] = routes_.emplace(key, Route{shard, local.value()});
  if (!inserted) {
    // Lost a create race for the same key: undo our shard-local stream.
    (void)shards_[static_cast<size_t>(shard)]->CloseStream(local.value());
    return Status::FailedPrecondition("stream key " + std::to_string(key) +
                                      " is already registered");
  }
  return Status::Ok();
}

Result<ShardRouter::Route> ShardRouter::FindRoute(uint64_t key) const {
  std::lock_guard<std::mutex> lock(routes_mu_);
  auto it = routes_.find(key);
  if (it == routes_.end()) {
    return Status::NotFound("no stream with key " + std::to_string(key));
  }
  return it->second;
}

Status ShardRouter::CloseStream(uint64_t key) {
  Route route;
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    auto it = routes_.find(key);
    if (it == routes_.end()) {
      return Status::NotFound("no stream with key " + std::to_string(key));
    }
    route = it->second;
    routes_.erase(it);
  }
  return shards_[static_cast<size_t>(route.shard)]->CloseStream(route.local);
}

Status ShardRouter::Submit(uint64_t key, const Tensor& observation,
                           VerdictCallback callback) {
  TRANAD_ASSIGN_OR_RETURN(const Route route, FindRoute(key));
  // Chaos hook: an armed `shard.kill` takes the routed shard down as if its
  // engine had died mid-request. The observation is refused *before*
  // admission (it never touches the ring or POT), which is what makes the
  // post-migration bit-exactness guarantee testable: the caller retries the
  // refused observation on the migrated stream.
  if (auto fp = TRANAD_FAILPOINT("shard.kill"); fp.is_error()) {
    TripShard(route.shard);
    return fp.ToStatus("shard " + std::to_string(route.shard) + " kill");
  }
  // Trip-to-migration window: the route still names the dead shard until
  // the failover thread flips it. Refuse with the retryable code (the dead
  // engine itself would answer FailedPrecondition, which clients rightly
  // treat as final) so a retrying client sails through the failover.
  if (shard_health(route.shard) == ShardHealth::kDown) {
    return Status::Unavailable("shard " + std::to_string(route.shard) +
                               " is failing over; retry");
  }
  // Re-key the verdict so callers see their own stream key, not the
  // shard-local id (which is meaningless — and colliding — fleet-wide).
  // Health observation rides on the same wrapper, and only when the health
  // machine is actually on — the default hot path stays a plain re-key.
  const bool observe_health =
      options_.degraded_after > 0 || options_.down_after > 0;
  VerdictCallback rekeyed;
  if (callback || observe_health) {
    const int64_t shard = route.shard;
    rekeyed = [this, key, shard, observe_health, cb = std::move(callback)](
                  StreamId /*local*/, int64_t seq,
                  const OnlineVerdict& verdict) {
      if (observe_health) ObserveVerdict(shard, verdict.status);
      if (cb) cb(key, seq, verdict);
    };
  }
  return shards_[static_cast<size_t>(route.shard)]->Submit(
      route.local, observation, std::move(rekeyed));
}

void ShardRouter::ObserveVerdict(int64_t shard, const Status& status) {
  ShardState& state = *shard_states_[static_cast<size_t>(shard)];
  // Only shard-fault statuses count: worker faults surface IoError (the
  // failpoint default) or Internal (watchdog unwedge). Per-request outcomes
  // — deadline expiry, shed, invalid input — say nothing about the shard.
  const bool shard_fault = status.code() == StatusCode::kInternal ||
                           status.code() == StatusCode::kIoError;
  if (!shard_fault) {
    state.consecutive_failures.store(0, std::memory_order_release);
    return;
  }
  const int64_t streak =
      state.consecutive_failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (options_.degraded_after > 0 && streak >= options_.degraded_after) {
    int expected = static_cast<int>(ShardHealth::kHealthy);
    state.health.compare_exchange_strong(
        expected, static_cast<int>(ShardHealth::kDegraded),
        std::memory_order_acq_rel);
  }
  if (options_.down_after > 0 && streak >= options_.down_after) {
    TripShard(shard);
  }
}

bool ShardRouter::TripShard(int64_t shard) {
  std::lock_guard<std::mutex> lock(failover_mu_);
  ShardState& state = *shard_states_[static_cast<size_t>(shard)];
  if (state.health.load(std::memory_order_acquire) ==
      static_cast<int>(ShardHealth::kDown)) {
    return false;  // already tripped (a queued failover will handle it)
  }
  // Last-live guard: the fleet never kills its own last engine. Pin the
  // shard at degraded — it keeps serving, however unhealthily, because
  // migrating its streams would have nowhere to go.
  int64_t live = 0;
  for (const auto& s : shard_states_) {
    if (s->health.load(std::memory_order_acquire) !=
        static_cast<int>(ShardHealth::kDown)) {
      ++live;
    }
  }
  if (live <= 1) {
    state.health.store(static_cast<int>(ShardHealth::kDegraded),
                       std::memory_order_release);
    return false;
  }
  state.health.store(static_cast<int>(ShardHealth::kDown),
                     std::memory_order_release);
  shards_failed_.fetch_add(1, std::memory_order_acq_rel);
  ++failovers_in_flight_;
  failover_queue_.push_back(shard);
  failover_cv_.notify_all();
  return true;
}

void ShardRouter::FailoverLoop() {
  std::unique_lock<std::mutex> lock(failover_mu_);
  for (;;) {
    failover_cv_.wait(lock, [this] {
      return !failover_queue_.empty() || failover_stop_;
    });
    // Drain queued trips even during stop: a tripped shard's queued
    // requests must still complete (exactly once) before shutdown.
    if (failover_queue_.empty()) return;
    const int64_t dead = failover_queue_.front();
    failover_queue_.pop_front();
    lock.unlock();
    FailOverShard(dead);
    lock.lock();
    --failovers_in_flight_;
    failover_cv_.notify_all();
  }
}

void ShardRouter::FailOverShard(int64_t dead) {
  ServeEngine& engine = *shards_[static_cast<size_t>(dead)];
  // Kill, not Stop: queued-but-unscored submissions complete exactly once
  // with this status instead of being scored on a dead shard.
  engine.Kill(Status::Unavailable("shard " + std::to_string(dead) +
                                  " is down; stream migrated — retry"));
  // Migrate every victim stream under routes_mu_ so the route flip is
  // atomic fleet-wide: no Submit ever sees a half-moved stream. Import does
  // not score (no calibration pass), so the critical section is cheap.
  std::lock_guard<std::mutex> lock(routes_mu_);
  for (auto& [key, route] : routes_) {
    if (route.shard != dead) continue;
    Result<StreamSessionState> exported = engine.ExportStream(route.local);
    if (!exported.ok()) continue;  // closed concurrently: nothing to move
    bool migrated = false;
    if (auto fp = TRANAD_FAILPOINT("shard.migrate"); !fp.is_error()) {
      const int64_t target = LiveShardOf(key);
      Result<StreamId> imported =
          shards_[static_cast<size_t>(target)]->ImportStream(exported.value());
      if (imported.ok()) {
        route.shard = target;
        route.local = imported.value();
        streams_migrated_.fetch_add(1, std::memory_order_acq_rel);
        migrated = true;
      }
    }
    // A stream that could not be re-homed is dropped from the route table;
    // the caller sees NotFound and re-creates it (losing calibration state,
    // which the status makes visible — never silently wrong verdicts).
    if (!migrated) route.shard = -1;
  }
  // Erase dropped routes in a second pass (cannot erase while iterating).
  for (auto it = routes_.begin(); it != routes_.end();) {
    it = it->second.shard == -1 ? routes_.erase(it) : std::next(it);
  }
}

void ShardRouter::WaitForFailovers() {
  std::unique_lock<std::mutex> lock(failover_mu_);
  failover_cv_.wait(lock, [this] {
    return (failover_queue_.empty() && failovers_in_flight_ == 0) ||
           failover_stop_;
  });
}

Status ShardRouter::ReleaseQuarantine(uint64_t key) {
  TRANAD_ASSIGN_OR_RETURN(const Route route, FindRoute(key));
  return shards_[static_cast<size_t>(route.shard)]->ReleaseQuarantine(
      route.local);
}

Status ShardRouter::ReloadModel(const std::string& path) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Status st = shards_[s]->ReloadModel(path);
    if (st.ok()) continue;
    // Shard s rolled itself back (ServeEngine's swap is all-or-nothing).
    // Re-converge the shards already swapped onto the previous checkpoint
    // when one is known; without one the fleet is left mixed-version and
    // the status says so.
    std::string detail = "rolling reload failed at shard " +
                         std::to_string(s) + "/" +
                         std::to_string(shards_.size()) + ": " + st.message();
    if (s == 0) {
      return Status(st.code(), detail + " (no shard was swapped)");
    }
    if (model_path_.empty()) {
      return Status(st.code(),
                    detail + " (shards 0.." + std::to_string(s - 1) +
                        " serve the new model; no previous checkpoint path "
                        "is known to roll them back to)");
    }
    int64_t rolled_back = 0;
    for (size_t r = 0; r < s; ++r) {
      if (shards_[r]->ReloadModel(model_path_).ok()) ++rolled_back;
    }
    return Status(st.code(), detail + " (rolled " +
                                 std::to_string(rolled_back) + "/" +
                                 std::to_string(s) +
                                 " earlier shard(s) back to " + model_path_ +
                                 ")");
  }
  model_path_ = path;
  return Status::Ok();
}

void ShardRouter::Flush() {
  for (auto& shard : shards_) shard->Flush();
}

ServeStatsSnapshot ShardRouter::stats() const {
  // A single-shard fleet keeps its reservoir-exact percentiles; merging
  // re-derives p50/p99 from the summed latency histograms.
  ServeStatsSnapshot fleet = shards_.front()->stats();
  for (size_t s = 1; s < shards_.size(); ++s) {
    fleet.MergeFrom(shards_[s]->stats());
  }
  // Engines know nothing about the fleet topology; the router owns the
  // failover tallies and folds them into the rollup here.
  fleet.shards_failed += shards_failed_.load(std::memory_order_acquire);
  fleet.streams_migrated += streams_migrated_.load(std::memory_order_acquire);
  return fleet;
}

ServeStatsSnapshot ShardRouter::shard_stats(int64_t shard) const {
  TRANAD_CHECK_GE(shard, 0);
  TRANAD_CHECK_LT(shard, num_shards());
  return shards_[static_cast<size_t>(shard)]->stats();
}

int64_t ShardRouter::num_streams() const {
  std::lock_guard<std::mutex> lock(routes_mu_);
  return static_cast<int64_t>(routes_.size());
}

}  // namespace tranad::serve
