#ifndef TRANAD_BASELINES_OMNI_ANOMALY_H_
#define TRANAD_BASELINES_OMNI_ANOMALY_H_

#include <memory>

#include "baselines/common.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "nn/rnn.h"

namespace tranad {

/// OmniAnomaly (Su et al., KDD'19): a stochastic recurrent network — a GRU
/// runs over the window, a variational latent z ~ N(mu, sigma) is sampled
/// per step, and a decoder reconstructs the observation; training maximizes
/// the ELBO (reconstruction - KL). The anomaly score is the per-dimension
/// reconstruction error (a Monte-Carlo proxy for the negative
/// reconstruction probability; the planar normalizing flow of the original
/// is omitted — see DESIGN.md).
class OmniAnomalyDetector : public WindowedDetector {
 public:
  explicit OmniAnomalyDetector(int64_t window = 10, int64_t epochs = 5,
                               int64_t hidden = 32, int64_t latent = 8,
                               uint64_t seed = 14);

 protected:
  void BuildModel(int64_t dims) override;
  double TrainBatch(const Tensor& batch, double progress) override;
  Tensor ScoreBatch(const Tensor& batch) override;

 private:
  struct VaeOut {
    Variable recon;  // [B, m] reconstruction of the final timestamp
    Variable mu;
    Variable logvar;
  };
  VaeOut Forward(const Tensor& batch, bool sample);

  int64_t hidden_;
  int64_t latent_;
  uint64_t seed_;
  Rng sample_rng_{1234};
  std::unique_ptr<nn::GruCell> gru_;
  std::unique_ptr<nn::Linear> to_mu_, to_logvar_, dec1_, dec2_;
  std::unique_ptr<nn::Adam> opt_;
};

}  // namespace tranad

#endif  // TRANAD_BASELINES_OMNI_ANOMALY_H_
