#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace tranad {
namespace {

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(NumElements({}), 1);
  EXPECT_EQ(NumElements({3}), 3);
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(NumElements({5, 0}), 0);
}

TEST(ShapeTest, ContiguousStrides) {
  const auto s = ContiguousStrides({2, 3, 4});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 12);
  EXPECT_EQ(s[1], 4);
  EXPECT_EQ(s[2], 1);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

TEST(TensorTest, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.ndim(), 0);
  EXPECT_EQ(t.numel(), 1);
  EXPECT_FLOAT_EQ(t.Item(), 0.0f);
}

TEST(TensorTest, ZerosAndOnes) {
  Tensor z = Tensor::Zeros({2, 2});
  Tensor o = Tensor::Ones({2, 2});
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(z[i], 0.0f);
    EXPECT_FLOAT_EQ(o[i], 1.0f);
  }
}

TEST(TensorTest, FullAndScalar) {
  Tensor f = Tensor::Full({3}, 2.5f);
  EXPECT_FLOAT_EQ(f[2], 2.5f);
  EXPECT_FLOAT_EQ(Tensor::Scalar(-1.0f).Item(), -1.0f);
}

TEST(TensorTest, FromVectorChecksSize) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.At({1, 0}), 3.0f);
  EXPECT_DEATH(Tensor({2, 2}, {1, 2, 3}), "CHECK");
}

TEST(TensorTest, AtRowMajorLayout) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_FLOAT_EQ(t.At({0, 2}), 2.0f);
  EXPECT_FLOAT_EQ(t.At({1, 1}), 4.0f);
}

TEST(TensorTest, AtBoundsChecked) {
  Tensor t({2, 2});
  EXPECT_DEATH(t.At({2, 0}), "CHECK");
  EXPECT_DEATH(t.At({0}), "CHECK");
}

TEST(TensorTest, ArangeValues) {
  Tensor t = Tensor::Arange(4, 1.0f, 0.5f);
  EXPECT_FLOAT_EQ(t[0], 1.0f);
  EXPECT_FLOAT_EQ(t[3], 2.5f);
}

TEST(TensorTest, RandnRespectsStddev) {
  Rng rng(1);
  Tensor t = Tensor::Randn({10000}, &rng, 2.0f);
  double sum_sq = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) sum_sq += t[i] * t[i];
  EXPECT_NEAR(sum_sq / t.numel(), 4.0, 0.3);
}

TEST(TensorTest, RandBounds) {
  Rng rng(2);
  Tensor t = Tensor::Rand({1000}, &rng, -1.0f, 1.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -1.0f);
    EXPECT_LT(t[i], 1.0f);
  }
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.Reshape({3, 2});
  EXPECT_FLOAT_EQ(r.At({2, 1}), 5.0f);
  EXPECT_EQ(r.shape(), Shape({3, 2}));
}

TEST(TensorTest, ReshapeInfersDim) {
  Tensor t({2, 6});
  EXPECT_EQ(t.Reshape({4, -1}).shape(), Shape({4, 3}));
  EXPECT_EQ(t.Reshape({-1}).shape(), Shape({12}));
}

TEST(TensorTest, ReshapeBadSizeDies) {
  Tensor t({2, 3});
  EXPECT_DEATH(t.Reshape({4, 2}), "reshape");
}

TEST(TensorTest, SizeNegativeAxis) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.size(-3), 2);
  EXPECT_DEATH(t.size(3), "out of range");
}

TEST(TensorTest, EqualsAndAllClose) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f, 2.0f});
  Tensor c({2}, {1.0f, 2.00001f});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
  EXPECT_TRUE(a.AllClose(c, 1e-3f));
  EXPECT_FALSE(a.AllClose(c, 1e-7f));
  EXPECT_FALSE(a.AllClose(Tensor({3})));  // shape mismatch
}

TEST(TensorTest, ItemRequiresSingleElement) {
  EXPECT_DEATH(Tensor({2}).Item(), "CHECK");
}

TEST(TensorTest, ToStringSmall) {
  Tensor t({2}, {1.0f, 2.0f});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("[2]"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(TensorTest, FillOverwrites) {
  Tensor t({3});
  t.Fill(7.0f);
  EXPECT_FLOAT_EQ(t[1], 7.0f);
}

}  // namespace
}  // namespace tranad
