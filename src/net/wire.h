#ifndef TRANAD_NET_WIRE_H_
#define TRANAD_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/serve_stats.h"

namespace tranad::net {

/// Compact length-prefixed binary wire protocol for the serving fleet,
/// following the checkpoint container's discipline (src/io/checkpoint.h):
/// fixed-width little-endian integers, typed payloads, and a trailing
/// IEEE CRC32 so torn or bit-flipped input is detected before any field is
/// trusted.
///
/// Frame layout (all integers little-endian, fixed width):
///
///   offset  size  field
///   0       4     magic "TADW" (0x57444154)
///   4       1     protocol version (kWireVersion)
///   5       1     frame type (FrameType)
///   6       2     reserved (must be 0)
///   8       4     payload byte length N (<= reader's max payload)
///   12      N     payload (typed encoding per FrameType)
///   12+N    4     CRC32 (IEEE, io::Crc32) of bytes [4, 12+N) — everything
///                 after the magic, so a corrupted header fails the CRC
///                 just like a corrupted payload
///
/// Versioning: readers accept exactly kWireVersion and reject anything
/// else with InvalidArgument; any layout change bumps the version. A
/// stream protocol cannot resync after corruption (frame boundaries are
/// gone), so the first malformed frame poisons the reader — the peer
/// reports a clean Status and drops the connection, never undefined
/// behavior.
inline constexpr uint32_t kWireMagic = 0x57444154;  // "TADW"
/// v2: WireSubmit grew a flags byte (idempotent resubmission), WireStatsReply
/// grew the four fault-tolerance counters, and kDrain joined the frame set.
inline constexpr uint8_t kWireVersion = 2;
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr size_t kFrameTrailerBytes = 4;
inline constexpr size_t kFrameOverheadBytes =
    kFrameHeaderBytes + kFrameTrailerBytes;
/// Default cap on one frame's payload. Big enough for a calibration series
/// (rows x dims float32), small enough that a per-connection reader buffer
/// is cheap.
inline constexpr size_t kDefaultMaxFramePayload = 4u << 20;  // 4 MiB

/// Frame kinds. Values are part of the wire format.
enum class FrameType : uint8_t {
  kPing = 1,
  kPong = 2,
  kSubmit = 3,        // client -> server: one observation
  kVerdict = 4,       // server -> client: scored (or failed) verdict
  kCreateStream = 5,  // client -> server: register + calibrate a stream
  kCreateStreamAck = 6,
  kCloseStream = 7,
  kCloseStreamAck = 8,
  kStats = 9,          // client -> server: fleet snapshot request
  kStatsReply = 10,    // server -> client: merged ServeStatsSnapshot
  kReload = 11,        // client -> server: rolling fleet model reload
  kReloadAck = 12,
  kError = 13,  // server -> client: terminal connection error, then close
  kDrain = 14,  // server -> client: draining; finish in-flight, don't retry
};

/// True for values that decode to a known FrameType.
bool IsKnownFrameType(uint8_t value);

/// Appends one complete frame (header + payload + CRC) to `out`.
void AppendFrame(FrameType type, const uint8_t* payload, size_t payload_len,
                 std::vector<uint8_t>* out);

/// One parsed frame; `payload` points into the FrameReader's buffer and is
/// valid until the next Feed() call.
struct FrameView {
  FrameType type = FrameType::kPing;
  const uint8_t* payload = nullptr;
  size_t payload_len = 0;
};

/// Incremental frame parser over a byte stream. All memory is allocated at
/// construction (capacity() never changes afterwards): Feed() copies into
/// the fixed buffer, Next() parses in place — the serve path never
/// allocates per frame, and adversarial input can only produce a clean
/// InvalidArgument, never growth or UB.
class FrameReader {
 public:
  explicit FrameReader(size_t max_payload = kDefaultMaxFramePayload);

  /// Bytes Feed() can accept right now (free buffer space). At least one
  /// full frame always fits, so a reader drained with Next() never stalls.
  size_t writable() const { return buf_.size() - (end_ - begin_); }

  /// Appends raw stream bytes. Internal if `n` exceeds writable() — that
  /// is a caller bug (read more than it asked), not a peer behavior.
  Status Feed(const void* data, size_t n);

  /// Parses the next complete frame. Ok with *got=true: *out is valid
  /// until the next Feed(). Ok with *got=false: need more bytes. Any
  /// malformed input (bad magic, unknown version, nonzero reserved bits,
  /// oversized length, unknown type, CRC mismatch) returns InvalidArgument
  /// and poisons the reader: every later call fails identically, because a
  /// byte stream has no trustworthy frame boundary after corruption.
  Status Next(FrameView* out, bool* got);

  /// Fixed buffer capacity in bytes (test hook: proves no reallocation).
  size_t capacity() const { return buf_.size(); }
  size_t max_payload() const { return max_payload_; }
  bool poisoned() const { return !poisoned_.ok(); }

 private:
  Status Poison(const std::string& detail);

  std::vector<uint8_t> buf_;
  size_t begin_ = 0;  // parse cursor
  size_t end_ = 0;    // fill cursor
  size_t max_payload_;
  Status poisoned_;
};

// ---- Typed payloads. Each message encodes itself as a complete frame and
// decodes from a FrameView with full bounds/type checking; trailing bytes
// after the last field are rejected (no smuggling). ----

/// Bounds-checked little-endian payload cursor.
class PayloadReader {
 public:
  PayloadReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  Status U8(uint8_t* v);
  Status U16(uint16_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status I64(int64_t* v);
  Status F32(float* v);
  Status F64(double* v);
  /// u32 length prefix + raw bytes; InvalidArgument beyond `max_len`.
  Status String(std::string* v, size_t max_len = 1u << 16);
  Status F32Array(std::vector<float>* v, size_t max_elems);
  Status I64Array(std::vector<int64_t>* v, size_t max_elems);

  size_t remaining() const { return len_ - pos_; }
  /// InvalidArgument if any undecoded bytes remain.
  Status ExpectEnd() const;

 private:
  Status Take(size_t n, const uint8_t** p);

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// Little-endian payload builder (appends to a caller-owned vector).
class PayloadWriter {
 public:
  explicit PayloadWriter(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v);
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v);
  void F32(float v);
  void F64(double v);
  void String(const std::string& v);
  void F32Array(const float* v, size_t n);
  void I64Array(const int64_t* v, size_t n);

 private:
  std::vector<uint8_t>* out_;
};

/// StatusCode <-> wire byte. Unknown bytes decode as kInternal (a peer
/// speaking a newer status vocabulary still yields a definite failure).
uint8_t StatusCodeToWire(StatusCode code);
StatusCode StatusCodeFromWire(uint8_t value);

struct WirePing {
  uint64_t token = 0;
  void EncodeTo(std::vector<uint8_t>* out, FrameType type = FrameType::kPing)
      const;
  static Status Decode(const FrameView& frame, WirePing* out);
};

/// WireSubmit.flags bit 0: the client may resend this exact (stream_key,
/// tag) submission after a reconnect or timeout, and the server must
/// deduplicate — at most one scoring, the cached verdict on replays.
inline constexpr uint8_t kSubmitFlagIdempotent = 0x01;

struct WireSubmit {
  uint64_t stream_key = 0;
  /// Client-chosen correlation tag, echoed verbatim on the verdict. Under
  /// kSubmitFlagIdempotent, (stream_key, tag) is the dedup identity and
  /// must be unique per logical observation.
  uint64_t tag = 0;
  uint8_t flags = 0;  // kSubmitFlag* bits; unknown bits are rejected
  std::vector<float> values;  // x_t in R^m
  void EncodeTo(std::vector<uint8_t>* out) const;
  static Status Decode(const FrameView& frame, WireSubmit* out);
};

struct WireVerdict {
  uint64_t stream_key = 0;
  uint64_t tag = 0;
  int64_t seq = -1;  // per-stream sequence; -1 when admission itself failed
  Status status;     // Ok for a scored verdict
  bool anomalous = false;
  double score = 0.0;
  double threshold = 0.0;
  void EncodeTo(std::vector<uint8_t>* out) const;
  static Status Decode(const FrameView& frame, WireVerdict* out);
};

struct WireCreateStream {
  uint64_t stream_key = 0;
  int64_t rows = 0;
  int64_t dims = 0;
  std::vector<float> values;  // calibration series, row-major [rows, dims]
  void EncodeTo(std::vector<uint8_t>* out) const;
  static Status Decode(const FrameView& frame, WireCreateStream* out);
};

/// Generic acknowledgement (CreateStreamAck / CloseStreamAck / ReloadAck /
/// Error): a stream key (0 where meaningless) plus a Status.
struct WireAck {
  uint64_t stream_key = 0;
  Status status;
  void EncodeTo(std::vector<uint8_t>* out, FrameType type) const;
  static Status Decode(const FrameView& frame, WireAck* out);
};

struct WireCloseStream {
  uint64_t stream_key = 0;
  void EncodeTo(std::vector<uint8_t>* out) const;
  static Status Decode(const FrameView& frame, WireCloseStream* out);
};

struct WireStatsRequest {
  void EncodeTo(std::vector<uint8_t>* out) const;
  static Status Decode(const FrameView& frame, WireStatsRequest* out);
};

struct WireStatsReply {
  serve::ServeStatsSnapshot snapshot;
  void EncodeTo(std::vector<uint8_t>* out) const;
  static Status Decode(const FrameView& frame, WireStatsReply* out);
};

struct WireReload {
  std::string path;
  void EncodeTo(std::vector<uint8_t>* out) const;
  static Status Decode(const FrameView& frame, WireReload* out);
};

/// Server -> client on graceful shutdown: the server stops accepting new
/// work but still delivers verdicts for everything already admitted. A
/// well-behaved client stops submitting and must NOT treat the subsequent
/// close as a failure (no reconnect storm against a dying server).
struct WireDrain {
  std::string reason;
  void EncodeTo(std::vector<uint8_t>* out) const;
  static Status Decode(const FrameView& frame, WireDrain* out);
};

}  // namespace tranad::net

#endif  // TRANAD_NET_WIRE_H_
