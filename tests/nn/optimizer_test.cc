#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad::nn {
namespace {

// Minimizes f(w) = mean((w - target)^2) for `steps` iterations.
template <typename Opt>
float OptimizeQuadratic(Opt* opt, Variable* w, float target, int steps) {
  const Tensor t = Tensor::Full(w->shape(), target);
  float loss_value = 0.0f;
  for (int i = 0; i < steps; ++i) {
    Variable loss = ag::MseLoss(*w, t);
    loss_value = loss.value().Item();
    opt->ZeroGrad();
    loss.Backward();
    opt->Step();
  }
  return loss_value;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Variable w(Tensor::Full({4}, 5.0f), true);
  Sgd opt({w}, 0.1f);
  const float final_loss = OptimizeQuadratic(&opt, &w, 1.0f, 200);
  EXPECT_LT(final_loss, 1e-6f);
  EXPECT_NEAR(w.value()[0], 1.0f, 1e-3);
}

TEST(SgdTest, MomentumAccelerates) {
  Variable w1(Tensor::Full({1}, 5.0f), true);
  Variable w2(Tensor::Full({1}, 5.0f), true);
  Sgd plain({w1}, 0.02f);
  Sgd momentum({w2}, 0.02f, 0.9f);
  OptimizeQuadratic(&plain, &w1, 0.0f, 30);
  OptimizeQuadratic(&momentum, &w2, 0.0f, 30);
  EXPECT_LT(std::fabs(w2.value()[0]), std::fabs(w1.value()[0]));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Variable w(Tensor::Full({4}, -3.0f), true);
  Adam opt({w}, 0.1f);
  OptimizeQuadratic(&opt, &w, 2.0f, 300);
  EXPECT_NEAR(w.value()[0], 2.0f, 1e-2);
}

TEST(AdamWTest, DecoupledDecayShrinksWeights) {
  // With zero gradient signal, AdamW's decoupled decay still shrinks w.
  Variable w(Tensor::Full({2}, 1.0f), true);
  AdamW opt({w}, 0.1f, 0.9f, 0.999f, 1e-8f, 0.1f);
  for (int i = 0; i < 10; ++i) {
    opt.ZeroGrad();
    w.AccumulateGrad(Tensor::Zeros({2}));
    opt.Step();
  }
  EXPECT_LT(w.value()[0], 1.0f);
  EXPECT_GT(w.value()[0], 0.8f);
}

TEST(AdamWTest, ConvergesDespiteDecay) {
  Variable w(Tensor::Full({3}, 4.0f), true);
  AdamW opt({w}, 0.05f);
  OptimizeQuadratic(&opt, &w, 1.0f, 400);
  EXPECT_NEAR(w.value()[0], 1.0f, 0.1);
}

TEST(OptimizerTest, RequiresGradParams) {
  Variable w(Tensor::Ones({2}), /*requires_grad=*/false);
  EXPECT_DEATH(Sgd({w}, 0.1f), "CHECK");
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  Variable w(Tensor::Zeros({4}), true);
  Sgd opt({w}, 0.1f);
  w.AccumulateGrad(Tensor::Full({4}, 10.0f));  // norm = 20
  const float pre = opt.ClipGradNorm(1.0f);
  EXPECT_NEAR(pre, 20.0f, 1e-3);
  double norm = 0.0;
  for (int64_t i = 0; i < 4; ++i) norm += w.grad()[i] * w.grad()[i];
  EXPECT_NEAR(std::sqrt(norm), 1.0f, 1e-3);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Variable w(Tensor::Zeros({4}), true);
  Sgd opt({w}, 0.1f);
  w.AccumulateGrad(Tensor::Full({4}, 0.1f));
  opt.ClipGradNorm(5.0f);
  EXPECT_FLOAT_EQ(w.grad()[0], 0.1f);
}

TEST(StepLrTest, HalvesAtSchedule) {
  Variable w(Tensor::Zeros({1}), true);
  Sgd opt({w}, 1.0f);
  StepLr sched(&opt, /*step_size=*/2, /*gamma=*/0.5f);
  sched.Step();
  EXPECT_FLOAT_EQ(opt.lr(), 1.0f);
  sched.Step();
  EXPECT_FLOAT_EQ(opt.lr(), 0.5f);
  sched.Step();
  sched.Step();
  EXPECT_FLOAT_EQ(opt.lr(), 0.25f);
}

TEST(OptimizerIntegrationTest, LinearRegressionRecovery) {
  // Recover a planted linear map with AdamW — end-to-end optimizer check.
  Rng rng(11);
  Linear model(3, 1, &rng);
  Tensor true_w({3, 1}, {1.0f, -2.0f, 0.5f});
  AdamW opt(model.Parameters(), 0.05f, 0.9f, 0.999f, 1e-8f, 0.0f);
  for (int step = 0; step < 500; ++step) {
    Tensor x = Tensor::Randn({16, 3}, &rng);
    Tensor y = MatMul(x, true_w);
    Variable loss = ag::MseLoss(model.Forward(Variable(x)), y);
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  const Tensor& w = model.Parameters()[0].value();
  EXPECT_NEAR(w[0], 1.0f, 0.05);
  EXPECT_NEAR(w[1], -2.0f, 0.05);
  EXPECT_NEAR(w[2], 0.5f, 0.05);
}

}  // namespace
}  // namespace tranad::nn
