file(REMOVE_RECURSE
  "CMakeFiles/eval_test.dir/eval/critdiff_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/critdiff_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/diagnosis_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/diagnosis_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/metrics_property_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/metrics_property_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/metrics_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/metrics_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/pot_drift_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/pot_drift_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/pot_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/pot_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/score_utils_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/score_utils_test.cc.o.d"
  "eval_test"
  "eval_test.pdb"
  "eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
