file(REMOVE_RECURSE
  "CMakeFiles/serve_loadgen.dir/serve_loadgen.cc.o"
  "CMakeFiles/serve_loadgen.dir/serve_loadgen.cc.o.d"
  "serve_loadgen"
  "serve_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
