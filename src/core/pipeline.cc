#include "core/pipeline.h"

#include "common/check.h"
#include "common/stopwatch.h"

namespace tranad {

PotParams PotParamsForDataset(const std::string& dataset_name) {
  PotParams params;
  params.risk = 1e-4;  // the paper's POT coefficient for all datasets
  double low_quantile = 0.001;
  if (dataset_name == "SMAP") {
    low_quantile = 0.07;
  } else if (dataset_name == "MSL") {
    low_quantile = 0.01;
  }
  // The "low quantile" positions the peak threshold below the top
  // low_quantile fraction of calibration scores.
  params.init_quantile = 1.0 - low_quantile;
  return params;
}

std::vector<double> DetectionScores(const Tensor& dim_scores) {
  TRANAD_CHECK_EQ(dim_scores.ndim(), 2);
  const int64_t t = dim_scores.size(0);
  const int64_t m = dim_scores.size(1);
  std::vector<double> out(static_cast<size_t>(t), 0.0);
  for (int64_t i = 0; i < t; ++i) {
    double s = 0.0;
    for (int64_t d = 0; d < m; ++d) s += dim_scores.data()[i * m + d];
    out[static_cast<size_t>(i)] = s / static_cast<double>(m);
  }
  return out;
}

std::vector<uint8_t> PotLabelPerDimension(const Tensor& calibration_scores,
                                          const Tensor& test_scores,
                                          const PotParams& params,
                                          Tensor* dim_labels) {
  TRANAD_CHECK_EQ(calibration_scores.ndim(), 2);
  TRANAD_CHECK_EQ(test_scores.ndim(), 2);
  TRANAD_CHECK_EQ(calibration_scores.size(1), test_scores.size(1));
  const int64_t t = test_scores.size(0);
  const int64_t m = test_scores.size(1);
  if (dim_labels != nullptr) *dim_labels = Tensor({t, m});
  std::vector<uint8_t> labels(static_cast<size_t>(t), 0);
  std::vector<double> calibration(
      static_cast<size_t>(calibration_scores.size(0)));
  for (int64_t d = 0; d < m; ++d) {
    for (int64_t i = 0; i < calibration_scores.size(0); ++i) {
      calibration[static_cast<size_t>(i)] = calibration_scores.At({i, d});
    }
    const double threshold = PotThreshold(calibration, params);
    for (int64_t i = 0; i < t; ++i) {
      if (test_scores.At({i, d}) >= threshold) {
        labels[static_cast<size_t>(i)] = 1;
        if (dim_labels != nullptr) dim_labels->At({i, d}) = 1.0f;
      }
    }
  }
  return labels;
}

EvalOutcome EvaluateDetector(AnomalyDetector* detector, const Dataset& dataset,
                             const PipelineOptions& options) {
  TRANAD_CHECK(detector != nullptr);
  TRANAD_CHECK(dataset.Validate().ok());

  EvalOutcome outcome;
  outcome.method = detector->name();
  outcome.dataset = dataset.name;

  Stopwatch fit_timer;
  detector->Fit(dataset.train);
  outcome.fit_seconds = fit_timer.ElapsedSeconds();
  outcome.seconds_per_epoch = detector->seconds_per_epoch();

  Stopwatch score_timer;
  const Tensor test_scores = detector->Score(dataset.test);
  outcome.score_seconds = score_timer.ElapsedSeconds();
  const std::vector<double> detection = DetectionScores(test_scores);

  if (options.mode == ThresholdMode::kPot) {
    const Tensor train_scores = detector->Score(dataset.train);
    const std::vector<double> calibration = DetectionScores(train_scores);
    const double threshold = PotThreshold(calibration, options.pot);
    outcome.detection =
        EvaluateAtThreshold(detection, dataset.test.labels, threshold);
    if (!options.point_adjust) {
      const auto pred = ApplyThreshold(detection, threshold);
      const auto c = CountConfusion(pred, dataset.test.labels);
      outcome.detection.precision = PrecisionOf(c);
      outcome.detection.recall = RecallOf(c);
      outcome.detection.f1 = F1Of(c);
    }
  } else if (options.mode == ThresholdMode::kPotPerDim) {
    const Tensor train_scores = detector->Score(dataset.train);
    std::vector<uint8_t> pred =
        PotLabelPerDimension(train_scores, test_scores, options.pot);
    if (options.point_adjust) pred = PointAdjust(pred, dataset.test.labels);
    const auto c = CountConfusion(pred, dataset.test.labels);
    outcome.detection.precision = PrecisionOf(c);
    outcome.detection.recall = RecallOf(c);
    outcome.detection.f1 = F1Of(c);
    outcome.detection.roc_auc = RocAuc(detection, dataset.test.labels);
  } else {
    outcome.detection = EvaluateBestF1(detection, dataset.test.labels);
  }

  if (dataset.test.has_dim_labels()) {
    outcome.diagnosis =
        EvaluateDiagnosis(test_scores, dataset.test.dim_labels);
  }
  return outcome;
}

}  // namespace tranad
