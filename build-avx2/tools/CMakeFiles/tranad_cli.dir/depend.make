# Empty dependencies file for tranad_cli.
# This may be replaced when dependencies are built.
