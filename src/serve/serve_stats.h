#ifndef TRANAD_SERVE_SERVE_STATS_H_
#define TRANAD_SERVE_SERVE_STATS_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"

namespace tranad::serve {

/// Point-in-time view of the serving counters; everything the throughput
/// bench needs to report scaling curves.
struct ServeStatsSnapshot {
  int64_t submitted = 0;   // admitted observations
  int64_t rejected = 0;    // refused with ResourceExhausted (queue full)
  int64_t completed = 0;   // scored verdicts delivered (status Ok)
  int64_t anomalies = 0;   // completed verdicts flagged anomalous
  /// Resilience counters: admitted submissions completed with a non-OK
  /// status, by cause. failed is the total; the others are disjoint causes
  /// (deadline expiry, shed-oldest eviction, injected/worker fault or
  /// watchdog unwedge).
  int64_t failed = 0;
  int64_t deadline_expired = 0;  // completed with DeadlineExceeded
  int64_t shed = 0;              // evicted oldest under overload (Unavailable)
  int64_t non_finite_rejected = 0;  // refused at Submit (poisoned input)
  int64_t quarantined_streams = 0;  // streams put into quarantine (lifetime)
  int64_t watchdog_stalls = 0;      // watchdog fired and unwedged the queue
  int64_t reloads = 0;              // successful ReloadModel swaps
  int64_t reload_failures = 0;      // ReloadModel attempts rolled back
  int64_t batches = 0;     // scored micro-batches
  double mean_batch_size = 0.0;
  /// batch_size_hist[s] = number of scored batches holding s observations;
  /// index 0 is unused (batches are never empty).
  std::vector<int64_t> batch_size_hist;
  int64_t queue_depth = 0;  // submission queue depth at snapshot time
  double p50_latency_ms = 0.0;  // submit-to-verdict, over a recent window
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  double elapsed_seconds = 0.0;     // since engine start
  double throughput_per_sec = 0.0;  // completed / elapsed
};

/// Mutex-guarded metrics collector. Latency percentiles come from a sliding
/// reservoir of the most recent completions (exact within the window), so a
/// long-running engine reports current behavior, not lifetime averages.
class ServeStats {
 public:
  explicit ServeStats(int64_t max_batch, int64_t reservoir_size = 8192);

  void RecordSubmitted();
  void RecordRejected();
  void RecordBatch(int64_t batch_size);
  void RecordCompletion(double latency_ms, bool anomalous);
  /// An admitted submission completed with a non-OK status. `code` selects
  /// the per-cause counter (DeadlineExceeded / Unavailable / other).
  void RecordFailure(StatusCode code);
  void RecordNonFiniteRejected();
  void RecordQuarantined();
  void RecordWatchdogStall();
  void RecordReload(bool ok);

  ServeStatsSnapshot Snapshot(int64_t queue_depth) const;

 private:
  mutable std::mutex mu_;
  Stopwatch started_;
  int64_t submitted_ = 0;
  int64_t rejected_ = 0;
  int64_t completed_ = 0;
  int64_t anomalies_ = 0;
  int64_t failed_ = 0;
  int64_t deadline_expired_ = 0;
  int64_t shed_ = 0;
  int64_t non_finite_rejected_ = 0;
  int64_t quarantined_streams_ = 0;
  int64_t watchdog_stalls_ = 0;
  int64_t reloads_ = 0;
  int64_t reload_failures_ = 0;
  int64_t batches_ = 0;
  int64_t batched_observations_ = 0;
  std::vector<int64_t> batch_size_hist_;
  int64_t reservoir_capacity_ = 0;
  std::vector<double> latency_reservoir_;  // ring of most recent latencies
  double max_latency_ms_ = 0.0;
};

}  // namespace tranad::serve

#endif  // TRANAD_SERVE_SERVE_STATS_H_
