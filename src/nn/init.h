#ifndef TRANAD_NN_INIT_H_
#define TRANAD_NN_INIT_H_

#include "tensor/tensor.h"

namespace tranad::nn {

/// Xavier/Glorot uniform init for a weight of shape [fan_in, fan_out].
Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng);

/// Kaiming/He normal init (for ReLU fan-in).
Tensor KaimingNormal(int64_t fan_in, int64_t fan_out, Rng* rng);

/// Uniform init in [-1/sqrt(fan_in), 1/sqrt(fan_in)] as used by recurrent
/// cells, for an arbitrary shape.
Tensor RnnUniform(Shape shape, int64_t fan_in, Rng* rng);

}  // namespace tranad::nn

#endif  // TRANAD_NN_INIT_H_
