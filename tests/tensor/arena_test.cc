#include "tensor/arena.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "tensor/tensor.h"

namespace tranad {
namespace {

TEST(ArenaTest, AllocationIs64ByteAligned) {
  auto& arena = TensorArena::Global();
  for (int64_t n : {1, 32, 33, 100, 4096, 100000}) {
    int64_t rounded = 0;
    float* p = arena.Allocate(n, &rounded);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u) << "numel " << n;
    arena.Release(p, rounded);
  }
}

TEST(ArenaTest, TensorBuffersAre64ByteAlignedIncludingRecycled) {
  // The SIMD kernel layer sizes its column blocks to cache lines and the
  // arena guarantees 64-byte alignment for every tensor buffer — fresh or
  // recycled — at every size class. Regression test for that invariant end
  // to end through Tensor::Uninitialized.
  for (int64_t n : {1, 3, 31, 64, 67, 4096}) {
    {
      Tensor t = Tensor::Uninitialized({n});
      EXPECT_EQ(reinterpret_cast<uintptr_t>(t.data()) % 64, 0u)
          << "fresh numel " << n;
    }
    Tensor r = Tensor::Uninitialized({n});  // recycled from the class cache
    EXPECT_EQ(reinterpret_cast<uintptr_t>(r.data()) % 64, 0u)
        << "recycled numel " << n;
  }
}

TEST(ArenaTest, RoundsToPowerOfTwoClasses) {
  auto& arena = TensorArena::Global();
  const struct {
    int64_t numel;
    int64_t expect;
  } cases[] = {{1, 32}, {32, 32}, {33, 64}, {64, 64}, {65, 128}, {1000, 1024}};
  for (const auto& c : cases) {
    int64_t rounded = 0;
    float* p = arena.Allocate(c.numel, &rounded);
    EXPECT_EQ(rounded, c.expect) << "numel " << c.numel;
    arena.Release(p, rounded);
  }
}

TEST(ArenaTest, ReleasedBufferIsReused) {
  auto& arena = TensorArena::Global();
  arena.Trim(0);
  arena.ResetStatsForTesting();
  int64_t rounded = 0;
  float* p = arena.Allocate(5000, &rounded);
  arena.Release(p, rounded);
  int64_t rounded2 = 0;
  float* q = arena.Allocate(5000, &rounded2);
  EXPECT_EQ(q, p);  // same size class -> the cached buffer comes back
  EXPECT_EQ(rounded2, rounded);
  const ArenaStats s = arena.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  arena.Release(q, rounded2);
}

TEST(ArenaTest, TensorChurnHitsTheCache) {
  auto& arena = TensorArena::Global();
  { Tensor warm({64, 64}); }  // ensure the class has a cached buffer
  arena.ResetStatsForTesting();
  for (int i = 0; i < 10; ++i) {
    Tensor t({64, 64});
    t.Fill(1.0f);
  }
  const ArenaStats s = arena.stats();
  EXPECT_EQ(s.hits, 10);
  EXPECT_EQ(s.misses, 0);
}

TEST(ArenaTest, ZeroFillSemanticsSurviveRecycling) {
  // A recycled buffer holds stale data; Tensor(shape) must still read as
  // zeros.
  {
    Tensor dirty({256});
    dirty.Fill(42.0f);
  }
  Tensor clean({256});
  for (int64_t i = 0; i < clean.numel(); ++i) {
    ASSERT_EQ(clean[i], 0.0f) << "index " << i;
  }
}

TEST(ArenaTest, TrimEmptiesTheCache) {
  auto& arena = TensorArena::Global();
  { Tensor t({1000}); }
  EXPECT_GT(arena.stats().bytes_cached, 0);
  arena.Trim(0);
  EXPECT_EQ(arena.stats().bytes_cached, 0);
}

TEST(ArenaTest, DrainScopeTrimsOnExit) {
  auto& arena = TensorArena::Global();
  {
    ArenaDrainScope drain(/*keep_bytes=*/0);
    Tensor t({4096});
    t.Fill(1.0f);
  }
  EXPECT_EQ(arena.stats().bytes_cached, 0);
}

TEST(ArenaTest, StatsTrackLiveBytes) {
  auto& arena = TensorArena::Global();
  const int64_t before = arena.stats().bytes_live;
  {
    Tensor t({1024});  // exactly one 1024-float class
    EXPECT_EQ(arena.stats().bytes_live,
              before + 1024 * static_cast<int64_t>(sizeof(float)));
  }
  EXPECT_EQ(arena.stats().bytes_live, before);
}

TEST(ArenaTest, ConcurrentAllocReleaseIsSafe) {
  // Hammer the arena from several threads; correctness is checked by each
  // thread writing and re-reading its own buffers (no sharing), and by
  // TSan in the sanitizer CI leg.
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& arena = TensorArena::Global();
      for (int i = 0; i < kIters; ++i) {
        const int64_t n = 32 + (i % 7) * 100 + t;
        int64_t rounded = 0;
        float* p = arena.Allocate(n, &rounded);
        const float mark = static_cast<float>(t * kIters + i);
        p[0] = mark;
        p[n - 1] = mark;
        if (p[0] != mark || p[n - 1] != mark) failures.fetch_add(1);
        arena.Release(p, rounded);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace tranad
