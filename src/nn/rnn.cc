#include "nn/rnn.h"

#include "tensor/autograd_ops.h"

namespace tranad::nn {

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : hidden_size_(hidden_size) {
  x2r_ = std::make_unique<Linear>(input_size, hidden_size, rng);
  x2z_ = std::make_unique<Linear>(input_size, hidden_size, rng);
  x2n_ = std::make_unique<Linear>(input_size, hidden_size, rng);
  h2r_ = std::make_unique<Linear>(hidden_size, hidden_size, rng, false);
  h2z_ = std::make_unique<Linear>(hidden_size, hidden_size, rng, false);
  h2n_ = std::make_unique<Linear>(hidden_size, hidden_size, rng);
  RegisterModule("x2r", x2r_.get());
  RegisterModule("x2z", x2z_.get());
  RegisterModule("x2n", x2n_.get());
  RegisterModule("h2r", h2r_.get());
  RegisterModule("h2z", h2z_.get());
  RegisterModule("h2n", h2n_.get());
}

Variable GruCell::Forward(const Variable& x, const Variable& h) const {
  Variable r = ag::Sigmoid(ag::Add(x2r_->Forward(x), h2r_->Forward(h)));
  Variable z = ag::Sigmoid(ag::Add(x2z_->Forward(x), h2z_->Forward(h)));
  Variable n =
      ag::Tanh(ag::Add(x2n_->Forward(x), ag::Mul(r, h2n_->Forward(h))));
  // h' = (1 - z) * n + z * h
  Variable one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
  return ag::Add(ag::Mul(one_minus_z, n), ag::Mul(z, h));
}

Variable GruCell::InitialState(int64_t b) const {
  return Variable(Tensor::Zeros({b, hidden_size_}));
}

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : hidden_size_(hidden_size) {
  x2i_ = std::make_unique<Linear>(input_size, hidden_size, rng);
  x2f_ = std::make_unique<Linear>(input_size, hidden_size, rng);
  x2g_ = std::make_unique<Linear>(input_size, hidden_size, rng);
  x2o_ = std::make_unique<Linear>(input_size, hidden_size, rng);
  h2i_ = std::make_unique<Linear>(hidden_size, hidden_size, rng, false);
  h2f_ = std::make_unique<Linear>(hidden_size, hidden_size, rng, false);
  h2g_ = std::make_unique<Linear>(hidden_size, hidden_size, rng, false);
  h2o_ = std::make_unique<Linear>(hidden_size, hidden_size, rng, false);
  RegisterModule("x2i", x2i_.get());
  RegisterModule("x2f", x2f_.get());
  RegisterModule("x2g", x2g_.get());
  RegisterModule("x2o", x2o_.get());
  RegisterModule("h2i", h2i_.get());
  RegisterModule("h2f", h2f_.get());
  RegisterModule("h2g", h2g_.get());
  RegisterModule("h2o", h2o_.get());
}

LstmCell::State LstmCell::Forward(const Variable& x, const State& s) const {
  Variable i = ag::Sigmoid(ag::Add(x2i_->Forward(x), h2i_->Forward(s.h)));
  Variable f = ag::Sigmoid(ag::Add(x2f_->Forward(x), h2f_->Forward(s.h)));
  Variable g = ag::Tanh(ag::Add(x2g_->Forward(x), h2g_->Forward(s.h)));
  Variable o = ag::Sigmoid(ag::Add(x2o_->Forward(x), h2o_->Forward(s.h)));
  Variable c = ag::Add(ag::Mul(f, s.c), ag::Mul(i, g));
  Variable h = ag::Mul(o, ag::Tanh(c));
  return {h, c};
}

LstmCell::State LstmCell::InitialState(int64_t b) const {
  return {Variable(Tensor::Zeros({b, hidden_size_})),
          Variable(Tensor::Zeros({b, hidden_size_}))};
}

namespace {

// Extracts step t of a [B, T, D] sequence as [B, D].
Variable StepAt(const Variable& seq, int64_t t) {
  const int64_t b = seq.value().size(0);
  const int64_t d = seq.value().size(2);
  Variable step = ag::SliceAxis(seq, 1, t, 1);  // [B, 1, D]
  return ag::Reshape(step, {b, d});
}

}  // namespace

Variable RunGru(const GruCell& cell, const Variable& seq) {
  const int64_t b = seq.value().size(0);
  const int64_t t = seq.value().size(1);
  Variable h = cell.InitialState(b);
  std::vector<Variable> outs;
  outs.reserve(static_cast<size_t>(t));
  for (int64_t i = 0; i < t; ++i) {
    h = cell.Forward(StepAt(seq, i), h);
    outs.push_back(ag::Reshape(h, {b, 1, cell.hidden_size()}));
  }
  return ag::Concat(outs, 1);
}

Variable RunLstm(const LstmCell& cell, const Variable& seq) {
  const int64_t b = seq.value().size(0);
  const int64_t t = seq.value().size(1);
  LstmCell::State s = cell.InitialState(b);
  std::vector<Variable> outs;
  outs.reserve(static_cast<size_t>(t));
  for (int64_t i = 0; i < t; ++i) {
    s = cell.Forward(StepAt(seq, i), s);
    outs.push_back(ag::Reshape(s.h, {b, 1, cell.hidden_size()}));
  }
  return ag::Concat(outs, 1);
}

Variable RunGruLast(const GruCell& cell, const Variable& seq) {
  const int64_t b = seq.value().size(0);
  const int64_t t = seq.value().size(1);
  Variable h = cell.InitialState(b);
  for (int64_t i = 0; i < t; ++i) h = cell.Forward(StepAt(seq, i), h);
  return h;
}

Variable RunLstmLast(const LstmCell& cell, const Variable& seq) {
  const int64_t b = seq.value().size(0);
  const int64_t t = seq.value().size(1);
  LstmCell::State s = cell.InitialState(b);
  for (int64_t i = 0; i < t; ++i) s = cell.Forward(StepAt(seq, i), s);
  return s.h;
}

}  // namespace tranad::nn
