#ifndef TRANAD_TENSOR_ARENA_H_
#define TRANAD_TENSOR_ARENA_H_

#include <cstdint>
#include <vector>

namespace tranad {

/// Counters describing the arena's lifetime behaviour. Monotonic counts are
/// never reset except via ResetStatsForTesting; byte gauges track current
/// state.
struct ArenaStats {
  int64_t hits = 0;            ///< allocations served from the free lists
  int64_t misses = 0;          ///< allocations that went to the heap
  int64_t releases = 0;        ///< buffers returned (cached or freed)
  int64_t trims = 0;           ///< buffers actually freed (cap or Trim)
  int64_t bytes_cached = 0;    ///< bytes currently sitting in free lists
  int64_t bytes_live = 0;      ///< bytes currently held by tensors
  int64_t bytes_peak_live = 0; ///< high-water mark of bytes_live
};

/// Thread-safe size-class recycler backing every Tensor buffer. Requested
/// element counts are rounded up to the next power of two (min 32 floats)
/// and released buffers are kept on a per-class free list, so the
/// forward+backward tape's churn of identically-shaped intermediates is
/// served from recycled memory instead of malloc. Buffers are 64-byte
/// aligned. The cached footprint is capped (TRANAD_ARENA_MAX_MB, default
/// 256); releases beyond the cap free eagerly. The singleton is leaked so
/// tensors with static storage duration can release safely during program
/// exit.
class TensorArena {
 public:
  static TensorArena& Global();

  /// Returns a 64-byte-aligned buffer of at least `numel` floats (contents
  /// unspecified). `*rounded` receives the size-class element count, which
  /// must be passed back to Release.
  float* Allocate(int64_t numel, int64_t* rounded);

  /// Returns a buffer obtained from Allocate. Cached for reuse, or freed if
  /// the cache is at its cap.
  void Release(float* ptr, int64_t rounded);

  /// Frees cached buffers (largest classes first) until at most
  /// `keep_bytes` remain cached; keep_bytes < 0 trims down to the cap.
  void Trim(int64_t keep_bytes = 0);

  ArenaStats stats() const;
  void ResetStatsForTesting();

  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

 private:
  TensorArena();
  ~TensorArena() = default;

  struct Impl;
  Impl* impl_;
};

/// RAII arena maintenance for iteration boundaries (one training batch, one
/// serve burst): on destruction, trims the cache down to `keep_bytes`
/// (default: the arena cap, i.e. keep everything the cap allows — reuse
/// across iterations stays hot while transient spikes above the cap are
/// returned to the OS at a quiescent point rather than mid-kernel).
class ArenaDrainScope {
 public:
  explicit ArenaDrainScope(int64_t keep_bytes = -1)
      : keep_bytes_(keep_bytes) {}
  ~ArenaDrainScope() { TensorArena::Global().Trim(keep_bytes_); }

  ArenaDrainScope(const ArenaDrainScope&) = delete;
  ArenaDrainScope& operator=(const ArenaDrainScope&) = delete;

 private:
  int64_t keep_bytes_;
};

/// Flat float buffer owned by the arena; the storage behind Tensor. Value
/// semantics match std::vector<float>: deep copy, cheap move, destructor
/// returns the buffer to the arena.
class ArenaBuffer {
 public:
  ArenaBuffer() = default;

  /// Buffer of n floats with unspecified contents.
  static ArenaBuffer Uninitialized(int64_t n);
  /// Buffer of n zeros.
  static ArenaBuffer Zeroed(int64_t n);
  /// Buffer holding a copy of `v`.
  static ArenaBuffer FromVector(const std::vector<float>& v);

  ArenaBuffer(const ArenaBuffer& other);
  ArenaBuffer& operator=(const ArenaBuffer& other);
  ArenaBuffer(ArenaBuffer&& other) noexcept;
  ArenaBuffer& operator=(ArenaBuffer&& other) noexcept;
  ~ArenaBuffer();

  float* data() { return data_; }
  const float* data() const { return data_; }
  int64_t size() const { return size_; }

  float& operator[](int64_t i) { return data_[i]; }
  float operator[](int64_t i) const { return data_[i]; }

 private:
  float* data_ = nullptr;
  int64_t size_ = 0;
  int64_t rounded_ = 0;
};

}  // namespace tranad

#endif  // TRANAD_TENSOR_ARENA_H_
