#ifndef TRANAD_CORE_DETECTOR_H_
#define TRANAD_CORE_DETECTOR_H_

#include <memory>
#include <string>

#include "data/time_series.h"
#include "tensor/tensor.h"

namespace tranad {

/// Common interface for all anomaly detectors in the library — TranAD, its
/// ablation variants, and every baseline of §4. The contract mirrors the
/// paper's unsupervised protocol:
///  - Fit() sees only the (assumed normal, unlabeled) training series;
///  - Score() returns per-dimension anomaly scores s_i for each timestamp
///    of an arbitrary series ([T, m], higher = more anomalous), from which
///    the evaluation pipeline derives thresholds (POT), detection labels
///    (y = OR_i y_i, Eq. 14) and diagnosis rankings.
class AnomalyDetector {
 public:
  virtual ~AnomalyDetector() = default;

  /// Method name as it appears in the paper's tables.
  virtual std::string name() const = 0;

  /// Trains on the raw (unnormalized) training series. Implementations fit
  /// their own Eq. (1) normalizer here.
  virtual void Fit(const TimeSeries& train) = 0;

  /// Per-dimension anomaly scores [T, m] for a series of the training
  /// modality. Precondition: Fit() has been called.
  virtual Tensor Score(const TimeSeries& series) = 0;

  /// Mean seconds per training epoch of the last Fit() call (Table 5).
  /// Training-free methods report their full inference time instead.
  virtual double seconds_per_epoch() const = 0;

  /// Number of training epochs the last Fit() ran.
  virtual int64_t epochs_run() const { return 1; }
};

}  // namespace tranad

#endif  // TRANAD_CORE_DETECTOR_H_
