#ifndef TRANAD_COMMON_RNG_H_
#define TRANAD_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace tranad {

/// Deterministic, fast pseudo-random generator (xoshiro256**) with SplitMix64
/// seeding. All stochastic components in the library (weight init, dropout,
/// dataset synthesis, subsampling) draw from an explicitly passed Rng so every
/// experiment is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator state via SplitMix64 expansion.
  void Seed(uint64_t seed);

  /// Uniform 64-bit draw.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal draw (Box–Muller, cached pair).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Fisher–Yates shuffle of an index vector [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Splits off an independently seeded child generator; used so that
  /// parallel experiment arms never share a stream.
  Rng Split();

  /// Complete generator state, exportable for checkpointing so a resumed
  /// run draws the exact same stream as an uninterrupted one.
  struct State {
    uint64_t s[4];
    bool has_cached_normal;
    double cached_normal;
  };
  State ExportState() const;
  void RestoreState(const State& state);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace tranad

#endif  // TRANAD_COMMON_RNG_H_
