#ifndef TRANAD_EVAL_METRICS_H_
#define TRANAD_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace tranad {

/// Binary classification counts.
struct ConfusionCounts {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t tn = 0;
  int64_t fn = 0;
};

/// Detection quality summary (the P/R/AUC/F1 columns of Tables 2-3).
struct DetectionMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double roc_auc = 0.0;
  double threshold = 0.0;
};

/// Counts TP/FP/TN/FN of predictions against ground truth.
ConfusionCounts CountConfusion(const std::vector<uint8_t>& pred,
                               const std::vector<uint8_t>& truth);

double PrecisionOf(const ConfusionCounts& c);
double RecallOf(const ConfusionCounts& c);
double F1Of(const ConfusionCounts& c);

/// Point-adjust protocol (Xu et al. / OmniAnomaly, used by the paper and
/// every deep baseline it compares against): if any timestamp inside a
/// contiguous ground-truth anomaly segment is predicted anomalous, all
/// timestamps of that segment count as detected.
std::vector<uint8_t> PointAdjust(const std::vector<uint8_t>& pred,
                                 const std::vector<uint8_t>& truth);

/// Thresholds scores at `threshold` (>=) into binary predictions.
std::vector<uint8_t> ApplyThreshold(const std::vector<double>& scores,
                                    double threshold);

/// Area under the ROC curve via the rank statistic (ties averaged).
double RocAuc(const std::vector<double>& scores,
              const std::vector<uint8_t>& truth);

/// Evaluates scores against truth at a fixed threshold with point-adjust.
DetectionMetrics EvaluateAtThreshold(const std::vector<double>& scores,
                                     const std::vector<uint8_t>& truth,
                                     double threshold);

/// Exact point-adjusted best-F1 sweep over every distinct score value in
/// O(n log n) (incremental confusion counts; no candidate subsampling), so
/// the result dominates EvaluateAtThreshold for any threshold — the
/// protocol used when POT's automatic threshold is not applicable.
/// `max_candidates` is ignored and kept only for API compatibility.
DetectionMetrics EvaluateBestF1(const std::vector<double>& scores,
                                const std::vector<uint8_t>& truth,
                                int64_t max_candidates = 256);

}  // namespace tranad

#endif  // TRANAD_EVAL_METRICS_H_
