#include "serve/serve_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/online_detector.h"
#include "core/pipeline.h"
#include "data/synthetic.h"

namespace tranad::serve {
namespace {

// One small detector trained once for the whole suite: engine tests
// exercise the serving machinery, not training.
class ServeEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = SmapConfig(0.2);
    config.anomaly_magnitude = 1.6;
    for (uint64_t s = 0; s < kNumStreams; ++s) {
      config.seed = 42 + s;
      datasets_->push_back(GenerateSynthetic(config));
    }
    TranADConfig model_config;
    model_config.window = 8;
    model_config.d_ff = 16;
    TrainOptions train;
    train.max_epochs = 2;
    detector_ = new TranADDetector(model_config, train);
    detector_->Fit((*datasets_)[0].train);
  }

  static void TearDownTestSuite() {
    delete detector_;
    detector_ = nullptr;
    datasets_->clear();
  }

  static Tensor Observation(const TimeSeries& series, int64_t t) {
    Tensor row({series.dims()});
    for (int64_t d = 0; d < series.dims(); ++d) {
      row[d] = series.values.At({t, d});
    }
    return row;
  }

  struct RecordedVerdict {
    int64_t seq = 0;
    OnlineVerdict verdict;
  };

  /// Thread-safe per-stream verdict log.
  struct VerdictLog {
    std::mutex mu;
    std::map<StreamId, std::vector<RecordedVerdict>> by_stream;

    VerdictCallback Callback() {
      return [this](StreamId stream, int64_t seq, const OnlineVerdict& v) {
        std::lock_guard<std::mutex> lock(mu);
        by_stream[stream].push_back({seq, v});
      };
    }
  };

  static constexpr uint64_t kNumStreams = 3;
  static TranADDetector* detector_;
  static std::vector<Dataset>* datasets_;
};

TranADDetector* ServeEngineTest::detector_ = nullptr;
std::vector<Dataset>* ServeEngineTest::datasets_ = new std::vector<Dataset>();

// The tentpole acceptance test: N streams served concurrently through the
// micro-batched worker pool produce exactly the verdicts of N independent
// sequential OnlineTranAD runs — same scores, same POT thresholds, same
// anomaly flags, regardless of how requests interleaved into batches.
TEST_F(ServeEngineTest, ConcurrentStreamsMatchSequentialOnline) {
  const int64_t steps = 40;
  const PotParams pot = PotParamsForDataset("SMAP");

  // Reference: one sequential OnlineTranAD run per stream.
  std::vector<std::vector<OnlineVerdict>> expected(kNumStreams);
  for (uint64_t s = 0; s < kNumStreams; ++s) {
    OnlineTranAD online(detector_, pot);
    online.Calibrate((*datasets_)[s].train);
    for (int64_t t = 0; t < steps; ++t) {
      expected[s].push_back(
          online.Observe(Observation((*datasets_)[s].test, t)));
    }
  }

  ServeOptions options;
  options.num_workers = 4;
  options.max_batch = 8;
  options.max_wait_us = 100;
  options.pot = pot;
  ServeEngine engine(detector_, options);

  std::vector<StreamId> ids;
  for (uint64_t s = 0; s < kNumStreams; ++s) {
    auto created = engine.CreateStream((*datasets_)[s].train);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    ids.push_back(created.value());
  }
  EXPECT_EQ(engine.num_streams(), static_cast<int64_t>(kNumStreams));

  // Interleave submissions round-robin so every micro-batch mixes streams.
  VerdictLog log;
  for (int64_t t = 0; t < steps; ++t) {
    for (uint64_t s = 0; s < kNumStreams; ++s) {
      Status st = Status::Ok();
      do {  // backpressure: retry rejected submissions
        st = engine.Submit(ids[s], Observation((*datasets_)[s].test, t),
                           log.Callback());
      } while (st.code() == StatusCode::kResourceExhausted);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
  }
  engine.Flush();

  for (uint64_t s = 0; s < kNumStreams; ++s) {
    const auto& got = log.by_stream[ids[s]];
    ASSERT_EQ(got.size(), static_cast<size_t>(steps)) << "stream " << s;
    for (int64_t t = 0; t < steps; ++t) {
      const auto& g = got[static_cast<size_t>(t)];
      const auto& e = expected[s][static_cast<size_t>(t)];
      ASSERT_EQ(g.seq, t) << "stream " << s;  // per-stream FIFO
      EXPECT_EQ(g.verdict.score, e.score) << "stream " << s << " t=" << t;
      EXPECT_EQ(g.verdict.threshold, e.threshold)
          << "stream " << s << " t=" << t;
      EXPECT_EQ(g.verdict.anomalous, e.anomalous)
          << "stream " << s << " t=" << t;
      for (int64_t d = 0; d < g.verdict.dim_scores.numel(); ++d) {
        ASSERT_EQ(g.verdict.dim_scores[d], e.dim_scores[d])
            << "stream " << s << " t=" << t << " d=" << d;
      }
    }
  }

  const ServeStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.completed, static_cast<int64_t>(kNumStreams) * steps);
  EXPECT_GE(stats.mean_batch_size, 1.0);
}

// Determinism satellite: single worker, serial submission — the serve path
// must reproduce OnlineTranAD::Observe bit-for-bit even through batching.
TEST_F(ServeEngineTest, ServeDeterminismSingleWorkerBitExact) {
  const int64_t steps = 30;
  const PotParams pot = PotParamsForDataset("SMAP");

  OnlineTranAD online(detector_, pot);
  online.Calibrate((*datasets_)[0].train);
  std::vector<OnlineVerdict> expected;
  for (int64_t t = 0; t < steps; ++t) {
    expected.push_back(online.Observe(Observation((*datasets_)[0].test, t)));
  }

  ServeOptions options;
  options.num_workers = 1;
  options.max_batch = 8;
  options.max_wait_us = 0;  // greedy drain, no linger
  options.pot = pot;
  ServeEngine engine(detector_, options);
  auto created = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(created.ok());

  VerdictLog log;
  for (int64_t t = 0; t < steps; ++t) {
    ASSERT_TRUE(engine
                    .Submit(created.value(),
                            Observation((*datasets_)[0].test, t),
                            log.Callback())
                    .ok());
  }
  engine.Flush();

  const auto& got = log.by_stream[created.value()];
  ASSERT_EQ(got.size(), static_cast<size_t>(steps));
  for (int64_t t = 0; t < steps; ++t) {
    const auto& g = got[static_cast<size_t>(t)].verdict;
    const auto& e = expected[static_cast<size_t>(t)];
    // Bit-for-bit: no tolerance.
    ASSERT_EQ(g.score, e.score) << "t=" << t;
    ASSERT_EQ(g.threshold, e.threshold) << "t=" << t;
    ASSERT_EQ(g.anomalous, e.anomalous) << "t=" << t;
  }
}

TEST_F(ServeEngineTest, SubmitValidatesStreamAndShape) {
  ServeEngine engine(detector_, {});
  const int64_t m = detector_->model()->config().dims;

  EXPECT_EQ(engine.Submit(999, Tensor({m}), nullptr).code(),
            StatusCode::kNotFound);

  auto created = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(engine.Submit(created.value(), Tensor({m + 1}), nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(engine.Submit(created.value(), Tensor({m}), nullptr).ok());
  engine.Flush();

  EXPECT_EQ(engine.CloseStream(999).code(), StatusCode::kNotFound);
  EXPECT_TRUE(engine.CloseStream(created.value()).ok());
  EXPECT_EQ(engine.Submit(created.value(), Tensor({m}), nullptr).code(),
            StatusCode::kNotFound);
}

TEST_F(ServeEngineTest, CreateStreamValidatesCalibration) {
  ServeEngine engine(detector_, {});
  TimeSeries empty;
  EXPECT_EQ(engine.CreateStream(empty).status().code(),
            StatusCode::kInvalidArgument);

  TimeSeries wrong_dims;
  wrong_dims.values =
      Tensor({10, (*datasets_)[0].dims() + 1});
  EXPECT_EQ(engine.CreateStream(wrong_dims).status().code(),
            StatusCode::kInvalidArgument);
}

// Backpressure: with a tiny queue and a stalled pipeline, Submit must shed
// load with ResourceExhausted instead of buffering unboundedly — and every
// admitted observation must still complete exactly once.
TEST_F(ServeEngineTest, BackpressureRejectsWhenQueueFull) {
  ServeOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  options.max_batch = 1;  // no coalescing: the queue drains slowly
  options.max_wait_us = 0;
  ServeEngine engine(detector_, options);
  auto created = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(created.ok());

  const int64_t m = detector_->model()->config().dims;
  std::atomic<int64_t> delivered{0};
  int64_t admitted = 0;
  int64_t rejected = 0;
  for (int64_t i = 0; i < 300; ++i) {
    const Status st =
        engine.Submit(created.value(), Observation((*datasets_)[0].test, 0),
                      [&](StreamId, int64_t, const OnlineVerdict&) {
                        delivered.fetch_add(1);
                      });
    if (st.ok()) {
      ++admitted;
    } else {
      ASSERT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0) << "queue of 2 absorbed 300 instant submissions";
  engine.Flush();
  EXPECT_EQ(delivered.load(), admitted);

  const ServeStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.submitted, admitted);
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.completed, admitted);
  (void)m;
}

// Streams can be created and destroyed while traffic is in flight; closing
// a stream never loses an admitted observation.
TEST_F(ServeEngineTest, CreateAndCloseStreamsDuringTraffic) {
  ServeOptions options;
  options.num_workers = 2;
  options.max_batch = 4;
  ServeEngine engine(detector_, options);
  auto base = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(base.ok());

  std::atomic<int64_t> delivered{0};
  std::atomic<int64_t> submitted{0};
  std::atomic<bool> stop{false};
  std::thread traffic([&] {
    int64_t t = 0;
    while (!stop.load()) {
      const Status st = engine.Submit(
          base.value(),
          Observation((*datasets_)[0].test,
                      t++ % (*datasets_)[0].test.length()),
          [&](StreamId, int64_t, const OnlineVerdict&) {
            delivered.fetch_add(1);
          });
      if (st.ok()) submitted.fetch_add(1);
    }
  });

  // Churn the registry while the traffic thread hammers the base stream.
  for (int round = 0; round < 5; ++round) {
    auto a = engine.CreateStream((*datasets_)[1].train);
    auto b = engine.CreateStream((*datasets_)[2].train);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    Status st = Status::Ok();
    do {  // the traffic thread may be keeping the queue full
      st = engine.Submit(a.value(), Observation((*datasets_)[1].test, 0),
                         [&](StreamId, int64_t, const OnlineVerdict&) {
                           delivered.fetch_add(1);
                         });
    } while (st.code() == StatusCode::kResourceExhausted);
    ASSERT_TRUE(st.ok()) << st.ToString();
    submitted.fetch_add(1);
    // Close with the observation possibly still in flight: the session is
    // held by shared_ptr, so the verdict must still be delivered.
    ASSERT_TRUE(engine.CloseStream(a.value()).ok());
    ASSERT_TRUE(engine.CloseStream(b.value()).ok());
  }
  stop.store(true);
  traffic.join();
  engine.Flush();

  EXPECT_EQ(engine.num_streams(), 1);
  EXPECT_EQ(delivered.load(), submitted.load());
}

TEST_F(ServeEngineTest, ReloadModelRejectsBadCheckpoints) {
  ServeEngine engine(detector_, {});

  // Nonexistent and non-detector files leave the engine serving untouched.
  EXPECT_FALSE(engine.ReloadModel(::testing::TempDir() + "/missing.ckpt").ok());

  // A detector with different geometry (window 4 instead of 8) is refused.
  TranADConfig narrow;
  narrow.window = 4;
  narrow.d_ff = 16;
  TrainOptions quick;
  quick.max_epochs = 1;
  TranADDetector other(narrow, quick);
  other.Fit((*datasets_)[0].train);
  const std::string mismatched = ::testing::TempDir() + "/mismatched.ckpt";
  ASSERT_TRUE(other.SaveCheckpoint(mismatched).ok());
  EXPECT_EQ(engine.ReloadModel(mismatched).code(),
            StatusCode::kInvalidArgument);

  // The engine still scores correctly after the failed reloads.
  auto created = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(
      engine.Submit(created.value(), Observation((*datasets_)[0].test, 0),
                    nullptr)
          .ok());
  engine.Flush();
  EXPECT_EQ(engine.stats().completed, 1);
}

// Reloading a checkpoint of the *same* weights mid-traffic must be
// invisible: the full verdict stream still matches a sequential
// OnlineTranAD run bit for bit, proving no submission is dropped, reordered
// or scored under a half-swapped model.
TEST_F(ServeEngineTest, ReloadIdenticalWeightsKeepsBitExactVerdicts) {
  const int64_t steps = 30;
  const PotParams pot = PotParamsForDataset("SMAP");
  const std::string ckpt = ::testing::TempDir() + "/same_weights.ckpt";
  ASSERT_TRUE(detector_->SaveCheckpoint(ckpt).ok());

  OnlineTranAD online(detector_, pot);
  online.Calibrate((*datasets_)[0].train);
  std::vector<OnlineVerdict> expected;
  for (int64_t t = 0; t < 2 * steps; ++t) {
    expected.push_back(online.Observe(Observation((*datasets_)[0].test, t)));
  }

  ServeOptions options;
  options.num_workers = 2;
  options.max_batch = 4;
  options.pot = pot;
  ServeEngine engine(detector_, options);
  auto created = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(created.ok());

  VerdictLog log;
  auto submit_range = [&](int64_t from, int64_t to) {
    for (int64_t t = from; t < to; ++t) {
      Status st = Status::Ok();
      do {
        st = engine.Submit(created.value(),
                           Observation((*datasets_)[0].test, t),
                           log.Callback());
      } while (st.code() == StatusCode::kResourceExhausted);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
  };
  // Swap while the first half is still in flight — no Flush in between.
  submit_range(0, steps);
  ASSERT_TRUE(engine.ReloadModel(ckpt).ok());
  submit_range(steps, 2 * steps);
  engine.Flush();

  const auto& got = log.by_stream[created.value()];
  ASSERT_EQ(got.size(), static_cast<size_t>(2 * steps));
  for (int64_t t = 0; t < 2 * steps; ++t) {
    const auto& g = got[static_cast<size_t>(t)];
    const auto& e = expected[static_cast<size_t>(t)];
    ASSERT_EQ(g.seq, t);
    ASSERT_EQ(g.verdict.score, e.score) << "t=" << t;
    ASSERT_EQ(g.verdict.threshold, e.threshold) << "t=" << t;
    ASSERT_EQ(g.verdict.anomalous, e.anomalous) << "t=" << t;
  }
}

// Reloading genuinely different weights takes effect: verdict scores after
// the swap differ from what the original model would have produced.
TEST_F(ServeEngineTest, ReloadSwapsToNewWeights) {
  const PotParams pot = PotParamsForDataset("SMAP");
  TranADConfig config;
  config.window = 8;
  config.d_ff = 16;
  config.seed = 99;  // different init => different weights, same geometry
  TrainOptions quick;
  quick.max_epochs = 1;
  TranADDetector other(config, quick);
  other.Fit((*datasets_)[1].train);
  const std::string ckpt = ::testing::TempDir() + "/new_weights.ckpt";
  ASSERT_TRUE(other.SaveCheckpoint(ckpt).ok());

  ServeOptions options;
  options.pot = pot;
  ServeEngine engine(detector_, options);
  auto created = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(created.ok());

  VerdictLog log;
  auto submit_one = [&](int64_t t) {
    Status st = Status::Ok();
    do {
      st = engine.Submit(created.value(), Observation((*datasets_)[0].test, t),
                         log.Callback());
    } while (st.code() == StatusCode::kResourceExhausted);
    ASSERT_TRUE(st.ok());
    engine.Flush();
  };
  submit_one(0);
  ASSERT_TRUE(engine.ReloadModel(ckpt).ok());
  submit_one(0);  // same observation, new model

  const auto& got = log.by_stream[created.value()];
  ASSERT_EQ(got.size(), 2u);
  EXPECT_NE(got[0].verdict.score, got[1].verdict.score)
      << "reload did not change the serving weights";
}

// Stress the swap under concurrent load (the TSan target): a traffic thread
// hammers the engine while the main thread flips between two checkpoints;
// every admitted observation must still complete exactly once.
TEST_F(ServeEngineTest, ReloadUnderConcurrentTrafficLosesNothing) {
  const std::string ckpt_a = ::testing::TempDir() + "/reload_a.ckpt";
  ASSERT_TRUE(detector_->SaveCheckpoint(ckpt_a).ok());

  ServeOptions options;
  options.num_workers = 4;
  options.max_batch = 4;
  ServeEngine engine(detector_, options);
  auto created = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(created.ok());

  std::atomic<int64_t> delivered{0};
  std::atomic<int64_t> submitted{0};
  std::atomic<bool> stop{false};
  std::thread traffic([&] {
    int64_t t = 0;
    while (!stop.load()) {
      const Status st = engine.Submit(
          created.value(),
          Observation((*datasets_)[0].test,
                      t++ % (*datasets_)[0].test.length()),
          [&](StreamId, int64_t, const OnlineVerdict&) {
            delivered.fetch_add(1);
          });
      if (st.ok()) submitted.fetch_add(1);
    }
  });

  for (int round = 0; round < 6; ++round) {
    const Status st = engine.ReloadModel(ckpt_a);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  stop.store(true);
  traffic.join();
  engine.Flush();
  EXPECT_EQ(delivered.load(), submitted.load());
  EXPECT_GT(delivered.load(), 0);
}

// Shutdown ordering audit: Stop() racing an in-flight ReloadModel() must
// not deadlock — the reload completes (or fails fast) and every admitted
// observation still gets its callback exactly once.
TEST_F(ServeEngineTest, StopDuringReloadDoesNotDeadlockOrLeakCallbacks) {
  const std::string ckpt = ::testing::TempDir() + "/stop_reload.ckpt";
  ASSERT_TRUE(detector_->SaveCheckpoint(ckpt).ok());

  for (int round = 0; round < 4; ++round) {
    ServeOptions options;
    options.num_workers = 2;
    options.max_batch = 4;
    ServeEngine engine(detector_, options);
    auto created = engine.CreateStream((*datasets_)[0].train);
    ASSERT_TRUE(created.ok());

    std::atomic<int64_t> delivered{0};
    std::atomic<int64_t> submitted{0};
    std::atomic<bool> stop_traffic{false};
    std::thread traffic([&] {
      int64_t t = 0;
      while (!stop_traffic.load()) {
        const Status st = engine.Submit(
            created.value(),
            Observation((*datasets_)[0].test,
                        t++ % (*datasets_)[0].test.length()),
            [&](StreamId, int64_t, const OnlineVerdict&) {
              delivered.fetch_add(1);
            });
        if (st.ok()) submitted.fetch_add(1);
      }
    });
    std::thread reloader([&] {
      // Races Stop(): each call either commits before the stop or fails
      // fast with FailedPrecondition; it must never wedge.
      for (int i = 0; i < 3; ++i) {
        const Status st = engine.ReloadModel(ckpt);
        EXPECT_TRUE(st.ok() ||
                    st.code() == StatusCode::kFailedPrecondition)
            << st.ToString();
      }
    });

    engine.Stop();  // concurrent with both threads above
    stop_traffic.store(true);
    traffic.join();
    reloader.join();
    EXPECT_EQ(delivered.load(), submitted.load()) << "round " << round;
  }
}

TEST_F(ServeEngineTest, StopIsIdempotentAndDrainsAdmittedWork) {
  ServeOptions options;
  options.num_workers = 2;
  options.max_batch = 4;
  ServeEngine engine(detector_, options);
  auto created = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(created.ok());

  std::atomic<int64_t> delivered{0};
  int64_t admitted = 0;
  for (int64_t t = 0; t < 16; ++t) {
    if (engine
            .Submit(created.value(), Observation((*datasets_)[0].test, t),
                    [&](StreamId, int64_t, const OnlineVerdict&) {
                      delivered.fetch_add(1);
                    })
            .ok()) {
      ++admitted;
    }
  }
  engine.Stop();
  EXPECT_EQ(delivered.load(), admitted)
      << "Stop() must drain admitted work, not drop it";
  engine.Stop();  // idempotent
  engine.Stop();
  EXPECT_EQ(delivered.load(), admitted);

  // Admission after Stop fails fast with a clear precondition error.
  EXPECT_EQ(engine
                .Submit(created.value(), Observation((*datasets_)[0].test, 0),
                        nullptr)
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.ReloadModel("anything.ckpt").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ServeEngineTest, StatsSnapshotIsConsistent) {
  ServeOptions options;
  options.num_workers = 2;
  options.max_batch = 4;
  options.max_wait_us = 200;
  ServeEngine engine(detector_, options);
  auto created = engine.CreateStream((*datasets_)[0].train);
  ASSERT_TRUE(created.ok());

  const int64_t n = 24;
  for (int64_t t = 0; t < n; ++t) {
    Status st = Status::Ok();
    do {
      st = engine.Submit(created.value(),
                         Observation((*datasets_)[0].test, t), nullptr);
    } while (st.code() == StatusCode::kResourceExhausted);
    ASSERT_TRUE(st.ok());
  }
  engine.Flush();

  const ServeStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.completed, n);
  EXPECT_EQ(stats.submitted, n);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_GT(stats.batches, 0);
  EXPECT_GE(stats.mean_batch_size, 1.0);
  EXPECT_LE(stats.mean_batch_size, static_cast<double>(options.max_batch));

  int64_t hist_total = 0;
  for (size_t s = 0; s < stats.batch_size_hist.size(); ++s) {
    hist_total += stats.batch_size_hist[s] * static_cast<int64_t>(s);
  }
  EXPECT_EQ(hist_total, n);

  EXPECT_GT(stats.p50_latency_ms, 0.0);
  EXPECT_LE(stats.p50_latency_ms, stats.p99_latency_ms);
  EXPECT_LE(stats.p99_latency_ms, stats.max_latency_ms);
  EXPECT_GT(stats.throughput_per_sec, 0.0);
  EXPECT_GT(stats.elapsed_seconds, 0.0);
}

}  // namespace
}  // namespace tranad::serve
