#include "nn/transformer.h"

#include "common/string_util.h"
#include "tensor/autograd_ops.h"

namespace tranad::nn {

FeedForward::FeedForward(int64_t d_model, int64_t d_hidden, int64_t d_out,
                         float dropout_p, Rng* rng)
    : dropout_p_(dropout_p) {
  fc1_ = std::make_unique<Linear>(d_model, d_hidden, rng);
  fc2_ = std::make_unique<Linear>(d_hidden, d_out, rng);
  RegisterModule("fc1", fc1_.get());
  RegisterModule("fc2", fc2_.get());
}

Variable FeedForward::Forward(const Variable& x, Rng* rng) const {
  Variable h = ag::LeakyRelu(fc1_->Forward(x), 0.01f);
  h = ag::Dropout(h, dropout_p_, training(), rng);
  return fc2_->Forward(h);
}

TransformerEncoderLayer::TransformerEncoderLayer(int64_t d_model,
                                                 int64_t num_heads,
                                                 int64_t d_ff, float dropout_p,
                                                 Rng* rng)
    : dropout_p_(dropout_p) {
  self_attn_ = std::make_unique<MultiHeadAttention>(d_model, num_heads, rng);
  ff_ = std::make_unique<FeedForward>(d_model, d_ff, d_model, dropout_p, rng);
  norm1_ = std::make_unique<LayerNorm>(d_model);
  norm2_ = std::make_unique<LayerNorm>(d_model);
  RegisterModule("self_attn", self_attn_.get());
  RegisterModule("ff", ff_.get());
  RegisterModule("norm1", norm1_.get());
  RegisterModule("norm2", norm2_.get());
}

Variable TransformerEncoderLayer::Forward(const Variable& x, Rng* rng,
                                          const Tensor* mask) const {
  Variable attn = self_attn_->Forward(x, x, x, mask);
  attn = ag::Dropout(attn, dropout_p_, training(), rng);
  Variable x1 = norm1_->Forward(ag::Add(x, attn));
  Variable ffo = ff_->Forward(x1, rng);
  ffo = ag::Dropout(ffo, dropout_p_, training(), rng);
  return norm2_->Forward(ag::Add(x1, ffo));
}

TransformerEncoder::TransformerEncoder(int64_t num_layers, int64_t d_model,
                                       int64_t num_heads, int64_t d_ff,
                                       float dropout_p, Rng* rng) {
  TRANAD_CHECK_GT(num_layers, 0);
  for (int64_t i = 0; i < num_layers; ++i) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(
        d_model, num_heads, d_ff, dropout_p, rng));
    RegisterModule(StrFormat("layer%lld", static_cast<long long>(i)),
                   layers_.back().get());
  }
}

Variable TransformerEncoder::Forward(const Variable& x, Rng* rng,
                                     const Tensor* mask) const {
  Variable h = x;
  for (const auto& layer : layers_) h = layer->Forward(h, rng, mask);
  return h;
}

WindowEncoderLayer::WindowEncoderLayer(int64_t d_model, int64_t num_heads,
                                       int64_t d_ff, float dropout_p, Rng* rng)
    : dropout_p_(dropout_p) {
  self_attn_ = std::make_unique<MultiHeadAttention>(d_model, num_heads, rng);
  cross_attn_ = std::make_unique<MultiHeadAttention>(d_model, num_heads, rng);
  ff_ = std::make_unique<FeedForward>(d_model, d_ff, d_model, dropout_p, rng);
  norm1_ = std::make_unique<LayerNorm>(d_model);
  norm2_ = std::make_unique<LayerNorm>(d_model);
  norm3_ = std::make_unique<LayerNorm>(d_model);
  RegisterModule("self_attn", self_attn_.get());
  RegisterModule("cross_attn", cross_attn_.get());
  RegisterModule("ff", ff_.get());
  RegisterModule("norm1", norm1_.get());
  RegisterModule("norm2", norm2_.get());
  RegisterModule("norm3", norm3_.get());
}

Variable WindowEncoderLayer::Forward(const Variable& window,
                                     const Variable& context, Rng* rng,
                                     bool causal) const {
  const int64_t k = window.value().size(-2);
  const Tensor mask = CausalMask(k);
  Variable self =
      self_attn_->Forward(window, window, window, causal ? &mask : nullptr);
  self = ag::Dropout(self, dropout_p_, training(), rng);
  Variable x2 = norm1_->Forward(ag::Add(window, self));
  Variable cross = cross_attn_->Forward(x2, context, context);
  cross = ag::Dropout(cross, dropout_p_, training(), rng);
  Variable x3 = norm2_->Forward(ag::Add(x2, cross));
  Variable ffo = ff_->Forward(x3, rng);
  ffo = ag::Dropout(ffo, dropout_p_, training(), rng);
  return norm3_->Forward(ag::Add(x3, ffo));
}

}  // namespace tranad::nn
