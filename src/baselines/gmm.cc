#include "baselines/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace tranad {
namespace {
constexpr double kMinVar = 1e-6;
constexpr double kLog2Pi = 1.8378770664093453;
}  // namespace

DiagonalGmm::DiagonalGmm(int64_t components, int64_t dims)
    : k_(components), d_(dims) {
  TRANAD_CHECK_GT(components, 0);
  TRANAD_CHECK_GT(dims, 0);
}

double DiagonalGmm::LogComponentDensity(int64_t k, const float* x) const {
  const auto& mu = mean_[static_cast<size_t>(k)];
  const auto& var = var_[static_cast<size_t>(k)];
  double ll = 0.0;
  for (int64_t j = 0; j < d_; ++j) {
    const double diff = x[j] - mu[static_cast<size_t>(j)];
    const double v = var[static_cast<size_t>(j)];
    ll += -0.5 * (kLog2Pi + std::log(v) + diff * diff / v);
  }
  return ll;
}

void DiagonalGmm::Fit(const Tensor& features, Rng* rng, int64_t max_iters) {
  TRANAD_CHECK_EQ(features.ndim(), 2);
  TRANAD_CHECK_EQ(features.size(1), d_);
  const int64_t n = features.size(0);
  TRANAD_CHECK_GE(n, k_);
  const float* data = features.data();

  // k-means++-flavoured seeding: first centre uniform, others biased to
  // points far from existing centres.
  mean_.assign(static_cast<size_t>(k_), std::vector<double>(d_, 0.0));
  var_.assign(static_cast<size_t>(k_), std::vector<double>(d_, 1.0));
  weight_.assign(static_cast<size_t>(k_), 1.0 / static_cast<double>(k_));
  std::vector<int64_t> centers;
  centers.push_back(static_cast<int64_t>(rng->UniformInt(n)));
  while (static_cast<int64_t>(centers.size()) < k_) {
    int64_t best = -1;
    double best_d = -1.0;
    for (int64_t trial = 0; trial < 8; ++trial) {
      const int64_t cand = static_cast<int64_t>(rng->UniformInt(n));
      double dmin = std::numeric_limits<double>::infinity();
      for (int64_t c : centers) {
        double dist = 0.0;
        for (int64_t j = 0; j < d_; ++j) {
          const double diff = data[cand * d_ + j] - data[c * d_ + j];
          dist += diff * diff;
        }
        dmin = std::min(dmin, dist);
      }
      if (dmin > best_d) {
        best_d = dmin;
        best = cand;
      }
    }
    centers.push_back(best);
  }
  // Global variance as the initial spread.
  std::vector<double> gvar(static_cast<size_t>(d_), 0.0);
  std::vector<double> gmean(static_cast<size_t>(d_), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d_; ++j) gmean[static_cast<size_t>(j)] += data[i * d_ + j];
  }
  for (auto& v : gmean) v /= static_cast<double>(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d_; ++j) {
      const double diff = data[i * d_ + j] - gmean[static_cast<size_t>(j)];
      gvar[static_cast<size_t>(j)] += diff * diff;
    }
  }
  for (auto& v : gvar) v = std::max(kMinVar, v / static_cast<double>(n));
  for (int64_t k = 0; k < k_; ++k) {
    for (int64_t j = 0; j < d_; ++j) {
      mean_[static_cast<size_t>(k)][static_cast<size_t>(j)] =
          data[centers[static_cast<size_t>(k)] * d_ + j];
      var_[static_cast<size_t>(k)][static_cast<size_t>(j)] =
          gvar[static_cast<size_t>(j)];
    }
  }
  fitted_ = true;  // densities callable during EM

  std::vector<double> resp(static_cast<size_t>(n * k_), 0.0);
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (int64_t iter = 0; iter < max_iters; ++iter) {
    // E step.
    double total_ll = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      double mx = -std::numeric_limits<double>::infinity();
      std::vector<double> logp(static_cast<size_t>(k_));
      for (int64_t k = 0; k < k_; ++k) {
        logp[static_cast<size_t>(k)] =
            std::log(weight_[static_cast<size_t>(k)] + 1e-300) +
            LogComponentDensity(k, data + i * d_);
        mx = std::max(mx, logp[static_cast<size_t>(k)]);
      }
      double denom = 0.0;
      for (int64_t k = 0; k < k_; ++k) {
        denom += std::exp(logp[static_cast<size_t>(k)] - mx);
      }
      total_ll += mx + std::log(denom);
      for (int64_t k = 0; k < k_; ++k) {
        resp[static_cast<size_t>(i * k_ + k)] =
            std::exp(logp[static_cast<size_t>(k)] - mx) / denom;
      }
    }
    // M step.
    for (int64_t k = 0; k < k_; ++k) {
      double nk = 0.0;
      std::vector<double> mu(static_cast<size_t>(d_), 0.0);
      for (int64_t i = 0; i < n; ++i) {
        const double r = resp[static_cast<size_t>(i * k_ + k)];
        nk += r;
        for (int64_t j = 0; j < d_; ++j) {
          mu[static_cast<size_t>(j)] += r * data[i * d_ + j];
        }
      }
      nk = std::max(nk, 1e-8);
      for (auto& v : mu) v /= nk;
      std::vector<double> var(static_cast<size_t>(d_), 0.0);
      for (int64_t i = 0; i < n; ++i) {
        const double r = resp[static_cast<size_t>(i * k_ + k)];
        for (int64_t j = 0; j < d_; ++j) {
          const double diff = data[i * d_ + j] - mu[static_cast<size_t>(j)];
          var[static_cast<size_t>(j)] += r * diff * diff;
        }
      }
      for (auto& v : var) v = std::max(kMinVar, v / nk);
      weight_[static_cast<size_t>(k)] = nk / static_cast<double>(n);
      mean_[static_cast<size_t>(k)] = std::move(mu);
      var_[static_cast<size_t>(k)] = std::move(var);
    }
    if (std::fabs(total_ll - prev_ll) <
        1e-6 * (1.0 + std::fabs(total_ll))) {
      break;
    }
    prev_ll = total_ll;
  }
}

double DiagonalGmm::Energy(const float* x) const {
  TRANAD_CHECK(fitted_);
  double mx = -std::numeric_limits<double>::infinity();
  std::vector<double> logp(static_cast<size_t>(k_));
  for (int64_t k = 0; k < k_; ++k) {
    logp[static_cast<size_t>(k)] =
        std::log(weight_[static_cast<size_t>(k)] + 1e-300) +
        LogComponentDensity(k, x);
    mx = std::max(mx, logp[static_cast<size_t>(k)]);
  }
  double denom = 0.0;
  for (double lp : logp) denom += std::exp(lp - mx);
  return -(mx + std::log(denom));
}

std::vector<double> DiagonalGmm::Energies(const Tensor& features) const {
  TRANAD_CHECK_EQ(features.ndim(), 2);
  TRANAD_CHECK_EQ(features.size(1), d_);
  std::vector<double> out(static_cast<size_t>(features.size(0)));
  for (int64_t i = 0; i < features.size(0); ++i) {
    out[static_cast<size_t>(i)] = Energy(features.data() + i * d_);
  }
  return out;
}

}  // namespace tranad
