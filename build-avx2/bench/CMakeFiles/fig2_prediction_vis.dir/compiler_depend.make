# Empty compiler generated dependencies file for fig2_prediction_vis.
# This may be replaced when dependencies are built.
