#include "data/preprocess.h"

#include <algorithm>

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace tranad {

namespace {
constexpr float kRangeEpsilon = 1e-4f;  // the paper's epsilon' in Eq. (1)
}

void MinMaxNormalizer::Fit(const Tensor& train) {
  TRANAD_CHECK_EQ(train.ndim(), 2);
  const int64_t t = train.size(0);
  const int64_t m = train.size(1);
  TRANAD_CHECK_GT(t, 0);
  min_ = Tensor({m});
  max_ = Tensor({m});
  for (int64_t d = 0; d < m; ++d) {
    float lo = train.At({0, d});
    float hi = lo;
    for (int64_t i = 1; i < t; ++i) {
      const float v = train.At({i, d});
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    min_[d] = lo;
    max_[d] = hi;
  }
  fitted_ = true;
}

Tensor MinMaxNormalizer::Transform(const Tensor& x, float clip) const {
  TRANAD_CHECK(fitted_);
  TRANAD_CHECK_EQ(x.ndim(), 2);
  const int64_t m = x.size(1);
  TRANAD_CHECK_EQ(m, min_.numel());
  Tensor out(x.shape());
  const int64_t t = x.size(0);
  for (int64_t d = 0; d < m; ++d) {
    const float lo = min_[d];
    const float range = max_[d] - lo + kRangeEpsilon;
    for (int64_t i = 0; i < t; ++i) {
      float v = (x.At({i, d}) - lo) / range;
      v = std::clamp(v, -clip, 1.0f + clip);
      out.At({i, d}) = v;
    }
  }
  return out;
}

Status MinMaxNormalizer::Restore(const Tensor& min, const Tensor& max) {
  if (min.ndim() != 1 || max.ndim() != 1 || min.numel() != max.numel() ||
      min.numel() <= 0) {
    return Status::InvalidArgument(
        "normalizer restore needs matching rank-1 min/max tensors");
  }
  min_ = min;
  max_ = max;
  fitted_ = true;
  return Status::Ok();
}

Tensor MakeWindows(const Tensor& series, int64_t k) {
  TRANAD_CHECK_EQ(series.ndim(), 2);
  TRANAD_CHECK_GT(k, 0);
  const int64_t t = series.size(0);
  const int64_t m = series.size(1);
  Tensor out({t, k, m});
  const float* src = series.data();
  float* dst = out.data();
  for (int64_t i = 0; i < t; ++i) {
    for (int64_t w = 0; w < k; ++w) {
      // Window position w corresponds to timestamp i - k + 1 + w,
      // replication-padded with x_0 when negative.
      const int64_t src_t = std::max<int64_t>(0, i - k + 1 + w);
      std::copy(src + src_t * m, src + (src_t + 1) * m,
                dst + (i * k + w) * m);
    }
  }
  return out;
}

std::pair<Tensor, Tensor> SplitTrainVal(const Tensor& data, double val_frac) {
  TRANAD_CHECK_GE(data.ndim(), 1);
  TRANAD_CHECK(val_frac >= 0.0 && val_frac < 1.0);
  const int64_t n = data.size(0);
  int64_t n_train =
      static_cast<int64_t>(static_cast<double>(n) * (1.0 - val_frac));
  n_train = std::clamp<int64_t>(n_train, 1, n);
  Tensor train = SliceAxis(data, 0, 0, n_train);
  Tensor val = SliceAxis(data, 0, n_train, n - n_train);
  return {std::move(train), std::move(val)};
}

TimeSeries SubsampleTrain(const TimeSeries& train, double fraction, Rng* rng) {
  TRANAD_CHECK(fraction > 0.0 && fraction <= 1.0);
  TRANAD_CHECK(rng != nullptr);
  const int64_t t = train.length();
  const int64_t len =
      std::max<int64_t>(2, static_cast<int64_t>(fraction * t));
  if (len >= t) return train;
  const int64_t start =
      static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(t - len)));
  TimeSeries out;
  out.name = train.name + "/sub";
  const int64_t m = train.dims();
  out.values = Tensor({len, m});
  std::copy(train.values.data() + start * m,
            train.values.data() + (start + len) * m, out.values.data());
  return out;
}

}  // namespace tranad
