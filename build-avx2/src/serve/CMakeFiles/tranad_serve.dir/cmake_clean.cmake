file(REMOVE_RECURSE
  "CMakeFiles/tranad_serve.dir/micro_batcher.cc.o"
  "CMakeFiles/tranad_serve.dir/micro_batcher.cc.o.d"
  "CMakeFiles/tranad_serve.dir/serve_engine.cc.o"
  "CMakeFiles/tranad_serve.dir/serve_engine.cc.o.d"
  "CMakeFiles/tranad_serve.dir/serve_stats.cc.o"
  "CMakeFiles/tranad_serve.dir/serve_stats.cc.o.d"
  "CMakeFiles/tranad_serve.dir/shard_router.cc.o"
  "CMakeFiles/tranad_serve.dir/shard_router.cc.o.d"
  "CMakeFiles/tranad_serve.dir/stream_session.cc.o"
  "CMakeFiles/tranad_serve.dir/stream_session.cc.o.d"
  "libtranad_serve.a"
  "libtranad_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tranad_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
