#ifndef TRANAD_BASELINES_GDN_H_
#define TRANAD_BASELINES_GDN_H_

#include <memory>

#include "baselines/common.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/optimizer.h"

namespace tranad {

/// GDN (Deng & Hooi, AAAI'21): learns an embedding per dimension, derives
/// an attention graph over dimensions from embedding similarity, aggregates
/// neighbour window-features through it, and forecasts each dimension's
/// next value; the scaled forecast deviation is the anomaly score.
class GdnDetector : public WindowedDetector {
 public:
  explicit GdnDetector(int64_t window = 10, int64_t epochs = 5,
                       int64_t embed = 16, uint64_t seed = 19);
  ~GdnDetector() override;  // out-of-line: GdnModule is incomplete here

  /// The learned dimension-adjacency attention [m, m] (row-softmaxed) —
  /// exposed for the graph-structure tests.
  Tensor AttentionGraph() const;

 protected:
  void BuildModel(int64_t dims) override;
  double TrainBatch(const Tensor& batch, double progress) override;
  Tensor ScoreBatch(const Tensor& batch) override;

 private:
  Variable Forecast(const Tensor& batch) const;  // [B, m]

  int64_t embed_;
  uint64_t seed_;
  class GdnModule;
  std::unique_ptr<GdnModule> net_;
  std::unique_ptr<nn::Adam> opt_;
};

}  // namespace tranad

#endif  // TRANAD_BASELINES_GDN_H_
