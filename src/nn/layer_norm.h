#ifndef TRANAD_NN_LAYER_NORM_H_
#define TRANAD_NN_LAYER_NORM_H_

#include "nn/module.h"

namespace tranad::nn {

/// Layer normalization over the last axis with learned gain and bias
/// (Ba et al.), the "LayerNorm" of Eq. (4)-(5) in the paper.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t features, float eps = 1e-5f);

  Variable Forward(const Variable& x) const;

 private:
  int64_t features_;
  float eps_;
  Variable gain_;
  Variable bias_;
};

}  // namespace tranad::nn

#endif  // TRANAD_NN_LAYER_NORM_H_
