#include "serve/stream_session.h"

#include <algorithm>

#include "common/check.h"
#include "core/pipeline.h"
#include "tensor/tensor_ops.h"

namespace tranad::serve {

StreamSession::StreamSession(StreamId id, PotParams pot)
    : id_(id), spot_(pot) {}

void StreamSession::Calibrate(const TranADDetector& detector,
                              const TimeSeries& calibration) {
  TRANAD_CHECK_GT(calibration.length(), 0);
  const Tensor scores = detector.ScoreSeries(calibration);
  const Status st = spot_.Initialize(DetectionScores(scores));
  TRANAD_CHECK_MSG(st.ok(), "SPOT calibration failed");

  const int64_t k = detector.model()->config().window;
  const int64_t m = calibration.dims();
  ring_.Reset(k, m);
  const int64_t start = std::max<int64_t>(0, calibration.length() - k + 1);
  const int64_t len = calibration.length() - start;
  if (len > 0) {
    ring_.Seed(detector.NormalizeForScoring(
        SliceAxis(calibration.values, 0, start, len)));
  }
}

StreamSessionState StreamSession::ExportState() const {
  StreamSessionState state;
  state.window = ring_.window();
  state.dims = ring_.dims();
  state.ring_rows = ring_.ExportRows();
  state.pot = spot_.ExportState();
  state.next_seq = seq_.load(std::memory_order_acquire);
  state.non_finite_streak =
      consecutive_non_finite_.load(std::memory_order_acquire);
  state.quarantined = quarantined_.load(std::memory_order_acquire);
  return state;
}

Status StreamSession::RestoreState(const StreamSessionState& state) {
  TRANAD_RETURN_IF_ERROR(spot_.RestoreState(state.pot));
  TRANAD_RETURN_IF_ERROR(
      ring_.Restore(state.window, state.dims, state.ring_rows));
  seq_.store(state.next_seq, std::memory_order_release);
  consecutive_non_finite_.store(state.non_finite_streak,
                                std::memory_order_release);
  quarantined_.store(state.quarantined, std::memory_order_release);
  return Status::Ok();
}

}  // namespace tranad::serve
