#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "eval/pot.h"

namespace tranad {
namespace {

// Long-horizon drift behavior of the streaming SPOT threshold: the dynamic
// z_q of Alg. 2 must track a shifting score distribution and must stay
// finite and usable on degenerate (constant / near-constant) calibration
// tails — the failure modes a serving deployment hits first.
class StreamingPotDriftTest : public ::testing::Test {
 protected:
  static std::vector<double> Noisy(double level, double spread, int64_t n,
                                   uint64_t seed) {
    Rng rng(seed);
    std::vector<double> scores;
    scores.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      scores.push_back(level + spread * rng.Uniform());
    }
    return scores;
  }
};

TEST_F(StreamingPotDriftTest, ThresholdAdaptsUpwardUnderDrift) {
  StreamingPot spot;
  spot.Initialize(Noisy(0.1, 0.05, 600, 1));
  const double initial = spot.threshold();
  ASSERT_TRUE(std::isfinite(initial));

  // Feed a slowly rising score level (concept drift, not point anomalies).
  // SPOT absorbs the new peaks and re-fits, so the threshold must move up.
  for (int64_t i = 0; i < 2000; ++i) {
    const double level = 0.1 + 0.2 * (static_cast<double>(i) / 2000.0);
    spot.Observe(level + 0.05 * ((i * 2654435761u % 1000) / 1000.0));
    ASSERT_TRUE(std::isfinite(spot.threshold())) << "i=" << i;
    ASSERT_GT(spot.threshold(), 0.0) << "i=" << i;
  }
  EXPECT_GT(spot.threshold(), initial);

  // After the drift, scores at the old normal level are not anomalous.
  EXPECT_FALSE(spot.Observe(0.12));
}

TEST_F(StreamingPotDriftTest, ConstantCalibrationTailStaysFinite) {
  StreamingPot spot;
  // All-identical calibration scores: zero variance, every excess is zero,
  // the GPD fit is degenerate. The threshold must still come out finite,
  // positive, and able to flag a clear spike.
  spot.Initialize(std::vector<double>(500, 0.25));
  ASSERT_TRUE(std::isfinite(spot.threshold()));
  EXPECT_GT(spot.threshold(), 0.0);

  for (int64_t i = 0; i < 500; ++i) {
    spot.Observe(0.25);
    ASSERT_TRUE(std::isfinite(spot.threshold())) << "i=" << i;
    ASSERT_GT(spot.threshold(), 0.0) << "i=" << i;
  }
  EXPECT_TRUE(spot.Observe(10.0));
}

TEST_F(StreamingPotDriftTest, NearConstantTailStaysFiniteAndPositive) {
  StreamingPot spot;
  // Near-constant: tiny jitter around a level, so excesses over the initial
  // quantile are ~1e-9 — the regime where a naive Grimshaw fit produces a
  // zero or negative scale and z_q collapses below t.
  spot.Initialize(Noisy(0.5, 1e-9, 800, 3));
  ASSERT_TRUE(std::isfinite(spot.threshold()));
  EXPECT_GT(spot.threshold(), 0.0);

  Rng rng(4);
  for (int64_t i = 0; i < 1500; ++i) {
    spot.Observe(0.5 + 1e-9 * rng.Uniform());
    ASSERT_TRUE(std::isfinite(spot.threshold())) << "i=" << i;
    ASSERT_GT(spot.threshold(), 0.0) << "i=" << i;
  }
  // The threshold never dropped to (or below) the normal level.
  EXPECT_GE(spot.threshold(), 0.5);
}

// Serve-path quarantine contract: non-finite scores must leave the SPOT
// tail state untouched — a stream that was poisoned, quarantined, and
// released must threshold exactly like one that never saw the junk.
TEST_F(StreamingPotDriftTest, NonFiniteObservationsNeverPolluteTailState) {
  const std::vector<double> calibration = Noisy(0.1, 0.05, 600, 7);
  StreamingPot clean;
  StreamingPot poisoned;
  clean.Initialize(calibration);
  poisoned.Initialize(calibration);

  const double kNan = std::nan("");
  const double kInf = std::numeric_limits<double>::infinity();
  Rng rng(8);
  for (int64_t i = 0; i < 1000; ++i) {
    const double score = 0.1 + 0.05 * rng.Uniform();
    clean.Observe(score);
    poisoned.Observe(score);
    if (i % 50 == 10) {
      // A quarantined-then-released producer: bursts of junk between the
      // valid scores. None of it may touch the tail.
      poisoned.Observe(kNan);
      poisoned.Observe(kInf);
      poisoned.Observe(-kInf);
    }
  }

  const StreamingPotState a = clean.ExportState();
  const StreamingPotState b = poisoned.ExportState();
  EXPECT_EQ(a.initialized, b.initialized);
  EXPECT_EQ(a.t, b.t);          // bitwise: same initial threshold
  EXPECT_EQ(a.z_q, b.z_q);      // bitwise: same dynamic threshold
  EXPECT_EQ(a.n, b.n) << "non-finite observations were counted";
  ASSERT_EQ(a.peaks.size(), b.peaks.size())
      << "non-finite observations entered the peak set";
  for (size_t i = 0; i < a.peaks.size(); ++i) {
    ASSERT_EQ(a.peaks[i], b.peaks[i]) << "peak " << i;
  }
  ASSERT_TRUE(std::isfinite(b.z_q));
}

TEST_F(StreamingPotDriftTest, ZeroScoresNeverYieldNegativeThreshold) {
  StreamingPot spot;
  spot.Initialize(std::vector<double>(300, 0.0));
  for (int64_t i = 0; i < 300; ++i) {
    spot.Observe(0.0);
    ASSERT_TRUE(std::isfinite(spot.threshold()));
    ASSERT_GE(spot.threshold(), 0.0);
  }
}

}  // namespace
}  // namespace tranad
