// Table 6: ablation study — F1 (full data) and F1* (20% data) for TranAD
// and its four ablated variants on every dataset.
#include "bench/bench_util.h"

#include "data/preprocess.h"

namespace tranad::bench {
namespace {

int Main() {
  const auto variants = AblationMethodNames();
  const int64_t epochs = DefaultEpochs();
  std::vector<std::vector<double>> csv;
  const auto datasets = DatasetNames();
  for (size_t di = 0; di < datasets.size(); ++di) {
    const Dataset& full = BenchDataset(datasets[di]);
    std::vector<std::vector<std::string>> rows;
    for (const auto& variant : variants) {
      const EvalOutcome out = RunCell(variant, full, epochs);

      Rng rng(55);
      Dataset limited;
      limited.name = full.name;
      limited.train = SubsampleTrain(full.train, 0.2, &rng);
      limited.test = full.test;
      DetectorOptions options;
      options.epochs = epochs;
      auto det = CreateDetector(variant, options);
      TRANAD_CHECK(det.ok());
      const EvalOutcome star = EvaluateDetector(det->get(), limited);

      rows.push_back(
          {variant, Fmt4(out.detection.f1), Fmt4(star.detection.f1)});
      csv.push_back({static_cast<double>(di), out.detection.f1,
                     star.detection.f1});
      std::fflush(stdout);
    }
    PrintTable("Table 6 (" + datasets[di] + "): ablation study",
               {"Method", "F1", "F1*"}, rows);
  }
  const auto path =
      WriteBenchCsv("table6_ablation", {"dataset_idx", "f1", "f1_star"}, csv);
  std::printf("\nCSV: %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
