#include "tensor/autograd_ops.h"

#include <cmath>

#include "common/thread_pool.h"
#include "tensor/kernels.h"
#include "tensor/tensor_ops.h"

namespace tranad::ag {
namespace {

// Grain sizes mirroring tensor_ops.cc: pure functions of the shapes, so
// backward passes are as schedule-independent as the forward kernels.
constexpr int64_t kElemGrain = 1 << 13;

int64_t RowGrain(int64_t row_len) {
  return std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, row_len));
}

// Element-wise gradient mask m[i] = f(x[i]) — the derivative pattern shared
// by Relu/LeakyRelu/Gelu/Abs backward.
template <typename F>
Tensor ElemwiseMask(const Tensor& x, F f) {
  Tensor m = Tensor::Uninitialized(x.shape());
  const float* px = x.data();
  float* pm = m.data();
  ParallelFor(0, x.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pm[i] = f(px[i]);
  });
  return m;
}

// Convenience: element-wise unary op with backward dy/dx expressed via a
// tensor-valued multiplier computed from input and output values.
template <typename FwdF, typename GradF>
Variable UnaryOp(const Variable& a, FwdF fwd, GradF grad_mul) {
  Tensor y = fwd(a.value());
  Tensor x = a.value();
  Variable pa = a;
  Tensor y_copy = y;
  return Variable::MakeNode(
      std::move(y), {a},
      [pa, x = std::move(x), y = std::move(y_copy),
       grad_mul](const Tensor& g) mutable {
        pa.AccumulateGrad(Mul(g, grad_mul(x, y)));
      });
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  Variable pa = a, pb = b;
  Shape sa = a.shape(), sb = b.shape();
  return Variable::MakeNode(
      tranad::Add(a.value(), b.value()), {a, b},
      [pa, pb, sa, sb](const Tensor& g) mutable {
        pa.AccumulateGrad(ReduceTo(g, sa));
        pb.AccumulateGrad(ReduceTo(g, sb));
      });
}

Variable Sub(const Variable& a, const Variable& b) {
  Variable pa = a, pb = b;
  Shape sa = a.shape(), sb = b.shape();
  return Variable::MakeNode(
      tranad::Sub(a.value(), b.value()), {a, b},
      [pa, pb, sa, sb](const Tensor& g) mutable {
        pa.AccumulateGrad(ReduceTo(g, sa));
        pb.AccumulateGrad(ReduceTo(tranad::Neg(g), sb));
      });
}

Variable Mul(const Variable& a, const Variable& b) {
  Variable pa = a, pb = b;
  Tensor va = a.value(), vb = b.value();
  return Variable::MakeNode(
      tranad::Mul(va, vb), {a, b},
      [pa, pb, va, vb](const Tensor& g) mutable {
        pa.AccumulateGrad(ReduceTo(tranad::Mul(g, vb), va.shape()));
        pb.AccumulateGrad(ReduceTo(tranad::Mul(g, va), vb.shape()));
      });
}

Variable Div(const Variable& a, const Variable& b) {
  Variable pa = a, pb = b;
  Tensor va = a.value(), vb = b.value();
  return Variable::MakeNode(
      tranad::Div(va, vb), {a, b},
      [pa, pb, va, vb](const Tensor& g) mutable {
        pa.AccumulateGrad(ReduceTo(tranad::Div(g, vb), va.shape()));
        // d/db (a/b) = -a / b^2
        Tensor gb = tranad::Neg(
            tranad::Div(tranad::Mul(g, va), tranad::Mul(vb, vb)));
        pb.AccumulateGrad(ReduceTo(gb, vb.shape()));
      });
}

Variable SquaredDiff(const Variable& a, const Variable& b) {
  Variable pa = a, pb = b;
  Tensor va = a.value(), vb = b.value();
  return Variable::MakeNode(
      tranad::SquaredDiff(va, vb), {a, b},
      [pa, pb, va, vb](const Tensor& g) mutable {
        // d/da (a-b)^2 = 2*(a-b)*g; d/db = -2*(a-b)*g. Computing g*(a-b)
        // then scaling by +/-2 matches the unfused Square(Sub(..)) chain
        // bit-for-bit: (g*d)*2 == g*(2*d) because *2 is exact.
        Tensor gd = tranad::Mul(g, tranad::Sub(va, vb));
        pa.AccumulateGrad(ReduceTo(tranad::MulScalar(gd, 2.0f), va.shape()));
        pb.AccumulateGrad(ReduceTo(tranad::MulScalar(gd, -2.0f), vb.shape()));
      });
}

Variable AddScalar(const Variable& a, float s) {
  Variable pa = a;
  return Variable::MakeNode(
      tranad::AddScalar(a.value(), s), {a},
      [pa](const Tensor& g) mutable { pa.AccumulateGrad(g); });
}

Variable MulScalar(const Variable& a, float s) {
  Variable pa = a;
  return Variable::MakeNode(
      tranad::MulScalar(a.value(), s), {a},
      [pa, s](const Tensor& g) mutable {
        pa.AccumulateGrad(tranad::MulScalar(g, s));
      });
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0f); }

Variable MatMul(const Variable& a, const Variable& b) {
  Variable pa = a, pb = b;
  Tensor va = a.value(), vb = b.value();
  return Variable::MakeNode(
      tranad::MatMul(va, vb), {a, b},
      [pa, pb, va, vb](const Tensor& g) mutable {
        // dL/dA = g @ B^T, reduced over broadcast batch dims.
        pa.AccumulateGrad(
            ReduceTo(tranad::MatMul(g, TransposeLast2(vb)), va.shape()));
        // dL/dB = A^T @ g.
        pb.AccumulateGrad(
            ReduceTo(tranad::MatMul(TransposeLast2(va), g), vb.shape()));
      });
}

Variable TransposeLast2(const Variable& a) {
  Variable pa = a;
  return Variable::MakeNode(
      tranad::TransposeLast2(a.value()), {a}, [pa](const Tensor& g) mutable {
        pa.AccumulateGrad(tranad::TransposeLast2(g));
      });
}

Variable SwapAxes12(const Variable& a) {
  Variable pa = a;
  return Variable::MakeNode(
      tranad::SwapAxes12(a.value()), {a}, [pa](const Tensor& g) mutable {
        pa.AccumulateGrad(tranad::SwapAxes12(g));
      });
}

Variable Reshape(const Variable& a, Shape new_shape) {
  Variable pa = a;
  Shape old_shape = a.shape();
  return Variable::MakeNode(
      a.value().Reshape(std::move(new_shape)), {a},
      [pa, old_shape](const Tensor& g) mutable {
        pa.AccumulateGrad(g.Reshape(old_shape));
      });
}

Variable Concat(const std::vector<Variable>& parts, int64_t axis) {
  TRANAD_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const auto& p : parts) values.push_back(p.value());
  Tensor out = tranad::Concat(values, axis);
  const int64_t nd = out.ndim();
  const int64_t ax = axis < 0 ? axis + nd : axis;
  std::vector<Variable> ps = parts;
  std::vector<int64_t> lens;
  lens.reserve(parts.size());
  for (const auto& p : parts) lens.push_back(p.value().size(ax));
  return Variable::MakeNode(std::move(out), parts,
                            [ps, lens, ax](const Tensor& g) mutable {
                              int64_t off = 0;
                              for (size_t i = 0; i < ps.size(); ++i) {
                                ps[i].AccumulateGrad(
                                    tranad::SliceAxis(g, ax, off, lens[i]));
                                off += lens[i];
                              }
                            });
}

Variable SliceAxis(const Variable& a, int64_t axis, int64_t start,
                   int64_t len) {
  Variable pa = a;
  Shape in_shape = a.shape();
  const int64_t nd = a.value().ndim();
  const int64_t ax = axis < 0 ? axis + nd : axis;
  return Variable::MakeNode(
      tranad::SliceAxis(a.value(), axis, start, len), {a},
      [pa, in_shape, ax, start, len](const Tensor& g) mutable {
        // Scatter the slice gradient back into a zero tensor.
        Tensor full = Tensor::Zeros(in_shape);
        int64_t outer = 1;
        for (int64_t i = 0; i < ax; ++i) {
          outer *= in_shape[static_cast<size_t>(i)];
        }
        int64_t inner = 1;
        for (size_t i = static_cast<size_t>(ax) + 1; i < in_shape.size();
             ++i) {
          inner *= in_shape[i];
        }
        const int64_t in_row = in_shape[static_cast<size_t>(ax)] * inner;
        const int64_t g_row = len * inner;
        const float* pg = g.data();
        float* pf = full.data();
        ParallelFor(0, outer, RowGrain(g_row), [&](int64_t lo, int64_t hi) {
          for (int64_t o = lo; o < hi; ++o) {
            std::copy(pg + o * g_row, pg + (o + 1) * g_row,
                      pf + o * in_row + start * inner);
          }
        });
        pa.AccumulateGrad(full);
      });
}

Variable Sigmoid(const Variable& a) {
  return UnaryOp(
      a, [](const Tensor& x) { return tranad::Sigmoid(x); },
      [](const Tensor&, const Tensor& y) {
        // y * (1 - y)
        return tranad::Mul(y, tranad::Sub(Tensor::Scalar(1.0f), y));
      });
}

Variable Tanh(const Variable& a) {
  return UnaryOp(
      a, [](const Tensor& x) { return tranad::Tanh(x); },
      [](const Tensor&, const Tensor& y) {
        return tranad::Sub(Tensor::Scalar(1.0f), tranad::Mul(y, y));
      });
}

Variable Relu(const Variable& a) {
  return UnaryOp(
      a, [](const Tensor& x) { return tranad::Relu(x); },
      [](const Tensor& x, const Tensor&) {
        return ElemwiseMask(x, [](float v) { return v > 0.0f ? 1.0f : 0.0f; });
      });
}

Variable LeakyRelu(const Variable& a, float slope) {
  return UnaryOp(
      a,
      [slope](const Tensor& x) { return tranad::LeakyRelu(x, slope); },
      [slope](const Tensor& x, const Tensor&) {
        return ElemwiseMask(
            x, [slope](float v) { return v > 0.0f ? 1.0f : slope; });
      });
}

Variable Gelu(const Variable& a) {
  return UnaryOp(
      a, [](const Tensor& x) { return tranad::Gelu(x); },
      [](const Tensor& x, const Tensor&) {
        constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
        return ElemwiseMask(x, [](float xv) {
          const float u = kC * (xv + 0.044715f * xv * xv * xv);
          const float t = std::tanh(u);
          const float du = kC * (1.0f + 3.0f * 0.044715f * xv * xv);
          return 0.5f * (1.0f + t) + 0.5f * xv * (1.0f - t * t) * du;
        });
      });
}

Variable Exp(const Variable& a) {
  return UnaryOp(
      a, [](const Tensor& x) { return tranad::Exp(x); },
      [](const Tensor&, const Tensor& y) { return y; });
}

Variable Log(const Variable& a) {
  return UnaryOp(
      a, [](const Tensor& x) { return tranad::Log(x); },
      [](const Tensor& x, const Tensor&) {
        return tranad::Div(Tensor::Scalar(1.0f), x);
      });
}

Variable Sqrt(const Variable& a) {
  return UnaryOp(
      a, [](const Tensor& x) { return tranad::Sqrt(x); },
      [](const Tensor&, const Tensor& y) {
        return tranad::Div(Tensor::Scalar(0.5f), y);
      });
}

Variable Square(const Variable& a) {
  return UnaryOp(
      a, [](const Tensor& x) { return tranad::Square(x); },
      [](const Tensor& x, const Tensor&) { return tranad::MulScalar(x, 2.0f); });
}

Variable Abs(const Variable& a) {
  return UnaryOp(
      a, [](const Tensor& x) { return tranad::Abs(x); },
      [](const Tensor& x, const Tensor&) {
        return ElemwiseMask(x, [](float v) {
          return v > 0.0f ? 1.0f : (v < 0.0f ? -1.0f : 0.0f);
        });
      });
}

Variable SoftmaxLastDim(const Variable& a) {
  Tensor y = tranad::SoftmaxLastDim(a.value());
  Variable pa = a;
  Tensor y_copy = y;
  return Variable::MakeNode(
      std::move(y), {a}, [pa, y = std::move(y_copy)](const Tensor& g) mutable {
        // dx = y * (g - sum(g * y, lastdim))
        const int64_t n = y.size(-1);
        const int64_t rows = y.numel() / n;
        Tensor gx = Tensor::Uninitialized(y.shape());
        const float* py = y.data();
        const float* pg = g.data();
        float* po = gx.data();
        ParallelFor(0, rows, RowGrain(n), [&](int64_t lo, int64_t hi) {
          kernels::SoftmaxBackwardRows(py + lo * n, pg + lo * n, po + lo * n,
                                       hi - lo, n);
        });
        pa.AccumulateGrad(gx);
      });
}

Variable LayerNormLastDim(const Variable& a, float eps) {
  // Cache per-row inverse stddev alongside the normalized output so the
  // backward pass avoids recomputation.
  const Tensor& x = a.value();
  const int64_t n = x.size(-1);
  const int64_t rows = x.numel() / n;
  Tensor y = Tensor::Uninitialized(x.shape());
  std::vector<float> inv_std(static_cast<size_t>(rows));
  {
    const float* px = x.data();
    float* py = y.data();
    float* pinv = inv_std.data();
    ParallelFor(0, rows, RowGrain(n), [&](int64_t lo, int64_t hi) {
      kernels::LayerNormRows(px + lo * n, py + lo * n, pinv + lo, hi - lo, n,
                             eps);
    });
  }
  Variable pa = a;
  Tensor y_copy = y;
  return Variable::MakeNode(
      std::move(y), {a},
      [pa, y = std::move(y_copy), inv_std = std::move(inv_std),
       n, rows](const Tensor& g) mutable {
        // dx = inv/n * (n*g - sum(g) - xhat * sum(g*xhat))
        Tensor gx = Tensor::Uninitialized(y.shape());
        const float* py = y.data();
        const float* pg = g.data();
        const float* pinv = inv_std.data();
        float* po = gx.data();
        ParallelFor(0, rows, RowGrain(n), [&](int64_t lo, int64_t hi) {
          kernels::LayerNormBackwardRows(py + lo * n, pg + lo * n, pinv + lo,
                                         po + lo * n, hi - lo, n);
        });
        pa.AccumulateGrad(gx);
      });
}

Variable LayerNormAffine(const Variable& a, const Variable& gain,
                         const Variable& bias, float eps) {
  const Tensor& x = a.value();
  const int64_t n = x.size(-1);
  TRANAD_CHECK_EQ(gain.value().numel(), n);
  TRANAD_CHECK_EQ(bias.value().numel(), n);
  const int64_t rows = n == 0 ? 0 : x.numel() / n;
  // The backward pass needs the normalized activations and per-row inverse
  // stddev; skip materializing them when no tape is recording (serve path).
  const bool recording = !NoGradEnabled();
  Tensor y = Tensor::Uninitialized(x.shape());
  Tensor yhat = recording ? Tensor::Uninitialized(x.shape()) : Tensor();
  std::vector<float> inv_std(recording ? static_cast<size_t>(rows) : 0);
  {
    const float* px = x.data();
    const float* pg = gain.value().data();
    const float* pb = bias.value().data();
    float* py = y.data();
    float* pyh = recording ? yhat.data() : nullptr;
    float* pinv = recording ? inv_std.data() : nullptr;
    ParallelFor(0, rows, RowGrain(n), [&](int64_t lo, int64_t hi) {
      kernels::LayerNormAffineRows(px + lo * n, pg, pb, py + lo * n,
                                   pyh == nullptr ? nullptr : pyh + lo * n,
                                   pinv == nullptr ? nullptr : pinv + lo,
                                   hi - lo, n, eps);
    });
  }
  Variable pa = a, pgain = gain, pbias = bias;
  Tensor vgain = gain.value();
  Shape sg = gain.shape(), sb = bias.shape();
  return Variable::MakeNode(
      std::move(y), {a, gain, bias},
      [pa, pgain, pbias, vgain, sg, sb, yhat = std::move(yhat),
       inv_std = std::move(inv_std), n, rows](const Tensor& g) mutable {
        Tensor gx = Tensor::Uninitialized(yhat.shape());
        const float* pyh = yhat.data();
        const float* pgr = g.data();
        const float* pgv = vgain.data();
        const float* pinv = inv_std.data();
        float* po = gx.data();
        ParallelFor(0, rows, RowGrain(n), [&](int64_t lo, int64_t hi) {
          kernels::LayerNormAffineBackwardRows(pyh + lo * n, pgr + lo * n,
                                               pgv, pinv + lo, po + lo * n,
                                               hi - lo, n);
        });
        pa.AccumulateGrad(gx);
        pgain.AccumulateGrad(ReduceTo(tranad::Mul(g, yhat), sg));
        pbias.AccumulateGrad(ReduceTo(g, sb));
      });
}

Variable SumAll(const Variable& a) {
  Variable pa = a;
  Shape sa = a.shape();
  return Variable::MakeNode(Tensor::Scalar(tranad::SumAll(a.value())), {a},
                            [pa, sa](const Tensor& g) mutable {
                              pa.AccumulateGrad(
                                  Tensor::Full(sa, g.Item()));
                            });
}

Variable MeanAll(const Variable& a) {
  const float inv_n = 1.0f / static_cast<float>(a.value().numel());
  Variable pa = a;
  Shape sa = a.shape();
  return Variable::MakeNode(
      Tensor::Scalar(tranad::MeanAll(a.value())), {a},
      [pa, sa, inv_n](const Tensor& g) mutable {
        pa.AccumulateGrad(Tensor::Full(sa, g.Item() * inv_n));
      });
}

Variable Sum(const Variable& a, int64_t axis, bool keepdims) {
  Variable pa = a;
  Shape sa = a.shape();
  const int64_t ax = axis < 0 ? axis + a.value().ndim() : axis;
  return Variable::MakeNode(
      tranad::Sum(a.value(), axis, keepdims), {a},
      [pa, sa, ax, keepdims](const Tensor& g) mutable {
        Tensor gk = g;
        if (!keepdims) {
          Shape with_dim = gk.shape();
          with_dim.insert(with_dim.begin() + ax, 1);
          gk = gk.Reshape(with_dim);
        }
        // Broadcast back along the reduced axis.
        pa.AccumulateGrad(tranad::Add(Tensor::Zeros(sa), gk));
      });
}

Variable Mean(const Variable& a, int64_t axis, bool keepdims) {
  const int64_t ax = axis < 0 ? axis + a.value().ndim() : axis;
  const float inv = 1.0f / static_cast<float>(a.value().size(ax));
  return MulScalar(Sum(a, axis, keepdims), inv);
}

Variable Dropout(const Variable& a, float p, bool training, Rng* rng) {
  if (!training || p <= 0.0f) return a;
  TRANAD_CHECK(rng != nullptr);
  TRANAD_CHECK_LT(p, 1.0f);
  const float scale = 1.0f / (1.0f - p);
  Tensor mask(a.shape());
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask[i] = rng->Bernoulli(p) ? 0.0f : scale;
  }
  Variable pa = a;
  Tensor mask_copy = mask;
  return Variable::MakeNode(
      tranad::Mul(a.value(), mask), {a},
      [pa, mask = std::move(mask_copy)](const Tensor& g) mutable {
        pa.AccumulateGrad(tranad::Mul(g, mask));
      });
}

Variable MseLoss(const Variable& pred, const Tensor& target) {
  TRANAD_CHECK(pred.shape() == target.shape());
  // Fused forward: no diff/square intermediates, one tape node instead of
  // three. Value-identical to MeanAll(Square(Sub(pred, target))) — MseAll
  // uses the same serial ordered accumulation as MeanAll, and the backward
  // scale ((g/n)*2)*d equals the unfused chain's rounding order exactly.
  Variable pp = pred;
  Tensor vp = pred.value();
  Tensor vt = target;
  const float inv_n = 1.0f / static_cast<float>(vp.numel());
  return Variable::MakeNode(
      Tensor::Scalar(tranad::MseAll(vp, vt)), {pred},
      [pp, vp, vt, inv_n](const Tensor& g) mutable {
        const float s = g.Item() * inv_n * 2.0f;
        pp.AccumulateGrad(tranad::ScaledDiff(vp, vt, s));
      });
}

Variable MseLossVar(const Variable& pred, const Variable& target) {
  TRANAD_CHECK(pred.shape() == target.shape());
  Variable pp = pred, pt = target;
  Tensor vp = pred.value(), vt = target.value();
  const float inv_n = 1.0f / static_cast<float>(vp.numel());
  return Variable::MakeNode(
      Tensor::Scalar(tranad::MseAll(vp, vt)), {pred, target},
      [pp, pt, vp, vt, inv_n](const Tensor& g) mutable {
        const float s = g.Item() * inv_n * 2.0f;
        pp.AccumulateGrad(tranad::ScaledDiff(vp, vt, s));
        pt.AccumulateGrad(tranad::ScaledDiff(vp, vt, -s));
      });
}

}  // namespace tranad::ag
