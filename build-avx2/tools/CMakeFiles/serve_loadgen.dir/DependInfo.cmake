
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/serve_loadgen.cc" "tools/CMakeFiles/serve_loadgen.dir/serve_loadgen.cc.o" "gcc" "tools/CMakeFiles/serve_loadgen.dir/serve_loadgen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-avx2/src/baselines/CMakeFiles/tranad_baselines.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/net/CMakeFiles/tranad_net.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/serve/CMakeFiles/tranad_serve.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/core/CMakeFiles/tranad_core.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/nn/CMakeFiles/tranad_nn.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/io/CMakeFiles/tranad_io.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/data/CMakeFiles/tranad_data.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/eval/CMakeFiles/tranad_eval.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/tensor/CMakeFiles/tranad_tensor.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/common/CMakeFiles/tranad_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
