#ifndef TRANAD_COMMON_CSV_H_
#define TRANAD_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace tranad {

/// Minimal CSV table: an optional header row plus numeric rows. Sufficient
/// for time-series import/export and benchmark output; quoting is not needed
/// for numeric data and is intentionally unsupported.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;
};

/// Reads a numeric CSV file. If `has_header` the first row is kept as column
/// names. CRLF line endings and a single trailing delimiter per row are
/// tolerated; unreadable files, non-numeric cells (including empty cells)
/// and non-finite values ("nan", "inf") fail with IoError / InvalidArgument
/// rather than injecting garbage rows.
Result<CsvTable> ReadCsv(const std::string& path, bool has_header);

/// Writes a numeric CSV file; header is emitted when non-empty.
Status WriteCsv(const std::string& path, const CsvTable& table);

}  // namespace tranad

#endif  // TRANAD_COMMON_CSV_H_
