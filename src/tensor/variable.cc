#include "tensor/variable.h"

#include <atomic>
#include <unordered_set>

#include "common/thread_pool.h"
#include "tensor/tensor_ops.h"

namespace tranad {

namespace {
thread_local bool t_no_grad = false;

// Count of tape nodes created with backward edges; lets tests assert that
// guarded (no-grad) forward passes — including the chunks pool workers run
// on behalf of one — record nothing.
std::atomic<int64_t> g_tape_nodes{0};

// Compute-pool workers execute kernel chunks only; the chunk bodies never
// call MakeNode themselves, but defense-in-depth: mark every worker thread
// permanently no-grad so a closure that *did* build graph on a worker would
// produce constant nodes instead of racing on the tape. Registered here
// (not in thread_pool.cc) because common/ cannot depend on tensor/.
const bool g_worker_init_registered = [] {
  SetWorkerThreadInit([] { t_no_grad = true; });
  return true;
}();
}  // namespace

int64_t TapeNodesCreatedForTesting() {
  return g_tape_nodes.load(std::memory_order_relaxed);
}

NoGradGuard::NoGradGuard() : previous_(t_no_grad) { t_no_grad = true; }

NoGradGuard::~NoGradGuard() { t_no_grad = previous_; }

bool NoGradEnabled() { return t_no_grad; }

Variable::Variable(Tensor value, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  TRANAD_CHECK(defined());
  return node_->value;
}

Tensor* Variable::mutable_value() {
  TRANAD_CHECK(defined());
  return &node_->value;
}

const Tensor& Variable::grad() const {
  TRANAD_CHECK(defined());
  if (!node_->has_grad) {
    node_->grad = Tensor::Zeros(node_->value.shape());
    node_->has_grad = true;
  }
  return node_->grad;
}

bool Variable::requires_grad() const {
  return defined() && node_->requires_grad;
}

void Variable::ZeroGrad() {
  TRANAD_CHECK(defined());
  node_->grad = Tensor();
  node_->has_grad = false;
}

void Variable::AccumulateGrad(const Tensor& g) {
  TRANAD_CHECK(defined());
  if (!node_->requires_grad) return;
  TRANAD_CHECK_MSG(g.shape() == node_->value.shape(),
                   "grad shape " << ShapeToString(g.shape()) << " vs value "
                                 << ShapeToString(node_->value.shape()));
  if (!node_->has_grad) {
    node_->grad = g;
    node_->has_grad = true;
  } else {
    float* pg = node_->grad.data();
    const float* ps = g.data();
    ParallelFor(0, g.numel(), 1 << 13, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) pg[i] += ps[i];
    });
  }
}

void Variable::ClearTapeGradients() {
  TRANAD_CHECK(defined());
  std::unordered_set<Node*> visited;
  std::vector<Node*> stack{node_.get()};
  visited.insert(node_.get());
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    n->grad = Tensor();
    n->has_grad = false;
    for (const auto& p : n->parents) {
      if (visited.insert(p.get()).second) stack.push_back(p.get());
    }
  }
}

Variable Variable::Detach() const {
  TRANAD_CHECK(defined());
  return Variable(node_->value, /*requires_grad=*/false);
}

Variable Variable::MakeNode(Tensor value, const std::vector<Variable>& parents,
                            BackwardFn backward) {
  bool any_grad = false;
  if (t_no_grad) {
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    return Variable(std::move(node));
  }
  for (const auto& p : parents) {
    if (p.defined() && p.requires_grad()) {
      any_grad = true;
      break;
    }
  }
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = any_grad;
  if (any_grad) {
    for (const auto& p : parents) {
      if (p.defined()) node->parents.push_back(p.node_);
    }
    node->backward = std::move(backward);
    g_tape_nodes.fetch_add(1, std::memory_order_relaxed);
  }
  return Variable(std::move(node));
}

void Variable::Backward() {
  TRANAD_CHECK(defined());
  TRANAD_CHECK_MSG(node_->value.numel() == 1,
                   "Backward() without seed requires a scalar loss; got "
                       << ShapeToString(node_->value.shape()));
  Backward(Tensor::Full(node_->value.shape(), 1.0f));
}

void Variable::Backward(const Tensor& seed) {
  TRANAD_CHECK(defined());
  TRANAD_CHECK(seed.shape() == node_->value.shape());
  if (!node_->requires_grad) return;

  // Iterative DFS post-order to get a topological order rooted at this node;
  // reversed, it guarantees each node's backward runs after all of its
  // consumers have contributed their gradient.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [n, child_idx] = stack.back();
    if (child_idx < n->parents.size()) {
      Node* next = n->parents[child_idx].get();
      ++child_idx;
      if (next->requires_grad && visited.insert(next).second) {
        stack.emplace_back(next, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }

  AccumulateGrad(seed);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (!n->backward) continue;  // leaf
    if (!n->has_grad) {
      // This node never received a gradient (e.g. sliced away); skip.
      continue;
    }
    n->backward(n->grad);
  }
}

}  // namespace tranad
