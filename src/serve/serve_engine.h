#ifndef TRANAD_SERVE_SERVE_ENGINE_H_
#define TRANAD_SERVE_SERVE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/online_detector.h"
#include "core/tranad_detector.h"
#include "serve/bounded_queue.h"
#include "serve/micro_batcher.h"
#include "serve/serve_stats.h"
#include "serve/stream_session.h"

namespace tranad::serve {

/// What Submit does when the submission queue is already full.
enum class ShedPolicy {
  /// Refuse the new submission with ResourceExhausted (default: the caller
  /// sees backpressure and retries).
  kRejectNewest,
  /// Admit the new submission and evict the oldest queued one, completing
  /// it with Unavailable. Freshest-data-wins — the right policy when stale
  /// observations lose value faster than new ones (live monitoring).
  kShedOldest,
};

struct ServeOptions {
  /// Worker threads running the batched two-phase forward pass.
  int64_t num_workers = 4;
  /// Submission-queue capacity; beyond this Submit applies `shed_policy`
  /// (backpressure instead of unbounded buffering).
  int64_t queue_capacity = 1024;
  /// Micro-batch coalescing policy: dispatch when `max_batch` observations
  /// are pending or `max_wait_us` has elapsed since the first, whichever
  /// comes first. max_wait_us = 0 still drains everything already queued.
  int64_t max_batch = 32;
  int64_t max_wait_us = 200;
  /// Streaming-POT parameters applied to every created stream.
  PotParams pot;

  // ---- Resilience knobs (all disabled by default: with every knob off and
  // no failpoint armed, the engine's verdict stream is bit-for-bit the
  // sequential OnlineTranAD path). ----

  /// Per-submission deadline, microseconds from admission; 0 disables.
  /// A submission still queued when its deadline passes completes with
  /// DeadlineExceeded instead of occupying a worker; it never touches the
  /// stream's ring or POT state.
  int64_t deadline_us = 0;
  ShedPolicy shed_policy = ShedPolicy::kRejectNewest;
  /// Quarantine a stream after this many consecutive non-finite (NaN/Inf)
  /// observations; further Submits on it fail fast with FailedPrecondition
  /// until ReleaseQuarantine. 0 disables quarantine — but a non-finite
  /// observation is always rejected with InvalidArgument at admission, so a
  /// poisoned producer can never corrupt its own (or any sibling's) ring,
  /// scores or POT tail.
  int64_t quarantine_after = 0;
  /// Stalled-pipeline watchdog, microseconds; 0 disables. If no pipeline
  /// progress happens for this long while submissions are pending, the
  /// watchdog fails everything still in the submission queue with Internal
  /// (and a diagnostic) so Flush()/Stop() cannot hang on a wedged batcher
  /// or worker; work already inside the pipeline completes whenever its
  /// stage finishes.
  int64_t watchdog_timeout_us = 0;
};

/// Concurrent multi-stream serving engine: many independent time series
/// scored online through one shared, frozen TranADDetector (Alg. 2 at
/// serving scale). The pipeline is
///
///   Submit --admission--> [bounded queue] --batcher thread--> ring update +
///   window assembly --> [work queue] --worker pool--> batched NoGrad
///   two-phase forward --> ordered completion (POT update + callback)
///
/// Correctness invariants:
///   - Per-stream FIFO: admissions are sequenced, the single batcher thread
///     updates each stream's ring in admission order, and completions are
///     applied in batch order, so every stream sees its POT updates in
///     exactly submission order.
///   - Batching transparency: scoring is row-independent and windows are
///     functions of the ring alone, so verdicts are bit-for-bit identical
///     to a sequential OnlineTranAD run regardless of batch boundaries,
///     worker count, or timing.
///   - The detector is frozen at construction; workers only use its const
///     scoring surface, so no worker ever touches trainer/autograd state.
///   - Hot reload: ReloadModel() swaps in a checkpointed detector at a
///     micro-batch boundary — batch formation pauses, in-flight batches
///     drain, the frozen model pointer flips — without dropping a single
///     queued submission, so the concurrent==sequential guarantee holds on
///     both sides of the swap (each batch scores wholly under one model).
class ServeEngine {
 public:
  /// `detector` must be fitted and must outlive the engine. The engine
  /// freezes it for inference; do not call Fit()/Score() on it while this
  /// engine is alive. Several engines (the ShardRouter's shards) may share
  /// one frozen detector: FreezeForInference is idempotent and every
  /// engine-side access goes through the const, thread-safe scoring
  /// surface.
  explicit ServeEngine(TranADDetector* detector, ServeOptions options = {});

  /// Calls Stop().
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Graceful shutdown: stops admission (later Submits fail with
  /// FailedPrecondition), drains every already-admitted request (its
  /// callback fires with a definite status), then joins all pipeline
  /// threads. Idempotent and safe to call concurrently with traffic or an
  /// in-flight ReloadModel — a reload that loses the race completes (or
  /// rolls back) first, then Stop proceeds; neither deadlocks. Do not call
  /// from inside a verdict callback.
  void Stop();

  /// Failover shutdown: like Stop(), but requests still waiting in the
  /// submission queue complete immediately with `reason` (Unavailable from
  /// the router) instead of being scored. Queued requests have touched no
  /// ring or POT state, so failing them is state-safe; anything the batcher
  /// already picked up scores normally before the threads join. Every
  /// admitted observation still completes exactly once. Idempotent, and a
  /// no-op after Stop(). Do not call from inside a verdict callback.
  void Kill(const Status& reason);

  /// Snapshots one stream's full session state (ring rows + POT + sequence
  /// + quarantine) for migration to another engine. The engine must be
  /// quiesced — Kill()ed or Stop()ped — so no pipeline thread is touching
  /// the session; NotFound for unknown streams.
  Result<StreamSessionState> ExportStream(StreamId id) const;

  /// Registers a stream rehydrated from another engine's ExportStream
  /// (no calibration pass — the imported POT and ring ARE the calibrated
  /// state). InvalidArgument when the exported geometry does not match this
  /// engine's model; FailedPrecondition once stopped.
  Result<StreamId> ImportStream(const StreamSessionState& state);

  /// Registers a new stream: calibrates its POT threshold from the series'
  /// scores and seeds its window ring with the series tail (exactly
  /// OnlineTranAD::Calibrate). Safe to call while traffic is flowing.
  Result<StreamId> CreateStream(const TimeSeries& calibration);

  /// Unregisters a stream. Already-admitted observations still complete
  /// (their callbacks fire); later Submits return NotFound.
  Status CloseStream(StreamId id);

  /// Admits one observation x_t in R^m for `stream`. Returns NotFound for
  /// an unknown stream, InvalidArgument on a dimension mismatch or a
  /// non-finite observation, FailedPrecondition for a quarantined stream
  /// (or a stopped engine), and ResourceExhausted when the submission queue
  /// is full under the default shed policy (shed load and retry later;
  /// under ShedPolicy::kShedOldest the new submission is admitted and the
  /// oldest queued one completes with Unavailable). On Ok, `callback` will
  /// be invoked exactly once with a definite status — Ok with a scored
  /// verdict, or the failure that prevented scoring.
  Status Submit(StreamId stream, const Tensor& observation,
                VerdictCallback callback);

  /// Lifts a stream's quarantine and resets its non-finite streak. The
  /// stream's ring and POT state were never touched by the rejected
  /// observations, so scoring resumes exactly where it left off. NotFound
  /// for unknown streams; Ok (no-op) when not quarantined.
  Status ReleaseQuarantine(StreamId id);

  /// Blocks until every admitted observation has completed. Do not call
  /// from inside a verdict callback.
  void Flush();

  /// Hot-swaps the serving model from a TranADDetector::SaveCheckpoint
  /// file. The replacement must match the current model's geometry (dims
  /// and window); on any load/validation error — including a fault injected
  /// mid-swap (failpoint serve.reload.swap) — the previous frozen model is
  /// restored and the engine keeps serving it: a reload either fully
  /// succeeds or leaves the engine exactly as it was, never half-swapped.
  /// Queued submissions are preserved: the swap happens between
  /// micro-batches, after in-flight batches drain. Safe to call while
  /// traffic is flowing; concurrent calls serialize.
  Status ReloadModel(const std::string& path);

  ServeStatsSnapshot stats() const;
  int64_t num_streams() const;

 private:
  struct WindowBatch {
    std::vector<ServeRequest> requests;
    Tensor windows;  // [B, K, m], normalized
    int64_t ticket = 0;
    /// The model snapshot this batch was normalized against; scoring uses
    /// the same snapshot, so a reload mid-pipeline never splits a batch
    /// across two models.
    std::shared_ptr<const TranADDetector> detector;
  };

  void BatcherLoop();
  void WorkerLoop();
  void WatchdogLoop();
  /// Shared Stop/Kill shutdown; a non-null `kill_reason` fails the queued
  /// backlog with it instead of letting the batcher drain and score it.
  void StopWith(const Status* kill_reason);
  void DecrementPending(int64_t n);
  std::shared_ptr<const TranADDetector> CurrentDetector() const;
  /// Completes one admitted-but-unscored request: fires its callback with a
  /// verdict carrying `status` (no ring/POT touch) and releases its pending
  /// slot. Used by the deadline, shed, and watchdog paths.
  void FailRequest(ServeRequest* request, const Status& status);

  /// The serving model. Read via CurrentDetector() (pointer swap guarded by
  /// detector_mu_); replaced only by ReloadModel() after the pipeline
  /// drains. The initial detector is borrowed (no-op deleter); reloaded
  /// ones are owned.
  std::shared_ptr<const TranADDetector> detector_;
  mutable std::mutex detector_mu_;
  /// Model geometry, fixed for the engine's lifetime (reloads must match).
  int64_t dims_ = 0;
  int64_t window_ = 0;

  ServeOptions options_;
  ServeStats stats_;
  BoundedQueue<ServeRequest> submit_queue_;
  BoundedQueue<WindowBatch> work_queue_;
  MicroBatcher batcher_policy_;

  mutable std::mutex sessions_mu_;
  std::unordered_map<StreamId, std::shared_ptr<StreamSession>> sessions_;
  StreamId next_stream_id_ = 1;

  // Serializes {seq assignment, queue push} so per-stream sequence numbers
  // agree with queue order even under concurrent same-stream submitters.
  std::mutex admit_mu_;

  // Ordered completion: workers score batches in parallel but apply POT
  // updates and callbacks strictly in ticket (batch) order.
  std::mutex completion_mu_;
  std::condition_variable completion_cv_;
  int64_t next_completion_ticket_ = 0;

  // Admitted-but-not-completed count. Lock-free on the hot paths; the
  // mutex/cv pair only serializes against a blocked Flush().
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::atomic<int64_t> pending_{0};

  // Reload coordination. pipeline_mu_ serializes batch formation against
  // ReloadModel (held by the batcher only around the normalize/ring/assemble
  // section, never while blocked pushing to the work queue). in_flight_
  // counts batches formed but not yet fully completed; ReloadModel waits
  // for it to reach zero before flipping the detector pointer.
  std::mutex pipeline_mu_;
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  int64_t in_flight_batches_ = 0;

  // Serializes concurrent ReloadModel calls (each still swaps at a
  // micro-batch boundary under pipeline_mu_).
  std::mutex reload_mu_;

  // Shutdown coordination. stop_requested_ flips before the submit queue
  // closes so racing Submits/Reloads fail fast; stop_mu_ serializes the
  // join sequence so Stop() is idempotent and concurrently callable.
  std::atomic<bool> stop_requested_{false};
  std::mutex stop_mu_;
  bool stopped_ = false;

  // Watchdog: progress_ ticks whenever the pipeline moves (batch formed,
  // batch completed, request failed). If it sits still for
  // watchdog_timeout_us while pending_ > 0, the watchdog drains the
  // submission queue and fails those requests with a diagnostic.
  std::atomic<int64_t> progress_{0};
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  std::thread batcher_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace tranad::serve

#endif  // TRANAD_SERVE_SERVE_ENGINE_H_
