#include "nn/conv.h"

#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad::nn {

Conv1d::Conv1d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               bool same_padding, Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      same_padding_(same_padding) {
  TRANAD_CHECK_GT(kernel, 0);
  proj_ = std::make_unique<Linear>(in_channels * kernel, out_channels, rng);
  RegisterModule("proj", proj_.get());
}

Variable Conv1d::Forward(const Variable& x) const {
  TRANAD_CHECK_EQ(x.value().ndim(), 3);
  TRANAD_CHECK_EQ(x.value().size(2), in_channels_);
  const int64_t b = x.value().size(0);
  const int64_t t = x.value().size(1);

  Variable input = x;
  int64_t t_in = t;
  if (same_padding_) {
    // Zero-pad (kernel-1) split left/right of the time axis.
    const int64_t left = (kernel_ - 1) / 2;
    const int64_t right = kernel_ - 1 - left;
    std::vector<Variable> parts;
    if (left > 0) {
      parts.emplace_back(Tensor::Zeros({b, left, in_channels_}));
    }
    parts.push_back(x);
    if (right > 0) {
      parts.emplace_back(Tensor::Zeros({b, right, in_channels_}));
    }
    input = parts.size() == 1 ? parts.front() : ag::Concat(parts, 1);
    t_in = t + kernel_ - 1;
  }
  const int64_t t_out = t_in - kernel_ + 1;
  TRANAD_CHECK_GT(t_out, 0);

  // Unfold: for each kernel offset take the shifted slice and concatenate
  // along channels -> [B, t_out, C_in * kernel].
  std::vector<Variable> taps;
  taps.reserve(static_cast<size_t>(kernel_));
  for (int64_t k = 0; k < kernel_; ++k) {
    taps.push_back(ag::SliceAxis(input, 1, k, t_out));
  }
  Variable unfolded = kernel_ == 1 ? taps.front() : ag::Concat(taps, 2);
  return proj_->Forward(unfolded);  // [B, t_out, C_out]
}

}  // namespace tranad::nn
