#include "nn/init.h"

#include <cmath>

namespace tranad::nn {

Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Rand({fan_in, fan_out}, rng, -bound, bound);
}

Tensor KaimingNormal(int64_t fan_in, int64_t fan_out, Rng* rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::Randn({fan_in, fan_out}, rng, stddev);
}

Tensor RnnUniform(Shape shape, int64_t fan_in, Rng* rng) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
  return Tensor::Rand(std::move(shape), rng, -bound, bound);
}

}  // namespace tranad::nn
