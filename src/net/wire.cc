#include "net/wire.h"

#include <cstring>

#include "common/check.h"
#include "io/checkpoint.h"  // io::Crc32 — same polynomial as checkpoints

namespace tranad::net {
namespace {

void PutLe32(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t GetLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

bool IsKnownFrameType(uint8_t value) {
  return value >= static_cast<uint8_t>(FrameType::kPing) &&
         value <= static_cast<uint8_t>(FrameType::kDrain);
}

void AppendFrame(FrameType type, const uint8_t* payload, size_t payload_len,
                 std::vector<uint8_t>* out) {
  TRANAD_CHECK(payload != nullptr || payload_len == 0);
  const size_t start = out->size();
  out->resize(start + kFrameHeaderBytes + payload_len + kFrameTrailerBytes);
  uint8_t* p = out->data() + start;
  PutLe32(kWireMagic, p);
  p[4] = kWireVersion;
  p[5] = static_cast<uint8_t>(type);
  p[6] = 0;
  p[7] = 0;
  PutLe32(static_cast<uint32_t>(payload_len), p + 8);
  if (payload_len > 0) {
    std::memcpy(p + kFrameHeaderBytes, payload, payload_len);
  }
  const uint32_t crc =
      io::Crc32(p + 4, kFrameHeaderBytes - 4 + payload_len);
  PutLe32(crc, p + kFrameHeaderBytes + payload_len);
}

FrameReader::FrameReader(size_t max_payload) : max_payload_(max_payload) {
  // Room for one maximal frame plus a partial successor's header, so the
  // caller can always make progress with alternating Feed/Next.
  buf_.resize(2 * kFrameOverheadBytes + max_payload_);
}

Status FrameReader::Feed(const void* data, size_t n) {
  if (!poisoned_.ok()) return poisoned_;
  if (n == 0) return Status::Ok();
  if (n > writable()) {
    return Status::Internal("FrameReader::Feed overflow: fed " +
                            std::to_string(n) + " bytes with only " +
                            std::to_string(writable()) + " writable");
  }
  // Compact (shift the unparsed suffix to the front) only when the tail
  // can't hold the new bytes; no allocation either way.
  if (buf_.size() - end_ < n) {
    std::memmove(buf_.data(), buf_.data() + begin_, end_ - begin_);
    end_ -= begin_;
    begin_ = 0;
  }
  std::memcpy(buf_.data() + end_, data, n);
  end_ += n;
  return Status::Ok();
}

Status FrameReader::Poison(const std::string& detail) {
  poisoned_ = Status::InvalidArgument("wire protocol violation: " + detail);
  return poisoned_;
}

Status FrameReader::Next(FrameView* out, bool* got) {
  *got = false;
  if (!poisoned_.ok()) return poisoned_;
  const size_t avail = end_ - begin_;
  if (avail < kFrameHeaderBytes) return Status::Ok();
  const uint8_t* p = buf_.data() + begin_;
  if (GetLe32(p) != kWireMagic) {
    return Poison("bad magic 0x" + std::to_string(GetLe32(p)));
  }
  if (p[4] != kWireVersion) {
    return Poison("unsupported protocol version " + std::to_string(p[4]) +
                  " (expected " + std::to_string(kWireVersion) + ")");
  }
  if (!IsKnownFrameType(p[5])) {
    return Poison("unknown frame type " + std::to_string(p[5]));
  }
  if (p[6] != 0 || p[7] != 0) {
    return Poison("nonzero reserved header bits");
  }
  const uint32_t payload_len = GetLe32(p + 8);
  if (payload_len > max_payload_) {
    return Poison("frame payload of " + std::to_string(payload_len) +
                  " bytes exceeds the " + std::to_string(max_payload_) +
                  "-byte limit");
  }
  const size_t total = kFrameOverheadBytes + payload_len;
  if (avail < total) return Status::Ok();  // wait for the rest
  const uint32_t crc_expected =
      GetLe32(p + kFrameHeaderBytes + payload_len);
  const uint32_t crc_actual =
      io::Crc32(p + 4, kFrameHeaderBytes - 4 + payload_len);
  if (crc_expected != crc_actual) {
    return Poison("frame CRC mismatch (torn or corrupted stream)");
  }
  out->type = static_cast<FrameType>(p[5]);
  out->payload = p + kFrameHeaderBytes;
  out->payload_len = payload_len;
  begin_ += total;
  if (begin_ == end_) {
    begin_ = 0;
    end_ = 0;
  }
  *got = true;
  return Status::Ok();
}

// ---- Payload cursor ----

Status PayloadReader::Take(size_t n, const uint8_t** p) {
  if (len_ - pos_ < n) {
    return Status::InvalidArgument(
        "payload truncated: wanted " + std::to_string(n) + " bytes, " +
        std::to_string(len_ - pos_) + " remain");
  }
  *p = data_ + pos_;
  pos_ += n;
  return Status::Ok();
}

Status PayloadReader::U8(uint8_t* v) {
  const uint8_t* p;
  TRANAD_RETURN_IF_ERROR(Take(1, &p));
  *v = p[0];
  return Status::Ok();
}

Status PayloadReader::U16(uint16_t* v) {
  const uint8_t* p;
  TRANAD_RETURN_IF_ERROR(Take(2, &p));
  *v = static_cast<uint16_t>(p[0] | (p[1] << 8));
  return Status::Ok();
}

Status PayloadReader::U32(uint32_t* v) {
  const uint8_t* p;
  TRANAD_RETURN_IF_ERROR(Take(4, &p));
  *v = GetLe32(p);
  return Status::Ok();
}

Status PayloadReader::U64(uint64_t* v) {
  const uint8_t* p;
  TRANAD_RETURN_IF_ERROR(Take(8, &p));
  *v = static_cast<uint64_t>(GetLe32(p)) |
       (static_cast<uint64_t>(GetLe32(p + 4)) << 32);
  return Status::Ok();
}

Status PayloadReader::I64(int64_t* v) {
  uint64_t u;
  TRANAD_RETURN_IF_ERROR(U64(&u));
  std::memcpy(v, &u, sizeof(*v));
  return Status::Ok();
}

Status PayloadReader::F32(float* v) {
  uint32_t u;
  TRANAD_RETURN_IF_ERROR(U32(&u));
  std::memcpy(v, &u, sizeof(*v));
  return Status::Ok();
}

Status PayloadReader::F64(double* v) {
  uint64_t u;
  TRANAD_RETURN_IF_ERROR(U64(&u));
  std::memcpy(v, &u, sizeof(*v));
  return Status::Ok();
}

Status PayloadReader::String(std::string* v, size_t max_len) {
  uint32_t n;
  TRANAD_RETURN_IF_ERROR(U32(&n));
  if (n > max_len) {
    return Status::InvalidArgument("string of " + std::to_string(n) +
                                   " bytes exceeds the " +
                                   std::to_string(max_len) + "-byte limit");
  }
  const uint8_t* p;
  TRANAD_RETURN_IF_ERROR(Take(n, &p));
  v->assign(reinterpret_cast<const char*>(p), n);
  return Status::Ok();
}

Status PayloadReader::F32Array(std::vector<float>* v, size_t max_elems) {
  uint32_t n;
  TRANAD_RETURN_IF_ERROR(U32(&n));
  if (n > max_elems) {
    return Status::InvalidArgument("array of " + std::to_string(n) +
                                   " floats exceeds the " +
                                   std::to_string(max_elems) +
                                   "-element limit");
  }
  // Bounds first, then one bulk copy — a huge declared length with a tiny
  // actual payload fails before any allocation is sized from it.
  const uint8_t* p;
  TRANAD_RETURN_IF_ERROR(Take(static_cast<size_t>(n) * 4, &p));
  v->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t u = GetLe32(p + static_cast<size_t>(i) * 4);
    std::memcpy(&(*v)[i], &u, sizeof(float));
  }
  return Status::Ok();
}

Status PayloadReader::I64Array(std::vector<int64_t>* v, size_t max_elems) {
  uint32_t n;
  TRANAD_RETURN_IF_ERROR(U32(&n));
  if (n > max_elems) {
    return Status::InvalidArgument("array of " + std::to_string(n) +
                                   " int64s exceeds the " +
                                   std::to_string(max_elems) +
                                   "-element limit");
  }
  const uint8_t* p;
  TRANAD_RETURN_IF_ERROR(Take(static_cast<size_t>(n) * 8, &p));
  v->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t u = static_cast<uint64_t>(GetLe32(p + i * 8)) |
                 (static_cast<uint64_t>(GetLe32(p + i * 8 + 4)) << 32);
    std::memcpy(&(*v)[i], &u, sizeof(int64_t));
  }
  return Status::Ok();
}

Status PayloadReader::ExpectEnd() const {
  if (pos_ != len_) {
    return Status::InvalidArgument(std::to_string(len_ - pos_) +
                                   " trailing payload byte(s)");
  }
  return Status::Ok();
}

// ---- Payload builder ----

void PayloadWriter::U8(uint8_t v) { out_->push_back(v); }

void PayloadWriter::U16(uint16_t v) {
  out_->push_back(static_cast<uint8_t>(v));
  out_->push_back(static_cast<uint8_t>(v >> 8));
}

void PayloadWriter::U32(uint32_t v) {
  const size_t at = out_->size();
  out_->resize(at + 4);
  PutLe32(v, out_->data() + at);
}

void PayloadWriter::U64(uint64_t v) {
  U32(static_cast<uint32_t>(v));
  U32(static_cast<uint32_t>(v >> 32));
}

void PayloadWriter::I64(int64_t v) {
  uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  U64(u);
}

void PayloadWriter::F32(float v) {
  uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  U32(u);
}

void PayloadWriter::F64(double v) {
  uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  U64(u);
}

void PayloadWriter::String(const std::string& v) {
  U32(static_cast<uint32_t>(v.size()));
  out_->insert(out_->end(), v.begin(), v.end());
}

void PayloadWriter::F32Array(const float* v, size_t n) {
  U32(static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) F32(v[i]);
}

void PayloadWriter::I64Array(const int64_t* v, size_t n) {
  U32(static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) I64(v[i]);
}

uint8_t StatusCodeToWire(StatusCode code) {
  return static_cast<uint8_t>(code);
}

StatusCode StatusCodeFromWire(uint8_t value) {
  if (value > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return StatusCode::kInternal;
  }
  return static_cast<StatusCode>(value);
}

// ---- Typed messages ----

namespace {

void EncodeStatus(PayloadWriter* w, const Status& status) {
  w->U8(StatusCodeToWire(status.code()));
  w->String(status.message());
}

Status DecodeStatus(PayloadReader* r, Status* out) {
  uint8_t code;
  std::string message;
  TRANAD_RETURN_IF_ERROR(r->U8(&code));
  TRANAD_RETURN_IF_ERROR(r->String(&message));
  *out = Status(StatusCodeFromWire(code), std::move(message));
  return Status::Ok();
}

Status CheckType(const FrameView& frame, FrameType expected) {
  if (frame.type != expected) {
    return Status::InvalidArgument(
        "frame type " + std::to_string(static_cast<int>(frame.type)) +
        " where " + std::to_string(static_cast<int>(expected)) +
        " was expected");
  }
  return Status::Ok();
}

}  // namespace

void WirePing::EncodeTo(std::vector<uint8_t>* out, FrameType type) const {
  std::vector<uint8_t> payload;
  PayloadWriter w(&payload);
  w.U64(token);
  AppendFrame(type, payload.data(), payload.size(), out);
}

Status WirePing::Decode(const FrameView& frame, WirePing* out) {
  if (frame.type != FrameType::kPing && frame.type != FrameType::kPong) {
    return Status::InvalidArgument("not a ping/pong frame");
  }
  PayloadReader r(frame.payload, frame.payload_len);
  TRANAD_RETURN_IF_ERROR(r.U64(&out->token));
  return r.ExpectEnd();
}

void WireSubmit::EncodeTo(std::vector<uint8_t>* out) const {
  std::vector<uint8_t> payload;
  PayloadWriter w(&payload);
  w.U64(stream_key);
  w.U64(tag);
  w.U8(flags);
  w.F32Array(values.data(), values.size());
  AppendFrame(FrameType::kSubmit, payload.data(), payload.size(), out);
}

Status WireSubmit::Decode(const FrameView& frame, WireSubmit* out) {
  TRANAD_RETURN_IF_ERROR(CheckType(frame, FrameType::kSubmit));
  PayloadReader r(frame.payload, frame.payload_len);
  TRANAD_RETURN_IF_ERROR(r.U64(&out->stream_key));
  TRANAD_RETURN_IF_ERROR(r.U64(&out->tag));
  TRANAD_RETURN_IF_ERROR(r.U8(&out->flags));
  if ((out->flags & ~kSubmitFlagIdempotent) != 0) {
    return Status::InvalidArgument("unknown submit flag bits 0x" +
                                   std::to_string(out->flags));
  }
  TRANAD_RETURN_IF_ERROR(r.F32Array(&out->values, 1u << 20));
  return r.ExpectEnd();
}

void WireVerdict::EncodeTo(std::vector<uint8_t>* out) const {
  std::vector<uint8_t> payload;
  PayloadWriter w(&payload);
  w.U64(stream_key);
  w.U64(tag);
  w.I64(seq);
  EncodeStatus(&w, status);
  w.U8(anomalous ? 1 : 0);
  w.F64(score);
  w.F64(threshold);
  AppendFrame(FrameType::kVerdict, payload.data(), payload.size(), out);
}

Status WireVerdict::Decode(const FrameView& frame, WireVerdict* out) {
  TRANAD_RETURN_IF_ERROR(CheckType(frame, FrameType::kVerdict));
  PayloadReader r(frame.payload, frame.payload_len);
  TRANAD_RETURN_IF_ERROR(r.U64(&out->stream_key));
  TRANAD_RETURN_IF_ERROR(r.U64(&out->tag));
  TRANAD_RETURN_IF_ERROR(r.I64(&out->seq));
  TRANAD_RETURN_IF_ERROR(DecodeStatus(&r, &out->status));
  uint8_t anomalous;
  TRANAD_RETURN_IF_ERROR(r.U8(&anomalous));
  out->anomalous = anomalous != 0;
  TRANAD_RETURN_IF_ERROR(r.F64(&out->score));
  TRANAD_RETURN_IF_ERROR(r.F64(&out->threshold));
  return r.ExpectEnd();
}

void WireCreateStream::EncodeTo(std::vector<uint8_t>* out) const {
  std::vector<uint8_t> payload;
  PayloadWriter w(&payload);
  w.U64(stream_key);
  w.U32(static_cast<uint32_t>(rows));
  w.U32(static_cast<uint32_t>(dims));
  w.F32Array(values.data(), values.size());
  AppendFrame(FrameType::kCreateStream, payload.data(), payload.size(), out);
}

Status WireCreateStream::Decode(const FrameView& frame,
                                WireCreateStream* out) {
  TRANAD_RETURN_IF_ERROR(CheckType(frame, FrameType::kCreateStream));
  PayloadReader r(frame.payload, frame.payload_len);
  TRANAD_RETURN_IF_ERROR(r.U64(&out->stream_key));
  uint32_t rows, dims;
  TRANAD_RETURN_IF_ERROR(r.U32(&rows));
  TRANAD_RETURN_IF_ERROR(r.U32(&dims));
  out->rows = rows;
  out->dims = dims;
  TRANAD_RETURN_IF_ERROR(r.F32Array(&out->values, 1u << 22));
  if (out->values.size() !=
      static_cast<size_t>(out->rows) * static_cast<size_t>(out->dims)) {
    return Status::InvalidArgument(
        "calibration payload holds " + std::to_string(out->values.size()) +
        " floats for a declared " + std::to_string(out->rows) + "x" +
        std::to_string(out->dims) + " series");
  }
  return r.ExpectEnd();
}

void WireAck::EncodeTo(std::vector<uint8_t>* out, FrameType type) const {
  std::vector<uint8_t> payload;
  PayloadWriter w(&payload);
  w.U64(stream_key);
  EncodeStatus(&w, status);
  AppendFrame(type, payload.data(), payload.size(), out);
}

Status WireAck::Decode(const FrameView& frame, WireAck* out) {
  if (frame.type != FrameType::kCreateStreamAck &&
      frame.type != FrameType::kCloseStreamAck &&
      frame.type != FrameType::kReloadAck && frame.type != FrameType::kError) {
    return Status::InvalidArgument("not an acknowledgement frame");
  }
  PayloadReader r(frame.payload, frame.payload_len);
  TRANAD_RETURN_IF_ERROR(r.U64(&out->stream_key));
  TRANAD_RETURN_IF_ERROR(DecodeStatus(&r, &out->status));
  return r.ExpectEnd();
}

void WireCloseStream::EncodeTo(std::vector<uint8_t>* out) const {
  std::vector<uint8_t> payload;
  PayloadWriter w(&payload);
  w.U64(stream_key);
  AppendFrame(FrameType::kCloseStream, payload.data(), payload.size(), out);
}

Status WireCloseStream::Decode(const FrameView& frame, WireCloseStream* out) {
  TRANAD_RETURN_IF_ERROR(CheckType(frame, FrameType::kCloseStream));
  PayloadReader r(frame.payload, frame.payload_len);
  TRANAD_RETURN_IF_ERROR(r.U64(&out->stream_key));
  return r.ExpectEnd();
}

void WireStatsRequest::EncodeTo(std::vector<uint8_t>* out) const {
  AppendFrame(FrameType::kStats, nullptr, 0, out);
}

Status WireStatsRequest::Decode(const FrameView& frame,
                                WireStatsRequest* /*out*/) {
  TRANAD_RETURN_IF_ERROR(CheckType(frame, FrameType::kStats));
  PayloadReader r(frame.payload, frame.payload_len);
  return r.ExpectEnd();
}

void WireStatsReply::EncodeTo(std::vector<uint8_t>* out) const {
  const serve::ServeStatsSnapshot& s = snapshot;
  std::vector<uint8_t> payload;
  PayloadWriter w(&payload);
  w.I64(s.submitted);
  w.I64(s.rejected);
  w.I64(s.completed);
  w.I64(s.anomalies);
  w.I64(s.failed);
  w.I64(s.deadline_expired);
  w.I64(s.shed);
  w.I64(s.non_finite_rejected);
  w.I64(s.quarantined_streams);
  w.I64(s.watchdog_stalls);
  w.I64(s.reloads);
  w.I64(s.reload_failures);
  w.I64(s.shards_failed);
  w.I64(s.streams_migrated);
  w.I64(s.reconnects);
  w.I64(s.retries_deduped);
  w.I64(s.batches);
  w.I64(s.batched_observations);
  w.I64(s.queue_depth);
  w.I64(s.shards);
  w.F64(s.mean_batch_size);
  w.F64(s.p50_latency_ms);
  w.F64(s.p99_latency_ms);
  w.F64(s.max_latency_ms);
  w.F64(s.elapsed_seconds);
  w.F64(s.throughput_per_sec);
  w.I64Array(s.latency_hist.data(), s.latency_hist.size());
  w.I64Array(s.batch_size_hist.data(), s.batch_size_hist.size());
  AppendFrame(FrameType::kStatsReply, payload.data(), payload.size(), out);
}

Status WireStatsReply::Decode(const FrameView& frame, WireStatsReply* out) {
  TRANAD_RETURN_IF_ERROR(CheckType(frame, FrameType::kStatsReply));
  PayloadReader r(frame.payload, frame.payload_len);
  serve::ServeStatsSnapshot& s = out->snapshot;
  TRANAD_RETURN_IF_ERROR(r.I64(&s.submitted));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.rejected));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.completed));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.anomalies));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.failed));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.deadline_expired));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.shed));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.non_finite_rejected));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.quarantined_streams));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.watchdog_stalls));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.reloads));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.reload_failures));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.shards_failed));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.streams_migrated));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.reconnects));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.retries_deduped));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.batches));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.batched_observations));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.queue_depth));
  TRANAD_RETURN_IF_ERROR(r.I64(&s.shards));
  TRANAD_RETURN_IF_ERROR(r.F64(&s.mean_batch_size));
  TRANAD_RETURN_IF_ERROR(r.F64(&s.p50_latency_ms));
  TRANAD_RETURN_IF_ERROR(r.F64(&s.p99_latency_ms));
  TRANAD_RETURN_IF_ERROR(r.F64(&s.max_latency_ms));
  TRANAD_RETURN_IF_ERROR(r.F64(&s.elapsed_seconds));
  TRANAD_RETURN_IF_ERROR(r.F64(&s.throughput_per_sec));
  TRANAD_RETURN_IF_ERROR(r.I64Array(&s.latency_hist, 1u << 12));
  TRANAD_RETURN_IF_ERROR(r.I64Array(&s.batch_size_hist, 1u << 16));
  return r.ExpectEnd();
}

void WireReload::EncodeTo(std::vector<uint8_t>* out) const {
  std::vector<uint8_t> payload;
  PayloadWriter w(&payload);
  w.String(path);
  AppendFrame(FrameType::kReload, payload.data(), payload.size(), out);
}

Status WireReload::Decode(const FrameView& frame, WireReload* out) {
  TRANAD_RETURN_IF_ERROR(CheckType(frame, FrameType::kReload));
  PayloadReader r(frame.payload, frame.payload_len);
  TRANAD_RETURN_IF_ERROR(r.String(&out->path, 4096));
  return r.ExpectEnd();
}

void WireDrain::EncodeTo(std::vector<uint8_t>* out) const {
  std::vector<uint8_t> payload;
  PayloadWriter w(&payload);
  w.String(reason);
  AppendFrame(FrameType::kDrain, payload.data(), payload.size(), out);
}

Status WireDrain::Decode(const FrameView& frame, WireDrain* out) {
  TRANAD_RETURN_IF_ERROR(CheckType(frame, FrameType::kDrain));
  PayloadReader r(frame.payload, frame.payload_len);
  TRANAD_RETURN_IF_ERROR(r.String(&out->reason, 4096));
  return r.ExpectEnd();
}

}  // namespace tranad::net
