file(REMOVE_RECURSE
  "libtranad_net.a"
)
