// Checkpoint container + crash-safe persistence: byte-level format checks,
// corruption handling, and the end-to-end guarantee that interrupting and
// resuming training reproduces an uninterrupted run bit for bit.
#include "io/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "core/tranad_detector.h"
#include "core/tranad_trainer.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace tranad {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<char> ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

io::CheckpointWriter SampleWriter() {
  io::CheckpointWriter writer;
  Tensor t({2, 3});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = 0.5f * static_cast<float>(i);
  writer.PutTensor("weights/w", t);
  writer.PutF64Array("curve", {1.5, -2.25, 0.0});
  writer.PutI64Array("counters", {7, -3});
  writer.PutString("meta/kind", "unit-test");
  writer.PutScalar("pi-ish", 3.25);
  writer.PutInt("answer", 42);
  return writer;
}

TEST(CheckpointTest, RoundTripAllEntryTypes) {
  const std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(SampleWriter().WriteAtomic(path).ok());

  auto reader = io::CheckpointReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->version(), io::kCheckpointVersion);
  EXPECT_EQ(reader->entries().size(), 6u);
  EXPECT_TRUE(reader->Has("weights/w"));
  EXPECT_FALSE(reader->Has("missing"));

  auto t = reader->GetTensor("weights/w");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->ndim(), 2);
  EXPECT_EQ(t->size(0), 2);
  EXPECT_EQ(t->size(1), 3);
  for (int64_t i = 0; i < t->numel(); ++i) {
    EXPECT_EQ((*t)[i], 0.5f * static_cast<float>(i));
  }

  auto curve = reader->GetF64Array("curve");
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(*curve, (std::vector<double>{1.5, -2.25, 0.0}));
  auto counters = reader->GetI64Array("counters");
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(*counters, (std::vector<int64_t>{7, -3}));
  auto kind = reader->GetString("meta/kind");
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, "unit-test");
  auto scalar = reader->GetScalar("pi-ish");
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(*scalar, 3.25);
  auto answer = reader->GetInt("answer");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(*answer, 42);
}

TEST(CheckpointTest, AccessorsReportMissingAndMismatchedEntries) {
  const std::string path = TempPath("accessors.ckpt");
  ASSERT_TRUE(SampleWriter().WriteAtomic(path).ok());
  auto reader = io::CheckpointReader::Open(path);
  ASSERT_TRUE(reader.ok());

  EXPECT_EQ(reader->GetTensor("nope").status().code(), StatusCode::kNotFound);
  // "curve" is an f64 array, not a tensor.
  EXPECT_EQ(reader->GetTensor("curve").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reader->GetString("counters").status().code(),
            StatusCode::kInvalidArgument);
  // GetScalar on a multi-element array must refuse.
  EXPECT_FALSE(reader->GetScalar("curve").ok());
}

TEST(CheckpointTest, NoTmpFileLeftBehind) {
  const std::string path = TempPath("clean.ckpt");
  ASSERT_TRUE(SampleWriter().WriteAtomic(path).ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST(CheckpointTest, WriteToUnwritablePathIsIoError) {
  const std::string path =
      TempPath("no_such_dir") + "/nested/out.ckpt";
  const Status st = SampleWriter().WriteAtomic(path);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST(CheckpointTest, TruncatedFileFailsCleanly) {
  const std::string path = TempPath("trunc.ckpt");
  ASSERT_TRUE(SampleWriter().WriteAtomic(path).ok());
  const std::vector<char> bytes = ReadBytes(path);
  ASSERT_GT(bytes.size(), 40u);

  // Torn at every interesting boundary: mid-header, mid-payload, inside the
  // trailing CRC. All must fail with a Status, never crash or misparse.
  for (const size_t keep :
       {size_t{0}, size_t{7}, size_t{31}, size_t{40}, bytes.size() - 2}) {
    const std::string torn = TempPath("torn.ckpt");
    WriteBytes(torn, std::vector<char>(bytes.begin(),
                                       bytes.begin() + static_cast<long>(keep)));
    auto reader = io::CheckpointReader::Open(torn);
    EXPECT_FALSE(reader.ok()) << "kept " << keep << " bytes";
  }
}

TEST(CheckpointTest, BitFlipFailsCrc) {
  const std::string path = TempPath("flip.ckpt");
  ASSERT_TRUE(SampleWriter().WriteAtomic(path).ok());
  std::vector<char> bytes = ReadBytes(path);
  bytes[bytes.size() / 2] ^= 0x20;  // one payload bit
  WriteBytes(path, bytes);
  auto reader = io::CheckpointReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  EXPECT_NE(reader.status().ToString().find("CRC"), std::string::npos)
      << reader.status().ToString();
}

TEST(CheckpointTest, ForeignFileRejected) {
  const std::string path = TempPath("foreign.bin");
  // Long enough to clear the structural size check so the magic check is
  // what rejects it.
  std::vector<char> junk(64, '!');
  junk[0] = 'n';
  junk[1] = 'o';
  junk[2] = 't';
  WriteBytes(path, junk);
  auto reader = io::CheckpointReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);

  auto missing = io::CheckpointReader::Open(TempPath("never_written.ckpt"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
}

TEST(CheckpointTest, Crc32MatchesKnownVector) {
  // The canonical IEEE CRC32 test vector ("123456789" -> 0xCBF43926) pins
  // the polynomial and reflection conventions of the on-disk format.
  EXPECT_EQ(io::Crc32("123456789", 9), 0xCBF43926u);
  // Chaining across a split must equal the one-shot CRC.
  const uint32_t head = io::Crc32("1234", 4);
  EXPECT_EQ(io::Crc32("56789", 5, head), 0xCBF43926u);
}

// ---------------------------------------------------------------------------
// Model/trainer state round trips.

TranADConfig SmallConfig() {
  TranADConfig c;
  c.dims = 8;
  c.window = 6;
  c.d_ff = 16;
  c.seed = 3;
  return c;
}

Tensor TrainingWindows(double scale = 0.05, int64_t k = 6) {
  Dataset ds = GenerateSynthetic(SmdConfig(scale));
  MinMaxNormalizer norm;
  norm.Fit(ds.train.values);
  return MakeWindows(norm.Transform(ds.train.values), k);
}

TrainOptions FastOptions() {
  TrainOptions o;
  o.max_epochs = 4;
  o.batch_size = 64;
  o.early_stop_patience = 10;
  return o;
}

TEST(CheckpointTest, ArchitectureMismatchLeavesModelUntouched) {
  const std::string path = TempPath("arch.ckpt");
  TranADModel small(SmallConfig());
  ASSERT_TRUE(small.Save(path).ok());

  TranADConfig wide = SmallConfig();
  wide.d_ff = 32;
  TranADModel other(wide);
  const std::vector<Tensor> before = other.SnapshotParameters();
  EXPECT_FALSE(other.Load(path).ok());
  const std::vector<Tensor> after = other.SnapshotParameters();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(before[i].Equals(after[i])) << "param " << i;
  }
}

// The tentpole guarantee: training interrupted at an epoch boundary and
// resumed from the checkpoint must finish with exactly the weights of an
// uninterrupted run — at 1 worker thread and at 4.
TEST(CheckpointTest, ResumedTrainingIsBitwiseIdenticalToUninterrupted) {
  const Tensor windows = TrainingWindows();
  const int64_t saved_threads = NumComputeThreads();
  for (const int64_t threads : {int64_t{1}, int64_t{4}}) {
    SetNumComputeThreads(threads);

    TranADModel uninterrupted(SmallConfig());
    TrainTranAD(&uninterrupted, windows, FastOptions());

    const std::string ckpt =
        TempPath("resume" + std::to_string(threads) + ".ckpt");
    std::remove(ckpt.c_str());
    TrainOptions phase1 = FastOptions();
    phase1.max_epochs = 2;
    phase1.checkpoint_path = ckpt;
    phase1.checkpoint_every = 1;
    TranADModel first(SmallConfig());
    TrainTranAD(&first, windows, phase1);
    ASSERT_TRUE(FileExists(ckpt));

    // A fresh process: new model object, same options, full epoch budget.
    TrainOptions phase2 = FastOptions();
    phase2.checkpoint_path = ckpt;
    phase2.checkpoint_every = 1;
    TranADModel resumed(SmallConfig());
    const TrainStats stats = TrainTranAD(&resumed, windows, phase2);
    EXPECT_EQ(stats.epochs_run, 4);
    EXPECT_EQ(stats.train_losses.size(), 4u);

    const auto a = uninterrupted.SnapshotParameters();
    const auto b = resumed.SnapshotParameters();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(a[i].Equals(b[i]))
          << "param " << i << " differs after resume at " << threads
          << " threads";
    }
  }
  SetNumComputeThreads(saved_threads);
}

TEST(CheckpointTest, ResumingCompletedRunIsANoOp) {
  const Tensor windows = TrainingWindows();
  const std::string ckpt = TempPath("noop.ckpt");
  std::remove(ckpt.c_str());
  TrainOptions opts = FastOptions();
  opts.max_epochs = 2;
  opts.checkpoint_path = ckpt;
  opts.checkpoint_every = 1;
  TranADModel first(SmallConfig());
  TrainTranAD(&first, windows, opts);

  TranADModel again(SmallConfig());
  const TrainStats stats = TrainTranAD(&again, windows, opts);
  EXPECT_EQ(stats.epochs_run, 2);
  const auto a = first.SnapshotParameters();
  const auto b = again.SnapshotParameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].Equals(b[i])) << "param " << i;
  }
}

TEST(CheckpointTest, CorruptCheckpointFallsBackToFreshTraining) {
  const Tensor windows = TrainingWindows();
  const std::string ckpt = TempPath("corrupt_resume.ckpt");
  WriteBytes(ckpt, std::vector<char>(64, 'x'));

  TrainOptions opts = FastOptions();
  opts.max_epochs = 2;
  opts.checkpoint_path = ckpt;
  opts.checkpoint_every = 1;
  TranADModel model(SmallConfig());
  const TrainStats stats = TrainTranAD(&model, windows, opts);
  EXPECT_EQ(stats.epochs_run, 2);  // trained from scratch, did not die

  TranADModel reference(SmallConfig());
  TrainOptions plain = FastOptions();
  plain.max_epochs = 2;
  TrainTranAD(&reference, windows, plain);
  const auto a = model.SnapshotParameters();
  const auto b = reference.SnapshotParameters();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].Equals(b[i])) << "param " << i;
  }
}

// ---------------------------------------------------------------------------
// Detector-level checkpoints.

TEST(CheckpointTest, DetectorRestoresInEvalModeAndScoresBitIdentically) {
  Dataset ds = GenerateSynthetic(SmdConfig(0.05));
  TranADConfig config = SmallConfig();
  TrainOptions train = FastOptions();
  train.max_epochs = 2;
  TranADDetector detector(config, train);
  detector.Fit(ds.train);
  detector.FreezeForInference();
  const Tensor expected = detector.ScoreSeries(ds.test);

  const std::string path = TempPath("detector.ckpt");
  ASSERT_TRUE(detector.SaveCheckpoint(path).ok());
  auto restored = TranADDetector::FromCheckpoint(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  // Regression: a freshly constructed Module tree defaults to training mode
  // (dropout live); the restored detector must come back in eval mode so
  // its scores can never be perturbed by dropout.
  EXPECT_FALSE((*restored)->model()->training());
  EXPECT_EQ((*restored)->name(), detector.name());

  const Tensor got = (*restored)->ScoreSeries(ds.test);
  EXPECT_TRUE(got.Equals(expected))
      << "restored detector scores differ from the live frozen detector";
}

TEST(CheckpointTest, UnfittedDetectorRefusesToCheckpoint) {
  TranADDetector detector(SmallConfig(), FastOptions());
  EXPECT_EQ(detector.SaveCheckpoint(TempPath("unfitted.ckpt")).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, TruncatedDetectorCheckpointLoadsCleanly) {
  Dataset ds = GenerateSynthetic(SmdConfig(0.05));
  TrainOptions train = FastOptions();
  train.max_epochs = 1;
  TranADDetector detector(SmallConfig(), train);
  detector.Fit(ds.train);
  const std::string path = TempPath("torn_detector.ckpt");
  ASSERT_TRUE(detector.SaveCheckpoint(path).ok());

  const std::vector<char> bytes = ReadBytes(path);
  WriteBytes(path, std::vector<char>(bytes.begin(),
                                     bytes.begin() +
                                         static_cast<long>(bytes.size() / 2)));
  auto restored = TranADDetector::FromCheckpoint(path);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kIoError);

  // A non-detector checkpoint is rejected with a clear message.
  const std::string other = TempPath("other_kind.ckpt");
  ASSERT_TRUE(SampleWriter().WriteAtomic(other).ok());
  EXPECT_FALSE(TranADDetector::FromCheckpoint(other).ok());
}

// ---------------------------------------------------------------------------
// Injected-fault crash safety: every failure mode of the durable-write
// protocol must leave the previous checkpoint readable and report a clean
// Status — never a CHECK-crash, never a half-valid file at the final path.

io::CheckpointWriter VersionedWriter(int64_t version) {
  io::CheckpointWriter writer;
  writer.PutInt("version", version);
  writer.PutString("meta/kind", "fault-test");
  return writer;
}

int64_t ReadVersion(const std::string& path) {
  auto reader = io::CheckpointReader::Open(path);
  if (!reader.ok()) return -1;
  auto v = reader->GetInt("version");
  return v.ok() ? *v : -1;
}

TEST(CheckpointFaultTest, InjectedOpenFailureLeavesPreviousIntact) {
  const std::string path = TempPath("fault_open.ckpt");
  ASSERT_TRUE(VersionedWriter(1).WriteAtomic(path).ok());

  failpoint::ScopedFailpoint fault("io.checkpoint.open",
                                   failpoint::Action::Error());
  const Status st = VersionedWriter(2).WriteAtomic(path);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("injected failure"), std::string::npos);
  EXPECT_EQ(ReadVersion(path), 1);
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST(CheckpointFaultTest, InjectedFsyncFailureLeavesPreviousIntact) {
  const std::string path = TempPath("fault_fsync.ckpt");
  ASSERT_TRUE(VersionedWriter(1).WriteAtomic(path).ok());

  {
    failpoint::ScopedFailpoint fault("io.checkpoint.fsync",
                                     failpoint::Action::Error());
    const Status st = VersionedWriter(2).WriteAtomic(path);
    EXPECT_EQ(st.code(), StatusCode::kIoError);
    EXPECT_EQ(ReadVersion(path), 1);
    EXPECT_FALSE(FileExists(path + ".tmp"));
  }
  // Disarmed: the very next write succeeds and replaces the checkpoint.
  ASSERT_TRUE(VersionedWriter(3).WriteAtomic(path).ok());
  EXPECT_EQ(ReadVersion(path), 3);
}

TEST(CheckpointFaultTest, InjectedRenameFailureLeavesPreviousIntact) {
  const std::string path = TempPath("fault_rename.ckpt");
  ASSERT_TRUE(VersionedWriter(1).WriteAtomic(path).ok());

  {
    failpoint::ScopedFailpoint fault("io.checkpoint.rename",
                                     failpoint::Action::Error());
    const Status st = VersionedWriter(2).WriteAtomic(path);
    EXPECT_EQ(st.code(), StatusCode::kIoError);
    EXPECT_NE(st.message().find("rename"), std::string::npos);
    EXPECT_EQ(ReadVersion(path), 1);
    // The durably-written tmp is cleaned up when the rename step fails.
    EXPECT_FALSE(FileExists(path + ".tmp"));
  }
  ASSERT_TRUE(VersionedWriter(2).WriteAtomic(path).ok());
  EXPECT_EQ(ReadVersion(path), 2);
}

TEST(CheckpointFaultTest, TornWriteLeavesTornTmpAndPreviousIntact) {
  const std::string path = TempPath("fault_torn.ckpt");
  ASSERT_TRUE(VersionedWriter(1).WriteAtomic(path).ok());

  {
    // Power-cut simulation: 16 bytes of the new checkpoint reach the disk,
    // then the write stops and the tmp file is left behind — exactly the
    // on-disk state a crash mid-write produces.
    failpoint::ScopedFailpoint fault("io.checkpoint.write",
                                     failpoint::Action::Truncate(16));
    const Status st = VersionedWriter(2).WriteAtomic(path);
    EXPECT_EQ(st.code(), StatusCode::kIoError);
    EXPECT_NE(st.message().find("torn"), std::string::npos);
  }

  // The previous checkpoint at the final path is untouched...
  EXPECT_EQ(ReadVersion(path), 1);
  // ...the torn tmp exists with exactly the truncated prefix...
  ASSERT_TRUE(FileExists(path + ".tmp"));
  EXPECT_EQ(ReadBytes(path + ".tmp").size(), 16u);
  // ...and opening the torn file fails with a Status, never a crash.
  auto torn = io::CheckpointReader::Open(path + ".tmp");
  ASSERT_FALSE(torn.ok());
  EXPECT_FALSE(torn.status().ok());
  std::remove((path + ".tmp").c_str());
}

// A failed mid-training checkpoint save is survivable by design: training
// runs to completion with the same weights as an unfaulted run, and the
// failure is reported, not fatal.
TEST(CheckpointFaultTest, TrainerSurvivesInjectedCheckpointSaveFailure) {
  const Tensor windows = TrainingWindows();
  const std::string ckpt = TempPath("fault_trainer.ckpt");
  std::remove(ckpt.c_str());

  TranADModel reference(SmallConfig());
  TrainOptions plain = FastOptions();
  plain.max_epochs = 2;
  TrainTranAD(&reference, windows, plain);

  failpoint::ScopedFailpoint fault("core.trainer.checkpoint_save",
                                   failpoint::Action::Error());
  TrainOptions opts = FastOptions();
  opts.max_epochs = 2;
  opts.checkpoint_path = ckpt;
  opts.checkpoint_every = 1;
  TranADModel model(SmallConfig());
  const TrainStats stats = TrainTranAD(&model, windows, opts);
  EXPECT_EQ(stats.epochs_run, 2);  // did not die
  EXPECT_FALSE(FileExists(ckpt));  // every save failed cleanly

  const auto a = model.SnapshotParameters();
  const auto b = reference.SnapshotParameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].Equals(b[i]))
        << "failed checkpoint saves perturbed training (param " << i << ")";
  }
}

}  // namespace
}  // namespace tranad
