file(REMOVE_RECURSE
  "CMakeFiles/fig5_msds_labels.dir/fig5_msds_labels.cc.o"
  "CMakeFiles/fig5_msds_labels.dir/fig5_msds_labels.cc.o.d"
  "fig5_msds_labels"
  "fig5_msds_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_msds_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
