#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "data/time_series.h"

namespace tranad::net {
namespace {

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

/// Self-pipe: worker threads write one byte to kick the poll() loop out of
/// its wait so freshly queued verdict frames flush promptly. Shared by
/// shared_ptr with every connection, so a verdict callback completing
/// after Stop() signals a still-live pipe instead of a dangling fd.
struct NetServer::Wakeup {
  int fds[2] = {-1, -1};

  Status Init() {
    if (pipe(fds) != 0) {
      return Status::IoError(std::string("pipe: ") + std::strerror(errno));
    }
    TRANAD_RETURN_IF_ERROR(SetNonBlocking(fds[0]));
    return SetNonBlocking(fds[1]);
  }
  ~Wakeup() {
    if (fds[0] >= 0) close(fds[0]);
    if (fds[1] >= 0) close(fds[1]);
  }
  void Signal() {
    char b = 1;
    // EAGAIN means the pipe already holds a wakeup byte — good enough.
    (void)!write(fds[1], &b, 1);
  }
  void Drain() {
    char buf[256];
    while (read(fds[0], buf, sizeof(buf)) > 0) {
    }
  }
};

/// One client connection. The event loop owns fd and reader; the outbox is
/// the only cross-thread surface (verdict callbacks append under out_mu).
struct NetServer::Connection {
  Connection(int fd_in, size_t max_payload, std::shared_ptr<Wakeup> wk)
      : fd(fd_in), reader(max_payload), wakeup(std::move(wk)) {}

  ~Connection() {
    if (fd >= 0) close(fd);
  }

  /// Appends encoded frame bytes for the event loop to flush. Returns
  /// false when the connection is closed or the outbox cap is exceeded
  /// (the slow-client drop; the loop notices `overflowed` and closes).
  bool QueueBytes(const uint8_t* data, size_t n, size_t cap) {
    bool ok;
    {
      std::lock_guard<std::mutex> lock(out_mu);
      if (closed) return false;
      if (outbox.size() - out_head + n > cap) {
        overflowed = true;
        ok = false;
      } else {
        outbox.insert(outbox.end(), data, data + n);
        ok = true;
      }
    }
    wakeup->Signal();
    return ok;
  }

  const int fd;
  FrameReader reader;
  std::shared_ptr<Wakeup> wakeup;

  std::mutex out_mu;
  std::vector<uint8_t> outbox;  // encoded frames awaiting the socket
  size_t out_head = 0;          // bytes of outbox already written
  bool closed = false;          // no further queueing (guarded by out_mu)
  bool overflowed = false;      // outbox cap exceeded -> drop connection
  /// Close once the outbox drains (set after queueing a kError frame).
  bool close_after_flush = false;
};

NetServer::NetServer(serve::ShardRouter* router, ServerOptions options)
    : router_(router), options_(std::move(options)) {
  TRANAD_CHECK(router_ != nullptr);
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  std::lock_guard<std::mutex> lock(start_mu_);
  if (started_) return Status::FailedPrecondition("server already started");

  if (auto fp = TRANAD_FAILPOINT("net.listen"); fp.is_error()) {
    return fp.ToStatus("net.listen");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st =
        Status::IoError("bind " + options_.bind_address + ":" +
                        std::to_string(options_.port) + ": " +
                        std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (listen(listen_fd_, 128) != 0) {
    const Status st =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  TRANAD_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
  wakeup_ = std::make_shared<Wakeup>();
  TRANAD_RETURN_IF_ERROR(wakeup_->Init());
  stop_.store(false, std::memory_order_release);
  loop_ = std::thread([this] { LoopThread(); });
  started_ = true;
  return Status::Ok();
}

void NetServer::Stop() {
  std::lock_guard<std::mutex> lock(start_mu_);
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  wakeup_->Signal();
  if (loop_.joinable()) loop_.join();
  {
    std::lock_guard<std::mutex> reload_lock(reload_threads_mu_);
    for (auto& t : reload_threads_) {
      if (t.joinable()) t.join();
    }
    reload_threads_.clear();
  }
  started_ = false;
}

int64_t NetServer::num_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return static_cast<int64_t>(conns_.size());
}

void NetServer::Drain(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_reason_ = reason;
  }
  draining_.store(true, std::memory_order_release);
  // The loop thread does the actual work (closing the listen socket,
  // broadcasting kDrain) — fds are loop-owned.
  if (wakeup_) wakeup_->Signal();
}

Status NetServer::WaitForDrain(int64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    bool pending = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& conn : conns_) {
        std::lock_guard<std::mutex> out_lock(conn->out_mu);
        if (conn->out_head < conn->outbox.size()) {
          pending = true;
          break;
        }
      }
    }
    if (!pending) return Status::Ok();
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded(
          "drain did not flush every outbox within " +
          std::to_string(timeout_ms) + " ms");
    }
    if (wakeup_) wakeup_->Signal();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void NetServer::LoopThread() {
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Connection>> snapshot;
  bool drain_announced = false;
  while (!stop_.load(std::memory_order_acquire)) {
    if (draining_.load(std::memory_order_acquire) && !drain_announced) {
      drain_announced = true;
      // Stop accepting at the OS level: later connect()s are refused, which
      // a resilient client reads as "find another replica", not an error.
      if (listen_fd_ >= 0) {
        close(listen_fd_);
        listen_fd_ = -1;
      }
      WireDrain drain;
      {
        std::lock_guard<std::mutex> lock(drain_mu_);
        drain.reason = drain_reason_;
      }
      std::vector<uint8_t> bytes;
      drain.EncodeTo(&bytes);
      std::vector<std::shared_ptr<Connection>> live;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        live = conns_;
      }
      for (const auto& conn : live) {
        conn->QueueBytes(bytes.data(), bytes.size(),
                         options_.max_outbox_bytes);
      }
    }
    pfds.clear();
    // poll() ignores negative fds, so the closed-by-drain listen slot stays
    // in place and the fixed indexing below keeps working.
    pfds.push_back({listen_fd_, POLLIN, 0});
    pfds.push_back({wakeup_->fds[0], POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      snapshot = conns_;
    }
    for (const auto& conn : snapshot) {
      short events = POLLIN;
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        if (conn->out_head < conn->outbox.size()) events |= POLLOUT;
      }
      pfds.push_back({conn->fd, events, 0});
    }
    if (poll(pfds.data(), pfds.size(), 100) < 0 && errno != EINTR) break;
    if (stop_.load(std::memory_order_acquire)) break;
    if (pfds[1].revents & POLLIN) wakeup_->Drain();
    if (pfds[0].revents & POLLIN) AcceptReady();
    for (size_t i = 0; i < snapshot.size(); ++i) {
      const auto& conn = snapshot[i];
      const short revents = pfds[i + 2].revents;
      bool alive = true;
      bool overflowed;
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        overflowed = conn->overflowed;
      }
      if (overflowed || (revents & (POLLERR | POLLHUP | POLLNVAL))) {
        alive = false;
      }
      if (alive && (revents & POLLIN)) alive = ReadReady(conn);
      if (alive) alive = WriteReady(conn);  // flush anything queued
      if (!alive) CloseConnection(conn);
    }
  }
  // Shutdown: close the listen socket, then every connection. Worker
  // callbacks still in flight find conn->closed and drop their verdicts.
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::shared_ptr<Connection>> remaining;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    remaining.swap(conns_);
  }
  for (const auto& conn : remaining) {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->closed = true;
    shutdown(conn->fd, SHUT_RDWR);
  }
}

void NetServer::AcceptReady() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error: poll again later
    }
    // Chaos hook: an injected accept fault drops this client on the floor
    // exactly as a SYN-flooded or fd-exhausted server would.
    if (auto fp = TRANAD_FAILPOINT("net.accept"); fp.is_error()) {
      close(fd);
      continue;
    }
    bool full;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      full = static_cast<int64_t>(conns_.size()) >= options_.max_connections;
    }
    if (full || !SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd, options_.max_frame_payload,
                                             wakeup_);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    accepted_total_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool NetServer::ReadReady(const std::shared_ptr<Connection>& conn) {
  uint8_t buf[64 * 1024];
  const size_t want = std::min(sizeof(buf), conn->reader.writable());
  if (want == 0) return true;  // cannot happen while frames are drained
  const ssize_t n = read(conn->fd, buf, want);
  if (n == 0) return false;  // clean EOF
  if (n < 0) {
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
  size_t feed = static_cast<size_t>(n);
  // Chaos hook: torn-frame injection. A truncate action swallows the tail
  // of this read — exactly what a peer dying mid-write (or a buggy proxy)
  // produces — so the reader's CRC/bounds checks, not luck, decide what
  // happens next. An error action models a connection reset.
  if (auto fp = TRANAD_FAILPOINT("net.read.torn_frame"); fp.active()) {
    if (fp.is_truncate()) {
      feed = std::min(feed,
                      static_cast<size_t>(std::max<int64_t>(
                          0, fp.truncate_bytes)));
    } else if (fp.is_error()) {
      return false;
    }
  }
  if (!conn->reader.Feed(buf, feed).ok()) return false;
  for (;;) {
    FrameView frame;
    bool got = false;
    const Status st = conn->reader.Next(&frame, &got);
    if (!st.ok()) {
      protocol_errors_total_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, st);
      return true;  // keep alive long enough to flush the error frame
    }
    if (!got) break;
    if (!HandleFrame(conn, frame)) return false;
  }
  return true;
}

bool NetServer::WriteReady(const std::shared_ptr<Connection>& conn) {
  // Chaos hook: a delay action stalls the flush path — the server-side
  // half of a slow client (its socket buffer stays full longer, the outbox
  // grows, the cap eventually trips).
  (void)TRANAD_FAILPOINT("net.write.slow_client");
  std::lock_guard<std::mutex> lock(conn->out_mu);
  while (conn->out_head < conn->outbox.size()) {
    const ssize_t n =
        send(conn->fd, conn->outbox.data() + conn->out_head,
             conn->outbox.size() - conn->out_head, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      return false;
    }
    conn->out_head += static_cast<size_t>(n);
  }
  if (conn->out_head == conn->outbox.size()) {
    conn->outbox.clear();
    conn->out_head = 0;
    if (conn->close_after_flush) return false;
  } else if (conn->out_head > (1u << 20)) {
    conn->outbox.erase(conn->outbox.begin(),
                       conn->outbox.begin() +
                           static_cast<ptrdiff_t>(conn->out_head));
    conn->out_head = 0;
  }
  return true;
}

void NetServer::SendError(const std::shared_ptr<Connection>& conn,
                          const Status& status) {
  WireAck error;
  error.status = status;
  std::vector<uint8_t> bytes;
  error.EncodeTo(&bytes, FrameType::kError);
  conn->QueueBytes(bytes.data(), bytes.size(), options_.max_outbox_bytes);
  std::lock_guard<std::mutex> lock(conn->out_mu);
  conn->close_after_flush = true;
}

void NetServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  {
    // Best-effort final flush (a queued kError frame, trailing verdicts)
    // before the fd goes away; the socket is non-blocking so this cannot
    // stall the loop.
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (!conn->closed && conn->out_head < conn->outbox.size()) {
      (void)!send(conn->fd, conn->outbox.data() + conn->out_head,
                  conn->outbox.size() - conn->out_head, MSG_NOSIGNAL);
    }
    conn->closed = true;
    shutdown(conn->fd, SHUT_RDWR);
  }
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end(); ++it) {
    if (it->get() == conn.get()) {
      conns_.erase(it);
      break;
    }
  }
}

bool NetServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                            const FrameView& frame) {
  switch (frame.type) {
    case FrameType::kPing: {
      WirePing ping;
      if (!WirePing::Decode(frame, &ping).ok()) return false;
      std::vector<uint8_t> bytes;
      ping.EncodeTo(&bytes, FrameType::kPong);
      conn->QueueBytes(bytes.data(), bytes.size(), options_.max_outbox_bytes);
      return true;
    }
    case FrameType::kSubmit:
      HandleSubmit(conn, frame);
      // An injected drop here models a client vanishing with a batch in
      // flight: the shard still completes every admitted observation
      // exactly once; the verdicts just have nowhere to go.
      if (auto fp = TRANAD_FAILPOINT("net.conn.drop_mid_batch");
          fp.is_error()) {
        return false;
      }
      return true;
    case FrameType::kCreateStream: {
      WireCreateStream req;
      const Status decoded = WireCreateStream::Decode(frame, &req);
      WireAck ack;
      ack.stream_key = req.stream_key;
      if (!decoded.ok()) {
        ack.status = decoded;
      } else if (req.rows <= 0 || req.dims <= 0) {
        ack.status = Status::InvalidArgument("empty calibration series");
      } else {
        TimeSeries calibration;
        calibration.name = "wire:" + std::to_string(req.stream_key);
        calibration.values = Tensor({req.rows, req.dims});
        std::memcpy(calibration.values.data(), req.values.data(),
                    req.values.size() * sizeof(float));
        // Calibration scores a full series; it runs here on the loop
        // thread because stream setup is rare and orders of magnitude
        // cheaper than the traffic it enables.
        ack.status = router_->CreateStream(req.stream_key, calibration);
      }
      std::vector<uint8_t> bytes;
      ack.EncodeTo(&bytes, FrameType::kCreateStreamAck);
      conn->QueueBytes(bytes.data(), bytes.size(), options_.max_outbox_bytes);
      return true;
    }
    case FrameType::kCloseStream: {
      WireCloseStream req;
      const Status decoded = WireCloseStream::Decode(frame, &req);
      WireAck ack;
      ack.stream_key = req.stream_key;
      ack.status = decoded.ok() ? router_->CloseStream(req.stream_key)
                                : decoded;
      std::vector<uint8_t> bytes;
      ack.EncodeTo(&bytes, FrameType::kCloseStreamAck);
      conn->QueueBytes(bytes.data(), bytes.size(), options_.max_outbox_bytes);
      return true;
    }
    case FrameType::kStats: {
      WireStatsRequest req;
      if (!WireStatsRequest::Decode(frame, &req).ok()) return false;
      WireStatsReply reply;
      reply.snapshot = router_->stats();
      // The router never sees duplicate submits (they are settled here, in
      // front of it), so the dedup tally is the server's to report.
      reply.snapshot.retries_deduped +=
          submits_deduped_total_.load(std::memory_order_relaxed);
      std::vector<uint8_t> bytes;
      reply.EncodeTo(&bytes);
      conn->QueueBytes(bytes.data(), bytes.size(), options_.max_outbox_bytes);
      return true;
    }
    case FrameType::kReload:
      HandleReload(conn, frame);
      return true;
    default:
      // Server-to-client frame types have no business arriving here.
      protocol_errors_total_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, Status::InvalidArgument(
                          "unexpected frame type " +
                          std::to_string(static_cast<int>(frame.type)) +
                          " from a client"));
      return true;
  }
}

std::shared_ptr<NetServer::Connection> NetServer::SettleDedup(
    const DedupKey& id, bool ok, const std::vector<uint8_t>& bytes,
    std::shared_ptr<Connection> fallback) {
  std::lock_guard<std::mutex> lock(dedup_mu_);
  auto it = dedup_.find(id);
  if (it == dedup_.end()) return fallback;  // evicted under pressure
  std::shared_ptr<Connection> target = it->second.waiter.lock();
  if (!target) target = std::move(fallback);
  if (ok) {
    // Cache the encoded verdict so a late replay of this submission gets
    // the identical frame back without touching the stream again.
    it->second.done = true;
    it->second.verdict_bytes = bytes;
    it->second.waiter.reset();
    dedup_done_lru_.push_back(id);
    while (static_cast<int64_t>(dedup_done_lru_.size()) >
           options_.dedup_cache) {
      dedup_.erase(dedup_done_lru_.front());
      dedup_done_lru_.pop_front();
    }
  } else {
    // A failed submission leaves no cached verdict: the retry re-executes
    // from scratch. This is what lets a client retry *through* a shard
    // failover — the resend lands on the stream's new shard and scores.
    dedup_.erase(it);
  }
  return target;
}

void NetServer::HandleSubmit(const std::shared_ptr<Connection>& conn,
                             const FrameView& frame) {
  WireSubmit submit;
  const Status decoded = WireSubmit::Decode(frame, &submit);
  if (!decoded.ok()) {
    protocol_errors_total_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, decoded);
    return;
  }
  const uint64_t tag = submit.tag;
  const uint64_t key = submit.stream_key;
  const size_t cap = options_.max_outbox_bytes;
  const auto refuse = [&](const Status& status) {
    // Admission failures (unknown stream, full queue, quarantine, bad
    // dims, draining) come back as a verdict frame carrying the status
    // with seq=-1, so the client's per-submit accounting always balances.
    WireVerdict wire;
    wire.stream_key = key;
    wire.tag = tag;
    wire.seq = -1;
    wire.status = status;
    std::vector<uint8_t> bytes;
    wire.EncodeTo(&bytes);
    conn->QueueBytes(bytes.data(), bytes.size(), cap);
  };
  if (draining_.load(std::memory_order_acquire)) {
    refuse(Status::Unavailable("server draining"));
    return;
  }
  const bool tracked = (submit.flags & kSubmitFlagIdempotent) != 0 &&
                       options_.dedup_cache > 0;
  const DedupKey id{key, tag};
  if (tracked) {
    std::lock_guard<std::mutex> lock(dedup_mu_);
    auto it = dedup_.find(id);
    if (it != dedup_.end()) {
      submits_deduped_total_.fetch_add(1, std::memory_order_relaxed);
      if (it->second.done) {
        // Replay: the identical cached verdict, no rescoring.
        conn->QueueBytes(it->second.verdict_bytes.data(),
                         it->second.verdict_bytes.size(), cap);
      } else {
        // Still scoring (the resend usually arrived over a fresh
        // connection): retarget delivery to the newest one.
        it->second.waiter = conn;
      }
      return;
    }
    DedupEntry entry;
    entry.waiter = conn;
    dedup_.emplace(id, std::move(entry));
  }
  Tensor observation({static_cast<int64_t>(submit.values.size())});
  std::memcpy(observation.data(), submit.values.data(),
              submit.values.size() * sizeof(float));
  const Status admitted = router_->Submit(
      key, observation,
      [this, conn, id, tag, cap, tracked](serve::StreamId stream_key,
                                          int64_t seq,
                                          const OnlineVerdict& verdict) {
        WireVerdict wire;
        wire.stream_key = stream_key;
        wire.tag = tag;
        wire.seq = seq;
        wire.status = verdict.status;
        wire.anomalous = verdict.anomalous;
        wire.score = verdict.score;
        wire.threshold = verdict.threshold;
        std::vector<uint8_t> bytes;
        wire.EncodeTo(&bytes);
        std::shared_ptr<Connection> target = conn;
        if (tracked) {
          target = SettleDedup(id, verdict.status.ok(), bytes, conn);
        }
        target->QueueBytes(bytes.data(), bytes.size(), cap);
      });
  if (!admitted.ok()) {
    if (tracked) {
      // Never cache an admission refusal: the retry must re-execute.
      std::lock_guard<std::mutex> lock(dedup_mu_);
      dedup_.erase(id);
    }
    refuse(admitted);
  }
}

void NetServer::HandleReload(const std::shared_ptr<Connection>& conn,
                             const FrameView& frame) {
  WireReload req;
  const Status decoded = WireReload::Decode(frame, &req);
  if (!decoded.ok()) {
    WireAck ack;
    ack.status = decoded;
    std::vector<uint8_t> bytes;
    ack.EncodeTo(&bytes, FrameType::kReloadAck);
    conn->QueueBytes(bytes.data(), bytes.size(), options_.max_outbox_bytes);
    return;
  }
  // A rolling reload takes as long as the slowest shard drain; running it
  // on the event loop would freeze every connection's reads and writes for
  // that long. A helper thread keeps traffic moving and acks when done.
  const size_t cap = options_.max_outbox_bytes;
  std::thread worker([this, conn, cap, path = std::move(req.path)] {
    WireAck ack;
    ack.status = router_->ReloadModel(path);
    std::vector<uint8_t> bytes;
    ack.EncodeTo(&bytes, FrameType::kReloadAck);
    conn->QueueBytes(bytes.data(), bytes.size(), cap);
  });
  std::lock_guard<std::mutex> lock(reload_threads_mu_);
  reload_threads_.push_back(std::move(worker));
}

}  // namespace tranad::net
