// Figure 4: critical-difference diagrams for F1 and AUC across all methods
// and datasets — Friedman test followed by pairwise Wilcoxon signed-rank
// tests (alpha = 0.05), rendered as rank lists with non-significant groups.
#include "bench/bench_util.h"

#include "eval/critdiff.h"

namespace tranad::bench {
namespace {

int Main() {
  const auto methods = PaperMethodNames();
  const int64_t epochs = DefaultEpochs();
  std::vector<std::vector<double>> f1(methods.size());
  std::vector<std::vector<double>> auc(methods.size());

  for (const auto& dataset_name : DatasetNames()) {
    const Dataset& ds = BenchDataset(dataset_name);
    for (size_t i = 0; i < methods.size(); ++i) {
      const EvalOutcome out = RunCell(methods[i], ds, epochs);
      f1[i].push_back(out.detection.f1);
      auc[i].push_back(out.detection.roc_auc);
      std::fflush(stdout);
    }
  }

  const auto cd_f1 = CriticalDifference(methods, f1, 0.05);
  std::printf("\nFigure 4a: critical difference on F1 scores\n%s\n",
              RenderCritDiff(cd_f1).c_str());
  const auto cd_auc = CriticalDifference(methods, auc, 0.05);
  std::printf("Figure 4b: critical difference on AUC scores\n%s\n",
              RenderCritDiff(cd_auc).c_str());

  std::vector<std::vector<double>> csv;
  for (size_t i = 0; i < methods.size(); ++i) {
    csv.push_back({cd_f1.friedman.avg_ranks[i],
                   cd_auc.friedman.avg_ranks[i]});
  }
  const auto path =
      WriteBenchCsv("fig4_critdiff", {"f1_rank", "auc_rank"}, csv);
  std::printf("CSV: %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
