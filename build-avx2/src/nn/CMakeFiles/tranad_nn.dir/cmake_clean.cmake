file(REMOVE_RECURSE
  "CMakeFiles/tranad_nn.dir/attention.cc.o"
  "CMakeFiles/tranad_nn.dir/attention.cc.o.d"
  "CMakeFiles/tranad_nn.dir/conv.cc.o"
  "CMakeFiles/tranad_nn.dir/conv.cc.o.d"
  "CMakeFiles/tranad_nn.dir/init.cc.o"
  "CMakeFiles/tranad_nn.dir/init.cc.o.d"
  "CMakeFiles/tranad_nn.dir/layer_norm.cc.o"
  "CMakeFiles/tranad_nn.dir/layer_norm.cc.o.d"
  "CMakeFiles/tranad_nn.dir/linear.cc.o"
  "CMakeFiles/tranad_nn.dir/linear.cc.o.d"
  "CMakeFiles/tranad_nn.dir/module.cc.o"
  "CMakeFiles/tranad_nn.dir/module.cc.o.d"
  "CMakeFiles/tranad_nn.dir/optimizer.cc.o"
  "CMakeFiles/tranad_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/tranad_nn.dir/positional_encoding.cc.o"
  "CMakeFiles/tranad_nn.dir/positional_encoding.cc.o.d"
  "CMakeFiles/tranad_nn.dir/rnn.cc.o"
  "CMakeFiles/tranad_nn.dir/rnn.cc.o.d"
  "CMakeFiles/tranad_nn.dir/transformer.cc.o"
  "CMakeFiles/tranad_nn.dir/transformer.cc.o.d"
  "libtranad_nn.a"
  "libtranad_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tranad_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
