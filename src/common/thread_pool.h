#ifndef TRANAD_COMMON_THREAD_POOL_H_
#define TRANAD_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <functional>

namespace tranad {

/// Range task for ParallelFor: processes indices [lo, hi).
using RangeFn = std::function<void(int64_t lo, int64_t hi)>;

/// Deterministic intra-op parallel for over [begin, end).
///
/// The range is cut into contiguous chunks of at least `grain` indices and
/// the chunks are executed by the shared compute pool plus the calling
/// thread (the caller always participates, so ParallelFor makes progress
/// even when every pool worker is busy with another region). Determinism
/// contract: `fn` must compute each index independently — every float the
/// kernel produces for index i depends only on i and on the kernel inputs,
/// never on chunk boundaries or on values produced for other indices in the
/// same call. Under that contract the results are bit-identical for 1, 2,
/// or N threads, because parallelism only changes *which thread* runs an
/// index, not the arithmetic the index performs.
///
/// Nested calls (from inside a chunk) run inline on the calling thread.
/// `grain` is the minimum number of indices worth shipping to another
/// thread; tune it so one chunk amortizes ~10us of scheduling overhead.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const RangeFn& fn);

/// Total parallel lanes used by ParallelFor (pool workers + the caller).
/// Sized by TRANAD_NUM_THREADS at first use; defaults to the hardware
/// concurrency when the variable is unset or <= 0.
int64_t NumComputeThreads();

/// Reconfigures the shared pool to `n` total lanes (n-1 workers). Joins the
/// old workers; must not race in-flight ParallelFor calls. Intended for
/// tests and benchmarks that compare thread counts inside one process.
void SetNumComputeThreads(int64_t n);

/// While alive on the current thread, every ParallelFor issued from this
/// thread runs inline (single-threaded) instead of fanning out to the
/// shared pool. Serve workers install one when several of them score
/// batches concurrently: inter-request parallelism already covers the
/// cores, and stacking intra-op fan-out on top would only oversubscribe.
/// Guards nest.
class InlineComputeGuard {
 public:
  InlineComputeGuard();
  ~InlineComputeGuard();
  InlineComputeGuard(const InlineComputeGuard&) = delete;
  InlineComputeGuard& operator=(const InlineComputeGuard&) = delete;
};

/// True while the current thread is a pool worker executing a chunk, or an
/// InlineComputeGuard is alive on it (i.e. ParallelFor would run inline).
bool ParallelForRunsInline();

/// Installs a function run once at the start of every pool worker thread,
/// before it executes any chunk. The autograd layer uses this to mark
/// workers tape-free (a permanent NoGradGuard) without common/ depending on
/// tensor/. Register before the pool is first used; only workers created
/// afterwards run the hook.
void SetWorkerThreadInit(std::function<void()> fn);

}  // namespace tranad

#endif  // TRANAD_COMMON_THREAD_POOL_H_
