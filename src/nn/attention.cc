#include "nn/attention.h"

#include <cmath>

#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad::nn {

Tensor CausalMask(int64_t t) {
  Tensor mask({t, t});
  for (int64_t i = 0; i < t; ++i) {
    for (int64_t j = i + 1; j < t; ++j) mask.At({i, j}) = -1e9f;
  }
  return mask;
}

MultiHeadAttention::MultiHeadAttention(int64_t d_model, int64_t num_heads,
                                       Rng* rng)
    : d_model_(d_model), num_heads_(num_heads) {
  TRANAD_CHECK_GT(num_heads, 0);
  TRANAD_CHECK_MSG(d_model % num_heads == 0,
                   "d_model " << d_model << " not divisible by num_heads "
                              << num_heads);
  head_dim_ = d_model / num_heads;
  wq_ = std::make_unique<Linear>(d_model, d_model, rng);
  wk_ = std::make_unique<Linear>(d_model, d_model, rng);
  wv_ = std::make_unique<Linear>(d_model, d_model, rng);
  wo_ = std::make_unique<Linear>(d_model, d_model, rng);
  RegisterModule("wq", wq_.get());
  RegisterModule("wk", wk_.get());
  RegisterModule("wv", wv_.get());
  RegisterModule("wo", wo_.get());
}

Variable MultiHeadAttention::Forward(const Variable& query,
                                     const Variable& key,
                                     const Variable& value,
                                     const Tensor* mask) const {
  TRANAD_CHECK_EQ(query.value().size(-1), d_model_);
  TRANAD_CHECK_EQ(key.value().size(-1), d_model_);
  TRANAD_CHECK(key.value().size(-2) == value.value().size(-2));

  const int64_t b = query.value().size(0);
  const int64_t tq = query.value().size(1);
  const int64_t tk = key.value().size(1);

  const Variable q = wq_->Forward(query);
  const Variable k = wk_->Forward(key);
  const Variable v = wv_->Forward(value);

  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  // Batched heads: [B, T, d] -> [B, T, h, dh] -> [B, h, T, dh] ->
  // [B*h, T, dh], so every head rides one batched matmul.
  auto split_heads = [&](const Variable& x, int64_t t) {
    Variable reshaped = ag::Reshape(x, {b, t, num_heads_, head_dim_});
    return ag::Reshape(ag::SwapAxes12(reshaped),
                       {b * num_heads_, t, head_dim_});
  };
  Variable qh = split_heads(q, tq);
  Variable kh = split_heads(k, tk);
  Variable vh = split_heads(v, tk);

  Variable logits =
      ag::MulScalar(ag::MatMul(qh, ag::TransposeLast2(kh)), scale);
  if (mask != nullptr) {
    logits = ag::Add(logits, Variable(*mask));  // [Tq,Tk] broadcasts
  }
  Variable weights = ag::SoftmaxLastDim(logits);  // [B*h, Tq, Tk]

  // Head-averaged attention map for the Fig. 3 visualization. Skipped under
  // NoGrad so concurrent inference threads never write shared layer state.
  if (!NoGradEnabled()) {
    last_attention_ = MulScalar(
        Sum(weights.value().Reshape({b, num_heads_, tq, tk}), 1, false),
        1.0f / static_cast<float>(num_heads_));
  }

  Variable context = ag::MatMul(weights, vh);  // [B*h, Tq, dh]
  Variable merged = ag::Reshape(
      ag::SwapAxes12(ag::Reshape(context, {b, num_heads_, tq, head_dim_})),
      {b, tq, d_model_});
  return wo_->Forward(merged);
}

}  // namespace tranad::nn
