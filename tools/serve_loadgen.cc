// Load generator for the serving engine: trains a small TranAD detector on
// a synthetic dataset, registers a fleet of streams, then drives them from
// closed-loop submitter threads while printing a live stats line — queue
// depth, batch coalescing, latency percentiles, rejection rate. Use it to
// explore the max_batch / max_wait latency-throughput trade-off and to
// demonstrate backpressure under overload.
//
// Usage:
//   serve_loadgen [--streams N] [--submitters N] [--workers N]
//                 [--max-batch N] [--max-wait-us N] [--queue N]
//                 [--duration-s N] [--epochs N] [--scale F]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "core/pipeline.h"
#include "core/tranad_detector.h"
#include "data/synthetic.h"
#include "serve/serve_engine.h"

namespace tranad {
namespace {

struct Args {
  int64_t streams = 16;
  int64_t submitters = 2;
  int64_t workers = 4;
  int64_t max_batch = 32;
  int64_t max_wait_us = 200;
  int64_t queue = 1024;
  int64_t duration_s = 10;
  int64_t epochs = 2;
  double scale = 0.2;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  auto next_i64 = [&](int& i) { return std::atoll(argv[++i]); };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--streams")) {
      args.streams = next_i64(i);
    } else if (!std::strcmp(a, "--submitters")) {
      args.submitters = next_i64(i);
    } else if (!std::strcmp(a, "--workers")) {
      args.workers = next_i64(i);
    } else if (!std::strcmp(a, "--max-batch")) {
      args.max_batch = next_i64(i);
    } else if (!std::strcmp(a, "--max-wait-us")) {
      args.max_wait_us = next_i64(i);
    } else if (!std::strcmp(a, "--queue")) {
      args.queue = next_i64(i);
    } else if (!std::strcmp(a, "--duration-s")) {
      args.duration_s = next_i64(i);
    } else if (!std::strcmp(a, "--epochs")) {
      args.epochs = next_i64(i);
    } else if (!std::strcmp(a, "--scale")) {
      args.scale = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      std::exit(2);
    }
  }
  auto require = [](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "invalid arguments: %s\n", what);
      std::exit(2);
    }
  };
  require(args.streams > 0, "--streams must be >= 1");
  require(args.submitters > 0, "--submitters must be >= 1");
  require(args.workers > 0, "--workers must be >= 1");
  require(args.max_batch > 0, "--max-batch must be >= 1");
  require(args.max_wait_us >= 0, "--max-wait-us must be >= 0");
  require(args.queue > 0, "--queue must be >= 1");
  require(args.duration_s > 0, "--duration-s must be >= 1");
  require(args.epochs > 0, "--epochs must be >= 1");
  require(args.scale > 0.0, "--scale must be > 0");
  return args;
}

int Main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);

  std::printf("loadgen: training detector (scale %.2f, %lld epochs)...\n",
              args.scale, static_cast<long long>(args.epochs));
  auto config = SmapConfig(args.scale);
  const Dataset dataset = GenerateSynthetic(config);
  TranADConfig model_config;
  model_config.window = 10;
  model_config.d_ff = 32;
  TrainOptions train;
  train.max_epochs = args.epochs;
  TranADDetector detector(model_config, train);
  detector.Fit(dataset.train);

  serve::ServeOptions options;
  options.num_workers = args.workers;
  options.queue_capacity = args.queue;
  options.max_batch = args.max_batch;
  options.max_wait_us = args.max_wait_us;
  options.pot = PotParamsForDataset("SMAP");
  serve::ServeEngine engine(&detector, options);

  std::printf("loadgen: calibrating %lld streams...\n",
              static_cast<long long>(args.streams));
  std::vector<serve::StreamId> ids;
  for (int64_t s = 0; s < args.streams; ++s) {
    auto created = engine.CreateStream(dataset.train);
    if (!created.ok()) {
      std::fprintf(stderr, "CreateStream: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    ids.push_back(created.value());
  }

  // Closed-loop submitters: each hammers its share of the streams as fast
  // as admission allows; rejected submissions spin-retry (that *is* the
  // backpressure signal, visible in the rejected counter).
  std::atomic<bool> stop{false};
  std::atomic<int64_t> anomalies{0};
  std::vector<std::thread> submitters;
  const int64_t m = dataset.dims();
  for (int64_t w = 0; w < args.submitters; ++w) {
    submitters.emplace_back([&, w] {
      Tensor row({m});
      int64_t i = w;  // stride the streams across submitters
      while (!stop.load(std::memory_order_relaxed)) {
        const serve::StreamId id =
            ids[static_cast<size_t>(i % args.streams)];
        const int64_t t = (i / args.streams) % dataset.test.length();
        for (int64_t d = 0; d < m; ++d) {
          row[d] = dataset.test.values.At({t, d});
        }
        engine.Submit(id, row,
                      [&](serve::StreamId, int64_t, const OnlineVerdict& v) {
                        if (v.anomalous) anomalies.fetch_add(1);
                      });
        i += args.submitters;
      }
    });
  }

  Stopwatch watch;
  while (watch.ElapsedSeconds() < static_cast<double>(args.duration_s)) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    const serve::ServeStatsSnapshot s = engine.stats();
    std::printf(
        "t=%4.0fs  %8.1f obs/s  done %lld  rej %lld  depth %lld  "
        "batch %4.1f  p50 %6.2fms  p99 %6.2fms  anomalies %lld\n",
        watch.ElapsedSeconds(), s.throughput_per_sec,
        static_cast<long long>(s.completed),
        static_cast<long long>(s.rejected),
        static_cast<long long>(s.queue_depth), s.mean_batch_size,
        s.p50_latency_ms, s.p99_latency_ms,
        static_cast<long long>(anomalies.load()));
  }
  stop.store(true);
  for (auto& t : submitters) t.join();
  engine.Flush();

  const serve::ServeStatsSnapshot s = engine.stats();
  std::printf(
      "\nfinal: %lld completed, %lld rejected, %.1f obs/s, mean batch %.1f\n",
      static_cast<long long>(s.completed),
      static_cast<long long>(s.rejected), s.throughput_per_sec,
      s.mean_batch_size);
  std::printf("batch-size histogram:");
  for (size_t b = 1; b < s.batch_size_hist.size(); ++b) {
    if (s.batch_size_hist[b] > 0) {
      std::printf(" %zu:%lld", b, static_cast<long long>(s.batch_size_hist[b]));
    }
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace tranad

int main(int argc, char** argv) { return tranad::Main(argc, argv); }
