#include "core/online_detector.h"

#include "common/check.h"
#include "core/pipeline.h"

namespace tranad {

OnlineTranAD::OnlineTranAD(TranADDetector* detector, PotParams pot)
    : detector_(detector), spot_(pot) {
  TRANAD_CHECK(detector != nullptr);
}

void OnlineTranAD::Calibrate(const TimeSeries& calibration) {
  TRANAD_CHECK_GT(calibration.length(), 0);
  const Tensor scores = detector_->Score(calibration);
  spot_.Initialize(DetectionScores(scores));

  // Seed the ring buffer with the calibration tail so the first streamed
  // observation has full context.
  const int64_t k = detector_->model()->config().window;
  const int64_t m = calibration.dims();
  buffer_.clear();
  const int64_t start = std::max<int64_t>(0, calibration.length() - k + 1);
  for (int64_t t = start; t < calibration.length(); ++t) {
    Tensor row({m});
    for (int64_t d = 0; d < m; ++d) row[d] = calibration.values.At({t, d});
    buffer_.push_back(std::move(row));
  }
}

OnlineVerdict OnlineTranAD::Observe(const Tensor& observation) {
  TRANAD_CHECK(spot_.initialized());
  const int64_t m = detector_->model()->config().dims;
  const int64_t k = detector_->model()->config().window;
  TRANAD_CHECK_EQ(observation.numel(), m);

  buffer_.push_back(observation.Reshape({m}));
  while (static_cast<int64_t>(buffer_.size()) > k) buffer_.pop_front();

  // Assemble the trailing window as a short series and reuse the batched
  // scorer (replication padding covers a cold-start buffer).
  const int64_t t_len = static_cast<int64_t>(buffer_.size());
  TimeSeries window_series;
  window_series.values = Tensor({t_len, m});
  for (int64_t t = 0; t < t_len; ++t) {
    for (int64_t d = 0; d < m; ++d) {
      window_series.values.At({t, d}) = buffer_[static_cast<size_t>(t)][d];
    }
  }
  const Tensor scores = detector_->Score(window_series);

  OnlineVerdict verdict;
  verdict.dim_scores = Tensor({m});
  double total = 0.0;
  for (int64_t d = 0; d < m; ++d) {
    const float s = scores.At({t_len - 1, d});
    verdict.dim_scores[d] = s;
    total += s;
  }
  verdict.score = total / static_cast<double>(m);
  verdict.anomalous = spot_.Observe(verdict.score);
  verdict.threshold = spot_.threshold();
  ++observed_;
  return verdict;
}

}  // namespace tranad
