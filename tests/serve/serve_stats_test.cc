#include "serve/serve_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tranad::serve {
namespace {

TEST(LatencyHistogramTest, BucketIndexCoversRangeMonotonically) {
  EXPECT_EQ(LatencyBucketIndex(0.0), 0);
  EXPECT_EQ(LatencyBucketIndex(-1.0), 0);
  EXPECT_EQ(LatencyBucketIndex(kLatencyHistMinMs / 2), 0);
  EXPECT_EQ(LatencyBucketIndex(1e12), kLatencyHistBuckets - 1);

  int prev = 0;
  for (double ms = kLatencyHistMinMs; ms < 1e5; ms *= 1.1) {
    const int b = LatencyBucketIndex(ms);
    ASSERT_GE(b, prev) << "bucket index not monotone at " << ms << "ms";
    ASSERT_LT(b, kLatencyHistBuckets);
    prev = b;
  }
}

TEST(LatencyHistogramTest, MidpointLandsInItsOwnBucket) {
  for (int b = 0; b < kLatencyHistBuckets; ++b) {
    EXPECT_EQ(LatencyBucketIndex(LatencyBucketMidpointMs(b)), b)
        << "bucket " << b;
  }
}

TEST(LatencyHistogramTest, PercentileOfEmptyHistogramIsZero) {
  const std::vector<int64_t> empty(kLatencyHistBuckets, 0);
  EXPECT_EQ(LatencyHistPercentileMs(empty, 0.5), 0.0);
  EXPECT_EQ(LatencyHistPercentileMs({}, 0.99), 0.0);
}

TEST(LatencyHistogramTest, PercentileTracksKnownDistribution) {
  // 90 observations at ~1ms, 10 at ~100ms: p50 must sit near 1ms and
  // p95/p99 near 100ms (within the ~15% bucket resolution).
  std::vector<int64_t> hist(kLatencyHistBuckets, 0);
  hist[LatencyBucketIndex(1.0)] = 90;
  hist[LatencyBucketIndex(100.0)] = 10;
  EXPECT_NEAR(LatencyHistPercentileMs(hist, 0.50), 1.0, 0.2);
  EXPECT_NEAR(LatencyHistPercentileMs(hist, 0.99), 100.0, 20.0);
}

// The histogram-merge satellite's core claim: merging shard histograms and
// re-deriving percentiles gives the true fleet percentile, while averaging
// per-shard percentiles does not (one slow shard's tail vanishes into the
// mean). This is the regression test that keeps stats() honest.
TEST(ServeStatsMergeTest, MergedPercentilesAreNotAveragedPercentiles) {
  // Shard A: 100 completions at ~1ms. Shard B: 100 at ~100ms.
  ServeStatsSnapshot a;
  a.latency_hist.assign(kLatencyHistBuckets, 0);
  a.latency_hist[LatencyBucketIndex(1.0)] = 100;
  a.completed = 100;
  a.p50_latency_ms = a.p99_latency_ms = 1.0;  // exact per-shard values
  a.elapsed_seconds = 1.0;

  ServeStatsSnapshot b;
  b.latency_hist.assign(kLatencyHistBuckets, 0);
  b.latency_hist[LatencyBucketIndex(100.0)] = 100;
  b.completed = 100;
  b.p50_latency_ms = b.p99_latency_ms = 100.0;
  b.elapsed_seconds = 1.0;

  const double averaged_p99 = (a.p99_latency_ms + b.p99_latency_ms) / 2;
  EXPECT_NEAR(averaged_p99, 50.5, 1.0);  // the wrong answer

  ServeStatsSnapshot merged = a;
  merged.MergeFrom(b);
  // True fleet p99: 199 of 200 observations are <= ~100ms, so the 99th
  // percentile lies in the 100ms bucket — nowhere near the 50ms average.
  EXPECT_NEAR(merged.p99_latency_ms, 100.0, 20.0);
  EXPECT_GT(merged.p99_latency_ms, 1.5 * averaged_p99);
  // Fleet p50 is ~1ms (100 of 200 at 1ms), not 50ms.
  EXPECT_LT(merged.p50_latency_ms, 2.0);

  EXPECT_EQ(merged.completed, 200);
  EXPECT_EQ(merged.shards, 2);
}

TEST(ServeStatsMergeTest, CountersSumAndThroughputRecomputes) {
  ServeStatsSnapshot a;
  a.submitted = 10;
  a.rejected = 1;
  a.completed = 9;
  a.anomalies = 2;
  a.failed = 1;
  a.batches = 3;
  a.batched_observations = 9;
  a.queue_depth = 2;
  a.elapsed_seconds = 2.0;
  a.max_latency_ms = 5.0;
  a.batch_size_hist.assign(4, 0);
  a.batch_size_hist[3] = 3;
  a.latency_hist.assign(kLatencyHistBuckets, 0);
  a.shards_failed = 1;
  a.streams_migrated = 3;
  a.reconnects = 2;
  a.retries_deduped = 5;

  ServeStatsSnapshot b;
  b.submitted = 20;
  b.rejected = 0;
  b.completed = 20;
  b.anomalies = 1;
  b.batches = 4;
  b.batched_observations = 20;
  b.queue_depth = 1;
  b.elapsed_seconds = 4.0;
  b.max_latency_ms = 9.0;
  b.batch_size_hist.assign(6, 0);
  b.batch_size_hist[5] = 4;
  b.latency_hist.assign(kLatencyHistBuckets, 0);
  b.shards_failed = 0;
  b.streams_migrated = 4;
  b.reconnects = 1;
  b.retries_deduped = 2;

  ServeStatsSnapshot m = a;
  m.MergeFrom(b);
  EXPECT_EQ(m.submitted, 30);
  EXPECT_EQ(m.rejected, 1);
  EXPECT_EQ(m.completed, 29);
  EXPECT_EQ(m.anomalies, 3);
  EXPECT_EQ(m.failed, 1);
  EXPECT_EQ(m.batches, 7);
  EXPECT_EQ(m.batched_observations, 29);
  EXPECT_EQ(m.queue_depth, 3);
  // Shards run concurrently: fleet elapsed is the max, not the sum, and
  // throughput is merged completions over that window.
  EXPECT_EQ(m.elapsed_seconds, 4.0);
  EXPECT_NEAR(m.throughput_per_sec, 29 / 4.0, 1e-9);
  EXPECT_EQ(m.max_latency_ms, 9.0);
  EXPECT_NEAR(m.mean_batch_size, 29.0 / 7.0, 1e-9);
  // Batch histogram widened to the larger shard's and summed.
  ASSERT_EQ(m.batch_size_hist.size(), 6u);
  EXPECT_EQ(m.batch_size_hist[3], 3);
  EXPECT_EQ(m.batch_size_hist[5], 4);
  // Fault-tolerance counters sum like every other counter.
  EXPECT_EQ(m.shards_failed, 1);
  EXPECT_EQ(m.streams_migrated, 7);
  EXPECT_EQ(m.reconnects, 3);
  EXPECT_EQ(m.retries_deduped, 7);
}

TEST(ServeStatsMergeTest, MergeIsAssociativeOnCounters) {
  auto make = [](int64_t completed, double ms) {
    ServeStatsSnapshot s;
    s.completed = completed;
    s.submitted = completed;
    s.elapsed_seconds = 1.0;
    s.latency_hist.assign(kLatencyHistBuckets, 0);
    s.latency_hist[LatencyBucketIndex(ms)] = completed;
    return s;
  };
  ServeStatsSnapshot left = make(5, 1.0);
  left.MergeFrom(make(7, 4.0));
  left.MergeFrom(make(9, 16.0));

  ServeStatsSnapshot tail = make(7, 4.0);
  tail.MergeFrom(make(9, 16.0));
  ServeStatsSnapshot right = make(5, 1.0);
  right.MergeFrom(tail);

  EXPECT_EQ(left.completed, right.completed);
  EXPECT_EQ(left.shards, right.shards);
  EXPECT_EQ(left.latency_hist, right.latency_hist);
  EXPECT_EQ(left.p99_latency_ms, right.p99_latency_ms);
}

TEST(ServeStatsTest, RecordCompletionFillsTheHistogram) {
  ServeStats stats(/*max_batch=*/8);
  stats.RecordSubmitted();
  stats.RecordSubmitted();
  stats.RecordCompletion(1.0, false);
  stats.RecordCompletion(8.0, true);
  const ServeStatsSnapshot snap = stats.Snapshot(/*queue_depth=*/0);
  ASSERT_EQ(snap.latency_hist.size(),
            static_cast<size_t>(kLatencyHistBuckets));
  EXPECT_EQ(snap.latency_hist[LatencyBucketIndex(1.0)], 1);
  EXPECT_EQ(snap.latency_hist[LatencyBucketIndex(8.0)], 1);
  int64_t total = 0;
  for (int64_t c : snap.latency_hist) total += c;
  EXPECT_EQ(total, snap.completed);
  EXPECT_EQ(snap.shards, 1);
}

}  // namespace
}  // namespace tranad::serve
