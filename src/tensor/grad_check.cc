#include "tensor/grad_check.h"

#include <cmath>
#include <sstream>

namespace tranad {

GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Tensor> inputs, float eps, float tol) {
  GradCheckResult result;

  // Analytic pass.
  std::vector<Variable> vars;
  vars.reserve(inputs.size());
  for (auto& t : inputs) vars.emplace_back(t, /*requires_grad=*/true);
  Variable loss = fn(vars);
  TRANAD_CHECK_EQ(loss.value().numel(), 1);
  loss.Backward();
  std::vector<Tensor> analytic;
  analytic.reserve(vars.size());
  for (auto& v : vars) analytic.push_back(v.grad());

  // Numeric pass: central differences, one element at a time.
  for (size_t vi = 0; vi < inputs.size(); ++vi) {
    for (int64_t i = 0; i < inputs[vi].numel(); ++i) {
      const float orig = inputs[vi][i];

      inputs[vi][i] = orig + eps;
      std::vector<Variable> vp;
      for (auto& t : inputs) vp.emplace_back(t, false);
      const float fp = fn(vp).value().Item();

      inputs[vi][i] = orig - eps;
      std::vector<Variable> vm;
      for (auto& t : inputs) vm.emplace_back(t, false);
      const float fm = fn(vm).value().Item();

      inputs[vi][i] = orig;
      const float numeric = (fp - fm) / (2.0f * eps);
      const float diff = std::fabs(numeric - analytic[vi][i]);
      if (diff > result.max_abs_err) {
        result.max_abs_err = diff;
        std::ostringstream oss;
        oss << "input " << vi << " elem " << i << ": analytic "
            << analytic[vi][i] << " vs numeric " << numeric;
        result.detail = oss.str();
      }
    }
  }
  result.ok = result.max_abs_err <= tol;
  return result;
}

}  // namespace tranad
