// Table 7: MERLIN implementation comparison — the naive brute-force
// discord comparator (standing in for the original MATLAB implementation)
// vs our DRAG-based MERLIN, per dataset: P/R/AUC/F1 and discovery time,
// with the relative deviation (y - x) / x the paper reports.
#include "bench/bench_util.h"

#include "common/stopwatch.h"
#include "eval/metrics.h"

namespace tranad::bench {
namespace {

struct MerlinResult {
  DetectionMetrics detection;
  double seconds = 0.0;
};

MerlinResult RunMerlin(const std::string& name, const Dataset& ds) {
  auto det = CreateDetector(name);
  TRANAD_CHECK(det.ok());
  (*det)->Fit(ds.train);
  Stopwatch timer;
  const Tensor scores = (*det)->Score(ds.test);
  MerlinResult out;
  out.seconds = timer.ElapsedSeconds();
  out.detection =
      EvaluateBestF1(DetectionScores(scores), ds.test.labels);
  return out;
}

std::string Dev(double ours, double original) {
  if (original == 0.0) return "--";
  return Fmt4((ours - original) / original);
}

int Main() {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<double>> csv;
  for (const auto& dataset_name : DatasetNames()) {
    const Dataset& ds = BenchDataset(dataset_name);
    const MerlinResult original = RunMerlin("MERLIN(naive)", ds);
    const MerlinResult ours = RunMerlin("MERLIN", ds);
    auto add = [&](const char* metric, double x, double y) {
      rows.push_back({dataset_name + std::string("/") + metric, Fmt4(x),
                      Fmt4(y), Dev(y, x)});
      csv.push_back({x, y});
    };
    add("P", original.detection.precision, ours.detection.precision);
    add("R", original.detection.recall, ours.detection.recall);
    add("AUC", original.detection.roc_auc, ours.detection.roc_auc);
    add("F1", original.detection.f1, ours.detection.f1);
    add("Time", original.seconds, ours.seconds);
    std::fflush(stdout);
  }
  PrintTable(
      "Table 7: MERLIN naive (original-style) vs DRAG implementation",
      {"Benchmark/Metric", "Original", "Ours", "Deviation"}, rows);
  const auto path =
      WriteBenchCsv("table7_merlin", {"original", "ours"}, csv);
  std::printf("\nCSV: %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
