#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace tranad::net {
namespace {

/// Feeds `bytes` into `reader` and expects exactly one clean frame out.
FrameView MustParseOne(FrameReader* reader, const std::vector<uint8_t>& bytes) {
  EXPECT_TRUE(reader->Feed(bytes.data(), bytes.size()).ok());
  FrameView frame;
  bool got = false;
  const Status st = reader->Next(&frame, &got);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(got);
  return frame;
}

TEST(WireFrameTest, ByteLevelLayoutMatchesTheSpec) {
  WirePing ping;
  ping.token = 0x1122334455667788ULL;
  std::vector<uint8_t> bytes;
  ping.EncodeTo(&bytes);

  // 12-byte header + 8-byte payload + 4-byte CRC.
  ASSERT_EQ(bytes.size(), kFrameOverheadBytes + 8);
  // Magic is "TADW" in little-endian byte order.
  EXPECT_EQ(bytes[0], 'T');
  EXPECT_EQ(bytes[1], 'A');
  EXPECT_EQ(bytes[2], 'D');
  EXPECT_EQ(bytes[3], 'W');
  EXPECT_EQ(bytes[4], kWireVersion);
  EXPECT_EQ(bytes[5], static_cast<uint8_t>(FrameType::kPing));
  EXPECT_EQ(bytes[6], 0);  // reserved
  EXPECT_EQ(bytes[7], 0);
  // Payload length, little-endian u32.
  EXPECT_EQ(bytes[8], 8);
  EXPECT_EQ(bytes[9], 0);
  EXPECT_EQ(bytes[10], 0);
  EXPECT_EQ(bytes[11], 0);
  // Token payload, little-endian u64.
  EXPECT_EQ(bytes[12], 0x88);
  EXPECT_EQ(bytes[19], 0x11);
}

TEST(WireFrameTest, AllFrameTypesRoundTrip) {
  FrameReader reader;
  std::vector<uint8_t> bytes;

  WirePing ping;
  ping.token = 42;
  ping.EncodeTo(&bytes, FrameType::kPong);
  WirePing ping2;
  ASSERT_TRUE(WirePing::Decode(MustParseOne(&reader, bytes), &ping2).ok());
  EXPECT_EQ(ping2.token, 42u);

  bytes.clear();
  WireSubmit submit;
  submit.stream_key = 0xdeadbeefcafef00dULL;
  submit.tag = 77;
  submit.values = {1.5f, -2.25f, 0.0f};
  submit.EncodeTo(&bytes);
  WireSubmit submit2;
  ASSERT_TRUE(WireSubmit::Decode(MustParseOne(&reader, bytes), &submit2).ok());
  EXPECT_EQ(submit2.stream_key, submit.stream_key);
  EXPECT_EQ(submit2.tag, 77u);
  EXPECT_EQ(submit2.values, submit.values);

  bytes.clear();
  WireVerdict verdict;
  verdict.stream_key = 9;
  verdict.tag = 8;
  verdict.seq = 123456789012345LL;
  verdict.status = Status::ResourceExhausted("queue full");
  verdict.anomalous = true;
  verdict.score = 3.14159265358979;
  verdict.threshold = 2.71828182845905;
  verdict.EncodeTo(&bytes);
  WireVerdict verdict2;
  ASSERT_TRUE(
      WireVerdict::Decode(MustParseOne(&reader, bytes), &verdict2).ok());
  EXPECT_EQ(verdict2.seq, verdict.seq);
  EXPECT_EQ(verdict2.status, verdict.status);
  EXPECT_TRUE(verdict2.anomalous);
  // Doubles cross the wire bit-exactly, not via text round-trip.
  EXPECT_EQ(verdict2.score, verdict.score);
  EXPECT_EQ(verdict2.threshold, verdict.threshold);

  bytes.clear();
  WireCreateStream create;
  create.stream_key = 4;
  create.rows = 2;
  create.dims = 3;
  create.values = {1, 2, 3, 4, 5, 6};
  create.EncodeTo(&bytes);
  WireCreateStream create2;
  ASSERT_TRUE(
      WireCreateStream::Decode(MustParseOne(&reader, bytes), &create2).ok());
  EXPECT_EQ(create2.rows, 2);
  EXPECT_EQ(create2.dims, 3);
  EXPECT_EQ(create2.values, create.values);

  bytes.clear();
  WireAck ack;
  ack.stream_key = 5;
  ack.status = Status::NotFound("no such stream");
  ack.EncodeTo(&bytes, FrameType::kCloseStreamAck);
  WireAck ack2;
  ASSERT_TRUE(WireAck::Decode(MustParseOne(&reader, bytes), &ack2).ok());
  EXPECT_EQ(ack2.stream_key, 5u);
  EXPECT_EQ(ack2.status, ack.status);

  bytes.clear();
  WireCloseStream close_req;
  close_req.stream_key = 6;
  close_req.EncodeTo(&bytes);
  WireCloseStream close2;
  ASSERT_TRUE(
      WireCloseStream::Decode(MustParseOne(&reader, bytes), &close2).ok());
  EXPECT_EQ(close2.stream_key, 6u);

  bytes.clear();
  WireStatsRequest stats_req;
  stats_req.EncodeTo(&bytes);
  WireStatsRequest stats_req2;
  ASSERT_TRUE(
      WireStatsRequest::Decode(MustParseOne(&reader, bytes), &stats_req2)
          .ok());

  bytes.clear();
  WireStatsReply reply;
  reply.snapshot.completed = 100;
  reply.snapshot.anomalies = 7;
  reply.snapshot.shards = 8;
  reply.snapshot.p99_latency_ms = 12.5;
  reply.snapshot.latency_hist.assign(serve::kLatencyHistBuckets, 0);
  reply.snapshot.latency_hist[10] = 100;
  reply.snapshot.batch_size_hist = {0, 3, 5};
  reply.EncodeTo(&bytes);
  WireStatsReply reply2;
  ASSERT_TRUE(
      WireStatsReply::Decode(MustParseOne(&reader, bytes), &reply2).ok());
  EXPECT_EQ(reply2.snapshot.completed, 100);
  EXPECT_EQ(reply2.snapshot.anomalies, 7);
  EXPECT_EQ(reply2.snapshot.shards, 8);
  EXPECT_EQ(reply2.snapshot.p99_latency_ms, 12.5);
  EXPECT_EQ(reply2.snapshot.latency_hist, reply.snapshot.latency_hist);
  EXPECT_EQ(reply2.snapshot.batch_size_hist,
            reply.snapshot.batch_size_hist);

  bytes.clear();
  WireReload reload;
  reload.path = "/models/tranad_v2.ckpt";
  reload.EncodeTo(&bytes);
  WireReload reload2;
  ASSERT_TRUE(WireReload::Decode(MustParseOne(&reader, bytes), &reload2).ok());
  EXPECT_EQ(reload2.path, reload.path);

  bytes.clear();
  WireDrain drain;
  drain.reason = "rolling restart";
  drain.EncodeTo(&bytes);
  WireDrain drain2;
  ASSERT_TRUE(WireDrain::Decode(MustParseOne(&reader, bytes), &drain2).ok());
  EXPECT_EQ(drain2.reason, drain.reason);
}

// v2 additions: the idempotent submit flag survives the wire, unknown flag
// bits are a protocol error (a future client cannot silently lose
// semantics against an old server), and the fault-tolerance counters in
// the stats snapshot round-trip.
TEST(WireFrameTest, V2SubmitFlagsAndStatsCountersRoundTrip) {
  FrameReader reader;
  std::vector<uint8_t> bytes;

  WireSubmit submit;
  submit.stream_key = 3;
  submit.tag = 4;
  submit.flags = kSubmitFlagIdempotent;
  submit.values = {1.0f};
  submit.EncodeTo(&bytes);
  WireSubmit submit2;
  ASSERT_TRUE(WireSubmit::Decode(MustParseOne(&reader, bytes), &submit2).ok());
  EXPECT_EQ(submit2.flags, kSubmitFlagIdempotent);

  // Flip an undefined flag bit in place and re-seal the CRC by re-encoding.
  bytes.clear();
  submit.flags = kSubmitFlagIdempotent | 0x40;
  submit.EncodeTo(&bytes);
  WireSubmit rejected;
  EXPECT_EQ(WireSubmit::Decode(MustParseOne(&reader, bytes), &rejected).code(),
            StatusCode::kInvalidArgument)
      << "unknown submit flag bits must be refused, not ignored";

  bytes.clear();
  WireStatsReply reply;
  reply.snapshot.shards_failed = 2;
  reply.snapshot.streams_migrated = 17;
  reply.snapshot.reconnects = 5;
  reply.snapshot.retries_deduped = 9;
  reply.snapshot.latency_hist.assign(serve::kLatencyHistBuckets, 0);
  reply.EncodeTo(&bytes);
  WireStatsReply reply2;
  ASSERT_TRUE(
      WireStatsReply::Decode(MustParseOne(&reader, bytes), &reply2).ok());
  EXPECT_EQ(reply2.snapshot.shards_failed, 2);
  EXPECT_EQ(reply2.snapshot.streams_migrated, 17);
  EXPECT_EQ(reply2.snapshot.reconnects, 5);
  EXPECT_EQ(reply2.snapshot.retries_deduped, 9);
}

TEST(WireFrameTest, ParsesAcrossArbitraryChunkBoundaries) {
  WireSubmit submit;
  submit.stream_key = 1;
  submit.tag = 2;
  submit.values = {1.0f, 2.0f};
  std::vector<uint8_t> bytes;
  submit.EncodeTo(&bytes);
  submit.tag = 3;
  submit.EncodeTo(&bytes);  // two frames back to back

  // Feed one byte at a time — the TCP worst case.
  FrameReader reader;
  int frames = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    ASSERT_TRUE(reader.Feed(&bytes[i], 1).ok());
    FrameView frame;
    bool got = false;
    ASSERT_TRUE(reader.Next(&frame, &got).ok());
    if (got) {
      WireSubmit decoded;
      ASSERT_TRUE(WireSubmit::Decode(frame, &decoded).ok());
      EXPECT_EQ(decoded.tag, frames == 0 ? 2u : 3u);
      ++frames;
    }
  }
  EXPECT_EQ(frames, 2);
}

TEST(WireFrameTest, TruncatedFrameIsNotAnErrorUntilCorrupted) {
  WirePing ping;
  std::vector<uint8_t> bytes;
  ping.EncodeTo(&bytes);

  FrameReader reader;
  // A prefix is just "need more bytes" — never an error, never a frame.
  ASSERT_TRUE(reader.Feed(bytes.data(), bytes.size() - 1).ok());
  FrameView frame;
  bool got = true;
  ASSERT_TRUE(reader.Next(&frame, &got).ok());
  EXPECT_FALSE(got);
  EXPECT_FALSE(reader.poisoned());
  // The last byte completes it.
  ASSERT_TRUE(reader.Feed(bytes.data() + bytes.size() - 1, 1).ok());
  ASSERT_TRUE(reader.Next(&frame, &got).ok());
  EXPECT_TRUE(got);
}

TEST(WireFrameTest, BadMagicPoisonsTheReader) {
  FrameReader reader;
  const uint8_t garbage[16] = {'G', 'A', 'R', 'B', 'A', 'G', 'E', '!',
                               1,   2,   3,   4,   5,   6,   7,   8};
  ASSERT_TRUE(reader.Feed(garbage, sizeof(garbage)).ok());
  FrameView frame;
  bool got = false;
  EXPECT_EQ(reader.Next(&frame, &got).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(reader.poisoned());
  // Poisoned for good: the stream has no trustworthy boundary anymore.
  EXPECT_EQ(reader.Next(&frame, &got).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reader.Feed(garbage, 1).code(), StatusCode::kInvalidArgument);
}

TEST(WireFrameTest, EveryHeaderCorruptionIsACleanError) {
  WirePing ping;
  ping.token = 99;
  std::vector<uint8_t> pristine;
  ping.EncodeTo(&pristine);

  struct Case {
    size_t offset;
    uint8_t value;
    const char* what;
  };
  const Case cases[] = {
      {1, 'X', "bad magic"},
      {4, 99, "unsupported version"},
      {5, 200, "unknown frame type"},
      {6, 1, "nonzero reserved"},
      {15, 0xAA, "payload bit flip -> CRC mismatch"},
      {pristine.size() - 1, 0xAA, "CRC trailer bit flip"},
  };
  for (const Case& c : cases) {
    std::vector<uint8_t> bytes = pristine;
    ASSERT_NE(bytes[c.offset], c.value) << c.what;
    bytes[c.offset] = c.value;
    FrameReader reader;
    ASSERT_TRUE(reader.Feed(bytes.data(), bytes.size()).ok());
    FrameView frame;
    bool got = false;
    EXPECT_EQ(reader.Next(&frame, &got).code(), StatusCode::kInvalidArgument)
        << c.what;
    EXPECT_FALSE(got) << c.what;
    EXPECT_TRUE(reader.poisoned()) << c.what;
  }
}

TEST(WireFrameTest, OversizedPayloadRejectedWithoutAllocation) {
  FrameReader reader(/*max_payload=*/1024);
  const size_t capacity_before = reader.capacity();

  // Valid header declaring a 16 MiB payload: rejected from the length
  // field alone — no buffer growth, no waiting for 16 MiB.
  std::vector<uint8_t> bytes = {'T', 'A', 'D', 'W', kWireVersion,
                                static_cast<uint8_t>(FrameType::kPing),
                                0,   0};
  const uint32_t huge = 16u << 20;
  bytes.push_back(static_cast<uint8_t>(huge));
  bytes.push_back(static_cast<uint8_t>(huge >> 8));
  bytes.push_back(static_cast<uint8_t>(huge >> 16));
  bytes.push_back(static_cast<uint8_t>(huge >> 24));
  ASSERT_TRUE(reader.Feed(bytes.data(), bytes.size()).ok());
  FrameView frame;
  bool got = false;
  EXPECT_EQ(reader.Next(&frame, &got).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reader.capacity(), capacity_before)
      << "adversarial length caused buffer growth";
}

TEST(WireFrameTest, DeclaredArrayLengthCannotSizeAllocations) {
  // A frame whose CRC is valid but whose payload *claims* 2^19 floats while
  // carrying none: the typed decoder must fail on bounds before sizing any
  // vector from the declared count.
  std::vector<uint8_t> payload;
  PayloadWriter w(&payload);
  w.U64(1);          // stream_key
  w.U64(2);          // tag
  w.U32(1u << 19);   // declared float count, no data behind it
  std::vector<uint8_t> bytes;
  AppendFrame(FrameType::kSubmit, payload.data(), payload.size(), &bytes);

  FrameReader reader;
  const FrameView frame = MustParseOne(&reader, bytes);
  WireSubmit submit;
  const Status st = WireSubmit::Decode(frame, &submit);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(submit.values.empty())
      << "decoder sized a buffer from an unbacked declared length";
}

TEST(WireFrameTest, TrailingPayloadBytesAreRejected) {
  std::vector<uint8_t> payload;
  PayloadWriter w(&payload);
  w.U64(123);  // a CloseStream payload is exactly one u64...
  w.U8(0xFF);  // ...so a smuggled extra byte must be rejected
  std::vector<uint8_t> bytes;
  AppendFrame(FrameType::kCloseStream, payload.data(), payload.size(), &bytes);

  FrameReader reader;
  const FrameView frame = MustParseOne(&reader, bytes);
  WireCloseStream req;
  EXPECT_EQ(WireCloseStream::Decode(frame, &req).code(),
            StatusCode::kInvalidArgument);
}

TEST(WireFrameTest, TypeMismatchIsRejectedByTypedDecoders) {
  WireCloseStream req;
  req.stream_key = 1;
  std::vector<uint8_t> bytes;
  req.EncodeTo(&bytes);
  FrameReader reader;
  const FrameView frame = MustParseOne(&reader, bytes);
  WireSubmit submit;
  EXPECT_EQ(WireSubmit::Decode(frame, &submit).code(),
            StatusCode::kInvalidArgument);
}

TEST(WireFrameTest, StatusCodesSurviveTheWireAndUnknownsMapToInternal) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
    const StatusCode code = static_cast<StatusCode>(c);
    EXPECT_EQ(StatusCodeFromWire(StatusCodeToWire(code)), code);
  }
  EXPECT_EQ(StatusCodeFromWire(200), StatusCode::kInternal);
}

TEST(WireFrameTest, ReaderNeverReallocatesAcrossSustainedTraffic) {
  FrameReader reader(/*max_payload=*/4096);
  const size_t capacity = reader.capacity();
  WireSubmit submit;
  submit.values.assign(64, 1.0f);
  std::vector<uint8_t> bytes;
  submit.EncodeTo(&bytes);

  // Thousands of frames through a buffer that can hold only a couple at a
  // time: compaction, not growth.
  for (int i = 0; i < 5000; ++i) {
    size_t off = 0;
    while (off < bytes.size()) {
      const size_t n = std::min(reader.writable(), bytes.size() - off);
      ASSERT_GT(n, 0u);
      ASSERT_TRUE(reader.Feed(bytes.data() + off, n).ok());
      off += n;
      FrameView frame;
      bool got = false;
      ASSERT_TRUE(reader.Next(&frame, &got).ok());
    }
  }
  EXPECT_EQ(reader.capacity(), capacity);
}

}  // namespace
}  // namespace tranad::net
