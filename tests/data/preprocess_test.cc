#include "data/preprocess.h"

#include <gtest/gtest.h>

namespace tranad {
namespace {

TEST(MinMaxNormalizerTest, MapsTrainIntoUnitRange) {
  Tensor train({4, 2}, {0, -10, 5, 0, 10, 10, 2, 5});
  MinMaxNormalizer norm;
  norm.Fit(train);
  const Tensor out = norm.Transform(train);
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_GE(out[i], 0.0f);
    EXPECT_LT(out[i], 1.0f);  // epsilon keeps max below 1
  }
  EXPECT_FLOAT_EQ(out.At({0, 0}), 0.0f);  // the min maps to 0
}

TEST(MinMaxNormalizerTest, PerDimensionRanges) {
  Tensor train({2, 2}, {0, 100, 10, 200});
  MinMaxNormalizer norm;
  norm.Fit(train);
  Tensor x({1, 2}, {5, 150});
  const Tensor out = norm.Transform(x);
  EXPECT_NEAR(out.At({0, 0}), 0.5f, 1e-3);
  EXPECT_NEAR(out.At({0, 1}), 0.5f, 1e-3);
}

TEST(MinMaxNormalizerTest, ClipBoundsOutOfRange) {
  Tensor train({2, 1}, {0, 1});
  MinMaxNormalizer norm;
  norm.Fit(train);
  Tensor wild({2, 1}, {100.0f, -100.0f});
  const Tensor hard = norm.Transform(wild, 0.0f);
  EXPECT_FLOAT_EQ(hard.At({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(hard.At({1, 0}), 0.0f);
  const Tensor soft = norm.Transform(wild, 4.0f);
  EXPECT_FLOAT_EQ(soft.At({0, 0}), 5.0f);
  EXPECT_FLOAT_EQ(soft.At({1, 0}), -4.0f);
}

TEST(MinMaxNormalizerTest, ConstantDimensionSafe) {
  Tensor train({3, 1}, {5, 5, 5});
  MinMaxNormalizer norm;
  norm.Fit(train);
  const Tensor out = norm.Transform(train);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(out[i]));
    EXPECT_NEAR(out[i], 0.0f, 1e-3);
  }
}

TEST(MinMaxNormalizerTest, TransformBeforeFitDies) {
  MinMaxNormalizer norm;
  EXPECT_DEATH(norm.Transform(Tensor({1, 1})), "CHECK");
}

TEST(MakeWindowsTest, ShapeAndAlignment) {
  Tensor series({5, 2});
  for (int64_t i = 0; i < 10; ++i) series[i] = static_cast<float>(i);
  const Tensor w = MakeWindows(series, 3);
  EXPECT_EQ(w.shape(), Shape({5, 3, 2}));
  // Window at t=4 holds x_2, x_3, x_4.
  EXPECT_FLOAT_EQ(w.At({4, 0, 0}), series.At({2, 0}));
  EXPECT_FLOAT_EQ(w.At({4, 2, 1}), series.At({4, 1}));
}

TEST(MakeWindowsTest, ReplicationPaddingAtStart) {
  Tensor series({4, 1}, {10, 20, 30, 40});
  const Tensor w = MakeWindows(series, 3);
  // t=0: all three entries replicate x_0.
  EXPECT_FLOAT_EQ(w.At({0, 0, 0}), 10.0f);
  EXPECT_FLOAT_EQ(w.At({0, 1, 0}), 10.0f);
  EXPECT_FLOAT_EQ(w.At({0, 2, 0}), 10.0f);
  // t=1: [x0, x0, x1].
  EXPECT_FLOAT_EQ(w.At({1, 1, 0}), 10.0f);
  EXPECT_FLOAT_EQ(w.At({1, 2, 0}), 20.0f);
}

TEST(MakeWindowsTest, WindowOneIsIdentity) {
  Tensor series({3, 2}, {1, 2, 3, 4, 5, 6});
  const Tensor w = MakeWindows(series, 1);
  EXPECT_EQ(w.shape(), Shape({3, 1, 2}));
  EXPECT_FLOAT_EQ(w.At({2, 0, 1}), 6.0f);
}

TEST(MakeWindowsTest, LastWindowEndsAtCurrentTimestamp) {
  // Invariant from §3.2: W_t ends at x_t for every t.
  Tensor series({6, 1}, {0, 1, 2, 3, 4, 5});
  const Tensor w = MakeWindows(series, 4);
  for (int64_t t = 0; t < 6; ++t) {
    EXPECT_FLOAT_EQ(w.At({t, 3, 0}), series.At({t, 0}));
  }
}

TEST(SplitTrainValTest, ChronologicalSplit) {
  Tensor data({10, 2});
  for (int64_t i = 0; i < 20; ++i) data[i] = static_cast<float>(i);
  const auto [train, val] = SplitTrainVal(data, 0.2);
  EXPECT_EQ(train.size(0), 8);
  EXPECT_EQ(val.size(0), 2);
  EXPECT_FLOAT_EQ(val.At({0, 0}), data.At({8, 0}));
}

TEST(SplitTrainValTest, ZeroFractionKeepsAll) {
  Tensor data({5, 1});
  const auto [train, val] = SplitTrainVal(data, 0.0);
  EXPECT_EQ(train.size(0), 5);
  EXPECT_EQ(val.size(0), 0);
}

TEST(SubsampleTrainTest, FractionLength) {
  TimeSeries ts;
  ts.values = Tensor({100, 3});
  Rng rng(1);
  const TimeSeries sub = SubsampleTrain(ts, 0.2, &rng);
  EXPECT_EQ(sub.length(), 20);
  EXPECT_EQ(sub.dims(), 3);
}

TEST(SubsampleTrainTest, FullFractionReturnsOriginal) {
  TimeSeries ts;
  ts.values = Tensor({50, 2});
  Rng rng(2);
  EXPECT_EQ(SubsampleTrain(ts, 1.0, &rng).length(), 50);
}

TEST(SubsampleTrainTest, ContiguousSlice) {
  TimeSeries ts;
  ts.values = Tensor({100, 1});
  for (int64_t i = 0; i < 100; ++i) {
    ts.values.At({i, 0}) = static_cast<float>(i);
  }
  Rng rng(3);
  const TimeSeries sub = SubsampleTrain(ts, 0.3, &rng);
  for (int64_t i = 1; i < sub.length(); ++i) {
    EXPECT_FLOAT_EQ(sub.values.At({i, 0}) - sub.values.At({i - 1, 0}), 1.0f);
  }
}

}  // namespace
}  // namespace tranad
