#include "serve/serve_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"

namespace tranad::serve {

ServeEngine::ServeEngine(TranADDetector* detector, ServeOptions options)
    : options_(options),
      stats_(options.max_batch),
      submit_queue_(options.queue_capacity),
      // One in-flight batch per worker bounds memory; the batcher blocks
      // (backpressure, not drop) when every worker is busy.
      work_queue_(std::max<int64_t>(options.num_workers, 1)),
      batcher_policy_(options.max_batch, options.max_wait_us) {
  TRANAD_CHECK(detector != nullptr);
  TRANAD_CHECK_GT(options_.num_workers, 0);
  TRANAD_CHECK(detector->model() != nullptr);  // must be fitted
  detector->FreezeForInference();
  // The caller's detector is borrowed, never owned; reloaded replacements
  // (shared with any batches still scoring under them) are owned.
  detector_ = std::shared_ptr<const TranADDetector>(
      detector, [](const TranADDetector*) {});
  dims_ = detector->model()->config().dims;
  window_ = detector->model()->config().window;
  batcher_ = std::thread([this] { BatcherLoop(); });
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int64_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (options_.watchdog_timeout_us > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

std::shared_ptr<const TranADDetector> ServeEngine::CurrentDetector() const {
  std::lock_guard<std::mutex> lock(detector_mu_);
  return detector_;
}

ServeEngine::~ServeEngine() { Stop(); }

void ServeEngine::Stop() { StopWith(nullptr); }

void ServeEngine::Kill(const Status& reason) { StopWith(&reason); }

void ServeEngine::StopWith(const Status* kill_reason) {
  // Advisory flag first: racing Submits and Reloads fail fast instead of
  // starting work the drain below would have to absorb.
  stop_requested_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return;
  if (kill_reason != nullptr) {
    // Failover path: the queued backlog completes with the kill reason
    // instead of being scored. A request lives in the submission queue XOR
    // a formed batch, so this is exactly-once; and queued requests have
    // touched no ring or POT, so the per-stream state stays exactly what a
    // sequential replay of the *scored* observations would produce — the
    // invariant the migration handoff depends on. Requests the batcher
    // already picked up score normally below.
    std::vector<ServeRequest> orphaned = submit_queue_.TryDrain();
    for (ServeRequest& r : orphaned) FailRequest(&r, *kill_reason);
  }
  submit_queue_.Close();
  // A concurrent ReloadModel holds pipeline_mu_ only until the in-flight
  // batches drain through the workers (which Stop never blocks), so the
  // batcher's exit below cannot deadlock against a reload — the reload
  // completes (or rolls back), then the batcher finishes draining.
  if (batcher_.joinable()) batcher_.join();
  // BatcherLoop closes the work queue on exit; workers drain it and stop.
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  {
    std::lock_guard<std::mutex> watchdog_lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  stopped_ = true;
}

Result<StreamId> ServeEngine::CreateStream(const TimeSeries& calibration) {
  if (calibration.length() <= 0) {
    return Status::InvalidArgument("calibration series is empty");
  }
  if (calibration.dims() != dims_) {
    return Status::InvalidArgument(
        "calibration has " + std::to_string(calibration.dims()) +
        " dims; detector expects " + std::to_string(dims_));
  }
  StreamId id;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    id = next_stream_id_++;
  }
  // Calibration scores the series through the detector's const path, so it
  // runs here on the caller thread — outside the registry lock — while
  // workers keep scoring traffic. The session keeps no detector pointer
  // (only the POT state and ring it derives here), so a later ReloadModel
  // never has to touch existing sessions.
  auto session = std::make_shared<StreamSession>(id, options_.pot);
  session->Calibrate(*CurrentDetector(), calibration);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.emplace(id, std::move(session));
  return id;
}

Result<StreamSessionState> ServeEngine::ExportStream(StreamId id) const {
  std::shared_ptr<StreamSession> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound("no stream with id " + std::to_string(id));
    }
    session = it->second;
  }
  return session->ExportState();
}

Result<StreamId> ServeEngine::ImportStream(const StreamSessionState& state) {
  if (stop_requested_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  if (state.window != window_ || state.dims != dims_) {
    return Status::InvalidArgument(
        "exported session geometry [window=" + std::to_string(state.window) +
        ", dims=" + std::to_string(state.dims) +
        "] does not match this engine [window=" + std::to_string(window_) +
        ", dims=" + std::to_string(dims_) + "]");
  }
  StreamId id;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    id = next_stream_id_++;
  }
  auto session = std::make_shared<StreamSession>(id, options_.pot);
  TRANAD_RETURN_IF_ERROR(session->RestoreState(state));
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.emplace(id, std::move(session));
  return id;
}

Status ServeEngine::CloseStream(StreamId id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (sessions_.erase(id) == 0) {
    return Status::NotFound("no stream with id " + std::to_string(id));
  }
  return Status::Ok();
}

Status ServeEngine::Submit(StreamId stream, const Tensor& observation,
                           VerdictCallback callback) {
  if (stop_requested_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  std::shared_ptr<StreamSession> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(stream);
    if (it == sessions_.end()) {
      return Status::NotFound("no stream with id " + std::to_string(stream));
    }
    session = it->second;
  }
  const int64_t m = dims_;
  if (observation.numel() != m) {
    return Status::InvalidArgument(
        "observation has " + std::to_string(observation.numel()) +
        " values; detector expects " + std::to_string(m));
  }
  if (session->quarantined()) {
    return Status::FailedPrecondition(
        "stream " + std::to_string(stream) + " is quarantined after " +
        std::to_string(session->non_finite_streak()) +
        " consecutive non-finite observations; call ReleaseQuarantine to "
        "resume");
  }
  // Poisoned-input gate: one NaN admitted into the ring would corrupt every
  // window overlapping it, so non-finite observations never enter the
  // pipeline — the stream's ring and POT state stay exactly as if the value
  // was never sent, and sibling streams are untouched.
  for (int64_t i = 0; i < m; ++i) {
    if (!std::isfinite(static_cast<double>(observation.data()[i]))) {
      stats_.RecordNonFiniteRejected();
      const int64_t streak = session->RecordNonFinite();
      if (options_.quarantine_after > 0 &&
          streak >= options_.quarantine_after && session->MarkQuarantined()) {
        stats_.RecordQuarantined();
      }
      return Status::InvalidArgument(
          "observation for stream " + std::to_string(stream) +
          " contains a non-finite value at dim " + std::to_string(i) +
          " (consecutive streak: " + std::to_string(streak) + ")");
    }
  }
  session->ResetNonFiniteStreak();

  ServeRequest request;
  request.session = std::move(session);
  request.observation = observation.Reshape({m});
  request.callback = std::move(callback);
  request.enqueued = std::chrono::steady_clock::now();
  if (options_.deadline_us > 0) {
    request.deadline =
        request.enqueued + std::chrono::microseconds(options_.deadline_us);
  }

  std::optional<ServeRequest> evicted;
  Status status;
  {
    std::lock_guard<std::mutex> admit_lock(admit_mu_);
    // Count the request as pending *before* it becomes visible to the
    // pipeline: a worker must never decrement below a concurrent Flush's
    // view of what was admitted.
    pending_.fetch_add(1, std::memory_order_acq_rel);
    request.seq = request.session->NextSeq();
    status = options_.shed_policy == ShedPolicy::kShedOldest
                 ? submit_queue_.PushEvictOldest(std::move(request), &evicted)
                 : submit_queue_.TryPush(std::move(request));
    if (!status.ok()) {
      DecrementPending(1);
      stats_.RecordRejected();
    } else {
      stats_.RecordSubmitted();
    }
  }
  // The evicted request completes outside admit_mu_ so its callback cannot
  // serialize (or deadlock) other submitters.
  if (evicted.has_value()) {
    FailRequest(&*evicted,
                Status::Unavailable(
                    "shed under overload: submission queue reached capacity " +
                    std::to_string(options_.queue_capacity) +
                    " and newer work arrived (shed-oldest policy)"));
  }
  return status;
}

void ServeEngine::FailRequest(ServeRequest* request, const Status& status) {
  stats_.RecordFailure(status.code());
  if (request->callback) {
    OnlineVerdict verdict;
    verdict.status = status;
    request->callback(request->session->id(), request->seq, verdict);
  }
  progress_.fetch_add(1, std::memory_order_acq_rel);
  DecrementPending(1);
}

Status ServeEngine::ReleaseQuarantine(StreamId id) {
  std::shared_ptr<StreamSession> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound("no stream with id " + std::to_string(id));
    }
    session = it->second;
  }
  session->ReleaseQuarantine();
  return Status::Ok();
}

void ServeEngine::BatcherLoop() {
  const int64_t k = window_;
  const int64_t m = dims_;
  int64_t ticket = 0;
  for (;;) {
    std::vector<ServeRequest> requests =
        batcher_policy_.NextBatch(&submit_queue_);
    if (requests.empty()) break;  // closed and drained

    // Chaos hook: a delay here simulates a slow/stalled batcher (the
    // watchdog's target); an error action is meaningless for a loop that
    // must keep draining, so only the side effect (sleep) is consumed.
    (void)TRANAD_FAILPOINT("serve.batcher.wakeup");

    // Deadline sweep at pickup: requests that expired while queued complete
    // with DeadlineExceeded and never reach a ring or a worker, so an
    // expired observation leaves no trace in the stream's state.
    if (options_.deadline_us > 0) {
      const auto now = std::chrono::steady_clock::now();
      std::vector<ServeRequest> live;
      live.reserve(requests.size());
      for (ServeRequest& r : requests) {
        if (now >= r.deadline) {
          FailRequest(&r, Status::DeadlineExceeded(
                              "deadline of " +
                              std::to_string(options_.deadline_us) +
                              "us expired while queued"));
        } else {
          live.push_back(std::move(r));
        }
      }
      requests = std::move(live);
      if (requests.empty()) continue;
    }

    // Ring updates happen only here, in admission order; a window is a pure
    // function of its stream's ring, so scores do not depend on how
    // requests were grouped into batches. Normalization is elementwise per
    // dimension, so one [B, m] pass equals B per-row passes bit-for-bit.
    const int64_t b = static_cast<int64_t>(requests.size());
    Tensor raw({b, m});
    for (int64_t i = 0; i < b; ++i) {
      const Tensor& obs = requests[static_cast<size_t>(i)].observation;
      std::copy(obs.data(), obs.data() + m, raw.data() + i * m);
    }
    WindowBatch batch;
    {
      // Batch formation is the reload boundary: under pipeline_mu_ the
      // batch binds one model snapshot (used for both normalization here
      // and scoring later) and registers itself in-flight, so ReloadModel
      // can only swap between fully formed, fully completed batches.
      std::lock_guard<std::mutex> pipeline_lock(pipeline_mu_);
      batch.detector = CurrentDetector();
      const Tensor normalized = batch.detector->NormalizeForScoring(raw);
      batch.windows = Tensor({b, k, m});
      for (int64_t i = 0; i < b; ++i) {
        ServeRequest& r = requests[static_cast<size_t>(i)];
        r.session->ring()->PushRow(normalized.data() + i * m);
        r.session->ring()->AssembleInto(batch.windows.data() + i * k * m);
      }
      std::lock_guard<std::mutex> drain_lock(drain_mu_);
      ++in_flight_batches_;
    }
    batch.requests = std::move(requests);
    batch.ticket = ticket++;
    stats_.RecordBatch(static_cast<int64_t>(batch.requests.size()));
    progress_.fetch_add(1, std::memory_order_acq_rel);
    // Push outside pipeline_mu_: it may block on a full work queue, and a
    // concurrent ReloadModel must still be able to observe the already-
    // registered in-flight batch drain through the workers.
    work_queue_.Push(std::move(batch));
  }
  work_queue_.Close();
}

void ServeEngine::WorkerLoop() {
  // With several serve workers the inter-request parallelism already covers
  // the cores; letting each forward pass also fan out over the shared
  // compute pool would oversubscribe it. Pin this worker's kernels to
  // inline (single-thread) execution in that case — results are
  // bit-identical either way, per the ParallelFor contract.
  std::optional<InlineComputeGuard> inline_guard;
  if (options_.num_workers > 1) inline_guard.emplace();
  const int64_t m = dims_;
  for (;;) {
    std::optional<WindowBatch> batch = work_queue_.Pop();
    if (!batch.has_value()) break;

    // Chaos hook: a delay stalls this worker mid-pipeline; an error skips
    // scoring and fails the whole batch through the same ordered-completion
    // protocol below, so tickets advance and no sibling batch wedges.
    const failpoint::Action fault = TRANAD_FAILPOINT("serve.worker.score");
    Tensor scores;
    if (!fault.is_error()) {
      // The expensive part runs concurrently across workers: one batched
      // two-phase forward through the frozen model (const, NoGrad) — the
      // exact snapshot the batch was normalized against.
      scores = batch->detector->ScoreWindows(batch->windows);
    }

    // Completions are applied in ticket order under one lock: POT updates
    // stay per-stream-sequential and callbacks observe a consistent order.
    std::unique_lock<std::mutex> lock(completion_mu_);
    completion_cv_.wait(
        lock, [&] { return next_completion_ticket_ == batch->ticket; });
    const auto now = std::chrono::steady_clock::now();
    const int64_t b = static_cast<int64_t>(batch->requests.size());
    for (int64_t i = 0; i < b; ++i) {
      ServeRequest& r = batch->requests[static_cast<size_t>(i)];
      OnlineVerdict verdict;
      if (fault.is_error()) {
        // Injected scoring fault: the observation already entered the ring
        // (admission-order invariant), but no score exists, so the POT tail
        // is left untouched and the callback carries the fault's status.
        verdict.status = fault.ToStatus("serve.worker.score");
        stats_.RecordFailure(verdict.status.code());
        if (r.callback) r.callback(r.session->id(), r.seq, verdict);
        continue;
      }
      verdict.dim_scores = Tensor({m});
      double total = 0.0;
      for (int64_t d = 0; d < m; ++d) {
        const float s = scores[i * m + d];
        verdict.dim_scores[d] = s;
        total += s;
      }
      verdict.score = total / static_cast<double>(m);
      verdict.anomalous = r.session->spot()->Observe(verdict.score);
      verdict.threshold = r.session->spot()->threshold();
      const double latency_ms =
          std::chrono::duration<double, std::milli>(now - r.enqueued).count();
      stats_.RecordCompletion(latency_ms, verdict.anomalous);
      if (r.callback) r.callback(r.session->id(), r.seq, verdict);
    }
    ++next_completion_ticket_;
    lock.unlock();
    completion_cv_.notify_all();
    progress_.fetch_add(1, std::memory_order_acq_rel);

    // Release the batch's model snapshot before signaling the drain, so a
    // waiting ReloadModel observes the old detector fully quiesced.
    batch->detector.reset();
    {
      std::lock_guard<std::mutex> drain_lock(drain_mu_);
      --in_flight_batches_;
    }
    drain_cv_.notify_all();

    DecrementPending(b);
  }
}

Status ServeEngine::ReloadModel(const std::string& path) {
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  if (stop_requested_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  Result<std::unique_ptr<TranADDetector>> loaded_or =
      TranADDetector::FromCheckpoint(path);
  if (!loaded_or.ok()) {
    stats_.RecordReload(false);
    return loaded_or.status();
  }
  std::unique_ptr<TranADDetector> loaded = std::move(loaded_or).value();
  const TranADConfig& config = loaded->model()->config();
  if (config.dims != dims_ || config.window != window_) {
    stats_.RecordReload(false);
    return Status::InvalidArgument(
        "checkpoint geometry [dims=" + std::to_string(config.dims) +
        ", window=" + std::to_string(config.window) +
        "] does not match the serving model [dims=" + std::to_string(dims_) +
        ", window=" + std::to_string(window_) + "]");
  }
  loaded->FreezeForInference();
  std::shared_ptr<const TranADDetector> replacement(std::move(loaded));

  // Micro-batch-boundary swap: block new batch formation, let every formed
  // batch finish scoring and completing, then flip the pointer. Queued
  // submissions stay queued throughout and score under the new model.
  std::lock_guard<std::mutex> pipeline_lock(pipeline_mu_);
  std::unique_lock<std::mutex> drain_lock(drain_mu_);
  drain_cv_.wait(drain_lock, [&] { return in_flight_batches_ == 0; });
  {
    std::lock_guard<std::mutex> detector_lock(detector_mu_);
    std::shared_ptr<const TranADDetector> previous = detector_;
    detector_ = replacement;
    // Chaos hook: a fault here models a failure after the pointer flip but
    // before the swap commits (e.g. a validation pass on the live model).
    // Rollback restores the previous detector under the same lock hold, so
    // no batch can ever form against a half-committed swap.
    if (auto fp = TRANAD_FAILPOINT("serve.reload.swap"); fp.is_error()) {
      detector_ = std::move(previous);
      stats_.RecordReload(false);
      return fp.ToStatus("serve.reload.swap (rolled back to previous model)");
    }
  }
  stats_.RecordReload(true);
  return Status::Ok();
}

void ServeEngine::WatchdogLoop() {
  const auto timeout = std::chrono::microseconds(options_.watchdog_timeout_us);
  const auto poll = std::max(timeout / 4, std::chrono::microseconds(100));
  int64_t last_progress = progress_.load(std::memory_order_acquire);
  auto last_change = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  for (;;) {
    if (watchdog_cv_.wait_for(lock, poll, [&] { return watchdog_stop_; })) {
      return;
    }
    const int64_t now_progress = progress_.load(std::memory_order_acquire);
    const auto now = std::chrono::steady_clock::now();
    if (now_progress != last_progress) {
      last_progress = now_progress;
      last_change = now;
      continue;
    }
    if (pending_.load(std::memory_order_acquire) == 0 ||
        now - last_change < timeout) {
      continue;
    }
    // Stall: submissions are pending but nothing has moved for a full
    // timeout. Fail everything still in the submission queue — those
    // requests have not touched any ring, so failing them is safe and
    // exactly-once (a request lives in the submit queue XOR in a formed
    // batch). Work already inside the pipeline is left alone: its tickets
    // belong to the ordered-completion protocol and it will complete if its
    // stage ever resumes.
    std::vector<ServeRequest> stalled = submit_queue_.TryDrain();
    if (stalled.empty()) {
      // Everything pending is already inside the pipeline (formed batches);
      // those tickets belong to the workers and will complete when the
      // stall clears. Nothing to unwedge — rearm and keep watching.
      last_change = now;
      continue;
    }
    stats_.RecordWatchdogStall();
    lock.unlock();
    for (ServeRequest& r : stalled) {
      FailRequest(
          &r, Status::Internal(
                  "watchdog: no pipeline progress for " +
                  std::to_string(options_.watchdog_timeout_us) +
                  "us with " +
                  std::to_string(pending_.load(std::memory_order_acquire)) +
                  " pending; failing " + std::to_string(stalled.size()) +
                  " queued submission(s) (batcher or worker stalled)"));
    }
    lock.lock();
    last_change = std::chrono::steady_clock::now();
    last_progress = progress_.load(std::memory_order_acquire);
  }
}

void ServeEngine::DecrementPending(int64_t n) {
  if (pending_.fetch_sub(n, std::memory_order_acq_rel) == n) {
    // Dropped to zero: wake any Flush(). The empty critical section orders
    // the notify after a concurrent Flush's predicate check.
    { std::lock_guard<std::mutex> lock(pending_mu_); }
    pending_cv_.notify_all();
  }
}

void ServeEngine::Flush() {
  std::unique_lock<std::mutex> lock(pending_mu_);
  pending_cv_.wait(
      lock, [&] { return pending_.load(std::memory_order_acquire) == 0; });
}

ServeStatsSnapshot ServeEngine::stats() const {
  return stats_.Snapshot(submit_queue_.size());
}

int64_t ServeEngine::num_streams() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return static_cast<int64_t>(sessions_.size());
}

}  // namespace tranad::serve
