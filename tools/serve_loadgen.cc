// Load generator for the serving fleet. Three modes share one flag set:
//
//   in-process (default): trains a small TranAD detector on a synthetic
//     dataset, stands up a ShardRouter fleet (--shards engines behind the
//     consistent-hash ring), registers a fleet of streams, and drives them
//     from closed-loop submitter threads while printing a live stats line —
//     queue depth, batch coalescing, latency percentiles, rejection rate.
//     Use it to explore the max_batch / max_wait latency-throughput
//     trade-off, shard scaling, and backpressure under overload.
//
//   socket (--connect HOST:PORT): drives a remote fleet started with
//     `tranad_cli serve` over the binary wire protocol instead of an
//     in-process engine. No local training; streams are registered and
//     calibrated over the wire, stats lines come from the Stats RPC.
//
//   parity (--connect ... --verify-model CKPT): submits a fixed
//     deterministic schedule (--steps observations per stream), then loads
//     the same checkpoint the server is serving and replays the identical
//     schedule through a sequential OnlineTranAD. Every socket verdict must
//     match the replay bit for bit (score, threshold, anomaly flag); any
//     mismatch fails the run. This is the end-to-end proof that the wire
//     path changes nothing about the math. Assumes the server was started
//     with the same --pot profile (default SMAP) and a model whose
//     dimensionality matches the synthetic dataset (--scale).
//
// Socket-mode resilience: the dial retries ECONNREFUSED with capped
// exponential backoff (no more "loadgen raced the server to the port"
// flakes), --connect-timeout-ms bounds each dial, and --retry-ms N turns
// the fixed-schedule submits into tracked idempotent submissions — lost or
// shard-failover-refused observations are resent until a final verdict
// arrives, the server dedups by (stream, tag), and the client suppresses
// duplicate verdicts. With --verify-model this proves a failover happened
// *and* changed nothing about the math.
//
// Usage:
//   serve_loadgen [--streams N] [--submitters N] [--workers N]
//                 [--shards N] [--max-batch N] [--max-wait-us N]
//                 [--queue N] [--duration-s N] [--epochs N] [--scale F]
//                 [--connect HOST:PORT] [--steps N] [--verify-model CKPT]
//                 [--pot NAME] [--connect-timeout-ms N] [--retry-ms N]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "core/online_detector.h"
#include "core/pipeline.h"
#include "core/tranad_detector.h"
#include "data/synthetic.h"
#include "net/client.h"
#include "serve/shard_router.h"

namespace tranad {
namespace {

struct Args {
  int64_t streams = 16;
  int64_t submitters = 2;
  int64_t workers = 4;
  int64_t shards = 1;
  int64_t max_batch = 32;
  int64_t max_wait_us = 200;
  int64_t queue = 1024;
  int64_t duration_s = 10;
  int64_t epochs = 2;
  int64_t steps = 0;  // > 0: fixed schedule instead of a closed loop
  double scale = 0.2;
  std::string connect;       // "host:port" -> socket mode
  std::string verify_model;  // checkpoint for the bit-exact parity replay
  std::string pot = "SMAP";
  int64_t connect_timeout_ms = 5000;
  int64_t retry_ms = 0;  // > 0: tracked idempotent submits, resent every N ms
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  auto next_i64 = [&](int& i) { return std::atoll(argv[++i]); };
  auto next_str = [&](int& i) { return std::string(argv[++i]); };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--streams")) {
      args.streams = next_i64(i);
    } else if (!std::strcmp(a, "--submitters")) {
      args.submitters = next_i64(i);
    } else if (!std::strcmp(a, "--workers")) {
      args.workers = next_i64(i);
    } else if (!std::strcmp(a, "--shards")) {
      args.shards = next_i64(i);
    } else if (!std::strcmp(a, "--max-batch")) {
      args.max_batch = next_i64(i);
    } else if (!std::strcmp(a, "--max-wait-us")) {
      args.max_wait_us = next_i64(i);
    } else if (!std::strcmp(a, "--queue")) {
      args.queue = next_i64(i);
    } else if (!std::strcmp(a, "--duration-s")) {
      args.duration_s = next_i64(i);
    } else if (!std::strcmp(a, "--epochs")) {
      args.epochs = next_i64(i);
    } else if (!std::strcmp(a, "--steps")) {
      args.steps = next_i64(i);
    } else if (!std::strcmp(a, "--scale")) {
      args.scale = std::atof(argv[++i]);
    } else if (!std::strcmp(a, "--connect")) {
      args.connect = next_str(i);
    } else if (!std::strcmp(a, "--verify-model")) {
      args.verify_model = next_str(i);
    } else if (!std::strcmp(a, "--pot")) {
      args.pot = next_str(i);
    } else if (!std::strcmp(a, "--connect-timeout-ms")) {
      args.connect_timeout_ms = next_i64(i);
    } else if (!std::strcmp(a, "--retry-ms")) {
      args.retry_ms = next_i64(i);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      std::exit(2);
    }
  }
  auto require = [](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "invalid arguments: %s\n", what);
      std::exit(2);
    }
  };
  require(args.streams > 0, "--streams must be >= 1");
  require(args.submitters > 0, "--submitters must be >= 1");
  require(args.workers > 0, "--workers must be >= 1");
  require(args.shards > 0, "--shards must be >= 1");
  require(args.max_batch > 0, "--max-batch must be >= 1");
  require(args.max_wait_us >= 0, "--max-wait-us must be >= 0");
  require(args.queue > 0, "--queue must be >= 1");
  require(args.duration_s > 0, "--duration-s must be >= 1");
  require(args.epochs > 0, "--epochs must be >= 1");
  require(args.steps >= 0, "--steps must be >= 0");
  require(args.scale > 0.0, "--scale must be > 0");
  require(args.verify_model.empty() || !args.connect.empty(),
          "--verify-model requires --connect (it checks the socket path)");
  require(args.connect_timeout_ms > 0, "--connect-timeout-ms must be >= 1");
  require(args.retry_ms >= 0, "--retry-ms must be >= 0");
  require(args.retry_ms == 0 || !args.connect.empty(),
          "--retry-ms requires --connect (it retries over the wire)");
  if (!args.verify_model.empty() && args.steps == 0) args.steps = 64;
  return args;
}

// Client-chosen correlation tag: stream index in the high 32 bits, step in
// the low 32 (the server echoes tags verbatim on verdicts).
uint64_t TagOf(int64_t s, int64_t t) {
  return (static_cast<uint64_t>(s) << 32) | static_cast<uint64_t>(t);
}

// Client stream keys start at 1000 so logs visually separate them from
// stream/step indices.
uint64_t KeyOf(int64_t s) { return 1000 + static_cast<uint64_t>(s); }

void FillRow(const TimeSeries& series, int64_t t, Tensor* row) {
  for (int64_t d = 0; d < series.dims(); ++d) {
    (*row)[d] = series.values.At({t, d});
  }
}

void PrintStatsLine(double elapsed_s, const serve::ServeStatsSnapshot& s,
                    int64_t anomalies) {
  std::printf(
      "t=%4.0fs  %8.1f obs/s  done %lld  rej %lld  depth %lld  "
      "batch %4.1f  p50 %6.2fms  p99 %6.2fms  shards %lld  anomalies %lld\n",
      elapsed_s, s.throughput_per_sec, static_cast<long long>(s.completed),
      static_cast<long long>(s.rejected),
      static_cast<long long>(s.queue_depth), s.mean_batch_size,
      s.p50_latency_ms, s.p99_latency_ms, static_cast<long long>(s.shards),
      static_cast<long long>(anomalies));
}

void PrintFinal(const serve::ServeStatsSnapshot& s) {
  std::printf(
      "\nfinal: %lld completed, %lld rejected, %.1f obs/s, mean batch %.1f, "
      "%lld shards\n",
      static_cast<long long>(s.completed), static_cast<long long>(s.rejected),
      s.throughput_per_sec, s.mean_batch_size,
      static_cast<long long>(s.shards));
  std::printf("batch-size histogram:");
  for (size_t b = 1; b < s.batch_size_hist.size(); ++b) {
    if (s.batch_size_hist[b] > 0) {
      std::printf(" %zu:%lld", b,
                  static_cast<long long>(s.batch_size_hist[b]));
    }
  }
  std::printf("\n");
}

// ---- In-process mode: train locally, serve through a ShardRouter. ----

int RunLocal(const Args& args) {
  std::printf("loadgen: training detector (scale %.2f, %lld epochs)...\n",
              args.scale, static_cast<long long>(args.epochs));
  auto config = SmapConfig(args.scale);
  const Dataset dataset = GenerateSynthetic(config);
  TranADConfig model_config;
  model_config.window = 10;
  model_config.d_ff = 32;
  TrainOptions train;
  train.max_epochs = args.epochs;
  TranADDetector detector(model_config, train);
  detector.Fit(dataset.train);

  serve::ShardRouterOptions options;
  options.num_shards = args.shards;
  options.shard.num_workers = args.workers;
  options.shard.queue_capacity = args.queue;
  options.shard.max_batch = args.max_batch;
  options.shard.max_wait_us = args.max_wait_us;
  options.shard.pot = PotParamsForDataset(args.pot);
  serve::ShardRouter router(&detector, options);

  std::printf("loadgen: calibrating %lld streams on %lld shards...\n",
              static_cast<long long>(args.streams),
              static_cast<long long>(args.shards));
  for (int64_t s = 0; s < args.streams; ++s) {
    const Status created = router.CreateStream(KeyOf(s), dataset.train);
    if (!created.ok()) {
      std::fprintf(stderr, "CreateStream: %s\n",
                   created.ToString().c_str());
      return 1;
    }
  }

  // Closed-loop submitters: each hammers its share of the streams as fast
  // as admission allows; rejected submissions spin-retry (that *is* the
  // backpressure signal, visible in the rejected counter).
  std::atomic<bool> stop{false};
  std::atomic<int64_t> anomalies{0};
  std::vector<std::thread> submitters;
  const int64_t m = dataset.dims();
  for (int64_t w = 0; w < args.submitters; ++w) {
    submitters.emplace_back([&, w] {
      Tensor row({m});
      int64_t i = w;  // stride the streams across submitters
      while (!stop.load(std::memory_order_relaxed)) {
        const int64_t s = i % args.streams;
        const int64_t t = (i / args.streams) % dataset.test.length();
        FillRow(dataset.test, t, &row);
        router.Submit(KeyOf(s), row,
                      [&](serve::StreamId, int64_t, const OnlineVerdict& v) {
                        if (v.anomalous) anomalies.fetch_add(1);
                      });
        i += args.submitters;
      }
    });
  }

  Stopwatch watch;
  while (watch.ElapsedSeconds() < static_cast<double>(args.duration_s)) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    PrintStatsLine(watch.ElapsedSeconds(), router.stats(), anomalies.load());
  }
  stop.store(true);
  for (auto& t : submitters) t.join();
  router.Flush();
  PrintFinal(router.stats());
  return 0;
}

// ---- Socket mode: drive a remote `tranad_cli serve` fleet. ----

struct SocketVerdicts {
  std::mutex mu;
  std::vector<std::vector<net::WireVerdict>> got;  // [stream][step]
  std::atomic<int64_t> received{0};
  std::atomic<int64_t> anomalies{0};
  std::atomic<int64_t> failed{0};
};

int VerifyAgainstReplay(const Args& args, const Dataset& dataset,
                        const SocketVerdicts& verdicts) {
  std::printf("loadgen: replaying %lld steps through OnlineTranAD (%s)...\n",
              static_cast<long long>(args.steps), args.verify_model.c_str());
  auto detector = TranADDetector::FromCheckpoint(args.verify_model);
  if (!detector.ok()) {
    std::fprintf(stderr, "verify: %s\n",
                 detector.status().ToString().c_str());
    return 1;
  }
  OnlineTranAD online(detector->get(), PotParamsForDataset(args.pot));
  online.Calibrate(dataset.train);
  std::vector<OnlineVerdict> expected;
  Tensor row({dataset.dims()});
  for (int64_t t = 0; t < args.steps; ++t) {
    FillRow(dataset.test, t % dataset.test.length(), &row);
    expected.push_back(online.Observe(row));
  }

  // Every stream saw the same calibration and the same observation order,
  // so one sequential replay is the oracle for all of them.
  int64_t mismatches = 0;
  for (int64_t s = 0; s < args.streams; ++s) {
    for (int64_t t = 0; t < args.steps; ++t) {
      const net::WireVerdict& v =
          verdicts.got[static_cast<size_t>(s)][static_cast<size_t>(t)];
      const OnlineVerdict& e = expected[static_cast<size_t>(t)];
      const bool match = v.status.ok() && v.seq == t && v.score == e.score &&
                         v.threshold == e.threshold &&
                         v.anomalous == e.anomalous;
      if (!match) {
        if (++mismatches <= 5) {
          std::fprintf(stderr,
                       "verify: stream %lld step %lld: socket "
                       "(seq=%lld score=%.17g thr=%.17g anom=%d st=%s) != "
                       "replay (score=%.17g thr=%.17g anom=%d)\n",
                       static_cast<long long>(s), static_cast<long long>(t),
                       static_cast<long long>(v.seq), v.score, v.threshold,
                       v.anomalous ? 1 : 0, v.status.ToString().c_str(),
                       e.score, e.threshold, e.anomalous ? 1 : 0);
        }
      }
    }
  }
  const int64_t total = args.streams * args.steps;
  if (mismatches > 0) {
    std::fprintf(stderr, "verify: FAIL — %lld/%lld verdicts diverged\n",
                 static_cast<long long>(mismatches),
                 static_cast<long long>(total));
    return 1;
  }
  std::printf("verify: PASS — %lld socket verdicts bit-identical to the "
              "sequential OnlineTranAD replay\n",
              static_cast<long long>(total));
  return 0;
}

int RunSocket(const Args& args) {
  const size_t colon = args.connect.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == args.connect.size()) {
    std::fprintf(stderr, "--connect wants HOST:PORT, got %s\n",
                 args.connect.c_str());
    return 2;
  }
  const std::string host = args.connect.substr(0, colon);
  const int port = std::atoi(args.connect.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "--connect port out of range: %s\n",
                 args.connect.c_str());
    return 2;
  }

  auto config = SmapConfig(args.scale);
  const Dataset dataset = GenerateSynthetic(config);
  const int64_t m = dataset.dims();
  const bool fixed = args.steps > 0;

  SocketVerdicts verdicts;
  if (fixed) {
    verdicts.got.assign(
        static_cast<size_t>(args.streams),
        std::vector<net::WireVerdict>(static_cast<size_t>(args.steps)));
  }
  net::ClientOptions copts;
  copts.connect_timeout_ms = args.connect_timeout_ms;
  if (args.retry_ms > 0) {
    copts.submit_retry_ms = args.retry_ms;
    copts.reconnect_max_attempts = 20;
    copts.keepalive_ms = 2000;
  }
  net::NetClient client(copts);
  client.set_verdict_handler([&](const net::WireVerdict& v) {
    if (!v.status.ok()) {
      verdicts.failed.fetch_add(1);
    } else if (v.anomalous) {
      verdicts.anomalies.fetch_add(1);
    }
    if (fixed) {
      const int64_t s = static_cast<int64_t>(v.tag >> 32);
      const int64_t t = static_cast<int64_t>(v.tag & 0xffffffffu);
      if (s < args.streams && t < args.steps) {
        std::lock_guard<std::mutex> lock(verdicts.mu);
        verdicts.got[static_cast<size_t>(s)][static_cast<size_t>(t)] = v;
      }
    }
    verdicts.received.fetch_add(1);
  });
  // Backoff through the startup race: a loadgen launched alongside the
  // server sees ECONNREFUSED until the listen socket is up.
  Status st = client.ConnectWithBackoff(host, static_cast<uint16_t>(port),
                                        /*max_attempts=*/20);
  if (!st.ok()) {
    std::fprintf(stderr, "connect %s: %s\n", args.connect.c_str(),
                 st.ToString().c_str());
    return 1;
  }

  std::printf("loadgen: calibrating %lld streams over the wire...\n",
              static_cast<long long>(args.streams));
  for (int64_t s = 0; s < args.streams; ++s) {
    st = client.CreateStream(KeyOf(s), dataset.train.values);
    if (!st.ok()) {
      std::fprintf(stderr, "CreateStream(%lld): %s\n",
                   static_cast<long long>(KeyOf(s)),
                   st.ToString().c_str());
      return 1;
    }
  }

  // Keep a bounded number of observations in flight: far enough ahead to
  // keep every shard busy, bounded so a slow fleet backpressures the
  // client instead of ballooning the server's queues and outboxes.
  const int64_t kWindow = 512;
  std::atomic<int64_t> sent{0};
  auto await_window = [&] {
    while (sent.load() - verdicts.received.load() >= kWindow) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  // Tracked submits guarantee exactly-once verdict delivery per tag, which
  // makes the fixed schedule immune to shard failovers mid-run — the retry
  // lands on the stream's migrated home. Tags are unique per (stream, step)
  // there, as tracking requires.
  const bool tracked = args.retry_ms > 0;
  if (fixed) {
    Tensor row({m});
    for (int64_t t = 0; t < args.steps; ++t) {
      FillRow(dataset.test, t % dataset.test.length(), &row);
      for (int64_t s = 0; s < args.streams; ++s) {
        await_window();
        st = tracked
                 ? client.SubmitTracked(KeyOf(s), TagOf(s, t), row.data(), m)
                 : client.Submit(KeyOf(s), TagOf(s, t), row.data(), m);
        if (!st.ok()) {
          std::fprintf(stderr, "Submit: %s\n", st.ToString().c_str());
          return 1;
        }
        sent.fetch_add(1);
      }
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (verdicts.received.load() < sent.load()) {
      if (std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr, "timed out: %lld/%lld verdicts arrived\n",
                     static_cast<long long>(verdicts.received.load()),
                     static_cast<long long>(sent.load()));
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::printf("loadgen: %lld verdicts received (%lld failed)\n",
                static_cast<long long>(verdicts.received.load()),
                static_cast<long long>(verdicts.failed.load()));
  } else {
    // Closed-loop duration mode over the socket.
    std::atomic<bool> stop{false};
    std::vector<std::thread> submitters;
    std::atomic<bool> send_failed{false};
    for (int64_t w = 0; w < args.submitters; ++w) {
      submitters.emplace_back([&, w] {
        Tensor row({m});
        int64_t i = w;
        while (!stop.load(std::memory_order_relaxed)) {
          const int64_t s = i % args.streams;
          const int64_t t = (i / args.streams) % dataset.test.length();
          FillRow(dataset.test, t, &row);
          await_window();
          if (!client.Submit(KeyOf(s), TagOf(s, t), row.data(), m).ok()) {
            send_failed.store(true);
            return;
          }
          sent.fetch_add(1);
          i += args.submitters;
        }
      });
    }
    Stopwatch watch;
    while (watch.ElapsedSeconds() < static_cast<double>(args.duration_s) &&
           !send_failed.load()) {
      std::this_thread::sleep_for(std::chrono::seconds(1));
      auto stats = client.Stats();
      if (stats.ok()) {
        PrintStatsLine(watch.ElapsedSeconds(), *stats,
                       verdicts.anomalies.load());
      }
    }
    stop.store(true);
    for (auto& t : submitters) t.join();
    if (send_failed.load()) {
      std::fprintf(stderr, "a submitter lost the connection\n");
      return 1;
    }
  }

  auto stats = client.Stats();
  if (stats.ok()) PrintFinal(*stats);
  if (tracked) {
    const net::ClientCounters cc = client.counters();
    std::printf(
        "client: %lld reconnects, %lld retries sent, %lld duplicate "
        "verdicts deduped, %lld keepalive pings\n",
        static_cast<long long>(cc.reconnects),
        static_cast<long long>(cc.retries_sent),
        static_cast<long long>(cc.retries_deduped),
        static_cast<long long>(cc.keepalive_pings));
  }
  client.Close();

  if (!args.verify_model.empty()) {
    return VerifyAgainstReplay(args, dataset, verdicts);
  }
  return 0;
}

int Main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  if (!args.connect.empty()) return RunSocket(args);
  return RunLocal(args);
}

}  // namespace
}  // namespace tranad

int main(int argc, char** argv) { return tranad::Main(argc, argv); }
