# Empty compiler generated dependencies file for fig3_focus_attention.
# This may be replaced when dependencies are built.
