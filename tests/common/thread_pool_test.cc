#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "tensor/variable.h"

namespace tranad {
namespace {

// Restores the pool size a test changed, so suites can run in any order.
class ThreadCountRestorer {
 public:
  ThreadCountRestorer() : saved_(NumComputeThreads()) {}
  ~ThreadCountRestorer() { SetNumComputeThreads(saved_); }

 private:
  int64_t saved_;
};

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadCountRestorer restore;
  SetNumComputeThreads(4);
  constexpr int64_t kN = 100000;
  std::vector<std::atomic<int>> counts(kN);
  for (auto& c : counts) c.store(0);
  ParallelFor(0, kN, 128, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      counts[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyAndSingletonRanges) {
  std::atomic<int64_t> visited{0};
  ParallelFor(0, 0, 1, [&](int64_t lo, int64_t hi) {
    visited.fetch_add(hi - lo);
  });
  EXPECT_EQ(visited.load(), 0);
  ParallelFor(5, 6, 1, [&](int64_t lo, int64_t hi) {
    EXPECT_EQ(lo, 5);
    EXPECT_EQ(hi, 6);
    visited.fetch_add(hi - lo);
  });
  EXPECT_EQ(visited.load(), 1);
}

TEST(ThreadPoolTest, SmallRangeRunsOnCaller) {
  ThreadCountRestorer restore;
  SetNumComputeThreads(4);
  const auto caller = std::this_thread::get_id();
  // n <= grain: must not be shipped anywhere.
  ParallelFor(0, 100, 1000, [&](int64_t, int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, SetNumComputeThreadsReconfigures) {
  ThreadCountRestorer restore;
  SetNumComputeThreads(1);
  EXPECT_EQ(NumComputeThreads(), 1);
  SetNumComputeThreads(4);
  EXPECT_EQ(NumComputeThreads(), 4);
  // Still functions after reconfiguration.
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 1000, 10, [&](int64_t lo, int64_t hi) {
    int64_t local = 0;
    for (int64_t i = lo; i < hi; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
}

TEST(ThreadPoolTest, MultipleThreadsUsedForLargeRange) {
  ThreadCountRestorer restore;
  SetNumComputeThreads(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  // Many chunks with a busy body so workers get a chance to claim some.
  ParallelFor(0, 4096, 1, [&](int64_t lo, int64_t hi) {
    volatile double x = 0;
    for (int64_t i = lo; i < hi; ++i) {
      for (int k = 0; k < 2000; ++k) x = x + 1.0;
    }
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  // On a single-core machine workers may never win a chunk; the contract is
  // only that the range completes. Require >1 thread only when the hardware
  // can actually run two at once.
  if (std::thread::hardware_concurrency() > 1) {
    EXPECT_GT(ids.size(), 1u);
  } else {
    EXPECT_GE(ids.size(), 1u);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineAndCompletes) {
  ThreadCountRestorer restore;
  SetNumComputeThreads(4);
  constexpr int64_t kOuter = 64;
  constexpr int64_t kInner = 64;
  std::vector<std::atomic<int>> counts(kOuter * kInner);
  for (auto& c : counts) c.store(0);
  ParallelFor(0, kOuter, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      // Any thread running a chunk (caller or worker) must execute nested
      // ParallelFor calls inline.
      EXPECT_TRUE(ParallelForRunsInline());
      ParallelFor(0, kInner, 1, [&](int64_t ilo, int64_t ihi) {
        for (int64_t i = ilo; i < ihi; ++i) {
          counts[static_cast<size_t>(o * kInner + i)].fetch_add(1);
        }
      });
    }
  });
  for (const auto& c : counts) ASSERT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, InlineComputeGuardForcesInline) {
  ThreadCountRestorer restore;
  SetNumComputeThreads(4);
  EXPECT_FALSE(ParallelForRunsInline());
  {
    InlineComputeGuard guard;
    EXPECT_TRUE(ParallelForRunsInline());
    {
      InlineComputeGuard nested;
      EXPECT_TRUE(ParallelForRunsInline());
    }
    EXPECT_TRUE(ParallelForRunsInline());
    const auto caller = std::this_thread::get_id();
    ParallelFor(0, 100000, 1, [&](int64_t, int64_t) {
      EXPECT_EQ(std::this_thread::get_id(), caller);
    });
  }
  EXPECT_FALSE(ParallelForRunsInline());
}

TEST(ThreadPoolTest, ConcurrentCallersAllComplete) {
  ThreadCountRestorer restore;
  SetNumComputeThreads(4);
  // Several external threads race to use the one shared pool; losers must
  // fall back to running their own chunks rather than deadlocking.
  constexpr int kCallers = 4;
  constexpr int64_t kN = 20000;
  std::vector<int64_t> sums(kCallers, 0);
  std::vector<std::thread> threads;
  threads.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    threads.emplace_back([&, t] {
      std::atomic<int64_t> sum{0};
      ParallelFor(0, kN, 64, [&](int64_t lo, int64_t hi) {
        int64_t local = 0;
        for (int64_t i = lo; i < hi; ++i) local += i;
        sum.fetch_add(local);
      });
      sums[static_cast<size_t>(t)] = sum.load();
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kCallers; ++t) {
    EXPECT_EQ(sums[static_cast<size_t>(t)], kN * (kN - 1) / 2);
  }
}

TEST(ThreadPoolTest, WorkerThreadsAreTapeFree) {
  ThreadCountRestorer restore;
  SetNumComputeThreads(4);
  const auto caller = std::this_thread::get_id();
  std::atomic<int64_t> worker_chunks{0};
  std::atomic<int64_t> worker_violations{0};
  // Busy chunks so pool workers claim some; every chunk that lands on a
  // worker thread must observe the permanent no-grad mark.
  ParallelFor(0, 2048, 1, [&](int64_t lo, int64_t hi) {
    volatile double x = 0;
    for (int64_t i = lo; i < hi; ++i) {
      for (int k = 0; k < 2000; ++k) x = x + 1.0;
    }
    if (std::this_thread::get_id() != caller) {
      worker_chunks.fetch_add(1);
      if (!NoGradEnabled()) worker_violations.fetch_add(1);
    }
  });
  EXPECT_EQ(worker_violations.load(), 0)
      << worker_chunks.load() << " worker chunks ran";
}

}  // namespace
}  // namespace tranad
