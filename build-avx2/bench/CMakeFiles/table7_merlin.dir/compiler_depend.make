# Empty compiler generated dependencies file for table7_merlin.
# This may be replaced when dependencies are built.
