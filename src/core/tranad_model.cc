#include "core/tranad_model.h"

#include <cmath>

#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad {

TranADModel::TranADModel(const TranADConfig& config)
    : config_(config), rng_(config.seed), d_model_(2 * config.dims) {
  TRANAD_CHECK_GT(config.dims, 0);
  TRANAD_CHECK_GT(config.window, 0);
  Rng init_rng(config.seed ^ 0xA5A5A5A5ULL);

  // "The only dataset-specific hyperparameter is the number of heads ...
  // kept the same as the dimension size of the dataset" — each head then
  // attends in a 2-d subspace of the 2m-wide model.
  const int64_t heads =
      config.num_heads > 0 ? config.num_heads : config.dims;
  TRANAD_CHECK_EQ(d_model_ % heads, 0);

  if (config.use_transformer) {
    pos_ = std::make_unique<nn::PositionalEncoding>(
        d_model_, std::max(config.max_len, config.window), config.dropout);
    encoder_ = std::make_unique<nn::TransformerEncoder>(
        config.num_layers, d_model_, heads, config.d_ff, config.dropout,
        &init_rng);
    window_encoder_ = std::make_unique<nn::WindowEncoderLayer>(
        d_model_, heads, config.d_ff, config.dropout, &init_rng);
    RegisterModule("pos", pos_.get());
    RegisterModule("encoder", encoder_.get());
    RegisterModule("window_encoder", window_encoder_.get());
  } else {
    // Ablation "w/o transformer": a two-stage position-wise feed-forward
    // encoder of matched width.
    ff_encoder_ = std::make_unique<nn::FeedForward>(
        d_model_, config.d_ff, d_model_, config.dropout, &init_rng);
    ff_encoder2_ = std::make_unique<nn::FeedForward>(
        d_model_, config.d_ff, d_model_, config.dropout, &init_rng);
    RegisterModule("ff_encoder", ff_encoder_.get());
    RegisterModule("ff_encoder2", ff_encoder2_.get());
  }
  decoder1_ = std::make_unique<nn::FeedForward>(d_model_, config.d_ff,
                                                config.dims, config.dropout,
                                                &init_rng);
  decoder2_ = std::make_unique<nn::FeedForward>(d_model_, config.d_ff,
                                                config.dims, config.dropout,
                                                &init_rng);
  RegisterModule("decoder1", decoder1_.get());
  RegisterModule("decoder2", decoder2_.get());
}

Variable TranADModel::EncodeTransformer(const Variable& input,
                                        Rng* rng) const {
  // Scale as in Vaswani et al. / the reference implementation, then add
  // position encodings before the attention stack.
  Variable scaled =
      ag::MulScalar(input, std::sqrt(static_cast<float>(config_.dims)));
  Variable encoded = pos_->Forward(scaled, rng);
  // I1_2: context encoding of the full (window+focus) sequence (Eq. 4).
  Variable context = encoder_->Forward(encoded, rng);
  // I2_3: masked window encoding cross-attending to the context (Eq. 5);
  // the bidirectional variant drops the future mask.
  return window_encoder_->Forward(encoded, context, rng,
                                  /*causal=*/!config_.bidirectional);
}

Variable TranADModel::EncodeFeedForward(const Variable& input,
                                        Rng* rng) const {
  Variable h = ff_encoder_->Forward(input, rng);
  return ff_encoder2_->Forward(h, rng);
}

Variable TranADModel::EncodeWith(const Variable& window, const Variable& focus,
                                 Rng* rng) const {
  TRANAD_CHECK(window.shape() == focus.shape());
  TRANAD_CHECK_EQ(window.value().size(-1), config_.dims);
  // Concatenate the focus score onto the window: [B, K, 2m].
  Variable input = ag::Concat({window, focus}, -1);
  return config_.use_transformer ? EncodeTransformer(input, rng)
                                 : EncodeFeedForward(input, rng);
}

Variable TranADModel::Encode(const Variable& window, const Variable& focus) {
  return EncodeWith(window, focus, &rng_);
}

Variable TranADModel::BroadcastFocus(const Variable& focus,
                                     int64_t window_len) const {
  TRANAD_CHECK_EQ(focus.value().ndim(), 2);
  const int64_t b = focus.value().size(0);
  Variable per_step = ag::Reshape(focus, {b, 1, config_.dims});
  // Broadcasting add against zeros repeats the [B, 1, m] focus K times.
  return ag::Add(Variable(Tensor::Zeros({b, window_len, config_.dims})),
                 per_step);
}

namespace {

// Final-position latent [B, 2m] of the window encoding [B, K, 2m].
Variable LastLatent(const Variable& latent) {
  const int64_t b = latent.value().size(0);
  const int64_t k = latent.value().size(1);
  const int64_t d = latent.value().size(2);
  return ag::Reshape(ag::SliceAxis(latent, 1, k - 1, 1), {b, d});
}

}  // namespace

Variable TranADModel::Decode1With(const Variable& latent, Rng* rng) const {
  return ag::Sigmoid(decoder1_->Forward(LastLatent(latent), rng));
}

Variable TranADModel::Decode2With(const Variable& latent, Rng* rng) const {
  return ag::Sigmoid(decoder2_->Forward(LastLatent(latent), rng));
}

Variable TranADModel::Decode1(const Variable& latent) {
  return Decode1With(latent, &rng_);
}

Variable TranADModel::Decode2(const Variable& latent) {
  return Decode2With(latent, &rng_);
}

std::pair<Variable, Variable> TranADModel::ForwardPhase1(
    const Variable& window) {
  Variable zero_focus(Tensor::Zeros(window.shape()));
  Variable latent = Encode(window, zero_focus);
  return {Decode1(latent), Decode2(latent)};
}

Variable TranADModel::ForwardPhase2(const Variable& window,
                                    const Variable& focus) {
  const int64_t k = window.value().size(1);
  Variable effective_focus =
      config_.use_self_conditioning
          ? BroadcastFocus(focus, k)
          : Variable(Tensor::Zeros(window.shape()));
  Variable latent = Encode(window, effective_focus);
  return Decode2(latent);
}

std::pair<Tensor, Tensor> TranADModel::TwoPhaseInference(
    const Tensor& windows) const {
  TRANAD_CHECK_MSG(!training(),
                   "TwoPhaseInference requires eval mode; call "
                   "SetTraining(false) before serving");
  TRANAD_CHECK_EQ(windows.ndim(), 3);
  TRANAD_CHECK_EQ(windows.size(2), config_.dims);
  const int64_t b = windows.size(0);
  const int64_t k = windows.size(1);
  const int64_t m = config_.dims;

  NoGradGuard no_grad;
  Variable window(windows);
  // Dropout is identity in eval mode, so the layers never touch the rng.
  Variable zero_focus(Tensor::Zeros(windows.shape()));
  Variable latent = EncodeWith(window, zero_focus, /*rng=*/nullptr);
  Variable o1 = Decode1With(latent, /*rng=*/nullptr);

  // Phase-2 focus: (O1 - x_t)^2 against the window's final timestamp.
  const Tensor target = SliceAxis(windows, 1, k - 1, 1).Reshape({b, m});
  Variable focus = ag::SquaredDiff(o1, Variable(target));
  Variable effective_focus =
      config_.use_self_conditioning
          ? BroadcastFocus(focus, k)
          : Variable(Tensor::Zeros(windows.shape()));
  Variable latent2 = EncodeWith(window, effective_focus, /*rng=*/nullptr);
  Variable o2hat = Decode2With(latent2, /*rng=*/nullptr);
  return {o1.value(), o2hat.value()};
}

namespace {

std::vector<Variable> CollectFrom(
    std::initializer_list<const nn::Module*> modules) {
  std::vector<Variable> out;
  for (const nn::Module* m : modules) {
    if (m == nullptr) continue;
    auto params = m->Parameters();
    out.insert(out.end(), params.begin(), params.end());
  }
  return out;
}

}  // namespace

std::vector<Variable> TranADModel::EncoderParameters() const {
  return CollectFrom({static_cast<const nn::Module*>(pos_.get()),
                      static_cast<const nn::Module*>(encoder_.get()),
                      static_cast<const nn::Module*>(window_encoder_.get()),
                      static_cast<const nn::Module*>(ff_encoder_.get()),
                      static_cast<const nn::Module*>(ff_encoder2_.get())});
}

std::vector<Variable> TranADModel::Decoder1Parameters() const {
  return CollectFrom({static_cast<const nn::Module*>(decoder1_.get())});
}

std::vector<Variable> TranADModel::Decoder2Parameters() const {
  return CollectFrom({static_cast<const nn::Module*>(decoder2_.get())});
}

Tensor TranADModel::LastEncoderAttention() const {
  if (!config_.use_transformer || encoder_ == nullptr) return Tensor();
  return encoder_->layer(0).self_attention().last_attention();
}

}  // namespace tranad
