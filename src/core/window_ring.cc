#include "core/window_ring.h"

#include <algorithm>

#include "common/check.h"

namespace tranad {

void WindowRing::Reset(int64_t window, int64_t dims) {
  TRANAD_CHECK_GT(window, 0);
  TRANAD_CHECK_GT(dims, 0);
  k_ = window;
  m_ = dims;
  size_ = 0;
  head_ = 0;
  rows_.assign(static_cast<size_t>(k_ * m_), 0.0f);
}

void WindowRing::Push(const Tensor& normalized_row) {
  TRANAD_CHECK_EQ(normalized_row.numel(), m_);
  PushRow(normalized_row.data());
}

void WindowRing::PushRow(const float* normalized_row) {
  TRANAD_CHECK_GT(k_, 0);
  const int64_t slot = (head_ + size_) % k_;
  std::copy(normalized_row, normalized_row + m_, rows_.data() + slot * m_);
  if (size_ < k_) {
    ++size_;
  } else {
    head_ = (head_ + 1) % k_;
  }
}

void WindowRing::Seed(const Tensor& normalized_tail) {
  TRANAD_CHECK_EQ(normalized_tail.ndim(), 2);
  TRANAD_CHECK_EQ(normalized_tail.size(1), m_);
  const int64_t t = normalized_tail.size(0);
  Tensor row({m_});
  for (int64_t i = std::max<int64_t>(0, t - k_); i < t; ++i) {
    std::copy(normalized_tail.data() + i * m_,
              normalized_tail.data() + (i + 1) * m_, row.data());
    Push(row);
  }
}

void WindowRing::AssembleInto(float* dst) const {
  TRANAD_CHECK_GT(size_, 0);
  // Cold-start replication: repeat the oldest row while fewer than K rows
  // exist, matching MakeWindows' padding with the series' first observation.
  const float* oldest = rows_.data() + head_ * m_;
  for (int64_t w = 0; w < k_ - size_; ++w) {
    std::copy(oldest, oldest + m_, dst + w * m_);
  }
  for (int64_t i = 0; i < size_; ++i) {
    const int64_t slot = (head_ + i) % k_;
    std::copy(rows_.data() + slot * m_, rows_.data() + (slot + 1) * m_,
              dst + (k_ - size_ + i) * m_);
  }
}

Tensor WindowRing::Window() const {
  Tensor out({1, k_, m_});
  AssembleInto(out.data());
  return out;
}

std::vector<float> WindowRing::ExportRows() const {
  std::vector<float> rows(static_cast<size_t>(size_ * m_));
  for (int64_t i = 0; i < size_; ++i) {
    const int64_t slot = (head_ + i) % k_;
    std::copy(rows_.data() + slot * m_, rows_.data() + (slot + 1) * m_,
              rows.data() + i * m_);
  }
  return rows;
}

Status WindowRing::Restore(int64_t window, int64_t dims,
                           const std::vector<float>& rows) {
  if (window <= 0 || dims <= 0) {
    return Status::InvalidArgument("ring restore needs window > 0, dims > 0");
  }
  if (rows.size() % static_cast<size_t>(dims) != 0) {
    return Status::InvalidArgument(
        "ring restore payload of " + std::to_string(rows.size()) +
        " floats is not a whole number of " + std::to_string(dims) +
        "-dim rows");
  }
  const int64_t count = static_cast<int64_t>(rows.size()) / dims;
  if (count > window) {
    return Status::InvalidArgument(
        "ring restore payload holds " + std::to_string(count) +
        " rows; capacity is " + std::to_string(window));
  }
  Reset(window, dims);
  for (int64_t i = 0; i < count; ++i) {
    PushRow(rows.data() + i * dims);
  }
  return Status::Ok();
}

}  // namespace tranad
