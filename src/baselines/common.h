#ifndef TRANAD_BASELINES_COMMON_H_
#define TRANAD_BASELINES_COMMON_H_

#include <string>

#include "core/detector.h"
#include "data/preprocess.h"

namespace tranad {

/// Shared scaffolding for the learned baselines: Eq. (1) normalization
/// fitted on train, sliding windows, epoch loop with timing, and batched
/// scoring. Subclasses implement the model-specific window loss/score.
class WindowedDetector : public AnomalyDetector {
 public:
  WindowedDetector(std::string name, int64_t window, int64_t epochs,
                   int64_t batch_size);

  std::string name() const override { return name_; }
  void Fit(const TimeSeries& train) override;
  Tensor Score(const TimeSeries& series) override;
  double seconds_per_epoch() const override { return seconds_per_epoch_; }
  int64_t epochs_run() const override { return epochs_run_; }

 protected:
  /// Builds the model once the modality is known.
  virtual void BuildModel(int64_t dims) = 0;
  /// One optimization step on a window batch [B, K, m]; returns the loss.
  /// `progress` in [0, 1] is the training progress (for schedules).
  virtual double TrainBatch(const Tensor& batch, double progress) = 0;
  /// Per-dimension scores for a window batch: [B, m] (score of the final
  /// timestamp of each window).
  virtual Tensor ScoreBatch(const Tensor& batch) = 0;
  /// Train/eval switches for dropout-carrying models.
  virtual void SetEval(bool /*eval*/) {}
  /// Called once after the epoch loop with all training windows; lets a
  /// model fit post-hoc components (e.g. DAGMM's mixture) on the learned
  /// representation.
  virtual void PostTrain(const Tensor& /*windows*/) {}

  int64_t window_ = 10;
  int64_t epochs_ = 5;
  int64_t batch_size_ = 128;
  int64_t dims_ = 0;

 private:
  std::string name_;
  MinMaxNormalizer normalizer_;
  double seconds_per_epoch_ = 0.0;
  int64_t epochs_run_ = 0;
};

/// Normalization clip band shared by all detectors (out-of-range excess is
/// signal, not noise).
inline constexpr float kBaselineNormClip = 4.0f;

}  // namespace tranad

#endif  // TRANAD_BASELINES_COMMON_H_
