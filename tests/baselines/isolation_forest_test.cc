#include "baselines/isolation_forest.h"

#include <gtest/gtest.h>

namespace tranad {
namespace {

TEST(IsolationForestTest, OutlierScoresHigher) {
  Rng rng(1);
  Tensor data({500, 2});
  for (int64_t i = 0; i < 500; ++i) {
    data.At({i, 0}) = static_cast<float>(rng.Normal(0.0, 1.0));
    data.At({i, 1}) = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  IsolationForest forest(50, 256, 2);
  forest.Fit(data);
  ASSERT_TRUE(forest.fitted());
  const float inlier[2] = {0.0f, 0.1f};
  const float outlier[2] = {8.0f, -8.0f};
  EXPECT_GT(forest.ScoreRow(outlier), forest.ScoreRow(inlier));
  EXPECT_GT(forest.ScoreRow(outlier), 0.55);
  EXPECT_LT(forest.ScoreRow(inlier), 0.6);
}

TEST(IsolationForestTest, ScoresInUnitRange) {
  Rng rng(2);
  Tensor data({200, 3});
  for (int64_t i = 0; i < data.numel(); ++i) {
    data[i] = static_cast<float>(rng.Uniform());
  }
  IsolationForest forest(20, 64, 3);
  forest.Fit(data);
  for (int64_t i = 0; i < 50; ++i) {
    const double s = forest.ScoreRow(data.data() + i * 3);
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(IsolationForestTest, ConstantDataSafe) {
  Tensor data({100, 2});  // zeros
  IsolationForest forest(10, 32, 3);
  forest.Fit(data);
  const float x[2] = {0, 0};
  EXPECT_TRUE(std::isfinite(forest.ScoreRow(x)));
}

TEST(IsolationForestDetectorTest, EndToEnd) {
  Rng rng(4);
  TimeSeries train;
  train.values = Tensor({300, 2});
  for (int64_t i = 0; i < train.values.numel(); ++i) {
    train.values[i] = static_cast<float>(rng.Normal());
  }
  TimeSeries test = train;
  // Plant a spike at t=150 in dim 1.
  test.values.At({150, 1}) = 25.0f;

  IsolationForestDetector det(30, 128, 5);
  det.Fit(train);
  const Tensor scores = det.Score(test);
  EXPECT_EQ(scores.shape(), Shape({300, 2}));
  // The planted spike is the top score of dim 1.
  float best = 0.0f;
  int64_t best_t = -1;
  for (int64_t t = 0; t < 300; ++t) {
    if (scores.At({t, 1}) > best) {
      best = scores.At({t, 1});
      best_t = t;
    }
  }
  EXPECT_NEAR(static_cast<double>(best_t), 150.0, 2.0);
}

}  // namespace
}  // namespace tranad
