#include "eval/diagnosis.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tranad {
namespace {

struct PerTimestamp {
  double hitrate = 0.0;
  double ndcg = 0.0;
};

PerTimestamp EvaluateRow(const float* scores, const float* truth, int64_t m,
                         double p_factor) {
  int64_t g = 0;
  for (int64_t d = 0; d < m; ++d) g += truth[d] != 0.0f;
  TRANAD_CHECK_GT(g, 0);
  const int64_t k = std::min<int64_t>(
      m, static_cast<int64_t>(std::ceil(p_factor * static_cast<double>(g))));

  std::vector<int64_t> order(static_cast<size_t>(m));
  for (int64_t d = 0; d < m; ++d) order[static_cast<size_t>(d)] = d;
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return scores[a] > scores[b];
  });

  int64_t hits = 0;
  double dcg = 0.0;
  for (int64_t r = 0; r < k; ++r) {
    if (truth[order[static_cast<size_t>(r)]] != 0.0f) {
      ++hits;
      dcg += 1.0 / std::log2(static_cast<double>(r) + 2.0);
    }
  }
  double idcg = 0.0;
  for (int64_t r = 0; r < std::min(g, k); ++r) {
    idcg += 1.0 / std::log2(static_cast<double>(r) + 2.0);
  }
  PerTimestamp out;
  out.hitrate = static_cast<double>(hits) / static_cast<double>(g);
  out.ndcg = idcg > 0.0 ? dcg / idcg : 0.0;
  return out;
}

}  // namespace

DiagnosisMetrics EvaluateDiagnosis(const Tensor& scores,
                                   const Tensor& dim_truth) {
  TRANAD_CHECK(scores.shape() == dim_truth.shape());
  TRANAD_CHECK_EQ(scores.ndim(), 2);
  const int64_t t = scores.size(0);
  const int64_t m = scores.size(1);
  DiagnosisMetrics out;
  double h100 = 0.0, h150 = 0.0, n100 = 0.0, n150 = 0.0;
  for (int64_t i = 0; i < t; ++i) {
    const float* truth_row = dim_truth.data() + i * m;
    bool any = false;
    for (int64_t d = 0; d < m; ++d) {
      if (truth_row[d] != 0.0f) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    const float* score_row = scores.data() + i * m;
    const PerTimestamp r100 = EvaluateRow(score_row, truth_row, m, 1.0);
    const PerTimestamp r150 = EvaluateRow(score_row, truth_row, m, 1.5);
    h100 += r100.hitrate;
    n100 += r100.ndcg;
    h150 += r150.hitrate;
    n150 += r150.ndcg;
    ++out.evaluated_timestamps;
  }
  if (out.evaluated_timestamps > 0) {
    const double n = static_cast<double>(out.evaluated_timestamps);
    out.hitrate_100 = h100 / n;
    out.hitrate_150 = h150 / n;
    out.ndcg_100 = n100 / n;
    out.ndcg_150 = n150 / n;
  }
  return out;
}

}  // namespace tranad
