// Cross-cutting contract tests: every registered detector must honour the
// AnomalyDetector interface and discriminate planted anomalies on a small
// synthetic dataset.
#include <gtest/gtest.h>

#include "baselines/gdn.h"
#include "baselines/registry.h"
#include "core/pipeline.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace tranad {
namespace {

const Dataset& SharedDataset() {
  static const Dataset* ds = [] {
    // Contract tests use an easy, spike-dominated dataset: the goal is to
    // verify the interface and basic learning, not benchmark difficulty.
    auto config = SmdConfig(0.12);
    config.anomaly_magnitude = 2.0;
    config.benign_rate = 0.0;
    config.noise = 0.03;
    config.anomaly_mix = {{AnomalyKind::kSpike, 0.7},
                          {AnomalyKind::kLevelShift, 0.3}};
    return new Dataset(GenerateSynthetic(config));
  }();
  return *ds;
}

DetectorOptions FastOptions() {
  DetectorOptions o;
  o.epochs = 2;
  return o;
}

class DetectorContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DetectorContractTest, FitScoreContract) {
  const Dataset& ds = SharedDataset();
  auto det = CreateDetector(GetParam(), FastOptions());
  ASSERT_TRUE(det.ok()) << det.status().ToString();
  (*det)->Fit(ds.train);
  const Tensor scores = (*det)->Score(ds.test);
  ASSERT_EQ(scores.shape(), Shape({ds.test.length(), ds.dims()}));
  for (int64_t i = 0; i < scores.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(scores[i])) << GetParam();
    ASSERT_GE(scores[i], 0.0f) << GetParam();
  }
  EXPECT_EQ((*det)->name(), GetParam());
}

TEST_P(DetectorContractTest, BetterThanRandomAuc) {
  const Dataset& ds = SharedDataset();
  auto det = CreateDetector(GetParam(), FastOptions());
  ASSERT_TRUE(det.ok());
  (*det)->Fit(ds.train);
  const Tensor scores = (*det)->Score(ds.test);
  const double auc = RocAuc(DetectionScores(scores), ds.test.labels);
  EXPECT_GT(auc, 0.55) << GetParam() << " is not better than random";
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, DetectorContractTest,
    ::testing::Values("LSTM-NDT", "DAGMM", "OmniAnomaly", "MSCRED",
                      "MAD-GAN", "USAD", "MTAD-GAT", "CAE-M", "GDN",
                      "TranAD", "IsolationForest"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(RegistryTest, UnknownDetectorFails) {
  EXPECT_FALSE(CreateDetector("NotAMethod").ok());
}

TEST(RegistryTest, PaperMethodsOrdered) {
  const auto names = PaperMethodNames();
  ASSERT_EQ(names.size(), 11u);
  EXPECT_EQ(names.front(), "MERLIN");
  EXPECT_EQ(names.back(), "TranAD");
}

TEST(RegistryTest, BidirectionalVariantCreatable) {
  auto det = CreateDetector("TranAD-Bidirectional", FastOptions());
  ASSERT_TRUE(det.ok());
  const Dataset& ds = SharedDataset();
  (*det)->Fit(ds.train);
  const Tensor scores = (*det)->Score(ds.test);
  EXPECT_EQ(scores.size(0), ds.test.length());
}

TEST(RegistryTest, AblationsAllCreatable) {
  for (const auto& name : AblationMethodNames()) {
    auto det = CreateDetector(name, FastOptions());
    EXPECT_TRUE(det.ok()) << name;
    EXPECT_EQ((*det)->name(), name);
  }
}

TEST(GdnTest, AttentionGraphIsRowStochastic) {
  const Dataset& ds = SharedDataset();
  GdnDetector gdn(10, 2, 8, 3);
  gdn.Fit(ds.train);
  const Tensor graph = gdn.AttentionGraph();
  ASSERT_EQ(graph.shape(), Shape({ds.dims(), ds.dims()}));
  for (int64_t i = 0; i < ds.dims(); ++i) {
    float row = 0.0f;
    for (int64_t j = 0; j < ds.dims(); ++j) row += graph.At({i, j});
    EXPECT_NEAR(row, 1.0f, 1e-4);
  }
}

TEST(UsadStyleTest, AdversarialDetectorsBeatConstantBaseline) {
  // USAD and TranAD (the two adversarial reconstruction models) must both
  // clearly separate the planted anomalies.
  const Dataset& ds = SharedDataset();
  for (const char* name : {"USAD", "TranAD"}) {
    auto det = CreateDetector(name, FastOptions());
    ASSERT_TRUE(det.ok());
    const EvalOutcome out = EvaluateDetector(det->get(), ds);
    EXPECT_GT(out.detection.f1, 0.5) << name;
  }
}

}  // namespace
}  // namespace tranad
