#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"

namespace tranad::nn {

Optimizer::Optimizer(std::vector<Variable> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  for (const auto& p : params_) TRANAD_CHECK(p.requires_grad());
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  // The norm accumulation stays serial: its ordered double summation is
  // part of the deterministic contract (see DESIGN.md, compute backend).
  double total = 0.0;
  for (const auto& p : params_) {
    const Tensor& g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      total += static_cast<double>(g[i]) * g[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (max_norm > 0.0f && norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    for (auto& p : params_) {
      // grad() hands back a const ref; scaling in place via Accumulate with
      // the complement keeps the API small.
      Tensor scaled = p.grad();
      float* ps = scaled.data();
      ParallelFor(0, scaled.numel(), 1 << 12, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) ps[i] *= scale;
      });
      p.ZeroGrad();
      p.AccumulateGrad(scaled);
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Variable> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) {
      velocity_.push_back(Tensor::Zeros(p.value().shape()));
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor* w = params_[i].mutable_value();
    const Tensor& g = params_[i].grad();
    if (momentum_ > 0.0f) {
      Tensor& vel = velocity_[i];
      for (int64_t j = 0; j < w->numel(); ++j) {
        vel[j] = momentum_ * vel[j] + g[j];
        (*w)[j] -= lr_ * vel[j];
      }
    } else {
      for (int64_t j = 0; j < w->numel(); ++j) (*w)[j] -= lr_ * g[j];
    }
  }
}

Adam::Adam(std::vector<Variable> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::Zeros(p.value().shape()));
    v_.push_back(Tensor::Zeros(p.value().shape()));
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor* w = params_[i].mutable_value();
    const Tensor& grad = params_[i].grad();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    // Each element's moment/weight update is self-contained, so the
    // parallel step is bit-identical to the serial one (the ParallelFor
    // contract).
    float* pw = w->data();
    const float* pg = grad.data();
    float* pm = m.data();
    float* pv = v.data();
    ParallelFor(0, w->numel(), 1 << 12, [&](int64_t lo, int64_t hi) {
      for (int64_t j = lo; j < hi; ++j) {
        float g = pg[j];
        if (!decoupled_ && weight_decay_ > 0.0f) g += weight_decay_ * pw[j];
        pm[j] = beta1_ * pm[j] + (1.0f - beta1_) * g;
        pv[j] = beta2_ * pv[j] + (1.0f - beta2_) * g * g;
        const float mhat = pm[j] / bc1;
        const float vhat = pv[j] / bc2;
        float update = lr_ * mhat / (std::sqrt(vhat) + eps_);
        if (decoupled_ && weight_decay_ > 0.0f) {
          update += lr_ * weight_decay_ * pw[j];
        }
        pw[j] -= update;
      }
    });
  }
}

Status Adam::RestoreState(int64_t step_count, std::vector<Tensor> m,
                          std::vector<Tensor> v) {
  if (step_count < 0) {
    return Status::InvalidArgument("Adam step count must be >= 0");
  }
  if (m.size() != params_.size() || v.size() != params_.size()) {
    return Status::InvalidArgument("Adam moment count mismatch");
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    if (m[i].shape() != params_[i].value().shape() ||
        v[i].shape() != params_[i].value().shape()) {
      return Status::InvalidArgument("Adam moment shape mismatch");
    }
  }
  t_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::Ok();
}

AdamW::AdamW(std::vector<Variable> params, float lr, float beta1, float beta2,
             float eps, float weight_decay)
    : Adam(std::move(params), lr, beta1, beta2, eps, weight_decay) {
  decoupled_ = true;
}

StepLr::StepLr(Optimizer* opt, int64_t step_size, float gamma)
    : opt_(opt), step_size_(step_size), gamma_(gamma) {
  TRANAD_CHECK(opt != nullptr);
  TRANAD_CHECK_GT(step_size, 0);
}

void StepLr::Step() {
  ++epoch_;
  if (epoch_ % step_size_ == 0) {
    opt_->set_lr(opt_->lr() * gamma_);
  }
}

}  // namespace tranad::nn
