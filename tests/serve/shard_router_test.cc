#include "serve/shard_router.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/online_detector.h"
#include "core/pipeline.h"
#include "data/synthetic.h"

namespace tranad::serve {
namespace {

class ShardRouterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = SmapConfig(0.2);
    config.anomaly_magnitude = 1.6;
    for (uint64_t s = 0; s < kNumStreams; ++s) {
      config.seed = 142 + s;
      datasets_->push_back(GenerateSynthetic(config));
    }
    TranADConfig model_config;
    model_config.window = 8;
    model_config.d_ff = 16;
    TrainOptions train;
    train.max_epochs = 2;
    detector_ = new TranADDetector(model_config, train);
    detector_->Fit((*datasets_)[0].train);
  }

  static void TearDownTestSuite() {
    delete detector_;
    detector_ = nullptr;
    datasets_->clear();
  }

  static Tensor Observation(const TimeSeries& series, int64_t t) {
    Tensor row({series.dims()});
    for (int64_t d = 0; d < series.dims(); ++d) {
      row[d] = series.values.At({t, d});
    }
    return row;
  }

  static ShardRouterOptions FastOptions(int64_t shards) {
    ShardRouterOptions options;
    options.num_shards = shards;
    options.shard.num_workers = 1;
    options.shard.max_batch = 4;
    options.shard.max_wait_us = 100;
    options.shard.pot = PotParamsForDataset("SMAP");
    return options;
  }

  /// Submits with backpressure retry, like a well-behaved client.
  static void SubmitRetrying(ShardRouter* router, uint64_t key,
                             const Tensor& obs, VerdictCallback cb) {
    Status st = Status::Ok();
    do {
      st = router->Submit(key, obs, cb);
    } while (st.code() == StatusCode::kResourceExhausted);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  static constexpr uint64_t kNumStreams = 3;
  static TranADDetector* detector_;
  static std::vector<Dataset>* datasets_;
};

TranADDetector* ShardRouterTest::detector_ = nullptr;
std::vector<Dataset>* ShardRouterTest::datasets_ = new std::vector<Dataset>();

TEST_F(ShardRouterTest, ShardOfIsDeterministicAndBalanced) {
  ShardRouter router(detector_, FastOptions(4));
  ASSERT_EQ(router.num_shards(), 4);

  std::vector<int64_t> counts(4, 0);
  for (uint64_t key = 0; key < 8192; ++key) {
    const int64_t shard = router.ShardOf(key);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    ASSERT_EQ(shard, router.ShardOf(key)) << "unstable placement";
    ++counts[static_cast<size_t>(shard)];
  }
  // Consistent hashing with 64 vnodes/shard: every shard owns a material
  // share. The bound is loose (placement is hash-driven, not round-robin).
  for (int64_t c : counts) {
    EXPECT_GT(c, 8192 / 16) << "a shard owns almost nothing";
  }

  // The ring is a pure function of (key, shard count): a second router
  // with the same geometry places every key identically.
  ShardRouter other(detector_, FastOptions(4));
  for (uint64_t key = 0; key < 512; ++key) {
    EXPECT_EQ(router.ShardOf(key), other.ShardOf(key));
  }
}

// The tentpole parity test: streams spread across shards produce exactly
// the verdicts of independent sequential OnlineTranAD runs, and callbacks
// see the client's key, not the shard-local stream id.
TEST_F(ShardRouterTest, ShardedVerdictsMatchSequentialOnlineBitExact) {
  const int64_t steps = 30;
  const PotParams pot = PotParamsForDataset("SMAP");

  std::vector<std::vector<OnlineVerdict>> expected(kNumStreams);
  for (uint64_t s = 0; s < kNumStreams; ++s) {
    OnlineTranAD online(detector_, pot);
    online.Calibrate((*datasets_)[s].train);
    for (int64_t t = 0; t < steps; ++t) {
      expected[s].push_back(
          online.Observe(Observation((*datasets_)[s].test, t)));
    }
  }

  ShardRouter router(detector_, FastOptions(3));
  const uint64_t keys[kNumStreams] = {1000, 2000, 3000};
  std::set<int64_t> used_shards;
  for (uint64_t s = 0; s < kNumStreams; ++s) {
    ASSERT_TRUE(router.CreateStream(keys[s], (*datasets_)[s].train).ok());
    used_shards.insert(router.ShardOf(keys[s]));
  }
  EXPECT_EQ(router.num_streams(), 3);

  std::mutex mu;
  std::map<uint64_t, std::vector<std::pair<int64_t, OnlineVerdict>>> got;
  for (int64_t t = 0; t < steps; ++t) {
    for (uint64_t s = 0; s < kNumStreams; ++s) {
      SubmitRetrying(&router, keys[s], Observation((*datasets_)[s].test, t),
                     [&](StreamId key, int64_t seq, const OnlineVerdict& v) {
                       std::lock_guard<std::mutex> lock(mu);
                       got[key].push_back({seq, v});
                     });
    }
  }
  router.Flush();

  for (uint64_t s = 0; s < kNumStreams; ++s) {
    const auto& stream_got = got[keys[s]];  // rekeyed to the client's key
    ASSERT_EQ(stream_got.size(), static_cast<size_t>(steps));
    for (int64_t t = 0; t < steps; ++t) {
      const auto& [seq, v] = stream_got[static_cast<size_t>(t)];
      const auto& e = expected[s][static_cast<size_t>(t)];
      ASSERT_EQ(seq, t) << "per-stream FIFO broken on shard";
      ASSERT_EQ(v.score, e.score) << "stream " << s << " t=" << t;
      ASSERT_EQ(v.threshold, e.threshold) << "stream " << s << " t=" << t;
      ASSERT_EQ(v.anomalous, e.anomalous) << "stream " << s << " t=" << t;
    }
  }
}

TEST_F(ShardRouterTest, StreamRegistryValidation) {
  ShardRouter router(detector_, FastOptions(2));
  ASSERT_TRUE(router.CreateStream(7, (*datasets_)[0].train).ok());
  EXPECT_EQ(router.CreateStream(7, (*datasets_)[0].train).code(),
            StatusCode::kFailedPrecondition)
      << "duplicate key must be refused";
  EXPECT_EQ(router.Submit(8, Observation((*datasets_)[0].test, 0), nullptr)
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(router.CloseStream(8).code(), StatusCode::kNotFound);
  EXPECT_TRUE(router.CloseStream(7).ok());
  EXPECT_EQ(router.num_streams(), 0);
  EXPECT_EQ(router.Submit(7, Observation((*datasets_)[0].test, 0), nullptr)
                .code(),
            StatusCode::kNotFound);
  // The key is reusable after close.
  EXPECT_TRUE(router.CreateStream(7, (*datasets_)[0].train).ok());
}

TEST_F(ShardRouterTest, StatsMergeAcrossShards) {
  ShardRouter router(detector_, FastOptions(3));
  const uint64_t keys[kNumStreams] = {11, 22, 33};
  for (uint64_t s = 0; s < kNumStreams; ++s) {
    ASSERT_TRUE(router.CreateStream(keys[s], (*datasets_)[s].train).ok());
  }
  const int64_t steps = 10;
  for (int64_t t = 0; t < steps; ++t) {
    for (uint64_t s = 0; s < kNumStreams; ++s) {
      SubmitRetrying(&router, keys[s], Observation((*datasets_)[s].test, t),
                     nullptr);
    }
  }
  router.Flush();

  const ServeStatsSnapshot fleet = router.stats();
  EXPECT_EQ(fleet.shards, 3);
  EXPECT_EQ(fleet.completed, static_cast<int64_t>(kNumStreams) * steps);

  int64_t per_shard_completed = 0;
  int64_t per_shard_hist = 0;
  for (int64_t i = 0; i < router.num_shards(); ++i) {
    const ServeStatsSnapshot shard = router.shard_stats(i);
    EXPECT_EQ(shard.shards, 1);
    per_shard_completed += shard.completed;
    for (int64_t c : shard.latency_hist) per_shard_hist += c;
  }
  EXPECT_EQ(per_shard_completed, fleet.completed);

  int64_t fleet_hist = 0;
  for (int64_t c : fleet.latency_hist) fleet_hist += c;
  EXPECT_EQ(fleet_hist, per_shard_hist)
      << "fleet histogram must be the sum of shard histograms";
  EXPECT_GT(fleet.p99_latency_ms, 0.0);
}

// Rolling reload under live traffic: every admitted observation completes
// exactly once (no drops, no duplicates), and every shard ends up having
// swapped.
TEST_F(ShardRouterTest, RollingReloadUnderTrafficLosesNothing) {
  const std::string ckpt = ::testing::TempDir() + "/router_roll.ckpt";
  ASSERT_TRUE(detector_->SaveCheckpoint(ckpt).ok());

  ShardRouter router(detector_, FastOptions(2));
  const uint64_t keys[kNumStreams] = {5, 6, 7};
  for (uint64_t s = 0; s < kNumStreams; ++s) {
    ASSERT_TRUE(router.CreateStream(keys[s], (*datasets_)[s].train).ok());
  }

  std::atomic<int64_t> delivered{0};
  std::atomic<int64_t> submitted{0};
  std::atomic<bool> stop{false};
  std::thread traffic([&] {
    int64_t t = 0;
    while (!stop.load()) {
      const uint64_t s = static_cast<uint64_t>(t) % kNumStreams;
      const Status st = router.Submit(
          keys[s],
          Observation((*datasets_)[s].test,
                      t % (*datasets_)[s].test.length()),
          [&](StreamId, int64_t, const OnlineVerdict&) {
            delivered.fetch_add(1);
          });
      if (st.ok()) submitted.fetch_add(1);
      ++t;
    }
  });

  for (int round = 0; round < 3; ++round) {
    const Status st = router.ReloadModel(ckpt);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  stop.store(true);
  traffic.join();
  router.Flush();

  EXPECT_EQ(delivered.load(), submitted.load());
  EXPECT_GT(delivered.load(), 0);
  // Every shard swapped on every round: fleet reloads = rounds * shards.
  EXPECT_EQ(router.stats().reloads, 3 * router.num_shards());
}

TEST_F(ShardRouterTest, ReloadFailureLeavesFleetServing) {
  ShardRouter router(detector_, FastOptions(2));
  ASSERT_TRUE(router.CreateStream(1, (*datasets_)[0].train).ok());

  EXPECT_FALSE(
      router.ReloadModel(::testing::TempDir() + "/does_not_exist.ckpt").ok());

  SubmitRetrying(&router, 1, Observation((*datasets_)[0].test, 0), nullptr);
  router.Flush();
  EXPECT_EQ(router.stats().completed, 1);
}

TEST_F(ShardRouterTest, QuarantineRoutesToTheRightShard) {
  ShardRouterOptions options = FastOptions(2);
  options.shard.quarantine_after = 1;
  ShardRouter router(detector_, options);
  ASSERT_TRUE(router.CreateStream(3, (*datasets_)[0].train).ok());

  Tensor poisoned({(*datasets_)[0].dims()});
  poisoned[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(router.Submit(3, poisoned, nullptr).code(),
            StatusCode::kInvalidArgument);
  // One strike with quarantine_after=1: the stream is now quarantined.
  EXPECT_EQ(router.Submit(3, Observation((*datasets_)[0].test, 0), nullptr)
                .code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(router.ReleaseQuarantine(3).ok());
  SubmitRetrying(&router, 3, Observation((*datasets_)[0].test, 0), nullptr);
  router.Flush();
  EXPECT_EQ(router.stats().completed, 1);
  EXPECT_EQ(router.ReleaseQuarantine(99).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace tranad::serve
