#ifndef TRANAD_CORE_PIPELINE_H_
#define TRANAD_CORE_PIPELINE_H_

#include <string>
#include <vector>

#include "core/detector.h"
#include "eval/diagnosis.h"
#include "eval/metrics.h"
#include "eval/pot.h"

namespace tranad {

/// How the evaluation pipeline turns scores into labels.
enum class ThresholdMode {
  /// Peaks-over-threshold on the dimension-averaged detection score,
  /// calibrated on training scores.
  kPot,
  /// Eq. (14) exactly: a POT threshold per dimension, y_i = 1(s_i >=
  /// POT(s_i)), detection label y = OR_i y_i.
  kPotPerDim,
  /// Best-F1 sweep over thresholds (threshold-free upper bound, the common
  /// TSAD reporting protocol; used by the comparison tables so that every
  /// method is treated identically and results are robust at small scale).
  kBestF1,
};

struct PipelineOptions {
  ThresholdMode mode = ThresholdMode::kBestF1;
  PotParams pot;
  /// Apply the point-adjust protocol before computing P/R/F1.
  bool point_adjust = true;
};

/// Everything the benchmark tables need from one (detector, dataset) run.
struct EvalOutcome {
  std::string method;
  std::string dataset;
  DetectionMetrics detection;
  DiagnosisMetrics diagnosis;
  double seconds_per_epoch = 0.0;
  double fit_seconds = 0.0;
  double score_seconds = 0.0;
};

/// Maps the paper's dataset-specific POT "low quantile" q0 (0.07 for SMAP,
/// 0.01 for MSL, 0.001 otherwise) to PotParams.
PotParams PotParamsForDataset(const std::string& dataset_name);

/// Aggregates per-dimension scores [T, m] into the detection score series
/// (mean over dimensions).
std::vector<double> DetectionScores(const Tensor& dim_scores);

/// Eq. (14) labelling: fits one POT threshold per dimension on the
/// calibration scores [Tc, m] and labels test scores [T, m] by
/// y_t = OR_i 1(s_i >= POT_i). Returns the detection labels; when
/// `dim_labels` is non-null it receives the per-dimension labels [T, m]
/// (the diagnosis raster of Fig. 5).
std::vector<uint8_t> PotLabelPerDimension(const Tensor& calibration_scores,
                                          const Tensor& test_scores,
                                          const PotParams& params,
                                          Tensor* dim_labels = nullptr);

/// Full §4 protocol for one detector on one dataset: fit on train, score
/// train (threshold calibration) and test, threshold, point-adjust,
/// compute detection + diagnosis metrics.
EvalOutcome EvaluateDetector(AnomalyDetector* detector, const Dataset& dataset,
                             const PipelineOptions& options = {});

}  // namespace tranad

#endif  // TRANAD_CORE_PIPELINE_H_
