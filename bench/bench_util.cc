#include "bench/bench_util.h"

#include <sys/stat.h>

#include <fstream>
#include <map>

#include "common/csv.h"
#include "common/env.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "tensor/arena.h"
#include "tensor/kernels.h"

namespace tranad::bench {

double DefaultScale() { return EnvDouble("TRANAD_SCALE", 0.35); }

int64_t DefaultEpochs() {
  const int64_t e = BenchEpochs();
  return e > 0 ? e : 5;
}

const Dataset& BenchDataset(const std::string& name, uint64_t seed) {
  static std::map<std::pair<std::string, uint64_t>, Dataset> cache;
  const auto key = std::make_pair(name, seed);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto ds = GenerateDatasetByName(name, DefaultScale(), seed);
    TRANAD_CHECK_MSG(ds.ok(), ds.status().ToString());
    it = cache.emplace(key, std::move(ds).value()).first;
  }
  return it->second;
}

EvalOutcome RunCell(const std::string& method, const Dataset& dataset,
                    int64_t epochs, uint64_t seed) {
  DetectorOptions options;
  options.epochs = epochs;
  options.seed = seed;
  auto det = CreateDetector(method, options);
  TRANAD_CHECK_MSG(det.ok(), det.status().ToString());
  return EvaluateDetector(det->get(), dataset);
}

void PrintTable(const std::string& title,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  std::printf("\n%s\n", title.c_str());
  std::vector<size_t> widths(header.size(), 0);
  for (size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::string cell = c == 0 ? PadRight(row[c], widths[c])
                                : PadLeft(row[c], widths[c]);
      std::printf("%s%s", cell.c_str(),
                  c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(header);
  size_t total = header.size() > 0 ? 2 * (header.size() - 1) : 0;
  for (size_t w : widths) total += w;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows) print_row(row);
}

std::string Fmt4(double v) { return StrFormat("%.4f", v); }
std::string Fmt2(double v) { return StrFormat("%.2f", v); }

std::string WriteBenchCsv(const std::string& name,
                          const std::vector<std::string>& header,
                          const std::vector<std::vector<double>>& rows) {
  ::mkdir("bench_out", 0755);
  const std::string path = "bench_out/" + name + ".csv";
  CsvTable table;
  table.header = header;
  table.rows = rows;
  const Status st = WriteCsv(path, table);
  if (!st.ok()) {
    std::fprintf(stderr, "warning: %s\n", st.ToString().c_str());
  }
  return path;
}

std::string WriteBenchJson(const std::string& name, const std::string& json) {
  ::mkdir("bench_out", 0755);
  const std::string path = "bench_out/BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return path;
  }
  out << json;
  if (!json.empty() && json.back() != '\n') out << '\n';
  return path;
}

std::string ComputeBackendJsonFields() {
  const ArenaStats s = TensorArena::Global().stats();
  return StrFormat(
      "\"threads\": %lld, \"kernel\": {\"mode\": \"%s\", \"isa\": \"%s\", "
      "\"lanes\": %d}, "
      "\"arena\": {\"hits\": %lld, \"misses\": %lld, "
      "\"releases\": %lld, \"trims\": %lld, \"bytes_cached\": %lld, "
      "\"bytes_live\": %lld, \"bytes_peak_live\": %lld}",
      static_cast<long long>(NumComputeThreads()),
      kernels::KernelModeName(), kernels::KernelIsaName(),
      kernels::KernelLanes(),
      static_cast<long long>(s.hits), static_cast<long long>(s.misses),
      static_cast<long long>(s.releases), static_cast<long long>(s.trims),
      static_cast<long long>(s.bytes_cached),
      static_cast<long long>(s.bytes_live),
      static_cast<long long>(s.bytes_peak_live));
}

std::vector<std::string> DatasetNames() {
  return {"NAB", "UCR", "MBA", "SMAP", "MSL", "SWaT", "WADI", "SMD", "MSDS"};
}

}  // namespace tranad::bench
