#include "common/status.h"

namespace tranad {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tranad
