#include "nn/positional_encoding.h"

#include <cmath>

#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad::nn {

PositionalEncoding::PositionalEncoding(int64_t d_model, int64_t max_len,
                                       float dropout_p)
    : d_model_(d_model), dropout_p_(dropout_p), table_({max_len, d_model}) {
  for (int64_t pos = 0; pos < max_len; ++pos) {
    for (int64_t i = 0; i < d_model; ++i) {
      const double div =
          std::exp(-std::log(10000.0) *
                   static_cast<double>(2 * (i / 2)) /
                   static_cast<double>(d_model));
      const double angle = static_cast<double>(pos) * div;
      table_.At({pos, i}) = static_cast<float>(
          (i % 2 == 0) ? std::sin(angle) : std::cos(angle));
    }
  }
}

Variable PositionalEncoding::Forward(const Variable& x, Rng* rng) const {
  TRANAD_CHECK_EQ(x.value().size(-1), d_model_);
  const int64_t t = x.value().size(-2);
  TRANAD_CHECK_LE(t, table_.size(0));
  Tensor pe = SliceAxis(table_, 0, 0, t);  // [T, d] broadcasts over batch
  Variable y = ag::Add(x, Variable(pe));
  return ag::Dropout(y, dropout_p_, training(), rng);
}

}  // namespace tranad::nn
