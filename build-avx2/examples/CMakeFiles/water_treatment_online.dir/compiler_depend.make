# Empty compiler generated dependencies file for water_treatment_online.
# This may be replaced when dependencies are built.
