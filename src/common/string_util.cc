#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>

namespace tranad {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  const std::string buf(Trim(s));
  if (buf.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string PadLeft(std::string s, size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string PadRight(std::string s, size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

}  // namespace tranad
