#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/thread_pool.h"
#include "tensor/arena.h"
#include "tensor/kernels.h"

namespace tranad {
namespace {

// Parallel grain sizes: one chunk should amortize the scheduling overhead
// of shipping it to a pool worker. Elementwise work is ~1 flop/index;
// heavier per-index kernels scale the grain down by their inner size. Both
// are pure functions of the operand shapes, never of the thread count, so
// the per-index arithmetic (and therefore every output bit) is the same on
// 1 or N threads.
constexpr int64_t kElemGrain = 1 << 13;
constexpr int64_t kFlopGrain = 1 << 14;

int64_t RowGrain(int64_t row_len) {
  return std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, row_len));
}

// General broadcasting fallback: odometer walk with a scalar functor. Each
// chunk re-derives its multi-index from its first linear index, then walks
// incrementally — identical element arithmetic to the serial walk, just
// resumable at any index. Only shapes none of the contiguous fast paths
// below recognise land here.
template <typename F>
Tensor OdometerBroadcast(const Tensor& a, const Tensor& b, F f) {
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  Tensor out = Tensor::Uninitialized(out_shape);
  const int64_t nd = static_cast<int64_t>(out_shape.size());
  // Effective strides with 0 for broadcast axes.
  auto eff_strides = [&](const Tensor& t) {
    std::vector<int64_t> s(static_cast<size_t>(nd), 0);
    const auto ts = ContiguousStrides(t.shape());
    const int64_t off = nd - t.ndim();
    for (int64_t i = 0; i < t.ndim(); ++i) {
      if (t.shape()[static_cast<size_t>(i)] != 1) {
        s[static_cast<size_t>(off + i)] = ts[static_cast<size_t>(i)];
      }
    }
    return s;
  };
  const auto sa = eff_strides(a);
  const auto sb = eff_strides(b);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = out.numel();
  ParallelFor(0, n, kElemGrain, [&](int64_t chunk_lo, int64_t chunk_hi) {
    std::vector<int64_t> idx(static_cast<size_t>(nd), 0);
    int64_t oa = 0;
    int64_t ob = 0;
    int64_t rem = chunk_lo;
    for (int64_t d = nd - 1; d >= 0; --d) {
      const size_t ud = static_cast<size_t>(d);
      const int64_t i_d = rem % out_shape[ud];
      rem /= out_shape[ud];
      idx[ud] = i_d;
      oa += i_d * sa[ud];
      ob += i_d * sb[ud];
    }
    for (int64_t lin = chunk_lo; lin < chunk_hi; ++lin) {
      po[lin] = f(pa[oa], pb[ob]);
      // Increment the multi-index (odometer), updating offsets
      // incrementally.
      for (int64_t d = nd - 1; d >= 0; --d) {
        const size_t ud = static_cast<size_t>(d);
        ++idx[ud];
        oa += sa[ud];
        ob += sb[ud];
        if (idx[ud] < out_shape[ud]) break;
        oa -= sa[ud] * out_shape[ud];
        ob -= sb[ud] * out_shape[ud];
        idx[ud] = 0;
      }
    }
  });
  return out;
}

// [..., reps, tail...] against [..., 1, tail...]: one broadcast axis in the
// middle, so each of the small operand's contiguous tiles is reused `reps`
// times (TranAD's focus broadcast [B,1,m] -> [B,K,m] is the hot instance).
struct MiddleBroadcast {
  int64_t reps = 0;  // full.size(ax)
  int64_t tile = 0;  // product of dims after ax
};

bool MatchMiddleBroadcast(const Tensor& full, const Tensor& small,
                          MiddleBroadcast* mb) {
  if (full.ndim() != small.ndim()) return false;
  int64_t ax = -1;
  for (int64_t i = 0; i < full.ndim(); ++i) {
    if (full.size(i) == small.size(i)) continue;
    if (small.size(i) != 1 || ax >= 0) return false;
    ax = i;
  }
  // Equal shapes and last-axis broadcasts are handled by earlier paths.
  if (ax < 0 || ax == full.ndim() - 1) return false;
  int64_t tile = 1;
  for (int64_t i = ax + 1; i < full.ndim(); ++i) tile *= full.size(i);
  if (tile == 0) return false;
  mb->reps = full.size(ax);
  mb->tile = tile;
  return true;
}

// Applies `op` element-wise with numpy-style broadcasting. Contiguous fast
// paths run through the vectorized span kernels (dispatch hoisted out of
// the loops); every path parallelizes over self-contained output indices
// (an element, a row, or a tile), so chunk boundaries never touch the
// arithmetic. `f` is the scalar fallback for the generic odometer walk and
// must match the kernel's per-lane float semantics.
template <typename F>
Tensor BinaryBroadcast(const Tensor& a, const Tensor& b, kernels::BinOp op,
                       F f) {
  if (a.shape() == b.shape()) {
    Tensor out = Tensor::Uninitialized(a.shape());
    const auto fn = kernels::GetBinarySpan(op);
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, a.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
      fn(pa + lo, pb + lo, po + lo, hi - lo);
    });
    return out;
  }
  if (b.numel() == 1) {
    Tensor out = Tensor::Uninitialized(a.shape());
    const auto fn = kernels::GetBinarySpanScalarRhs(op);
    const float s = b.data()[0];
    const float* pa = a.data();
    float* po = out.data();
    ParallelFor(0, a.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
      fn(pa + lo, s, po + lo, hi - lo);
    });
    return out;
  }
  if (a.numel() == 1) {
    Tensor out = Tensor::Uninitialized(b.shape());
    const auto fn = kernels::GetBinarySpanScalarLhs(op);
    const float s = a.data()[0];
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, b.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
      fn(pb + lo, s, po + lo, hi - lo);
    });
    return out;
  }
  // Fast path: one operand broadcasts along the last axis only, i.e. its
  // shape matches the other except for a trailing 1 ([..., K, 1] vs
  // [..., K, n] — LayerNorm's mean/var normalization). One scalar per row.
  auto last_dim_broadcast = [](const Tensor& full, const Tensor& rowwise) {
    if (full.ndim() != rowwise.ndim() || full.ndim() == 0) return false;
    const int64_t nd = full.ndim();
    if (rowwise.shape()[static_cast<size_t>(nd - 1)] != 1) return false;
    for (int64_t i = 0; i < nd - 1; ++i) {
      if (full.shape()[static_cast<size_t>(i)] !=
          rowwise.shape()[static_cast<size_t>(i)]) {
        return false;
      }
    }
    return true;
  };
  if (last_dim_broadcast(a, b)) {
    Tensor out = Tensor::Uninitialized(a.shape());
    const auto fn = kernels::GetBinarySpanScalarRhs(op);
    const int64_t n = a.shape()[static_cast<size_t>(a.ndim() - 1)];
    const int64_t rows = b.numel();
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, rows, RowGrain(n), [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        fn(pa + r * n, pb[r], po + r * n, n);
      }
    });
    return out;
  }
  if (last_dim_broadcast(b, a)) {
    Tensor out = Tensor::Uninitialized(b.shape());
    const auto fn = kernels::GetBinarySpanScalarLhs(op);
    const int64_t n = b.shape()[static_cast<size_t>(b.ndim() - 1)];
    const int64_t rows = a.numel();
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, rows, RowGrain(n), [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        fn(pb + r * n, pa[r], po + r * n, n);
      }
    });
    return out;
  }
  // Fast path: one operand's shape equals the other's trailing dims (a bias
  // [n] added to [B, T, n], a mask [Tq, Tk] on [B, Tq, Tk]) — tiled loop.
  auto tail_broadcast = [](const Tensor& full, const Tensor& tail) {
    if (tail.ndim() >= full.ndim()) return false;
    const int64_t off = full.ndim() - tail.ndim();
    for (int64_t i = 0; i < tail.ndim(); ++i) {
      if (tail.shape()[static_cast<size_t>(i)] !=
          full.shape()[static_cast<size_t>(off + i)]) {
        return false;
      }
    }
    return true;
  };
  if (tail_broadcast(a, b)) {
    Tensor out = Tensor::Uninitialized(a.shape());
    const auto fn = kernels::GetBinarySpan(op);
    const int64_t tile = b.numel();
    const int64_t reps = a.numel() / tile;
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, reps, RowGrain(tile), [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        fn(pa + r * tile, pb, po + r * tile, tile);
      }
    });
    return out;
  }
  if (tail_broadcast(b, a)) {
    Tensor out = Tensor::Uninitialized(b.shape());
    const auto fn = kernels::GetBinarySpan(op);
    const int64_t tile = a.numel();
    const int64_t reps = b.numel() / tile;
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, reps, RowGrain(tile), [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        fn(pa, pb + r * tile, po + r * tile, tile);
      }
    });
    return out;
  }
  MiddleBroadcast mb;
  if (MatchMiddleBroadcast(a, b, &mb)) {
    Tensor out = Tensor::Uninitialized(a.shape());
    const auto fn = kernels::GetBinarySpan(op);
    const int64_t rows = a.numel() / mb.tile;
    const int64_t reps = mb.reps;
    const int64_t tile = mb.tile;
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, rows, RowGrain(tile), [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        fn(pa + r * tile, pb + (r / reps) * tile, po + r * tile, tile);
      }
    });
    return out;
  }
  if (MatchMiddleBroadcast(b, a, &mb)) {
    Tensor out = Tensor::Uninitialized(b.shape());
    const auto fn = kernels::GetBinarySpan(op);
    const int64_t rows = b.numel() / mb.tile;
    const int64_t reps = mb.reps;
    const int64_t tile = mb.tile;
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, rows, RowGrain(tile), [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        fn(pa + (r / reps) * tile, pb + r * tile, po + r * tile, tile);
      }
    });
    return out;
  }
  return OdometerBroadcast(a, b, f);
}

// Vectorized unary map through the kernel layer's span dispatch.
Tensor UnaryK(const Tensor& a, kernels::UnOp op) {
  Tensor out = Tensor::Uninitialized(a.shape());
  const auto fn = kernels::GetUnarySpan(op);
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, a.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
    fn(pa + lo, po + lo, hi - lo);
  });
  return out;
}

// Scalar unary map — for the few ops without a vector kernel (Log).
template <typename F>
Tensor Unary(const Tensor& a, F f) {
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, a.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i]);
  });
  return out;
}

}  // namespace

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const size_t nd = std::max(a.size(), b.size());
  Shape out(nd, 1);
  for (size_t i = 0; i < nd; ++i) {
    const int64_t da = i < nd - a.size() ? 1 : a[i - (nd - a.size())];
    const int64_t db = i < nd - b.size() ? 1 : b[i - (nd - b.size())];
    TRANAD_CHECK_MSG(da == db || da == 1 || db == 1,
                     "cannot broadcast " << ShapeToString(a) << " with "
                                         << ShapeToString(b));
    out[i] = std::max(da, db);
  }
  return out;
}

Tensor ReduceTo(const Tensor& t, const Shape& target) {
  if (t.shape() == target) return t;
  Tensor cur = t;
  // Collapse extra leading axes first.
  while (cur.ndim() > static_cast<int64_t>(target.size())) {
    cur = Sum(cur, 0, /*keepdims=*/false);
  }
  // Then sum over axes where target has size 1.
  for (int64_t i = 0; i < cur.ndim(); ++i) {
    if (target[static_cast<size_t>(i)] == 1 && cur.size(i) != 1) {
      cur = Sum(cur, i, /*keepdims=*/true);
    }
  }
  TRANAD_CHECK_MSG(cur.shape() == target,
                   "ReduceTo " << ShapeToString(t.shape()) << " -> "
                               << ShapeToString(target));
  return cur;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, kernels::BinOp::kAdd,
                         [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, kernels::BinOp::kSub,
                         [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, kernels::BinOp::kMul,
                         [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, kernels::BinOp::kDiv,
                         [](float x, float y) { return x / y; });
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, kernels::BinOp::kMax,
                         [](float x, float y) { return std::max(x, y); });
}
Tensor SquaredDiff(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, kernels::BinOp::kSquaredDiff,
                         [](float x, float y) {
                           const float d = x - y;
                           return d * d;
                         });
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out = Tensor::Uninitialized(a.shape());
  const auto fn = kernels::GetBinarySpanScalarRhs(kernels::BinOp::kAdd);
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, a.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
    fn(pa + lo, s, po + lo, hi - lo);
  });
  return out;
}
Tensor MulScalar(const Tensor& a, float s) {
  Tensor out = Tensor::Uninitialized(a.shape());
  const auto fn = kernels::GetBinarySpanScalarRhs(kernels::BinOp::kMul);
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, a.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
    fn(pa + lo, s, po + lo, hi - lo);
  });
  return out;
}

Tensor ScaledDiff(const Tensor& a, const Tensor& b, float s) {
  TRANAD_CHECK(a.shape() == b.shape());
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelFor(0, a.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
    kernels::ScaledDiffSpan(pa + lo, pb + lo, s, po + lo, hi - lo);
  });
  return out;
}

Tensor Neg(const Tensor& a) { return UnaryK(a, kernels::UnOp::kNeg); }
Tensor Exp(const Tensor& a) { return UnaryK(a, kernels::UnOp::kExp); }
Tensor Log(const Tensor& a) {
  return Unary(a, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) { return UnaryK(a, kernels::UnOp::kSqrt); }
Tensor Abs(const Tensor& a) { return UnaryK(a, kernels::UnOp::kAbs); }
Tensor Square(const Tensor& a) { return UnaryK(a, kernels::UnOp::kSquare); }
Tensor Tanh(const Tensor& a) { return UnaryK(a, kernels::UnOp::kTanh); }
Tensor Sigmoid(const Tensor& a) { return UnaryK(a, kernels::UnOp::kSigmoid); }
Tensor Relu(const Tensor& a) { return UnaryK(a, kernels::UnOp::kRelu); }
Tensor LeakyRelu(const Tensor& a, float slope) {
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, a.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
    kernels::LeakyReluSpan(pa + lo, slope, po + lo, hi - lo);
  });
  return out;
}
Tensor Gelu(const Tensor& a) { return UnaryK(a, kernels::UnOp::kGelu); }

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TRANAD_CHECK_GE(a.ndim(), 2);
  TRANAD_CHECK_GE(b.ndim(), 2);
  const int64_t m = a.size(-2);
  const int64_t k = a.size(-1);
  TRANAD_CHECK_MSG(b.size(-2) == k, "matmul inner dim: "
                                        << ShapeToString(a.shape()) << " x "
                                        << ShapeToString(b.shape()));
  const int64_t n = b.size(-1);
  // Batch dims.
  Shape ba(a.shape().begin(), a.shape().end() - 2);
  Shape bb(b.shape().begin(), b.shape().end() - 2);
  const Shape batch = BroadcastShapes(ba, bb);
  const int64_t nbatch = NumElements(batch);
  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(n);
  Tensor out = Tensor::Uninitialized(out_shape);
  const int64_t a_batches = NumElements(ba);
  const int64_t b_batches = NumElements(bb);
  // Simple broadcast rule for batches: each operand either matches the
  // output batch count or has exactly one batch.
  TRANAD_CHECK(a_batches == nbatch || a_batches == 1);
  TRANAD_CHECK(b_batches == nbatch || b_batches == 1);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // When one B matrix is shared by every output row (a broadcast weight
  // matrix — the linear-layer case), pack its full vector-width panels once
  // into an arena buffer so the panel-register inner product streams
  // contiguous memory with no accumulator store/reload. Packing is pure
  // data movement; the accumulation order is unchanged, so packed and
  // direct results are bit-identical. Only worthwhile while the packed
  // image stays L1-resident (larger B makes the direct kernel's single
  // streaming pass per row the better access pattern).
  constexpr int64_t kPackResidencyFloats = 8192;  // 32 KiB of B panels
  ArenaBuffer packed;
  const bool use_packed = b_batches == 1 &&
                          n >= kernels::PackedPanelWidth() &&
                          nbatch * m >= 8 && k * n <= kPackResidencyFloats;
  if (use_packed) {
    packed = ArenaBuffer::Uninitialized(kernels::NumPackedFloats(k, n));
    kernels::PackB(pb, k, n, packed.data());
  }
  const float* ppacked = packed.data();
  // Partition over batch x output-rows; each row is produced whole by one
  // thread, with k*n flops per index setting the grain.
  const int64_t row_grain =
      std::max<int64_t>(1, kFlopGrain / std::max<int64_t>(1, k * n));
  ParallelFor(0, nbatch * m, row_grain, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t bi = r / m;
      const int64_t i = r % m;
      const float* am = pa + (a_batches == 1 ? 0 : bi) * m * k + i * k;
      const float* bm = pb + (b_batches == 1 ? 0 : bi) * k * n;
      if (use_packed) {
        kernels::MatMulRowPacked(am, ppacked, bm, po + r * n, k, n);
      } else {
        kernels::MatMulRowKernel(am, bm, po + r * n, k, n);
      }
    }
  });
  return out;
}

Tensor TransposeLast2(const Tensor& a) {
  TRANAD_CHECK_GE(a.ndim(), 2);
  const int64_t m = a.size(-2);
  const int64_t n = a.size(-1);
  Shape out_shape = a.shape();
  std::swap(out_shape[out_shape.size() - 1], out_shape[out_shape.size() - 2]);
  Tensor out = Tensor::Uninitialized(out_shape);
  const int64_t nbatch = a.numel() / (m * n);
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, nbatch, RowGrain(m * n), [&](int64_t lo, int64_t hi) {
    for (int64_t b = lo; b < hi; ++b) {
      const float* am = pa + b * m * n;
      float* om = po + b * m * n;
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) om[j * m + i] = am[i * n + j];
      }
    }
  });
  return out;
}

Tensor SwapAxes12(const Tensor& a) {
  TRANAD_CHECK_EQ(a.ndim(), 4);
  const int64_t n0 = a.size(0);
  const int64_t n1 = a.size(1);
  const int64_t n2 = a.size(2);
  const int64_t n3 = a.size(3);
  Tensor out = Tensor::Uninitialized({n0, n2, n1, n3});
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, n0 * n1, RowGrain(n2 * n3), [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t i0 = r / n1;
      const int64_t i1 = r % n1;
      for (int64_t i2 = 0; i2 < n2; ++i2) {
        std::copy(pa + ((i0 * n1 + i1) * n2 + i2) * n3,
                  pa + ((i0 * n1 + i1) * n2 + i2 + 1) * n3,
                  po + ((i0 * n2 + i2) * n1 + i1) * n3);
      }
    }
  });
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  TRANAD_CHECK(!parts.empty());
  const int64_t nd = parts.front().ndim();
  if (axis < 0) axis += nd;
  TRANAD_CHECK(axis >= 0 && axis < nd);
  Shape out_shape = parts.front().shape();
  int64_t total = 0;
  for (const auto& p : parts) {
    TRANAD_CHECK_EQ(p.ndim(), nd);
    for (int64_t i = 0; i < nd; ++i) {
      if (i != axis) TRANAD_CHECK_EQ(p.size(i), out_shape[static_cast<size_t>(i)]);
    }
    total += p.size(axis);
  }
  out_shape[static_cast<size_t>(axis)] = total;
  Tensor out = Tensor::Uninitialized(out_shape);
  // outer = product of dims before axis; inner = product after.
  int64_t outer = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= out_shape[static_cast<size_t>(i)];
  int64_t inner = 1;
  for (int64_t i = axis + 1; i < nd; ++i) {
    inner *= out_shape[static_cast<size_t>(i)];
  }
  float* po = out.data();
  const int64_t out_row = total * inner;
  int64_t col_off = 0;
  for (const auto& p : parts) {
    const int64_t len = p.size(axis);
    const float* pp = p.data();
    ParallelFor(0, outer, RowGrain(len * inner), [&](int64_t lo, int64_t hi) {
      for (int64_t o = lo; o < hi; ++o) {
        std::copy(pp + o * len * inner, pp + (o + 1) * len * inner,
                  po + o * out_row + col_off * inner);
      }
    });
    col_off += len;
  }
  return out;
}

Tensor SliceAxis(const Tensor& a, int64_t axis, int64_t start, int64_t len) {
  const int64_t nd = a.ndim();
  if (axis < 0) axis += nd;
  TRANAD_CHECK(axis >= 0 && axis < nd);
  TRANAD_CHECK(start >= 0 && len >= 0 && start + len <= a.size(axis));
  Shape out_shape = a.shape();
  out_shape[static_cast<size_t>(axis)] = len;
  Tensor out = Tensor::Uninitialized(out_shape);
  int64_t outer = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= a.size(i);
  int64_t inner = 1;
  for (int64_t i = axis + 1; i < nd; ++i) inner *= a.size(i);
  const int64_t in_row = a.size(axis) * inner;
  const int64_t out_row = len * inner;
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, outer, RowGrain(out_row), [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      std::copy(pa + o * in_row + start * inner,
                pa + o * in_row + (start + len) * inner, po + o * out_row);
    }
  });
  return out;
}

float SumAll(const Tensor& a) {
  // Serial on purpose: the ordered double accumulation is part of the
  // deterministic contract (a parallel tree reduction would round
  // differently), and full reductions are a negligible slice of runtime.
  double s = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) s += p[i];
  return static_cast<float>(s);
}

float MeanAll(const Tensor& a) {
  TRANAD_CHECK_GT(a.numel(), 0);
  return SumAll(a) / static_cast<float>(a.numel());
}

float MaxAll(const Tensor& a) {
  TRANAD_CHECK_GT(a.numel(), 0);
  float m = a.data()[0];
  for (int64_t i = 1; i < a.numel(); ++i) m = std::max(m, a.data()[i]);
  return m;
}

float MinAll(const Tensor& a) {
  TRANAD_CHECK_GT(a.numel(), 0);
  float m = a.data()[0];
  for (int64_t i = 1; i < a.numel(); ++i) m = std::min(m, a.data()[i]);
  return m;
}

float MseAll(const Tensor& a, const Tensor& b) {
  TRANAD_CHECK(a.shape() == b.shape());
  TRANAD_CHECK_GT(a.numel(), 0);
  // Fused (a-b)^2 accumulation — no intermediate tensors; value-identical
  // to MeanAll(Square(Sub(a, b))).
  const double s = kernels::SquaredDiffSumAll(a.data(), b.data(), a.numel());
  return static_cast<float>(s) / static_cast<float>(a.numel());
}

namespace {

template <typename Init, typename Acc>
Tensor ReduceAxis(const Tensor& a, int64_t axis, bool keepdims, Init init,
                  Acc acc) {
  const int64_t nd = a.ndim();
  if (axis < 0) axis += nd;
  TRANAD_CHECK(axis >= 0 && axis < nd);
  const int64_t len = a.size(axis);
  int64_t outer = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= a.size(i);
  int64_t inner = 1;
  for (int64_t i = axis + 1; i < nd; ++i) inner *= a.size(i);
  Shape out_shape;
  for (int64_t i = 0; i < nd; ++i) {
    if (i == axis) {
      if (keepdims) out_shape.push_back(1);
    } else {
      out_shape.push_back(a.size(i));
    }
  }
  Tensor out = Tensor::Uninitialized(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  // Each output element reduces its own strided fiber sequentially (in
  // ascending axis order), so the accumulation order per output never
  // depends on the schedule.
  ParallelFor(0, outer * inner, RowGrain(len), [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      const int64_t o = t / inner;
      const int64_t in = t % inner;
      float v = init(pa[o * len * inner + in]);
      for (int64_t l = 1; l < len; ++l) {
        v = acc(v, pa[(o * len + l) * inner + in]);
      }
      po[o * inner + in] = v;
    }
  });
  return out;
}

}  // namespace

Tensor Sum(const Tensor& a, int64_t axis, bool keepdims) {
  return ReduceAxis(
      a, axis, keepdims, [](float x) { return x; },
      [](float v, float x) { return v + x; });
}

Tensor Mean(const Tensor& a, int64_t axis, bool keepdims) {
  const int64_t nd = a.ndim();
  const int64_t ax = axis < 0 ? axis + nd : axis;
  Tensor s = Sum(a, axis, keepdims);
  return MulScalar(s, 1.0f / static_cast<float>(a.size(ax)));
}

Tensor Max(const Tensor& a, int64_t axis, bool keepdims) {
  return ReduceAxis(
      a, axis, keepdims, [](float x) { return x; },
      [](float v, float x) { return std::max(v, x); });
}

Tensor SoftmaxLastDim(const Tensor& a) {
  TRANAD_CHECK_GE(a.ndim(), 1);
  const int64_t n = a.size(-1);
  const int64_t rows = n == 0 ? 0 : a.numel() / n;
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, rows, RowGrain(n), [&](int64_t lo, int64_t hi) {
    kernels::SoftmaxRows(pa + lo * n, po + lo * n, hi - lo, n);
  });
  return out;
}

Tensor LayerNormLastDim(const Tensor& a, float eps) {
  TRANAD_CHECK_GE(a.ndim(), 1);
  const int64_t n = a.size(-1);
  const int64_t rows = n == 0 ? 0 : a.numel() / n;
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, rows, RowGrain(n), [&](int64_t lo, int64_t hi) {
    kernels::LayerNormRows(pa + lo * n, po + lo * n, /*inv_std=*/nullptr,
                           hi - lo, n, eps);
  });
  return out;
}

Tensor LayerNormAffineLastDim(const Tensor& a, const Tensor& gain,
                              const Tensor& bias, float eps) {
  TRANAD_CHECK_GE(a.ndim(), 1);
  const int64_t n = a.size(-1);
  TRANAD_CHECK_EQ(gain.numel(), n);
  TRANAD_CHECK_EQ(bias.numel(), n);
  const int64_t rows = n == 0 ? 0 : a.numel() / n;
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pa = a.data();
  const float* pg = gain.data();
  const float* pbs = bias.data();
  float* po = out.data();
  ParallelFor(0, rows, RowGrain(n), [&](int64_t lo, int64_t hi) {
    kernels::LayerNormAffineRows(pa + lo * n, pg, pbs, po + lo * n,
                                 /*yhat=*/nullptr, /*inv_std=*/nullptr,
                                 hi - lo, n, eps);
  });
  return out;
}

}  // namespace tranad
