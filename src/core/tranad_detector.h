#ifndef TRANAD_CORE_TRANAD_DETECTOR_H_
#define TRANAD_CORE_TRANAD_DETECTOR_H_

#include <memory>
#include <string>

#include "core/detector.h"
#include "core/tranad_model.h"
#include "core/tranad_trainer.h"
#include "data/preprocess.h"

namespace tranad {

/// End-to-end TranAD anomaly detector: Eq. (1) normalization, §3.2
/// windowing, Alg. 1 training, and Alg. 2 two-phase scoring
/// s = 1/2 |O1 - W|^2 + 1/2 |Ô2 - W|^2 per timestamp and dimension.
class TranADDetector : public AnomalyDetector {
 public:
  explicit TranADDetector(TranADConfig model_config = {},
                          TrainOptions train_options = {},
                          std::string display_name = "TranAD");

  std::string name() const override { return display_name_; }
  void Fit(const TimeSeries& train) override;
  Tensor Score(const TimeSeries& series) override;
  double seconds_per_epoch() const override { return stats_.seconds_per_epoch; }
  int64_t epochs_run() const override { return stats_.epochs_run; }

  /// Const, thread-safe scoring surface for the serving engine. All three
  /// methods require a fitted model in eval mode (Score() and
  /// FreezeForInference() both switch it) and touch no detector state, so
  /// they can run concurrently with each other on any number of threads.

  /// Applies the Eq. (1) normalization with the same out-of-range clip the
  /// batched scorer uses; x is [T, m] (T may be 1 for a single observation).
  Tensor NormalizeForScoring(const Tensor& x) const;

  /// Scores pre-normalized windows [B, K, m] -> per-dimension Eq. (13)
  /// scores [B, m] via the NoGrad two-phase pass. Rows are independent, so
  /// the result is bit-for-bit identical whether windows are scored one at
  /// a time or coalesced into one micro-batch.
  Tensor ScoreWindows(const Tensor& windows) const;

  /// Const equivalent of Score() (same values) that records no attention /
  /// focus state; used to calibrate new stream sessions while workers are
  /// concurrently scoring.
  Tensor ScoreSeries(const TimeSeries& series) const;

  /// Puts the model in eval mode. Call once before handing the detector to
  /// concurrent scorers; the const methods above never flip the flag
  /// themselves (that write would race with running forwards).
  void FreezeForInference();

  /// Persists the fitted detector — model config, weights, and normalizer
  /// ranges — as one crash-safe checkpoint (atomic tmp+fsync+rename).
  Status SaveCheckpoint(const std::string& path) const;

  /// Reconstructs a ready-to-score detector from a checkpoint written by
  /// SaveCheckpoint. The restored model is forced into eval mode
  /// recursively, so scoring is bit-identical to the live frozen detector —
  /// dropout can never perturb it.
  static Result<std::unique_ptr<TranADDetector>> FromCheckpoint(
      const std::string& path);

  /// Trained model access (visualizations, checkpointing).
  TranADModel* model() { return model_.get(); }
  const TranADModel* model() const { return model_.get(); }
  const TrainStats& train_stats() const { return stats_; }
  const MinMaxNormalizer& normalizer() const { return normalizer_; }

  /// Average context-encoder attention per window [T, K] and focus scores
  /// [T, m] captured during the most recent Score() call (Fig. 3 data).
  const Tensor& last_attention() const { return last_attention_; }
  const Tensor& last_focus() const { return last_focus_; }

 private:
  TranADConfig model_config_;
  TrainOptions train_options_;
  std::string display_name_;
  std::unique_ptr<TranADModel> model_;
  MinMaxNormalizer normalizer_;
  TrainStats stats_;
  Tensor last_attention_;
  Tensor last_focus_;
};

}  // namespace tranad

#endif  // TRANAD_CORE_TRANAD_DETECTOR_H_
