#include "nn/layer_norm.h"

#include "tensor/autograd_ops.h"

namespace tranad::nn {

LayerNorm::LayerNorm(int64_t features, float eps)
    : features_(features), eps_(eps) {
  gain_ = RegisterParameter("gain", Tensor::Ones({features}));
  bias_ = RegisterParameter("bias", Tensor::Zeros({features}));
}

Variable LayerNorm::Forward(const Variable& x) const {
  TRANAD_CHECK_EQ(x.value().size(-1), features_);
  // Single fused pass (one tape node) instead of LayerNormLastDim + Mul +
  // Add; per-element identical to the composed form.
  return ag::LayerNormAffine(x, gain_, bias_, eps_);
}

}  // namespace tranad::nn
