#include "nn/linear.h"

#include "nn/init.h"
#include "tensor/autograd_ops.h"

namespace tranad::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  weight_ = RegisterParameter("weight",
                              XavierUniform(in_features, out_features, rng));
  if (has_bias_) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
  }
}

Variable Linear::Forward(const Variable& x) const {
  TRANAD_CHECK_EQ(x.value().size(-1), in_features_);
  // Flatten leading dims so MatMul sees a plain 2-d product, then restore.
  Shape in_shape = x.shape();
  Variable flat =
      x.value().ndim() == 2 ? x : ag::Reshape(x, {-1, in_features_});
  Variable y = ag::MatMul(flat, weight_);
  if (has_bias_) y = ag::Add(y, bias_);
  if (x.value().ndim() != 2) {
    Shape out_shape = in_shape;
    out_shape.back() = out_features_;
    y = ag::Reshape(y, out_shape);
  }
  return y;
}

}  // namespace tranad::nn
