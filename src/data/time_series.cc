#include "data/time_series.h"

#include "common/csv.h"
#include "common/string_util.h"

namespace tranad {

double TimeSeries::AnomalyRate() const {
  if (labels.empty()) return 0.0;
  int64_t n = 0;
  for (uint8_t l : labels) n += l != 0;
  return static_cast<double>(n) / static_cast<double>(labels.size());
}

Status TimeSeries::Validate() const {
  if (values.ndim() != 2) {
    return Status::InvalidArgument(name + ": values must be [T, m]");
  }
  if (!labels.empty() &&
      static_cast<int64_t>(labels.size()) != values.size(0)) {
    return Status::InvalidArgument(name + ": label length mismatch");
  }
  if (has_dim_labels() && dim_labels.shape() != values.shape()) {
    return Status::InvalidArgument(name + ": dim_labels shape mismatch");
  }
  return Status::Ok();
}

Status Dataset::Validate() const {
  TRANAD_RETURN_IF_ERROR(train.Validate());
  TRANAD_RETURN_IF_ERROR(test.Validate());
  if (train.dims() != test.dims()) {
    return Status::InvalidArgument(name + ": train/test dims mismatch");
  }
  if (!test.has_labels()) {
    return Status::InvalidArgument(name + ": test series must be labeled");
  }
  return Status::Ok();
}

namespace {

Tensor TableToTensor(const CsvTable& table) {
  const int64_t rows = static_cast<int64_t>(table.rows.size());
  const int64_t cols =
      rows > 0 ? static_cast<int64_t>(table.rows.front().size()) : 0;
  Tensor out({rows, cols});
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      out.At({r, c}) =
          static_cast<float>(table.rows[static_cast<size_t>(r)]
                                       [static_cast<size_t>(c)]);
    }
  }
  return out;
}

}  // namespace

Result<Dataset> LoadDatasetCsv(const std::string& name,
                               const std::string& train_path,
                               const std::string& test_path,
                               const std::string& labels_path) {
  TRANAD_ASSIGN_OR_RETURN(CsvTable train_tab, ReadCsv(train_path, false));
  TRANAD_ASSIGN_OR_RETURN(CsvTable test_tab, ReadCsv(test_path, false));
  TRANAD_ASSIGN_OR_RETURN(CsvTable label_tab, ReadCsv(labels_path, false));

  Dataset ds;
  ds.name = name;
  ds.train.name = name + "/train";
  ds.train.values = TableToTensor(train_tab);
  ds.test.name = name + "/test";
  ds.test.values = TableToTensor(test_tab);

  const int64_t t = ds.test.length();
  if (static_cast<int64_t>(label_tab.rows.size()) != t) {
    return Status::InvalidArgument(labels_path + ": label rows != test rows");
  }
  const size_t label_cols =
      label_tab.rows.empty() ? 0 : label_tab.rows.front().size();
  ds.test.labels.resize(static_cast<size_t>(t), 0);
  if (static_cast<int64_t>(label_cols) == ds.test.dims() && label_cols > 1) {
    ds.test.dim_labels = TableToTensor(label_tab);
    for (int64_t i = 0; i < t; ++i) {
      for (int64_t d = 0; d < ds.test.dims(); ++d) {
        if (ds.test.dim_labels.At({i, d}) != 0.0f) {
          ds.test.labels[static_cast<size_t>(i)] = 1;
        }
      }
    }
  } else if (label_cols == 1) {
    for (int64_t i = 0; i < t; ++i) {
      ds.test.labels[static_cast<size_t>(i)] =
          label_tab.rows[static_cast<size_t>(i)][0] != 0.0 ? 1 : 0;
    }
  } else {
    return Status::InvalidArgument(labels_path +
                                   ": labels must have 1 or m columns");
  }
  TRANAD_RETURN_IF_ERROR(ds.Validate());
  return ds;
}

Status SaveTimeSeriesCsv(const TimeSeries& series, const std::string& path) {
  CsvTable table;
  const int64_t t = series.length();
  const int64_t m = series.dims();
  for (int64_t i = 0; i < m; ++i) {
    table.header.push_back(StrFormat("dim%lld", static_cast<long long>(i)));
  }
  if (series.has_labels()) table.header.push_back("label");
  table.rows.reserve(static_cast<size_t>(t));
  for (int64_t i = 0; i < t; ++i) {
    std::vector<double> row;
    row.reserve(static_cast<size_t>(m) + 1);
    for (int64_t d = 0; d < m; ++d) {
      row.push_back(series.values.At({i, d}));
    }
    if (series.has_labels()) {
      row.push_back(series.labels[static_cast<size_t>(i)]);
    }
    table.rows.push_back(std::move(row));
  }
  return WriteCsv(path, table);
}

}  // namespace tranad
