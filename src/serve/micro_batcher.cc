#include "serve/micro_batcher.h"

#include "common/check.h"

namespace tranad::serve {

MicroBatcher::MicroBatcher(int64_t max_batch, int64_t max_wait_us)
    : max_batch_(max_batch), max_wait_us_(max_wait_us) {
  TRANAD_CHECK_GT(max_batch, 0);
  TRANAD_CHECK_GE(max_wait_us, 0);
}

std::vector<ServeRequest> MicroBatcher::NextBatch(
    BoundedQueue<ServeRequest>* queue) const {
  std::vector<ServeRequest> batch;
  auto first = queue->Pop();
  if (!first.has_value()) return batch;  // closed and drained
  batch.reserve(static_cast<size_t>(max_batch_));
  batch.push_back(std::move(*first));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(max_wait_us_);
  while (static_cast<int64_t>(batch.size()) < max_batch_) {
    auto next = queue->PopBefore(deadline);
    if (!next.has_value()) break;  // linger expired (or closed and drained)
    batch.push_back(std::move(*next));
  }
  return batch;
}

}  // namespace tranad::serve
