#ifndef TRANAD_BASELINES_LSTM_NDT_H_
#define TRANAD_BASELINES_LSTM_NDT_H_

#include <memory>

#include "baselines/common.h"
#include "nn/optimizer.h"
#include "nn/rnn.h"

namespace tranad {

/// LSTM-NDT (Hundman et al., KDD'18): an LSTM forecaster predicting the
/// next observation from the window prefix; the squared forecast error per
/// dimension is the anomaly score. The companion non-parametric dynamic
/// threshold (NDT) lives in eval/pot.h (NdtThreshold) and is exercised by
/// the thresholding benches.
class LstmNdtDetector : public WindowedDetector {
 public:
  explicit LstmNdtDetector(int64_t window = 10, int64_t epochs = 5,
                           int64_t hidden = 32, uint64_t seed = 12);

 protected:
  void BuildModel(int64_t dims) override;
  double TrainBatch(const Tensor& batch, double progress) override;
  Tensor ScoreBatch(const Tensor& batch) override;

 private:
  /// Forecast of the final timestamp from the first window_-1 steps.
  Variable Forecast(const Variable& prefix) const;

  int64_t hidden_;
  uint64_t seed_;
  std::unique_ptr<nn::LstmCell> lstm_;
  std::unique_ptr<nn::Linear> readout_;
  std::unique_ptr<nn::Adam> opt_;
};

}  // namespace tranad

#endif  // TRANAD_BASELINES_LSTM_NDT_H_
