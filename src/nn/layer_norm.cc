#include "nn/layer_norm.h"

#include "tensor/autograd_ops.h"

namespace tranad::nn {

LayerNorm::LayerNorm(int64_t features, float eps)
    : features_(features), eps_(eps) {
  gain_ = RegisterParameter("gain", Tensor::Ones({features}));
  bias_ = RegisterParameter("bias", Tensor::Zeros({features}));
}

Variable LayerNorm::Forward(const Variable& x) const {
  TRANAD_CHECK_EQ(x.value().size(-1), features_);
  Variable normed = ag::LayerNormLastDim(x, eps_);
  return ag::Add(ag::Mul(normed, gain_), bias_);
}

}  // namespace tranad::nn
