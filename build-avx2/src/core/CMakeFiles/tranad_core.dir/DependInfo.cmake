
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/online_detector.cc" "src/core/CMakeFiles/tranad_core.dir/online_detector.cc.o" "gcc" "src/core/CMakeFiles/tranad_core.dir/online_detector.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/tranad_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/tranad_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/tranad_detector.cc" "src/core/CMakeFiles/tranad_core.dir/tranad_detector.cc.o" "gcc" "src/core/CMakeFiles/tranad_core.dir/tranad_detector.cc.o.d"
  "/root/repo/src/core/tranad_model.cc" "src/core/CMakeFiles/tranad_core.dir/tranad_model.cc.o" "gcc" "src/core/CMakeFiles/tranad_core.dir/tranad_model.cc.o.d"
  "/root/repo/src/core/tranad_trainer.cc" "src/core/CMakeFiles/tranad_core.dir/tranad_trainer.cc.o" "gcc" "src/core/CMakeFiles/tranad_core.dir/tranad_trainer.cc.o.d"
  "/root/repo/src/core/window_ring.cc" "src/core/CMakeFiles/tranad_core.dir/window_ring.cc.o" "gcc" "src/core/CMakeFiles/tranad_core.dir/window_ring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-avx2/src/nn/CMakeFiles/tranad_nn.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/data/CMakeFiles/tranad_data.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/eval/CMakeFiles/tranad_eval.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/tensor/CMakeFiles/tranad_tensor.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/common/CMakeFiles/tranad_common.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/io/CMakeFiles/tranad_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
