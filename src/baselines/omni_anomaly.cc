#include "baselines/omni_anomaly.h"

#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad {

OmniAnomalyDetector::OmniAnomalyDetector(int64_t window, int64_t epochs,
                                         int64_t hidden, int64_t latent,
                                         uint64_t seed)
    : WindowedDetector("OmniAnomaly", window, epochs, 128),
      hidden_(hidden),
      latent_(latent),
      seed_(seed) {}

void OmniAnomalyDetector::BuildModel(int64_t dims) {
  Rng rng(seed_);
  gru_ = std::make_unique<nn::GruCell>(dims, hidden_, &rng);
  to_mu_ = std::make_unique<nn::Linear>(hidden_, latent_, &rng);
  to_logvar_ = std::make_unique<nn::Linear>(hidden_, latent_, &rng);
  dec1_ = std::make_unique<nn::Linear>(latent_, hidden_, &rng);
  dec2_ = std::make_unique<nn::Linear>(hidden_, dims, &rng);
  std::vector<Variable> params;
  for (auto* m : std::initializer_list<nn::Module*>{
           gru_.get(), to_mu_.get(), to_logvar_.get(), dec1_.get(),
           dec2_.get()}) {
    auto p = m->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  opt_ = std::make_unique<nn::Adam>(params, 0.003f);
}

OmniAnomalyDetector::VaeOut OmniAnomalyDetector::Forward(const Tensor& batch,
                                                         bool sample) {
  const int64_t b = batch.size(0);
  Variable seq(batch);
  Variable h = RunGruLast(*gru_, seq);  // [B, hidden]
  VaeOut out;
  out.mu = to_mu_->Forward(h);
  out.logvar = to_logvar_->Forward(h);
  Variable z = out.mu;
  if (sample) {
    // Reparameterization trick: z = mu + exp(logvar/2) * eps.
    Tensor eps = Tensor::Randn({b, latent_}, &sample_rng_);
    Variable std = ag::Exp(ag::MulScalar(out.logvar, 0.5f));
    z = ag::Add(out.mu, ag::Mul(std, Variable(eps)));
  }
  out.recon = ag::Sigmoid(dec2_->Forward(ag::Tanh(dec1_->Forward(z))));
  return out;
}

double OmniAnomalyDetector::TrainBatch(const Tensor& batch,
                                       double /*progress*/) {
  const int64_t b = batch.size(0);
  const Tensor target = SliceAxis(batch, 1, window_ - 1, 1)
                            .Reshape({b, dims_});
  VaeOut out = Forward(batch, /*sample=*/true);
  Variable recon_loss = ag::MseLoss(out.recon, target);
  // KL(N(mu, sigma) || N(0, I)) = -0.5 mean(1 + logvar - mu^2 - e^logvar).
  Variable kl = ag::MulScalar(
      ag::MeanAll(ag::Sub(
          ag::Add(ag::Square(out.mu), ag::Exp(out.logvar)),
          ag::AddScalar(out.logvar, 1.0f))),
      0.5f);
  Variable loss = ag::Add(recon_loss, ag::MulScalar(kl, 0.005f));
  opt_->ZeroGrad();
  loss.Backward();
  opt_->ClipGradNorm(5.0f);
  opt_->Step();
  return loss.value().Item();
}

Tensor OmniAnomalyDetector::ScoreBatch(const Tensor& batch) {
  const int64_t b = batch.size(0);
  const Tensor target = SliceAxis(batch, 1, window_ - 1, 1)
                            .Reshape({b, dims_});
  // Posterior mean reconstruction at test time.
  VaeOut out = Forward(batch, /*sample=*/false);
  Tensor scores({b, dims_});
  const float* pr = out.recon.value().data();
  const float* pt = target.data();
  for (int64_t i = 0; i < b * dims_; ++i) {
    const float e = pr[i] - pt[i];
    scores.data()[i] = e * e;
  }
  return scores;
}

}  // namespace tranad
