file(REMOVE_RECURSE
  "CMakeFiles/table2_detection.dir/table2_detection.cc.o"
  "CMakeFiles/table2_detection.dir/table2_detection.cc.o.d"
  "table2_detection"
  "table2_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
