
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/preprocess.cc" "src/data/CMakeFiles/tranad_data.dir/preprocess.cc.o" "gcc" "src/data/CMakeFiles/tranad_data.dir/preprocess.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/tranad_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/tranad_data.dir/synthetic.cc.o.d"
  "/root/repo/src/data/time_series.cc" "src/data/CMakeFiles/tranad_data.dir/time_series.cc.o" "gcc" "src/data/CMakeFiles/tranad_data.dir/time_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-avx2/src/tensor/CMakeFiles/tranad_tensor.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/common/CMakeFiles/tranad_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
