# Empty dependencies file for tranad_serve.
# This may be replaced when dependencies are built.
