#include "common/logging.h"

#include <cstdlib>
#include <cstring>

namespace tranad {
namespace {

LogLevel ParseEnvLevel() {
  const char* env = std::getenv("TRANAD_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

LogLevel& MutableLevel() {
  static LogLevel level = ParseEnvLevel();
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return MutableLevel(); }
void SetLogLevel(LogLevel level) { MutableLevel() = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LevelTag(level) << " " << (base ? base + 1 : file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
}

}  // namespace internal
}  // namespace tranad
