#include "data/time_series.h"

#include <gtest/gtest.h>

#include <fstream>

namespace tranad {
namespace {

TimeSeries MakeSeries(int64_t t, int64_t m, bool labels) {
  TimeSeries ts;
  ts.name = "toy";
  ts.values = Tensor({t, m});
  if (labels) {
    ts.labels.assign(static_cast<size_t>(t), 0);
    ts.labels[0] = 1;
  }
  return ts;
}

TEST(TimeSeriesTest, BasicAccessors) {
  TimeSeries ts = MakeSeries(10, 3, true);
  EXPECT_EQ(ts.length(), 10);
  EXPECT_EQ(ts.dims(), 3);
  EXPECT_TRUE(ts.has_labels());
  EXPECT_FALSE(ts.has_dim_labels());
  EXPECT_NEAR(ts.AnomalyRate(), 0.1, 1e-9);
}

TEST(TimeSeriesTest, ValidateCatchesLabelMismatch) {
  TimeSeries ts = MakeSeries(10, 2, true);
  ts.labels.resize(5);
  EXPECT_FALSE(ts.Validate().ok());
}

TEST(TimeSeriesTest, ValidateCatchesDimLabelShape) {
  TimeSeries ts = MakeSeries(10, 2, true);
  ts.dim_labels = Tensor({10, 3});
  EXPECT_FALSE(ts.Validate().ok());
  ts.dim_labels = Tensor({10, 2});
  EXPECT_TRUE(ts.Validate().ok());
  EXPECT_TRUE(ts.has_dim_labels());
}

TEST(DatasetTest, ValidateRequiresLabeledTest) {
  Dataset ds;
  ds.name = "d";
  ds.train = MakeSeries(10, 2, false);
  ds.test = MakeSeries(8, 2, false);
  EXPECT_FALSE(ds.Validate().ok());
  ds.test.labels.assign(8, 0);
  EXPECT_TRUE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesDimMismatch) {
  Dataset ds;
  ds.train = MakeSeries(10, 2, false);
  ds.test = MakeSeries(8, 3, true);
  EXPECT_FALSE(ds.Validate().ok());
}

class LoadCsvTest : public ::testing::Test {
 protected:
  std::string Write(const std::string& name, const std::string& content) {
    const std::string path = ::testing::TempDir() + "/" + name;
    std::ofstream out(path);
    out << content;
    return path;
  }
};

TEST_F(LoadCsvTest, LoadsWithScalarLabels) {
  const auto train = Write("tr.csv", "1,2\n3,4\n5,6\n");
  const auto test = Write("te.csv", "1,2\n9,9\n");
  const auto labels = Write("la.csv", "0\n1\n");
  auto ds = LoadDatasetCsv("toy", train, test, labels);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->train.length(), 3);
  EXPECT_EQ(ds->test.length(), 2);
  EXPECT_EQ(ds->dims(), 2);
  EXPECT_EQ(ds->test.labels[1], 1);
  EXPECT_FALSE(ds->test.has_dim_labels());
}

TEST_F(LoadCsvTest, LoadsWithPerDimLabels) {
  const auto train = Write("tr2.csv", "1,2\n3,4\n");
  const auto test = Write("te2.csv", "1,2\n9,9\n");
  const auto labels = Write("la2.csv", "0,0\n1,0\n");
  auto ds = LoadDatasetCsv("toy", train, test, labels);
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ds->test.has_dim_labels());
  EXPECT_EQ(ds->test.labels[1], 1);  // OR of dim labels
  EXPECT_EQ(ds->test.labels[0], 0);
}

TEST_F(LoadCsvTest, LabelRowCountMismatchRejected) {
  const auto train = Write("tr3.csv", "1\n2\n");
  const auto test = Write("te3.csv", "1\n2\n");
  const auto labels = Write("la3.csv", "0\n");
  EXPECT_FALSE(LoadDatasetCsv("toy", train, test, labels).ok());
}

TEST_F(LoadCsvTest, MissingFileFails) {
  const auto train = Write("tr4.csv", "1\n");
  EXPECT_FALSE(
      LoadDatasetCsv("toy", train, "/nonexistent.csv", train).ok());
}

TEST(SaveTimeSeriesTest, RoundTripThroughCsv) {
  TimeSeries ts = MakeSeries(4, 2, true);
  ts.values.At({2, 1}) = 7.5f;
  const std::string path = ::testing::TempDir() + "/series.csv";
  ASSERT_TRUE(SaveTimeSeriesCsv(ts, path).ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "dim0,dim1,label");
  std::string row0;
  std::getline(in, row0);
  EXPECT_EQ(row0, "0,0,1");
}

}  // namespace
}  // namespace tranad
