#include "net/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "net/client.h"
#include "fleet_fixture.h"

namespace tranad::net {
namespace {

using serve::ShardRouter;
using serve::ShardRouterOptions;

/// Collects verdicts off the client's reader thread and lets tests block
/// until an expected number have arrived.
struct VerdictSink {
  std::mutex mu;
  std::condition_variable cv;
  std::map<uint64_t, std::vector<WireVerdict>> by_stream;  // ordered by seq
  int64_t count = 0;

  NetClient::VerdictHandler Handler() {
    return [this](const WireVerdict& v) {
      std::lock_guard<std::mutex> lock(mu);
      by_stream[v.stream_key].push_back(v);
      ++count;
      cv.notify_all();
    };
  }

  bool WaitFor(int64_t n, int64_t timeout_ms = 60'000) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return count >= n; });
  }
};

/// Router + server + connected client, torn down in declaration order
/// (server before router, per the NetServer lifetime contract).
struct Harness {
  explicit Harness(int64_t shards, ServerOptions server_options = {}) {
    ShardRouterOptions options;
    options.num_shards = shards;
    options.shard.num_workers = 1;
    options.shard.max_batch = 4;
    options.shard.max_wait_us = 100;
    options.shard.pot = PotParamsForDataset("SMAP");
    router = std::make_unique<ShardRouter>(TestFleet::Get().detector,
                                           options);
    server = std::make_unique<NetServer>(router.get(), server_options);
    const Status st = server->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  Status ConnectClient(NetClient* client) {
    return client->Connect("127.0.0.1", server->port());
  }

  std::unique_ptr<ShardRouter> router;
  std::unique_ptr<NetServer> server;
};

int ConnectRaw(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  return fd;
}

/// Reads until EOF (or error) and returns everything received.
std::vector<uint8_t> DrainUntilEof(int fd) {
  std::vector<uint8_t> all;
  uint8_t buf[4096];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    all.insert(all.end(), buf, buf + n);
  }
  return all;
}

TEST(NetServerTest, StartStopAndPing) {
  Harness h(/*shards=*/1);
  EXPECT_NE(h.server->port(), 0);
  EXPECT_EQ(h.server->Start().code(), StatusCode::kFailedPrecondition);

  NetClient client;
  ASSERT_TRUE(h.ConnectClient(&client).ok());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Ping().ok());
  client.Close();

  h.server->Stop();
  h.server->Stop();  // idempotent
}

// The acceptance test for the socket path: verdicts served over TCP are
// bit-exact with the in-process sequential OnlineTranAD reference — the
// wire adds transport, not noise.
TEST(NetServerTest, SocketVerdictsMatchInProcessScoringBitExact) {
  const TestFleet& fleet = TestFleet::Get();
  const int64_t steps = 25;
  const PotParams pot = PotParamsForDataset("SMAP");

  std::vector<std::vector<OnlineVerdict>> expected(TestFleet::kNumStreams);
  for (uint64_t s = 0; s < TestFleet::kNumStreams; ++s) {
    OnlineTranAD online(fleet.detector, pot);
    online.Calibrate(fleet.datasets[s].train);
    for (int64_t t = 0; t < steps; ++t) {
      expected[s].push_back(online.Observe(fleet.Observation(s, t)));
    }
  }

  Harness h(/*shards=*/2);
  VerdictSink sink;
  NetClient client;
  client.set_verdict_handler(sink.Handler());
  ASSERT_TRUE(h.ConnectClient(&client).ok());

  const uint64_t keys[TestFleet::kNumStreams] = {101, 202};
  for (uint64_t s = 0; s < TestFleet::kNumStreams; ++s) {
    const Status st =
        client.CreateStream(keys[s], fleet.datasets[s].train.values);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  for (int64_t t = 0; t < steps; ++t) {
    for (uint64_t s = 0; s < TestFleet::kNumStreams; ++s) {
      const Tensor obs = fleet.Observation(s, t);
      ASSERT_TRUE(client
                      .Submit(keys[s], /*tag=*/s * 1000 + t, obs.data(),
                              obs.numel())
                      .ok());
    }
  }
  ASSERT_TRUE(sink.WaitFor(static_cast<int64_t>(TestFleet::kNumStreams) *
                           steps))
      << "verdicts did not all arrive";

  std::lock_guard<std::mutex> lock(sink.mu);
  for (uint64_t s = 0; s < TestFleet::kNumStreams; ++s) {
    const auto& got = sink.by_stream[keys[s]];
    ASSERT_EQ(got.size(), static_cast<size_t>(steps));
    for (int64_t t = 0; t < steps; ++t) {
      const WireVerdict& v = got[static_cast<size_t>(t)];
      const OnlineVerdict& e = expected[s][static_cast<size_t>(t)];
      ASSERT_TRUE(v.status.ok()) << v.status.ToString();
      ASSERT_EQ(v.seq, t) << "stream " << s;  // per-stream FIFO on the wire
      ASSERT_EQ(v.tag, s * 1000 + static_cast<uint64_t>(t));
      // Bit-exact doubles end to end: process -> frame -> TCP -> frame.
      ASSERT_EQ(v.score, e.score) << "stream " << s << " t=" << t;
      ASSERT_EQ(v.threshold, e.threshold) << "stream " << s << " t=" << t;
      ASSERT_EQ(v.anomalous, e.anomalous) << "stream " << s << " t=" << t;
    }
  }
}

TEST(NetServerTest, AdmissionFailuresComeBackAsStatusVerdicts) {
  const TestFleet& fleet = TestFleet::Get();
  Harness h(/*shards=*/1);
  VerdictSink sink;
  NetClient client;
  client.set_verdict_handler(sink.Handler());
  ASSERT_TRUE(h.ConnectClient(&client).ok());

  // Unknown stream: the submit is answered, not dropped.
  const Tensor obs = fleet.Observation(0, 0);
  ASSERT_TRUE(client.Submit(/*stream_key=*/999, /*tag=*/1, obs.data(),
                            obs.numel())
                  .ok());
  ASSERT_TRUE(sink.WaitFor(1));
  {
    std::lock_guard<std::mutex> lock(sink.mu);
    const WireVerdict& v = sink.by_stream[999][0];
    EXPECT_EQ(v.seq, -1);
    EXPECT_EQ(v.tag, 1u);
    EXPECT_EQ(v.status.code(), StatusCode::kNotFound);
  }

  // Wrong dimensionality on a real stream: InvalidArgument, seq=-1.
  ASSERT_TRUE(
      client.CreateStream(7, fleet.datasets[0].train.values).ok());
  std::vector<float> wrong(obs.numel() + 1, 0.0f);
  ASSERT_TRUE(client.Submit(7, /*tag=*/2, wrong.data(),
                            static_cast<int64_t>(wrong.size()))
                  .ok());
  ASSERT_TRUE(sink.WaitFor(2));
  std::lock_guard<std::mutex> lock(sink.mu);
  const WireVerdict& v = sink.by_stream[7][0];
  EXPECT_EQ(v.seq, -1);
  EXPECT_EQ(v.status.code(), StatusCode::kInvalidArgument);
}

TEST(NetServerTest, StatsAndRollingReloadOverTheWire) {
  const TestFleet& fleet = TestFleet::Get();
  const std::string ckpt = ::testing::TempDir() + "/net_reload.ckpt";
  ASSERT_TRUE(fleet.detector->SaveCheckpoint(ckpt).ok());

  Harness h(/*shards=*/2);
  VerdictSink sink;
  NetClient client;
  client.set_verdict_handler(sink.Handler());
  ASSERT_TRUE(h.ConnectClient(&client).ok());
  ASSERT_TRUE(client.CreateStream(1, fleet.datasets[0].train.values).ok());

  const int64_t n = 8;
  for (int64_t t = 0; t < n; ++t) {
    const Tensor obs = fleet.Observation(0, t);
    ASSERT_TRUE(
        client.Submit(1, static_cast<uint64_t>(t), obs.data(), obs.numel())
            .ok());
  }
  ASSERT_TRUE(sink.WaitFor(n));

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->shards, 2);
  EXPECT_EQ(stats->completed, n);
  EXPECT_GE(stats->p99_latency_ms, 0.0);

  // Rolling reload through the socket; the ack carries the fleet status.
  ASSERT_TRUE(client.Reload(ckpt).ok());
  stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->reloads, 2) << "one swap per shard";

  // A bad path fails cleanly and the fleet keeps serving.
  EXPECT_FALSE(client.Reload(::testing::TempDir() + "/missing.ckpt").ok());
  const Tensor obs = fleet.Observation(0, 0);
  ASSERT_TRUE(client.Submit(1, 99, obs.data(), obs.numel()).ok());
  EXPECT_TRUE(sink.WaitFor(n + 1));
}

TEST(NetServerTest, CloseStreamOverTheWire) {
  const TestFleet& fleet = TestFleet::Get();
  Harness h(/*shards=*/1);
  VerdictSink sink;
  NetClient client;
  client.set_verdict_handler(sink.Handler());
  ASSERT_TRUE(h.ConnectClient(&client).ok());

  ASSERT_TRUE(client.CreateStream(5, fleet.datasets[0].train.values).ok());
  EXPECT_EQ(client.CreateStream(5, fleet.datasets[0].train.values).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(client.CloseStream(5).ok());
  EXPECT_EQ(client.CloseStream(5).code(), StatusCode::kNotFound);

  const Tensor obs = fleet.Observation(0, 0);
  ASSERT_TRUE(client.Submit(5, 1, obs.data(), obs.numel()).ok());
  ASSERT_TRUE(sink.WaitFor(1));
  std::lock_guard<std::mutex> lock(sink.mu);
  EXPECT_EQ(sink.by_stream[5][0].status.code(), StatusCode::kNotFound);
}

TEST(NetServerTest, GarbageInputGetsOneErrorFrameThenClose) {
  Harness h(/*shards=*/1);
  const int fd = ConnectRaw(h.server->port());
  const char garbage[] = "POST /totally/not/the/protocol HTTP/1.1\r\n\r\n";
  ASSERT_EQ(write(fd, garbage, sizeof(garbage) - 1),
            static_cast<ssize_t>(sizeof(garbage) - 1));

  // The server answers with exactly one kError frame, then EOF.
  const std::vector<uint8_t> reply = DrainUntilEof(fd);
  close(fd);
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(reply.data(), reply.size()).ok());
  FrameView frame;
  bool got = false;
  ASSERT_TRUE(reader.Next(&frame, &got).ok());
  ASSERT_TRUE(got) << "no error frame before close";
  EXPECT_EQ(frame.type, FrameType::kError);
  WireAck error;
  ASSERT_TRUE(WireAck::Decode(frame, &error).ok());
  EXPECT_EQ(error.status.code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(reader.Next(&frame, &got).ok());
  EXPECT_FALSE(got) << "more than one frame after a protocol error";
  EXPECT_GE(h.server->protocol_errors_total(), 1);

  // The server survives hostile clients: a well-behaved one still works.
  NetClient client;
  ASSERT_TRUE(h.ConnectClient(&client).ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST(NetServerTest, OversizedFrameFromClientIsRejected) {
  ServerOptions options;
  options.max_frame_payload = 1024;
  Harness h(/*shards=*/1, options);
  const int fd = ConnectRaw(h.server->port());

  // Valid header, declared payload far beyond the server's limit.
  uint8_t header[12] = {'T', 'A', 'D', 'W', kWireVersion,
                        static_cast<uint8_t>(FrameType::kSubmit),
                        0,   0,   0,   0,   0x10, 0x00};  // 1 MiB length
  ASSERT_EQ(write(fd, header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  const std::vector<uint8_t> reply = DrainUntilEof(fd);
  close(fd);

  FrameReader reader;
  ASSERT_TRUE(reader.Feed(reply.data(), reply.size()).ok());
  FrameView frame;
  bool got = false;
  ASSERT_TRUE(reader.Next(&frame, &got).ok());
  ASSERT_TRUE(got);
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_GE(h.server->protocol_errors_total(), 1);
}

TEST(NetServerTest, ServerOutlivesClientsWithVerdictsInFlight) {
  const TestFleet& fleet = TestFleet::Get();
  Harness h(/*shards=*/2);
  {
    NetClient client;
    ASSERT_TRUE(h.ConnectClient(&client).ok());
    ASSERT_TRUE(
        client.CreateStream(1, fleet.datasets[0].train.values).ok());
    for (int64_t t = 0; t < 10; ++t) {
      const Tensor obs = fleet.Observation(0, t);
      ASSERT_TRUE(client
                      .Submit(1, static_cast<uint64_t>(t), obs.data(),
                              obs.numel())
                      .ok());
    }
    client.Close();  // vanish with verdicts possibly still in flight
  }
  // Every admitted observation still completes exactly once server-side.
  h.router->Flush();
  const auto stats = h.router->stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.failed);

  NetClient again;
  ASSERT_TRUE(h.ConnectClient(&again).ok());
  EXPECT_TRUE(again.Ping().ok());
}

}  // namespace
}  // namespace tranad::net
