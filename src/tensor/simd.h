#ifndef TRANAD_TENSOR_SIMD_H_
#define TRANAD_TENSOR_SIMD_H_

// Portable SIMD abstraction for the tensor kernel layer (kernels.cc is the
// only intended includer; nothing ISA-specific leaks into public headers).
//
// Design: the ISA is picked at compile time (AVX2 > SSE2 > NEON > generic)
// and fixes the lane count kLanes. Two vector backends implement the SAME
// primitive set at the SAME width:
//
//   * NativeVec — the ISA's intrinsic vector.
//   * ScalarVec — a float[kLanes] evaluated lane-by-lane with plain
//     scalar arithmetic.
//
// Every primitive is an exactly-rounded IEEE-754 single operation per lane
// (add/sub/mul/div/sqrt/min/max/bitwise select), so a kernel templated over
// the backend performs the identical arithmetic DAG on either one and the
// results are bit-for-bit equal. That identity is the bit-exactness
// contract behind TRANAD_KERNEL=scalar|simd: the scalar config is not an
// approximation of the SIMD config, it is the same computation executed one
// lane at a time. Transcendentals (exp, and tanh/sigmoid/gelu built on it)
// are our own polynomial evaluated through these primitives, never libm, so
// they inherit the same identity.
//
// The primitives are additionally overloaded for plain `float`, so loop
// tails (the n % kLanes remainder) run the same per-lane arithmetic as the
// vector body in both configs.
//
// NOTE: kernels must be compiled with FP contraction off (-ffp-contract=off
// on the tensor library); a compiler-fused a*b+c in the scalar path would
// round differently from the explicit Mul+Add the intrinsic path performs.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if defined(__AVX2__)
#define TRANAD_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define TRANAD_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define TRANAD_SIMD_NEON 1
#include <arm_neon.h>
#else
#define TRANAD_SIMD_GENERIC 1
#endif

namespace tranad::simd {

#if defined(TRANAD_SIMD_AVX2)
inline constexpr int kLanes = 8;
inline constexpr const char* kIsaName = "avx2";
#elif defined(TRANAD_SIMD_SSE2)
inline constexpr int kLanes = 4;
inline constexpr const char* kIsaName = "sse2";
#elif defined(TRANAD_SIMD_NEON)
inline constexpr int kLanes = 4;
inline constexpr const char* kIsaName = "neon";
#else
inline constexpr int kLanes = 4;
inline constexpr const char* kIsaName = "generic";
#endif

// ---------------------------------------------------------------------------
// float overloads — the per-lane reference semantics. ScalarVec applies
// these per lane; NativeVec must match them bit-for-bit per lane.
// ---------------------------------------------------------------------------

inline float Add(float a, float b) { return a + b; }
inline float Sub(float a, float b) { return a - b; }
inline float Mul(float a, float b) { return a * b; }
inline float Div(float a, float b) { return a / b; }
// Max/Min mirror MAXPS/MINPS exactly: `a op b ? a : b`, so the *second*
// operand is returned on ties (+0/-0) and when the comparison is unordered
// (NaN). MaxStd instead mirrors std::max — `(a < b) ? b : a`, first operand
// on ties/NaN — for kernels replacing std::max call sites bit-for-bit.
inline float Max(float a, float b) { return a > b ? a : b; }
inline float Min(float a, float b) { return a < b ? a : b; }
inline float MaxStd(float a, float b) { return a < b ? b : a; }
inline float Sqrt(float a) { return std::sqrt(a); }

inline float BitCastFloat(uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}
inline uint32_t BitCastU32(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

inline float Abs(float a) { return BitCastFloat(BitCastU32(a) & 0x7fffffffu); }
inline float Neg(float a) { return BitCastFloat(BitCastU32(a) ^ 0x80000000u); }

/// Per-lane select: x > 0 ? a : b (false for NaN x).
inline float SelectGtZero(float x, float a, float b) {
  return x > 0.0f ? a : b;
}
/// Per-lane select: x == x ? a : b (b where x is NaN).
inline float SelectOrdered(float x, float a, float b) { return x == x ? a : b; }
/// Per-lane select: x >= t ? a : b (false for NaN x or t).
inline float SelectGe(float x, float t, float a, float b) {
  return x >= t ? a : b;
}

/// Round to nearest (ties to even, the default FP environment) — the scalar
/// twin of cvtps2dq+cvtdq2ps. Inputs are pre-clamped to a small range.
inline float RoundNearest(float a) { return std::nearbyintf(a); }

/// a * 2^n where `n` holds a small integer-valued float (|n| <= 127).
inline float Ldexp2i(float a, float n) {
  const int32_t ni = static_cast<int32_t>(n);
  return Mul(a, BitCastFloat(static_cast<uint32_t>((ni + 127) << 23)));
}

// ---------------------------------------------------------------------------
// ScalarVec — float[kLanes], each primitive applied lane-wise.
// ---------------------------------------------------------------------------

struct ScalarVec {
  float lane[kLanes];
};

inline ScalarVec Set1(ScalarVec*, float v) {
  ScalarVec r;
  for (int i = 0; i < kLanes; ++i) r.lane[i] = v;
  return r;
}
inline ScalarVec LoadU(ScalarVec*, const float* p) {
  ScalarVec r;
  for (int i = 0; i < kLanes; ++i) r.lane[i] = p[i];
  return r;
}
inline void StoreU(float* p, ScalarVec v) {
  for (int i = 0; i < kLanes; ++i) p[i] = v.lane[i];
}

#define TRANAD_SCALARVEC_BINOP(Name)                          \
  inline ScalarVec Name(ScalarVec a, ScalarVec b) {           \
    ScalarVec r;                                              \
    for (int i = 0; i < kLanes; ++i)                          \
      r.lane[i] = Name(a.lane[i], b.lane[i]);                 \
    return r;                                                 \
  }
TRANAD_SCALARVEC_BINOP(Add)
TRANAD_SCALARVEC_BINOP(Sub)
TRANAD_SCALARVEC_BINOP(Mul)
TRANAD_SCALARVEC_BINOP(Div)
TRANAD_SCALARVEC_BINOP(Max)
TRANAD_SCALARVEC_BINOP(Min)
TRANAD_SCALARVEC_BINOP(MaxStd)
#undef TRANAD_SCALARVEC_BINOP

#define TRANAD_SCALARVEC_UNOP(Name)                                        \
  inline ScalarVec Name(ScalarVec a) {                                     \
    ScalarVec r;                                                           \
    for (int i = 0; i < kLanes; ++i) r.lane[i] = Name(a.lane[i]);          \
    return r;                                                              \
  }
TRANAD_SCALARVEC_UNOP(Sqrt)
TRANAD_SCALARVEC_UNOP(Abs)
TRANAD_SCALARVEC_UNOP(Neg)
TRANAD_SCALARVEC_UNOP(RoundNearest)
#undef TRANAD_SCALARVEC_UNOP

inline ScalarVec SelectGtZero(ScalarVec x, ScalarVec a, ScalarVec b) {
  ScalarVec r;
  for (int i = 0; i < kLanes; ++i)
    r.lane[i] = SelectGtZero(x.lane[i], a.lane[i], b.lane[i]);
  return r;
}
inline ScalarVec SelectOrdered(ScalarVec x, ScalarVec a, ScalarVec b) {
  ScalarVec r;
  for (int i = 0; i < kLanes; ++i)
    r.lane[i] = SelectOrdered(x.lane[i], a.lane[i], b.lane[i]);
  return r;
}
inline ScalarVec SelectGe(ScalarVec x, ScalarVec t, ScalarVec a, ScalarVec b) {
  ScalarVec r;
  for (int i = 0; i < kLanes; ++i)
    r.lane[i] = SelectGe(x.lane[i], t.lane[i], a.lane[i], b.lane[i]);
  return r;
}
inline ScalarVec Ldexp2i(ScalarVec a, ScalarVec n) {
  ScalarVec r;
  for (int i = 0; i < kLanes; ++i) r.lane[i] = Ldexp2i(a.lane[i], n.lane[i]);
  return r;
}

/// Horizontal sum with a fixed halving tree: lanes [i] and [i + w] are added
/// at each level. Both backends implement this exact tree, so the rounding
/// is identical. (Used by row reductions; the tree, not left-to-right order,
/// is the deterministic contract for striped accumulators.)
inline float HAdd(ScalarVec v) {
  float t[kLanes];
  for (int i = 0; i < kLanes; ++i) t[i] = v.lane[i];
  for (int w = kLanes / 2; w >= 1; w /= 2) {
    for (int i = 0; i < w; ++i) t[i] = Add(t[i], t[i + w]);
  }
  return t[0];
}
inline float HMax(ScalarVec v) {
  float t[kLanes];
  for (int i = 0; i < kLanes; ++i) t[i] = v.lane[i];
  for (int w = kLanes / 2; w >= 1; w /= 2) {
    for (int i = 0; i < w; ++i) t[i] = Max(t[i], t[i + w]);
  }
  return t[0];
}

// ---------------------------------------------------------------------------
// NativeVec — the widest ISA the compiler was given.
// ---------------------------------------------------------------------------

#if defined(TRANAD_SIMD_AVX2)

struct NativeVec {
  __m256 v;
};

inline NativeVec Wrap(__m256 v) { return NativeVec{v}; }
inline NativeVec Set1(NativeVec*, float x) { return Wrap(_mm256_set1_ps(x)); }
inline NativeVec LoadU(NativeVec*, const float* p) {
  return Wrap(_mm256_loadu_ps(p));
}
inline void StoreU(float* p, NativeVec a) { _mm256_storeu_ps(p, a.v); }
inline NativeVec Add(NativeVec a, NativeVec b) {
  return Wrap(_mm256_add_ps(a.v, b.v));
}
inline NativeVec Sub(NativeVec a, NativeVec b) {
  return Wrap(_mm256_sub_ps(a.v, b.v));
}
inline NativeVec Mul(NativeVec a, NativeVec b) {
  return Wrap(_mm256_mul_ps(a.v, b.v));
}
inline NativeVec Div(NativeVec a, NativeVec b) {
  return Wrap(_mm256_div_ps(a.v, b.v));
}
// MAXPS(a, b) == (a > b) ? a : b — returns the second operand on ties and
// NaN, exactly the float Max overload.
inline NativeVec Max(NativeVec a, NativeVec b) {
  return Wrap(_mm256_max_ps(a.v, b.v));
}
inline NativeVec Min(NativeVec a, NativeVec b) {
  return Wrap(_mm256_min_ps(a.v, b.v));
}
inline NativeVec MaxStd(NativeVec a, NativeVec b) {
  const __m256 lt = _mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ);
  return Wrap(_mm256_blendv_ps(a.v, b.v, lt));
}
inline NativeVec Sqrt(NativeVec a) { return Wrap(_mm256_sqrt_ps(a.v)); }
inline NativeVec Abs(NativeVec a) {
  return Wrap(_mm256_and_ps(
      a.v, _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff))));
}
inline NativeVec Neg(NativeVec a) {
  return Wrap(_mm256_xor_ps(
      a.v, _mm256_castsi256_ps(_mm256_set1_epi32(
               static_cast<int32_t>(0x80000000u)))));
}
inline NativeVec SelectGtZero(NativeVec x, NativeVec a, NativeVec b) {
  const __m256 mask = _mm256_cmp_ps(x.v, _mm256_setzero_ps(), _CMP_GT_OQ);
  return Wrap(_mm256_blendv_ps(b.v, a.v, mask));
}
inline NativeVec SelectOrdered(NativeVec x, NativeVec a, NativeVec b) {
  const __m256 mask = _mm256_cmp_ps(x.v, x.v, _CMP_ORD_Q);
  return Wrap(_mm256_blendv_ps(b.v, a.v, mask));
}
inline NativeVec SelectGe(NativeVec x, NativeVec t, NativeVec a, NativeVec b) {
  const __m256 mask = _mm256_cmp_ps(x.v, t.v, _CMP_GE_OQ);
  return Wrap(_mm256_blendv_ps(b.v, a.v, mask));
}
inline NativeVec RoundNearest(NativeVec a) {
  return Wrap(_mm256_round_ps(
      a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
}
inline NativeVec Ldexp2i(NativeVec a, NativeVec n) {
  const __m256i ni = _mm256_cvtps_epi32(n.v);
  const __m256i bits =
      _mm256_slli_epi32(_mm256_add_epi32(ni, _mm256_set1_epi32(127)), 23);
  return Wrap(_mm256_mul_ps(a.v, _mm256_castsi256_ps(bits)));
}
inline float HAdd(NativeVec a) {
  // Level 1: lanes [i] + [i+4]; level 2: [i] + [i+2]; level 3: [0] + [1].
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(a.v),
                        _mm256_extractf128_ps(a.v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}
inline float HMax(NativeVec a) {
  // Same tree as ScalarVec::HMax: t[i] = Max(t[i], t[i+w]).
  __m128 lo = _mm256_castps256_ps128(a.v);
  __m128 hi = _mm256_extractf128_ps(a.v, 1);
  __m128 s = _mm_max_ps(lo, hi);
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

#elif defined(TRANAD_SIMD_SSE2)

struct NativeVec {
  __m128 v;
};

inline NativeVec Wrap(__m128 v) { return NativeVec{v}; }
inline NativeVec Set1(NativeVec*, float x) { return Wrap(_mm_set1_ps(x)); }
inline NativeVec LoadU(NativeVec*, const float* p) {
  return Wrap(_mm_loadu_ps(p));
}
inline void StoreU(float* p, NativeVec a) { _mm_storeu_ps(p, a.v); }
inline NativeVec Add(NativeVec a, NativeVec b) {
  return Wrap(_mm_add_ps(a.v, b.v));
}
inline NativeVec Sub(NativeVec a, NativeVec b) {
  return Wrap(_mm_sub_ps(a.v, b.v));
}
inline NativeVec Mul(NativeVec a, NativeVec b) {
  return Wrap(_mm_mul_ps(a.v, b.v));
}
inline NativeVec Div(NativeVec a, NativeVec b) {
  return Wrap(_mm_div_ps(a.v, b.v));
}
// MAXPS(a, b) == (a > b) ? a : b — second operand on ties/NaN, exactly the
// float Max overload.
inline NativeVec Max(NativeVec a, NativeVec b) {
  return Wrap(_mm_max_ps(a.v, b.v));
}
inline NativeVec Min(NativeVec a, NativeVec b) {
  return Wrap(_mm_min_ps(a.v, b.v));
}
inline NativeVec MaxStd(NativeVec a, NativeVec b) {
  const __m128 lt = _mm_cmplt_ps(a.v, b.v);
  return Wrap(_mm_or_ps(_mm_and_ps(lt, b.v), _mm_andnot_ps(lt, a.v)));
}
inline NativeVec Sqrt(NativeVec a) { return Wrap(_mm_sqrt_ps(a.v)); }
inline NativeVec Abs(NativeVec a) {
  return Wrap(_mm_and_ps(a.v, _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff))));
}
inline NativeVec Neg(NativeVec a) {
  return Wrap(_mm_xor_ps(a.v, _mm_castsi128_ps(_mm_set1_epi32(
                                  static_cast<int32_t>(0x80000000u)))));
}
inline NativeVec SelectGtZero(NativeVec x, NativeVec a, NativeVec b) {
  const __m128 mask = _mm_cmpgt_ps(x.v, _mm_setzero_ps());
  return Wrap(_mm_or_ps(_mm_and_ps(mask, a.v), _mm_andnot_ps(mask, b.v)));
}
inline NativeVec SelectOrdered(NativeVec x, NativeVec a, NativeVec b) {
  const __m128 mask = _mm_cmpord_ps(x.v, x.v);
  return Wrap(_mm_or_ps(_mm_and_ps(mask, a.v), _mm_andnot_ps(mask, b.v)));
}
inline NativeVec SelectGe(NativeVec x, NativeVec t, NativeVec a, NativeVec b) {
  const __m128 mask = _mm_cmpge_ps(x.v, t.v);
  return Wrap(_mm_or_ps(_mm_and_ps(mask, a.v), _mm_andnot_ps(mask, b.v)));
}
inline NativeVec RoundNearest(NativeVec a) {
  // cvtps2dq rounds per MXCSR (nearest-even by default); inputs are
  // pre-clamped well inside int32 range.
  return Wrap(_mm_cvtepi32_ps(_mm_cvtps_epi32(a.v)));
}
inline NativeVec Ldexp2i(NativeVec a, NativeVec n) {
  const __m128i ni = _mm_cvtps_epi32(n.v);
  const __m128i bits = _mm_slli_epi32(_mm_add_epi32(ni, _mm_set1_epi32(127)),
                                      23);
  return Wrap(_mm_mul_ps(a.v, _mm_castsi128_ps(bits)));
}
inline float HAdd(NativeVec a) {
  __m128 s = _mm_add_ps(a.v, _mm_movehl_ps(a.v, a.v));  // [0]+[2], [1]+[3]
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}
inline float HMax(NativeVec a) {
  __m128 s = _mm_max_ps(a.v, _mm_movehl_ps(a.v, a.v));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

#elif defined(TRANAD_SIMD_NEON)

struct NativeVec {
  float32x4_t v;
};

inline NativeVec Wrap(float32x4_t v) { return NativeVec{v}; }
inline NativeVec Set1(NativeVec*, float x) { return Wrap(vdupq_n_f32(x)); }
inline NativeVec LoadU(NativeVec*, const float* p) {
  return Wrap(vld1q_f32(p));
}
inline void StoreU(float* p, NativeVec a) { vst1q_f32(p, a.v); }
inline NativeVec Add(NativeVec a, NativeVec b) {
  return Wrap(vaddq_f32(a.v, b.v));
}
inline NativeVec Sub(NativeVec a, NativeVec b) {
  return Wrap(vsubq_f32(a.v, b.v));
}
inline NativeVec Mul(NativeVec a, NativeVec b) {
  return Wrap(vmulq_f32(a.v, b.v));
}
inline NativeVec Div(NativeVec a, NativeVec b) {
  return Wrap(vdivq_f32(a.v, b.v));
}
inline NativeVec Max(NativeVec a, NativeVec b) {
  // Match the x86 second-operand-on-ties/NaN semantics with a compare+select
  // (vmaxq returns NaN for NaN operands, which would diverge).
  const uint32x4_t m = vcgtq_f32(a.v, b.v);
  return Wrap(vbslq_f32(m, a.v, b.v));
}
inline NativeVec Min(NativeVec a, NativeVec b) {
  const uint32x4_t m = vcltq_f32(a.v, b.v);
  return Wrap(vbslq_f32(m, a.v, b.v));
}
inline NativeVec MaxStd(NativeVec a, NativeVec b) {
  const uint32x4_t m = vcltq_f32(a.v, b.v);
  return Wrap(vbslq_f32(m, b.v, a.v));
}
inline NativeVec Sqrt(NativeVec a) { return Wrap(vsqrtq_f32(a.v)); }
inline NativeVec Abs(NativeVec a) { return Wrap(vabsq_f32(a.v)); }
inline NativeVec Neg(NativeVec a) { return Wrap(vnegq_f32(a.v)); }
inline NativeVec SelectGtZero(NativeVec x, NativeVec a, NativeVec b) {
  const uint32x4_t m = vcgtq_f32(x.v, vdupq_n_f32(0.0f));
  return Wrap(vbslq_f32(m, a.v, b.v));
}
inline NativeVec SelectOrdered(NativeVec x, NativeVec a, NativeVec b) {
  const uint32x4_t m = vceqq_f32(x.v, x.v);
  return Wrap(vbslq_f32(m, a.v, b.v));
}
inline NativeVec SelectGe(NativeVec x, NativeVec t, NativeVec a, NativeVec b) {
  const uint32x4_t m = vcgeq_f32(x.v, t.v);
  return Wrap(vbslq_f32(m, a.v, b.v));
}
inline NativeVec RoundNearest(NativeVec a) {
  return Wrap(vcvtq_f32_s32(vcvtnq_s32_f32(a.v)));
}
inline NativeVec Ldexp2i(NativeVec a, NativeVec n) {
  const int32x4_t ni = vcvtnq_s32_f32(n.v);
  const int32x4_t bits = vshlq_n_s32(vaddq_s32(ni, vdupq_n_s32(127)), 23);
  return Wrap(vmulq_f32(a.v, vreinterpretq_f32_s32(bits)));
}
inline float HAdd(NativeVec a) {
  const float32x2_t s =
      vadd_f32(vget_low_f32(a.v), vget_high_f32(a.v));  // [0]+[2], [1]+[3]
  return vget_lane_f32(s, 0) + vget_lane_f32(s, 1);
}
inline float HMax(NativeVec a) {
  const float lo0 = vgetq_lane_f32(a.v, 0), lo1 = vgetq_lane_f32(a.v, 1);
  const float hi0 = vgetq_lane_f32(a.v, 2), hi1 = vgetq_lane_f32(a.v, 3);
  return Max(Max(lo0, hi0), Max(lo1, hi1));
}

#else  // TRANAD_SIMD_GENERIC

// No native ISA: the "simd" config degrades to the scalar backend.
using NativeVec = ScalarVec;

#endif

// ---------------------------------------------------------------------------
// Transcendentals — one polynomial, three instantiations (float, ScalarVec,
// NativeVec), identical arithmetic per lane.
// ---------------------------------------------------------------------------

template <class V>
inline V SetAll(float x) {
  if constexpr (std::is_same_v<V, float>) {
    return x;
  } else {
    return Set1(static_cast<V*>(nullptr), x);
  }
}

template <class V>
inline V LoadVec(const float* p) {
  if constexpr (std::is_same_v<V, float>) {
    return *p;
  } else {
    return LoadU(static_cast<V*>(nullptr), p);
  }
}

/// exp(x), Cephes-style: range-reduce by n = round(x/ln2), evaluate a
/// degree-6 polynomial on the remainder, scale by 2^n. Max error ~2 ulp over
/// the clamped range; exp(0) == 1 exactly; NaN inputs stay NaN (the clamp
/// would otherwise swallow them). Overflowing inputs saturate at
/// exp(88.028) ~= 1.7e38 rather than +inf — the clamp is ln(2)*127 so the
/// scale exponent n never reaches 128 (which would make Ldexp2i emit inf,
/// and downstream (e-1)/(e+1)-style ratios NaN). Inputs below the low clamp
/// flush to exactly +0.0, matching libm's underflow: the clamp alone would
/// return exp(-87.34) ~= FLT_MIN, and attention's -1e9 causal mask would
/// then turn softmax's masked probabilities into subnormals whose downstream
/// matmul FLOPs each eat a microcode assist on x86.
template <class V>
inline V ExpV(V x) {
  const V hi = SetAll<V>(88.0296919311f);
  const V lo = SetAll<V>(-87.3365447504019f);
  const V xc = Max(Min(x, hi), lo);
  const V n = RoundNearest(Mul(xc, SetAll<V>(1.44269504088896341f)));
  // Cody–Waite two-step ln2 so the remainder is exact.
  V r = Sub(xc, Mul(n, SetAll<V>(0.693359375f)));
  r = Sub(r, Mul(n, SetAll<V>(-2.12194440e-4f)));
  V p = SetAll<V>(1.9875691500e-4f);
  p = Add(Mul(p, r), SetAll<V>(1.3981999507e-3f));
  p = Add(Mul(p, r), SetAll<V>(8.3334519073e-3f));
  p = Add(Mul(p, r), SetAll<V>(4.1665795894e-2f));
  p = Add(Mul(p, r), SetAll<V>(1.6666665459e-1f));
  p = Add(Mul(p, r), SetAll<V>(5.0000001201e-1f));
  V y = Add(Mul(Mul(p, r), r), Add(r, SetAll<V>(1.0f)));
  y = Ldexp2i(y, n);
  y = SelectGe(x, lo, y, SetAll<V>(0.0f));  // underflow -> +0.0, not FLT_MIN
  return SelectOrdered(x, y, x);            // NaN in -> NaN out
}

/// tanh(x) = (e - 1) / (e + 1) with e = exp(2x). Saturates correctly at
/// both ends via ExpV's clamp; tanh(0) == 0 exactly; NaN preserved.
template <class V>
inline V TanhV(V x) {
  const V one = SetAll<V>(1.0f);
  const V e = ExpV(Add(x, x));
  return Div(Sub(e, one), Add(e, one));
}

/// sigmoid(x) = 1 / (1 + exp(-x)); sigmoid(0) == 0.5 exactly; NaN preserved.
template <class V>
inline V SigmoidV(V x) {
  const V one = SetAll<V>(1.0f);
  return Div(one, Add(one, ExpV(Neg(x))));
}

}  // namespace tranad::simd

#endif  // TRANAD_TENSOR_SIMD_H_
