# Empty compiler generated dependencies file for fig5_msds_labels.
# This may be replaced when dependencies are built.
