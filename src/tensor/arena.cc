#include "tensor/arena.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <new>

#include "common/check.h"
#include "common/env.h"

namespace tranad {
namespace {

constexpr int64_t kMinClassElems = 32;
constexpr size_t kNumClasses = 48;  // covers up to 2^47 elements
constexpr std::align_val_t kAlign{64};

// Smallest power of two >= max(n, kMinClassElems).
int64_t RoundUpClass(int64_t n) {
  int64_t c = kMinClassElems;
  while (c < n) c <<= 1;
  return c;
}

size_t ClassIndex(int64_t rounded) {
  size_t idx = 0;
  int64_t c = kMinClassElems;
  while (c < rounded) {
    c <<= 1;
    ++idx;
  }
  TRANAD_CHECK_LT(idx, kNumClasses);
  return idx;
}

float* HeapAllocate(int64_t rounded) {
  return static_cast<float*>(::operator new(
      static_cast<size_t>(rounded) * sizeof(float), kAlign));
}

void HeapFree(float* ptr) { ::operator delete(ptr, kAlign); }

}  // namespace

struct TensorArena::Impl {
  mutable std::mutex mu;
  std::vector<float*> free_lists[kNumClasses];
  ArenaStats stats;
  int64_t cap_bytes = 0;
};

TensorArena::TensorArena() : impl_(new Impl) {
  impl_->cap_bytes = std::max<int64_t>(0, EnvArenaCapBytes());
}

TensorArena& TensorArena::Global() {
  // Leaked: tensors destroyed during static destruction still release here.
  static TensorArena* arena = new TensorArena;
  return *arena;
}

float* TensorArena::Allocate(int64_t numel, int64_t* rounded) {
  TRANAD_CHECK_GE(numel, 0);
  const int64_t r = RoundUpClass(numel);
  *rounded = r;
  const int64_t bytes = r * static_cast<int64_t>(sizeof(float));
  const size_t cls = ClassIndex(r);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    ArenaStats& s = impl_->stats;
    s.bytes_live += bytes;
    s.bytes_peak_live = std::max(s.bytes_peak_live, s.bytes_live);
    auto& list = impl_->free_lists[cls];
    if (!list.empty()) {
      float* ptr = list.back();
      list.pop_back();
      s.bytes_cached -= bytes;
      ++s.hits;
      return ptr;
    }
    ++s.misses;
  }
  return HeapAllocate(r);
}

void TensorArena::Release(float* ptr, int64_t rounded) {
  if (ptr == nullptr) return;
  const int64_t bytes = rounded * static_cast<int64_t>(sizeof(float));
  const size_t cls = ClassIndex(rounded);
  bool cache = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    ArenaStats& s = impl_->stats;
    s.bytes_live -= bytes;
    ++s.releases;
    if (s.bytes_cached + bytes <= impl_->cap_bytes) {
      impl_->free_lists[cls].push_back(ptr);
      s.bytes_cached += bytes;
      cache = true;
    } else {
      ++s.trims;
    }
  }
  if (!cache) HeapFree(ptr);
}

void TensorArena::Trim(int64_t keep_bytes) {
  if (keep_bytes < 0) keep_bytes = impl_->cap_bytes;
  std::vector<float*> to_free;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    ArenaStats& s = impl_->stats;
    for (size_t cls = kNumClasses; cls-- > 0 && s.bytes_cached > keep_bytes;) {
      const int64_t bytes = (kMinClassElems << cls)
                            * static_cast<int64_t>(sizeof(float));
      auto& list = impl_->free_lists[cls];
      while (!list.empty() && s.bytes_cached > keep_bytes) {
        to_free.push_back(list.back());
        list.pop_back();
        s.bytes_cached -= bytes;
        ++s.trims;
      }
    }
  }
  for (float* ptr : to_free) HeapFree(ptr);
}

ArenaStats TensorArena::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

void TensorArena::ResetStatsForTesting() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const int64_t cached = impl_->stats.bytes_cached;
  const int64_t live = impl_->stats.bytes_live;
  impl_->stats = ArenaStats{};
  impl_->stats.bytes_cached = cached;
  impl_->stats.bytes_live = live;
  impl_->stats.bytes_peak_live = live;
}

ArenaBuffer ArenaBuffer::Uninitialized(int64_t n) {
  ArenaBuffer b;
  b.size_ = n;
  b.data_ = TensorArena::Global().Allocate(n, &b.rounded_);
  return b;
}

ArenaBuffer ArenaBuffer::Zeroed(int64_t n) {
  ArenaBuffer b = Uninitialized(n);
  std::fill(b.data_, b.data_ + n, 0.0f);
  return b;
}

ArenaBuffer ArenaBuffer::FromVector(const std::vector<float>& v) {
  ArenaBuffer b = Uninitialized(static_cast<int64_t>(v.size()));
  std::memcpy(b.data_, v.data(), v.size() * sizeof(float));
  return b;
}

ArenaBuffer::ArenaBuffer(const ArenaBuffer& other) {
  if (other.data_ == nullptr) return;
  size_ = other.size_;
  data_ = TensorArena::Global().Allocate(size_, &rounded_);
  std::memcpy(data_, other.data_, static_cast<size_t>(size_) * sizeof(float));
}

ArenaBuffer& ArenaBuffer::operator=(const ArenaBuffer& other) {
  if (this == &other) return *this;
  if (other.data_ == nullptr) {
    if (data_ != nullptr) TensorArena::Global().Release(data_, rounded_);
    data_ = nullptr;
    size_ = 0;
    rounded_ = 0;
    return *this;
  }
  // Reuse the existing buffer when it is the same size class.
  if (data_ == nullptr || rounded_ != RoundUpClass(other.size_)) {
    if (data_ != nullptr) TensorArena::Global().Release(data_, rounded_);
    data_ = TensorArena::Global().Allocate(other.size_, &rounded_);
  }
  size_ = other.size_;
  std::memcpy(data_, other.data_, static_cast<size_t>(size_) * sizeof(float));
  return *this;
}

ArenaBuffer::ArenaBuffer(ArenaBuffer&& other) noexcept
    : data_(other.data_), size_(other.size_), rounded_(other.rounded_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.rounded_ = 0;
}

ArenaBuffer& ArenaBuffer::operator=(ArenaBuffer&& other) noexcept {
  if (this == &other) return *this;
  if (data_ != nullptr) TensorArena::Global().Release(data_, rounded_);
  data_ = other.data_;
  size_ = other.size_;
  rounded_ = other.rounded_;
  other.data_ = nullptr;
  other.size_ = 0;
  other.rounded_ = 0;
  return *this;
}

ArenaBuffer::~ArenaBuffer() {
  if (data_ != nullptr) TensorArena::Global().Release(data_, rounded_);
}

}  // namespace tranad
