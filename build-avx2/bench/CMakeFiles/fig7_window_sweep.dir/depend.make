# Empty dependencies file for fig7_window_sweep.
# This may be replaced when dependencies are built.
