#ifndef TRANAD_COMMON_STATUS_H_
#define TRANAD_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace tranad {

/// Error categories for recoverable failures crossing the public API.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kIoError,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
  kDeadlineExceeded,
  kUnavailable,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Lightweight status object used instead of exceptions for recoverable
/// errors (file I/O, shape validation at API boundaries). Cheap to copy in
/// the OK case; carries a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "Ok" or "InvalidArgument: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error return type. Holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (OK result).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the stored status; Ok when a value is present.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }

  /// Accessors. Precondition: ok().
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if present, otherwise `fallback`.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status from an expression to the caller.
#define TRANAD_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::tranad::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (0)

#define TRANAD_INTERNAL_CONCAT2(a, b) a##b
#define TRANAD_INTERNAL_CONCAT(a, b) TRANAD_INTERNAL_CONCAT2(a, b)

/// Evaluates a Result<T> expression; on error returns the status, otherwise
/// assigns the value to `lhs`.
#define TRANAD_ASSIGN_OR_RETURN(lhs, expr) \
  TRANAD_INTERNAL_ASSIGN_OR_RETURN(        \
      TRANAD_INTERNAL_CONCAT(_res_, __LINE__), lhs, expr)

#define TRANAD_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, expr) \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

}  // namespace tranad

#endif  // TRANAD_COMMON_STATUS_H_
