#ifndef TRANAD_TENSOR_GRAD_CHECK_H_
#define TRANAD_TENSOR_GRAD_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "tensor/autograd_ops.h"
#include "tensor/variable.h"

namespace tranad {

/// Result of a finite-difference gradient comparison.
struct GradCheckResult {
  bool ok = true;
  /// Largest absolute difference between analytic and numeric gradient.
  float max_abs_err = 0.0f;
  /// Index (input #, flat element) and values at the worst element.
  std::string detail;
};

/// Compares the analytic gradients of `fn` (a scalar-valued function of the
/// given inputs) against central finite differences. Inputs are perturbed by
/// `eps`; gradients must agree within `tol`. Used by the property tests that
/// certify every autograd op.
GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Tensor> inputs, float eps = 1e-3f, float tol = 2e-2f);

}  // namespace tranad

#endif  // TRANAD_TENSOR_GRAD_CHECK_H_
