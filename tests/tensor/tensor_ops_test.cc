#include "tensor/tensor_ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tranad {
namespace {

TEST(BroadcastTest, Shapes) {
  EXPECT_EQ(BroadcastShapes({2, 3}, {2, 3}), Shape({2, 3}));
  EXPECT_EQ(BroadcastShapes({2, 1}, {1, 3}), Shape({2, 3}));
  EXPECT_EQ(BroadcastShapes({3}, {2, 3}), Shape({2, 3}));
  EXPECT_EQ(BroadcastShapes({}, {4}), Shape({4}));
  EXPECT_DEATH(BroadcastShapes({2}, {3}), "broadcast");
}

TEST(BinaryOpsTest, AddSameShape) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {10, 20, 30, 40});
  Tensor c = Add(a, b);
  EXPECT_FLOAT_EQ(c.At({1, 1}), 44.0f);
}

TEST(BinaryOpsTest, AddBroadcastRow) {
  Tensor a({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor row({3}, {10, 20, 30});
  Tensor c = Add(a, row);
  EXPECT_FLOAT_EQ(c.At({0, 0}), 10.0f);
  EXPECT_FLOAT_EQ(c.At({1, 2}), 35.0f);
}

TEST(BinaryOpsTest, AddBroadcastColumn) {
  Tensor a({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor col({2, 1}, {100, 200});
  Tensor c = Add(a, col);
  EXPECT_FLOAT_EQ(c.At({0, 2}), 102.0f);
  EXPECT_FLOAT_EQ(c.At({1, 0}), 203.0f);
}

TEST(BinaryOpsTest, ScalarOperandBroadcasts) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor c = Mul(a, Tensor::Scalar(3.0f));
  EXPECT_FLOAT_EQ(c.At({1, 0}), 9.0f);
  Tensor d = Sub(Tensor::Scalar(10.0f), a);
  EXPECT_FLOAT_EQ(d.At({0, 1}), 8.0f);
}

TEST(BinaryOpsTest, SubMulDivMaximum) {
  Tensor a({3}, {4, 9, -2});
  Tensor b({3}, {2, 3, 4});
  EXPECT_FLOAT_EQ(Sub(a, b)[1], 6.0f);
  EXPECT_FLOAT_EQ(Mul(a, b)[2], -8.0f);
  EXPECT_FLOAT_EQ(Div(a, b)[0], 2.0f);
  EXPECT_FLOAT_EQ(Maximum(a, b)[2], 4.0f);
}

TEST(BinaryOpsTest, ThreeDimBroadcast) {
  Tensor a({2, 2, 2});
  a.Fill(1.0f);
  Tensor b({2, 1, 2}, {1, 2, 3, 4});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 2, 2}));
  EXPECT_FLOAT_EQ(c.At({1, 0, 1}), 5.0f);
  EXPECT_FLOAT_EQ(c.At({1, 1, 1}), 5.0f);
}

TEST(ReduceToTest, SumsOverBroadcastAxes) {
  Tensor g({2, 3});
  g.Fill(1.0f);
  Tensor r = ReduceTo(g, {3});
  EXPECT_EQ(r.shape(), Shape({3}));
  EXPECT_FLOAT_EQ(r[0], 2.0f);
  Tensor r2 = ReduceTo(g, {2, 1});
  EXPECT_EQ(r2.shape(), Shape({2, 1}));
  EXPECT_FLOAT_EQ(r2[0], 3.0f);
  // Identity when shapes match.
  EXPECT_TRUE(ReduceTo(g, {2, 3}).Equals(g));
}

TEST(UnaryOpsTest, Values) {
  Tensor a({4}, {-1.0f, 0.0f, 1.0f, 4.0f});
  EXPECT_FLOAT_EQ(Neg(a)[0], 1.0f);
  EXPECT_FLOAT_EQ(Abs(a)[0], 1.0f);
  EXPECT_FLOAT_EQ(Square(a)[3], 16.0f);
  EXPECT_FLOAT_EQ(Sqrt(a)[3], 2.0f);
  EXPECT_NEAR(Exp(a)[2], std::exp(1.0f), 1e-5);
  EXPECT_NEAR(Log(a)[3], std::log(4.0f), 1e-5);
  EXPECT_FLOAT_EQ(Relu(a)[0], 0.0f);
  EXPECT_FLOAT_EQ(Relu(a)[3], 4.0f);
  EXPECT_FLOAT_EQ(LeakyRelu(a, 0.1f)[0], -0.1f);
  EXPECT_NEAR(Sigmoid(a)[1], 0.5f, 1e-6);
  EXPECT_NEAR(Tanh(a)[2], std::tanh(1.0f), 1e-5);
}

TEST(UnaryOpsTest, GeluKnownValues) {
  Tensor a({3}, {0.0f, 1.0f, -1.0f});
  Tensor g = Gelu(a);
  EXPECT_NEAR(g[0], 0.0f, 1e-6);
  EXPECT_NEAR(g[1], 0.8412f, 1e-3);
  EXPECT_NEAR(g[2], -0.1588f, 1e-3);
}

TEST(MatMulTest, Square2D) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At({0, 0}), 19.0f);
  EXPECT_FLOAT_EQ(c.At({0, 1}), 22.0f);
  EXPECT_FLOAT_EQ(c.At({1, 0}), 43.0f);
  EXPECT_FLOAT_EQ(c.At({1, 1}), 50.0f);
}

TEST(MatMulTest, Rectangular) {
  Tensor a({1, 3}, {1, 2, 3});
  Tensor b({3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(c[0], 4.0f);
  EXPECT_FLOAT_EQ(c[1], 5.0f);
}

TEST(MatMulTest, Batched3D) {
  Tensor a({2, 1, 2}, {1, 2, 3, 4});
  Tensor b({2, 2, 1}, {1, 1, 2, 2});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 1, 1}));
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  EXPECT_FLOAT_EQ(c[1], 14.0f);
}

TEST(MatMulTest, BroadcastRhs2D) {
  Tensor a({3, 2, 2});
  a.Fill(1.0f);
  Tensor b({2, 1}, {1, 2});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), Shape({3, 2, 1}));
  EXPECT_FLOAT_EQ(c[0], 3.0f);
}

TEST(MatMulTest, InnerDimMismatchDies) {
  EXPECT_DEATH(MatMul(Tensor({2, 3}), Tensor({2, 2})), "matmul");
}

TEST(TransposeTest, Last2) {
  Tensor a({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor t = TransposeLast2(a);
  EXPECT_EQ(t.shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(t.At({2, 1}), 5.0f);
  EXPECT_FLOAT_EQ(t.At({0, 1}), 3.0f);
}

TEST(TransposeTest, BatchedLast2) {
  Tensor a({2, 2, 3});
  for (int64_t i = 0; i < a.numel(); ++i) a[i] = static_cast<float>(i);
  Tensor t = TransposeLast2(a);
  EXPECT_EQ(t.shape(), Shape({2, 3, 2}));
  EXPECT_FLOAT_EQ(t.At({1, 2, 0}), a.At({1, 0, 2}));
}

TEST(SwapAxesTest, Swap12) {
  Tensor a({2, 3, 4, 5});
  for (int64_t i = 0; i < a.numel(); ++i) a[i] = static_cast<float>(i);
  Tensor s = SwapAxes12(a);
  EXPECT_EQ(s.shape(), Shape({2, 4, 3, 5}));
  EXPECT_FLOAT_EQ(s.At({1, 2, 0, 3}), a.At({1, 0, 2, 3}));
  // Involution.
  EXPECT_TRUE(SwapAxes12(s).Equals(a));
}

TEST(ConcatTest, Axis0) {
  Tensor a({1, 2}, {1, 2});
  Tensor b({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 0);
  EXPECT_EQ(c.shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(c.At({2, 1}), 6.0f);
}

TEST(ConcatTest, LastAxisNegative) {
  Tensor a({2, 1}, {1, 2});
  Tensor b({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, -1);
  EXPECT_EQ(c.shape(), Shape({2, 3}));
  EXPECT_FLOAT_EQ(c.At({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(c.At({0, 2}), 4.0f);
  EXPECT_FLOAT_EQ(c.At({1, 1}), 5.0f);
}

TEST(ConcatTest, MiddleAxis3D) {
  Tensor a({2, 1, 2}, {1, 2, 3, 4});
  Tensor b({2, 2, 2}, {5, 6, 7, 8, 9, 10, 11, 12});
  Tensor c = Concat({a, b}, 1);
  EXPECT_EQ(c.shape(), Shape({2, 3, 2}));
  EXPECT_FLOAT_EQ(c.At({0, 0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(c.At({0, 1, 0}), 5.0f);
  EXPECT_FLOAT_EQ(c.At({1, 0, 1}), 4.0f);
  EXPECT_FLOAT_EQ(c.At({1, 2, 1}), 12.0f);
}

TEST(SliceTest, MiddleOfAxis) {
  Tensor a({4, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor s = SliceAxis(a, 0, 1, 2);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(s.At({0, 0}), 2.0f);
  EXPECT_FLOAT_EQ(s.At({1, 1}), 5.0f);
}

TEST(SliceTest, LastAxis) {
  Tensor a({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor s = SliceAxis(a, -1, 1, 2);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(s.At({1, 0}), 4.0f);
}

TEST(SliceTest, SliceConcatRoundTrip) {
  Tensor a({3, 4});
  for (int64_t i = 0; i < a.numel(); ++i) a[i] = static_cast<float>(i);
  Tensor left = SliceAxis(a, 1, 0, 2);
  Tensor right = SliceAxis(a, 1, 2, 2);
  EXPECT_TRUE(Concat({left, right}, 1).Equals(a));
}

TEST(ReductionTest, AllVariants) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(SumAll(a), 10.0f);
  EXPECT_FLOAT_EQ(MeanAll(a), 2.5f);
  EXPECT_FLOAT_EQ(MaxAll(a), 4.0f);
  EXPECT_FLOAT_EQ(MinAll(a), 1.0f);
}

TEST(ReductionTest, AxisSumKeepdims) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = Sum(a, 0, true);
  EXPECT_EQ(s0.shape(), Shape({1, 3}));
  EXPECT_FLOAT_EQ(s0[0], 5.0f);
  Tensor s1 = Sum(a, 1, false);
  EXPECT_EQ(s1.shape(), Shape({2}));
  EXPECT_FLOAT_EQ(s1[1], 15.0f);
}

TEST(ReductionTest, MeanAndMaxAxis) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(Mean(a, 1, false)[0], 2.0f);
  EXPECT_FLOAT_EQ(Max(a, 0, false)[2], 6.0f);
  EXPECT_FLOAT_EQ(Mean(a, -1, false)[1], 5.0f);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Tensor a({3, 4});
  Rng rng(5);
  for (int64_t i = 0; i < a.numel(); ++i) {
    a[i] = static_cast<float>(rng.Normal(0, 3));
  }
  Tensor s = SoftmaxLastDim(a);
  for (int64_t r = 0; r < 3; ++r) {
    float row_sum = 0.0f;
    for (int64_t c = 0; c < 4; ++c) row_sum += s.At({r, c});
    EXPECT_NEAR(row_sum, 1.0f, 1e-5);
  }
}

TEST(SoftmaxTest, LargeValuesStable) {
  Tensor a({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor s = SoftmaxLastDim(a);
  EXPECT_NEAR(s[0], 1.0f / 3.0f, 1e-5);
  EXPECT_FALSE(std::isnan(s[1]));
}

TEST(SoftmaxTest, OrderingPreserved) {
  Tensor a({1, 3}, {1.0f, 3.0f, 2.0f});
  Tensor s = SoftmaxLastDim(a);
  EXPECT_GT(s[1], s[2]);
  EXPECT_GT(s[2], s[0]);
}

TEST(LayerNormTest, ZeroMeanUnitVar) {
  Tensor a({2, 8});
  Rng rng(6);
  for (int64_t i = 0; i < a.numel(); ++i) {
    a[i] = static_cast<float>(rng.Normal(5, 3));
  }
  Tensor n = LayerNormLastDim(a, 1e-5f);
  for (int64_t r = 0; r < 2; ++r) {
    float mean = 0.0f;
    float var = 0.0f;
    for (int64_t c = 0; c < 8; ++c) mean += n.At({r, c});
    mean /= 8.0f;
    for (int64_t c = 0; c < 8; ++c) {
      var += (n.At({r, c}) - mean) * (n.At({r, c}) - mean);
    }
    var /= 8.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4);
    EXPECT_NEAR(var, 1.0f, 1e-2);
  }
}

TEST(LayerNormTest, ConstantRowMapsToZero) {
  Tensor a({1, 4}, {3, 3, 3, 3});
  Tensor n = LayerNormLastDim(a, 1e-5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(n[i], 0.0f, 1e-2);
}

}  // namespace
}  // namespace tranad
