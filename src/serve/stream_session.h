#ifndef TRANAD_SERVE_STREAM_SESSION_H_
#define TRANAD_SERVE_STREAM_SESSION_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/tranad_detector.h"
#include "core/window_ring.h"
#include "eval/pot.h"

namespace tranad::serve {

/// Identifier of a registered stream; never reused within one engine.
using StreamId = uint64_t;

/// Everything a stream needs to continue scoring bit-exactly on another
/// engine: the normalized ring rows (oldest -> newest), the full streaming
/// POT state, the next per-stream sequence number, and the quarantine
/// bookkeeping. Produced by StreamSession::ExportState on a quiesced
/// session and consumed by RestoreState (the shard-failover handoff).
struct StreamSessionState {
  int64_t window = 0;
  int64_t dims = 0;
  std::vector<float> ring_rows;  // size/dims-shaped, oldest -> newest
  StreamingPotState pot;
  int64_t next_seq = 0;
  int64_t non_finite_streak = 0;
  bool quarantined = false;
};

/// Per-stream serving state: the normalized trailing-window ring buffer and
/// the streaming POT threshold, mirroring exactly what OnlineTranAD keeps
/// for a single stream (same calibration recipe, same cold-start seeding),
/// so serve verdicts are bit-for-bit comparable to the single-stream path.
///
/// Thread discipline (enforced by ServeEngine, not by locks here):
///   - Calibrate() runs once, before the session is published to the
///     registry.
///   - ring() is touched only by the batcher thread (window assembly).
///   - spot() is touched only inside the engine's ordered-completion
///     section, which is serialized under a single mutex.
/// Requests hold the session by shared_ptr, so a stream closed mid-flight
/// stays alive until its last admitted observation completes.
class StreamSession {
 public:
  StreamSession(StreamId id, PotParams pot);

  /// Initializes the POT threshold from the calibration series' scores (via
  /// the detector's const scoring path) and seeds the ring with the
  /// normalized calibration tail — the OnlineTranAD::Calibrate recipe. The
  /// detector is borrowed only for the duration of the call: sessions hold
  /// no detector pointer, so ServeEngine::ReloadModel can swap the model
  /// without touching live sessions.
  void Calibrate(const TranADDetector& detector, const TimeSeries& calibration);

  /// Snapshots the session for migration. The caller must have quiesced the
  /// engine first (no batcher/worker touching this session): export reads
  /// the ring and POT without locks, same as the pipeline's thread
  /// discipline above.
  StreamSessionState ExportState() const;

  /// Rebuilds the session from an export, replacing calibration: ring rows,
  /// POT state, sequence counter, and quarantine flags all carry over, so
  /// the next Submit scores exactly as it would have on the source engine.
  Status RestoreState(const StreamSessionState& state);

  StreamId id() const { return id_; }
  WindowRing* ring() { return &ring_; }
  StreamingPot* spot() { return &spot_; }

  /// Per-stream submission sequence number, assigned at admission.
  int64_t NextSeq() { return seq_.fetch_add(1, std::memory_order_relaxed); }

  /// Poisoned-stream quarantine bookkeeping (engine admission path).
  /// Non-finite observations are rejected at Submit and never reach the
  /// ring or the POT state; a stream whose consecutive-rejection streak
  /// crosses the engine's threshold is quarantined until released, so one
  /// misbehaving producer cannot degrade its siblings.
  int64_t RecordNonFinite() {
    return consecutive_non_finite_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  void ResetNonFiniteStreak() {
    consecutive_non_finite_.store(0, std::memory_order_release);
  }
  int64_t non_finite_streak() const {
    return consecutive_non_finite_.load(std::memory_order_acquire);
  }
  bool quarantined() const {
    return quarantined_.load(std::memory_order_acquire);
  }
  /// Returns true if this call transitioned the stream into quarantine.
  bool MarkQuarantined() {
    return !quarantined_.exchange(true, std::memory_order_acq_rel);
  }
  void ReleaseQuarantine() {
    quarantined_.store(false, std::memory_order_release);
    ResetNonFiniteStreak();
  }

 private:
  StreamId id_;
  StreamingPot spot_;
  WindowRing ring_;
  std::atomic<int64_t> seq_{0};
  std::atomic<int64_t> consecutive_non_finite_{0};
  std::atomic<bool> quarantined_{false};
};

}  // namespace tranad::serve

#endif  // TRANAD_SERVE_STREAM_SESSION_H_
