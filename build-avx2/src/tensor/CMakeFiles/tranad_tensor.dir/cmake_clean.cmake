file(REMOVE_RECURSE
  "CMakeFiles/tranad_tensor.dir/arena.cc.o"
  "CMakeFiles/tranad_tensor.dir/arena.cc.o.d"
  "CMakeFiles/tranad_tensor.dir/autograd_ops.cc.o"
  "CMakeFiles/tranad_tensor.dir/autograd_ops.cc.o.d"
  "CMakeFiles/tranad_tensor.dir/grad_check.cc.o"
  "CMakeFiles/tranad_tensor.dir/grad_check.cc.o.d"
  "CMakeFiles/tranad_tensor.dir/kernels.cc.o"
  "CMakeFiles/tranad_tensor.dir/kernels.cc.o.d"
  "CMakeFiles/tranad_tensor.dir/tensor.cc.o"
  "CMakeFiles/tranad_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/tranad_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/tranad_tensor.dir/tensor_ops.cc.o.d"
  "CMakeFiles/tranad_tensor.dir/variable.cc.o"
  "CMakeFiles/tranad_tensor.dir/variable.cc.o.d"
  "libtranad_tensor.a"
  "libtranad_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tranad_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
