// Microbenchmarks (google-benchmark) of the hot computational kernels: the
// batched matmul, multi-head attention forward/backward, the full TranAD
// two-phase step, window construction and POT fitting.
#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "core/tranad_model.h"
#include "data/preprocess.h"
#include "eval/pot.h"
#include "nn/attention.h"
#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128);

void BM_BatchedMatMul(benchmark::State& state) {
  const int64_t b = state.range(0);
  Rng rng(2);
  Tensor x = Tensor::Randn({b, 10, 32}, &rng);
  Tensor y = Tensor::Randn({b, 32, 10}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(x, y));
  }
}
BENCHMARK(BM_BatchedMatMul)->Arg(32)->Arg(128);

void BM_AttentionForward(benchmark::State& state) {
  const int64_t heads = state.range(0);
  Rng rng(3);
  nn::MultiHeadAttention attn(32, heads, &rng);
  attn.SetTraining(false);
  Variable x(Tensor::Randn({64, 10, 32}, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.Forward(x, x, x));
  }
}
BENCHMARK(BM_AttentionForward)->Arg(1)->Arg(4)->Arg(16);

void BM_AttentionBackward(benchmark::State& state) {
  Rng rng(4);
  nn::MultiHeadAttention attn(32, 4, &rng);
  Variable x(Tensor::Randn({64, 10, 32}, &rng));
  for (auto _ : state) {
    Variable loss = ag::MeanAll(ag::Square(attn.Forward(x, x, x)));
    attn.ZeroGrad();
    loss.Backward();
  }
}
BENCHMARK(BM_AttentionBackward);

void BM_TranADTwoPhaseForward(benchmark::State& state) {
  const int64_t dims = state.range(0);
  TranADConfig config;
  config.dims = dims;
  TranADModel model(config);
  model.SetTraining(false);
  Rng rng(5);
  Tensor batch = Tensor::Rand({64, config.window, dims}, &rng);
  // Phase-2 focus is the squared reconstruction error against the window's
  // final timestamp, as in TwoPhaseInference ([B, m], not the full window).
  const Tensor target =
      SliceAxis(batch, 1, config.window - 1, 1).Reshape({64, dims});
  for (auto _ : state) {
    Variable w(batch);
    auto [o1, o2] = model.ForwardPhase1(w);
    Variable focus = ag::SquaredDiff(o1, Variable(target));
    benchmark::DoNotOptimize(model.ForwardPhase2(w, focus));
  }
}
BENCHMARK(BM_TranADTwoPhaseForward)->Arg(1)->Arg(8)->Arg(16);

void BM_MakeWindows(benchmark::State& state) {
  Rng rng(6);
  Tensor series = Tensor::Randn({4096, 8}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeWindows(series, 10));
  }
}
BENCHMARK(BM_MakeWindows);

void BM_PotThreshold(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> scores(8192);
  for (auto& s : scores) s = -std::log(1.0 - rng.Uniform());
  PotParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PotThreshold(scores, params));
  }
}
BENCHMARK(BM_PotThreshold);

void BM_SoftmaxLastDim(benchmark::State& state) {
  Rng rng(8);
  Tensor x = Tensor::Randn({512, 10, 10}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxLastDim(x));
  }
}
BENCHMARK(BM_SoftmaxLastDim);

// --- fused kernels vs the unfused chains they replace, at serve-profile
// shapes. Both sides report the same semantic byte count (input reads +
// final output write), so the GB/s columns are directly comparable: the
// fused row's advantage is exactly the intermediate traffic it avoids.

void BM_FusedSquaredDiff(benchmark::State& state) {
  Rng rng(13);
  Tensor a = Tensor::Randn({128, 10, 64}, &rng);
  Tensor b = Tensor::Randn({128, 10, 64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredDiff(a, b));
  }
  state.SetBytesProcessed(state.iterations() * a.numel() * 3 *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_FusedSquaredDiff);

void BM_UnfusedSubSquare(benchmark::State& state) {
  Rng rng(13);
  Tensor a = Tensor::Randn({128, 10, 64}, &rng);
  Tensor b = Tensor::Randn({128, 10, 64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Square(Sub(a, b)));
  }
  state.SetBytesProcessed(state.iterations() * a.numel() * 3 *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_UnfusedSubSquare);

void BM_FusedMse(benchmark::State& state) {
  Rng rng(14);
  Tensor a = Tensor::Randn({128, 10, 64}, &rng);
  Tensor b = Tensor::Randn({128, 10, 64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MseAll(a, b));
  }
  state.SetBytesProcessed(state.iterations() * a.numel() * 2 *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_FusedMse);

void BM_UnfusedMse(benchmark::State& state) {
  Rng rng(14);
  Tensor a = Tensor::Randn({128, 10, 64}, &rng);
  Tensor b = Tensor::Randn({128, 10, 64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeanAll(Square(Sub(a, b))));
  }
  state.SetBytesProcessed(state.iterations() * a.numel() * 2 *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_UnfusedMse);

void BM_FusedLayerNormAffine(benchmark::State& state) {
  Rng rng(15);
  Tensor x = Tensor::Randn({1280, 64}, &rng);
  Tensor gain = Tensor::Randn({64}, &rng);
  Tensor bias = Tensor::Randn({64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LayerNormAffineLastDim(x, gain, bias, 1e-5f));
  }
  state.SetBytesProcessed(state.iterations() * x.numel() * 2 *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_FusedLayerNormAffine);

void BM_UnfusedLayerNormAffine(benchmark::State& state) {
  Rng rng(15);
  Tensor x = Tensor::Randn({1280, 64}, &rng);
  Tensor gain = Tensor::Randn({64}, &rng);
  Tensor bias = Tensor::Randn({64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Add(Mul(LayerNormLastDim(x, 1e-5f), gain), bias));
  }
  state.SetBytesProcessed(state.iterations() * x.numel() * 2 *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_UnfusedLayerNormAffine);

void BM_FusedSoftmax(benchmark::State& state) {
  Rng rng(16);
  Tensor x = Tensor::Randn({512, 10, 10}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxLastDim(x));
  }
  state.SetBytesProcessed(state.iterations() * x.numel() * 2 *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_FusedSoftmax);

void BM_UnfusedSoftmax(benchmark::State& state) {
  Rng rng(16);
  Tensor x = Tensor::Randn({512, 10, 10}, &rng);
  for (auto _ : state) {
    Tensor shifted = Sub(x, Max(x, -1, /*keepdims=*/true));
    Tensor e = Exp(shifted);
    benchmark::DoNotOptimize(Div(e, Sum(e, -1, /*keepdims=*/true)));
  }
  state.SetBytesProcessed(state.iterations() * x.numel() * 2 *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_UnfusedSoftmax);

// --- intra-op parallel backend: the same kernels swept over compute-thread
// counts. Each benchmark resizes the shared pool for its run and restores
// the default afterwards so the serial benchmarks above stay unaffected.

class PoolSizeScope {
 public:
  explicit PoolSizeScope(int64_t n) : saved_(NumComputeThreads()) {
    SetNumComputeThreads(n);
  }
  ~PoolSizeScope() { SetNumComputeThreads(saved_); }

 private:
  int64_t saved_;
};

void BM_ParallelMatMul(benchmark::State& state) {
  PoolSizeScope pool(state.range(0));
  const int64_t b = state.range(1);
  Rng rng(9);
  Tensor x = Tensor::Randn({b, 10, 64}, &rng);
  Tensor w = Tensor::Randn({64, 64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(x, w));
  }
  state.SetItemsProcessed(state.iterations() * b * 10 * 64 * 64);
}
BENCHMARK(BM_ParallelMatMul)
    ->Args({1, 32})
    ->Args({2, 32})
    ->Args({4, 32})
    ->Args({1, 128})
    ->Args({2, 128})
    ->Args({4, 128});

void BM_ParallelSoftmax(benchmark::State& state) {
  PoolSizeScope pool(state.range(0));
  Rng rng(10);
  Tensor x = Tensor::Randn({512, 10, 10}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxLastDim(x));
  }
}
BENCHMARK(BM_ParallelSoftmax)->Arg(1)->Arg(2)->Arg(4);

void BM_ParallelElementwise(benchmark::State& state) {
  PoolSizeScope pool(state.range(0));
  Rng rng(11);
  Tensor a = Tensor::Randn({128, 10, 64}, &rng);
  Tensor bias = Tensor::Randn({64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Gelu(Add(a, bias)));
  }
}
BENCHMARK(BM_ParallelElementwise)->Arg(1)->Arg(2)->Arg(4);

void BM_ParallelLayerNorm(benchmark::State& state) {
  PoolSizeScope pool(state.range(0));
  Rng rng(12);
  Tensor x = Tensor::Randn({1280, 64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LayerNormLastDim(x, 1e-5f));
  }
}
BENCHMARK(BM_ParallelLayerNorm)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace tranad

BENCHMARK_MAIN();
