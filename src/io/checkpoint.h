#ifndef TRANAD_IO_CHECKPOINT_H_
#define TRANAD_IO_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace tranad::io {

/// Versioned binary checkpoint container: the durable-state layer under
/// model weights, optimizer moments, scheduler/POT/normalizer state and any
/// other named blobs the trainer or detector persists.
///
/// File layout (all integers little-endian, fixed width):
///
///   offset  size  field
///   0       4     magic "TADC" (0x43444154)
///   4       4     format version (kCheckpointVersion)
///   8       4     endian guard 0x01020304 (readers on a foreign byte order
///                 see 0x04030201 and refuse the file)
///   12      4     reserved (0)
///   16      8     entry count
///   24      8     payload byte length
///   32      N     payload: `entry count` packed entries
///   32+N    4     CRC32 (IEEE) of the payload bytes
///
/// Entry encoding inside the payload:
///
///   u32 name length, name bytes (no terminator)
///   u32 entry type (EntryType)
///   u32 ndim, i64 dims[ndim]       (arrays/strings use ndim = 1)
///   u64 byte length, raw bytes     (must equal numel * element size)
///
/// Versioning/compat policy: readers accept exactly kCheckpointVersion and
/// reject anything else with InvalidArgument; any layout change bumps the
/// version. Unknown entry *names* are ignored by consumers (forward-
/// compatible additions), unknown entry *types* fail the load. A torn or
/// bit-flipped file fails the CRC (or a structural bound check) and Open()
/// returns a Status instead of corrupt state.
inline constexpr uint32_t kCheckpointMagic = 0x43444154;  // "TADC"
inline constexpr uint32_t kCheckpointVersion = 1;
inline constexpr uint32_t kCheckpointEndianGuard = 0x01020304;

/// Typed payload kinds. Values are part of the on-disk format.
enum class EntryType : uint32_t {
  kTensorF32 = 1,  // float32 tensor with shape
  kF64Array = 2,   // raw double array (POT peaks, loss curves)
  kI64Array = 3,   // raw int64 array (counters, RNG words)
  kBytes = 4,      // opaque bytes (strings)
};

/// IEEE CRC32 (polynomial 0xEDB88320) of `n` bytes, chainable via `seed`.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// Accumulates named entries and serializes them crash-safely: the file is
/// written to `path + ".tmp"`, fsync'd, then atomically renamed over `path`
/// (and the directory fsync'd), so a SIGKILL at any instant leaves either
/// the old complete file or the new complete file — never a torn one.
class CheckpointWriter {
 public:
  /// Each Put* registers one entry; names must be unique per checkpoint.
  void PutTensor(const std::string& name, const Tensor& t);
  void PutF64Array(const std::string& name, const std::vector<double>& v);
  void PutI64Array(const std::string& name, const std::vector<int64_t>& v);
  void PutString(const std::string& name, const std::string& v);
  void PutScalar(const std::string& name, double v);
  void PutInt(const std::string& name, int64_t v);

  /// Serializes all entries to `path` with the atomic tmp+rename protocol.
  Status WriteAtomic(const std::string& path) const;

  int64_t num_entries() const { return static_cast<int64_t>(entries_.size()); }

 private:
  struct Entry {
    std::string name;
    EntryType type;
    Shape shape;
    std::vector<uint8_t> bytes;
  };
  void Add(std::string name, EntryType type, Shape shape,
           std::vector<uint8_t> bytes);

  std::vector<Entry> entries_;
};

/// One parsed entry's metadata (payload bytes stay in the reader's buffer).
struct CheckpointEntry {
  std::string name;
  EntryType type = EntryType::kBytes;
  Shape shape;
  uint64_t byte_len = 0;
  size_t offset = 0;  // into the payload buffer
};

/// Parses and validates a checkpoint file. Open() verifies magic, version,
/// endian guard, structural bounds, and the payload CRC before any entry is
/// exposed; a failed Open never hands back partial state.
class CheckpointReader {
 public:
  static Result<CheckpointReader> Open(const std::string& path);

  bool Has(const std::string& name) const;
  /// Entries in file order (for the inspector).
  const std::vector<CheckpointEntry>& entries() const { return entries_; }
  uint32_t version() const { return version_; }

  /// Typed accessors; NotFound for a missing name, InvalidArgument for a
  /// type mismatch.
  Result<Tensor> GetTensor(const std::string& name) const;
  Result<std::vector<double>> GetF64Array(const std::string& name) const;
  Result<std::vector<int64_t>> GetI64Array(const std::string& name) const;
  Result<std::string> GetString(const std::string& name) const;
  /// Single-element conveniences over the array accessors.
  Result<double> GetScalar(const std::string& name) const;
  Result<int64_t> GetInt(const std::string& name) const;

  /// CRC32 of one entry's raw payload bytes (the inspector's digest).
  uint32_t EntryCrc(const CheckpointEntry& entry) const;

 private:
  CheckpointReader() = default;
  const CheckpointEntry* Find(const std::string& name) const;

  uint32_t version_ = 0;
  std::vector<uint8_t> payload_;
  std::vector<CheckpointEntry> entries_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace tranad::io

#endif  // TRANAD_IO_CHECKPOINT_H_
