#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "net/client.h"
#include "net/server.h"
#include "fleet_fixture.h"

namespace tranad::net {
namespace {

using failpoint::Action;
using failpoint::Schedule;
using failpoint::ScopedFailpoint;
using serve::ShardRouter;
using serve::ShardRouterOptions;

class NetChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }

  static ShardRouterOptions RouterOptions(int64_t shards) {
    ShardRouterOptions options;
    options.num_shards = shards;
    options.shard.num_workers = 1;
    options.shard.max_batch = 4;
    options.shard.max_wait_us = 100;
    options.shard.pot = PotParamsForDataset("SMAP");
    return options;
  }
};

// net.accept: an injected accept-path fault drops the incoming client on
// the floor. The client sees a clean connection loss, the server keeps
// serving everyone else, and a later connect succeeds.
TEST_F(NetChaosTest, AcceptFaultDropsClientCleanly) {
  ShardRouter router(TestFleet::Get().detector, RouterOptions(1));
  NetServer server(&router);
  ASSERT_TRUE(server.Start().ok());

  {
    ScopedFailpoint fp("net.accept", Action::Error(StatusCode::kIoError));
    ClientOptions options;
    options.rpc_timeout_ms = 5000;
    NetClient doomed(options);
    // TCP connect lands in the backlog, so Connect itself may succeed —
    // but the first RPC observes the dropped connection.
    const Status connected = doomed.Connect("127.0.0.1", server.port());
    if (connected.ok()) {
      EXPECT_FALSE(doomed.Ping().ok());
    }
  }
  NetClient fine;
  ASSERT_TRUE(fine.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(fine.Ping().ok());
}

// net.read.torn_frame: the server's read path swallows the tail of a read
// (a peer dying mid-write). The frame reader must detect the corruption
// via header/CRC validation, answer one kError frame, and close — never
// crash, never resync onto garbage.
TEST_F(NetChaosTest, TornFrameElicitsCleanProtocolError) {
  const TestFleet& fleet = TestFleet::Get();
  ShardRouter router(fleet.detector, RouterOptions(1));
  NetServer server(&router);
  ASSERT_TRUE(server.Start().ok());

  ScopedFailpoint fp("net.read.torn_frame", Action::Truncate(5),
                     Schedule::OnHit(1));
  ClientOptions options;
  options.rpc_timeout_ms = 10'000;
  NetClient client(options);
  client.set_verdict_handler([](const WireVerdict&) {});
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // First submit frame is torn after 5 bytes; the second one's bytes land
  // misaligned behind it, so the parser sees a malformed header. The pause
  // keeps the two sends in separate server reads — coalesced into one read,
  // both would fall inside the same truncation.
  const Tensor obs = fleet.Observation(0, 0);
  (void)client.Submit(1, 1, obs.data(), obs.numel());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  (void)client.Submit(1, 2, obs.data(), obs.numel());

  // The client's next RPC surfaces the server's error (or the close).
  EXPECT_FALSE(client.Ping().ok());
  // Poll the counter: the error is recorded on the event-loop thread.
  for (int i = 0; i < 200 && server.protocol_errors_total() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.protocol_errors_total(), 1);

  // The fault was per-connection: a fresh client is unaffected.
  NetClient fine;
  ASSERT_TRUE(fine.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(fine.Ping().ok());
}

// net.conn.drop_mid_batch: the connection dies right after a submit was
// admitted. The shard must still complete every admitted observation
// exactly once (stats balance), and the verdicts that lost their
// connection are dropped — not delivered twice, not wedged.
TEST_F(NetChaosTest, DropMidBatchNeverDuplicatesOrWedges) {
  const TestFleet& fleet = TestFleet::Get();
  ShardRouter router(fleet.detector, RouterOptions(2));
  NetServer server(&router);
  ASSERT_TRUE(server.Start().ok());

  std::mutex mu;
  std::set<uint64_t> seen_tags;
  bool duplicate = false;
  NetClient client;
  client.set_verdict_handler([&](const WireVerdict& v) {
    std::lock_guard<std::mutex> lock(mu);
    if (!seen_tags.insert(v.tag).second) duplicate = true;
  });
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.CreateStream(1, fleet.datasets[0].train.values).ok());

  // The 8th submit frame kills the connection right after admission.
  ScopedFailpoint fp("net.conn.drop_mid_batch",
                     Action::Error(StatusCode::kUnavailable),
                     Schedule::OnHit(8));
  const int64_t sent = 20;
  for (int64_t t = 0; t < sent; ++t) {
    const Tensor obs = fleet.Observation(0, t % fleet.datasets[0].test.length());
    const Status st =
        client.Submit(1, static_cast<uint64_t>(t), obs.data(), obs.numel());
    if (!st.ok()) break;  // the dropped connection eventually fails sends
  }

  // Exactly-once server-side: every admitted observation completes.
  router.Flush();
  const auto stats = router.stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.failed)
      << "an admitted observation was lost or double-completed";
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_FALSE(duplicate) << "a verdict was delivered twice";
  }

  // The fleet is healthy: a new client gets served.
  failpoint::DisarmAll();
  NetClient fine;
  ASSERT_TRUE(fine.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(fine.Ping().ok());
}

// net.write.slow_client + a tiny outbox cap: a client that cannot drain
// its verdicts hits the write-buffer limit and is disconnected instead of
// growing server memory without bound.
TEST_F(NetChaosTest, SlowClientHitsOutboxCapAndIsDropped) {
  const TestFleet& fleet = TestFleet::Get();
  ShardRouter router(fleet.detector, RouterOptions(1));
  ServerOptions options;
  options.max_outbox_bytes = 256;  // a few verdict frames at most
  NetServer server(&router, options);
  ASSERT_TRUE(server.Start().ok());

  // Stall every flush long enough for verdicts to pile into the outbox.
  ScopedFailpoint fp("net.write.slow_client", Action::Delay(20'000));

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  int64_t sent_before_failure = 0;
  NetClient client;
  client.set_verdict_handler([](const WireVerdict&) {});
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.CreateStream(1, fleet.datasets[0].train.values).ok());

  std::thread watcher([&] {
    // Submits eventually fail once the server drops the connection; a
    // blocking Ping would hang on the stalled loop, so watch sends.
    int64_t t = 0;
    for (; t < 4000; ++t) {
      const Tensor obs =
          fleet.Observation(0, t % fleet.datasets[0].test.length());
      if (!client
               .Submit(1, static_cast<uint64_t>(t), obs.data(), obs.numel())
               .ok()) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::lock_guard<std::mutex> lock(mu);
    sent_before_failure = t;
    done = true;
    cv.notify_all();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                            [&] { return done; }));
    EXPECT_LT(sent_before_failure, 4000)
        << "the slow client was never disconnected";
  }
  watcher.join();
  router.Flush();
  // Server memory stayed bounded and the fleet completed everything it
  // admitted; after disarming, a fresh client is served normally.
  const auto stats = router.stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.failed);
  failpoint::DisarmAll();
  NetClient fine;
  ASSERT_TRUE(fine.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(fine.Ping().ok());
}

}  // namespace
}  // namespace tranad::net
