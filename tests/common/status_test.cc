#include "common/status.h"

#include <gtest/gtest.h>

namespace tranad {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, FactoryCodesMatch) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusCodeNameTest, AllCodesNamed) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Status FailsAt(int n, int fail_at) {
  if (n == fail_at) return Status::Internal("boom");
  return Status::Ok();
}

Status Chained(int fail_at) {
  TRANAD_RETURN_IF_ERROR(FailsAt(0, fail_at));
  TRANAD_RETURN_IF_ERROR(FailsAt(1, fail_at));
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(-1).ok());
  EXPECT_FALSE(Chained(0).ok());
  EXPECT_FALSE(Chained(1).ok());
}

Result<int> ResultFn(bool ok) {
  if (ok) return 7;
  return Status::NotFound("no");
}

Result<int> UsesAssign(bool ok) {
  TRANAD_ASSIGN_OR_RETURN(int v, ResultFn(ok));
  TRANAD_ASSIGN_OR_RETURN(int w, ResultFn(true));
  return v + w;
}

TEST(StatusMacroTest, AssignOrReturn) {
  auto r = UsesAssign(true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 14);
  EXPECT_FALSE(UsesAssign(false).ok());
}

}  // namespace
}  // namespace tranad
