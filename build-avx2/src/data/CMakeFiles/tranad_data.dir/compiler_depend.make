# Empty compiler generated dependencies file for tranad_data.
# This may be replaced when dependencies are built.
