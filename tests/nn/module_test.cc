#include "nn/module.h"

#include <gtest/gtest.h>

#include <fstream>

#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/transformer.h"
#include "tensor/autograd_ops.h"

namespace tranad::nn {
namespace {

// A small composite module for tree-structure tests.
class ToyNet : public Module {
 public:
  explicit ToyNet(Rng* rng) {
    fc1_ = std::make_unique<Linear>(4, 8, rng);
    norm_ = std::make_unique<LayerNorm>(8);
    fc2_ = std::make_unique<Linear>(8, 2, rng);
    RegisterModule("fc1", fc1_.get());
    RegisterModule("norm", norm_.get());
    RegisterModule("fc2", fc2_.get());
  }
  Variable Forward(const Variable& x) const {
    return fc2_->Forward(norm_->Forward(ag::Relu(fc1_->Forward(x))));
  }

 private:
  std::unique_ptr<Linear> fc1_;
  std::unique_ptr<LayerNorm> norm_;
  std::unique_ptr<Linear> fc2_;
};

TEST(ModuleTest, ParameterTreeCollected) {
  Rng rng(1);
  ToyNet net(&rng);
  // fc1: W+b, norm: gain+bias, fc2: W+b.
  EXPECT_EQ(net.Parameters().size(), 6u);
  EXPECT_EQ(net.NumParameters(), 4 * 8 + 8 + 8 + 8 + 8 * 2 + 2);
}

TEST(ModuleTest, ParameterNamesDotted) {
  Rng rng(2);
  ToyNet net(&rng);
  const auto names = net.ParameterNames();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "fc1.weight");
  EXPECT_EQ(names[1], "fc1.bias");
  EXPECT_EQ(names[2], "norm.gain");
  EXPECT_EQ(names[5], "fc2.bias");
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(3);
  ToyNet net(&rng);
  ag::SumAll(net.Forward(Variable(Tensor::Ones({2, 4})))).Backward();
  net.ZeroGrad();
  for (const auto& p : net.Parameters()) {
    for (int64_t i = 0; i < p.grad().numel(); ++i) {
      EXPECT_FLOAT_EQ(p.grad()[i], 0.0f);
    }
  }
}

TEST(ModuleTest, TrainingFlagPropagates) {
  Rng rng(4);
  ToyNet net(&rng);
  EXPECT_TRUE(net.training());
  net.SetTraining(false);
  EXPECT_FALSE(net.training());
}

TEST(ModuleTest, SnapshotRestoreRoundTrip) {
  Rng rng(5);
  ToyNet net(&rng);
  const auto snapshot = net.SnapshotParameters();
  // Perturb all parameters.
  for (auto p : net.Parameters()) {
    p.mutable_value()->Fill(99.0f);
  }
  net.RestoreParameters(snapshot);
  auto params = net.Parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_TRUE(params[i].value().Equals(snapshot[i]));
  }
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  Rng rng(6);
  ToyNet a(&rng);
  const std::string path = ::testing::TempDir() + "/toynet.bin";
  ASSERT_TRUE(a.Save(path).ok());

  Rng rng2(7);
  ToyNet b(&rng2);
  const Tensor x = Tensor::Randn({3, 4}, &rng2);
  const Tensor before = b.Forward(Variable(x)).value();
  ASSERT_TRUE(b.Load(path).ok());
  const Tensor after = b.Forward(Variable(x)).value();
  EXPECT_FALSE(before.AllClose(after, 1e-7f));
  EXPECT_TRUE(after.AllClose(a.Forward(Variable(x)).value(), 1e-7f));
}

TEST(ModuleTest, LoadRejectsWrongArchitecture) {
  Rng rng(8);
  ToyNet net(&rng);
  const std::string path = ::testing::TempDir() + "/toynet2.bin";
  ASSERT_TRUE(net.Save(path).ok());
  Linear other(4, 8, &rng);
  EXPECT_FALSE(other.Load(path).ok());
}

TEST(ModuleTest, LoadRejectsGarbageFile) {
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  Rng rng(9);
  ToyNet net(&rng);
  EXPECT_FALSE(net.Load(path).ok());
}

TEST(ModuleTest, LoadMissingFileIsIoError) {
  Rng rng(10);
  ToyNet net(&rng);
  const auto status = net.Load(::testing::TempDir() + "/nope.bin");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(ModuleTest, TransformerCheckpointRoundTrip) {
  // Serialization covers a realistic full architecture.
  Rng rng(11);
  TransformerEncoder enc(2, 8, 2, 16, 0.0f, &rng);
  enc.SetTraining(false);
  const std::string path = ::testing::TempDir() + "/encoder.bin";
  ASSERT_TRUE(enc.Save(path).ok());
  Rng rng2(12);
  TransformerEncoder enc2(2, 8, 2, 16, 0.0f, &rng2);
  enc2.SetTraining(false);
  ASSERT_TRUE(enc2.Load(path).ok());
  Rng drng(13);
  Variable x(Tensor::Randn({1, 5, 8}, &drng));
  EXPECT_TRUE(enc.Forward(x, &drng).value().AllClose(
      enc2.Forward(x, &drng).value(), 1e-6f));
}

}  // namespace
}  // namespace tranad::nn
