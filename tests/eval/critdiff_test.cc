#include "eval/critdiff.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace tranad {
namespace {

TEST(GammaTest, RegularizedPKnownValues) {
  // P(1, x) = 1 - e^-x.
  EXPECT_NEAR(RegularizedGammaP(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
  EXPECT_NEAR(RegularizedGammaP(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-10);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(RegularizedGammaP(0.5, 1.0), std::erf(1.0), 1e-9);
  EXPECT_DOUBLE_EQ(RegularizedGammaP(3.0, 0.0), 0.0);
}

TEST(ChiSquareTest, SurvivalKnownValues) {
  // Chi-square with k=2: SF(x) = e^{-x/2}.
  EXPECT_NEAR(ChiSquareSf(2.0, 2), std::exp(-1.0), 1e-9);
  // Critical value: SF(3.841, 1) ~ 0.05.
  EXPECT_NEAR(ChiSquareSf(3.841, 1), 0.05, 2e-3);
  EXPECT_DOUBLE_EQ(ChiSquareSf(-1.0, 3), 1.0);
}

TEST(FriedmanTest, DominantMethodRanksFirst) {
  // Method 0 wins every dataset.
  std::vector<std::vector<double>> scores{
      {0.9, 0.95, 0.92, 0.88, 0.91, 0.93, 0.9, 0.94, 0.9},
      {0.5, 0.55, 0.52, 0.48, 0.51, 0.53, 0.5, 0.54, 0.5},
      {0.1, 0.15, 0.12, 0.08, 0.11, 0.13, 0.1, 0.14, 0.1}};
  const auto result = FriedmanTest(scores);
  EXPECT_DOUBLE_EQ(result.avg_ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(result.avg_ranks[1], 2.0);
  EXPECT_DOUBLE_EQ(result.avg_ranks[2], 3.0);
  EXPECT_LT(result.p_value, 0.05);
}

TEST(FriedmanTest, IdenticalMethodsNotSignificant) {
  std::vector<std::vector<double>> scores{
      {0.5, 0.5, 0.5, 0.5}, {0.5, 0.5, 0.5, 0.5}, {0.5, 0.5, 0.5, 0.5}};
  const auto result = FriedmanTest(scores);
  EXPECT_GT(result.p_value, 0.9);
  for (double r : result.avg_ranks) EXPECT_DOUBLE_EQ(r, 2.0);  // tied
}

TEST(WilcoxonTest, LargeConsistentDifferenceSignificant) {
  std::vector<double> a, b;
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const double base = rng.Uniform();
    a.push_back(base + 0.3 + 0.01 * rng.Uniform());
    b.push_back(base);
  }
  EXPECT_LT(WilcoxonSignedRankP(a, b), 0.01);
}

TEST(WilcoxonTest, NoDifferenceNotSignificant) {
  std::vector<double> a, b;
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    a.push_back(rng.Normal());
    b.push_back(rng.Normal());
  }
  EXPECT_GT(WilcoxonSignedRankP(a, b), 0.05);
}

TEST(WilcoxonTest, IdenticalVectorsPValueOne) {
  std::vector<double> a{1, 2, 3};
  EXPECT_DOUBLE_EQ(WilcoxonSignedRankP(a, a), 1.0);
}

TEST(WilcoxonTest, SymmetricInSign) {
  std::vector<double> a{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> b{2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_NEAR(WilcoxonSignedRankP(a, b), WilcoxonSignedRankP(b, a), 1e-12);
}

TEST(CritDiffTest, EntriesSortedByRank) {
  std::vector<std::string> methods{"weak", "strong", "middle"};
  std::vector<std::vector<double>> scores{
      {0.1, 0.2, 0.1, 0.15, 0.2, 0.1, 0.12, 0.18, 0.14},
      {0.9, 0.92, 0.95, 0.91, 0.9, 0.94, 0.93, 0.92, 0.9},
      {0.5, 0.52, 0.55, 0.51, 0.5, 0.54, 0.53, 0.52, 0.5}};
  const auto result = CriticalDifference(methods, scores);
  ASSERT_EQ(result.entries.size(), 3u);
  EXPECT_EQ(result.entries[0].method, "strong");
  EXPECT_EQ(result.entries[1].method, "middle");
  EXPECT_EQ(result.entries[2].method, "weak");
  EXPECT_LT(result.friedman.p_value, 0.05);
}

TEST(CritDiffTest, SimilarMethodsShareClique) {
  // a and b alternate wins with identical margins (Wilcoxon p = 1 by
  // symmetry); weak is always far behind.
  std::vector<std::string> methods{"a", "b", "weak"};
  std::vector<std::vector<double>> scores(3);
  for (int j = 0; j < 10; ++j) {
    const double base = 0.6 + 0.03 * j;
    const double delta = (j % 2 == 0) ? 0.01 : -0.01;
    scores[0].push_back(base + delta);
    scores[1].push_back(base - delta);
    scores[2].push_back(base - 0.5);
  }
  const auto result = CriticalDifference(methods, scores);
  ASSERT_FALSE(result.cliques.empty());
  // The top two entries (a, b in some order) form a clique.
  const auto& clique = result.cliques.front();
  EXPECT_EQ(clique.size(), 2u);
  EXPECT_EQ(clique[0], 0);
  EXPECT_EQ(clique[1], 1);
}

TEST(CritDiffTest, RenderContainsMethodsAndStatistic) {
  std::vector<std::string> methods{"TranAD", "USAD"};
  std::vector<std::vector<double>> scores{{0.9, 0.8, 0.95, 0.85},
                                          {0.7, 0.6, 0.75, 0.65}};
  const auto result = CriticalDifference(methods, scores);
  const std::string text = RenderCritDiff(result);
  EXPECT_NE(text.find("TranAD"), std::string::npos);
  EXPECT_NE(text.find("USAD"), std::string::npos);
  EXPECT_NE(text.find("Friedman"), std::string::npos);
}

}  // namespace
}  // namespace tranad
