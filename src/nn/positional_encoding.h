#ifndef TRANAD_NN_POSITIONAL_ENCODING_H_
#define TRANAD_NN_POSITIONAL_ENCODING_H_

#include "nn/module.h"

namespace tranad::nn {

/// Sinusoidal position encoding (Vaswani et al. §3.5), precomputed up to
/// `max_len` positions for dimension `d_model` and added to the input. Used
/// by the TranAD encoders so attention can exploit temporal order.
class PositionalEncoding : public Module {
 public:
  PositionalEncoding(int64_t d_model, int64_t max_len, float dropout_p = 0.0f);

  /// x: [..., T, d_model] with T <= max_len.
  Variable Forward(const Variable& x, Rng* rng) const;

  /// The raw encoding table [max_len, d_model] (for tests).
  const Tensor& table() const { return table_; }

 private:
  int64_t d_model_;
  float dropout_p_;
  Tensor table_;
};

}  // namespace tranad::nn

#endif  // TRANAD_NN_POSITIONAL_ENCODING_H_
