#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tranad {

ConfusionCounts CountConfusion(const std::vector<uint8_t>& pred,
                               const std::vector<uint8_t>& truth) {
  TRANAD_CHECK_EQ(pred.size(), truth.size());
  ConfusionCounts c;
  for (size_t i = 0; i < pred.size(); ++i) {
    const bool p = pred[i] != 0;
    const bool t = truth[i] != 0;
    if (p && t) {
      ++c.tp;
    } else if (p && !t) {
      ++c.fp;
    } else if (!p && t) {
      ++c.fn;
    } else {
      ++c.tn;
    }
  }
  return c;
}

double PrecisionOf(const ConfusionCounts& c) {
  const int64_t denom = c.tp + c.fp;
  return denom == 0 ? 0.0 : static_cast<double>(c.tp) / denom;
}

double RecallOf(const ConfusionCounts& c) {
  const int64_t denom = c.tp + c.fn;
  return denom == 0 ? 0.0 : static_cast<double>(c.tp) / denom;
}

double F1Of(const ConfusionCounts& c) {
  const double p = PrecisionOf(c);
  const double r = RecallOf(c);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

std::vector<uint8_t> PointAdjust(const std::vector<uint8_t>& pred,
                                 const std::vector<uint8_t>& truth) {
  TRANAD_CHECK_EQ(pred.size(), truth.size());
  std::vector<uint8_t> adjusted = pred;
  const size_t n = truth.size();
  size_t i = 0;
  while (i < n) {
    if (truth[i] == 0) {
      ++i;
      continue;
    }
    // Ground-truth segment [i, j).
    size_t j = i;
    while (j < n && truth[j] != 0) ++j;
    bool any = false;
    for (size_t k = i; k < j; ++k) {
      if (pred[k] != 0) {
        any = true;
        break;
      }
    }
    if (any) {
      for (size_t k = i; k < j; ++k) adjusted[k] = 1;
    }
    i = j;
  }
  return adjusted;
}

std::vector<uint8_t> ApplyThreshold(const std::vector<double>& scores,
                                    double threshold) {
  std::vector<uint8_t> pred(scores.size(), 0);
  for (size_t i = 0; i < scores.size(); ++i) {
    pred[i] = scores[i] >= threshold ? 1 : 0;
  }
  return pred;
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<uint8_t>& truth) {
  TRANAD_CHECK_EQ(scores.size(), truth.size());
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  // Average ranks over ties, then the Mann-Whitney U statistic.
  std::vector<double> rank(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = avg;
    i = j + 1;
  }
  double rank_sum_pos = 0.0;
  int64_t n_pos = 0;
  for (size_t k = 0; k < n; ++k) {
    if (truth[k] != 0) {
      rank_sum_pos += rank[k];
      ++n_pos;
    }
  }
  const int64_t n_neg = static_cast<int64_t>(n) - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  const double u = rank_sum_pos -
                   static_cast<double>(n_pos) * (n_pos + 1) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

DetectionMetrics EvaluateAtThreshold(const std::vector<double>& scores,
                                     const std::vector<uint8_t>& truth,
                                     double threshold) {
  DetectionMetrics m;
  m.threshold = threshold;
  const auto pred = PointAdjust(ApplyThreshold(scores, threshold), truth);
  const auto c = CountConfusion(pred, truth);
  m.precision = PrecisionOf(c);
  m.recall = RecallOf(c);
  m.f1 = F1Of(c);
  m.roc_auc = RocAuc(scores, truth);
  return m;
}

DetectionMetrics EvaluateBestF1(const std::vector<double>& scores,
                                const std::vector<uint8_t>& truth,
                                int64_t max_candidates) {
  TRANAD_CHECK(!scores.empty());
  TRANAD_CHECK_EQ(scores.size(), truth.size());
  (void)max_candidates;  // retained for API compatibility; sweep is exact
  const size_t n = scores.size();

  // Map each timestamp to its ground-truth segment (-1 outside segments).
  // Point-adjusted confusion counts are then incremental in the threshold:
  // lowering the threshold only adds raw positives, which either (a) land
  // outside every segment (one more FP), or (b) hit a segment, and the
  // first hit converts the whole segment into TPs at once. Sweeping the
  // distinct scores in descending order therefore visits every achievable
  // point-adjusted confusion matrix in O(n log n) — no candidate
  // subsampling, so the best F1 dominates every fixed threshold exactly.
  std::vector<int64_t> segment_of(n, -1);
  std::vector<int64_t> segment_len;
  int64_t total_pos = 0;
  for (size_t i = 0; i < n;) {
    if (truth[i] == 0) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < n && truth[j] != 0) ++j;
    for (size_t k = i; k < j; ++k) {
      segment_of[k] = static_cast<int64_t>(segment_len.size());
    }
    segment_len.push_back(static_cast<int64_t>(j - i));
    total_pos += static_cast<int64_t>(j - i);
    i = j;
  }

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });

  DetectionMetrics best;
  best.roc_auc = RocAuc(scores, truth);
  std::vector<int64_t> hits(segment_len.size(), 0);
  int64_t tp = 0;  // adjusted true positives
  int64_t fp = 0;  // raw positives outside every segment
  size_t i = 0;
  while (i < n) {
    const double threshold = scores[order[i]];
    // Admit every point tied at this threshold before evaluating (>= thr).
    size_t j = i;
    while (j < n && scores[order[j]] == threshold) {
      const size_t idx = order[j];
      const int64_t seg = segment_of[idx];
      if (seg < 0) {
        ++fp;
      } else if (++hits[static_cast<size_t>(seg)] == 1) {
        tp += segment_len[static_cast<size_t>(seg)];
      }
      ++j;
    }
    i = j;
    const double precision =
        tp + fp == 0 ? 0.0
                     : static_cast<double>(tp) / static_cast<double>(tp + fp);
    const double recall =
        total_pos == 0
            ? 0.0
            : static_cast<double>(tp) / static_cast<double>(total_pos);
    const double f1 = precision + recall == 0.0
                          ? 0.0
                          : 2.0 * precision * recall / (precision + recall);
    if (f1 > best.f1) {
      best.precision = precision;
      best.recall = recall;
      best.f1 = f1;
      best.threshold = threshold;
    }
  }
  return best;
}

}  // namespace tranad
