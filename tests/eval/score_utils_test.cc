#include "eval/score_utils.h"

#include <gtest/gtest.h>

namespace tranad {
namespace {

TEST(EwmaTest, AlphaOneIsIdentity) {
  const std::vector<double> s{1, 5, 2, 8};
  EXPECT_EQ(EwmaSmooth(s, 1.0), s);
}

TEST(EwmaTest, SmoothsSpike) {
  std::vector<double> s(20, 0.0);
  s[10] = 10.0;
  const auto out = EwmaSmooth(s, 0.3);
  EXPECT_LT(out[10], 10.0);   // spike damped
  EXPECT_GT(out[11], 0.0);    // energy spread forward
  EXPECT_GT(out[10], out[12]);
}

TEST(EwmaTest, ConvergesToConstant) {
  std::vector<double> s(100, 4.0);
  const auto out = EwmaSmooth(s, 0.2);
  EXPECT_NEAR(out.back(), 4.0, 1e-9);
}

TEST(EwmaTest, PerDimMatchesScalar) {
  Tensor scores({4, 2}, {1, 10, 2, 20, 3, 30, 4, 40});
  const Tensor out = EwmaSmoothPerDim(scores, 0.5);
  std::vector<double> col0{1, 2, 3, 4};
  const auto ref = EwmaSmooth(col0, 0.5);
  for (int64_t t = 0; t < 4; ++t) {
    EXPECT_NEAR(out.At({t, 0}), ref[static_cast<size_t>(t)], 1e-5);
  }
}

TEST(EwmaTest, InvalidAlphaDies) {
  EXPECT_DEATH(EwmaSmooth({1.0}, 0.0), "CHECK");
  EXPECT_DEATH(EwmaSmooth({1.0}, 1.5), "CHECK");
}

TEST(RobustStandardizeTest, CentersAtMedian) {
  Tensor scores({5, 1}, {1, 2, 3, 4, 100});
  const Tensor out = RobustStandardizePerDim(scores);
  EXPECT_NEAR(out.At({2, 0}), 0.0f, 1e-5);  // median row -> 0
  EXPECT_GT(out.At({4, 0}), 1.0f);          // outlier stays large
}

TEST(RobustStandardizeTest, ScalesDimsIndependently) {
  // Dim 0 in [0,1], dim 1 in [0,1000]: after standardization the same
  // relative outlier gets a comparable score.
  Tensor scores({5, 2},
                {0.1f, 100, 0.2f, 200, 0.3f, 300, 0.4f, 400, 0.9f, 900});
  const Tensor out = RobustStandardizePerDim(scores);
  EXPECT_NEAR(out.At({4, 0}), out.At({4, 1}), 0.05f);
}

TEST(RobustStandardizeTest, ConstantDimSafe) {
  Tensor scores({4, 1}, {2, 2, 2, 2});
  const Tensor out = RobustStandardizePerDim(scores);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(std::isfinite(out.At({i, 0})));
  }
}

TEST(RollingMaxTest, WidensSpikes) {
  std::vector<double> s(10, 0.0);
  s[4] = 5.0;
  const auto out = RollingMax(s, 3);
  EXPECT_DOUBLE_EQ(out[4], 5.0);
  EXPECT_DOUBLE_EQ(out[5], 5.0);
  EXPECT_DOUBLE_EQ(out[6], 5.0);
  EXPECT_DOUBLE_EQ(out[7], 0.0);
  EXPECT_DOUBLE_EQ(out[3], 0.0);  // strictly trailing window
}

TEST(RollingMaxTest, WindowOneIsIdentity) {
  const std::vector<double> s{3, 1, 4, 1, 5};
  EXPECT_EQ(RollingMax(s, 1), s);
}

}  // namespace
}  // namespace tranad
