#ifndef TRANAD_BENCH_BENCH_UTIL_H_
#define TRANAD_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "baselines/registry.h"
#include "core/pipeline.h"
#include "data/synthetic.h"

namespace tranad::bench {

/// Default dataset scale for the table benches; overridable with the
/// TRANAD_SCALE environment variable. 0.35 is the smallest scale at which
/// every dataset carries enough anomaly segments for stable F1.
double DefaultScale();

/// Default training epochs; overridable with TRANAD_EPOCHS.
int64_t DefaultEpochs();

/// Generates (and caches per-process) the named dataset at the bench scale.
const Dataset& BenchDataset(const std::string& name, uint64_t seed = 42);

/// Runs one (method, dataset) cell of the evaluation protocol.
EvalOutcome RunCell(const std::string& method, const Dataset& dataset,
                    int64_t epochs, uint64_t seed = 7);

/// Renders a row-major table with a header; column 0 is left-aligned.
void PrintTable(const std::string& title,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

/// Formats a metric to the paper's 4-decimal style.
std::string Fmt4(double v);
std::string Fmt2(double v);

/// Writes a CSV next to the binary outputs (bench_out/<name>.csv),
/// creating the directory if needed. Returns the path.
std::string WriteBenchCsv(const std::string& name,
                          const std::vector<std::string>& header,
                          const std::vector<std::vector<double>>& rows);

/// Writes a machine-readable result blob to bench_out/BENCH_<name>.json
/// (the string is written verbatim; callers render the JSON). Returns the
/// path.
std::string WriteBenchJson(const std::string& name, const std::string& json);

/// Renders the compute-backend context every bench should report — thread
/// count plus arena counters — as a JSON object fragment (no trailing
/// comma), e.g. `"threads": 4, "arena": {...}`.
std::string ComputeBackendJsonFields();

/// The nine paper dataset names in table order.
std::vector<std::string> DatasetNames();

}  // namespace tranad::bench

#endif  // TRANAD_BENCH_BENCH_UTIL_H_
