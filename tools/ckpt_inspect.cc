// ckpt_inspect — dump the contents of a TranAD checkpoint file.
//
//   ckpt_inspect model.ckpt
//       Human-readable listing: format version plus, per entry, name, type,
//       shape and payload size, followed by totals.
//
//   ckpt_inspect --digest model.ckpt
//       Machine-comparable digest: one "name crc32 bytes" line per entry in
//       file order. Two checkpoints with identical digests for the same
//       entry names carry bit-identical payloads — CI diffs the model/ and
//       norm/ lines of a resumed run against an uninterrupted reference.
//
// Exits 0 on success, 1 with a diagnostic on any unreadable/corrupt file.
#include <cstdio>
#include <cstring>
#include <string>

#include "io/checkpoint.h"

namespace tranad {
namespace {

const char* TypeName(io::EntryType type) {
  switch (type) {
    case io::EntryType::kTensorF32:
      return "tensor<f32>";
    case io::EntryType::kF64Array:
      return "f64[]";
    case io::EntryType::kI64Array:
      return "i64[]";
    case io::EntryType::kBytes:
      return "bytes";
  }
  return "?";
}

std::string ShapeString(const io::CheckpointEntry& entry) {
  std::string out = "[";
  for (size_t i = 0; i < entry.shape.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(entry.shape[i]);
  }
  out += "]";
  return out;
}

int Main(int argc, char** argv) {
  bool digest = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--digest") == 0) {
      digest = true;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: ckpt_inspect [--digest] <checkpoint>\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: ckpt_inspect [--digest] <checkpoint>\n");
    return 2;
  }

  auto reader = io::CheckpointReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "error: %s\n", reader.status().ToString().c_str());
    return 1;
  }

  if (digest) {
    for (const io::CheckpointEntry& entry : reader->entries()) {
      std::printf("%s %08x %llu\n", entry.name.c_str(),
                  reader->EntryCrc(entry),
                  static_cast<unsigned long long>(entry.byte_len));
    }
    return 0;
  }

  std::printf("%s: checkpoint format v%u, %zu entries\n", path.c_str(),
              reader->version(), reader->entries().size());
  uint64_t total_bytes = 0;
  for (const io::CheckpointEntry& entry : reader->entries()) {
    total_bytes += entry.byte_len;
    std::printf("  %-32s %-12s %-16s %llu bytes\n", entry.name.c_str(),
                TypeName(entry.type), ShapeString(entry).c_str(),
                static_cast<unsigned long long>(entry.byte_len));
  }
  std::printf("total payload: %llu bytes\n",
              static_cast<unsigned long long>(total_bytes));
  return 0;
}

}  // namespace
}  // namespace tranad

int main(int argc, char** argv) { return tranad::Main(argc, argv); }
