#include "baselines/mad_gan.h"

#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad {

MadGanDetector::MadGanDetector(int64_t window, int64_t epochs, int64_t hidden,
                               uint64_t seed)
    : WindowedDetector("MAD-GAN", window, epochs, 128),
      hidden_(hidden),
      seed_(seed) {}

void MadGanDetector::BuildModel(int64_t dims) {
  Rng rng(seed_);
  gen_lstm_ = std::make_unique<nn::LstmCell>(dims, hidden_, &rng);
  gen_out_ = std::make_unique<nn::Linear>(hidden_, dims, &rng);
  disc_lstm_ = std::make_unique<nn::LstmCell>(dims, hidden_, &rng);
  disc_out_ = std::make_unique<nn::Linear>(hidden_, 1, &rng);

  std::vector<Variable> gen_params = gen_lstm_->Parameters();
  {
    auto p = gen_out_->Parameters();
    gen_params.insert(gen_params.end(), p.begin(), p.end());
  }
  std::vector<Variable> disc_params = disc_lstm_->Parameters();
  {
    auto p = disc_out_->Parameters();
    disc_params.insert(disc_params.end(), p.begin(), p.end());
  }
  gen_opt_ = std::make_unique<nn::Adam>(gen_params, 0.003f);
  disc_opt_ = std::make_unique<nn::Adam>(disc_params, 0.003f);
}

Variable MadGanDetector::Generate(const Variable& seq) const {
  Variable h = RunLstm(*gen_lstm_, seq);  // [B, K, hidden]
  return ag::Sigmoid(gen_out_->Forward(h));
}

Variable MadGanDetector::Discriminate(const Variable& seq) const {
  Variable h = RunLstmLast(*disc_lstm_, seq);  // [B, hidden]
  return ag::Sigmoid(disc_out_->Forward(h));   // [B, 1]
}

double MadGanDetector::TrainBatch(const Tensor& batch, double /*progress*/) {
  Variable real(batch);

  // --- discriminator step: real -> 1, fake (reconstruction) -> 0 ---
  Variable fake = Generate(real);
  Variable d_real = Discriminate(real);
  Variable d_fake = Discriminate(Variable(fake.value()));  // detached fake
  // BCE via MSE surrogate (stable with small models): (D(x)-1)^2 + D(G)^2.
  Variable d_loss = ag::Add(
      ag::MeanAll(ag::Square(ag::AddScalar(d_real, -1.0f))),
      ag::MeanAll(ag::Square(d_fake)));
  disc_opt_->ZeroGrad();
  gen_opt_->ZeroGrad();
  d_loss.Backward();
  disc_opt_->ClipGradNorm(5.0f);
  disc_opt_->Step();

  // --- generator step: reconstruct + fool the discriminator ---
  Variable fake2 = Generate(real);
  Variable g_rec = ag::MseLoss(fake2, batch);
  Variable d_on_fake = Discriminate(fake2);
  Variable g_adv = ag::MeanAll(ag::Square(ag::AddScalar(d_on_fake, -1.0f)));
  Variable g_loss = ag::Add(g_rec, ag::MulScalar(g_adv, 0.1f));
  gen_opt_->ZeroGrad();
  disc_opt_->ZeroGrad();
  g_loss.Backward();
  gen_opt_->ClipGradNorm(5.0f);
  gen_opt_->Step();
  return g_loss.value().Item() + d_loss.value().Item();
}

Tensor MadGanDetector::ScoreBatch(const Tensor& batch) {
  const int64_t b = batch.size(0);
  Variable real(batch);
  Variable fake = Generate(real);
  Variable d = Discriminate(real);  // [B, 1], 1 = looks normal
  constexpr float kLambda = 0.7f;
  Tensor out({b, dims_});
  const float* pf = fake.value().data();
  const float* pt = batch.data();
  const float* pd = d.value().data();
  for (int64_t i = 0; i < b; ++i) {
    const float suspicion = 1.0f - pd[i];
    for (int64_t dd = 0; dd < dims_; ++dd) {
      const int64_t idx = (i * window_ + (window_ - 1)) * dims_ + dd;
      const float e = pf[idx] - pt[idx];
      out.At({i, dd}) =
          kLambda * e * e + (1.0f - kLambda) * suspicion;
    }
  }
  return out;
}

}  // namespace tranad
