#ifndef TRANAD_BASELINES_MTAD_GAT_H_
#define TRANAD_BASELINES_MTAD_GAT_H_

#include <memory>

#include "baselines/common.h"
#include "nn/attention.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "nn/rnn.h"

namespace tranad {

/// MTAD-GAT (Zhao et al., ICDM'20): two graph-attention passes — one over
/// the *feature* axis (dimensions as nodes, their window traces as node
/// features) and one over the *time* axis — concatenated with the input and
/// fed to a GRU, with joint forecasting and reconstruction heads. Score:
///   s = gamma * forecast_error^2 + (1 - gamma) * reconstruction_error^2.
class MtadGatDetector : public WindowedDetector {
 public:
  explicit MtadGatDetector(int64_t window = 10, int64_t epochs = 5,
                           int64_t hidden = 32, uint64_t seed = 18);

 protected:
  void BuildModel(int64_t dims) override;
  double TrainBatch(const Tensor& batch, double progress) override;
  Tensor ScoreBatch(const Tensor& batch) override;

 private:
  struct Heads {
    Variable forecast;  // [B, m]
    Variable recon;     // [B, m] (final timestamp)
  };
  Heads Forward(const Tensor& batch) const;

  int64_t hidden_;
  uint64_t seed_;
  std::unique_ptr<nn::MultiHeadAttention> feature_attn_;  // over dims
  std::unique_ptr<nn::MultiHeadAttention> temporal_attn_;  // over time
  std::unique_ptr<nn::GruCell> gru_;
  std::unique_ptr<nn::Linear> forecast_head_;
  std::unique_ptr<nn::Linear> recon_head_;
  std::unique_ptr<nn::Adam> opt_;
};

}  // namespace tranad

#endif  // TRANAD_BASELINES_MTAD_GAT_H_
