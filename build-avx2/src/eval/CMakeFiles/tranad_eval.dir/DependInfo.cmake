
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/critdiff.cc" "src/eval/CMakeFiles/tranad_eval.dir/critdiff.cc.o" "gcc" "src/eval/CMakeFiles/tranad_eval.dir/critdiff.cc.o.d"
  "/root/repo/src/eval/diagnosis.cc" "src/eval/CMakeFiles/tranad_eval.dir/diagnosis.cc.o" "gcc" "src/eval/CMakeFiles/tranad_eval.dir/diagnosis.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/tranad_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/tranad_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/pot.cc" "src/eval/CMakeFiles/tranad_eval.dir/pot.cc.o" "gcc" "src/eval/CMakeFiles/tranad_eval.dir/pot.cc.o.d"
  "/root/repo/src/eval/score_utils.cc" "src/eval/CMakeFiles/tranad_eval.dir/score_utils.cc.o" "gcc" "src/eval/CMakeFiles/tranad_eval.dir/score_utils.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-avx2/src/tensor/CMakeFiles/tranad_tensor.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/common/CMakeFiles/tranad_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
