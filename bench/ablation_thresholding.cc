// Thresholding ablation (§3.5's POT-vs-AM comparison, extended): on fixed
// TranAD scores, compare the automatic thresholding strategies — POT,
// annual maximum (AM), NDT and the best-F1 oracle sweep. The paper reports
// POT beating AM by ~7% F1 on average.
#include "bench/bench_util.h"

#include "core/tranad_detector.h"
#include "eval/metrics.h"
#include "eval/pot.h"

namespace tranad::bench {
namespace {

DetectionMetrics AtThreshold(const std::vector<double>& scores,
                             const std::vector<uint8_t>& truth, double thr) {
  return EvaluateAtThreshold(scores, truth, thr);
}

int Main() {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<double>> csv;
  double pot_sum = 0.0;
  double am_sum = 0.0;
  int count = 0;
  for (const std::string name : {"NAB", "MBA", "SMAP", "SMD", "MSDS"}) {
    const Dataset& ds = BenchDataset(name);
    TranADConfig config;
    TrainOptions train;
    train.max_epochs = DefaultEpochs();
    TranADDetector det(config, train);
    det.Fit(ds.train);
    const std::vector<double> calib = DetectionScores(det.Score(ds.train));
    const std::vector<double> scores = DetectionScores(det.Score(ds.test));

    const double pot_thr = PotThreshold(calib, PotParamsForDataset(name));
    const double am_thr = AnnualMaximumThreshold(
        calib, 1e-4, std::max<int64_t>(10, ds.train.length() / 50));
    const double ndt_thr = NdtThreshold(calib);

    const auto pot = AtThreshold(scores, ds.test.labels, pot_thr);
    const auto am = AtThreshold(scores, ds.test.labels, am_thr);
    const auto ndt = AtThreshold(scores, ds.test.labels, ndt_thr);
    const auto best = EvaluateBestF1(scores, ds.test.labels);

    rows.push_back({name, Fmt4(pot.f1), Fmt4(am.f1), Fmt4(ndt.f1),
                    Fmt4(best.f1)});
    csv.push_back({pot.f1, am.f1, ndt.f1, best.f1});
    pot_sum += pot.f1;
    am_sum += am.f1;
    ++count;
    std::fflush(stdout);
  }
  PrintTable("Thresholding ablation: F1 of automatic thresholds on TranAD "
             "scores",
             {"Dataset", "POT", "AM", "NDT", "BestF1"}, rows);
  std::printf("\nPOT vs AM average F1: %.4f vs %.4f (paper reports POT "
              "~7%% ahead)\n",
              pot_sum / count, am_sum / count);
  const auto path = WriteBenchCsv("ablation_thresholding",
                                  {"pot", "am", "ndt", "best"}, csv);
  std::printf("CSV: %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
