file(REMOVE_RECURSE
  "CMakeFiles/fig2_prediction_vis.dir/fig2_prediction_vis.cc.o"
  "CMakeFiles/fig2_prediction_vis.dir/fig2_prediction_vis.cc.o.d"
  "fig2_prediction_vis"
  "fig2_prediction_vis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_prediction_vis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
