file(REMOVE_RECURSE
  "CMakeFiles/tranad_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/tranad_bench_util.dir/bench_util.cc.o.d"
  "libtranad_bench_util.a"
  "libtranad_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tranad_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
