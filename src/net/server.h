#ifndef TRANAD_NET_SERVER_H_
#define TRANAD_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/wire.h"
#include "serve/shard_router.h"

namespace tranad::net {

struct ServerOptions {
  /// Listen port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Bind address. Loopback by default: the fleet fronts a trusted LAN /
  /// sidecar topology, not the open internet.
  std::string bind_address = "127.0.0.1";
  int64_t max_connections = 64;
  /// Per-connection frame reader limit (also the reader's fixed buffer).
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Per-connection write-buffer cap. A client that stops reading while
  /// verdicts pile up past this is dropped (slow-consumer protection) —
  /// the alternative is unbounded server memory.
  size_t max_outbox_bytes = 8u << 20;
  /// Completed idempotent-submit verdicts retained for replay dedup (LRU
  /// by completion order). Each entry is one encoded verdict frame, so the
  /// worst-case memory is small and bounded. 0 disables dedup entirely —
  /// every submit, flagged or not, is scored.
  int64_t dedup_cache = 4096;
};

/// TCP front end for a ShardRouter: a single poll()-based event-loop
/// thread owns every socket (non-blocking accept/read/write), while all
/// scoring happens on the router's shard worker pools. Verdict callbacks
/// fire on worker threads and enqueue encoded frames into the owning
/// connection's outbox; a self-pipe wakes the loop to flush them. The
/// pipeline is therefore:
///
///   client --Submit frame--> event loop --router Submit--> shard queues
///     --worker verdict callback--> connection outbox --event loop write-->
///     client Verdict frame
///
/// Backpressure composes end to end: a full shard queue fails admission
/// with ResourceExhausted, which travels back as a Verdict frame carrying
/// that status (the client's retry signal), and a client that reads too
/// slowly hits the outbox cap and is disconnected.
///
/// Failure semantics: a malformed frame (bad magic/CRC/bounds — including
/// torn input injected via failpoint net.read.torn_frame) elicits one
/// kError frame with the decode Status, then the connection closes. A
/// connection dropped with submissions in flight never wedges the router:
/// the shard callbacks still fire exactly once and simply find the outbox
/// closed. Failpoint sites: net.accept, net.read.torn_frame,
/// net.write.slow_client, net.conn.drop_mid_batch.
class NetServer {
 public:
  /// `router` must outlive the server. Declare the router first and the
  /// server second, so destruction tears the front end down before the
  /// fleet behind it.
  explicit NetServer(serve::ShardRouter* router, ServerOptions options = {});

  /// Calls Stop().
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the event loop. IoError on bind/listen
  /// failure; FailedPrecondition if already started.
  Status Start();

  /// Closes the listen socket and every connection, then joins the loop.
  /// In-flight router submissions still complete (their verdicts are
  /// dropped with the connections). Idempotent.
  void Stop();

  /// Begins a graceful drain: the listen socket closes (new connections are
  /// refused by the OS), every live client receives one kDrain frame, and
  /// later Submit frames complete immediately with Unavailable — but every
  /// verdict already in flight is still delivered. Idempotent; the server
  /// keeps running until Stop(). The SIGTERM sequence is
  /// Drain() -> router Flush() -> WaitForDrain() -> Stop().
  void Drain(const std::string& reason = "server draining");

  /// Blocks until every connection's outbox has flushed to the socket (all
  /// delivered verdicts are actually on the wire), or DeadlineExceeded
  /// after `timeout_ms`. Call after Drain() + router Flush().
  Status WaitForDrain(int64_t timeout_ms);

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Bound port (valid after a successful Start).
  uint16_t port() const { return port_; }
  int64_t num_connections() const;

  /// Lifetime counters for tests and ops.
  int64_t accepted_total() const {
    return accepted_total_.load(std::memory_order_relaxed);
  }
  int64_t protocol_errors_total() const {
    return protocol_errors_total_.load(std::memory_order_relaxed);
  }
  /// Duplicate idempotent submits suppressed (replayed from the dedup
  /// cache or coalesced onto an in-flight scoring). Also folded into the
  /// retries_deduped field of every Stats reply.
  int64_t submits_deduped_total() const {
    return submits_deduped_total_.load(std::memory_order_relaxed);
  }

 private:
  struct Wakeup;
  struct Connection;

  /// Dedup identity of one idempotent submission.
  using DedupKey = std::pair<uint64_t, uint64_t>;  // (stream_key, tag)
  /// One tracked idempotent submission. In flight: `waiter` names the
  /// connection that should receive the verdict (a resend after reconnect
  /// retargets it). Done: `verdict_bytes` holds the encoded Ok verdict for
  /// replay. Failed submissions are erased instead — a retry re-executes,
  /// which is what lets a client retry *through* a shard failover.
  struct DedupEntry {
    bool done = false;
    std::weak_ptr<Connection> waiter;
    std::vector<uint8_t> verdict_bytes;
  };

  void LoopThread();
  void AcceptReady();
  /// Reads once from the connection; false = close it.
  bool ReadReady(const std::shared_ptr<Connection>& conn);
  /// Flushes the outbox once; false = close it.
  bool WriteReady(const std::shared_ptr<Connection>& conn);
  /// Decodes and dispatches one frame; false = close the connection.
  bool HandleFrame(const std::shared_ptr<Connection>& conn,
                   const FrameView& frame);
  void HandleSubmit(const std::shared_ptr<Connection>& conn,
                    const FrameView& frame);
  void HandleReload(const std::shared_ptr<Connection>& conn,
                    const FrameView& frame);
  void SendError(const std::shared_ptr<Connection>& conn,
                 const Status& status);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  /// Completion side of the dedup protocol: caches Ok verdicts (with LRU
  /// eviction), erases failures, and returns the connection the verdict
  /// should be delivered to (the latest waiter).
  std::shared_ptr<Connection> SettleDedup(const DedupKey& id,
                                          bool ok,
                                          const std::vector<uint8_t>& bytes,
                                          std::shared_ptr<Connection> fallback);

  serve::ShardRouter* router_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::shared_ptr<Wakeup> wakeup_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::mutex start_mu_;
  std::thread loop_;

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  /// Rolling reloads run on helper threads so the event loop keeps moving
  /// traffic while shards swap; joined in Stop().
  std::mutex reload_threads_mu_;
  std::vector<std::thread> reload_threads_;

  std::atomic<int64_t> accepted_total_{0};
  std::atomic<int64_t> protocol_errors_total_{0};

  /// Idempotent-submit dedup state (see DedupEntry). A std::map keeps the
  /// code simple; the LRU cap bounds it to a few thousand entries.
  std::mutex dedup_mu_;
  std::map<DedupKey, DedupEntry> dedup_;
  std::deque<DedupKey> dedup_done_lru_;  // completed entries, eviction order
  std::atomic<int64_t> submits_deduped_total_{0};

  /// Graceful drain (see Drain()).
  std::atomic<bool> draining_{false};
  std::mutex drain_mu_;
  std::string drain_reason_;
};

}  // namespace tranad::net

#endif  // TRANAD_NET_SERVER_H_
