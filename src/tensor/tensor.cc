#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

namespace tranad {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    TRANAD_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::vector<int64_t> ContiguousStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int64_t i = static_cast<int64_t>(shape.size()) - 2; i >= 0; --i) {
    strides[static_cast<size_t>(i)] =
        strides[static_cast<size_t>(i + 1)] * shape[static_cast<size_t>(i + 1)];
  }
  return strides;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << shape[i];
  }
  oss << "]";
  return oss.str();
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(ArenaBuffer::FromVector(data)) {
  TRANAD_CHECK_EQ(data_.size(), NumElements(shape_));
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t = Uninitialized(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Uninitialized(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = ArenaBuffer::Uninitialized(NumElements(t.shape_));
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t;
  t.data_[0] = value;
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng* rng, float stddev) {
  TRANAD_CHECK(rng != nullptr);
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::Rand(Shape shape, Rng* rng, float lo, float hi) {
  TRANAD_CHECK(rng != nullptr);
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Arange(int64_t n, float start, float step) {
  Tensor t(Shape{n});
  for (int64_t i = 0; i < n; ++i) t[i] = start + step * static_cast<float>(i);
  return t;
}

int64_t Tensor::size(int64_t axis) const {
  const int64_t nd = ndim();
  if (axis < 0) axis += nd;
  TRANAD_CHECK_MSG(axis >= 0 && axis < nd,
                   "axis " << axis << " out of range for " << nd << "-d");
  return shape_[static_cast<size_t>(axis)];
}

float& Tensor::At(std::initializer_list<int64_t> idx) {
  TRANAD_CHECK_EQ(static_cast<int64_t>(idx.size()), ndim());
  const auto strides = ContiguousStrides(shape_);
  int64_t off = 0;
  size_t k = 0;
  for (int64_t i : idx) {
    TRANAD_CHECK(i >= 0 && i < shape_[k]);
    off += i * strides[k];
    ++k;
  }
  return data_[off];
}

float Tensor::At(std::initializer_list<int64_t> idx) const {
  return const_cast<Tensor*>(this)->At(idx);
}

Shape Tensor::ResolveReshape(Shape new_shape) const {
  int64_t known = 1;
  int64_t infer_at = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      TRANAD_CHECK_MSG(infer_at < 0, "multiple -1 dims in reshape");
      infer_at = static_cast<int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer_at >= 0) {
    TRANAD_CHECK_GT(known, 0);
    TRANAD_CHECK_EQ(numel() % known, 0);
    new_shape[static_cast<size_t>(infer_at)] = numel() / known;
  }
  TRANAD_CHECK_MSG(NumElements(new_shape) == numel(),
                   "reshape " << ShapeToString(shape_) << " -> "
                              << ShapeToString(new_shape));
  return new_shape;
}

Tensor Tensor::Reshape(Shape new_shape) const& {
  Tensor out = *this;
  out.shape_ = ResolveReshape(std::move(new_shape));
  return out;
}

Tensor Tensor::Reshape(Shape new_shape) && {
  shape_ = ResolveReshape(std::move(new_shape));
  return std::move(*this);
}

void Tensor::Fill(float value) {
  float* p = data_.data();
  const int64_t n = data_.size();
  for (int64_t i = 0; i < n; ++i) p[i] = value;
}

float Tensor::Item() const {
  TRANAD_CHECK_EQ(numel(), 1);
  return data_[0];
}

bool Tensor::Equals(const Tensor& other) const {
  if (shape_ != other.shape_) return false;
  for (int64_t i = 0; i < data_.size(); ++i) {
    if (data_[i] != other.data_[i]) return false;
  }
  return true;
}

bool Tensor::AllClose(const Tensor& other, float atol) const {
  if (shape_ != other.shape_) return false;
  for (int64_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > atol) return false;
  }
  return true;
}

std::string Tensor::ToString() const {
  std::ostringstream oss;
  oss << "Tensor" << ShapeToString(shape_);
  if (numel() <= 32) {
    oss << " {";
    for (int64_t i = 0; i < numel(); ++i) {
      if (i > 0) oss << ", ";
      oss << data_[i];
    }
    oss << "}";
  }
  return oss.str();
}

}  // namespace tranad
