# Empty compiler generated dependencies file for machine_monitoring.
# This may be replaced when dependencies are built.
