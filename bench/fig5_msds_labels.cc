// Figure 5: predicted vs ground-truth labels per dimension for the MSDS
// test set — the cascading-fault raster of the paper, emitted as CSV (one
// predicted and one truth column per dimension).
#include "bench/bench_util.h"

#include "core/tranad_detector.h"
#include "eval/metrics.h"
#include "eval/pot.h"

namespace tranad::bench {
namespace {

int Main() {
  const Dataset& ds = BenchDataset("MSDS");
  TranADConfig config;
  TrainOptions train;
  train.max_epochs = DefaultEpochs();
  TranADDetector det(config, train);
  det.Fit(ds.train);

  const Tensor train_scores = det.Score(ds.train);
  const Tensor test_scores = det.Score(ds.test);
  const int64_t m = ds.dims();
  const int64_t t_len = ds.test.length();

  // Per-dimension POT thresholds (Eq. 14): y_i = 1(s_i >= POT(s_i)).
  std::vector<double> thresholds(static_cast<size_t>(m), 0.0);
  const PotParams params = PotParamsForDataset("MSDS");
  for (int64_t d = 0; d < m; ++d) {
    std::vector<double> calib(static_cast<size_t>(ds.train.length()));
    for (int64_t t = 0; t < ds.train.length(); ++t) {
      calib[static_cast<size_t>(t)] = train_scores.At({t, d});
    }
    thresholds[static_cast<size_t>(d)] = PotThreshold(calib, params);
  }

  std::vector<std::string> header{"t"};
  for (int64_t d = 0; d < m; ++d) {
    header.push_back("pred" + std::to_string(d));
    header.push_back("truth" + std::to_string(d));
  }
  std::vector<std::vector<double>> csv;
  int64_t dims_with_detections = 0;
  std::vector<bool> dim_hit(static_cast<size_t>(m), false);
  for (int64_t t = 0; t < t_len; ++t) {
    std::vector<double> row{static_cast<double>(t)};
    for (int64_t d = 0; d < m; ++d) {
      const bool pred =
          test_scores.At({t, d}) >= thresholds[static_cast<size_t>(d)];
      row.push_back(pred ? 1.0 : 0.0);
      row.push_back(ds.test.dim_labels.At({t, d}));
      if (pred && ds.test.dim_labels.At({t, d}) != 0.0f) {
        dim_hit[static_cast<size_t>(d)] = true;
      }
    }
    csv.push_back(std::move(row));
  }
  for (bool hit : dim_hit) dims_with_detections += hit;
  const auto path = WriteBenchCsv("fig5_msds_labels", header, csv);
  std::printf("Figure 5 (MSDS): per-dimension POT labelling\n");
  std::printf("  dimensions with correctly located anomalies: %lld / %lld\n",
              static_cast<long long>(dims_with_detections),
              static_cast<long long>(m));
  std::printf("CSV raster: %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
