#ifndef TRANAD_TENSOR_AUTOGRAD_OPS_H_
#define TRANAD_TENSOR_AUTOGRAD_OPS_H_

#include <vector>

#include "tensor/variable.h"

namespace tranad::ag {

// Differentiable counterparts of the kernels in tensor_ops.h. Each op builds
// a tape node whose backward closure implements the analytic gradient; every
// gradient is verified against central finite differences in
// tests/tensor/grad_check_test.cc.

// ---- arithmetic (broadcasting) ----
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);
/// Fused (a - b)^2, broadcasting; forward and backward bit-identical to
/// Square(Sub(a, b)) without the intermediate tensors or extra tape nodes.
Variable SquaredDiff(const Variable& a, const Variable& b);
Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);
Variable Neg(const Variable& a);

// ---- matmul / layout ----
Variable MatMul(const Variable& a, const Variable& b);
Variable TransposeLast2(const Variable& a);
Variable SwapAxes12(const Variable& a);
Variable Reshape(const Variable& a, Shape new_shape);
Variable Concat(const std::vector<Variable>& parts, int64_t axis);
Variable SliceAxis(const Variable& a, int64_t axis, int64_t start,
                   int64_t len);

// ---- unary activations ----
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
Variable Relu(const Variable& a);
Variable LeakyRelu(const Variable& a, float slope);
Variable Gelu(const Variable& a);
Variable Exp(const Variable& a);
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
Variable Square(const Variable& a);
Variable Abs(const Variable& a);

// ---- normalizations ----
Variable SoftmaxLastDim(const Variable& a);
/// LayerNorm over the last axis without affine parameters (the nn layer
/// applies gain/bias on top).
Variable LayerNormLastDim(const Variable& a, float eps);
/// Fused LayerNorm + affine: LayerNormLastDim(a, eps) * gain + bias with
/// gain/bias of shape [n], in one pass and one tape node. Gradients flow to
/// all three inputs.
Variable LayerNormAffine(const Variable& a, const Variable& gain,
                         const Variable& bias, float eps);

// ---- reductions ----
Variable SumAll(const Variable& a);
Variable MeanAll(const Variable& a);
Variable Sum(const Variable& a, int64_t axis, bool keepdims);
Variable Mean(const Variable& a, int64_t axis, bool keepdims);

// ---- regularization ----
/// Inverted dropout: at train time zeroes entries with probability p and
/// scales survivors by 1/(1-p); identity at eval time.
Variable Dropout(const Variable& a, float p, bool training, Rng* rng);

// ---- losses ----
/// Mean squared error against a constant target.
Variable MseLoss(const Variable& pred, const Tensor& target);
/// Mean squared error between two variables (both receive gradients) —
/// needed for the adversarial phase where the target is itself a network
/// output.
Variable MseLossVar(const Variable& pred, const Variable& target);

}  // namespace tranad::ag

#endif  // TRANAD_TENSOR_AUTOGRAD_OPS_H_
