#ifndef TRANAD_EVAL_POT_H_
#define TRANAD_EVAL_POT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace tranad {

/// Empirical quantile (linear interpolation) of a sample, q in [0, 1].
double Quantile(std::vector<double> values, double q);

/// Generalized Pareto fit of threshold excesses.
struct GpdFit {
  double gamma = 0.0;   // shape
  double sigma = 1.0;   // scale
  double log_lik = 0.0;
  int64_t n_excess = 0;
};

/// Grimshaw's maximum-likelihood procedure for the GPD: reduces the 2-d ML
/// problem to a 1-d root search of w(x) = u(x) v(x) - 1 and evaluates the
/// profile likelihood at each root (plus the exponential x->0 limit).
GpdFit FitGpdGrimshaw(const std::vector<double>& excesses);

/// Peaks-over-threshold parameters: `risk` is the target probability of
/// exceeding the returned threshold (the paper's "coefficient" = 1e-4);
/// `init_quantile` positions the initial peak threshold (the paper's
/// dataset-specific "low quantile" parameter q0 enters as 1 - q0).
struct PotParams {
  double risk = 1e-4;
  double init_quantile = 0.98;
  int64_t min_excesses = 10;
};

/// Computes the POT anomaly threshold from calibration scores (Siffer et
/// al., KDD'17): fit a GPD to the excesses above the initial threshold and
/// return the value-at-risk level z_q. Falls back to the (1 - risk)
/// empirical quantile when too few excesses exist.
double PotThreshold(const std::vector<double>& calibration,
                    const PotParams& params);

/// Complete mutable state of a StreamingPot, exportable for checkpointing
/// so a restored session thresholds exactly like the live one.
struct StreamingPotState {
  bool initialized = false;
  double t = 0.0;
  double z_q = 0.0;
  int64_t n = 0;
  std::vector<double> peaks;
};

/// Streaming POT (SPOT): calibrates on an initial batch, then processes one
/// score at a time, flagging anomalies above z_q and re-fitting the GPD as
/// new (non-anomalous) peaks arrive — the "dynamic" thresholding of Alg. 2.
class StreamingPot {
 public:
  explicit StreamingPot(PotParams params = {});

  /// Fits the initial threshold. Must be called before Observe(). Rejects
  /// an empty calibration set or one containing non-finite scores with
  /// InvalidArgument (the object stays uninitialized); on success the
  /// threshold is always finite and strictly above the peak threshold.
  Status Initialize(const std::vector<double>& calibration);

  /// Processes one score: returns true if it is anomalous (>= z_q). Normal
  /// scores above the peak threshold are absorbed as new peaks and the
  /// GPD/threshold are updated. A non-finite score is reported anomalous
  /// without polluting the tail model.
  bool Observe(double score);

  double threshold() const { return z_q_; }
  bool initialized() const { return initialized_; }
  int64_t num_peaks() const { return static_cast<int64_t>(peaks_.size()); }
  const PotParams& params() const { return params_; }

  /// Checkpoint support: exports/restores every mutable field. Restore
  /// validates finiteness so a corrupt state cannot poison thresholds.
  StreamingPotState ExportState() const;
  Status RestoreState(const StreamingPotState& state);

 private:
  void Refit();

  PotParams params_;
  bool initialized_ = false;
  double t_ = 0.0;    // initial (peak) threshold
  double z_q_ = 0.0;  // anomaly threshold
  int64_t n_ = 0;     // total observations seen
  std::vector<double> peaks_;
};

/// Non-parametric dynamic thresholding (Hundman et al., KDD'18), the
/// strategy of the LSTM-NDT baseline: picks epsilon = mu + z sigma over
/// z in [2.5, 12] maximizing the smoothed-error pruning objective.
double NdtThreshold(const std::vector<double>& errors);

/// Annual-maximum (block maxima) EVT thresholding: Gumbel fit by moments on
/// block maxima, threshold at the (1 - risk) return level. The paper reports
/// POT beats this by ~7% F1; bench/fig4 includes the comparison.
double AnnualMaximumThreshold(const std::vector<double>& calibration,
                              double risk, int64_t block_size);

}  // namespace tranad

#endif  // TRANAD_EVAL_POT_H_
