#include "serve/shard_router.h"

#include <algorithm>

#include "common/check.h"

namespace tranad::serve {
namespace {

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer, so sequential
/// stream keys (1, 2, 3, ...) land uniformly on the ring instead of
/// clustering. Stable across platforms — placement is part of the
/// observable contract (clients may cache shard assignments).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Ring point for one (shard, vnode) virtual node.
uint64_t VnodePoint(int64_t shard, int64_t vnode) {
  return Mix64((static_cast<uint64_t>(shard) << 32) ^
               static_cast<uint64_t>(vnode) ^ 0x5ca1ab1edeadbeefULL);
}

}  // namespace

ShardRouter::ShardRouter(TranADDetector* detector,
                         ShardRouterOptions options) {
  TRANAD_CHECK(detector != nullptr);
  TRANAD_CHECK_GT(options.num_shards, 0);
  TRANAD_CHECK_GT(options.vnodes_per_shard, 0);
  shards_.reserve(static_cast<size_t>(options.num_shards));
  for (int64_t s = 0; s < options.num_shards; ++s) {
    shards_.push_back(std::make_unique<ServeEngine>(detector, options.shard));
  }
  ring_.reserve(
      static_cast<size_t>(options.num_shards * options.vnodes_per_shard));
  for (int64_t s = 0; s < options.num_shards; ++s) {
    for (int64_t v = 0; v < options.vnodes_per_shard; ++v) {
      ring_.emplace_back(VnodePoint(s, v), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

ShardRouter::~ShardRouter() { Stop(); }

void ShardRouter::Stop() {
  for (auto& shard : shards_) shard->Stop();
}

int64_t ShardRouter::ShardOf(uint64_t key) const {
  const uint64_t h = Mix64(key);
  // First ring point at or after h, wrapping to the start (the classic
  // consistent-hash successor walk).
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, int64_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

Status ShardRouter::CreateStream(uint64_t key, const TimeSeries& calibration) {
  const int64_t shard = ShardOf(key);
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    if (routes_.count(key) != 0) {
      return Status::FailedPrecondition("stream key " + std::to_string(key) +
                                        " is already registered");
    }
  }
  // Calibration (a full scoring pass) runs outside routes_mu_ so other
  // streams keep routing; the insert below re-checks for a racing create.
  Result<StreamId> local =
      shards_[static_cast<size_t>(shard)]->CreateStream(calibration);
  if (!local.ok()) return local.status();
  std::lock_guard<std::mutex> lock(routes_mu_);
  auto [it, inserted] = routes_.emplace(key, Route{shard, local.value()});
  if (!inserted) {
    // Lost a create race for the same key: undo our shard-local stream.
    (void)shards_[static_cast<size_t>(shard)]->CloseStream(local.value());
    return Status::FailedPrecondition("stream key " + std::to_string(key) +
                                      " is already registered");
  }
  return Status::Ok();
}

Result<ShardRouter::Route> ShardRouter::FindRoute(uint64_t key) const {
  std::lock_guard<std::mutex> lock(routes_mu_);
  auto it = routes_.find(key);
  if (it == routes_.end()) {
    return Status::NotFound("no stream with key " + std::to_string(key));
  }
  return it->second;
}

Status ShardRouter::CloseStream(uint64_t key) {
  Route route;
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    auto it = routes_.find(key);
    if (it == routes_.end()) {
      return Status::NotFound("no stream with key " + std::to_string(key));
    }
    route = it->second;
    routes_.erase(it);
  }
  return shards_[static_cast<size_t>(route.shard)]->CloseStream(route.local);
}

Status ShardRouter::Submit(uint64_t key, const Tensor& observation,
                           VerdictCallback callback) {
  TRANAD_ASSIGN_OR_RETURN(const Route route, FindRoute(key));
  // Re-key the verdict so callers see their own stream key, not the
  // shard-local id (which is meaningless — and colliding — fleet-wide).
  VerdictCallback rekeyed;
  if (callback) {
    rekeyed = [key, cb = std::move(callback)](StreamId /*local*/, int64_t seq,
                                              const OnlineVerdict& verdict) {
      cb(key, seq, verdict);
    };
  }
  return shards_[static_cast<size_t>(route.shard)]->Submit(
      route.local, observation, std::move(rekeyed));
}

Status ShardRouter::ReleaseQuarantine(uint64_t key) {
  TRANAD_ASSIGN_OR_RETURN(const Route route, FindRoute(key));
  return shards_[static_cast<size_t>(route.shard)]->ReleaseQuarantine(
      route.local);
}

Status ShardRouter::ReloadModel(const std::string& path) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Status st = shards_[s]->ReloadModel(path);
    if (st.ok()) continue;
    // Shard s rolled itself back (ServeEngine's swap is all-or-nothing).
    // Re-converge the shards already swapped onto the previous checkpoint
    // when one is known; without one the fleet is left mixed-version and
    // the status says so.
    std::string detail = "rolling reload failed at shard " +
                         std::to_string(s) + "/" +
                         std::to_string(shards_.size()) + ": " + st.message();
    if (s == 0) {
      return Status(st.code(), detail + " (no shard was swapped)");
    }
    if (model_path_.empty()) {
      return Status(st.code(),
                    detail + " (shards 0.." + std::to_string(s - 1) +
                        " serve the new model; no previous checkpoint path "
                        "is known to roll them back to)");
    }
    int64_t rolled_back = 0;
    for (size_t r = 0; r < s; ++r) {
      if (shards_[r]->ReloadModel(model_path_).ok()) ++rolled_back;
    }
    return Status(st.code(), detail + " (rolled " +
                                 std::to_string(rolled_back) + "/" +
                                 std::to_string(s) +
                                 " earlier shard(s) back to " + model_path_ +
                                 ")");
  }
  model_path_ = path;
  return Status::Ok();
}

void ShardRouter::Flush() {
  for (auto& shard : shards_) shard->Flush();
}

ServeStatsSnapshot ShardRouter::stats() const {
  // A single-shard fleet keeps its reservoir-exact percentiles; merging
  // re-derives p50/p99 from the summed latency histograms.
  ServeStatsSnapshot fleet = shards_.front()->stats();
  for (size_t s = 1; s < shards_.size(); ++s) {
    fleet.MergeFrom(shards_[s]->stats());
  }
  return fleet;
}

ServeStatsSnapshot ShardRouter::shard_stats(int64_t shard) const {
  TRANAD_CHECK_GE(shard, 0);
  TRANAD_CHECK_LT(shard, num_shards());
  return shards_[static_cast<size_t>(shard)]->stats();
}

int64_t ShardRouter::num_streams() const {
  std::lock_guard<std::mutex> lock(routes_mu_);
  return static_cast<int64_t>(routes_.size());
}

}  // namespace tranad::serve
