#ifndef TRANAD_SERVE_MICRO_BATCHER_H_
#define TRANAD_SERVE_MICRO_BATCHER_H_

#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "core/online_detector.h"
#include "serve/bounded_queue.h"
#include "serve/stream_session.h"
#include "tensor/tensor.h"

namespace tranad::serve {

/// Verdict delivery: invoked exactly once per admitted observation with a
/// definite verdict.status — usually on a worker thread in per-stream
/// submission order for scored (Ok) verdicts; failure completions
/// (deadline expiry, shed, watchdog, injected fault) may arrive on the
/// batcher, watchdog, or submitting thread and may overtake scored
/// verdicts. Must be fast and must not call back into ServeEngine::Flush,
/// Stop, or destroy the engine.
using VerdictCallback =
    std::function<void(StreamId stream, int64_t seq, const OnlineVerdict&)>;

/// One admitted observation waiting to be scored.
struct ServeRequest {
  std::shared_ptr<StreamSession> session;
  Tensor observation;  // raw (un-normalized) [m]
  VerdictCallback callback;
  int64_t seq = 0;  // per-stream submission sequence
  std::chrono::steady_clock::time_point enqueued;
  /// Completion deadline (max() = none). Checked when the batcher picks the
  /// request up; an expired request completes with DeadlineExceeded and is
  /// never scored.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// Micro-batching policy: coalesces pending observations from any mix of
/// streams into one batch for a single two-phase forward pass. Blocks for
/// the first request, then keeps extending the batch until it holds
/// `max_batch` observations or `max_wait_us` has elapsed since the first
/// one arrived. With max_wait_us = 0 it still greedily drains whatever is
/// already queued (no artificial latency), so batching kicks in exactly
/// when the queue runs hot — the classic serving trade-off dial.
class MicroBatcher {
 public:
  MicroBatcher(int64_t max_batch, int64_t max_wait_us);

  /// Pulls the next batch. An empty result means the queue was closed and
  /// fully drained — time to shut down.
  std::vector<ServeRequest> NextBatch(BoundedQueue<ServeRequest>* queue) const;

  int64_t max_batch() const { return max_batch_; }
  int64_t max_wait_us() const { return max_wait_us_; }

 private:
  int64_t max_batch_;
  int64_t max_wait_us_;
};

}  // namespace tranad::serve

#endif  // TRANAD_SERVE_MICRO_BATCHER_H_
